package stormtune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"stormtune/internal/archive"
	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/watch"
)

// Drifting-workload types re-exported from the storm package.
type (
	// DriftProfile shapes offered load over simulated time: Factor(t)
	// multiplies a base load. Profiles are pure functions of t (and a
	// fixed seed), so drifting workloads replay bit-identically.
	DriftProfile = storm.DriftProfile
	// Diurnal is a sinusoidal day/night cycle.
	Diurnal = storm.Diurnal
	// FlashCrowd is a sudden surge: ramp up at At, hold Magnitude for
	// Duration, ramp back down (Duration 0 = permanent).
	FlashCrowd = storm.FlashCrowd
	// Trend is a linear growth or decay of offered load.
	Trend = storm.Trend
	// Squall is seeded random load spikes in fixed windows.
	Squall = storm.Squall
	// CompositeDrift multiplies several profiles.
	CompositeDrift = storm.Composite
	// DriftingEval caps a capacity evaluator's delivery at the offered
	// load of the measurement's simulated time, reporting OfferedLoad
	// and Backpressured on every Result.
	DriftingEval = storm.DriftingEval
	// TimedEvaluator is an Evaluator whose measurements depend on the
	// simulated time (RunAt); session backends dispatch to it when the
	// session carries a clock.
	TimedEvaluator = storm.TimedEvaluator
)

// Drifting wraps a capacity evaluator in a time-varying offered load:
// delivered throughput is min(capacity, baseLoad·profile.Factor(t)).
// A nil profile means a constant offered load of baseLoad.
func Drifting(ev Evaluator, profile DriftProfile, baseLoad float64) *DriftingEval {
	return storm.Drifting(ev, profile, baseLoad)
}

// ComposeDrift multiplies drift profiles into one.
func ComposeDrift(parts ...DriftProfile) DriftProfile { return storm.Compose(parts...) }

// ParseDrift parses a drift spec like
// "diurnal:period=86400,amplitude=0.4;flash:at=3600,magnitude=2"
// (the -drift flag syntax); empty and "none" mean no drift.
func ParseDrift(spec string) (DriftProfile, error) { return storm.ParseDrift(spec) }

// Continuous-tuning types re-exported from the watch and core packages.
type (
	// MonitorOptions tune the degradation monitor: rolling-baseline
	// window, degrade factor, sustain counts (hysteresis), cooldown.
	MonitorOptions = watch.MonitorOptions
	// RetuneOptions bound the conservative retune search: a trust
	// region around the incumbent that widens after consecutive
	// improvements and shrinks on regressions.
	RetuneOptions = core.RetuneOptions
	// HyperState is a serializable GP hyperparameter posterior,
	// captured from a running session (Tuner.HyperState) and fed to a
	// later one (RetuneOptions.InitHypers) to skip its cold
	// slice-sampling burn. Watches do this automatically between
	// their own episodes.
	HyperState = bo.HyperState
	// HoldSampled reports one monitoring measurement of the incumbent
	// while a watch holds.
	HoldSampled = core.HoldSampled
	// RetuneTriggered reports the degradation monitor firing: a retune
	// episode begins.
	RetuneTriggered = core.RetuneTriggered
	// RetuneCompleted reports a retune episode's outcome.
	RetuneCompleted = core.RetuneCompleted
)

// WatchOptions configure a continuous-tuning session.
type WatchOptions struct {
	// Steps is the initial tuning session's budget (default 40);
	// RetuneSteps each retune episode's (default max(8, Steps/4)).
	Steps       int
	RetuneSteps int
	// Set selects the searched parameters (default Hints).
	Set ParamSet
	// Template supplies the non-searched parameters; zero value uses
	// the paper's deployment defaults with hint 1.
	Template *Config
	// Cluster defaults to the paper's 80-machine cluster.
	Cluster *ClusterSpec
	// Seed drives the optimizers: the initial tune uses it directly,
	// retune episode e uses Seed+e (default 1).
	Seed int64
	// TrialCost is the simulated seconds one trial evaluation costs
	// (default 60); HoldInterval the simulated seconds between
	// monitoring samples (default 60).
	TrialCost    float64
	HoldInterval float64
	// Horizon stops the watch when the simulated clock reaches it
	// (0 = run until ctx cancel or MaxEpisodes); MaxEpisodes stops it
	// after that many retune episodes (0 = unlimited).
	Horizon     float64
	MaxEpisodes int
	// Monitor tunes the degradation monitor; Retune bounds the
	// conservative search.
	Monitor MonitorOptions
	Retune  RetuneOptions
	// Retry governs lost evaluations, exactly as in TunerOptions.
	Retry RetryPolicy
	// Observer receives the full event stream: session events plus
	// HoldSampled, RetuneTriggered and RetuneCompleted.
	Observer Observer
	// Recorder, when set, also receives every event and accumulates
	// the dashboard state — retune episodes appear in its snapshot's
	// Retunes list and as SSE markers.
	Recorder *Recorder
	// Snapshot, with SnapshotEvery > 0, receives a periodic WatchState
	// every SnapshotEvery completed trials or monitoring samples.
	Snapshot      func(*WatchState)
	SnapshotEvery int
	// Throttle paces monitoring samples in wall-clock time so a live
	// dashboard is watchable; zero runs the simulated timeline flat
	// out. Pacing only — no tuning decision reads the wall clock.
	Throttle time.Duration

	// Archive, when set, records every completed trial — initial tune
	// and retune episodes alike — into the store as evidence for
	// future warm starts. Record-only: a watch never warm-starts
	// itself (its retunes already seed from the running incumbent).
	// The record seals when Run finishes cleanly (horizon or episode
	// budget reached); a cancelled watch stays unsealed for re-attach.
	Archive Archive
	// ArchiveKey pins the archive record key; empty derives one from
	// the topology fingerprint and seed. Resume reuses the snapshot's.
	ArchiveKey string

	// Optimizer knobs, as in TunerOptions.
	Candidates       int
	HyperSamples     int
	LocalSearchIters int
	MaxGPPoints      int
}

func (o WatchOptions) boOptions() BOOptions {
	return BOOptions{
		Set:  o.Set,
		Seed: o.Seed,
		Opt: bo.Options{
			Candidates:       o.Candidates,
			HyperSamples:     o.HyperSamples,
			LocalSearchIters: o.LocalSearchIters,
			MaxGPPoints:      o.MaxGPPoints,
		},
	}
}

func (o WatchOptions) composedObserver() Observer {
	if o.Recorder == nil {
		return o.Observer
	}
	return core.MultiObserver(o.Recorder, o.Observer)
}

// Watcher is a tuning session that never ends: tune, hold while a
// degradation monitor watches the incumbent, conservatively retune
// when it fires, repeat. Built by NewWatcher (or ResumeWatcher),
// driven by Run; Snapshot freezes it — mid-retune included — into a
// serializable WatchState.
type Watcher struct {
	c        *watch.Controller
	opts     WatchOptions
	topoName string
	topoN    int
	arch     *watchArchiver
}

// watchArchiver appends a watch's completed trials to an archive under
// one key, numbering them with its own monotone counter — watch
// episodes restart session-local trial IDs, so the session step cannot
// serve as the archive step. The counter resumes from the store's
// cursor so a resumed watch continues the numbering.
type watchArchiver struct {
	store Archive
	key   string
	mu    sync.Mutex
	step  int
	err   error
}

// OnEvent implements Observer.
func (a *watchArchiver) OnEvent(e Event) {
	tc, ok := e.(TrialCompleted)
	if !ok {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return
	}
	a.step++
	y := tc.Result.Throughput
	if tc.Result.Failed {
		y = 0
	}
	a.err = a.store.Append(a.key, archive.TrialRecord{
		Step: a.step, Config: tc.Trial.Config, Y: y, Failed: tc.Result.Failed,
	})
}

func (a *watchArchiver) seal() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	return a.store.Seal(a.key, nil)
}

// newWatchArchiver registers (or re-attaches) the watch in the store.
func newWatchArchiver(store Archive, key string, t *Topology, spec ClusterSpec, set ParamSet, seed int64) (*watchArchiver, error) {
	meta := core.SessionMetaFor(key, t, spec, "watch", set, seed)
	if err := store.Begin(meta); err != nil {
		return nil, fmt.Errorf("stormtune: archive: %w", err)
	}
	return &watchArchiver{store: store, key: key, step: store.LastStep(key)}, nil
}

// resolve fills the option defaults shared by NewWatcher and
// ResumeWatcher.
func (o WatchOptions) resolve(t *Topology) WatchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	spec := cluster.Paper()
	if o.Cluster != nil {
		spec = *o.Cluster
	}
	template := storm.DefaultConfig(t, 1)
	if o.Template != nil {
		template = o.Template.Clone()
	}
	o.Cluster = &spec
	o.Template = &template
	return o
}

// watchOptions converts the public options into the controller's.
func (w *Watcher) watchOptions(o WatchOptions) watch.Options {
	wo := watch.Options{
		Steps:         o.Steps,
		RetuneSteps:   o.RetuneSteps,
		TrialCost:     o.TrialCost,
		HoldInterval:  o.HoldInterval,
		Horizon:       o.Horizon,
		MaxEpisodes:   o.MaxEpisodes,
		Monitor:       o.Monitor,
		Retune:        o.Retune,
		Retry:         o.Retry,
		Observer:      o.composedObserver(),
		SnapshotEvery: o.SnapshotEvery,
		Throttle:      o.Throttle,
	}
	if w.arch != nil {
		wo.Observer = core.MultiObserver(wo.Observer, w.arch)
	}
	if o.Snapshot != nil {
		hook := o.Snapshot
		wo.Snapshot = func(st *watch.State) { hook(w.wrapState(st)) }
	}
	return wo
}

// NewWatcher starts a continuous-tuning session for a topology against
// a backend — typically AsBackend(Drifting(sim, profile, load)) for the
// simulated cluster, or any Backend whose measurements honor
// Trial.SimTime.
func NewWatcher(t *Topology, b Backend, opts WatchOptions) (*Watcher, error) {
	if t == nil {
		return nil, fmt.Errorf("stormtune: nil topology")
	}
	if b == nil {
		return nil, fmt.Errorf("stormtune: watch needs a backend")
	}
	opts = opts.resolve(t)
	w := &Watcher{opts: opts, topoName: t.Name, topoN: t.N()}
	if opts.Archive != nil {
		key := opts.ArchiveKey
		if key == "" {
			key = deriveArchiveKey(opts.Archive, t.Name, t.Fingerprint(), "watch", opts.Seed)
		}
		arch, err := newWatchArchiver(opts.Archive, key, t, *opts.Cluster, opts.Set, opts.Seed)
		if err != nil {
			return nil, err
		}
		w.arch = arch
		w.opts.ArchiveKey = key
	}
	w.c = watch.New(t, *opts.Cluster, *opts.Template, b, opts.boOptions(), w.watchOptions(opts))
	return w, nil
}

// Run drives the watch until ctx is cancelled, the horizon is reached,
// or MaxEpisodes episodes have completed. On cancellation all state
// stays intact: call Snapshot for a resumable WatchState. A clean
// finish seals the watch's archive record (when one is configured).
func (w *Watcher) Run(ctx context.Context) error {
	err := w.c.Run(ctx)
	if err == nil && w.arch != nil {
		return w.arch.seal()
	}
	return err
}

// ArchiveKey returns the key this watch records under, empty without
// an archive.
func (w *Watcher) ArchiveKey() string {
	if w.arch == nil {
		return ""
	}
	return w.arch.key
}

// Incumbent returns the configuration currently held and its measured
// objective; ok is false before the initial tune completes.
func (w *Watcher) Incumbent() (Config, float64, bool) {
	inc, ok := w.c.Incumbent()
	return inc.Config, inc.Y, ok
}

// Episodes returns the number of completed retune episodes.
func (w *Watcher) Episodes() int { return w.c.Episodes() }

// SimTime returns the watch's current simulated time in seconds.
func (w *Watcher) SimTime() float64 { return w.c.Clock().Now() }

// WatchState is the serializable snapshot of a Watcher: the
// environment needed to rebuild the strategies plus the controller's
// frozen progress (phase, clock, incumbent, monitor, and — when taken
// mid-tune or mid-retune — the in-flight session's own state).
type WatchState struct {
	Version          int            `json:"version"`
	Topology         string         `json:"topology"`
	Nodes            int            `json:"nodes"`
	Set              ParamSet       `json:"set"`
	Seed             int64          `json:"seed"`
	Steps            int            `json:"steps"`
	RetuneSteps      int            `json:"retuneSteps,omitempty"`
	TrialCost        float64        `json:"trialCost,omitempty"`
	HoldInterval     float64        `json:"holdInterval,omitempty"`
	Horizon          float64        `json:"horizon,omitempty"`
	MaxEpisodes      int            `json:"maxEpisodes,omitempty"`
	Candidates       int            `json:"candidates,omitempty"`
	HyperSamples     int            `json:"hyperSamples,omitempty"`
	LocalSearchIters int            `json:"localSearchIters,omitempty"`
	MaxGPPoints      int            `json:"maxGPPoints,omitempty"`
	Template         Config         `json:"template"`
	Cluster          ClusterSpec    `json:"cluster"`
	Monitor          MonitorOptions `json:"monitor"`
	Retune           RetuneOptions  `json:"retune"`
	// ArchiveKey is the archive record key the watch appended under;
	// resume re-attaches it when opts.Archive is passed again.
	ArchiveKey string       `json:"archiveKey,omitempty"`
	Watch      *watch.State `json:"watch"`
}

const watchStateVersion = 1

func (w *Watcher) wrapState(st *watch.State) *WatchState {
	o := w.opts
	return &WatchState{
		Version:          watchStateVersion,
		Topology:         w.topoName,
		Nodes:            w.topoN,
		Set:              o.Set,
		Seed:             o.Seed,
		Steps:            o.Steps,
		RetuneSteps:      o.RetuneSteps,
		TrialCost:        o.TrialCost,
		HoldInterval:     o.HoldInterval,
		Horizon:          o.Horizon,
		MaxEpisodes:      o.MaxEpisodes,
		Candidates:       o.Candidates,
		HyperSamples:     o.HyperSamples,
		LocalSearchIters: o.LocalSearchIters,
		MaxGPPoints:      o.MaxGPPoints,
		Template:         *o.Template,
		Cluster:          *o.Cluster,
		Monitor:          o.Monitor,
		Retune:           o.Retune,
		ArchiveKey:       o.ArchiveKey,
		Watch:            st,
	}
}

// Snapshot freezes the watch. Safe to call at any time — from an
// Observer callback or while Run is in flight.
func (w *Watcher) Snapshot() *WatchState { return w.wrapState(w.c.Snapshot()) }

// Save writes the snapshot as JSON.
func (s *WatchState) Save(wr io.Writer) error {
	enc := json.NewEncoder(wr)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveFile writes the snapshot to path, creating or truncating it.
func (s *WatchState) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadWatchState reads a snapshot from r.
func LoadWatchState(r io.Reader) (*WatchState, error) {
	var s WatchState
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("stormtune: decoding watch state: %w", err)
	}
	if s.Version != watchStateVersion {
		return nil, fmt.Errorf("stormtune: unsupported watch state version %d", s.Version)
	}
	if s.Watch == nil {
		return nil, fmt.Errorf("stormtune: watch state has no controller state")
	}
	return &s, nil
}

// LoadWatchStateFile reads a snapshot from a file.
func LoadWatchStateFile(path string) (*WatchState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWatchState(f)
}

// ResumeWatcher rebuilds a watch from a snapshot against the same
// topology and a backend of the caller's choice. An in-flight session
// snapshot is replayed against a freshly reconstructed strategy
// (fingerprint-checked), so the resumed watch continues bit-identically
// to one that was never interrupted — mid-retune included. opts carries
// only the non-serializable pieces: Observer, Recorder, Snapshot hook,
// Throttle and Retry; everything else comes from the snapshot.
func ResumeWatcher(st *WatchState, t *Topology, b Backend, opts WatchOptions) (*Watcher, error) {
	if st == nil || st.Watch == nil {
		return nil, fmt.Errorf("stormtune: nil watch state")
	}
	if st.Version != watchStateVersion {
		return nil, fmt.Errorf("stormtune: unsupported watch state version %d", st.Version)
	}
	if t == nil {
		return nil, fmt.Errorf("stormtune: nil topology")
	}
	if t.N() != st.Nodes {
		return nil, fmt.Errorf("stormtune: topology has %d nodes, snapshot was taken over %d (%s)",
			t.N(), st.Nodes, st.Topology)
	}
	if b == nil {
		return nil, fmt.Errorf("stormtune: watch needs a backend")
	}
	resolved := WatchOptions{
		Steps:            st.Steps,
		RetuneSteps:      st.RetuneSteps,
		Set:              st.Set,
		Seed:             st.Seed,
		TrialCost:        st.TrialCost,
		HoldInterval:     st.HoldInterval,
		Horizon:          st.Horizon,
		MaxEpisodes:      st.MaxEpisodes,
		Monitor:          st.Monitor,
		Retune:           st.Retune,
		Candidates:       st.Candidates,
		HyperSamples:     st.HyperSamples,
		LocalSearchIters: st.LocalSearchIters,
		MaxGPPoints:      st.MaxGPPoints,
		Template:         &st.Template,
		Cluster:          &st.Cluster,
		Retry:            opts.Retry,
		Observer:         opts.Observer,
		Recorder:         opts.Recorder,
		Snapshot:         opts.Snapshot,
		SnapshotEvery:    opts.SnapshotEvery,
		Throttle:         opts.Throttle,
	}
	w := &Watcher{opts: resolved, topoName: st.Topology, topoN: st.Nodes}
	if opts.Archive != nil {
		key := st.ArchiveKey
		if key == "" {
			key = deriveArchiveKey(opts.Archive, t.Name, t.Fingerprint(), "watch", st.Seed)
		}
		arch, aerr := newWatchArchiver(opts.Archive, key, t, st.Cluster, st.Set, st.Seed)
		if aerr != nil {
			return nil, aerr
		}
		w.arch = arch
		w.opts.Archive = opts.Archive
		w.opts.ArchiveKey = key
	}
	c, err := watch.Resume(st.Watch, t, st.Cluster, st.Template, b,
		resolved.boOptions(), w.watchOptions(resolved))
	if err != nil {
		return nil, err
	}
	w.c = c
	// Prime the recorder with the in-flight session's history so a
	// dashboard attached to the resumed watch shows the pre-snapshot
	// trials.
	if resolved.Recorder != nil && st.Watch.Session != nil {
		resolved.Recorder.Prime(st.Watch.Session)
	}
	return w, nil
}

// Watch is the high-level entry point: build a watcher and run it
// until ctx is cancelled or its horizon/episode budget is spent.
func Watch(ctx context.Context, t *Topology, b Backend, opts WatchOptions) (*Watcher, error) {
	w, err := NewWatcher(t, b, opts)
	if err != nil {
		return nil, err
	}
	if err := w.Run(ctx); err != nil {
		return w, err
	}
	return w, nil
}
