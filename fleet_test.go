package stormtune

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPublicFleetRun drives a three-session fleet over one shared
// backend through the public API — recorders wired in, aggregated
// dashboard served — and checks the acceptance invariants: every
// session finishes its budget, the fleet-wide best is the max over
// sessions, and /api/fleet agrees with each session's /api/state.
func TestPublicFleetRun(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	backend := AsBackend(quietEval(top, SmallCluster()))
	steps := []int{6, 8, 5}
	members := make([]FleetMember, len(steps))
	recs := make([]*Recorder, len(steps))
	names := []string{"bo-1", "bo-2", "bo-3"}
	for i, n := range steps {
		opts := fastTunerOpts(int64(i+1), n)
		opts.Cluster = ptrCluster(SmallCluster())
		recs[i] = NewRecorder()
		opts.Recorder = recs[i]
		tn, err := NewTuner(top, backend, opts)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = FleetMember{Name: names[i], Tuner: tn, Weight: float64(i + 1)}
	}
	fleet, err := NewFleet(FleetOptions{Slots: 2}, members...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var wantBest float64
	for i, name := range names {
		tr, ok := results[name]
		if !ok {
			t.Fatalf("no result for %q", name)
		}
		if len(tr.Records) != steps[i] {
			t.Fatalf("%q ran %d trials, want %d", name, len(tr.Records), steps[i])
		}
		best, found := tr.Best()
		if !found {
			t.Fatalf("%q found no best", name)
		}
		if best.Result.Throughput > wantBest {
			wantBest = best.Result.Throughput
		}
		// The session's recorder saw the whole run.
		s := recs[i].Snapshot()
		if !s.Done || s.Completed != steps[i] {
			t.Fatalf("%q recorder: %+v", name, s)
		}
	}

	st := fleet.Status()
	if !st.Done || st.Best != wantBest {
		t.Fatalf("fleet status best %v done %v, want %v true", st.Best, st.Done, wantBest)
	}

	srv := httptest.NewServer(NewFleetDashboard(fleet, FleetDashboardOptions{Title: "public fleet"}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetState
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if fs.Best != wantBest || len(fs.Sessions) != 3 || !fs.Done {
		t.Fatalf("/api/fleet: %+v", fs)
	}
	for _, ss := range fs.Sessions {
		sresp, err := http.Get(srv.URL + ss.StateURL)
		if err != nil {
			t.Fatal(err)
		}
		var state struct {
			Completed int     `json:"completed"`
			Best      float64 `json:"best"`
			Done      bool    `json:"done"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&state); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if state.Completed != ss.Completed || state.Best != ss.Best || !state.Done {
			t.Fatalf("session %q: /api/fleet %+v vs /api/state %+v", ss.Name, ss, state)
		}
	}
}

// TestPublicFleetRejectsAskTellTuner pins the validation path: a fleet
// member whose tuner has no backend is rejected up front.
func TestPublicFleetRejectsAskTellTuner(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	tn, err := NewTuner(top, nil, fastTunerOpts(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet(FleetOptions{Slots: 1}, FleetMember{Name: "x", Tuner: tn}); err == nil {
		t.Fatal("fleet accepted an ask/tell-only tuner")
	}
	if _, err := NewFleet(FleetOptions{Slots: 1}, FleetMember{Name: "x"}); err == nil {
		t.Fatal("fleet accepted a nil tuner")
	}
}
