package stormtune

import (
	"encoding/json"
	"fmt"
	"sync"

	"stormtune/internal/core"
	"stormtune/internal/dash"
	"stormtune/internal/fleetlog"
)

// Fleet tuning: many independent sessions — different topologies,
// budgets, strategies and seeds — run concurrently over one shared pool
// of evaluation slots. A fleet-level scheduler grants each freed slot
// to one session by weighted fair share (stride scheduling: equal
// weights share evenly, a weight-3 session gets three grants for every
// one a weight-1 session gets, and no session starves), and the total
// number of in-flight trials never exceeds the fleet's slot count — a
// shared worker pool is saturated, never oversubscribed. The CLI's
// `stormtune fleet -manifest fleet.json -dash :8090` drives one from a
// manifest and serves the aggregated dashboard.
type (
	// Fleet drives several sessions over shared slots; build one with
	// NewFleet and drive it with Run. Status aggregates cross-session
	// state for the fleet dashboard.
	Fleet = core.Fleet
	// FleetStatus is the cross-session state at one instant: shared
	// slot occupancy, per-session progress and the fleet-wide best.
	FleetStatus = core.FleetStatus
	// FleetSessionStatus is one session's entry in a FleetStatus.
	FleetSessionStatus = core.FleetSessionStatus
	// FleetDashboard is the aggregated HTTP surface over a Fleet:
	// GET /, /api/fleet, /sessions/{name}/ (full per-session dashboards
	// with SSE replay) and /healthz.
	FleetDashboard = dash.FleetHandler
	// FleetDashboardOptions configure a FleetDashboard (title, static
	// info, per-session info, shared-pool stats source).
	FleetDashboardOptions = dash.FleetOptions
	// FleetState is the /api/fleet document a FleetDashboard serves.
	FleetState = dash.FleetState
)

// FleetMember is one session of a fleet: a unique name (the result key
// and dashboard URL segment), the Tuner to drive, and its scheduling
// weight. The tuner must have a Backend and must not be driven through
// its own Run/RunBatch/RunAsync while the fleet runs; its
// TunerOptions.Recorder (when set) feeds the aggregated dashboard, and
// its cluster's concurrent-trial capacity caps the session's own
// in-flight trials within the fleet.
type FleetMember struct {
	// Name identifies the session; names must be unique and non-empty.
	Name string
	// Tuner is the session to drive.
	Tuner *Tuner
	// Weight scales the session's share of slot grants (≤ 0 means 1).
	Weight float64
	// MaxInFlight overrides the member's own concurrent-trial cap; 0
	// keeps the tuner's cluster-derived bound. Set it to 1 for strictly
	// sequential members — the setting that makes a member's record
	// sequence deterministic regardless of fleet scheduling, which the
	// crash-safe resume path (FleetOptions.Log) relies on for
	// bit-identical restarts.
	MaxInFlight int
}

// FleetOptions configure a fleet.
type FleetOptions struct {
	// Slots is the total number of trials in flight across all sessions
	// at any instant — size it to the shared worker pool's capacity
	// (e.g. BackendPool.Size()). Values below 1 mean 1.
	Slots int
	// ShareIncumbents propagates each member's new-best configuration
	// to every sibling at report boundaries, re-ranking their
	// warm-start pools mid-run. Give every member's Tuner the same
	// TunerOptions.Archive and the fleet's evidence also accumulates in
	// one shared archive for future warm starts.
	ShareIncumbents bool
	// Log, when set, persists every member's recorder events and
	// session snapshots to the append-only on-disk fleet log as the run
	// progresses, making the fleet crash-safe: a killed run resumes
	// from the log (`stormtune fleet -resume`, or OpenFleetLog +
	// ResumeTuner) with every member restored bit-identically,
	// mid-retry trials included. Members without a Recorder get one
	// wired in automatically.
	Log *FleetLog
}

// NewFleet builds a fleet over the given members. Typically every
// member's Tuner shares one Backend — a BackendPool over `stormtune
// serve` worker processes — and Slots equals the pool size, so the
// fleet keeps every worker busy without ever queueing trials behind a
// saturated pool.
func NewFleet(opts FleetOptions, members ...FleetMember) (*Fleet, error) {
	cms := make([]core.FleetMember, len(members))
	for i, m := range members {
		if m.Tuner == nil {
			return nil, fmt.Errorf("stormtune: fleet member %d (%q) has no tuner", i, m.Name)
		}
		maxInFlight := m.Tuner.bound
		if m.MaxInFlight > 0 {
			maxInFlight = m.MaxInFlight
		}
		rec := m.Tuner.opts.Recorder
		if opts.Log != nil {
			// The log tails the member's Recorder; members driven without
			// one get one wired in now, before the fleet starts emitting.
			if rec == nil {
				rec = core.NewRecorder()
				m.Tuner.sess.AppendObserver(rec)
			}
			if err := opts.Log.attach(m.Name, m.Tuner, rec); err != nil {
				return nil, fmt.Errorf("stormtune: fleet log: attaching %q: %w", m.Name, err)
			}
		}
		cms[i] = core.FleetMember{
			Name:        m.Name,
			Session:     m.Tuner.sess,
			Weight:      m.Weight,
			MaxInFlight: maxInFlight,
			Recorder:    rec,
		}
	}
	return core.NewFleet(core.FleetOptions{Slots: opts.Slots, ShareIncumbents: opts.ShareIncumbents}, cms...)
}

// SealFleetArchives seals every member's archive record after the
// fleet finished — core.Fleet drives raw sessions and cannot seal for
// the tuners. Call it once fleet.Run returns without error; members
// without an archive are skipped.
func SealFleetArchives(members ...FleetMember) error {
	for _, m := range members {
		if m.Tuner == nil {
			continue
		}
		if err := m.Tuner.SealArchive(); err != nil {
			return fmt.Errorf("stormtune: sealing %q: %w", m.Name, err)
		}
	}
	return nil
}

// FleetLog is the append-only on-disk progress log that makes a fleet
// crash-safe: while the fleet runs, every member's recorder events and
// session snapshots stream into one JSONL file (events buffered,
// snapshots fsynced), and after a crash OpenFleetLog recovers the last
// durable snapshot per member — ResumeTuner restores each one
// bit-identically, mid-retry trials included. Create one with
// CreateFleetLog for a fresh run or OpenFleetLog to resume, pass it via
// FleetOptions.Log, and Close it after the fleet returns.
type FleetLog struct {
	l *fleetlog.Log

	errMu    sync.Mutex
	firstErr error
}

// CreateFleetLog starts a fresh fleet log at path, truncating any
// previous one.
func CreateFleetLog(path string) (*FleetLog, error) {
	l, err := fleetlog.Create(path)
	if err != nil {
		return nil, fmt.Errorf("stormtune: %w", err)
	}
	return &FleetLog{l: l}, nil
}

// OpenFleetLog recovers an existing fleet log for resumption: torn
// tails from the crash are truncated, the last durable snapshot per
// member is loaded (MemberState), and the resumed fleet appends to the
// same file.
func OpenFleetLog(path string) (*FleetLog, error) {
	l, err := fleetlog.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stormtune: %w", err)
	}
	return &FleetLog{l: l}, nil
}

// Members lists every member the log holds records for, sorted by name.
func (fl *FleetLog) Members() []string { return fl.l.Members() }

// MemberState returns the member's last durable snapshot, ready for
// ResumeTuner. A nil state with a nil error means the log has no
// snapshot for that member (tune it fresh).
func (fl *FleetLog) MemberState(name string) (*TunerState, error) {
	ms, ok := fl.l.MemberState(name)
	if !ok || ms.State == nil {
		return nil, nil
	}
	var st TunerState
	if err := json.Unmarshal(ms.State, &st); err != nil {
		return nil, fmt.Errorf("stormtune: fleet log: decoding %q snapshot: %w", name, err)
	}
	if st.Version != tunerStateVersion {
		return nil, fmt.Errorf("stormtune: fleet log: %q snapshot has unsupported version %d", name, st.Version)
	}
	if st.Session == nil {
		return nil, fmt.Errorf("stormtune: fleet log: %q snapshot has no session", name)
	}
	return &st, nil
}

// Err returns the first write error the log hit while observing the
// fleet (observer callbacks cannot return errors); nil when every
// append and snapshot succeeded. Check it after the fleet finishes —
// a log with a write error must not be trusted for resume.
func (fl *FleetLog) Err() error {
	fl.errMu.Lock()
	defer fl.errMu.Unlock()
	return fl.firstErr
}

// Close flushes, fsyncs and closes the log file.
func (fl *FleetLog) Close() error { return fl.l.Close() }

func (fl *FleetLog) noteErr(err error) {
	if err == nil {
		return
	}
	fl.errMu.Lock()
	defer fl.errMu.Unlock()
	if fl.firstErr == nil {
		fl.firstErr = err
	}
}

// attach wires a member into the log: an observer appended after the
// member's Recorder tails its event stream and snapshots the session
// at every completion, failure and pass end. An immediate first
// snapshot records the member even if the fleet dies before its first
// completion.
func (fl *FleetLog) attach(name string, t *Tuner, rec *core.Recorder) error {
	// Start the event cursor past what the recorder already holds: a
	// resumed member's primed history is already in the log from the
	// previous run, and re-appending it would double every event.
	evs, _ := rec.EventsSince(0)
	var last int64
	if n := len(evs); n > 0 {
		last = evs[n-1].Seq
	}
	obs := &fleetLogObserver{log: fl, name: name, t: t, rec: rec, lastSeq: last}
	obs.snapshot()
	if err := fl.Err(); err != nil {
		return err
	}
	t.sess.AppendObserver(obs)
	return nil
}

// fleetLogObserver tails one member's recorder into the fleet log. It
// runs from the member session's serialized observer chain, ordered
// after the Recorder — so every event it drains is already recorded,
// and a Snapshot taken here reflects the event that triggered it
// (including the attempt count of a mid-retry failure).
type fleetLogObserver struct {
	log     *FleetLog
	name    string
	t       *Tuner
	rec     *core.Recorder
	lastSeq int64
}

// OnEvent implements Observer.
func (o *fleetLogObserver) OnEvent(e Event) {
	evs, _ := o.rec.EventsSince(o.lastSeq)
	for _, ev := range evs {
		raw, err := json.Marshal(ev)
		if err != nil {
			o.log.noteErr(err)
			return
		}
		if err := o.log.l.AppendEvent(o.name, ev.Seq, raw); err != nil {
			o.log.noteErr(err)
			return
		}
		o.lastSeq = ev.Seq
	}
	switch e.(type) {
	case TrialCompleted, TrialFailed, PassCompleted:
		o.snapshot()
	}
}

// snapshot appends a durable session snapshot covering every event
// drained so far.
func (o *fleetLogObserver) snapshot() {
	raw, err := json.Marshal(o.t.Snapshot())
	if err != nil {
		o.log.noteErr(err)
		return
	}
	o.log.noteErr(o.log.l.Snapshot(o.name, o.lastSeq, raw))
}

// NewFleetDashboard builds the aggregated HTTP dashboard over a fleet:
// GET /api/fleet for the cross-session state, an embedded index page at
// /, and a full per-session dashboard (page, /api/state, SSE
// /api/events with replay-from-ID) under /sessions/{name}/ for every
// member whose Tuner was given a Recorder. Serve it with ServeDashboard
// or mount it on a mux of your own.
func NewFleetDashboard(f *Fleet, opts FleetDashboardOptions) *FleetDashboard {
	return dash.NewFleet(f, opts)
}
