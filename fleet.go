package stormtune

import (
	"fmt"

	"stormtune/internal/core"
	"stormtune/internal/dash"
)

// Fleet tuning: many independent sessions — different topologies,
// budgets, strategies and seeds — run concurrently over one shared pool
// of evaluation slots. A fleet-level scheduler grants each freed slot
// to one session by weighted fair share (stride scheduling: equal
// weights share evenly, a weight-3 session gets three grants for every
// one a weight-1 session gets, and no session starves), and the total
// number of in-flight trials never exceeds the fleet's slot count — a
// shared worker pool is saturated, never oversubscribed. The CLI's
// `stormtune fleet -manifest fleet.json -dash :8090` drives one from a
// manifest and serves the aggregated dashboard.
type (
	// Fleet drives several sessions over shared slots; build one with
	// NewFleet and drive it with Run. Status aggregates cross-session
	// state for the fleet dashboard.
	Fleet = core.Fleet
	// FleetStatus is the cross-session state at one instant: shared
	// slot occupancy, per-session progress and the fleet-wide best.
	FleetStatus = core.FleetStatus
	// FleetSessionStatus is one session's entry in a FleetStatus.
	FleetSessionStatus = core.FleetSessionStatus
	// FleetDashboard is the aggregated HTTP surface over a Fleet:
	// GET /, /api/fleet, /sessions/{name}/ (full per-session dashboards
	// with SSE replay) and /healthz.
	FleetDashboard = dash.FleetHandler
	// FleetDashboardOptions configure a FleetDashboard (title, static
	// info, per-session info, shared-pool stats source).
	FleetDashboardOptions = dash.FleetOptions
	// FleetState is the /api/fleet document a FleetDashboard serves.
	FleetState = dash.FleetState
)

// FleetMember is one session of a fleet: a unique name (the result key
// and dashboard URL segment), the Tuner to drive, and its scheduling
// weight. The tuner must have a Backend and must not be driven through
// its own Run/RunBatch/RunAsync while the fleet runs; its
// TunerOptions.Recorder (when set) feeds the aggregated dashboard, and
// its cluster's concurrent-trial capacity caps the session's own
// in-flight trials within the fleet.
type FleetMember struct {
	// Name identifies the session; names must be unique and non-empty.
	Name string
	// Tuner is the session to drive.
	Tuner *Tuner
	// Weight scales the session's share of slot grants (≤ 0 means 1).
	Weight float64
}

// FleetOptions configure a fleet.
type FleetOptions struct {
	// Slots is the total number of trials in flight across all sessions
	// at any instant — size it to the shared worker pool's capacity
	// (e.g. BackendPool.Size()). Values below 1 mean 1.
	Slots int
	// ShareIncumbents propagates each member's new-best configuration
	// to every sibling at report boundaries, re-ranking their
	// warm-start pools mid-run. Give every member's Tuner the same
	// TunerOptions.Archive and the fleet's evidence also accumulates in
	// one shared archive for future warm starts.
	ShareIncumbents bool
}

// NewFleet builds a fleet over the given members. Typically every
// member's Tuner shares one Backend — a BackendPool over `stormtune
// serve` worker processes — and Slots equals the pool size, so the
// fleet keeps every worker busy without ever queueing trials behind a
// saturated pool.
func NewFleet(opts FleetOptions, members ...FleetMember) (*Fleet, error) {
	cms := make([]core.FleetMember, len(members))
	for i, m := range members {
		if m.Tuner == nil {
			return nil, fmt.Errorf("stormtune: fleet member %d (%q) has no tuner", i, m.Name)
		}
		cms[i] = core.FleetMember{
			Name:        m.Name,
			Session:     m.Tuner.sess,
			Weight:      m.Weight,
			MaxInFlight: m.Tuner.bound,
			Recorder:    m.Tuner.opts.Recorder,
		}
	}
	return core.NewFleet(core.FleetOptions{Slots: opts.Slots, ShareIncumbents: opts.ShareIncumbents}, cms...)
}

// SealFleetArchives seals every member's archive record after the
// fleet finished — core.Fleet drives raw sessions and cannot seal for
// the tuners. Call it once fleet.Run returns without error; members
// without an archive are skipped.
func SealFleetArchives(members ...FleetMember) error {
	for _, m := range members {
		if m.Tuner == nil {
			continue
		}
		if err := m.Tuner.SealArchive(); err != nil {
			return fmt.Errorf("stormtune: sealing %q: %w", m.Name, err)
		}
	}
	return nil
}

// NewFleetDashboard builds the aggregated HTTP dashboard over a fleet:
// GET /api/fleet for the cross-session state, an embedded index page at
// /, and a full per-session dashboard (page, /api/state, SSE
// /api/events with replay-from-ID) under /sessions/{name}/ for every
// member whose Tuner was given a Recorder. Serve it with ServeDashboard
// or mount it on a mux of your own.
func NewFleetDashboard(f *Fleet, opts FleetDashboardOptions) *FleetDashboard {
	return dash.NewFleet(f, opts)
}
