package stormtune

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stormtune/internal/storm"
)

// statelessFaultBackend injects a deterministic, crash-independent
// fault pattern: the first evaluation attempt of every third trial is
// lost; the retry succeeds. Because the injection depends only on
// (trial ID, attempt) — no in-process state — a resumed run sees the
// exact same faults the uninterrupted reference did, even for a trial
// captured mid-retry.
type statelessFaultBackend struct{ inner Backend }

func (b statelessFaultBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	if tr.ID%3 == 0 && tr.Attempt == 1 {
		return storm.Result{}, fmt.Errorf("injected: trial %d attempt 1 lost", tr.ID)
	}
	return b.inner.Run(ctx, tr)
}

// TestPublicFleetKillResumeBitIdentical is the crash-safety acceptance
// pin: a fleet persisting to a FleetLog, killed mid-run (log abandoned
// un-Closed, a torn half-record appended as a crash mid-write would),
// resumes from the recovered log and finishes with every member's
// record sequence and incumbent bit-identical to an uninterrupted
// reference run — injected retries included.
func TestPublicFleetKillResumeBitIdentical(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	names := []string{"alpha", "beta"}
	seeds := []int64{3, 7}
	steps := []int{7, 5}

	backend := func() Backend {
		return statelessFaultBackend{inner: AsBackend(quietEval(top, SmallCluster()))}
	}
	memberOpts := func(i int) TunerOptions {
		opts := fastTunerOpts(seeds[i], steps[i])
		opts.Cluster = ptrCluster(SmallCluster())
		opts.Retry = RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}
		return opts
	}
	build := func(i int, extra Observer) FleetMember {
		opts := memberOpts(i)
		opts.Observer = extra
		tn, err := NewTuner(top, backend(), opts)
		if err != nil {
			t.Fatal(err)
		}
		// MaxInFlight 1 makes each member's record sequence independent
		// of fleet scheduling — the determinism resume relies on.
		return FleetMember{Name: names[i], Tuner: tn, MaxInFlight: 1}
	}

	// Reference: uninterrupted, no log.
	ref, err := NewFleet(FleetOptions{Slots: 2}, build(0, nil), build(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if len(want[name].Records) != steps[i] {
			t.Fatalf("reference %q ran %d records, want %d", name, len(want[name].Records), steps[i])
		}
	}

	// Run 1: logged, killed after alpha's third completion.
	path := filepath.Join(t.TempDir(), "fleet.log")
	flog, err := CreateFleetLog(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	killer := ObserverFunc(func(e Event) {
		if _, ok := e.(TrialCompleted); ok {
			mu.Lock()
			completed++
			if completed == 3 {
				cancel()
			}
			mu.Unlock()
		}
	})
	fleet1, err := NewFleet(FleetOptions{Slots: 2, Log: flog}, build(0, killer), build(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	if err := flog.Err(); err != nil {
		t.Fatalf("fleet log hit a write error before the kill: %v", err)
	}
	// Crash: the log is never Closed (buffered events die with the
	// process), and the process died mid-append — half a record, no
	// newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"event","member":"alpha","seq":99,"ev`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 2: recover the log and resume every member.
	flog2, err := OpenFleetLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer flog2.Close()
	if got := flog2.Members(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("recovered members = %v", got)
	}
	members := make([]FleetMember, len(names))
	for i, name := range names {
		st, err := flog2.MemberState(name)
		if err != nil {
			t.Fatal(err)
		}
		if st == nil {
			t.Fatalf("no snapshot recovered for %q: the attach-time snapshot guarantees one", name)
		}
		// Retry policy and budget travel in the snapshot; resume needs
		// only topology + backend.
		tn, err := ResumeTuner(st, top, backend(), TunerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = FleetMember{Name: name, Tuner: tn, MaxInFlight: 1}
	}
	fleet2, err := NewFleet(FleetOptions{Slots: 2, Log: flog2}, members...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fleet2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := flog2.Err(); err != nil {
		t.Fatalf("resumed fleet log error: %v", err)
	}

	for _, name := range names {
		recordsEqual(t, want[name].Records, got[name].Records)
		if want[name].BestStep != got[name].BestStep {
			t.Fatalf("%q best step %d, want %d", name, got[name].BestStep, want[name].BestStep)
		}
		wb, _ := want[name].Best()
		gb, _ := got[name].Best()
		if wb.Config.Fingerprint() != gb.Config.Fingerprint() {
			t.Fatalf("%q incumbent diverged after resume", name)
		}
	}
}
