package stormtune

import (
	"context"
	"net"
	"net/http"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/dash"
)

// Live observability: a Recorder keeps the full event history and the
// derived state of a session — per-trial status, attempt counts,
// timing, the incumbent trace — and a Dashboard serves it over HTTP
// (JSON snapshot, SSE event stream with replay, embedded live page).
// Wire a Recorder in through TunerOptions.Recorder and serve
// NewDashboard(rec, opts) for the duration of the run; the CLI's
// `stormtune tune -dash :8090` does exactly this.
type (
	// Recorder is a concurrency-safe Observer keeping the event history
	// and derived session state, queryable via Snapshot. Compose it with
	// other observers via MultiObserver, or set TunerOptions.Recorder.
	Recorder = core.Recorder
	// RecorderSnapshot is the derived state at one instant.
	RecorderSnapshot = core.RecorderSnapshot
	// RecordedEvent is one history entry in serializable form; Seq is
	// the SSE replay cursor.
	RecordedEvent = core.RecordedEvent
	// TrialView is the Recorder's per-trial state (status, attempts,
	// timing, measurement).
	TrialView = core.TrialView
	// TrialStatus is a trial lifecycle state: pending, running,
	// retrying, done or failed.
	TrialStatus = core.TrialStatus
	// IncumbentPoint is one point of the best-so-far curve.
	IncumbentPoint = core.IncumbentPoint
	// RetunePoint is one retune episode in a Recorder snapshot: the
	// trigger (sim time, baseline, degraded sample, reason) and, once
	// the episode finishes, its outcome.
	RetunePoint = core.RetunePoint
	// WorkerStats is one backend-pool member's live counters.
	WorkerStats = core.WorkerStats
	// Dashboard is the HTTP surface over a Recorder: GET /, /api/state,
	// /api/events (SSE) and /healthz.
	Dashboard = dash.Handler
	// DashboardOptions configure a Dashboard (title, static run info,
	// backend-pool stats source).
	DashboardOptions = dash.Options
)

// Trial lifecycle states a TrialView reports.
const (
	StatusPending  = core.StatusPending
	StatusRunning  = core.StatusRunning
	StatusRetrying = core.StatusRetrying
	StatusDone     = core.StatusDone
	StatusFailed   = core.StatusFailed
)

// NewRecorder builds an empty Recorder.
func NewRecorder() *Recorder { return core.NewRecorder() }

// MultiObserver composes observers: each event is delivered to every
// non-nil member in order. Use it to watch a session with a Recorder
// and a progress printer at once.
func MultiObserver(obs ...Observer) Observer { return core.MultiObserver(obs...) }

// NewDashboard builds the HTTP dashboard over a recorder. The handler
// is read-only and safe to serve while the session runs; mount it on a
// mux of your own or serve it directly with ServeDashboard.
func NewDashboard(rec *Recorder, opts DashboardOptions) *Dashboard {
	return dash.New(rec, opts)
}

// ServeDashboard serves h on addr until ctx is cancelled, then shuts
// the server down gracefully (SSE subscribers get a bounded grace
// before the listener closes). It blocks; run it on its own goroutine
// alongside the session driver. To make a bad address a synchronous
// error before the run starts, bind the listener yourself and use
// ServeDashboardListener.
func ServeDashboard(ctx context.Context, addr string, h http.Handler, grace time.Duration) error {
	return dash.Serve(ctx, addr, h, grace)
}

// ServeDashboardListener is ServeDashboard over a caller-bound
// listener, which it takes ownership of.
func ServeDashboardListener(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	return dash.ServeListener(ctx, ln, h, grace)
}
