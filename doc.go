// Package stormtune is a reproduction of "Machines Tuning Machines:
// Configuring Distributed Stream Processors with Bayesian Optimization"
// (Fischer, Gao & Bernstein, IEEE CLUSTER 2015).
//
// It provides, as a library:
//
//   - a Storm/Trident cluster simulator that serves as the black-box
//     objective function (topology + configuration → measured
//     throughput), reproducing the mechanisms the paper identifies:
//     per-tuple busy-wait cost, resource contention that scales service
//     time with parallelism, mini-batch pipelining, acker bookkeeping,
//     receiver threads, scheduler capacity and measurement noise;
//   - a from-scratch Gaussian-process Bayesian optimizer in the style
//     of Spearmint (Matérn-5/2 ARD kernel, slice-sampled
//     hyperparameters, Expected Improvement);
//   - the GGen layer-by-layer topology generator and the paper's
//     synthetic workload modifications (time imbalance, resource
//     contention), plus the Sundog real-world topology;
//   - the four tuning strategies of the evaluation (pla, ipla, bo,
//     ibo), the §V-D parameter sets (h, h+bs+bp, bs+bp+cc) and the
//     experimental protocol (passes, early stopping, best-config
//     re-runs);
//   - an experiment harness regenerating every table and figure of the
//     evaluation (Table II, Figures 3–8), plus concurrent-trials
//     ("batch") and dispatch-mode ("async") scaling experiments.
//
// # Tuning sessions
//
// The paper's workflow is a long-running, interruptible session — §III-C
// notes that Spearmint's pause/resume "turned out to be important" on
// the shared lab cluster — and the API is built around that shape. A
// Tuner is an ask/tell session: Propose hands out Trials, the caller
// measures them however it wants (the bundled simulators, or a real
// cluster the library does not control), and Report feeds the results
// back:
//
//	tn, _ := stormtune.NewTuner(t, nil, stormtune.TunerOptions{Steps: 60})
//	for {
//		trials, _ := tn.Propose(ctx)
//		if len(trials) == 0 {
//			break
//		}
//		for _, tr := range trials {
//			tn.Report(tr, measure(tr.Config)) // your cluster here
//		}
//	}
//	best, _ := tn.Best()
//
// Three drivers automate the loop against a configured Backend, all
// honoring context cancellation and deadlines:
//
//   - Tuner.Run(ctx) — one trial at a time, the paper's procedure;
//   - Tuner.RunBatch(ctx, q) — barrier batches of q concurrently
//     evaluated constant-liar suggestions; every round waits for its
//     slowest trial;
//   - Tuner.RunAsync(ctx, q) — free-slot refill: up to q trials in
//     flight and a replacement proposed the moment any one completes,
//     which beats the barrier wall-clock when trial durations vary
//     (real deployments have stragglers). q is clamped to
//     ClusterSpec.MaxConcurrentTrials rather than oversubscribing.
//
// Sessions emit typed events (TrialStarted, TrialCompleted,
// TrialFailed, TrialRetried, NewBest, PassCompleted,
// ParallelismClamped) to a registered Observer — the CLI renders its
// live progress line from them — and can be paused at any point:
// Tuner.Snapshot serializes the records, pending trials (attempt
// counts included) and ask/tell log; ResumeTuner replays that log
// against a freshly built optimizer so the resumed run continues
// bit-identically to an uninterrupted one, RNG state included.
//
// # Backends, failures and retries
//
// Trials are evaluated through the Backend contract:
//
//	Run(ctx context.Context, tr Trial) (Result, error)
//
// ctx carries the session's cancellation and the trial's deadline
// (TunerOptions.TrialTimeout); Trial carries the configuration, run
// index, trial ID and retry attempt. The two return paths are distinct
// on purpose, following the observation that stream-processor
// measurements on shared infrastructure get lost, not just noisy:
//
//   - A Result with Failed set is a valid measurement of a bad
//     configuration — the scheduler could not place it
//     (FailurePlacement) — and teaches the optimizer to avoid the
//     region.
//   - A non-nil error means the measurement was lost: a timeout, a
//     dropped connection, a crashed worker. The session's RetryPolicy
//     (TunerOptions.Retry) re-dispatches the trial with exponential
//     backoff; because the retry re-uses the trial's RunIndex, a
//     recovered measurement is bit-identical to one that never failed.
//     When the attempt budget is spent, the session records a
//     pessimistic FailedResult (FailureEvaluation) and moves on.
//
// AsBackend adapts any Evaluator (both simulators, Averaged, Jittered)
// to the contract. Migrating pre-Backend code is mechanical:
//
//	tn, _ := stormtune.NewTuner(t, ev, opts)                      // before
//	tn, _ := stormtune.NewTuner(t, stormtune.AsBackend(ev), opts) // after
//
// Quick start with a driver:
//
//	t := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
//	ev := stormtune.NewFluidSim(t, stormtune.PaperCluster(), stormtune.SinkTuples, 1)
//	tn, _ := stormtune.NewTuner(t, stormtune.AsBackend(ev), stormtune.TunerOptions{Steps: 60})
//	res, _ := tn.RunAsync(ctx, 4)
//
// The legacy one-shot entry points (Tune, TuneBatch, AutoTune) are
// gone; NewTuner with a driver is the single way in.
//
// # Remote evaluation
//
// Any Backend can be served as a JSON-over-HTTP evaluation service and
// driven from another process — tuning as a service, decoupled from
// the machines that run the measurements. A worker is multi-tenant:
// NewBackendServer plus RegisterTopology build a server that routes
// each POST /run by the trial's topology fingerprint (the `stormtune
// serve -topology a,b` subcommand is a thin wrapper), optionally behind
// bearer-token auth (BackendServerOptions.Auth) and admission control
// (BackendServerOptions.Admission — refusals carry queue depth and a
// Retry-After estimate). NewRemoteBackend is the client:
//
//	// worker processes:  stormtune serve -addr 127.0.0.1:8077 -topology small,medium -token S
//	bk := stormtune.NewRemoteBackend("http://127.0.0.1:8077", stormtune.RemoteBackendOptions{
//		Auth: stormtune.RemoteCredentials{Token: "S"},
//	})
//	info, err := stormtune.CheckRemoteBackend(ctx, bk, t, stormtune.SinkTuples) // fail fast on mismatch
//	tn, _ := stormtune.NewTuner(t, bk, stormtune.TunerOptions{
//		Steps: 60,
//		Retry: stormtune.RetryPolicy{MaxAttempts: 4, Backoff: time.Second},
//	})
//	res, _ := tn.RunAsync(ctx, 4)
//
// A RemoteBackend is safe for concurrent trials; NewBackendPool
// combines one client per worker so a session (or a whole fleet of
// heterogeneous sessions) saturates a pool of worker processes, each
// trial routed to a member serving its topology. The pool sheds
// admission-refused trials to less-loaded members, evicts members whose
// transport keeps failing and re-probes them for readmission. Setting
// RemoteBackendOptions.Transport.Retries additionally re-POSTs requests
// whose transport failed (connection refused, reset) before involving
// the session at all — safe because evaluations are pure functions of
// (config, run index); it defaults to 0, so by default every lost round
// trip surfaces to the RetryPolicy like any other lost evaluation.
//
// # Live observability
//
// The session's event stream becomes a live surface through two
// composable pieces. A Recorder is an Observer that keeps the full
// event history plus the derived state a human watching a run wants:
// per-trial status (pending → running → retrying → done/failed),
// attempt counts, wall-clock timing, the incumbent and the best-so-far
// convergence curve — all queryable at any moment via
// Recorder.Snapshot. MultiObserver composes it with other observers,
// and TunerOptions.Recorder is the shorthand that wires one in next to
// TunerOptions.Observer:
//
//	rec := stormtune.NewRecorder()
//	tn, _ := stormtune.NewTuner(t, bk, stormtune.TunerOptions{
//		Steps:    60,
//		Recorder: rec,                                  // derived live state
//		Observer: stormtune.ObserverFunc(logEvent),     // still delivered
//	})
//
// NewDashboard serves a Recorder over HTTP: GET /api/state returns the
// full JSON snapshot (plus per-worker in-flight counts when
// DashboardOptions.PoolStats is wired to a BackendPool), GET
// /api/events is a Server-Sent-Events stream of the history with
// replay — ?after=N or the standard Last-Event-ID header resumes from
// any sequence number, so late subscribers and reconnecting browsers
// catch up before following live — GET /healthz is a liveness probe,
// and GET / is an embedded self-refreshing page rendering the
// incumbent curve and trial table. ServeDashboard runs it with a
// graceful, bounded shutdown; the CLI's `stormtune tune -dash :8090`
// serves it for the duration of a run. When resuming from a snapshot,
// ResumeTuner primes TunerOptions.Recorder with the snapshotted
// records first, so the rebuilt dashboard shows the whole incumbent
// trace, not just the continuation.
//
// # Fleet tuning
//
// A production tuning service runs many sessions at once — different
// topologies, budgets, strategies and seeds — over a bounded pool of
// evaluation capacity. NewFleet takes named FleetMembers (each a Tuner,
// usually sharing one BackendPool and each carrying its own Recorder)
// and Fleet.Run drives them all concurrently: a fleet-level scheduler
// grants every freed slot to one session by weighted fair share
// (stride scheduling — proportional to FleetMember.Weight, and no
// session starves), the total number of in-flight trials never exceeds
// FleetOptions.Slots, and each session is additionally capped by its
// cluster's concurrent-trial capacity. Sessions keep their full
// single-session behavior: retries, typed events, recorders,
// snapshots.
//
//	a, _ := stormtune.NewTuner(t, pool, optsA) // optsA.Recorder = stormtune.NewRecorder()
//	b, _ := stormtune.NewTuner(t, pool, optsB)
//	fleet, _ := stormtune.NewFleet(stormtune.FleetOptions{Slots: pool.Size()},
//		stormtune.FleetMember{Name: "a", Tuner: a},
//		stormtune.FleetMember{Name: "b", Tuner: b, Weight: 2})
//	results, _ := fleet.Run(ctx) // map[string]TuneResult, one per member
//
// Fleet.Status aggregates cross-session state (per-session progress,
// incumbents, slot occupancy) and NewFleetDashboard serves it over
// HTTP: GET /api/fleet is the aggregated JSON, GET / an embedded fleet
// index page, and every member with a Recorder gets a complete
// single-session dashboard — page, /api/state, replayable SSE
// /api/events — under /sessions/{name}/. The CLI's `stormtune fleet
// -manifest fleet.json -dash :8090` builds all of this from a small
// JSON manifest (workers, slots, sessions).
//
// # Continuous tuning
//
// A configuration tuned once is only optimal for the workload it was
// tuned under. Watch (and the `stormtune watch` subcommand) runs the
// session that never ends: an initial tune, then a hold phase probing
// the incumbent on the live stream while a degradation monitor keeps a
// noise-aware rolling baseline of utilization, then — on a sustained
// run of degraded or backpressured samples (hysteresis and a cooldown
// guard against noise and thrash) — a conservative retune, then back
// to holding. The retune is seeded from the incumbent and its
// candidates are bounded to a trust region around it that widens after
// consecutive improvements and shrinks on regression, so exploration
// stays near what already works while production traffic rides on
// every trial. Retunes re-enter the normal ask/tell session loop, so
// retries, snapshots, Recorders and dashboards work unchanged; the
// typed HoldSampled, RetuneTriggered and RetuneCompleted events carry
// the episode stream to observers and the dashboard.
//
//	w, _ := stormtune.NewWatcher(t, stormtune.AsBackend(
//		stormtune.Drifting(ev, stormtune.FlashCrowd{At: 3600, Magnitude: 2}, 300)),
//		stormtune.WatchOptions{Steps: 40, Horizon: 86400})
//	_ = w.Run(ctx) // tune, hold, retune on drift, repeat
//
// Drifting wraps any Evaluator with a deterministic time-varying
// offered load (Diurnal, FlashCrowd, Trend, Squall, composed with
// ComposeDrift or parsed from a CLI spec by ParseDrift): the inner
// evaluator measures capacity, delivered throughput is min(capacity,
// offered), and trials whose capacity falls short are flagged
// backpressured. The whole loop runs on a simulated clock — no
// wall-clock read sits in any decision path — so a fixed seed replays
// the same episode sequence and a WatchState snapshot taken mid-retune
// resumes bit-identically (ResumeWatcher).
//
// # Transfer learning
//
// Every run above starts cold, rediscovering what previous runs over
// the same (or a similar) topology already learned. A session archive
// gives runs a memory. OpenArchive opens a persistent, crash-safe
// store (append-only JSON-lines segments plus an index, fsync on
// seal; NewMemArchive is the in-memory twin for tests); setting
// TunerOptions.Archive makes the session append a compact record per
// completed trial, keyed by the topology's structural fingerprint and
// a feature vector (component counts, depth, fan-out, TIIM class,
// contention, cluster dims). Records seal on a clean finish;
// a run killed mid-flight leaves its record unsealed so ResumeTuner
// can re-attach and continue appending without ever duplicating a
// trial.
//
// WarmStartOptions (off by default) turns the archived evidence into
// a head start: donors are ranked exact-fingerprint-first, then by
// weighted distance over the feature vector, and the best donor's
// incumbent and top-k configs replace part of the LHS budget —
// mapped through matching parameter spaces only. With Prior set, the
// GP additionally fits around a kernel-smoothed prior mean built from
// the donor's z-scored observations, down-weighted by similarity.
// Below WarmStartOptions.MinSimilarity the run stays cold, so a
// dissimilar archive never hurts; for a fixed archive snapshot and
// seed the warm-started run is bit-identical. Tuner.Transfer reports
// what was computed, and the Recorder/dashboard surface it as
// warmStarted, warmDonor and warmSimilarity in /api/state.
//
//	arch, _ := stormtune.OpenArchive("arch")
//	tn, _ := stormtune.NewTuner(t, backend, stormtune.TunerOptions{
//		Archive:   arch,
//		WarmStart: stormtune.WarmStartOptions{Enabled: true, Prior: true},
//	})
//
// A Fleet can share one archive: FleetOptions.ShareIncumbents makes a
// NewBest in one member re-rank its siblings' warm-start pools at
// their next pass boundary, and SealFleetArchives seals every
// member's record after a clean fleet run. The CLI wires all of this
// behind `-archive DIR` on tune, fleet and watch, and `stormtune
// archive list|show|gc|export|import` inspects and manages the store
// (gc drops unsealed records nothing will resume; export/import move
// evidence between archives as JSON lines).
//
// # Concurrent trials
//
// The paper evaluates one configuration at a time, but a real cluster
// can host several trial deployments side by side. The optimizer's
// SuggestBatch(q) proposes q configurations per round using the
// constant-liar strategy: each already-suggested but unmeasured point
// is conditioned into the surrogate with a fantasy objective (the worst
// observed value by default), so the acquisition spreads the batch over
// the landscape instead of proposing the same maximum q times. The BO
// strategies expose this through core.BatchStrategy, and
// ClusterSpec.MaxConcurrentTrials bounds a sensible q. Internally the
// acquisition candidate grid and the per-hyper-sample GP refits are
// scored by a worker pool (Options.Workers); results are bit-identical
// for any worker count and fixed seed.
//
// # Determinism contracts
//
// The guarantees above — bit-identical results for a fixed seed and
// any worker count, and snapshot/resume runs indistinguishable from
// uninterrupted ones — depend on invariants that are easy to erode:
// no global or wall-clock-seeded RNGs in the proposal path, no
// wall-clock reads in decision logic, no map-iteration order leaking
// into emitted output, no observer dispatch under a held lock, and
// contexts threaded through parameters rather than stored. These are
// enforced mechanically by the repo's own analyzer suite
// (internal/lint, run as `go run ./cmd/stormlint ./...` by `make
// lint` and CI); intentional exceptions carry //lint: directives with
// their justification. See README "Static analysis".
//
// See the examples directory for runnable programs (examples/quickstart
// for the session API, examples/resume for snapshot/resume),
// ARCHITECTURE.md for the layer map and the incremental-GP cache
// design, and DESIGN.md for the mapping between paper artifacts and
// modules.
package stormtune
