// Package stormtune is a reproduction of "Machines Tuning Machines:
// Configuring Distributed Stream Processors with Bayesian Optimization"
// (Fischer, Gao & Bernstein, IEEE CLUSTER 2015).
//
// It provides, as a library:
//
//   - a Storm/Trident cluster simulator that serves as the black-box
//     objective function (topology + configuration → measured
//     throughput), reproducing the mechanisms the paper identifies:
//     per-tuple busy-wait cost, resource contention that scales service
//     time with parallelism, mini-batch pipelining, acker bookkeeping,
//     receiver threads, scheduler capacity and measurement noise;
//   - a from-scratch Gaussian-process Bayesian optimizer in the style
//     of Spearmint (Matérn-5/2 ARD kernel, slice-sampled
//     hyperparameters, Expected Improvement), with pause/resume;
//   - the GGen layer-by-layer topology generator and the paper's
//     synthetic workload modifications (time imbalance, resource
//     contention), plus the Sundog real-world topology;
//   - the four tuning strategies of the evaluation (pla, ipla, bo,
//     ibo), the §V-D parameter sets (h, h+bs+bp, bs+bp+cc) and the
//     experimental protocol (passes, early stopping, best-config
//     re-runs);
//   - an experiment harness regenerating every table and figure of the
//     evaluation (Table II, Figures 3–8), plus a concurrent-trials
//     scaling experiment ("batch").
//
// # Concurrent trials
//
// The paper evaluates one configuration at a time, but a real cluster
// can host several trial deployments side by side. The optimizer's
// SuggestBatch(q) proposes q configurations per round using the
// constant-liar strategy: each already-suggested but unmeasured point
// is conditioned into the surrogate with a fantasy objective (the worst
// observed value by default), so the acquisition spreads the batch over
// the landscape instead of proposing the same maximum q times. The BO
// strategies expose this through core.BatchStrategy, TuneBatch
// evaluates a batch's trials concurrently, Protocol.Concurrency and
// AutoTuneOptions.Parallel plumb it through the experiment procedure,
// and ClusterSpec.MaxConcurrentTrials bounds a sensible q. Internally
// the acquisition candidate grid and the per-hyper-sample GP refits are
// scored by a worker pool (Options.Workers); results are bit-identical
// for any worker count and fixed seed.
//
// Quick start:
//
//	t := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
//	ev := stormtune.NewFluidSim(t, stormtune.PaperCluster(), stormtune.SinkTuples, 1)
//	cfg, res, err := stormtune.AutoTune(t, ev, stormtune.AutoTuneOptions{Steps: 30, Parallel: 4})
//
// See the examples directory for runnable programs and DESIGN.md for
// the mapping between paper artifacts and modules.
package stormtune
