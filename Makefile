# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

# bash for pipefail: a crashing benchmark run must fail the pipe, not
# hand benchjson a partial report that slips through the gate.
SHELL := /bin/bash

# GATE_BENCH selects both what the gate runs and what benchcmp filters
# on — one variable, so the two sets cannot diverge (a baseline
# refreshed from a fuller report must never contain benchmarks the gate
# run does not produce).
GATE_BENCH   = ^Benchmark(BOSuggest(Sequential|Parallel)Scorer|BOSuggestLargeHistory(/n\d+)?|GPObserveIncremental|FleetSchedule|MonitorObserve|ArchiveQuery|WarmStartSeed)$$
GATE_PERCENT = 0.30

.PHONY: build test lint stormlint bench bench-baseline bench-gate bench-gp dash-smoke fleet-smoke serve-multi-smoke watch-smoke archive-smoke

build:
	go build ./... && go build ./examples/...

test:
	go test -short -race ./...

# The single lint entry point: formatting, go vet, staticcheck and the
# repo's own stormlint analyzer suite (internal/lint — determinism and
# concurrency contracts; see README "Static analysis"). staticcheck
# honors the committed staticcheck.conf. Install it with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
	  echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi
	go vet ./...
	staticcheck ./...
	go run ./cmd/stormlint ./...

# stormlint alone — fast enough to run on every save.
stormlint:
	go run ./cmd/stormlint ./...

bench:
	go test -run '^$$' -bench . -benchtime 1x ./...

# The GP/BO hot-path benchmarks alone: fit, incremental observe,
# decision steps at small and large history. Fast enough to run while
# iterating on internal/gp, internal/linalg or internal/bo.
bench-gp:
	go test -run '^$$' -bench '^Benchmark(GPFit|GPObserveIncremental|BOSuggest.*)$$' -benchtime 3x -count 3 .

# Refresh the committed bench-regression baseline. Run this on the same
# class of machine CI uses (or accept that the first CI run after a
# hardware change may need a re-baseline), then commit the file:
#   make bench-baseline && git add BENCH_baseline.json
bench-baseline:
	set -o pipefail; go test -run '^$$' -bench '$(GATE_BENCH)' -benchtime 3x -count 3 . \
	  | go run ./cmd/benchjson -o BENCH_baseline.json

# The CI regression gate: fresh scorer numbers vs the committed
# baseline, failing on >$(GATE_PERCENT) ns/op growth.
bench-gate:
	set -o pipefail; go test -run '^$$' -bench '$(GATE_BENCH)' -benchtime 3x -count 3 . \
	  | go run ./cmd/benchjson -o BENCH_gate.json
	go run ./cmd/benchcmp -baseline BENCH_baseline.json -current BENCH_gate.json \
	  -filter '$(GATE_BENCH)' -threshold $(GATE_PERCENT)

# The CI dashboard smoke test, runnable locally.
dash-smoke:
	./scripts/dash-smoke.sh

# The CI fleet smoke test: two live serve workers, a real 3-session
# `stormtune fleet` run, /api/fleet + per-session SSE probes.
fleet-smoke:
	./scripts/fleet-smoke.sh

# The CI serving-plane smoke test: one authed worker serving two
# topologies, a heterogeneous fleet over it, a kill -9 mid-run, and a
# `-resume` that must reproduce the uninterrupted run's summary.
serve-multi-smoke:
	./scripts/serve-multi-smoke.sh

# The CI continuous-tuning smoke test: a live `stormtune watch` under a
# flash-crowd drift, asserting the retune episode shows up in
# /api/state and on the SSE stream.
watch-smoke:
	./scripts/watch-smoke.sh

# The CI archive smoke test: cold tune with -archive, `stormtune
# archive list/show`, warm re-tune (warmStarted probed via /api/state),
# gc of the abandoned record, export/import round trip.
archive-smoke:
	./scripts/archive-smoke.sh
