package stormtune

import (
	"context"
	"testing"
)

func TestPublicQuickstartPath(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	ev := NewFluidSim(top, PaperCluster(), SinkTuples, 1)
	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{Steps: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	best, ok := tr.Best()
	if !ok {
		t.Fatalf("no successful run: %+v", tr)
	}
	if best.Result.Throughput <= 0 {
		t.Fatalf("throughput = %v", best.Result.Throughput)
	}
	if len(best.Config.Hints) != top.N() {
		t.Fatalf("config has %d hints for %d nodes", len(best.Config.Hints), top.N())
	}
}

func TestPublicCustomTopology(t *testing.T) {
	top, err := NewTopology("mini",
		[]Node{
			{Name: "in", Kind: Spout, TimeUnits: 5, Selectivity: 1, TupleBytes: 64},
			{Name: "work", Kind: Bolt, TimeUnits: 10, Selectivity: 1, TupleBytes: 64},
		},
		[]Edge{{From: 0, To: 1, Grouping: Shuffle}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewFluidSim(top, SmallCluster(), SinkTuples, 1)
	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{
		Steps: 10, Strategy: NewPLA(top, DefaultSyntheticConfig(top, 1)), StopAfterZeros: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if best, ok := tr.Best(); !ok || best.Result.Throughput <= 0 {
		t.Fatalf("pla found nothing: %+v", tr)
	}
}

func TestPublicSundogAndDES(t *testing.T) {
	sd := Sundog()
	des := NewBatchDES(sd, SmallCluster(), SourceTuples)
	r := des.Run(DefaultConfig(sd, 2), 0)
	if r.Failed || r.Throughput <= 0 {
		t.Fatalf("DES sundog run failed: %+v", r)
	}
}

func TestPublicProtocol(t *testing.T) {
	top := BuildSynthetic("small", Condition{TimeImbalance: 1}, 1)
	ev := NewFluidSim(top, PaperCluster(), SinkTuples, 1)
	p := DefaultProtocol()
	p.Steps, p.Passes, p.BestReruns = 5, 1, 3
	out := RunProtocol(AsBackend(ev), func(int) Strategy { return NewIPLA(top, DefaultSyntheticConfig(top, 1)) }, p)
	if out.Summary.N != 3 {
		t.Fatalf("summary N = %d", out.Summary.N)
	}
}

func TestPublicTunerBatchDriver(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	spec := SmallCluster()
	ev := NewFluidSim(top, spec, SinkTuples, 1)
	strat := NewBO(top, spec, DefaultSyntheticConfig(top, 1), BOOptions{Seed: 3})
	if _, ok := strat.(BatchStrategy); !ok {
		t.Fatal("BO strategy should expose batch suggestion")
	}
	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{
		Steps: 8, Strategy: strat, Cluster: &spec,
		Template: ptrConfig(DefaultSyntheticConfig(top, 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tn.RunBatch(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 8 {
		t.Fatalf("ran %d steps, want 8", len(tr.Records))
	}
	if best, ok := tr.Best(); !ok || best.Result.Throughput <= 0 {
		t.Fatalf("batch tuning found nothing: %+v", tr)
	}
	if q := MaxConcurrentTrials(spec, DefaultSyntheticConfig(top, 1).TotalTasks()); q < 1 {
		t.Fatalf("MaxConcurrentTrials = %d", q)
	}
}

func ptrConfig(c Config) *Config { return &c }

func TestPublicTunerParallel(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	ev := NewFluidSim(top, PaperCluster(), SinkTuples, 1)
	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{Steps: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tn.RunBatch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := tr.Best()
	if !ok {
		t.Fatalf("no successful run: %+v", tr)
	}
	if best.Result.Throughput <= 0 {
		t.Fatalf("throughput = %v", best.Result.Throughput)
	}
	if len(best.Config.Hints) != top.N() {
		t.Fatalf("config has %d hints for %d nodes", len(best.Config.Hints), top.N())
	}
}

func TestTunerNoSuccessfulRun(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	// A one-machine cluster with one slot cannot place the topology at
	// all: every run fails.
	tiny := ClusterSpec{Machines: 1, CoresPerMachine: 1, CoreMillisPerSec: 1000,
		NICBytesPerSec: 1e6, TaskSlotsPerMachine: 1, ThrashTasksPerCore: 1}
	ev := NewFluidSim(top, tiny, SinkTuples, 1)
	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{Steps: 3, Cluster: &tiny})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Best(); ok {
		t.Fatal("expected no successful run on an unplaceable cluster")
	}
}
