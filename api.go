package stormtune

import (
	"context"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Re-exported model types. Aliases keep the internal packages as the
// single source of truth while giving library users one import path.
type (
	// Topology is a Storm/Trident operator DAG.
	Topology = topo.Topology
	// Node is one operator (spout or bolt).
	Node = topo.Node
	// Edge connects operators with a grouping strategy.
	Edge = topo.Edge
	// Condition is one cell of the synthetic 2×2 grid (time imbalance ×
	// contention).
	Condition = topo.Condition
	// ClusterSpec describes the simulated hardware.
	ClusterSpec = cluster.Spec
	// Config carries the Table I configuration parameters.
	Config = storm.Config
	// Result is one measurement run.
	Result = storm.Result
	// Failure classifies a failed run: a configuration the scheduler
	// could not place (FailurePlacement) is a valid zero-performance
	// measurement, while a lost measurement (FailureEvaluation) is a
	// pessimistic stand-in recorded after the retry budget is spent.
	Failure = storm.Failure
	// Evaluator is the black-box objective (simulated cluster). Tuning
	// sessions consume the context-aware Backend contract instead — wrap
	// an Evaluator with AsBackend.
	Evaluator = storm.Evaluator
	// Metric selects the throughput definition.
	Metric = storm.Metric
	// Strategy is a configuration optimizer (pla, ipla, bo, ibo).
	Strategy = core.Strategy
	// BatchStrategy is a Strategy that proposes several configurations
	// at once for concurrent trial deployments (the BO strategies
	// implement it via constant-liar batch suggestion).
	BatchStrategy = core.BatchStrategy
	// Protocol is the paper's experimental procedure.
	Protocol = core.Protocol
	// Outcome aggregates a protocol execution.
	Outcome = core.Outcome
	// TuneResult is a single optimization pass.
	TuneResult = core.TuneResult
	// BOOptions configure the Bayesian strategies.
	BOOptions = core.BOOptions
	// ParamSet selects which parameters the Bayesian optimizer
	// searches.
	ParamSet = core.ParamSet
)

// Node kinds and groupings.
const (
	Spout   = topo.Spout
	Bolt    = topo.Bolt
	Shuffle = topo.Shuffle
	Fields  = topo.Fields
)

// Failure classifications.
const (
	// FailureNone marks a successful run.
	FailureNone = storm.FailureNone
	// FailurePlacement marks an unplaceable configuration (a valid
	// zero-performance measurement).
	FailurePlacement = storm.FailurePlacement
	// FailureTimeout marks a run that never reached steady state.
	FailureTimeout = storm.FailureTimeout
	// FailureEvaluation marks a permanently lost measurement, recorded
	// pessimistically after the retry budget was spent.
	FailureEvaluation = storm.FailureEvaluation
)

// FailedResult builds the pessimistic observation a permanently failed
// trial records; custom Report-driven callers can use it to feed a
// lost measurement back explicitly.
func FailedResult(f Failure, msg string) Result { return storm.FailedResult(f, msg) }

// Throughput metrics.
const (
	// SinkTuples counts tuples/s arriving at sinks (the synthetic
	// experiments' axis).
	SinkTuples = storm.SinkTuples
	// SourceTuples counts ingested tuples/s (the Sundog axis).
	SourceTuples = storm.SourceTuples
)

// Parameter sets of §V-D.
const (
	Hints         = core.Hints
	HintsBatch    = core.HintsBatch
	BatchCC       = core.BatchCC
	InformedHints = core.InformedHints
)

// NewTopology validates and constructs a topology.
func NewTopology(name string, nodes []Node, edges []Edge) (*Topology, error) {
	return topo.New(name, nodes, edges)
}

// Sundog builds the real-world entity-ranking topology of Figure 2.
func Sundog() *Topology { return topo.Sundog() }

// BuildSynthetic generates one of the paper's synthetic topologies
// ("small", "medium", "large") under a condition.
func BuildSynthetic(size string, cond Condition, seed int64) *Topology {
	return topo.BuildSynthetic(size, cond, seed)
}

// PaperCluster returns the evaluation cluster of §IV-C (80 machines,
// 320 cores).
func PaperCluster() ClusterSpec { return cluster.Paper() }

// SmallCluster returns a laptop-scale cluster for experimentation.
func SmallCluster() ClusterSpec { return cluster.Small() }

// NewFluidSim builds the fast steady-state evaluator.
func NewFluidSim(t *Topology, spec ClusterSpec, metric Metric, noiseSeed int64) Evaluator {
	return storm.NewFluidSim(t, spec, metric, noiseSeed)
}

// NewBatchDES builds the discrete-event batch-pipeline evaluator.
func NewBatchDES(t *Topology, spec ClusterSpec, metric Metric) Evaluator {
	return storm.NewBatchDES(t, spec, metric)
}

// Averaged wraps an evaluator so every configuration is measured k
// times and the mean reported — the noise-reduction improvement §VI of
// the paper proposes as future work.
func Averaged(ev Evaluator, k int) Evaluator { return storm.Averaged(ev, k) }

// DefaultConfig returns the manually tuned deployment configuration of
// §V-D with the given uniform parallelism hint.
func DefaultConfig(t *Topology, hint int) Config { return storm.DefaultConfig(t, hint) }

// DefaultSyntheticConfig returns the fixed batching configuration used
// by the synthetic parallelism experiments.
func DefaultSyntheticConfig(t *Topology, hint int) Config {
	return storm.DefaultSyntheticConfig(t, hint)
}

// NewPLA builds the parallel-linear-ascent baseline.
func NewPLA(t *Topology, template Config) Strategy { return core.NewPLA(t, template) }

// NewIPLA builds the informed linear baseline.
func NewIPLA(t *Topology, template Config) Strategy { return core.NewIPLA(t, template) }

// NewBO builds a Bayesian-optimization strategy.
func NewBO(t *Topology, spec ClusterSpec, template Config, opts BOOptions) Strategy {
	return core.NewBO(t, spec, template, opts)
}

// MaxConcurrentTrials reports how many trial deployments needing
// tasksPerTrial task instances a cluster can host at once — the upper
// bound for TuneBatch's q on real hardware.
func MaxConcurrentTrials(spec ClusterSpec, tasksPerTrial int) int {
	return spec.MaxConcurrentTrials(tasksPerTrial)
}

// DefaultProtocol returns the paper's experimental protocol (60 steps,
// 2 passes, 30 best-config re-runs).
func DefaultProtocol() Protocol { return core.DefaultProtocol() }

// RunProtocol executes the full protocol for a strategy family against
// a backend (wrap a simulator with AsBackend). Each pass runs as a
// tuning session; see RunProtocolContext for a cancellable variant.
func RunProtocol(b Backend, factory func(pass int) Strategy, p Protocol) Outcome {
	return core.RunProtocol(b, core.StrategyFactory(factory), p)
}

// RunProtocolContext executes the protocol with cancellation: a
// cancelled ctx stops mid-pass and returns the work completed so far
// together with ctx's error.
func RunProtocolContext(ctx context.Context, b Backend, factory func(pass int) Strategy, p Protocol) (Outcome, error) {
	return core.RunProtocolContext(ctx, b, core.StrategyFactory(factory), p)
}
