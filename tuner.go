package stormtune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// Session types re-exported from the core package.
type (
	// Backend evaluates trials: Run(ctx, Trial) either returns the
	// measurement (a Result with Failed set is still a valid, zero-
	// performing observation) or an error meaning the measurement was
	// lost — which the session's RetryPolicy handles. Wrap a simulator
	// with AsBackend, reach a worker process with NewRemoteBackend, or
	// implement the interface for your own cluster harness.
	Backend = core.Backend
	// Trial is one proposed configuration evaluation: evaluate
	// Trial.Config (passing Trial.RunIndex to the evaluator, or running
	// it on whatever system you control) and hand the measurement back
	// via Tuner.Report. It carries the trial ID, the retry attempt and
	// the per-trial deadline.
	Trial = core.Trial
	// RetryPolicy governs lost evaluations: attempts per trial and the
	// exponential backoff between them. The zero value never retries.
	RetryPolicy = core.RetryPolicy
	// RunRecord is one completed optimization step.
	RunRecord = core.RunRecord
	// Event is a typed session notification; the concrete types are
	// TrialStarted, TrialCompleted, TrialFailed, TrialRetried, NewBest,
	// PassCompleted and ParallelismClamped.
	Event = core.Event
	// TrialStarted reports a trial handed out for evaluation.
	TrialStarted = core.TrialStarted
	// TrialCompleted reports a trial's measurement fed back in.
	TrialCompleted = core.TrialCompleted
	// TrialFailed reports an evaluation attempt whose measurement was
	// lost; Permanent marks the retry budget as spent.
	TrialFailed = core.TrialFailed
	// TrialRetried reports a failed trial being re-attempted.
	TrialRetried = core.TrialRetried
	// NewBest reports a trial that improved the session's best.
	NewBest = core.NewBest
	// PassCompleted reports that a driver finished.
	PassCompleted = core.PassCompleted
	// ParallelismClamped reports a driver reducing its requested
	// parallelism to the cluster's concurrent-trial capacity.
	ParallelismClamped = core.ParallelismClamped
	// Observer receives session events.
	Observer = core.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = core.ObserverFunc
)

// AsBackend adapts an Evaluator (the bundled simulators and their
// wrappers) to the Backend contract; a nil evaluator yields a nil
// Backend for ask/tell-only sessions. Existing Evaluator-based callers
// migrate by wrapping: NewTuner(t, AsBackend(ev), opts).
func AsBackend(ev Evaluator) Backend { return core.AsBackend(ev) }

// BackendPool fans concurrent trials out over a set of member
// backends, routing each trial to a member serving its topology
// fingerprint and shedding to less-loaded workers on admission
// refusals; its Stats method exposes per-worker counters (in-flight,
// completed, errors, shed, health) for the dashboard's workers table.
type BackendPool = core.PoolBackend

// BackendPoolOptions tune a pool's health tracking (eviction after
// consecutive transport failures, background re-probing of evicted
// members). The zero value is ready to use.
type BackendPoolOptions = core.PoolOptions

// NewBackendPool distributes concurrent trials over member backends —
// e.g. one NewRemoteBackend per worker process — so a single session
// driving RunAsync(ctx, q) saturates up to q workers, and a fleet of
// heterogeneous sessions shares one pool, each trial routed to a
// worker serving its topology (run CheckRemoteBackend per member
// first: it primes the routing cache). Each Run borrows a free
// eligible member for the duration of the evaluation; a worker
// refusing at capacity costs nothing — the trial is shed to the next
// eligible member. Members can join and leave the live pool (Add,
// Remove), unreachable members are evicted and re-probed, and Stats
// samples the members' live counters (wire it into
// DashboardOptions.PoolStats to watch the pool).
func NewBackendPool(members ...Backend) (*BackendPool, error) {
	return core.NewPoolBackend(members...)
}

// NewBackendPoolWith is NewBackendPool with explicit health options.
func NewBackendPoolWith(opts BackendPoolOptions, members ...Backend) (*BackendPool, error) {
	return core.NewPoolBackendWith(opts, members...)
}

// TunerOptions configure a tuning session.
type TunerOptions struct {
	// Steps is the evaluation budget — the total number of trials the
	// session will propose (default 60, as in the paper).
	Steps int
	// Set selects the searched parameters (default Hints).
	Set ParamSet
	// Template supplies the non-searched parameters; zero value uses the
	// paper's §V-D deployment defaults with hint 1.
	Template *Config
	// Cluster defaults to the paper's 80-machine cluster. It bounds the
	// max-tasks search dimension and the concurrent-trial capacity
	// RunAsync clamps its parallelism to.
	Cluster *ClusterSpec
	// Seed drives the optimizer (default 1).
	Seed int64
	// StopAfterZeros stops the session after this many consecutive
	// zero-performance trials; 0 disables (the paper uses 3 for the
	// linear strategies, 0 for BO).
	StopAfterZeros int
	// Parallel is the number of in-flight trials Propose keeps topped up
	// (default 1 — the paper's sequential procedure). The Run* drivers
	// take their own q and ignore it.
	Parallel int
	// Retry governs trials whose evaluation errors (Backend.Run
	// returning a non-nil error): how many attempts each trial gets and
	// with what backoff before the session records a pessimistic failed
	// observation. The zero value never retries.
	Retry RetryPolicy
	// TrialTimeout bounds each evaluation attempt's wall-clock; trials
	// carry it as their deadline and backends receive it via ctx. Zero
	// means unbounded.
	TrialTimeout time.Duration
	// Observer receives the session's typed events; nil disables.
	Observer Observer
	// Recorder, when set, also receives every event (composed with
	// Observer via MultiObserver) and accumulates the live state the
	// dashboard serves. ResumeTuner primes it from the snapshot first,
	// so a resumed run's dashboard shows the whole incumbent trace.
	Recorder *Recorder
	// Strategy overrides the built-in Bayesian optimizer with a custom
	// strategy (e.g. NewPLA). Snapshots of such a session can only be
	// resumed by supplying an equally fresh Strategy to ResumeTuner.
	Strategy Strategy

	// Archive, when set, records this session into a persistent store
	// of tuning evidence: trials append as they complete (off the
	// propose/report hot path) and the record seals with the final
	// session state when a driver finishes. Ask/tell callers seal
	// explicitly via Tuner.SealArchive.
	Archive Archive
	// ArchiveKey pins the archive record key; empty derives a
	// deterministic key from topology fingerprint, strategy and seed
	// plus a run counter. Resume reuses the snapshotted key.
	ArchiveKey string
	// WarmStart enables transfer learning from Archive: prior
	// incumbents and top configurations of sufficiently similar
	// archived runs replace part of the initial design, optionally
	// with an archived-runs prior on the GP mean. Requires Archive and
	// the built-in Bayesian strategy; off by default.
	WarmStart WarmStartOptions

	// Optimizer knobs, forwarded to the Bayesian strategy (zero values
	// select the Spearmint-like defaults). They are recorded in
	// snapshots so a resumed run rebuilds the exact same optimizer.
	Candidates       int
	HyperSamples     int
	LocalSearchIters int
	MaxGPPoints      int
}

// composedObserver wires the Recorder in next to the Observer. The
// typed-nil check matters: a nil *Recorder must not reach MultiObserver
// as a non-nil Observer interface.
func (o TunerOptions) composedObserver() Observer {
	if o.Recorder == nil {
		return o.Observer
	}
	return core.MultiObserver(o.Recorder, o.Observer)
}

func (o TunerOptions) boOptions() BOOptions {
	return BOOptions{
		Set:  o.Set,
		Seed: o.Seed,
		Opt: bo.Options{
			Candidates:       o.Candidates,
			HyperSamples:     o.HyperSamples,
			LocalSearchIters: o.LocalSearchIters,
			MaxGPPoints:      o.MaxGPPoints,
		},
	}
}

// Tuner is a long-lived, interruptible tuning session over one topology
// and backend — the workflow the paper ran with Spearmint on its
// shared cluster (§III-C), exposed as an ask/tell API. Propose hands
// out trials and Report feeds measurements back, so callers can drive
// evaluations themselves, including against external clusters the
// library does not control; the Run, RunBatch and RunAsync drivers
// automate the loop against the configured Backend with context-based
// cancellation, per-trial deadlines, retry of lost evaluations, typed
// events, and Snapshot/ResumeTuner pause points.
type Tuner struct {
	sess     *core.Session
	opts     TunerOptions
	topoName string
	topoN    int
	// fp is the tuned topology's structural fingerprint in hex — the
	// routing key stamped onto every trial.
	fp     string
	custom bool
	// bound is the cluster's concurrent-trial capacity for the template
	// configuration; RunAsync clamps its q to it.
	bound int
	// arec archives completed trials when TunerOptions.Archive is set;
	// archiveKey is its record key and transfer the applied warm start
	// (nil for cold runs).
	arec       *core.ArchiveRecorder
	archiveKey string
	transfer   *TransferSeed
}

// NewTuner starts a tuning session for a topology against a backend —
// a wrapped simulator (AsBackend), a remote evaluation service
// (NewRemoteBackend), a pool of workers (NewBackendPool), or any
// Backend of the caller's own. b may be nil when the caller evaluates
// trials itself through Propose/Report (the Run* drivers then return
// an error).
func NewTuner(t *Topology, b Backend, opts TunerOptions) (*Tuner, error) {
	if t == nil {
		return nil, fmt.Errorf("stormtune: nil topology")
	}
	if opts.Steps <= 0 {
		opts.Steps = 60
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	spec := cluster.Paper()
	if opts.Cluster != nil {
		spec = *opts.Cluster
	}
	template := storm.DefaultConfig(t, 1)
	if opts.Template != nil {
		template = opts.Template.Clone()
	}
	opts.Cluster = &spec
	opts.Template = &template

	strat := opts.Strategy
	custom := strat != nil
	if strat == nil {
		strat = core.NewBO(t, spec, template, opts.boOptions())
	}

	// Archive + transfer wiring. The warm start must attach before the
	// session issues its first suggestion, and the session's own record
	// must never serve as its donor — so the key is derived, transfer
	// computed, and only then the record begun.
	var arec *core.ArchiveRecorder
	var transfer *TransferSeed
	archiveKey := ""
	if opts.Archive != nil {
		archiveKey = opts.ArchiveKey
		if archiveKey == "" {
			archiveKey = deriveArchiveKey(opts.Archive, t.Name, t.Fingerprint(), strat.Name(), opts.Seed)
		}
		meta := core.SessionMetaFor(archiveKey, t, spec, strat.Name(), opts.Set, opts.Seed)
		if bs, ok := strat.(*core.BOStrategy); ok && opts.WarmStart.Enabled {
			transfer = core.ComputeTransfer(bs, opts.Archive, meta, opts.WarmStart)
			bs.ApplyTransfer(transfer)
		}
		var err error
		if arec, err = core.NewArchiveRecorder(opts.Archive, meta); err != nil {
			return nil, fmt.Errorf("stormtune: archive: %w", err)
		}
	}
	if opts.Recorder != nil && transfer != nil {
		opts.Recorder.SetTransfer(transfer)
	}
	observer := opts.composedObserver()
	if arec != nil {
		observer = core.MultiObserver(observer, arec)
	}

	sess := core.NewSession(strat, b, core.SessionOptions{
		MaxSteps:       opts.Steps,
		StopAfterZeros: opts.StopAfterZeros,
		Retry:          opts.Retry,
		TrialTimeout:   opts.TrialTimeout,
		Observer:       observer,
		Fingerprint:    TopologyFingerprint(t),
	})
	return &Tuner{
		sess:       sess,
		opts:       opts,
		topoName:   t.Name,
		topoN:      t.N(),
		fp:         TopologyFingerprint(t),
		custom:     custom,
		bound:      spec.MaxConcurrentTrials(template.TotalTasks()),
		arec:       arec,
		archiveKey: archiveKey,
		transfer:   transfer,
	}, nil
}

// Propose asks for the next trials to evaluate, topping the in-flight
// set up to TunerOptions.Parallel (the free-slot computation is atomic,
// so concurrent callers cannot jointly over-issue past the cap). An
// empty result with a nil error means nothing is currently askable:
// the budget is spent, the stopping rule fired, or Parallel trials are
// already pending — report one and ask again.
func (tn *Tuner) Propose(ctx context.Context) ([]Trial, error) {
	return tn.sess.ProposeFill(ctx, tn.opts.Parallel)
}

// Report feeds the measured result of a proposed trial back into the
// session. Trials of a batch may be reported in any order.
func (tn *Tuner) Report(tr Trial, res Result) error { return tn.sess.Report(tr, res) }

// Pending returns the proposed-but-unreported trials, in issue order.
func (tn *Tuner) Pending() []Trial { return tn.sess.Pending() }

// Done reports whether the session will propose no further trials.
func (tn *Tuner) Done() bool { return tn.sess.Done() }

// Result summarizes the session so far.
func (tn *Tuner) Result() TuneResult { return tn.sess.Result() }

// Best returns the best completed trial; ok is false if every run
// failed (or none completed).
func (tn *Tuner) Best() (RunRecord, bool) { return tn.sess.Result().Best() }

// HyperState returns the built-in Bayesian strategy's current
// hyperparameter posterior, or nil before its first GP fit (or when
// the session runs a custom strategy). Hand it to a follow-up session
// via RetuneOptions.InitHypers to warm-start its hyperparameters.
func (tn *Tuner) HyperState() *HyperState {
	if bs, ok := tn.sess.Strategy().(*core.BOStrategy); ok {
		return bs.HyperState()
	}
	return nil
}

// MaxParallel reports how many concurrent trials of the template
// configuration the session's cluster can host — the bound RunAsync
// clamps its q to.
func (tn *Tuner) MaxParallel() int { return tn.bound }

// Fingerprint returns the tuned topology's structural fingerprint in
// hex — the routing key every proposed trial carries, matched against
// the served set of multi-tenant workers.
func (tn *Tuner) Fingerprint() string { return tn.fp }

// ArchiveKey returns the key this session records under, empty when
// TunerOptions.Archive was not set.
func (tn *Tuner) ArchiveKey() string { return tn.archiveKey }

// Transfer returns the warm start this session applied, nil for cold
// runs (transfer disabled, no archive, or no donor cleared the
// similarity guard).
func (tn *Tuner) Transfer() *TransferSeed { return tn.transfer }

// SealArchive marks the session's archive record complete, attaching
// the final session state and making the evidence durable. The drivers
// call it on a clean finish; ask/tell callers invoke it themselves
// once Done. Without an archive it is a no-op.
func (tn *Tuner) SealArchive() error {
	if tn.arec == nil {
		return nil
	}
	if err := tn.arec.Seal(tn.sess.Snapshot()); err != nil {
		return err
	}
	return tn.arec.Err()
}

// sealAfterRun seals the archive record after a driver finished
// cleanly; a cancelled run stays unsealed so resume can re-attach.
func (tn *Tuner) sealAfterRun(runErr error) error {
	if runErr != nil || tn.arec == nil || !tn.sess.Done() {
		return runErr
	}
	return tn.SealArchive()
}

// Run drives the session sequentially (the paper's procedure) until
// the budget is spent or ctx is cancelled; on cancellation the partial
// result is returned together with ctx's error.
func (tn *Tuner) Run(ctx context.Context) (TuneResult, error) {
	res, err := tn.sess.Run(ctx)
	return res, tn.sealAfterRun(err)
}

// RunBatch drives the session in barrier batches of q concurrently
// evaluated trials (constant-liar suggestions); each round waits for
// the whole batch. q ≤ 1 reproduces Run.
func (tn *Tuner) RunBatch(ctx context.Context, q int) (TuneResult, error) {
	res, err := tn.sess.RunBatch(ctx, q)
	return res, tn.sealAfterRun(err)
}

// RunAsync drives the session with free-slot refill: up to q trials in
// flight, and the moment any one completes its result is reported and a
// replacement proposed — no barrier, so slow trials never idle the
// other slots. q is clamped to the cluster's concurrent-trial capacity
// (a ParallelismClamped event reports the reduction) instead of
// oversubscribing the cluster. Results are deterministic given the
// seed and completion order; q = 1 matches Run exactly.
func (tn *Tuner) RunAsync(ctx context.Context, q int) (TuneResult, error) {
	if q > tn.bound {
		tn.sess.Emit(ParallelismClamped{Requested: q, Allowed: tn.bound})
		q = tn.bound
	}
	res, err := tn.sess.RunAsync(ctx, q)
	return res, tn.sealAfterRun(err)
}

// TunerState is the serializable snapshot of a Tuner: everything needed
// to rebuild the optimizer (parameter set, seed, optimizer knobs,
// template, cluster) plus the session's records, pending trials and
// ask/tell log. Resuming replays that log against a freshly built
// strategy, so the resumed session continues bit-identically to an
// uninterrupted run — the Spearmint pause/resume workflow (§III-C),
// now at the public API level.
type TunerState struct {
	Version          int                `json:"version"`
	Topology         string             `json:"topology"`
	Nodes            int                `json:"nodes"`
	Steps            int                `json:"steps"`
	Set              ParamSet           `json:"set"`
	Seed             int64              `json:"seed"`
	StopAfterZeros   int                `json:"stopAfterZeros,omitempty"`
	Parallel         int                `json:"parallel,omitempty"`
	Candidates       int                `json:"candidates,omitempty"`
	HyperSamples     int                `json:"hyperSamples,omitempty"`
	LocalSearchIters int                `json:"localSearchIters,omitempty"`
	MaxGPPoints      int                `json:"maxGPPoints,omitempty"`
	Template         Config             `json:"template"`
	Cluster          ClusterSpec        `json:"cluster"`
	Custom           bool               `json:"custom,omitempty"`
	Session          *core.SessionState `json:"session"`
	// ArchiveKey and Transfer carry the archive identity and the
	// applied warm start: resume re-attaches the same record (no
	// double-appends) and reapplies the identical transfer so replay
	// stays bit-exact. The archive itself is not serialized — pass it
	// again via opts.Archive.
	ArchiveKey string        `json:"archiveKey,omitempty"`
	Transfer   *TransferSeed `json:"transfer,omitempty"`
}

const tunerStateVersion = 1

// Snapshot captures the session. It is safe to call at any time — from
// an Observer callback, between ask/tell rounds, or while a driver is
// mid-run; in-flight trials are carried as pending and re-dispatched on
// resume with their original run indices.
func (tn *Tuner) Snapshot() *TunerState {
	o := tn.opts
	return &TunerState{
		Version:          tunerStateVersion,
		Topology:         tn.topoName,
		Nodes:            tn.topoN,
		Steps:            o.Steps,
		Set:              o.Set,
		Seed:             o.Seed,
		StopAfterZeros:   o.StopAfterZeros,
		Parallel:         o.Parallel,
		Candidates:       o.Candidates,
		HyperSamples:     o.HyperSamples,
		LocalSearchIters: o.LocalSearchIters,
		MaxGPPoints:      o.MaxGPPoints,
		Template:         *o.Template,
		Cluster:          *o.Cluster,
		Custom:           tn.custom,
		Session:          tn.sess.Snapshot(),
		ArchiveKey:       tn.archiveKey,
		Transfer:         tn.transfer,
	}
}

// Save writes the snapshot as JSON.
func (s *TunerState) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveFile writes the snapshot to path, creating or truncating it.
func (s *TunerState) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadTunerState reads a snapshot from r.
func LoadTunerState(r io.Reader) (*TunerState, error) {
	var s TunerState
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("stormtune: decoding tuner state: %w", err)
	}
	if s.Version != tunerStateVersion {
		return nil, fmt.Errorf("stormtune: unsupported tuner state version %d", s.Version)
	}
	if s.Session == nil {
		return nil, fmt.Errorf("stormtune: tuner state has no session")
	}
	return &s, nil
}

// LoadTunerStateFile reads a snapshot from a file.
func LoadTunerStateFile(path string) (*TunerState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTunerState(f)
}

// ResumeTuner reconstructs a session from a snapshot against the same
// topology (and a backend of the caller's choice). The snapshot's
// ask/tell log is replayed against a freshly built optimizer, restoring
// its state — RNG position included — exactly, so the resumed run
// continues bit-identically to one that was never interrupted; the
// replay cross-checks every regenerated configuration and fails if the
// topology or options diverge from the snapshotted run.
//
// opts carries the non-serializable and extendable pieces: Observer, a
// Recorder (primed from the snapshot so its dashboard shows the whole
// run), a raised Steps budget, a Retry policy and TrialTimeout fitting the
// new backend's failure profile (zero values keep the snapshot's), and
// — for snapshots of sessions that injected a custom Strategy — an
// equally fresh Strategy instance. All other fields are taken from the
// snapshot.
func ResumeTuner(st *TunerState, t *Topology, b Backend, opts TunerOptions) (*Tuner, error) {
	if st == nil || st.Session == nil {
		return nil, fmt.Errorf("stormtune: nil tuner state")
	}
	if st.Version != tunerStateVersion {
		return nil, fmt.Errorf("stormtune: unsupported tuner state version %d", st.Version)
	}
	if t == nil {
		return nil, fmt.Errorf("stormtune: nil topology")
	}
	if t.N() != st.Nodes {
		return nil, fmt.Errorf("stormtune: topology has %d nodes, snapshot was taken over %d (%s)",
			t.N(), st.Nodes, st.Topology)
	}
	resolved := TunerOptions{
		Steps:            st.Steps,
		Set:              st.Set,
		Seed:             st.Seed,
		StopAfterZeros:   st.StopAfterZeros,
		Parallel:         st.Parallel,
		Candidates:       st.Candidates,
		HyperSamples:     st.HyperSamples,
		LocalSearchIters: st.LocalSearchIters,
		MaxGPPoints:      st.MaxGPPoints,
		Template:         &st.Template,
		Cluster:          &st.Cluster,
		Observer:         opts.Observer,
		Recorder:         opts.Recorder,
	}
	if opts.Steps > 0 {
		resolved.Steps = opts.Steps
	}
	if opts.Parallel > 0 {
		resolved.Parallel = opts.Parallel
	}
	if resolved.Parallel < 1 {
		resolved.Parallel = 1
	}
	// A resumed session may face a different failure profile than the
	// snapshotted one — e.g. resuming a local-simulator run against a
	// RemoteBackend — so a non-zero Retry/TrialTimeout overrides the
	// snapshot's (stored once, in st.Session; core.ResumeSession falls
	// back to it when these are zero).
	resolved.Retry = opts.Retry
	resolved.TrialTimeout = opts.TrialTimeout

	var strat Strategy
	if st.Custom {
		if opts.Strategy == nil {
			return nil, fmt.Errorf("stormtune: snapshot used a custom strategy; pass a fresh one in opts.Strategy")
		}
		strat = opts.Strategy
		resolved.Strategy = opts.Strategy
	} else {
		if opts.Strategy != nil {
			return nil, fmt.Errorf("stormtune: snapshot used the built-in optimizer; opts.Strategy must be nil")
		}
		bs := core.NewBO(t, st.Cluster, st.Template, resolved.boOptions())
		// Reapply the snapshotted warm start before replay: the op-log
		// cross-checks every regenerated proposal, so the resumed
		// optimizer must start from the identical warm design.
		bs.ApplyTransfer(st.Transfer)
		strat = bs
	}

	// Re-attach the archive record (if the caller passes the store
	// again). Begun before the replay so its resume cursor reflects
	// what the archive already holds.
	var arec *core.ArchiveRecorder
	archiveKey := ""
	if opts.Archive != nil {
		resolved.Archive = opts.Archive
		archiveKey = st.ArchiveKey
		if archiveKey == "" {
			archiveKey = deriveArchiveKey(opts.Archive, t.Name, t.Fingerprint(), strat.Name(), st.Seed)
		}
		meta := core.SessionMetaFor(archiveKey, t, st.Cluster, strat.Name(), st.Set, st.Seed)
		var aerr error
		if arec, aerr = core.NewArchiveRecorder(opts.Archive, meta); aerr != nil {
			return nil, fmt.Errorf("stormtune: archive: %w", aerr)
		}
	}
	observer := resolved.composedObserver()
	if arec != nil {
		observer = core.MultiObserver(observer, arec)
	}

	sess, err := core.ResumeSession(st.Session, strat, b, core.SessionOptions{
		MaxSteps:       resolved.Steps,
		StopAfterZeros: resolved.StopAfterZeros,
		Retry:          resolved.Retry,
		TrialTimeout:   resolved.TrialTimeout,
		Observer:       observer,
		Fingerprint:    TopologyFingerprint(t),
	})
	if err != nil {
		return nil, err
	}
	// The snapshot may hold records the archive never saw (e.g. the
	// first run recorded no archive); replay emits no events, so
	// backfill them — the resume cursor skips everything the archive
	// already has, never double-appending pre-snapshot records.
	if arec != nil {
		recs := make([]RunRecord, len(st.Session.Records))
		for i, r := range st.Session.Records {
			recs[i] = RunRecord{Step: r.Step, Config: r.Config, Result: r.Result}
		}
		arec.Backfill(recs)
	}
	// Rebuild the recorder's history from the snapshot — only now that
	// the replay cross-check accepted it (a rejected snapshot must not
	// leave its records in the caller's recorder), and before any live
	// event, so a dashboard shows the pre-snapshot incumbent trace and
	// the carried-over pending trials.
	if resolved.Recorder != nil {
		resolved.Recorder.Prime(st.Session)
		if st.Transfer != nil {
			resolved.Recorder.SetTransfer(st.Transfer)
		}
	}
	return &Tuner{
		sess:       sess,
		opts:       resolved,
		topoName:   st.Topology,
		topoN:      st.Nodes,
		fp:         TopologyFingerprint(t),
		custom:     st.Custom,
		bound:      st.Cluster.MaxConcurrentTrials(st.Template.TotalTasks()),
		arec:       arec,
		archiveKey: archiveKey,
		transfer:   st.Transfer,
	}, nil
}
