package stormtune

import (
	"context"
	"fmt"
	"net/http"

	"stormtune/internal/remote"
)

// Remote evaluation: any Backend can be served as a JSON-over-HTTP
// evaluation service (the `stormtune serve` subcommand does this for
// the bundled simulators) and driven from another process through a
// RemoteBackend client — the decoupled tuner-as-a-service deployment
// where trials run on machines the library does not control. Lost
// measurements (timeouts, dropped connections, crashed workers) surface
// as Backend errors for the session's RetryPolicy to absorb.
type (
	// RemoteBackend is a Backend that evaluates trials by POSTing them
	// to a remote evaluation server. Safe for concurrent trials; combine
	// several with NewBackendPool to drive a pool of worker processes
	// from one session.
	RemoteBackend = remote.Backend
	// RemoteBackendOptions configure the client: HTTP client, per-
	// request timeout, and transparent transport-level retries.
	RemoteBackendOptions = remote.BackendOptions
	// RemoteInfo describes what a server evaluates (topology name,
	// operator count, metric).
	RemoteInfo = remote.Info
	// BackendServerOptions configure a served backend: the /info
	// description, an optional per-run wall-clock cap, and deterministic
	// fault injection for retry-path testing.
	BackendServerOptions = remote.ServerOptions
)

// NewRemoteBackend builds a client for the evaluation server at baseURL
// (e.g. "http://127.0.0.1:8077").
func NewRemoteBackend(baseURL string, opts RemoteBackendOptions) *RemoteBackend {
	return remote.NewBackend(baseURL, opts)
}

// NewBackendHandler exposes a backend as an HTTP evaluation service
// (POST /run, GET /info, GET /healthz) for embedding into a server of
// the caller's own; `stormtune serve` is a thin wrapper around it.
func NewBackendHandler(b Backend, opts BackendServerOptions) http.Handler {
	return remote.NewServer(b, opts).Handler()
}

// CheckRemoteBackend fetches the server's /info and verifies it serves
// the given topology under the given throughput metric: the operator
// counts and metric must match, and when both sides carry a topology
// name, the names must too — a same-shaped but different topology (or
// the right topology measured on the wrong axis) silently optimizes
// the wrong thing. Call it before tuning to fail fast on a
// client/worker mismatch; an entirely unpopulated /info (a custom
// handler with a zero BackendServerOptions.Info) skips the checks.
func CheckRemoteBackend(ctx context.Context, b *RemoteBackend, t *Topology, metric Metric) (RemoteInfo, error) {
	info, err := b.Info(ctx)
	if err != nil {
		return info, err
	}
	if info == (RemoteInfo{}) {
		return info, nil // server did not describe itself at all
	}
	if info.Nodes != 0 && info.Nodes != t.N() {
		return info, &RemoteMismatchError{URL: b.URL(), Served: info, Want: t.Name, WantNodes: t.N(),
			Reason: "operator counts differ"}
	}
	if info.Topology != "" && t.Name != "" && info.Topology != t.Name {
		return info, &RemoteMismatchError{URL: b.URL(), Served: info, Want: t.Name, WantNodes: t.N(),
			Reason: "topology names differ"}
	}
	if info.Metric != "" && info.Metric != metric.String() {
		return info, &RemoteMismatchError{URL: b.URL(), Served: info, Want: t.Name, WantNodes: t.N(),
			Reason: "throughput metrics differ"}
	}
	// Name and node count cannot tell apart two synthetic topologies
	// generated with different seeds; the structural fingerprint can.
	if info.Fingerprint != "" && info.Fingerprint != TopologyFingerprint(t) {
		return info, &RemoteMismatchError{URL: b.URL(), Served: info, Want: t.Name, WantNodes: t.N(),
			Reason: "structural fingerprints differ (generation seed or parameters)"}
	}
	return info, nil
}

// TopologyFingerprint renders a topology's structural hash in the form
// RemoteInfo.Fingerprint carries (serve fills it in automatically;
// custom NewBackendHandler embedders should too).
func TopologyFingerprint(t *Topology) string {
	return fmt.Sprintf("%016x", t.Fingerprint())
}

// RemoteMismatchError reports a worker serving a different topology
// than the session tunes.
type RemoteMismatchError struct {
	URL       string
	Served    RemoteInfo
	Want      string
	WantNodes int
	Reason    string
}

// Error implements error.
func (e *RemoteMismatchError) Error() string {
	return "stormtune: server " + e.URL + " serves " + e.Served.Topology +
		" — refusing to tune " + e.Want + " against it (" + e.Reason + ")"
}
