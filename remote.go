package stormtune

import (
	"context"
	"fmt"
	"strings"

	"stormtune/internal/remote"
)

// Remote evaluation: any Backend can be served as a JSON-over-HTTP
// evaluation service (the `stormtune serve` subcommand does this for
// the bundled simulators) and driven from another process through a
// RemoteBackend client — the decoupled tuner-as-a-service deployment
// where trials run on machines the library does not control. A
// BackendServer is multi-tenant: it registers any number of topologies
// and routes each trial by its structural fingerprint, optionally
// behind bearer-token auth and admission control. Lost measurements
// (timeouts, dropped connections, crashed workers) surface as Backend
// errors for the session's RetryPolicy to absorb; admission refusals
// are consumed by NewBackendPool, which sheds the trial to a
// less-loaded worker.
type (
	// RemoteBackend is a Backend that evaluates trials by POSTing them
	// to a remote evaluation server. Safe for concurrent trials; combine
	// several with NewBackendPool to drive a pool of worker processes
	// from one session.
	RemoteBackend = remote.Backend
	// RemoteBackendOptions configure the client: HTTP client, bearer
	// token (Auth), and the Transport round-trip knobs (request
	// timeout, transparent transport-level retries).
	RemoteBackendOptions = remote.BackendOptions
	// RemoteCredentials is the bearer-token identity shared by client
	// and server options; the zero value is an open endpoint.
	RemoteCredentials = remote.Credentials
	// RemoteTransport bundles the client round-trip knobs — request
	// timeout, transport retries, backoff — shared by single backends
	// and every member of a pool.
	RemoteTransport = remote.Transport
	// RemoteInfo describes a worker: every topology it serves, its live
	// load, and whether it requires auth.
	RemoteInfo = remote.Info
	// RemoteTopology describes one served topology (name, operator
	// count, metric, structural fingerprint — the /run routing key).
	RemoteTopology = remote.TopologyInfo
	// BackendServer is a multi-tenant evaluation server: Register adds
	// topologies, Handler exposes POST /run, GET /info and GET /healthz.
	BackendServer = remote.Server
	// BackendServerOptions configure a BackendServer: bearer-token auth,
	// admission control, an optional per-run wall-clock cap, and
	// deterministic fault injection for retry-path testing.
	BackendServerOptions = remote.ServerOptions
	// RemoteAdmission bounds a server's concurrent evaluations; refused
	// runs carry structured backpressure (429, queue depth, estimated
	// wait, Retry-After) that pools use to shed trials.
	RemoteAdmission = remote.Admission
	// RemoteAuthError reports a request rejected by bearer-token auth;
	// it is permanent — the session fails the trial without burning its
	// retry budget.
	RemoteAuthError = remote.AuthError
	// RemoteUnknownFingerprintError reports a trial routed to a worker
	// that does not serve its topology; Served lists what it does serve.
	RemoteUnknownFingerprintError = remote.UnknownFingerprintError
	// RemoteOverloadedError reports an admission-control refusal: the
	// worker was at capacity and the evaluation never started.
	RemoteOverloadedError = remote.OverloadedError
)

// NewRemoteBackend builds a client for the evaluation server at baseURL
// (e.g. "http://127.0.0.1:8077").
func NewRemoteBackend(baseURL string, opts RemoteBackendOptions) *RemoteBackend {
	return remote.NewBackend(baseURL, opts)
}

// NewBackendServer builds an empty multi-tenant evaluation server;
// register the topologies it serves with RegisterTopology (or the
// server's own Register for custom RemoteTopology descriptions) and
// mount server.Handler(). `stormtune serve` is a thin wrapper around
// it.
func NewBackendServer(opts BackendServerOptions) *BackendServer {
	return remote.NewServer(opts)
}

// RegisterTopology registers a topology and the backend measuring it
// with a server, deriving the RemoteTopology description — name,
// operator count, metric, structural fingerprint — from the topology
// itself so routing and CheckRemoteBackend verification work without
// hand-written metadata.
func RegisterTopology(s *BackendServer, t *Topology, b Backend, metric Metric) error {
	if t == nil {
		return fmt.Errorf("stormtune: nil topology")
	}
	return s.Register(RemoteTopology{
		Topology:    t.Name,
		Nodes:       t.N(),
		Metric:      metric.String(),
		Fingerprint: TopologyFingerprint(t),
	}, b)
}

// CheckRemoteBackend fetches the worker's /info and verifies it serves
// the given topology under the given throughput metric: the topology's
// structural fingerprint must appear in the served set (name and node
// count cannot tell apart two synthetic topologies generated with
// different seeds) and the matched registration's metric must agree —
// the right topology measured on the wrong axis silently optimizes the
// wrong thing. Call it before tuning to fail fast on a client/worker
// mismatch; it also primes the client's cached fingerprint set, which
// NewBackendPool routes by. A server that does not describe itself at
// all (a custom handler with no registered descriptions) skips the
// checks; registrations without a fingerprint fall back to name and
// node-count matching.
func CheckRemoteBackend(ctx context.Context, b *RemoteBackend, t *Topology, metric Metric) (RemoteInfo, error) {
	info, err := b.Info(ctx)
	if err != nil {
		return info, err
	}
	if len(info.Topologies) == 0 {
		return info, nil // server did not describe itself at all
	}
	want := TopologyFingerprint(t)
	mismatch := func(reason string) error {
		return &RemoteMismatchError{
			URL: b.URL(), Served: info,
			Want: t.Name, WantNodes: t.N(), WantFingerprint: want,
			ServedFingerprints: info.Fingerprints(),
			Reason:             reason,
		}
	}
	ti, ok := info.Lookup(want)
	if !ok {
		// A registration without a fingerprint (a custom embedder's
		// hand-written description) can still match structurally.
		for _, cand := range info.Topologies {
			if cand.Fingerprint != "" {
				continue
			}
			if cand.Nodes != 0 && cand.Nodes != t.N() {
				continue
			}
			if cand.Topology != "" && t.Name != "" && cand.Topology != t.Name {
				continue
			}
			ti, ok = cand, true
			break
		}
	}
	if !ok {
		return info, mismatch("no served topology matches the structural fingerprint")
	}
	if ti.Topology != "" && t.Name != "" && ti.Topology != t.Name {
		return info, mismatch("topology names differ")
	}
	if ti.Metric != "" && ti.Metric != metric.String() {
		return info, mismatch("throughput metrics differ")
	}
	return info, nil
}

// TopologyFingerprint renders a topology's structural hash in the form
// RemoteTopology.Fingerprint carries and /run routes by
// (RegisterTopology fills it in automatically; custom embedders should
// too).
func TopologyFingerprint(t *Topology) string {
	return fmt.Sprintf("%016x", t.Fingerprint())
}

// RemoteMismatchError reports a worker that does not serve the topology
// a session tunes: the requested fingerprint is missing from the served
// set, or the matched registration disagrees on name or metric.
type RemoteMismatchError struct {
	// URL is the worker base URL.
	URL string
	// Served is the worker's full /info description.
	Served RemoteInfo
	// Want and WantNodes describe the topology the session tunes;
	// WantFingerprint is its structural hash — the routing key that was
	// looked up.
	Want            string
	WantNodes       int
	WantFingerprint string
	// ServedFingerprints is the worker's served fingerprint set, in
	// registration order.
	ServedFingerprints []string
	// Reason says which check failed.
	Reason string
}

// Error implements error.
func (e *RemoteMismatchError) Error() string {
	names := make([]string, 0, len(e.Served.Topologies))
	for _, ti := range e.Served.Topologies {
		names = append(names, ti.Topology)
	}
	serves := strings.Join(names, ", ")
	if serves == "" {
		serves = "nothing it describes"
	}
	return fmt.Sprintf("stormtune: server %s serves %s — refusing to tune %s [%s] against it (%s)",
		e.URL, serves, e.Want, e.WantFingerprint, e.Reason)
}
