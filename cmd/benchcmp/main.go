// Command benchcmp diffs two benchjson reports and fails on
// regressions, so CI can gate merges on scorer performance.
//
// Usage:
//
//	benchcmp -baseline BENCH_baseline.json -current BENCH_abc123.json \
//	         [-filter '^BenchmarkBOSuggest…$'] [-threshold 0.30]
//
// The gated set is whatever the committed baseline contains (the
// Makefile's GATE_BENCH variable owns it); -filter narrows both sides
// further when set.
//
// For every benchmark matching -filter, the minimum ns/op across the
// report's entries (repeated -count runs collapse to their fastest,
// which is the standard way to de-noise one-shot benchmarks) is
// compared between the two reports. The command exits non-zero when
//
//   - a filtered benchmark regresses by more than -threshold
//     (current > baseline × (1 + threshold)), or
//   - a filtered benchmark present in the baseline is missing from the
//     current report (a silently deleted benchmark must not pass the
//     gate).
//
// Filtered benchmarks new in the current report are listed but do not
// fail the run — refresh the baseline (`make bench-baseline`) to start
// gating them. Improvements are reported and always pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"stormtune/internal/benchfmt"
)

// Benchmark and Report come from the schema package shared with
// cmd/benchjson, so gate and writer cannot drift apart.
type (
	Benchmark = benchfmt.Benchmark
	Report    = benchfmt.Report
)

func load(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// best collapses a report to benchmark → fastest ns/op, keeping only
// names the filter accepts.
func best(r Report, filter *regexp.Regexp) map[string]float64 {
	out := map[string]float64{}
	for _, b := range r.Benchmarks {
		if b.NsPerOp <= 0 || !filter.MatchString(b.Name) {
			continue
		}
		if cur, ok := out[b.Name]; !ok || b.NsPerOp < cur {
			out[b.Name] = b.NsPerOp
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "", "fresh report to gate (required)")
	filterExpr := flag.String("filter", "", "regexp selecting the gated benchmarks (empty: everything in the baseline — the Makefile's GATE_BENCH owns the gated set)")
	threshold := flag.Float64("threshold", 0.30, "maximum tolerated ns/op regression (0.30 = +30%)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -current is required")
		os.Exit(2)
	}
	filter, err := regexp.Compile(*filterExpr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -filter:", err)
		os.Exit(2)
	}

	baseRep, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	curRep, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	base := best(baseRep, filter)
	cur := best(curRep, filter)
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: baseline has no benchmarks matching %q — refresh it (make bench-baseline)\n", *filterExpr)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("gate: %q, threshold +%.0f%% ns/op (baseline %s / current %s)\n",
		*filterExpr, *threshold*100, baseRep.GoVersion, curRep.GoVersion)
	failed := false
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Printf("  FAIL %-44s missing from current report\n", n)
			failed = true
			continue
		}
		delta := (c - b) / b
		verdict := "ok  "
		if delta > *threshold {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-44s %12.0f → %12.0f ns/op  (%+.1f%%)\n", verdict, n, b, c, delta*100)
	}
	// Sorted so two runs of the gate print new benchmarks in the same
	// order (stormlint: maporder).
	newNames := make([]string, 0, len(cur))
	for n := range cur {
		if _, ok := base[n]; !ok {
			newNames = append(newNames, n)
		}
	}
	sort.Strings(newNames)
	for _, n := range newNames {
		fmt.Printf("  new  %-44s %12.0f ns/op (not gated; refresh the baseline to gate it)\n", n, cur[n])
	}
	if failed {
		fmt.Println("benchcmp: regression gate FAILED — investigate, or refresh BENCH_baseline.json if the change is intentional (make bench-baseline)")
		os.Exit(1)
	}
	fmt.Println("benchcmp: gate passed")
}
