// Command experiments regenerates the paper's tables and figures
// against the simulated cluster.
//
// Usage:
//
//	experiments -list
//	experiments [-full] [-all] [id ...]
//
// Ids: table2, table3, fig3, fig4, fig5, fig6, fig7, fig8a, fig8b,
// ablation, batch (concurrent trials) and async (sequential vs barrier
// batch vs free-slot refill under heavy-tailed trial durations). With
// -full the paper's protocol (60/180 steps, 2 passes, 30 re-runs, all
// three sizes) runs; the default is a reduced scale that preserves the
// qualitative shapes. Env knobs for -full: STORMTUNE_BO180=0 drops the
// 180-step strategy, STORMTUNE_FAST_GRID=1 keeps the protocol but
// bounds the optimizer's candidate budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stormtune/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("full", false, "run the paper's full protocol instead of the quick scale")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-full] [-all] [id ...]; -list shows ids")
		os.Exit(2)
	}
	for _, id := range ids {
		if err := experiments.Run(id, sc, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
