// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive one BENCH_*.json per
// run and the performance trajectory can be compared across PRs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson -o BENCH_results.json
//
// Each benchmark line
//
//	BenchmarkBOSuggestParallelScorer-8   1   12345678 ns/op   456 B/op   7 allocs/op
//
// becomes an entry with the name (CPU suffix stripped), the -N GOMAXPROCS
// suffix, iteration count, ns/op, and any extra unit metrics go test
// printed (B/op, allocs/op, custom ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stormtune/internal/benchfmt"
)

// Benchmark and Report come from the schema package shared with
// cmd/benchcmp, so writer and gate cannot drift apart.
type (
	Benchmark = benchfmt.Benchmark
	Report    = benchfmt.Report
)

func main() {
	out := flag.String("o", "BENCH_results.json", "output path for the JSON report")
	flag.Parse()

	report := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		// go test prints "pkg: <import path>" between packages.
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if b, ok := parseBenchLine(line, pkg); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
		fmt.Println(line) // pass through so the human log stays intact
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(report.Benchmarks), *out)
}

// parseBenchLine parses one "BenchmarkX-8 N value ns/op [value unit]..."
// line; ok is false for any other line.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Package: pkg, Procs: procs, Iterations: iters}
	// The rest alternates "value unit".
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			seenNs = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, seenNs
}
