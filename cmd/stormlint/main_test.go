package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestViolationFailsTheRun drives the real CLI path (go list → parse →
// type-check → analyze) against the committed bad fixture and checks
// the exit status contract: violations mean exit 1.
func TestViolationFailsTheRun(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list and the source importer; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on a violating package = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "maporder") || !strings.Contains(out.String(), "emitnolock") {
		t.Fatalf("expected maporder and emitnolock findings, got:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list and the source importer; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./testdata/src/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var rows []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(rows) == 0 {
		t.Fatal("-json reported no diagnostics for the bad fixture")
	}
	for _, r := range rows {
		if r.File == "" || r.Line == 0 || r.Analyzer == "" || r.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", r)
		}
	}
}

// TestEnableDisable checks per-analyzer selection: disabling the two
// analyzers the fixture violates makes the run clean.
func TestEnableDisable(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list and the source importer; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-disable", "maporder,emitnolock", "./testdata/src/bad"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run with violating analyzers disabled = %d, want 0\n%s%s", code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-enable", "maporder", "./testdata/src/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -enable maporder = %d, want 1", code)
	}
	if strings.Contains(out.String(), "emitnolock") {
		t.Fatalf("-enable maporder still ran emitnolock:\n%s", out.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-enable", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer = exit %d, want 2", code)
	}
}

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list = %d, want 0", code)
	}
	for _, name := range []string{"norawrand", "nowallclock", "maporder", "emitnolock", "ctxflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
