// Command stormlint is the multichecker for this module's custom
// static analyzers: the determinism and concurrency contracts the
// tuner's snapshot/resume, retry and fleet-parity guarantees depend
// on, encoded as mechanical checks (see internal/lint).
//
// Usage:
//
//	stormlint [flags] [packages]
//
// with the usual go package patterns (default ./...). Exit status is
// 0 when clean, 1 when any diagnostic is reported, 2 on usage or
// load errors.
//
// Flags:
//
//	-json         emit diagnostics as a JSON array instead of text
//	-list         print the analyzers and their scopes, then exit
//	-enable  csv  run only these analyzers
//	-disable csv  skip these analyzers
//	-all          ignore the default per-analyzer package scopes and
//	              run every analyzer on every package
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stormtune/internal/lint"
	"stormtune/internal/lint/analysis"
	"stormtune/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json output row.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stormlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		list     = fs.Bool("list", false, "list analyzers and exit")
		enable   = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzers to skip")
		unscoped = fs.Bool("all", false, "ignore default package scopes; run everything everywhere")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "stormlint:", err)
		return 2
	}
	if *list {
		printList(stdout, analyzers)
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "stormlint:", err)
		return 2
	}

	scope := lint.DefaultScope
	if *unscoped {
		scope = nil
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		var active []*analysis.Analyzer
		for _, a := range analyzers {
			if lint.InScope(scope, a, p.Path) {
				active = append(active, a)
			}
		}
		if len(active) == 0 {
			continue
		}
		ds, err := analysis.Run(p.Target, active)
		if err != nil {
			fmt.Fprintln(stderr, "stormlint:", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	if *jsonOut {
		rows := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			rows = append(rows, jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(stderr, "stormlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if on != nil && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

func printList(w io.Writer, analyzers []*analysis.Analyzer) {
	for _, a := range analyzers {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
		if scope := lint.DefaultScope[a.Name]; len(scope) > 0 {
			fmt.Fprintf(w, "%-12s   scope: %s\n", "", strings.Join(scope, ", "))
		} else {
			fmt.Fprintf(w, "%-12s   scope: whole module\n", "")
		}
		fmt.Fprintf(w, "%-12s   suppress: //lint:%s <why>\n", "", a.DirectiveToken())
	}
}
