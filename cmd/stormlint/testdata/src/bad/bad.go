// Package bad is a deliberately violating fixture for the stormlint
// CLI tests: a map range feeding an order-sensitive sink and an
// observer dispatch under a held mutex. It lives under testdata so
// ./... patterns (build, vet, the repo-wide stormlint run) never see
// it; the CLI tests list it explicitly.
package bad

import "sync"

// Event is a minimal observer event.
type Event struct{ Name string }

// Observer is a minimal observer.
type Observer interface{ OnEvent(Event) }

// Holder locks around dispatch — the emitnolock violation.
type Holder struct {
	mu  sync.Mutex
	obs Observer
}

// Bad dispatches with the lock held and fans a map out to the
// observer in iteration order — both contract violations.
func (h *Holder) Bad(m map[string]int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for k := range m {
		h.obs.OnEvent(Event{Name: k})
	}
}
