// Command topogen generates the paper's synthetic layer-by-layer
// topologies (Table II) and prints their statistics, optionally
// exporting Graphviz DOT.
//
// Usage:
//
//	topogen [-size small|medium|large|all] [-dot file.dot]
//	        [-tiim 0..1] [-contention 0..1] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"stormtune/internal/experiments"
	"stormtune/internal/ggen"
	"stormtune/internal/topo"
)

func main() {
	size := flag.String("size", "all", "topology size: small, medium, large or all")
	dotFile := flag.String("dot", "", "write the generated DAG as Graphviz DOT to this file")
	tiim := flag.Float64("tiim", 0, "time-complexity imbalance in [0,1]")
	cont := flag.Float64("contention", 0, "contentious compute-mass fraction in [0,1]")
	seed := flag.Int64("seed", 1, "modification seed")
	flag.Parse()

	if *size == "all" && *dotFile == "" {
		experiments.Table2().Render(os.Stdout)
		return
	}
	sizes := []string{*size}
	if *size == "all" {
		sizes = topo.Sizes()
	}
	for _, s := range sizes {
		d := ggen.GenerateMatching(s, 500)
		st := d.ComputeStats()
		fmt.Printf("%s: V=%d E=%d L=%d Src=%d Snk=%d AOD=%.2f\n",
			s, st.V, st.E, st.L, st.Src, st.Snk, st.AvgOutDeg)
		t := topo.BuildSynthetic(s, topo.Condition{TimeImbalance: *tiim, ContentiousFraction: *cont}, *seed)
		fmt.Printf("  topology %q: %d spouts, %d sinks, contentious share %.0f%%\n",
			t.Name, len(t.Spouts()), len(t.Sinks()), 100*t.ContentiousShare())
		if *dotFile != "" {
			if err := os.WriteFile(*dotFile, []byte(d.DOT(s)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", *dotFile)
		}
	}
}
