// The archive subcommand: inspect and maintain a session archive —
// the persistent store `-archive DIR` runs record into and warm-start
// from.
//
//	stormtune archive list -archive DIR
//	stormtune archive show <fingerprint> -archive DIR [-k N]
//	stormtune archive gc -archive DIR
//	stormtune archive export -archive DIR [-o file]
//	stormtune archive import -archive DIR [-i file]
//
// list prints every archived session (key, topology, fingerprint,
// strategy, seed, trials, sealed, best throughput). show takes a
// topology fingerprint — the 16-hex-digit value list prints — and
// details every session archived under it, including its top
// configurations. gc compacts the on-disk log, dropping deleted
// records and orphaned trial data. export writes the whole archive as
// JSON lines to stdout (or -o); import merges such an export into the
// archive, skipping keys that already exist — the transport for moving
// tuning evidence between machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"stormtune"
)

func runArchive(args []string) {
	if len(args) == 0 {
		archiveUsage()
		os.Exit(2)
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "list":
		runArchiveList(rest)
	case "show":
		runArchiveShow(rest)
	case "gc":
		runArchiveGC(rest)
	case "export":
		runArchiveExport(rest)
	case "import":
		runArchiveImport(rest)
	default:
		fmt.Fprintf(os.Stderr, "unknown archive command %q\n", verb)
		archiveUsage()
		os.Exit(2)
	}
}

func archiveUsage() {
	fmt.Fprintln(os.Stderr, `usage: stormtune archive <command> -archive DIR
commands:
  list                  list archived sessions
  show <fingerprint>    detail the sessions archived under a topology fingerprint
  gc                    compact the on-disk log
  export [-o file]      write the archive as JSON lines
  import [-i file]      merge an exported archive`)
}

// openArchiveFlag parses the verb's flags (every verb takes -archive
// DIR) and opens the store; extra registers verb-specific flags first.
func openArchiveFlag(verb string, args []string, extra func(*flag.FlagSet)) (*stormtune.DiskArchive, *flag.FlagSet) {
	fs := flag.NewFlagSet("stormtune archive "+verb, flag.ExitOnError)
	dir := fs.String("archive", "", "session archive directory (required)")
	if extra != nil {
		extra(fs)
	}
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "error: -archive is required")
		fs.Usage()
		os.Exit(2)
	}
	arch, err := stormtune.OpenArchive(*dir)
	if err != nil {
		fatal(err)
	}
	return arch, fs
}

func runArchiveList(args []string) {
	arch, _ := openArchiveFlag("list", args, nil)
	defer arch.Close()
	keys := arch.Keys()
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Println("archive is empty")
		return
	}
	fmt.Printf("%-40s %-10s %16s %-8s %6s %7s %7s %14s\n",
		"key", "topology", "fingerprint", "strategy", "seed", "trials", "sealed", "best")
	for _, k := range keys {
		rec, ok := arch.Get(k)
		if !ok {
			continue
		}
		best := "-"
		if b, found := rec.Best(); found {
			best = fmt.Sprintf("%.0f", b.Y)
		}
		fmt.Printf("%-40s %-10s %016x %-8s %6d %7d %7v %14s\n",
			rec.Meta.Key, rec.Meta.Topology, rec.Meta.Fingerprint, rec.Meta.Strategy,
			rec.Meta.Seed, len(rec.Trials), rec.Sealed, best)
	}
}

func runArchiveShow(args []string) {
	var fpArg string
	// The fingerprint may come before or after the flags.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		fpArg, args = args[0], args[1:]
	}
	var topK *int
	arch, fs := openArchiveFlag("show", args, func(fs *flag.FlagSet) {
		topK = fs.Int("k", 3, "top configurations to print per session")
	})
	defer arch.Close()
	if fpArg == "" && fs.NArg() > 0 {
		fpArg = fs.Arg(0)
	}
	if fpArg == "" {
		fmt.Fprintln(os.Stderr, "error: show needs a topology fingerprint (as printed by `stormtune archive list`)")
		os.Exit(2)
	}
	fp, err := strconv.ParseUint(fpArg, 16, 64)
	if err != nil {
		fatal(fmt.Errorf("bad fingerprint %q: %w", fpArg, err))
	}

	keys := arch.Keys()
	sort.Strings(keys)
	shown := 0
	for _, k := range keys {
		rec, ok := arch.Get(k)
		if !ok || rec.Meta.Fingerprint != fp {
			continue
		}
		shown++
		fmt.Printf("%s\n", rec.Meta.Key)
		fmt.Printf("  topology:  %s (%016x), strategy %s, seed %d\n",
			rec.Meta.Topology, rec.Meta.Fingerprint, rec.Meta.Strategy, rec.Meta.Seed)
		fmt.Printf("  features:  %d nodes, depth %d, fan-out %d\n",
			rec.Meta.Features.Nodes, rec.Meta.Features.Depth, rec.Meta.Features.FanOut)
		fmt.Printf("  trials:    %d (sealed: %v)\n", len(rec.Trials), rec.Sealed)
		for i, tr := range rec.TopK(*topK) {
			fmt.Printf("  top %d:     step %d, %.0f tuples/s, hints %v\n",
				i+1, tr.Step, tr.Y, tr.Config.NormalizedHints())
		}
	}
	if shown == 0 {
		fmt.Printf("no archived sessions for fingerprint %016x\n", fp)
		os.Exit(1)
	}
}

func runArchiveGC(args []string) {
	arch, _ := openArchiveFlag("gc", args, nil)
	defer arch.Close()
	dropped, err := arch.GC()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gc: %d record(s) dropped, %d session(s) kept\n", dropped, len(arch.Keys()))
}

func runArchiveExport(args []string) {
	var out *string
	arch, _ := openArchiveFlag("export", args, func(fs *flag.FlagSet) {
		out = fs.String("o", "", "write to this file instead of stdout")
	})
	defer arch.Close()
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := stormtune.ExportArchive(arch, w); err != nil {
		fatal(err)
	}
}

func runArchiveImport(args []string) {
	var in *string
	arch, _ := openArchiveFlag("import", args, func(fs *flag.FlagSet) {
		in = fs.String("i", "", "read from this file instead of stdin")
	})
	defer arch.Close()
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	n, err := stormtune.ImportArchive(arch, r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("imported %d session(s)\n", n)
}
