// Shared flag wiring for the subcommands that drive tuning sessions.
// tune, fleet and watch all take the same evaluation-robustness and
// archive knobs; registering them through one helper keeps the names,
// defaults and help strings from drifting apart.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"stormtune"
)

// evalFlags bundles the per-trial evaluation knobs — retry policy,
// attempt deadline, session archive — shared by the tune, fleet and
// watch subcommands.
type evalFlags struct {
	retries      *int
	retryBackoff *time.Duration
	trialTimeout *time.Duration
	archiveDir   *string
}

// addEvalFlags registers the shared evaluation flags on fs. Subcommands
// whose sessions run on a simulated timeline (watch) pass
// withTrialTimeout=false: a wall-clock attempt deadline has no meaning
// there, and an accepted-but-ignored flag would be worse than none.
func addEvalFlags(fs *flag.FlagSet, withTrialTimeout bool, archiveHelp string) evalFlags {
	ef := evalFlags{
		retries:      fs.Int("retries", 3, "evaluation attempts per trial before recording a pessimistic failure"),
		retryBackoff: fs.Duration("retry-backoff", time.Second, "wait before a trial's first retry (doubles per attempt)"),
		archiveDir:   fs.String("archive", "", archiveHelp),
	}
	if withTrialTimeout {
		ef.trialTimeout = fs.Duration("trial-timeout", 0, "deadline per evaluation attempt (0 = none)")
	}
	return ef
}

// retryPolicy returns the parsed retry policy.
func (ef evalFlags) retryPolicy() stormtune.RetryPolicy {
	return stormtune.RetryPolicy{MaxAttempts: *ef.retries, Backoff: *ef.retryBackoff}
}

// wantsRetry reports whether the flags ask for more than one attempt.
func (ef evalFlags) wantsRetry() bool { return *ef.retries > 1 }

// trialDeadline returns the per-attempt deadline (zero when the flag was
// not registered or not set).
func (ef evalFlags) trialDeadline() time.Duration {
	if ef.trialTimeout == nil {
		return 0
	}
	return *ef.trialTimeout
}

// openArchive opens the session archive named by -archive; (nil, nil)
// when the flag is unset. The caller owns Close.
func (ef evalFlags) openArchive() (*stormtune.DiskArchive, error) {
	if *ef.archiveDir == "" {
		return nil, nil
	}
	arch, err := stormtune.OpenArchive(*ef.archiveDir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	return arch, nil
}

// remoteOptions builds the client options every remote worker connection
// uses: the shared bearer token and the transport round-trip knobs. The
// trial-level retry policy stays with the session; these retries are
// transparent transport-level ones.
func remoteOptions(token string) stormtune.RemoteBackendOptions {
	return stormtune.RemoteBackendOptions{
		Auth:      stormtune.RemoteCredentials{Token: token},
		Transport: stormtune.RemoteTransport{Retries: 2},
	}
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
