// The fleet subcommand: run many tuning sessions concurrently over one
// shared worker pool, with an aggregated dashboard and a crash-safe
// progress log.
//
//	stormtune fleet -manifest fleet.json [-dash ADDR] [-slots N]
//	                [-timeout D] [-retries N] [-retry-backoff D]
//	                [-trial-timeout D] [-archive DIR] [-token T]
//	                [-state fleet.log] [-resume] [-quiet]
//
// -archive DIR gives every session one shared session archive: each
// records its trials there, warm-starts from sufficiently similar
// archived evidence, and — because the archive is shared — a new best
// found by one member re-ranks its siblings' warm-start pools mid-run
// (incumbent sharing). The records seal when the fleet finishes
// cleanly.
//
// -state FILE streams every member's events and session snapshots to an
// append-only log as the fleet runs; after a crash or kill,
// `stormtune fleet -manifest ... -state FILE -resume` restores every
// member from its last durable snapshot and continues — bit-identically
// to a run that was never interrupted, mid-retry trials included. With
// -state, sessions that do not set "maxInFlight" run sequentially
// (maxInFlight 1): a member's record sequence must be deterministic for
// the resumed run to be bit-exact.
//
// The manifest is a small JSON document naming the shared workers and
// the sessions to run over them:
//
//	{
//	  "title": "nightly retune",
//	  "workers": ["http://127.0.0.1:8077", "http://127.0.0.1:8078"],
//	  "token": "s3cret",
//	  "slots": 2,
//	  "sessions": [
//	    {"name": "bo-small", "topology": "small", "strategy": "bo",
//	     "steps": 40, "seed": 1, "weight": 1},
//	    {"name": "bo-large", "topology": "large", "strategy": "ibo",
//	     "steps": 30, "seed": 2, "weight": 2, "maxInFlight": 1}
//	  ]
//	}
//
// With "workers" set, every session tunes over one shared pool of
// `stormtune serve` processes. Workers are multi-tenant — each serves
// any set of topologies (`stormtune serve -topology small,large`) and
// routes trials by structural fingerprint — so a fleet's sessions may
// tune different topologies over the same pool; the only requirement,
// checked up front, is that every session's topology is served by at
// least one worker. "token" (or -token) authenticates against workers
// started with `serve -token`. Without workers each session evaluates
// against its own in-process simulator; the fleet scheduler still
// enforces the shared slot budget, which then models a shared cluster's
// trial capacity.
//
// "slots" caps the fleet-wide number of in-flight trials (default: the
// worker count, or the session count in-process). Each session is
// additionally capped by its own cluster's concurrent-trial capacity,
// or by its "maxInFlight" when set.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"stormtune"
)

// fleetManifest is the -manifest document.
type fleetManifest struct {
	// Title labels the dashboard (default "stormtune fleet").
	Title string `json:"title,omitempty"`
	// Workers are `stormtune serve` URLs forming the shared pool; empty
	// means in-process simulators.
	Workers []string `json:"workers,omitempty"`
	// Token is the bearer token the workers require; the -token flag
	// overrides it.
	Token string `json:"token,omitempty"`
	// Slots is the fleet-wide in-flight trial cap; 0 defaults to
	// len(Workers), or len(Sessions) in-process.
	Slots int `json:"slots,omitempty"`
	// Sessions are the tuning sessions to run.
	Sessions []fleetSession `json:"sessions"`
}

// fleetSession is one manifest entry: the topology knobs (shared with
// the tune/serve flags) plus the session's strategy, budget and fleet
// weight.
type fleetSession struct {
	// Name keys the session in results and dashboard URLs; default
	// "<topology>-<strategy>-<index>".
	Name string `json:"name,omitempty"`
	topoSpec
	// Strategy is pla, ipla, bo or ibo (default bo).
	Strategy string `json:"strategy,omitempty"`
	// Steps is the session's evaluation budget (default 60).
	Steps int `json:"steps,omitempty"`
	// Params selects the searched parameters: h, h-bs-bp or bs-bp-cc.
	Params string `json:"params,omitempty"`
	// Weight scales the session's share of slot grants (≤ 0 means 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxInFlight caps the session's own concurrent trials; 0 keeps the
	// cluster-derived bound — except under -state, which defaults it to
	// 1 (sequential) so the member's record sequence is deterministic and
	// a resumed run is bit-identical.
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// StopAfterZeros overrides the strategy default (3 for pla/ipla).
	StopAfterZeros int `json:"stopAfterZeros,omitempty"`
}

func loadManifest(path string) (*fleetManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m fleetManifest
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(m.Sessions) == 0 {
		return nil, fmt.Errorf("manifest %s: no sessions", path)
	}
	// Duplicate names are rejected here, at load time: a later session
	// with the same name would silently shadow the earlier one's result
	// key and dashboard path. Defaulted (empty) names are checked after
	// they are derived, in prepareSessions.
	names := make(map[string]bool, len(m.Sessions))
	for _, s := range m.Sessions {
		if s.Name == "" {
			continue
		}
		if names[s.Name] {
			return nil, fmt.Errorf("manifest %s: duplicate session name %q", path, s.Name)
		}
		names[s.Name] = true
	}
	return &m, nil
}

// preparedSession is a manifest entry resolved into everything NewTuner
// needs, minus the backend (the shared pool is built after every
// session's topology has been checked against it).
type preparedSession struct {
	name        string
	weight      float64
	maxInFlight int
	topology    *stormtune.Topology
	ev          stormtune.Evaluator
	metric      stormtune.Metric
	opts        stormtune.TunerOptions
	strategy    string
	steps       int
	seed        int64
	samples     int
}

// prepareSessions resolves the manifest entries: topologies built,
// strategies and parameter sets selected, names defaulted and checked
// unique, per-session recorders created.
func prepareSessions(man *fleetManifest, trialTimeout time.Duration,
	progress func(name string) stormtune.Observer) ([]preparedSession, error) {
	var out []preparedSession
	names := make(map[string]bool)
	for i, s := range man.Sessions {
		if s.Seed == 0 {
			s.Seed = 1
		}
		if s.Samples == 0 {
			s.Samples = 1
		}
		if s.Steps <= 0 {
			s.Steps = 60
		}
		strategy := s.Strategy
		if strategy == "" {
			strategy = "bo"
		}
		name := s.Name
		if name == "" {
			topoName := s.Topology
			if s.Spec != "" {
				topoName = "spec"
			}
			name = fmt.Sprintf("%s-%s-%d", topoName, strategy, i+1)
		}
		if names[name] {
			return nil, fmt.Errorf("manifest: duplicate session name %q", name)
		}
		names[name] = true

		t, ev, metric, err := s.topoSpec.build()
		if err != nil {
			return nil, fmt.Errorf("session %q: %w", name, err)
		}
		template := s.topoSpec.template(t)
		set, err := paramSet(s.Params)
		if err != nil {
			return nil, fmt.Errorf("session %q: %w", name, err)
		}
		clusterSpec := stormtune.PaperCluster()
		opts := stormtune.TunerOptions{
			Steps:        s.Steps,
			Set:          set,
			Template:     &template,
			Cluster:      &clusterSpec,
			Seed:         s.Seed,
			MaxGPPoints:  60,
			TrialTimeout: trialTimeout,
			Recorder:     stormtune.NewRecorder(),
			Observer:     progress(name),
		}
		switch strategy {
		case "pla":
			opts.Strategy = stormtune.NewPLA(t, template)
			opts.StopAfterZeros = 3
		case "ipla":
			opts.Strategy = stormtune.NewIPLA(t, template)
			opts.StopAfterZeros = 3
		case "bo":
		case "ibo":
			opts.Set = stormtune.InformedHints
		default:
			return nil, fmt.Errorf("session %q: unknown strategy %q", name, strategy)
		}
		if s.StopAfterZeros > 0 {
			opts.StopAfterZeros = s.StopAfterZeros
		}
		out = append(out, preparedSession{
			name: name, weight: s.Weight, maxInFlight: s.MaxInFlight,
			topology: t, ev: ev, metric: metric,
			opts: opts, strategy: strategy, steps: s.Steps, seed: s.Seed,
			samples: s.Samples,
		})
	}
	return out, nil
}

func runFleet(args []string) {
	fs := flag.NewFlagSet("stormtune fleet", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "path to the fleet manifest JSON (required)")
	slotsFlag := fs.Int("slots", 0, "override the manifest's fleet-wide in-flight trial cap")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole fleet (0 = none)")
	ef := addEvalFlags(fs, true, "record every session into the shared archive at DIR, warm-start from it, and share incumbents across members mid-run")
	token := fs.String("token", "", "bearer token the workers require (overrides the manifest's \"token\")")
	statePath := fs.String("state", "", "stream fleet progress to this append-only log (crash-safe resume point)")
	resume := fs.Bool("resume", false, "resume a killed run from the -state log instead of starting fresh")
	dashAddr := fs.String("dash", "", "serve the aggregated fleet dashboard on this address (e.g. :8090)")
	quiet := fs.Bool("quiet", false, "suppress the live progress line")
	fs.Parse(args)

	if *manifestPath == "" {
		fmt.Fprintln(os.Stderr, "error: -manifest is required")
		fs.Usage()
		os.Exit(2)
	}
	if *resume && *statePath == "" {
		fmt.Fprintln(os.Stderr, "error: -resume needs -state (the log to resume from)")
		os.Exit(2)
	}
	man, err := loadManifest(*manifestPath)
	if err != nil {
		fatal(err)
	}
	remote := len(man.Workers) > 0
	workerToken := man.Token
	if *token != "" {
		workerToken = *token
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Live progress: completed trials and the fleet-wide best, fed by
	// every session's event stream.
	var progMu sync.Mutex
	var totalSteps, completed int
	var best float64
	var bestName string
	progress := func(name string) stormtune.Observer {
		return stormtune.ObserverFunc(func(e stormtune.Event) {
			progMu.Lock()
			defer progMu.Unlock()
			switch ev := e.(type) {
			case stormtune.NewBest:
				if ev.Result.Throughput > best {
					best = ev.Result.Throughput
					bestName = name
				}
			case stormtune.TrialCompleted:
				completed++
				if !*quiet {
					fmt.Printf("\rfleet: %4d/%d trials   best %12.0f tuples/s (%s)",
						completed, totalSteps, best, bestName)
				}
			case stormtune.TrialFailed:
				if ev.Permanent {
					fmt.Fprintf(os.Stderr, "\n%s: trial %d failed permanently after %d attempts: %v\n",
						name, ev.Trial.ID, ev.Attempt, ev.Err)
				}
			}
		})
	}

	prepared, err := prepareSessions(man, ef.trialDeadline(), progress)
	if err != nil {
		fatal(err)
	}
	for _, p := range prepared {
		totalSteps += p.steps
	}

	// One shared archive for the whole fleet: every member records into
	// it, warm-starts from it, and shares new incumbents with its
	// siblings mid-run.
	arch, err := ef.openArchive()
	if err != nil {
		fatal(err)
	}
	if arch != nil {
		defer arch.Close()
		for i := range prepared {
			prepared[i].opts.Archive = arch
			prepared[i].opts.WarmStart = stormtune.WarmStartOptions{Enabled: true, Prior: true}
		}
	}

	retry := ef.retryPolicy()
	mode := "in-process simulators"

	// The shared backend: in remote mode one pool of multi-tenant
	// workers every session tunes over. Workers route trials by
	// structural fingerprint, so a heterogeneous fleet works as long as
	// every session's topology is served somewhere in the pool — checked
	// up front so a misconfigured fleet fails before any trial runs.
	var pool *stormtune.BackendPool
	if remote {
		mode = fmt.Sprintf("%d shared remote worker(s)", len(man.Workers))
		clients := make([]*stormtune.RemoteBackend, 0, len(man.Workers))
		var workers []stormtune.Backend
		for _, u := range splitList(strings.Join(man.Workers, ",")) {
			rb := stormtune.NewRemoteBackend(u, remoteOptions(workerToken))
			// Info primes the client's served-fingerprint cache, which both
			// the coverage check below and pool routing consult.
			if _, err := rb.Info(ctx); err != nil {
				fatal(err)
			}
			clients = append(clients, rb)
			workers = append(workers, rb)
		}
		for _, p := range prepared {
			if p.samples > 1 {
				fatal(fmt.Errorf("session %q: samples has no effect with shared workers; start them with `stormtune serve -samples K`", p.name))
			}
			fp := stormtune.TopologyFingerprint(p.topology)
			covered := false
			for _, rb := range clients {
				if !rb.Serves(fp) {
					continue
				}
				// The worker claims the fingerprint; verify name and metric
				// agree before trusting it with the session's trials.
				if _, err := stormtune.CheckRemoteBackend(ctx, rb, p.topology, p.metric); err != nil {
					fatal(err)
				}
				covered = true
				break
			}
			if !covered {
				fatal(fmt.Errorf("session %q: no worker serves %s [%s] — add the topology to a worker's `stormtune serve -topology` list",
					p.name, p.topology.Name, fp))
			}
		}
		pool, err = stormtune.NewBackendPool(workers...)
		if err != nil {
			fatal(err)
		}
	}

	slots := man.Slots
	if *slotsFlag > 0 {
		slots = *slotsFlag
	}
	if slots <= 0 {
		if pool != nil {
			slots = pool.Size()
		} else {
			slots = len(prepared)
		}
	}

	// The crash-safe progress log: a fresh run truncates, -resume
	// recovers the last durable snapshot per member and appends to the
	// same file.
	var flog *stormtune.FleetLog
	if *statePath != "" {
		if *resume {
			flog, err = stormtune.OpenFleetLog(*statePath)
		} else {
			flog, err = stormtune.CreateFleetLog(*statePath)
		}
		if err != nil {
			fatal(err)
		}
		defer flog.Close()
	}

	fleetMembers := make([]stormtune.FleetMember, len(prepared))
	resumed := 0
	for i, p := range prepared {
		var backend stormtune.Backend
		if pool != nil {
			backend = pool
			p.opts.Retry = retry
		} else {
			backend = stormtune.AsBackend(p.ev)
			if ef.wantsRetry() {
				p.opts.Retry = retry
			}
		}
		maxInFlight := p.maxInFlight
		if flog != nil && maxInFlight == 0 {
			// Bit-identical resume needs a deterministic per-member record
			// sequence, which only sequential dispatch guarantees.
			maxInFlight = 1
		}
		var tn *stormtune.Tuner
		if *resume {
			st, err := flog.MemberState(p.name)
			if err != nil {
				fatal(err)
			}
			if st != nil {
				tn, err = stormtune.ResumeTuner(st, p.topology, backend, p.opts)
				if err != nil {
					fatal(fmt.Errorf("session %q: resuming: %w", p.name, err))
				}
				resumed++
			}
		}
		if tn == nil {
			tn, err = stormtune.NewTuner(p.topology, backend, p.opts)
			if err != nil {
				fatal(fmt.Errorf("session %q: %w", p.name, err))
			}
		}
		fleetMembers[i] = stormtune.FleetMember{
			Name: p.name, Tuner: tn, Weight: p.weight, MaxInFlight: maxInFlight,
		}
		if arch != nil && !*quiet {
			if ts := tn.Transfer(); ts != nil {
				fmt.Printf("%s: warm start from %s (similarity %.2f)\n", p.name, ts.Donor, ts.Similarity)
			} else {
				fmt.Printf("%s: cold start\n", p.name)
			}
		}
	}
	if *resume {
		fmt.Printf("resuming %d of %d session(s) from %s\n", resumed, len(prepared), *statePath)
	} else if flog != nil {
		fmt.Printf("logging fleet progress to %s (resume with -state %s -resume)\n", *statePath, *statePath)
	}
	fleet, err := stormtune.NewFleet(
		stormtune.FleetOptions{Slots: slots, ShareIncumbents: arch != nil, Log: flog}, fleetMembers...)
	if err != nil {
		fatal(err)
	}
	// Per-session dashboard info; the weight comes back from the fleet
	// already normalized (≤ 0 means 1), so the CLI never re-derives the
	// scheduler's rule.
	sessionInfo := make(map[string]map[string]any, len(prepared))
	for i, ss := range fleet.Status().Sessions {
		p := prepared[i]
		sessionInfo[ss.Name] = map[string]any{
			"topology": p.topology.Name, "strategy": p.strategy,
			"steps": p.steps, "seed": p.seed, "weight": ss.Weight,
		}
	}

	title := man.Title
	if title == "" {
		title = "stormtune fleet"
	}
	var dashStop context.CancelFunc
	var dashErr chan error
	if *dashAddr != "" {
		dopts := stormtune.FleetDashboardOptions{
			Title: title,
			Info: map[string]any{
				"manifest": *manifestPath, "mode": mode, "slots": slots,
				"sessions": len(prepared),
			},
			SessionInfo: sessionInfo,
		}
		if pool != nil {
			dopts.PoolStats = pool.Stats
		}
		handler := stormtune.NewFleetDashboard(fleet, dopts)
		// Bind synchronously so a bad address or taken port fails the
		// command before any session starts.
		ln, err := net.Listen("tcp", *dashAddr)
		if err != nil {
			fatal(fmt.Errorf("dashboard: %w", err))
		}
		var dashCtx context.Context
		dashCtx, dashStop = context.WithCancel(context.Background())
		defer dashStop()
		dashErr = make(chan error, 1)
		go func() {
			dashErr <- stormtune.ServeDashboardListener(dashCtx, ln, handler, 3*time.Second)
		}()
		fmt.Printf("fleet dashboard on http://%s/ — GET /api/fleet, per-session /sessions/<name>/\n",
			displayAddr(*dashAddr))
	}

	fmt.Printf("fleet: %d sessions over %d shared slot(s) (%s)\n", len(prepared), slots, mode)
	start := time.Now()
	results, err := fleet.Run(ctx)
	if !*quiet {
		fmt.Println()
	}
	if dashStop != nil {
		// Every session's pass_completed is in its recorder, so
		// per-session SSE subscribers drain and hang up on their own.
		dashStop()
		if derr := <-dashErr; derr != nil {
			fmt.Fprintln(os.Stderr, "dashboard shutdown:", derr)
		}
	}
	if err != nil {
		fmt.Printf("fleet stopped early after %s (%v); reporting best so far\n",
			time.Since(start).Round(time.Millisecond), err)
	}
	// Seal only on a clean finish — a cancelled fleet leaves its
	// records unsealed so a re-run can append to the same evidence.
	if arch != nil && err == nil {
		if serr := stormtune.SealFleetArchives(fleetMembers...); serr != nil {
			fmt.Fprintln(os.Stderr, "archive seal:", serr)
		}
	}
	// A fleet log that hit a write error must not be trusted for resume;
	// surface it loudly rather than leaving a silently short log behind.
	if flog != nil {
		if lerr := flog.Err(); lerr != nil {
			fmt.Fprintln(os.Stderr, "fleet log:", lerr)
		}
	}

	// Per-session summary, in manifest order; the fleet-wide best last.
	var anyBest bool
	var fleetBest float64
	var fleetBestName string
	fmt.Printf("%-24s %6s %9s %14s\n", "session", "steps", "best-step", "throughput")
	for _, p := range prepared {
		tr, ok := results[p.name]
		if !ok {
			continue
		}
		bestRec, found := tr.Best()
		if !found {
			fmt.Printf("%-24s %6d %9s %14s\n", p.name, len(tr.Records), "-", "no successful run")
			continue
		}
		anyBest = true
		if bestRec.Result.Throughput > fleetBest {
			fleetBest = bestRec.Result.Throughput
			fleetBestName = p.name
		}
		fmt.Printf("%-24s %6d %9d %14.0f\n", p.name, len(tr.Records), tr.BestStep, bestRec.Result.Throughput)
	}
	if !anyBest {
		fmt.Fprintln(os.Stderr, "no session had a successful run")
		os.Exit(1)
	}
	fmt.Printf("fleet best: %.0f tuples/s (%s) after %s\n",
		fleetBest, fleetBestName, time.Since(start).Round(time.Millisecond))
}
