package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"stormtune"
)

// runWatch implements `stormtune watch`: a tuning session that never
// ends. The simulated workload drifts per -drift, a degradation
// monitor watches the incumbent, and sustained degradation or
// backpressure triggers a conservative trust-region retune. The watch
// runs until Ctrl-C, -horizon simulated seconds, or -episodes retune
// episodes; -snapshot persists periodic state for `-resume`.
func runWatch(args []string) {
	fs := flag.NewFlagSet("stormtune watch", flag.ExitOnError)
	tf := addTopoFlags(fs)
	steps := fs.Int("steps", 40, "initial tuning session's evaluation budget")
	retuneSteps := fs.Int("retune-steps", 0, "per-episode retune budget (0 = max(8, steps/4))")
	params := fs.String("params", "h", "searched parameters: h, h-bs-bp or bs-bp-cc")
	drift := fs.String("drift", "flash:at=3600,mag=2",
		"workload drift spec: 'kind:key=val,...' joined by ';' (kinds: diurnal, flash, trend, squall); 'none' disables")
	baseLoad := fs.Float64("base-load", 0, "offered load before drift, tuples/s (0 = 60% of the template capacity)")
	trialCost := fs.Float64("trial-cost", 60, "simulated seconds one trial evaluation costs")
	holdInterval := fs.Float64("hold-interval", 60, "simulated seconds between monitoring samples")
	episodes := fs.Int("episodes", 0, "stop after this many retune episodes (0 = unlimited)")
	horizon := fs.Float64("horizon", 0, "stop when the simulated clock reaches this many seconds (0 = none)")
	cooldown := fs.Float64("cooldown", 0, "minimum simulated seconds between retune triggers")
	throttle := fs.Duration("throttle", 0, "wall-clock pacing per monitoring sample (0 = run the timeline flat out)")
	dashAddr := fs.String("dash", "", "serve a live dashboard on this address (e.g. :8090) for the duration of the watch")
	ef := addEvalFlags(fs, false, "record completed trials into the session archive at DIR (evidence for later warm starts)")
	snapshotPath := fs.String("snapshot", "", "persist periodic watch snapshots to this file")
	snapshotEvery := fs.Int("snapshot-every", 10, "snapshot every N completed trials or monitoring samples (with -snapshot)")
	resumePath := fs.String("resume", "", "resume from a watch snapshot file")
	quiet := fs.Bool("quiet", false, "suppress the live progress lines")
	fs.Parse(args)

	t, ev, _, err := tf.build()
	if err != nil {
		fatal(err)
	}
	template := tf.toSpec().template(t)
	set, err := paramSet(*params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	profile, err := stormtune.ParseDrift(*drift)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -drift: %v\n", err)
		os.Exit(2)
	}
	if *baseLoad <= 0 {
		// Default the offered plateau to 60% of the template
		// configuration's measured capacity: comfortably satisfiable, so
		// drift upward has something to outgrow.
		*baseLoad = 0.6 * ev.Run(template, 0).Throughput
		if *baseLoad <= 0 {
			*baseLoad = 100
		}
	}
	backend := stormtune.AsBackend(stormtune.Drifting(ev, profile, *baseLoad))

	opts := stormtune.WatchOptions{
		Steps:        *steps,
		RetuneSteps:  *retuneSteps,
		Set:          set,
		Template:     &template,
		Seed:         *tf.seed,
		TrialCost:    *trialCost,
		HoldInterval: *holdInterval,
		Horizon:      *horizon,
		MaxEpisodes:  *episodes,
		Monitor:      stormtune.MonitorOptions{Cooldown: *cooldown},
		Throttle:     *throttle,
		MaxGPPoints:  60,
	}
	if ef.wantsRetry() {
		opts.Retry = ef.retryPolicy()
	}

	// Live progress from the watch's event stream.
	var trials int
	opts.Observer = stormtune.ObserverFunc(func(e stormtune.Event) {
		switch ev := e.(type) {
		case stormtune.TrialCompleted:
			trials++
			if !*quiet {
				fmt.Printf("\rtrial %4d   t=%8.0fs", trials, ev.Trial.SimTime)
			}
		case stormtune.HoldSampled:
			if !*quiet {
				state := "ok"
				if ev.Result.Backpressured {
					state = "backpressure"
				}
				fmt.Printf("\rhold t=%8.0fs   delivered %8.1f / offered %8.1f   %s        ",
					ev.SimTime, ev.Result.Throughput, ev.Result.OfferedLoad, state)
			}
		case stormtune.RetuneTriggered:
			fmt.Printf("\nretune episode %d triggered at t=%.0fs: %s (baseline %.3f, current %.3f)\n",
				ev.Episode, ev.SimTime, ev.Reason, ev.Baseline, ev.Current)
		case stormtune.RetuneCompleted:
			fmt.Printf("\nretune episode %d done at t=%.0fs after %d trials: best %.1f tuples/s\n",
				ev.Episode, ev.SimTime, ev.Steps, ev.Best.Result.Throughput)
		}
	})

	if *dashAddr != "" {
		opts.Recorder = stormtune.NewRecorder()
	}
	// The session archive: the watch records every completed trial —
	// initial tune and retune episodes alike — as evidence for later
	// warm starts. A watch never warm-starts itself; its retunes are
	// trust-region moves around the live incumbent.
	arch, err := ef.openArchive()
	if err != nil {
		fatal(err)
	}
	if arch != nil {
		defer arch.Close()
		opts.Archive = arch
	}
	if *snapshotPath != "" {
		path := *snapshotPath
		opts.SnapshotEvery = *snapshotEvery
		opts.Snapshot = func(st *stormtune.WatchState) {
			if err := st.SaveFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "\nsnapshot: %v\n", err)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var w *stormtune.Watcher
	if *resumePath != "" {
		st, err := stormtune.LoadWatchStateFile(*resumePath)
		if err != nil {
			fatal(err)
		}
		w, err = stormtune.ResumeWatcher(st, t, backend, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resuming watch of %s at t=%.0fs (phase %s, %d episodes)\n",
			t.Name, st.Watch.Clock, st.Watch.Phase, st.Watch.Episode)
	} else {
		w, err = stormtune.NewWatcher(t, backend, opts)
		if err != nil {
			fatal(err)
		}
	}
	if arch != nil {
		fmt.Printf("archiving as %s\n", w.ArchiveKey())
	}

	var dashStop context.CancelFunc
	var dashErr chan error
	if *dashAddr != "" {
		handler := stormtune.NewDashboard(opts.Recorder, stormtune.DashboardOptions{
			Title: "stormtune watch · " + t.Name,
			Info: map[string]any{
				"topology": t.Name, "mode": "continuous tuning",
				"drift": *drift, "baseLoad": *baseLoad, "steps": *steps,
			},
		})
		ln, err := net.Listen("tcp", *dashAddr)
		if err != nil {
			fatal(fmt.Errorf("dashboard: %w", err))
		}
		var dashCtx context.Context
		dashCtx, dashStop = context.WithCancel(context.Background())
		defer dashStop()
		dashErr = make(chan error, 1)
		go func() {
			dashErr <- stormtune.ServeDashboardListener(dashCtx, ln, handler, 3*time.Second)
		}()
		fmt.Printf("dashboard on http://%s/ — GET /api/state, SSE /api/events\n", displayAddr(*dashAddr))
	}

	fmt.Printf("watching %s (%d nodes): drift %q, offered %.1f tuples/s, tune %d steps then hold\n",
		t.Name, t.N(), *drift, *baseLoad, *steps)

	runErr := w.Run(ctx)
	if !*quiet {
		fmt.Println()
	}
	if dashStop != nil {
		dashStop()
		if derr := <-dashErr; derr != nil {
			fmt.Fprintln(os.Stderr, "dashboard shutdown:", derr)
		}
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fatal(runErr)
	}
	// A final snapshot so an interrupted watch resumes from its very
	// last state, not the last periodic one.
	if *snapshotPath != "" {
		if err := w.Snapshot().SaveFile(*snapshotPath); err != nil {
			fmt.Fprintf(os.Stderr, "final snapshot: %v\n", err)
		}
	}
	cfg, y, ok := w.Incumbent()
	if !ok {
		fmt.Fprintln(os.Stderr, "watch ended before the initial tune completed")
		os.Exit(1)
	}
	fmt.Printf("sim time:      %.0fs\n", w.SimTime())
	fmt.Printf("episodes:      %d\n", w.Episodes())
	fmt.Printf("incumbent:     %.1f tuples/s\n", y)
	fmt.Printf("hints:         %v\n", cfg.NormalizedHints())
	if runErr != nil {
		fmt.Println("interrupted; snapshot (if any) resumes with -resume")
	}
}
