package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stormtune"
)

func writeManifest(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Duplicate session names must be rejected when the manifest is
// loaded — a later session with the same name would silently shadow
// the earlier one's result key and dashboard path.
func TestLoadManifestRejectsDuplicateNames(t *testing.T) {
	path := writeManifest(t, `{
		"sessions": [
			{"name": "bo-a", "topology": "small", "steps": 10},
			{"name": "bo-b", "topology": "small", "steps": 10},
			{"name": "bo-a", "topology": "medium", "steps": 20}
		]
	}`)
	_, err := loadManifest(path)
	if err == nil {
		t.Fatal("manifest with duplicate session names loaded without error")
	}
	if !strings.Contains(err.Error(), `duplicate session name "bo-a"`) {
		t.Fatalf("error %q does not name the duplicate", err)
	}
}

func TestLoadManifestAcceptsUniqueAndDefaultedNames(t *testing.T) {
	// Explicitly named sessions with unique names, plus unnamed ones
	// (their names are derived — and checked — in prepareSessions).
	path := writeManifest(t, `{
		"sessions": [
			{"name": "bo-a", "topology": "small"},
			{"topology": "small", "seed": 2},
			{"topology": "small", "seed": 3}
		]
	}`)
	man, err := loadManifest(path)
	if err != nil {
		t.Fatalf("loadManifest: %v", err)
	}
	if len(man.Sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(man.Sessions))
	}
	// The derived-name collision is still caught downstream: two
	// unnamed sessions that default to the same name must error there.
	dup := writeManifest(t, `{
		"sessions": [
			{"topology": "small", "strategy": "bo"},
			{"topology": "small", "strategy": "bo"}
		]
	}`)
	man, err = loadManifest(dup)
	if err != nil {
		t.Fatalf("loadManifest: %v", err)
	}
	// Both entries default to small-bo-<index>, which differ — so this
	// one prepares fine; force a collision via an explicit name that
	// matches a derived one.
	man.Sessions[0].Name = "small-bo-2"
	if _, err := prepareSessions(man, 0, func(string) stormtune.Observer { return nil }); err == nil {
		t.Fatal("prepareSessions accepted an explicit name colliding with a derived one")
	}
}
