// Command stormtune tunes a topology's configuration on the simulated
// cluster and prints the best configuration found.
//
// Usage:
//
//	stormtune [-topology small|medium|large|sundog] [-spec file.json]
//	          [-strategy pla|ipla|bo|ibo] [-steps N] [-parallel Q]
//	          [-params h|h-bs-bp|bs-bp-cc] [-tiim X] [-contention X]
//	          [-samples K] [-seed N]
//
// -spec loads a user topology from a JSON file (see examples/customtopo
// for the schema); -samples averages K measurements per configuration
// (the §VI noise-reduction proposal). See examples/resume for pausing
// and resuming an optimization run (the Spearmint feature the paper's
// setup relied on).
package main

import (
	"flag"
	"fmt"
	"os"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func main() {
	topoName := flag.String("topology", "small", "topology: small, medium, large or sundog")
	spec := flag.String("spec", "", "path to a JSON topology spec (overrides -topology)")
	strategy := flag.String("strategy", "bo", "strategy: pla, ipla, bo or ibo")
	steps := flag.Int("steps", 60, "evaluation budget")
	params := flag.String("params", "h", "searched parameters for bo: h, h-bs-bp or bs-bp-cc")
	tiim := flag.Float64("tiim", 0, "time imbalance for synthetic topologies")
	cont := flag.Float64("contention", 0, "contentious fraction for synthetic topologies")
	seed := flag.Int64("seed", 1, "random seed")
	samples := flag.Int("samples", 1, "measurements to average per configuration (§VI future work)")
	parallel := flag.Int("parallel", 1, "concurrent trial deployments per round (constant-liar batches)")
	flag.Parse()

	var t *topo.Topology
	metric := storm.SinkTuples
	switch {
	case *spec != "":
		var err error
		t, err = topo.LoadJSONFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *topoName == "sundog":
		t = topo.Sundog()
		metric = storm.SourceTuples
	default:
		t = topo.BuildSynthetic(*topoName, topo.Condition{TimeImbalance: *tiim, ContentiousFraction: *cont}, *seed)
	}
	clusterSpec := cluster.Paper()
	var ev storm.Evaluator = storm.NewFluidSim(t, clusterSpec, metric, *seed)
	if *samples > 1 {
		ev = storm.Averaged(ev, *samples)
	}

	var template storm.Config
	if *topoName == "sundog" {
		template = storm.DefaultConfig(t, 11)
	} else {
		template = storm.DefaultSyntheticConfig(t, 1)
	}

	set := core.Hints
	switch *params {
	case "h":
	case "h-bs-bp":
		set = core.HintsBatch
	case "bs-bp-cc":
		set = core.BatchCC
	default:
		fmt.Fprintf(os.Stderr, "unknown -params %q\n", *params)
		os.Exit(2)
	}

	var strat core.Strategy
	stopZeros := 0
	switch *strategy {
	case "pla":
		strat = core.NewPLA(t, template)
		stopZeros = 3
	case "ipla":
		strat = core.NewIPLA(t, template)
		stopZeros = 3
	case "bo":
		strat = core.NewBO(t, clusterSpec, template, core.BOOptions{Set: set, Seed: *seed, Opt: bo.Options{MaxGPPoints: 60}})
	case "ibo":
		strat = core.NewBO(t, clusterSpec, template, core.BOOptions{Set: core.InformedHints, Seed: *seed, Opt: bo.Options{MaxGPPoints: 60}})
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q\n", *strategy)
		os.Exit(2)
	}

	if *parallel > 1 {
		fmt.Printf("tuning %s (%d nodes) with %s for up to %d steps, %d concurrent trials...\n",
			t.Name, t.N(), strat.Name(), *steps, *parallel)
	} else {
		fmt.Printf("tuning %s (%d nodes) with %s for up to %d steps...\n", t.Name, t.N(), strat.Name(), *steps)
	}
	tr := core.TuneBatch(ev, strat, *steps, *parallel, stopZeros, 0)
	best, ok := tr.Best()
	if !ok {
		fmt.Fprintln(os.Stderr, "no successful run")
		os.Exit(1)
	}
	fmt.Printf("steps run:      %d\n", len(tr.Records))
	fmt.Printf("best at step:   %d\n", tr.BestStep)
	fmt.Printf("throughput:     %.0f tuples/s (bottleneck: %s)\n", best.Result.Throughput, best.Result.Bottleneck)
	fmt.Printf("network/worker: %.2f MB/s\n", best.Result.NetworkBytesPerWorker/1e6)
	fmt.Printf("tasks:          %d\n", best.Result.Tasks)
	hints := best.Config.NormalizedHints()
	fmt.Printf("hints:          %v\n", hints)
	fmt.Printf("batch:          size=%d parallelism=%d\n", best.Config.BatchSize, best.Config.BatchParallelism)
	fmt.Printf("threads:        worker=%d receiver=%d ackers=%d\n",
		best.Config.WorkerThreads, best.Config.ReceiverThreads, best.Config.Ackers)
}
