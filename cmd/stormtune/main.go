// Command stormtune tunes a topology's configuration on the simulated
// cluster and prints the best configuration found.
//
// Usage:
//
//	stormtune [-topology small|medium|large|sundog] [-spec file.json]
//	          [-strategy pla|ipla|bo|ibo] [-steps N] [-parallel Q]
//	          [-async] [-timeout D] [-params h|h-bs-bp|bs-bp-cc]
//	          [-tiim X] [-contention X] [-samples K] [-seed N] [-quiet]
//
// The run is a tuning session: -timeout bounds its wall-clock (the best
// configuration found so far is reported when the deadline hits, and
// Ctrl-C does the same), -parallel evaluates that many trial
// deployments concurrently, and -async switches the concurrent
// dispatch from barrier batches to free-slot refill (a replacement
// trial starts the moment any in-flight one completes — faster when
// trial durations vary). A live progress line tracks completed trials
// and the best throughput so far.
//
// -spec loads a user topology from a JSON file (see examples/customtopo
// for the schema); -samples averages K measurements per configuration
// (the §VI noise-reduction proposal). See examples/resume for pausing
// and resuming a session via snapshots (the Spearmint feature the
// paper's setup relied on).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"stormtune"
	"stormtune/internal/topo"
)

func main() {
	topoName := flag.String("topology", "small", "topology: small, medium, large or sundog")
	spec := flag.String("spec", "", "path to a JSON topology spec (overrides -topology)")
	strategy := flag.String("strategy", "bo", "strategy: pla, ipla, bo or ibo")
	steps := flag.Int("steps", 60, "evaluation budget")
	params := flag.String("params", "h", "searched parameters for bo: h, h-bs-bp or bs-bp-cc")
	tiim := flag.Float64("tiim", 0, "time imbalance for synthetic topologies")
	cont := flag.Float64("contention", 0, "contentious fraction for synthetic topologies")
	seed := flag.Int64("seed", 1, "random seed")
	samples := flag.Int("samples", 1, "measurements to average per configuration (§VI future work)")
	parallel := flag.Int("parallel", 1, "concurrent trial deployments")
	async := flag.Bool("async", false, "free-slot refill instead of barrier batches (with -parallel > 1)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the session (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress the live progress line")
	flag.Parse()

	var t *stormtune.Topology
	metric := stormtune.SinkTuples
	switch {
	case *spec != "":
		var err error
		t, err = topo.LoadJSONFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *topoName == "sundog":
		t = stormtune.Sundog()
		metric = stormtune.SourceTuples
	default:
		t = stormtune.BuildSynthetic(*topoName, stormtune.Condition{TimeImbalance: *tiim, ContentiousFraction: *cont}, *seed)
	}
	clusterSpec := stormtune.PaperCluster()
	var ev stormtune.Evaluator = stormtune.NewFluidSim(t, clusterSpec, metric, *seed)
	if *samples > 1 {
		ev = stormtune.Averaged(ev, *samples)
	}

	var template stormtune.Config
	if *topoName == "sundog" {
		template = stormtune.DefaultConfig(t, 11)
	} else {
		template = stormtune.DefaultSyntheticConfig(t, 1)
	}

	set := stormtune.Hints
	switch *params {
	case "h":
	case "h-bs-bp":
		set = stormtune.HintsBatch
	case "bs-bp-cc":
		set = stormtune.BatchCC
	default:
		fmt.Fprintf(os.Stderr, "unknown -params %q\n", *params)
		os.Exit(2)
	}

	opts := stormtune.TunerOptions{
		Steps:       *steps,
		Set:         set,
		Template:    &template,
		Cluster:     &clusterSpec,
		Seed:        *seed,
		MaxGPPoints: 60,
	}
	switch *strategy {
	case "pla":
		opts.Strategy = stormtune.NewPLA(t, template)
		opts.StopAfterZeros = 3
	case "ipla":
		opts.Strategy = stormtune.NewIPLA(t, template)
		opts.StopAfterZeros = 3
	case "bo":
	case "ibo":
		opts.Set = stormtune.InformedHints
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q\n", *strategy)
		os.Exit(2)
	}

	// Live progress from the session's event stream.
	var completed int
	var bestSoFar float64
	opts.Observer = stormtune.ObserverFunc(func(e stormtune.Event) {
		switch ev := e.(type) {
		case stormtune.NewBest:
			bestSoFar = ev.Result.Throughput
		case stormtune.TrialCompleted:
			completed++
			if !*quiet {
				fmt.Printf("\rtrial %3d/%d   best %12.0f tuples/s", completed, *steps, bestSoFar)
			}
		case stormtune.ParallelismClamped:
			fmt.Fprintf(os.Stderr, "\nnote: -parallel %d exceeds cluster capacity, clamped to %d\n",
				ev.Requested, ev.Allowed)
		}
	})

	tn, err := stormtune.NewTuner(t, ev, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	mode := "sequential"
	switch {
	case *async && *parallel > 1:
		mode = fmt.Sprintf("async free-slot refill, %d slots", *parallel)
	case *parallel > 1:
		mode = fmt.Sprintf("barrier batches of %d", *parallel)
	}
	name := *strategy
	if opts.Strategy != nil {
		name = opts.Strategy.Name()
	}
	fmt.Printf("tuning %s (%d nodes) with %s for up to %d steps (%s)...\n",
		t.Name, t.N(), name, *steps, mode)

	start := time.Now()
	var tr stormtune.TuneResult
	if *async && *parallel > 1 {
		tr, err = tn.RunAsync(ctx, *parallel)
	} else {
		tr, err = tn.RunBatch(ctx, *parallel)
	}
	if !*quiet {
		fmt.Println()
	}
	if err != nil {
		fmt.Printf("session stopped early after %s (%v); reporting best so far\n",
			time.Since(start).Round(time.Millisecond), err)
	}
	best, ok := tr.Best()
	if !ok {
		fmt.Fprintln(os.Stderr, "no successful run")
		os.Exit(1)
	}
	fmt.Printf("steps run:      %d\n", len(tr.Records))
	fmt.Printf("best at step:   %d\n", tr.BestStep)
	fmt.Printf("throughput:     %.0f tuples/s (bottleneck: %s)\n", best.Result.Throughput, best.Result.Bottleneck)
	fmt.Printf("network/worker: %.2f MB/s\n", best.Result.NetworkBytesPerWorker/1e6)
	fmt.Printf("tasks:          %d\n", best.Result.Tasks)
	hints := best.Config.NormalizedHints()
	fmt.Printf("hints:          %v\n", hints)
	fmt.Printf("batch:          size=%d parallelism=%d\n", best.Config.BatchSize, best.Config.BatchParallelism)
	fmt.Printf("threads:        worker=%d receiver=%d ackers=%d\n",
		best.Config.WorkerThreads, best.Config.ReceiverThreads, best.Config.Ackers)
}
