// Command stormtune tunes a topology's configuration — against the
// bundled simulated cluster, or against remote worker processes — and
// can itself serve a simulator as a remote evaluation service.
//
// Tuning (the default subcommand):
//
//	stormtune [tune] [-topology small|medium|large|sundog] [-spec file.json]
//	          [-strategy pla|ipla|bo|ibo] [-steps N] [-parallel Q]
//	          [-async] [-timeout D] [-params h|h-bs-bp|bs-bp-cc]
//	          [-tiim X] [-contention X] [-samples K] [-seed N] [-quiet]
//	          [-remote URL[,URL...]] [-token T] [-retries N]
//	          [-retry-backoff D] [-trial-timeout D] [-dash ADDR]
//	          [-archive DIR]
//
// The run is a tuning session: -timeout bounds its wall-clock (the best
// configuration found so far is reported when the deadline hits, and
// Ctrl-C does the same), -parallel evaluates that many trial
// deployments concurrently, and -async switches the concurrent
// dispatch from barrier batches to free-slot refill. A live progress
// line tracks completed trials and the best throughput so far.
//
// -remote tunes over the wire instead of in-process: each URL is a
// worker running `stormtune serve`; several URLs form a pool one
// session drives concurrently (use -parallel with -async). Lost
// measurements — timeouts, dropped connections, killed workers — are
// retried per -retries/-retry-backoff before the trial is recorded as
// a pessimistic failure; -trial-timeout bounds each attempt.
//
// -archive DIR records the run into the persistent session archive at
// DIR and, when the archive already holds evidence from a sufficiently
// similar topology, warm-starts the Bayesian optimizer from it: prior
// incumbents replace part of the initial Latin-hypercube design and an
// archived-runs prior shapes the GP mean. The dashboard state reports
// whether the run was warm-started and by which donor. Inspect the
// archive with `stormtune archive` (see archive.go):
//
//	stormtune archive list|show <fingerprint>|gc|export|import -archive DIR
//
// -dash ADDR serves a live dashboard for the duration of the run: an
// HTML page at /, the full JSON state at /api/state, a Server-Sent
// Events stream at /api/events (replay from any sequence number with
// ?after=N), and /healthz. When tuning a -remote pool the state JSON
// includes per-worker in-flight counts. The server shuts down cleanly
// when the run completes or is cancelled.
//
// Serving:
//
//	stormtune serve [-addr 127.0.0.1:8077] [-topology A,B,...] [-spec ...]
//	                [-token T] [-capacity N] [-tiim X] [-contention X]
//	                [-seed N] [-samples K] [-flaky N] [-max-run-seconds S]
//	                [-quiet]
//
// serve exposes the configured simulators as a multi-tenant
// JSON-over-HTTP evaluation service (POST /run, GET /info, GET
// /healthz). -topology (or -spec) takes a comma-separated list: the
// worker serves every listed topology and routes each trial by its
// structural fingerprint. -token requires a bearer token on /run and
// /info; -capacity N bounds concurrent evaluations, refusing excess
// runs with HTTP 429 and structured backpressure (queue depth,
// estimated wait, Retry-After) that pooled clients use to shed trials
// to less-loaded workers. -flaky N fails every Nth run with HTTP 500
// before evaluation — deterministic fault injection for exercising the
// client-side retry path.
//
// Fleet tuning:
//
//	stormtune fleet -manifest fleet.json [-dash ADDR] [-slots N]
//	                [-timeout D] [-retries N] [-retry-backoff D]
//	                [-trial-timeout D] [-token T] [-state fleet.log]
//	                [-resume] [-quiet]
//
// fleet runs many tuning sessions concurrently over one shared worker
// pool — sessions may tune different topologies, routed per trial by
// fingerprint — with a fleet-level scheduler sharing the slots among
// them by weighted fair share, and -dash serves one aggregated
// dashboard (GET /api/fleet plus a full per-session dashboard under
// /sessions/<name>/). -state streams progress to an append-only log
// and -resume restores a killed run from it bit-identically. See
// fleet.go for the manifest format.
//
// Continuous tuning:
//
//	stormtune watch [-topology ...] [-drift SPEC] [-base-load X]
//	                [-steps N] [-retune-steps N] [-episodes N]
//	                [-horizon S] [-trial-cost S] [-hold-interval S]
//	                [-cooldown S] [-throttle D] [-dash ADDR]
//	                [-snapshot file.json] [-snapshot-every N]
//	                [-resume file.json] [-archive DIR] [-quiet]
//
// watch is a tuning session that never ends: it tunes the topology,
// then holds — monitoring the incumbent on a simulated timeline while
// the offered load drifts per -drift — and when sustained degradation
// or backpressure is detected it runs a conservative trust-region
// retune and holds again, until Ctrl-C, -horizon simulated seconds, or
// -episodes retune episodes. -snapshot/-resume persist and restore the
// whole watch (mid-retune included); -dash serves the same live
// dashboard as tune, with retune episodes in the state and event
// stream. See watch.go for the drift spec syntax.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"stormtune"
	"stormtune/internal/topo"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			runServe(args[1:])
			return
		case "fleet":
			runFleet(args[1:])
			return
		case "watch":
			runWatch(args[1:])
			return
		case "archive":
			runArchive(args[1:])
			return
		case "tune":
			args = args[1:]
		}
	}
	runTune(args)
}

// topoSpec are the topology/evaluator knobs one tuning run needs —
// shared between the tune/serve flags and fleet manifest entries, so
// the two surfaces cannot drift apart. The JSON tags are the manifest
// field names.
type topoSpec struct {
	Topology   string  `json:"topology"`
	Spec       string  `json:"spec,omitempty"`
	TIIM       float64 `json:"tiim,omitempty"`
	Contention float64 `json:"contention,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	Samples    int     `json:"samples,omitempty"`
}

// build constructs the topology and its simulator evaluator.
func (ts topoSpec) build() (*stormtune.Topology, stormtune.Evaluator, stormtune.Metric, error) {
	var t *stormtune.Topology
	metric := stormtune.SinkTuples
	switch {
	case ts.Spec != "":
		var err error
		t, err = topo.LoadJSONFile(ts.Spec)
		if err != nil {
			return nil, nil, metric, err
		}
	case ts.Topology == "sundog":
		t = stormtune.Sundog()
		metric = stormtune.SourceTuples
	default:
		t = stormtune.BuildSynthetic(ts.Topology,
			stormtune.Condition{TimeImbalance: ts.TIIM, ContentiousFraction: ts.Contention}, ts.Seed)
	}
	var ev stormtune.Evaluator = stormtune.NewFluidSim(t, stormtune.PaperCluster(), metric, ts.Seed)
	if ts.Samples > 1 {
		ev = stormtune.Averaged(ev, ts.Samples)
	}
	return t, ev, metric, nil
}

// template returns the non-searched deployment defaults for the
// topology, matching the paper's setup per topology family.
func (ts topoSpec) template(t *stormtune.Topology) stormtune.Config {
	if ts.Topology == "sundog" && ts.Spec == "" {
		return stormtune.DefaultConfig(t, 11)
	}
	return stormtune.DefaultSyntheticConfig(t, 1)
}

// paramSet resolves a -params / manifest "params" name.
func paramSet(name string) (stormtune.ParamSet, error) {
	switch name {
	case "", "h":
		return stormtune.Hints, nil
	case "h-bs-bp":
		return stormtune.HintsBatch, nil
	case "bs-bp-cc":
		return stormtune.BatchCC, nil
	}
	return stormtune.Hints, fmt.Errorf("unknown params %q (want h, h-bs-bp or bs-bp-cc)", name)
}

// topoFlags are the topology/evaluator knobs tune and serve share.
type topoFlags struct {
	topology *string
	spec     *string
	tiim     *float64
	cont     *float64
	seed     *int64
	samples  *int
}

func addTopoFlags(fs *flag.FlagSet) topoFlags {
	return topoFlags{
		topology: fs.String("topology", "small", "topology: small, medium, large or sundog (serve accepts a comma-separated list)"),
		spec:     fs.String("spec", "", "path to a JSON topology spec, overrides -topology (serve accepts a comma-separated list)"),
		tiim:     fs.Float64("tiim", 0, "time imbalance for synthetic topologies"),
		cont:     fs.Float64("contention", 0, "contentious fraction for synthetic topologies"),
		seed:     fs.Int64("seed", 1, "random seed"),
		samples:  fs.Int("samples", 1, "measurements to average per configuration (§VI future work)"),
	}
}

// toSpec collects the parsed flag values into a topoSpec.
func (tf topoFlags) toSpec() topoSpec {
	return topoSpec{
		Topology: *tf.topology, Spec: *tf.spec,
		TIIM: *tf.tiim, Contention: *tf.cont,
		Seed: *tf.seed, Samples: *tf.samples,
	}
}

// build constructs the topology and its simulator evaluator.
func (tf topoFlags) build() (*stormtune.Topology, stormtune.Evaluator, stormtune.Metric, error) {
	return tf.toSpec().build()
}

// toSpecs expands the comma-separated -topology / -spec lists serve
// accepts into one topoSpec per served topology; the other knobs (tiim,
// contention, seed, samples) apply to every entry. A -spec list
// overrides -topology, mirroring the single-topology precedence.
func (tf topoFlags) toSpecs() []topoSpec {
	base := tf.toSpec()
	var out []topoSpec
	if base.Spec != "" {
		for _, path := range splitList(base.Spec) {
			ts := base
			ts.Spec = path
			ts.Topology = ""
			out = append(out, ts)
		}
		return out
	}
	for _, name := range splitList(base.Topology) {
		ts := base
		ts.Spec = ""
		ts.Topology = name
		out = append(out, ts)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// displayAddr renders a listen address as something clickable: a bare
// ":8090" becomes "localhost:8090".
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "localhost" + addr
	}
	return addr
}

func runServe(args []string) {
	fs := flag.NewFlagSet("stormtune serve", flag.ExitOnError)
	tf := addTopoFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	token := fs.String("token", "", "require this bearer token on /run and /info (empty = open endpoint)")
	capacity := fs.Int("capacity", 0, "admission control: max concurrent evaluations; excess runs get 429 + Retry-After (0 = unbounded)")
	flaky := fs.Int("flaky", 0, "fail every Nth run with HTTP 500 (fault injection; 0 disables)")
	maxRun := fs.Int("max-run-seconds", 0, "cap a single evaluation's wall-clock (0 = uncapped)")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	fs.Parse(args)

	opts := stormtune.BackendServerOptions{
		Auth:          stormtune.RemoteCredentials{Token: *token},
		Admission:     stormtune.RemoteAdmission{MaxConcurrent: *capacity},
		FailEveryN:    *flaky,
		MaxRunSeconds: *maxRun,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	server := stormtune.NewBackendServer(opts)

	// One worker serves any number of topologies — `-topology small,large`
	// or `-spec a.json,b.json` — and /run routes each trial by its
	// structural fingerprint.
	specs := tf.toSpecs()
	if len(specs) == 0 {
		fatal(errors.New("no topologies to serve"))
	}
	for _, ts := range specs {
		t, ev, metric, err := ts.build()
		if err != nil {
			fatal(err)
		}
		if err := stormtune.RegisterTopology(server, t, stormtune.AsBackend(ev), metric); err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s (%d nodes, fingerprint %s)\n", t.Name, t.N(), stormtune.TopologyFingerprint(t))
	}

	srv := &http.Server{Addr: *addr, Handler: server.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Give in-flight evaluations a drain window; killing them would
		// cost the tuner a retry attempt per connection reset.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	auth := "open"
	if *token != "" {
		auth = "bearer-token auth"
	}
	admit := "unbounded"
	if *capacity > 0 {
		admit = fmt.Sprintf("%d concurrent run(s)", *capacity)
	}
	fmt.Printf("listening on http://%s — POST /run, GET /info, GET /healthz (%s, admission: %s)\n",
		*addr, auth, admit)
	if *flaky > 0 {
		fmt.Printf("fault injection: 1 in every %d runs fails with HTTP 500\n", *flaky)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
}

func runTune(args []string) {
	fs := flag.NewFlagSet("stormtune", flag.ExitOnError)
	tf := addTopoFlags(fs)
	strategy := fs.String("strategy", "bo", "strategy: pla, ipla, bo or ibo")
	steps := fs.Int("steps", 60, "evaluation budget")
	params := fs.String("params", "h", "searched parameters for bo: h, h-bs-bp or bs-bp-cc")
	parallel := fs.Int("parallel", 1, "concurrent trial deployments")
	async := fs.Bool("async", false, "free-slot refill instead of barrier batches (with -parallel > 1)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the session (0 = none)")
	remote := fs.String("remote", "", "comma-separated worker URLs (stormtune serve); tunes over HTTP instead of in-process")
	token := fs.String("token", "", "bearer token the remote workers require")
	ef := addEvalFlags(fs, true, "record the run into the session archive at DIR and warm-start from similar archived runs")
	dashAddr := fs.String("dash", "", "serve a live dashboard on this address (e.g. :8090) for the duration of the run")
	quiet := fs.Bool("quiet", false, "suppress the live progress line")
	fs.Parse(args)

	t, ev, metric, err := tf.build()
	if err != nil {
		fatal(err)
	}
	clusterSpec := stormtune.PaperCluster()

	template := tf.toSpec().template(t)

	set, err := paramSet(*params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	opts := stormtune.TunerOptions{
		Steps:        *steps,
		Set:          set,
		Template:     &template,
		Cluster:      &clusterSpec,
		Seed:         *tf.seed,
		MaxGPPoints:  60,
		TrialTimeout: ef.trialDeadline(),
	}
	switch *strategy {
	case "pla":
		opts.Strategy = stormtune.NewPLA(t, template)
		opts.StopAfterZeros = 3
	case "ipla":
		opts.Strategy = stormtune.NewIPLA(t, template)
		opts.StopAfterZeros = 3
	case "bo":
	case "ibo":
		opts.Set = stormtune.InformedHints
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q\n", *strategy)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The backend: the in-process simulator, or a pool of remote
	// workers. Remote evaluations get the retry policy — a lost
	// measurement is the expected failure mode over a network.
	var backend stormtune.Backend
	var pool *stormtune.BackendPool
	mode := "in-process simulator"
	if *remote != "" {
		if *tf.samples > 1 {
			// Averaging happens where the measurement runs; the worker
			// owns the evaluator, so -samples must be given to serve.
			fmt.Fprintln(os.Stderr, "error: -samples has no effect with -remote; start the worker with `stormtune serve -samples K`")
			os.Exit(2)
		}
		urls := splitList(*remote)
		members := make([]stormtune.Backend, 0, len(urls))
		for _, u := range urls {
			rb := stormtune.NewRemoteBackend(u, remoteOptions(*token))
			if _, err := stormtune.CheckRemoteBackend(ctx, rb, t, metric); err != nil {
				fatal(err)
			}
			members = append(members, rb)
		}
		pool, err = stormtune.NewBackendPool(members...)
		if err != nil {
			fatal(err)
		}
		backend = pool
		opts.Retry = ef.retryPolicy()
		mode = fmt.Sprintf("%d remote worker(s)", len(members))
	} else {
		backend = stormtune.AsBackend(ev)
		if ef.wantsRetry() {
			opts.Retry = ef.retryPolicy()
		}
	}

	// Live progress from the session's event stream.
	var completed int
	var bestSoFar float64
	opts.Observer = stormtune.ObserverFunc(func(e stormtune.Event) {
		switch ev := e.(type) {
		case stormtune.NewBest:
			bestSoFar = ev.Result.Throughput
		case stormtune.TrialCompleted:
			completed++
			if !*quiet {
				fmt.Printf("\rtrial %3d/%d   best %12.0f tuples/s", completed, *steps, bestSoFar)
			}
		case stormtune.TrialFailed:
			if ev.Permanent {
				fmt.Fprintf(os.Stderr, "\ntrial %d failed permanently after %d attempts: %v\n",
					ev.Trial.ID, ev.Attempt, ev.Err)
			}
		case stormtune.TrialRetried:
			if !*quiet {
				fmt.Fprintf(os.Stderr, "\ntrial %d lost (attempt %d), retrying in %s: %v\n",
					ev.Trial.ID, ev.Attempt-1, ev.Backoff, ev.Err)
			}
		case stormtune.ParallelismClamped:
			fmt.Fprintf(os.Stderr, "\nnote: -parallel %d exceeds cluster capacity, clamped to %d\n",
				ev.Requested, ev.Allowed)
		}
	})

	// The live dashboard: a Recorder accumulates the session's events
	// and an HTTP server exposes them (/, /api/state, /api/events SSE,
	// /healthz) for the duration of the run.
	if *dashAddr != "" {
		opts.Recorder = stormtune.NewRecorder()
	}

	// The session archive: the run records into it as trials complete,
	// and warm-starts from archived evidence when a sufficiently
	// similar donor exists (BO strategies only; the seal happens inside
	// the tuner on a clean finish).
	arch, err := ef.openArchive()
	if err != nil {
		fatal(err)
	}
	if arch != nil {
		defer arch.Close()
		opts.Archive = arch
		opts.WarmStart = stormtune.WarmStartOptions{Enabled: true, Prior: true}
	}

	tn, err := stormtune.NewTuner(t, backend, opts)
	if err != nil {
		fatal(err)
	}
	if arch != nil {
		if ts := tn.Transfer(); ts != nil {
			fmt.Printf("warm start: donor %s (similarity %.2f, %d seed configs)\n",
				ts.Donor, ts.Similarity, len(ts.Points))
		} else {
			fmt.Println("cold start: no sufficiently similar archived session")
		}
		fmt.Printf("archiving as %s\n", tn.ArchiveKey())
	}

	dispatch := "sequential"
	switch {
	case *async && *parallel > 1:
		dispatch = fmt.Sprintf("async free-slot refill, %d slots", *parallel)
	case *parallel > 1:
		dispatch = fmt.Sprintf("barrier batches of %d", *parallel)
	}
	name := *strategy
	if opts.Strategy != nil {
		name = opts.Strategy.Name()
	}

	var dashStop context.CancelFunc
	var dashErr chan error
	if *dashAddr != "" {
		dopts := stormtune.DashboardOptions{
			Title: "stormtune · " + t.Name,
			Info: map[string]any{
				"topology": t.Name, "strategy": name, "steps": *steps,
				"dispatch": dispatch, "mode": mode,
			},
		}
		if pool != nil {
			dopts.PoolStats = pool.Stats
		}
		handler := stormtune.NewDashboard(opts.Recorder, dopts)
		// Bind synchronously so a bad address or taken port fails the
		// command before the run starts.
		ln, err := net.Listen("tcp", *dashAddr)
		if err != nil {
			fatal(fmt.Errorf("dashboard: %w", err))
		}
		var dashCtx context.Context
		dashCtx, dashStop = context.WithCancel(context.Background())
		defer dashStop()
		dashErr = make(chan error, 1)
		go func() {
			dashErr <- stormtune.ServeDashboardListener(dashCtx, ln, handler, 3*time.Second)
		}()
		fmt.Printf("dashboard on http://%s/ — GET /api/state, SSE /api/events\n", displayAddr(*dashAddr))
	}

	fmt.Printf("tuning %s (%d nodes) with %s for up to %d steps (%s, %s)...\n",
		t.Name, t.N(), name, *steps, dispatch, mode)

	start := time.Now()
	var tr stormtune.TuneResult
	if *async && *parallel > 1 {
		tr, err = tn.RunAsync(ctx, *parallel)
	} else {
		tr, err = tn.RunBatch(ctx, *parallel)
	}
	if !*quiet {
		fmt.Println()
	}
	if dashStop != nil {
		// The run is over: every event (pass_completed included) is in
		// the recorder, so SSE subscribers drain and hang up on their
		// own; the graceful shutdown just bounds the wait.
		dashStop()
		if derr := <-dashErr; derr != nil {
			fmt.Fprintln(os.Stderr, "dashboard shutdown:", derr)
		}
	}
	if err != nil {
		fmt.Printf("session stopped early after %s (%v); reporting best so far\n",
			time.Since(start).Round(time.Millisecond), err)
	}
	best, ok := tr.Best()
	if !ok {
		fmt.Fprintln(os.Stderr, "no successful run")
		os.Exit(1)
	}
	fmt.Printf("steps run:      %d\n", len(tr.Records))
	fmt.Printf("best at step:   %d\n", tr.BestStep)
	fmt.Printf("throughput:     %.0f tuples/s (bottleneck: %s)\n", best.Result.Throughput, best.Result.Bottleneck)
	fmt.Printf("network/worker: %.2f MB/s\n", best.Result.NetworkBytesPerWorker/1e6)
	fmt.Printf("tasks:          %d\n", best.Result.Tasks)
	hints := best.Config.NormalizedHints()
	fmt.Printf("hints:          %v\n", hints)
	fmt.Printf("batch:          size=%d parallelism=%d\n", best.Config.BatchSize, best.Config.BatchParallelism)
	fmt.Printf("threads:        worker=%d receiver=%d ackers=%d\n",
		best.Config.WorkerThreads, best.Config.ReceiverThreads, best.Config.Ackers)
}
