package stormtune_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"stormtune"
)

// startWorker spins up a live multi-tenant worker serving the given
// topologies, the way `stormtune serve -topology a,b` does.
func startWorker(t *testing.T, opts stormtune.BackendServerOptions, tops ...*stormtune.Topology) *httptest.Server {
	t.Helper()
	server := stormtune.NewBackendServer(opts)
	for _, top := range tops {
		ev := stormtune.NewFluidSim(top, stormtune.SmallCluster(), stormtune.SinkTuples, 1)
		if err := stormtune.RegisterTopology(server, top, stormtune.AsBackend(ev), stormtune.SinkTuples); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(server.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func remoteTestSetup(t *testing.T, flaky int) (*stormtune.Topology, *stormtune.RemoteBackend) {
	t.Helper()
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	srv := startWorker(t, stormtune.BackendServerOptions{FailEveryN: flaky}, top)
	return top, stormtune.NewRemoteBackend(srv.URL, stormtune.RemoteBackendOptions{})
}

func quietTunerOpts(steps int) stormtune.TunerOptions {
	spec := stormtune.SmallCluster()
	return stormtune.TunerOptions{
		Steps: steps, Seed: 11, Cluster: &spec,
		Candidates: 150, HyperSamples: 2, LocalSearchIters: 4,
	}
}

// TestPublicRemoteTuningEndToEnd drives the whole public surface: a
// topology tuned through RemoteBackend against a live local evaluation
// server with injected faults, the RetryPolicy absorbing a killed
// trial (TrialFailed/TrialRetried observed), a snapshot taken mid-run,
// and a resume in a "fresh process" that finishes bit-identically to
// an uninterrupted run against the local simulator.
func TestPublicRemoteTuningEndToEnd(t *testing.T) {
	const steps = 12
	top, bk := remoteTestSetup(t, 5)

	if _, err := stormtune.CheckRemoteBackend(context.Background(), bk, top, stormtune.SinkTuples); err != nil {
		t.Fatal(err)
	}

	// Reference: same options, uninterrupted, local backend.
	local := stormtune.AsBackend(stormtune.NewFluidSim(top, stormtune.SmallCluster(), stormtune.SinkTuples, 1))
	ref, err := stormtune.NewTuner(top, local, quietTunerOpts(steps))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Remote phase 1: tune over the wire until half the budget is
	// spent, then snapshot and cancel.
	var mu sync.Mutex
	var failed, retried, completed int
	var snap *stormtune.TunerState
	ctx, cancel := context.WithCancel(context.Background())
	var tn *stormtune.Tuner
	opts := quietTunerOpts(steps)
	opts.Retry = stormtune.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond}
	opts.Observer = stormtune.ObserverFunc(func(e stormtune.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.(type) {
		case stormtune.TrialFailed:
			failed++
		case stormtune.TrialRetried:
			retried++
		case stormtune.TrialCompleted:
			completed++
			if completed == steps/2 {
				snap = tn.Snapshot()
				cancel()
			}
		}
	})
	tn, err = stormtune.NewTuner(top, bk, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 err = %v, want context.Canceled", err)
	}
	if snap == nil {
		t.Fatal("snapshot never taken")
	}
	if failed == 0 || retried == 0 {
		t.Fatalf("injected faults unobserved: failed=%d retried=%d", failed, retried)
	}
	if snap.Session.Retry.MaxAttempts != 4 {
		t.Fatalf("snapshot lost the retry policy: %+v", snap.Session.Retry)
	}

	// Remote phase 2: a fresh client (new process) resumes from the
	// snapshot against the same live server.
	bk2 := stormtune.NewRemoteBackend(bk.URL(), stormtune.RemoteBackendOptions{})
	resumed, err := stormtune.ResumeTuner(snap, top, bk2, stormtune.TunerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("resumed run has %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		if w.Config.Fingerprint() != g.Config.Fingerprint() || w.Result.Throughput != g.Result.Throughput {
			t.Fatalf("step %d diverged from the uninterrupted run", w.Step)
		}
		if g.Result.Failure == stormtune.FailureEvaluation {
			t.Fatalf("step %d recorded a permanent failure; retries should have absorbed it", g.Step)
		}
	}
	if got.BestStep != want.BestStep {
		t.Fatalf("best step %d, want %d", got.BestStep, want.BestStep)
	}
}

// TestPublicRemotePoolAsync: several clients for the same worker pool
// behind NewBackendPool, driven concurrently by RunAsync — the
// one-session-many-workers deployment.
func TestPublicRemotePoolAsync(t *testing.T) {
	top, bk1 := remoteTestSetup(t, 0)
	// Second worker process serving the same topology.
	srv2 := startWorker(t, stormtune.BackendServerOptions{}, top)
	bk2 := stormtune.NewRemoteBackend(srv2.URL, stormtune.RemoteBackendOptions{})

	// CheckRemoteBackend primes each client's served-fingerprint cache,
	// which the pool routes by.
	for _, bk := range []*stormtune.RemoteBackend{bk1, bk2} {
		if _, err := stormtune.CheckRemoteBackend(context.Background(), bk, top, stormtune.SinkTuples); err != nil {
			t.Fatal(err)
		}
	}

	pool, err := stormtune.NewBackendPool(bk1, bk2)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := stormtune.NewTuner(top, pool, quietTunerOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.RunAsync(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 8 {
		t.Fatalf("pool session ran %d records, want 8", len(res.Records))
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no successful trial through the pool")
	}
}

// TestPublicPoolRoutesMixedFleet: a pool whose members serve different
// topologies routes each session's trials to the member that serves
// them — the multi-tenant deployment a heterogeneous fleet relies on.
func TestPublicPoolRoutesMixedFleet(t *testing.T) {
	topA := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	topB := stormtune.BuildSynthetic("medium", stormtune.Condition{}, 1)
	if stormtune.TopologyFingerprint(topA) == stormtune.TopologyFingerprint(topB) {
		t.Fatal("fixture broken: fingerprints collide")
	}
	srvA := startWorker(t, stormtune.BackendServerOptions{}, topA)
	srvB := startWorker(t, stormtune.BackendServerOptions{}, topB)
	bkA := stormtune.NewRemoteBackend(srvA.URL, stormtune.RemoteBackendOptions{})
	bkB := stormtune.NewRemoteBackend(srvB.URL, stormtune.RemoteBackendOptions{})
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bkA, topA, stormtune.SinkTuples); err != nil {
		t.Fatal(err)
	}
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bkB, topB, stormtune.SinkTuples); err != nil {
		t.Fatal(err)
	}
	pool, err := stormtune.NewBackendPool(bkA, bkB)
	if err != nil {
		t.Fatal(err)
	}

	for _, top := range []*stormtune.Topology{topA, topB} {
		opts := quietTunerOpts(4)
		tn, err := stormtune.NewTuner(top, pool, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.Best(); !ok {
			t.Fatalf("no successful trial for %s through the mixed pool", top.Name)
		}
	}
	// Both members must have evaluated their own topology's trials.
	for _, ws := range pool.Stats() {
		if ws.Completed == 0 {
			t.Fatalf("worker %s evaluated nothing; routing broken: %+v", ws.Worker, pool.Stats())
		}
	}
}

// TestRemoteMismatchRejected: tuning topology A against a worker
// serving topology B must fail fast at CheckRemoteBackend — both on a
// different operator count and on a same-shaped topology with a
// different name.
func TestRemoteMismatchRejected(t *testing.T) {
	served, bk := remoteTestSetup(t, 0)
	other := stormtune.BuildSynthetic("medium", stormtune.Condition{}, 1)
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bk, other, stormtune.SinkTuples); err == nil {
		t.Fatal("mismatched operator count accepted")
	}
	sameShape := stormtune.BuildSynthetic("small", stormtune.Condition{TimeImbalance: 1}, 1)
	if sameShape.N() != served.N() || sameShape.Name == served.Name {
		t.Fatalf("fixture broken: %q (%d) vs %q (%d)", sameShape.Name, sameShape.N(), served.Name, served.N())
	}
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bk, sameShape, stormtune.SinkTuples); err == nil {
		t.Fatal("same-shaped topology with a different name accepted")
	}
	// Wrong metric: same topology, different throughput definition.
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bk, served, stormtune.SourceTuples); err == nil {
		t.Fatal("mismatched metric accepted")
	}
	// Same name, same node count, different generation seed (under a
	// condition whose imbalance/contention assignment is seeded): only
	// the structural fingerprint can tell these apart.
	cond := stormtune.Condition{TimeImbalance: 1, ContentiousFraction: 0.25}
	seedA := stormtune.BuildSynthetic("small", cond, 1)
	seedB := stormtune.BuildSynthetic("small", cond, 2)
	if seedA.Name != seedB.Name || seedA.N() != seedB.N() {
		t.Fatalf("fixture broken: %q (%d) vs %q (%d)", seedA.Name, seedA.N(), seedB.Name, seedB.N())
	}
	if stormtune.TopologyFingerprint(seedA) == stormtune.TopologyFingerprint(seedB) {
		t.Fatal("fixture broken: different seeds fingerprint identically")
	}
	srvA := startWorker(t, stormtune.BackendServerOptions{}, seedA)
	bkA := stormtune.NewRemoteBackend(srvA.URL, stormtune.RemoteBackendOptions{})
	if _, err := stormtune.CheckRemoteBackend(context.Background(), bkA, seedA, stormtune.SinkTuples); err != nil {
		t.Fatalf("matching topology rejected: %v", err)
	}
	err := func() error {
		_, err := stormtune.CheckRemoteBackend(context.Background(), bkA, seedB, stormtune.SinkTuples)
		return err
	}()
	if err == nil {
		t.Fatal("different-seed topology with identical name/shape accepted")
	}
	// The mismatch error carries the requested vs. served fingerprint
	// sets, so the operator can see exactly what to fix.
	var mm *stormtune.RemoteMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("err = %T, want *RemoteMismatchError", err)
	}
	if mm.WantFingerprint != stormtune.TopologyFingerprint(seedB) {
		t.Fatalf("WantFingerprint = %s, want %s", mm.WantFingerprint, stormtune.TopologyFingerprint(seedB))
	}
	if len(mm.ServedFingerprints) != 1 || mm.ServedFingerprints[0] != stormtune.TopologyFingerprint(seedA) {
		t.Fatalf("ServedFingerprints = %v, want the worker's set", mm.ServedFingerprints)
	}
}

// TestRemoteServeProcessRoundTrip tunes against an externally started
// `stormtune serve` process — the CI job starts one and points
// STORMTUNE_REMOTE_URL at it (skipped when the variable is unset). The
// server must run `-topology small -seed 1`; with `-flaky N` the test
// additionally asserts the retry path fired, and STORMTUNE_REMOTE_TOKEN
// supplies the bearer token for workers started with `-token`.
func TestRemoteServeProcessRoundTrip(t *testing.T) {
	url := os.Getenv("STORMTUNE_REMOTE_URL")
	if url == "" {
		t.Skip("STORMTUNE_REMOTE_URL not set; start `stormtune serve` and point it here")
	}
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	bk := stormtune.NewRemoteBackend(url, stormtune.RemoteBackendOptions{
		Auth:      stormtune.RemoteCredentials{Token: os.Getenv("STORMTUNE_REMOTE_TOKEN")},
		Transport: stormtune.RemoteTransport{Retries: 2},
	})
	info, err := stormtune.CheckRemoteBackend(context.Background(), bk, top, stormtune.SinkTuples)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live server at %s serves %d topolog(ies), %v", url, len(info.Topologies), info.Fingerprints())

	var mu sync.Mutex
	var failed int
	spec := stormtune.PaperCluster()
	tn, err := stormtune.NewTuner(top, bk, stormtune.TunerOptions{
		Steps: 10, Seed: 1, Cluster: &spec,
		Candidates: 150, HyperSamples: 2, LocalSearchIters: 4,
		Retry: stormtune.RetryPolicy{MaxAttempts: 4, Backoff: 10 * time.Millisecond},
		Observer: stormtune.ObserverFunc(func(e stormtune.Event) {
			if _, ok := e.(stormtune.TrialFailed); ok {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelTimeout := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelTimeout()
	res, err := tn.RunAsync(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("ran %d records, want 10", len(res.Records))
	}
	best, ok := res.Best()
	if !ok || best.Result.Throughput <= 0 {
		t.Fatalf("no successful trial over the live server: %+v", best)
	}
	if os.Getenv("STORMTUNE_REMOTE_FLAKY") != "" && failed == 0 {
		t.Fatal("server is flaky but no TrialFailed event was observed")
	}
	t.Logf("best %.0f tuples/s at step %d (%d lost evaluations retried)",
		best.Result.Throughput, res.BestStep, failed)
}
