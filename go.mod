module stormtune

go 1.22
