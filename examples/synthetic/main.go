// Synthetic workloads: generate the paper's medium GGen topology,
// apply time-complexity imbalance and resource contention (§IV-B), and
// compare all four tuning strategies under the experimental protocol —
// a single cell of Figure 4.
package main

import (
	"fmt"

	"stormtune"
)

func main() {
	cond := stormtune.Condition{TimeImbalance: 1, ContentiousFraction: 0.25}
	top := stormtune.BuildSynthetic("medium", cond, 1)
	fmt.Printf("topology %q: %d nodes, contentious share %.0f%%\n",
		top.Name, top.N(), 100*top.ContentiousShare())

	spec := stormtune.PaperCluster()
	// The protocol consumes the Backend contract; AsBackend wraps the
	// simulator (a RemoteBackend would slot in the same way).
	backend := stormtune.AsBackend(stormtune.NewFluidSim(top, spec, stormtune.SinkTuples, 7))
	template := stormtune.DefaultSyntheticConfig(top, 1)

	proto := stormtune.DefaultProtocol()
	proto.Steps, proto.Passes, proto.BestReruns = 25, 1, 10

	fmt.Println("\nstrategy  throughput (avg of re-runs)  steps-to-best")
	for _, name := range []string{"pla", "ipla", "bo", "ibo"} {
		name := name
		factory := func(pass int) stormtune.Strategy {
			switch name {
			case "pla":
				return stormtune.NewPLA(top, template)
			case "ipla":
				return stormtune.NewIPLA(top, template)
			case "ibo":
				return stormtune.NewBO(top, spec, template,
					stormtune.BOOptions{Set: stormtune.InformedHints, Seed: int64(10 + pass)})
			default:
				return stormtune.NewBO(top, spec, template,
					stormtune.BOOptions{Set: stormtune.Hints, Seed: int64(20 + pass)})
			}
		}
		p := proto
		if name == "pla" || name == "ipla" {
			p.StopAfterZeros = 3
		} else {
			p.StopAfterZeros = 0
		}
		out := stormtune.RunProtocol(backend, factory, p)
		fmt.Printf("%-8s  %10.0f [%.0f..%.0f]      %v\n",
			name, out.Summary.Mean, out.Summary.Min, out.Summary.Max, out.StepsToBest)
	}
	fmt.Println("\nthe informed strategies exploit the topology's base-parallelism weights;")
	fmt.Println("under contention, extra parallelism on flagged bolts is pure waste.")
}
