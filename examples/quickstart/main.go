// Quickstart: build a small synthetic topology, let Bayesian
// optimization pick its parallelism hints on the simulated 80-machine
// cluster, and compare against the naive parallel-linear baseline.
package main

import (
	"fmt"
	"log"

	"stormtune"
)

func main() {
	// One of the paper's Table II topologies: 10 operators, 4 layers.
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	fmt.Printf("topology %q: %d nodes, %d spouts, %d sinks\n",
		top.Name, top.N(), len(top.Spouts()), len(top.Sinks()))

	// The simulated cluster is the black-box objective: config in,
	// measured tuples/s out.
	ev := stormtune.NewFluidSim(top, stormtune.PaperCluster(), stormtune.SinkTuples, 1)

	// Baseline: parallel linear ascent (all hints equal, increasing).
	pla := stormtune.Tune(ev, stormtune.NewPLA(top, stormtune.DefaultSyntheticConfig(top, 1)), 30, 3)
	plaBest, _ := pla.Best()
	fmt.Printf("pla best:  %8.0f tuples/s at step %d\n", plaBest.Result.Throughput, pla.BestStep)

	// Bayesian optimization over per-node hints plus max-tasks.
	cfg, res, err := stormtune.AutoTune(top, ev, stormtune.AutoTuneOptions{Steps: 30, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bo best:   %8.0f tuples/s (bottleneck: %s)\n", res.Throughput, res.Bottleneck)
	fmt.Printf("bo hints:  %v (max-tasks %d)\n", cfg.NormalizedHints(), cfg.MaxTasks)
}
