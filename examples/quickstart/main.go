// Quickstart: tune a small synthetic topology on the simulated
// 80-machine cluster through the session API — first with the
// hands-off async driver, then driving the ask/tell loop by hand (the
// workflow for tuning a real external cluster the library does not
// control).
package main

import (
	"context"
	"fmt"
	"log"

	"stormtune"
)

func main() {
	// One of the paper's Table II topologies: 10 operators, 4 layers.
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	fmt.Printf("topology %q: %d nodes, %d spouts, %d sinks\n",
		top.Name, top.N(), len(top.Spouts()), len(top.Sinks()))

	// The simulated cluster is the black-box objective: config in,
	// measured tuples/s out. AsBackend adapts it to the session's
	// context-aware Backend contract.
	ev := stormtune.NewFluidSim(top, stormtune.PaperCluster(), stormtune.SinkTuples, 1)

	// Driver mode: a session with free-slot async dispatch (4 trials in
	// flight; a replacement starts the moment any one completes).
	tn, err := stormtune.NewTuner(top, stormtune.AsBackend(ev), stormtune.TunerOptions{Steps: 30, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tn.RunAsync(context.Background(), 4)
	if err != nil {
		log.Fatal(err)
	}
	best, _ := res.Best()
	fmt.Printf("driver best:   %8.0f tuples/s at step %d (bottleneck: %s)\n",
		best.Result.Throughput, res.BestStep, best.Result.Bottleneck)

	// Ask/tell mode: the tuner proposes, we evaluate however we want
	// and report back — swap ev.Run for a deployment on real hardware.
	askTell, err := stormtune.NewTuner(top, nil, stormtune.TunerOptions{Steps: 15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for {
		trials, err := askTell.Propose(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(trials) == 0 {
			break
		}
		for _, tr := range trials {
			measurement := ev.Run(tr.Config, tr.RunIndex) // your cluster here
			if err := askTell.Report(tr, measurement); err != nil {
				log.Fatal(err)
			}
		}
	}
	atBest, _ := askTell.Best()
	fmt.Printf("ask/tell best: %8.0f tuples/s, hints %v (max-tasks %d)\n",
		atBest.Result.Throughput, atBest.Config.NormalizedHints(), atBest.Config.MaxTasks)
}
