// Resume: pause and resume a tuning session via serialized snapshots —
// the Spearmint feature that "turned out to be important" for the
// paper's shared student-lab cluster (§III-C), here through the public
// Tuner API (no internal packages needed).
//
// A session is cancelled mid-run ("the lab closes"), snapshotted to
// disk, loaded by a fresh process, and resumed. The resume replays the
// session's ask/tell log against a freshly built optimizer, so the
// continued run is bit-identical to one that was never interrupted —
// no cluster time wasted re-sampling, no evidence lost.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stormtune"
)

func main() {
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	newBackend := func() stormtune.Backend {
		return stormtune.AsBackend(stormtune.NewFluidSim(top, stormtune.PaperCluster(), stormtune.SinkTuples, 1))
	}
	opts := stormtune.TunerOptions{Steps: 25, Seed: 5}
	statePath := filepath.Join(os.TempDir(), "stormtune-resume-example.json")
	defer os.Remove(statePath)

	// Phase 1: run until "the lab closes" after 10 trials — cancel the
	// context from the event stream, snapshot, save and exit.
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	opts.Observer = stormtune.ObserverFunc(func(e stormtune.Event) {
		if _, ok := e.(stormtune.TrialCompleted); ok {
			if done++; done == 10 {
				cancel()
			}
		}
	})
	tn, err := stormtune.NewTuner(top, newBackend(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tn.Run(ctx); err == nil {
		log.Fatal("expected the run to be interrupted")
	}
	best1, _ := tn.Best()
	if err := tn.Snapshot().SaveFile(statePath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: interrupted after %d trials, best %.0f tuples/s — state saved to %s\n",
		done, best1.Result.Throughput, statePath)

	// Phase 2: a new process loads the snapshot and finishes the budget.
	st, err := stormtune.LoadTunerStateFile(statePath)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := stormtune.ResumeTuner(st, top, newBackend(), stormtune.TunerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: resumed with %d completed trials\n", len(resumed.Result().Records))
	res, err := resumed.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	best2, _ := res.Best()
	fmt.Printf("phase 2: finished the %d-step budget, best %.0f tuples/s at step %d\n",
		len(res.Records), best2.Result.Throughput, res.BestStep)
	if best2.Result.Throughput < best1.Result.Throughput {
		log.Fatal("resume lost progress")
	}
	fmt.Println("resume preserved all evidence — the continued run is bit-identical to an uninterrupted one.")
}
