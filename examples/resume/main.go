// Resume: demonstrate pausing and resuming a Bayesian-optimization run
// via serialized state — the Spearmint feature that "turned out to be
// important" for the paper's shared student-lab cluster (§III-C).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"stormtune/internal/bo"
)

// objective is an expensive black box standing in for a cluster run.
func objective(x []float64) float64 {
	return -(x[0]-0.3)*(x[0]-0.3) - (x[1]-0.7)*(x[1]-0.7) + 0.05*math.Sin(20*x[0])
}

func main() {
	space := bo.MustSpace(
		bo.Dim{Name: "x", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "y", Kind: bo.Float, Min: 0, Max: 1},
	)
	statePath := filepath.Join(os.TempDir(), "stormtune-resume-example.json")
	defer os.Remove(statePath)

	// Phase 1: run ten steps, then "the lab closes" — save and exit.
	opt := bo.NewOptimizer(space, bo.Options{Seed: 5})
	for i := 0; i < 10; i++ {
		u := opt.Suggest()
		opt.Observe(u, objective(u))
	}
	_, y1, _ := opt.Best()
	if err := opt.Snapshot().SaveFile(statePath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: 10 steps, best %.4f — state saved to %s\n", y1, statePath)

	// Phase 2: a new process resumes from the snapshot and continues.
	st, err := bo.LoadStateFile(statePath)
	if err != nil {
		log.Fatal(err)
	}
	resumed := bo.Resume(st, bo.Options{})
	fmt.Printf("phase 2: resumed with %d observations\n", resumed.N())
	for i := 0; i < 15; i++ {
		u := resumed.Suggest()
		resumed.Observe(u, objective(u))
	}
	_, y2, _ := resumed.Best()
	fmt.Printf("phase 2: 15 more steps, best %.4f (true optimum ≈ 0.05)\n", y2)
	if y2 < y1 {
		log.Fatal("resume lost progress")
	}
	fmt.Println("resume preserved all evidence — no cluster time wasted re-sampling.")
}
