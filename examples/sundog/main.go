// Sundog: reproduce the §V-D headline result on the real-world entity
// ranking topology — tuning only parallelism hints is flat, while
// adding batch size and batch parallelism to the search space yields a
// multi-x throughput gain (2.8x in the paper) — driven through the
// session/Backend API.
package main

import (
	"context"
	"fmt"
	"log"

	"stormtune"
)

func main() {
	sd := stormtune.Sundog()
	spec := stormtune.PaperCluster()
	ev := stormtune.NewFluidSim(sd, spec, stormtune.SourceTuples, 7)
	backend := stormtune.AsBackend(ev)
	ctx := context.Background()

	// The manually tuned deployment the Sundog developers used:
	// batch size 50 000, batch parallelism 5, thread pool 8.
	manual := stormtune.DefaultConfig(sd, 11)
	base := ev.Run(manual, 0)
	fmt.Printf("manual config (h=11, bs=50k, bp=5): %.0f tuples/s\n", base.Throughput)

	// Hints only (what pla/bo.h search): a session with the linear
	// baseline injected as a custom strategy.
	plaSession, err := stormtune.NewTuner(sd, backend, stormtune.TunerOptions{
		Steps:          40,
		Template:       &manual,
		Cluster:        &spec,
		Strategy:       stormtune.NewPLA(sd, manual),
		StopAfterZeros: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	pla, err := plaSession.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	plaBest, _ := pla.Best()
	fmt.Printf("pla over hints:                     %.0f tuples/s (h=%d)\n",
		plaBest.Result.Throughput, plaBest.Config.Hints[0])

	// Hints + batch size + batch parallelism: the paper's winning set,
	// on the built-in Bayesian optimizer.
	boSession, err := stormtune.NewTuner(sd, backend, stormtune.TunerOptions{
		Steps:    60,
		Set:      stormtune.HintsBatch,
		Template: &manual,
		Cluster:  &spec,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := boSession.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	best, ok := tr.Best()
	if !ok {
		fmt.Println("bo found nothing")
		return
	}
	fmt.Printf("bo over h+bs+bp:                    %.0f tuples/s (bs=%d, bp=%d)\n",
		best.Result.Throughput, best.Config.BatchSize, best.Config.BatchParallelism)
	fmt.Printf("gain over pla hints-only:           %.2fx (paper: 2.8x)\n",
		best.Result.Throughput/plaBest.Result.Throughput)
	fmt.Println("\nthe bayesian optimizer raises batch size and pipeline depth far beyond")
	fmt.Println("what the developers dared to set manually (§V-D).")
}
