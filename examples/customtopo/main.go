// Customtopo: define your own topology as a JSON spec, load it, and
// let a tuning session configure it — the workflow a downstream user of
// the library follows for their own Storm application, on the
// session/Backend API (cancellation, typed events, retry semantics).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"stormtune"
	"stormtune/internal/topo"
)

// spec describes a little fraud-detection pipeline: a transaction
// source, an enrichment step that calls a shared feature store (a
// globally contentious resource), a scoring bolt and two outputs.
const spec = `{
  "name": "fraud-detection",
  "nodes": [
    {"name": "transactions", "kind": "spout", "time_units": 0.5, "tuple_bytes": 512},
    {"name": "enrich", "kind": "bolt", "time_units": 2.0, "contentious": true, "tuple_bytes": 768},
    {"name": "score", "kind": "bolt", "time_units": 4.0, "tuple_bytes": 256},
    {"name": "alerts", "kind": "bolt", "time_units": 0.5, "selectivity": 0.02, "tuple_bytes": 256},
    {"name": "archive", "kind": "bolt", "time_units": 1.0, "tuple_bytes": 256}
  ],
  "edges": [
    {"from": "transactions", "to": "enrich"},
    {"from": "enrich", "to": "score", "grouping": "fields"},
    {"from": "score", "to": "alerts"},
    {"from": "score", "to": "archive"}
  ]
}`

func main() {
	top, err := topo.ReadJSON(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d operators, contentious share %.0f%%\n",
		top.Name, top.N(), 100*top.ContentiousShare())

	ev := stormtune.NewFluidSim(top, stormtune.PaperCluster(), stormtune.SourceTuples, 1)

	// Baseline: whatever the developers would deploy manually.
	manual := stormtune.DefaultConfig(top, 4)
	base := ev.Run(manual, 0)
	fmt.Printf("manual config (h=4):     %8.0f tuples/s (bottleneck %s)\n", base.Throughput, base.Bottleneck)

	// A tuning session over the simulator wrapped as a Backend. The
	// retry policy matters on real clusters where measurements get lost;
	// it is free here and shows the intended wiring.
	tn, err := stormtune.NewTuner(top, stormtune.AsBackend(ev), stormtune.TunerOptions{
		Steps:    40,
		Set:      stormtune.HintsBatch,
		Template: &manual,
		Seed:     2,
		Retry:    stormtune.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := tn.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	best, ok := tr.Best()
	if !ok {
		log.Fatal("no successful run")
	}
	cfg, res := best.Config, best.Result
	fmt.Printf("auto-tuned (h+bs+bp):    %8.0f tuples/s (bottleneck %s)\n", res.Throughput, res.Bottleneck)
	fmt.Printf("gain:                    %.2fx\n", res.Throughput/base.Throughput)
	fmt.Printf("hints: %v  batch: size=%d parallelism=%d\n",
		cfg.NormalizedHints(), cfg.BatchSize, cfg.BatchParallelism)
	fmt.Println("\nnote how the contentious enrichment bolt keeps a low hint — extra")
	fmt.Println("instances of it would only burn CPU on the shared feature store.")
}
