package stormtune

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"stormtune/internal/storm"
)

func fastTunerOpts(seed int64, steps int) TunerOptions {
	return TunerOptions{
		Steps: steps, Seed: seed,
		Candidates: 120, HyperSamples: 2, LocalSearchIters: 4,
	}
}

func quietEval(t *Topology, spec ClusterSpec) *storm.FluidSim {
	f := storm.NewFluidSim(t, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	return f
}

func recordsEqual(t *testing.T, a, b []RunRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Step != b[i].Step || a[i].Config.Fingerprint() != b[i].Config.Fingerprint() ||
			a[i].Result.Throughput != b[i].Result.Throughput {
			t.Fatalf("records diverge at %d: step %d/%d throughput %v/%v",
				i, a[i].Step, b[i].Step, a[i].Result.Throughput, b[i].Result.Throughput)
		}
	}
}

// TestTunerAskTell drives a session entirely from the outside — the
// external-cluster workflow: the tuner proposes, the caller measures
// however it wants and reports back.
func TestTunerAskTell(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	ev := quietEval(top, SmallCluster())
	opts := fastTunerOpts(3, 10)
	opts.Parallel = 2
	opts.Cluster = ptrCluster(SmallCluster())
	tn, err := NewTuner(top, nil, opts) // nil evaluator: ask/tell only
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	completed := 0
	for {
		trials, err := tn.Propose(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) == 0 {
			break
		}
		if len(trials) > 2 {
			t.Fatalf("proposed %d trials with Parallel=2", len(trials))
		}
		for _, tr := range trials {
			if err := tn.Report(tr, ev.Run(tr.Config, tr.RunIndex)); err != nil {
				t.Fatal(err)
			}
			completed++
		}
	}
	if completed != 10 {
		t.Fatalf("completed %d trials, want the 10-step budget", completed)
	}
	if !tn.Done() {
		t.Fatal("session should be done after spending its budget")
	}
	if best, ok := tn.Best(); !ok || best.Result.Throughput <= 0 {
		t.Fatalf("ask/tell session found nothing: %+v", tn.Result())
	}
	if _, err := tn.Run(ctx); err == nil {
		t.Fatal("Run on an evaluator-less tuner must error")
	}
}

// TestTunerRunAsyncMatchesRunAtQ1: the free-slot driver at one slot is
// the sequential driver, record for record (acceptance criterion).
func TestTunerRunAsyncMatchesRunAtQ1(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	run := func(async bool) TuneResult {
		ev := quietEval(top, SmallCluster())
		opts := fastTunerOpts(5, 12)
		opts.Cluster = ptrCluster(SmallCluster())
		tn, err := NewTuner(top, AsBackend(ev), opts)
		if err != nil {
			t.Fatal(err)
		}
		var res TuneResult
		if async {
			res, err = tn.RunAsync(context.Background(), 1)
		} else {
			res, err = tn.Run(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, async := run(false), run(true)
	recordsEqual(t, seq.Records, async.Records)
	// And a second Tuner built the same way — strategy injected rather
	// than built-in — still agrees with the session drivers.
	strat := NewBO(top, SmallCluster(), DefaultConfig(top, 1), BOOptions{Seed: 5, Opt: fastTunerOpts(5, 12).boOptions().Opt})
	tn, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())),
		TunerOptions{Steps: 12, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	injected, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, seq.Records, injected.Records)
}

func ptrCluster(s ClusterSpec) *ClusterSpec { return &s }

// TestTunerAsyncBeatsBatchWallClock is the headline acceptance test:
// under seeded heavy-tailed trial durations at q=4, free-slot refill
// must finish no later than barrier batching on the same budget, with
// comparable final throughput (regret parity).
func TestTunerAsyncBeatsBatchWallClock(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	base := 2 * time.Millisecond
	if testing.Short() {
		base = time.Millisecond
	}
	run := func(async bool) (TuneResult, time.Duration) {
		ev := storm.Jittered(quietEval(top, SmallCluster()), base, 11)
		opts := fastTunerOpts(7, 24)
		opts.Cluster = ptrCluster(SmallCluster())
		tn, err := NewTuner(top, AsBackend(ev), opts)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		var res TuneResult
		if async {
			res, err = tn.RunAsync(context.Background(), 4)
		} else {
			res, err = tn.RunBatch(context.Background(), 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, time.Since(start)
	}
	batchRes, batchWall := run(false)
	asyncRes, asyncWall := run(true)
	if len(asyncRes.Records) != 24 || len(batchRes.Records) != 24 {
		t.Fatalf("budgets not honored: async %d batch %d", len(asyncRes.Records), len(batchRes.Records))
	}
	// Free-slot refill must not be slower than the barrier (same number
	// of trials, same durations available for overlap); allow 5% timer
	// slack.
	if float64(asyncWall) > float64(batchWall)*1.05 {
		t.Fatalf("async wall-clock %v exceeds barrier %v", asyncWall, batchWall)
	}
	ab, okA := asyncRes.Best()
	bb, okB := batchRes.Best()
	if !okA || !okB {
		t.Fatal("a driver found nothing")
	}
	// Regret sanity bound. RunAsync's proposals depend on completion
	// order, which the scheduler (and the race detector's timing
	// distortion) legitimately varies, so this cannot be a tight parity
	// check: occasionally one mode lands on a config exactly one hint
	// doubling below the other's. Only catastrophic regret fails.
	lo, hi := ab.Result.Throughput, bb.Result.Throughput
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0.4*hi {
		t.Fatalf("regret too high: async best %v vs batch best %v", ab.Result.Throughput, bb.Result.Throughput)
	}
}

// TestTunerSnapshotResumeBitIdentical is the other acceptance
// criterion: cancel a run mid-flight, snapshot it, round-trip the
// snapshot through JSON, resume, and end with exactly the result an
// uninterrupted run produces.
func TestTunerSnapshotResumeBitIdentical(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	newOpts := func() TunerOptions {
		o := fastTunerOpts(9, 16)
		o.Cluster = ptrCluster(SmallCluster())
		return o
	}

	full, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), newOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 7 completed trials ("the lab
	// closes"), snapshot, serialize, resume, finish.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	opts := newOpts()
	opts.Observer = ObserverFunc(func(e Event) {
		if _, ok := e.(TrialCompleted); ok {
			if n++; n == 7 {
				cancel()
			}
		}
	})
	half, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	var buf bytes.Buffer
	if err := half.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := LoadTunerState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeTuner(st, top, AsBackend(quietEval(top, SmallCluster())), TunerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, want.Records, got.Records)
	wb, _ := want.Best()
	gb, _ := got.Best()
	if wb.Result.Throughput != gb.Result.Throughput || wb.Step != gb.Step {
		t.Fatalf("resumed best (%v @ %d) differs from uninterrupted (%v @ %d)",
			gb.Result.Throughput, gb.Step, wb.Result.Throughput, wb.Step)
	}
}

// TestTunerRunAsyncClampsParallelism: q beyond the cluster's
// concurrent-trial capacity is reduced, with an event, instead of
// oversubscribing.
func TestTunerRunAsyncClampsParallelism(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	tiny := ClusterSpec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 12, ThrashTasksPerCore: 2}
	var clamped []ParallelismClamped
	opts := fastTunerOpts(2, 6)
	opts.Cluster = &tiny
	opts.Observer = ObserverFunc(func(e Event) {
		if c, ok := e.(ParallelismClamped); ok {
			clamped = append(clamped, c)
		}
	})
	tn, err := NewTuner(top, AsBackend(quietEval(top, tiny)), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := tn.MaxParallel()
	if want >= 64 {
		t.Fatalf("test premise broken: capacity %d too large", want)
	}
	if _, err := tn.RunAsync(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	if len(clamped) != 1 || clamped[0].Requested != 64 || clamped[0].Allowed != want {
		t.Fatalf("clamp events = %+v, want one 64→%d", clamped, want)
	}
}

// TestTunerCustomStrategyResume: an injected strategy snapshots and
// resumes too, as long as the caller supplies an equally fresh one.
func TestTunerCustomStrategyResume(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	ev := quietEval(top, SmallCluster())
	mk := func() Strategy { return NewPLA(top, DefaultSyntheticConfig(top, 1)) }

	tn, err := NewTuner(top, AsBackend(ev), TunerOptions{Steps: 4, Strategy: mk(), Cluster: ptrCluster(SmallCluster())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tn.Snapshot()
	if !st.Custom {
		t.Fatal("snapshot should record the custom strategy")
	}
	if _, err := ResumeTuner(st, top, AsBackend(ev), TunerOptions{}); err == nil {
		t.Fatal("resume without a fresh strategy must fail")
	}
	resumed, err := ResumeTuner(st, top, AsBackend(ev), TunerOptions{Strategy: mk(), Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 8 {
		t.Fatalf("resumed run has %d records, want 8", len(res.Records))
	}
	// PLA proposes hints 1,2,3,… — the resumed half must continue at 5.
	if h := res.Records[4].Config.Hints[0]; h != 5 {
		t.Fatalf("resumed PLA restarted: step 5 hint %d", h)
	}
}

// TestResumeTunerRejectsWrongTopology guards against resuming a
// snapshot over a different topology.
func TestResumeTunerRejectsWrongTopology(t *testing.T) {
	small := BuildSynthetic("small", Condition{}, 1)
	medium := BuildSynthetic("medium", Condition{}, 1)
	tn, err := NewTuner(small, AsBackend(quietEval(small, SmallCluster())), fastTunerOpts(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeTuner(tn.Snapshot(), medium, nil, TunerOptions{}); err == nil {
		t.Fatal("resume over a different topology must fail")
	}
}
