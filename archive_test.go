package stormtune

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
)

// TestTunerArchivesAndWarmStarts covers the public archive loop: a
// cold run records and seals its evidence, and a second tuner over the
// same archive warm-starts from it — visible in Transfer(), in the
// recorder snapshot the dashboard serves, and in the archived donor.
func TestTunerArchivesAndWarmStarts(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	arch := NewMemArchive()

	opts := fastTunerOpts(3, 10)
	opts.Cluster = ptrCluster(SmallCluster())
	opts.Archive = arch
	opts.WarmStart = WarmStartOptions{Enabled: true, Prior: true}

	cold, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Transfer() != nil {
		t.Fatal("first run over an empty archive must start cold")
	}
	coldRes, err := cold.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := arch.Get(cold.ArchiveKey())
	if !ok {
		t.Fatalf("archive has no record under %q", cold.ArchiveKey())
	}
	if !rec.Sealed {
		t.Fatal("a cleanly finished run must seal its archive record")
	}
	if len(rec.Trials) != len(coldRes.Records) {
		t.Fatalf("archived %d trials, session ran %d", len(rec.Trials), len(coldRes.Records))
	}

	opts2 := fastTunerOpts(4, 10)
	opts2.Cluster = ptrCluster(SmallCluster())
	opts2.Archive = arch
	opts2.WarmStart = WarmStartOptions{Enabled: true, Prior: true}
	opts2.Recorder = NewRecorder()
	warm, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts2)
	if err != nil {
		t.Fatal(err)
	}
	ts := warm.Transfer()
	if ts == nil {
		t.Fatal("same-fingerprint re-tune must warm-start")
	}
	if !ts.Exact || ts.Donor != cold.ArchiveKey() {
		t.Fatalf("transfer = %+v, want exact match on the cold run's key", ts)
	}
	// The dashboard state (dash.State embeds the recorder snapshot)
	// reports the warm start and its donor.
	snap := opts2.Recorder.Snapshot()
	if !snap.WarmStarted || snap.WarmDonor != cold.ArchiveKey() || snap.WarmSimilarity != ts.Similarity {
		t.Fatalf("recorder snapshot warm fields = %+v, want donor %q", snap, cold.ArchiveKey())
	}
	if _, err := warm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if warm.ArchiveKey() == cold.ArchiveKey() {
		t.Fatal("a fresh run must archive under a fresh key")
	}
}

// TestTunerArchiveResumeNoDoubleAppend: snapshot/resume with -archive
// enabled must not double-append the pre-snapshot records — the
// resumed session backfills only the steps the archive does not
// already hold, and the finished archive holds each step exactly once.
func TestTunerArchiveResumeNoDoubleAppend(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	arch := NewMemArchive()
	const steps = 12

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	opts := fastTunerOpts(7, steps)
	opts.Cluster = ptrCluster(SmallCluster())
	opts.Archive = arch
	opts.Observer = ObserverFunc(func(e Event) {
		if _, ok := e.(TrialCompleted); ok {
			if n++; n == 5 {
				cancel()
			}
		}
	})
	half, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	key := half.ArchiveKey()
	rec, ok := arch.Get(key)
	if !ok {
		t.Fatal("interrupted run left no archive record")
	}
	if rec.Sealed {
		t.Fatal("a cancelled run must leave its record unsealed for re-attach")
	}
	preSnapshot := len(rec.Trials)
	if preSnapshot == 0 {
		t.Fatal("test premise broken: no trials archived before the snapshot")
	}

	var buf bytes.Buffer
	if err := half.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := LoadTunerState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.ArchiveKey != key {
		t.Fatalf("snapshot archive key %q, want %q", st.ArchiveKey, key)
	}
	resumed, err := ResumeTuner(st, top, AsBackend(quietEval(top, SmallCluster())),
		TunerOptions{Archive: arch})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ArchiveKey() != key {
		t.Fatalf("resumed under key %q, want the original %q", resumed.ArchiveKey(), key)
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rec, _ = arch.Get(key)
	if !rec.Sealed {
		t.Fatal("the resumed run finished cleanly and must seal")
	}
	if len(rec.Trials) != len(res.Records) {
		t.Fatalf("archive holds %d trials, session ran %d (pre-snapshot records double-appended?)",
			len(rec.Trials), len(res.Records))
	}
	stepsSeen := make([]int, len(rec.Trials))
	for i, tr := range rec.Trials {
		stepsSeen[i] = tr.Step
	}
	sort.Ints(stepsSeen)
	for i, s := range stepsSeen {
		if s != i+1 {
			t.Fatalf("archived steps %v, want exactly 1..%d once each", stepsSeen, len(res.Records))
		}
	}
}

// TestWatcherArchivesTrials: a watch with an archive records its
// completed trials (initial tune included) under a "watch" key and
// seals on a clean horizon finish.
func TestWatcherArchivesTrials(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	arch := NewMemArchive()
	ev := quietEval(top, SmallCluster())
	template := DefaultSyntheticConfig(top, 1)
	opts := WatchOptions{
		Steps: 6, Seed: 1, Template: &template,
		TrialCost: 60, HoldInterval: 60, Horizon: 2000,
		Candidates: 120, HyperSamples: 2, LocalSearchIters: 4,
		Archive: arch,
	}
	w, err := NewWatcher(top, AsBackend(ev), opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.ArchiveKey() == "" {
		t.Fatal("watcher with an archive must derive a key")
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, ok := arch.Get(w.ArchiveKey())
	if !ok {
		t.Fatalf("no archive record under %q", w.ArchiveKey())
	}
	if len(rec.Trials) < opts.Steps {
		t.Fatalf("archived %d trials, want at least the %d-step initial tune", len(rec.Trials), opts.Steps)
	}
	if !rec.Sealed {
		t.Fatal("a watch that reached its horizon must seal its record")
	}
	if rec.Meta.Strategy != "watch" {
		t.Fatalf("archived strategy %q, want \"watch\"", rec.Meta.Strategy)
	}
}
