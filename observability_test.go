package stormtune

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRecorderObservesTunerRun wires a Recorder into a full run through
// TunerOptions.Recorder and checks the derived state matches the
// session summary.
func TestRecorderObservesTunerRun(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	rec := NewRecorder()
	opts := fastTunerOpts(5, 10)
	opts.Cluster = ptrCluster(SmallCluster())
	opts.Recorder = rec
	tn, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := rec.Snapshot()
	if !s.Done || s.Completed != len(res.Records) || s.Running != 0 {
		t.Fatalf("snapshot: %+v vs %d records", s, len(res.Records))
	}
	best, _ := res.Best()
	if s.Best != best.Result.Throughput || s.BestTrial != best.Step {
		t.Fatalf("incumbent: recorder %v@%d, session %v@%d",
			s.Best, s.BestTrial, best.Result.Throughput, best.Step)
	}
	// The best-so-far curve must equal the session's convergence trace.
	want := res.BestSoFar()
	if len(s.Incumbent) != len(want) {
		t.Fatalf("curve length %d, want %d", len(s.Incumbent), len(want))
	}
	for i, p := range s.Incumbent {
		if p.Best != want[i] {
			t.Fatalf("curve[%d] = %v, want %v", i, p.Best, want[i])
		}
	}
}

// TestResumedRecorderMatchesPreSnapshotTrace is the satellite resume
// test: a run is interrupted mid-way, its Recorder's incumbent trace
// noted; ResumeTuner primes a fresh Recorder from the snapshot, which
// must reproduce that trace exactly — and after the continuation the
// rebuilt Recorder must match the Recorder of an uninterrupted run.
func TestResumedRecorderMatchesPreSnapshotTrace(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	newOpts := func() TunerOptions {
		o := fastTunerOpts(9, 14)
		o.Cluster = ptrCluster(SmallCluster())
		return o
	}

	// Reference: uninterrupted run observed by recorder "full".
	fullRec := NewRecorder()
	opts := newOpts()
	opts.Recorder = fullRec
	full, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: recorder "half" sees the first 6 completions.
	ctx, cancel := context.WithCancel(context.Background())
	halfRec := NewRecorder()
	n := 0
	opts = newOpts()
	opts.Recorder = halfRec
	opts.Observer = ObserverFunc(func(e Event) {
		if _, ok := e.(TrialCompleted); ok {
			if n++; n == 6 {
				cancel()
			}
		}
	})
	half, err := NewTuner(top, AsBackend(quietEval(top, SmallCluster())), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	preTrace := halfRec.IncumbentTrace()
	preSnap := halfRec.Snapshot()

	var buf bytes.Buffer
	if err := half.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := LoadTunerState(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Resume with a fresh recorder: ResumeTuner primes it from the
	// snapshot before any live event.
	resumedRec := NewRecorder()
	resumed, err := ResumeTuner(st, top, AsBackend(quietEval(top, SmallCluster())),
		TunerOptions{Recorder: resumedRec})
	if err != nil {
		t.Fatal(err)
	}

	// Before the continuation runs, the rebuilt trace must equal the
	// pre-snapshot one.
	rebuilt := resumedRec.IncumbentTrace()
	if len(rebuilt) != len(preTrace) {
		t.Fatalf("rebuilt trace has %d moves, pre-snapshot had %d: %+v vs %+v",
			len(rebuilt), len(preTrace), rebuilt, preTrace)
	}
	for i := range rebuilt {
		if rebuilt[i].TrialID != preTrace[i].TrialID || rebuilt[i].Best != preTrace[i].Best ||
			rebuilt[i].Step != preTrace[i].Step {
			t.Fatalf("trace[%d]: rebuilt %+v, pre-snapshot %+v", i, rebuilt[i], preTrace[i])
		}
	}
	rs := resumedRec.Snapshot()
	if rs.Completed != preSnap.Completed || rs.Best != preSnap.Best || rs.BestTrial != preSnap.BestTrial {
		t.Fatalf("rebuilt state %+v, pre-snapshot %+v", rs, preSnap)
	}

	// Finish the run; the rebuilt recorder's final trace must equal the
	// uninterrupted recorder's (resume is bit-identical, so the curves
	// coincide move for move).
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Carried-over pending trials were re-dispatched (TrialStarted on
	// the carry path) and finished: nothing may be stranded "pending".
	for _, tv := range resumedRec.Snapshot().Trials {
		if tv.Status != StatusDone && tv.Status != StatusFailed {
			t.Fatalf("trial %d ended the run as %q", tv.ID, tv.Status)
		}
	}
	gotTrace, wantTrace := resumedRec.IncumbentTrace(), fullRec.IncumbentTrace()
	if len(gotTrace) != len(wantTrace) {
		t.Fatalf("final traces differ in length: %d vs %d", len(gotTrace), len(wantTrace))
	}
	for i := range gotTrace {
		if gotTrace[i].TrialID != wantTrace[i].TrialID || gotTrace[i].Best != wantTrace[i].Best {
			t.Fatalf("final trace[%d]: resumed %+v, uninterrupted %+v", i, gotTrace[i], wantTrace[i])
		}
	}
}

// slowBackend delays each evaluation so a dashboard query can catch
// trials in flight.
type slowBackend struct {
	inner Backend
	delay time.Duration
}

func (s slowBackend) Run(ctx context.Context, tr Trial) (Result, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	return s.inner.Run(ctx, tr)
}

// TestDashboardOverLiveRun serves a dashboard over a running session
// and consumes it like a second process would: /healthz, /api/state
// mid-run, and the SSE stream until a trial_completed arrives — the
// same assertions the CI smoke test makes against the real binary.
func TestDashboardOverLiveRun(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	rec := NewRecorder()
	opts := fastTunerOpts(3, 8)
	opts.Cluster = ptrCluster(SmallCluster())
	opts.Recorder = rec
	backend := slowBackend{inner: AsBackend(quietEval(top, SmallCluster())), delay: 30 * time.Millisecond}
	tn, err := NewTuner(top, backend, opts)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewDashboard(rec, DashboardOptions{
		Title: "live test",
		Info:  map[string]any{"topology": top.Name},
	}))
	defer srv.Close()

	runErr := make(chan error, 1)
	go func() {
		_, err := tn.Run(context.Background())
		runErr <- err
	}()

	// Health first, like the CI probe loop.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}

	// SSE until the first completed trial.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	req, _ := http.NewRequestWithContext(sctx, http.MethodGet, srv.URL+"/api/events?after=0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	sawCompleted := false
	for !sawCompleted {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE ended before a trial completed: %v", err)
		}
		if strings.TrimSpace(line) == "event: trial_completed" {
			sawCompleted = true
		}
	}

	// State mid-run: trials present, run not done.
	var st struct {
		RecorderSnapshot
		Title string         `json:"title"`
		Info  map[string]any `json:"info"`
	}
	sresp, err := http.Get(srv.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Title != "live test" || st.Info["topology"] != top.Name {
		t.Fatalf("state meta: %+v", st)
	}
	if len(st.Trials) == 0 {
		t.Fatal("no trials in mid-run state")
	}

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if s := rec.Snapshot(); !s.Done || s.Completed != 8 {
		t.Fatalf("final snapshot: %+v", s)
	}
}

// TestBackendPoolStats checks the per-worker counters the dashboard's
// workers table is built on.
func TestBackendPoolStats(t *testing.T) {
	top := BuildSynthetic("small", Condition{}, 1)
	a := AsBackend(quietEval(top, SmallCluster()))
	b := AsBackend(quietEval(top, SmallCluster()))
	pool, err := NewBackendPool(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 {
		t.Fatalf("size %d", pool.Size())
	}
	opts := fastTunerOpts(4, 6)
	opts.Cluster = ptrCluster(SmallCluster())
	tn, err := NewTuner(top, pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.RunAsync(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	stats := pool.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	var total int64
	for _, w := range stats {
		if w.InFlight != 0 || w.Errors != 0 {
			t.Fatalf("idle pool reports activity: %+v", w)
		}
		if !strings.HasPrefix(w.Worker, "worker-") {
			t.Fatalf("label %q", w.Worker)
		}
		total += w.Completed
	}
	if total != 6 {
		t.Fatalf("pool completed %d evaluations, want 6", total)
	}
}
