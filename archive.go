package stormtune

import (
	"fmt"
	"io"
	"strings"

	"stormtune/internal/archive"
	"stormtune/internal/core"
)

// Session-archive types re-exported from the archive and core packages.
type (
	// Archive is a store of tuning evidence: archived session states
	// plus compact per-trial records, keyed by topology fingerprint and
	// a feature vector. Open a persistent one with OpenArchive, an
	// in-memory one with NewMemArchive, and hand it to sessions via
	// TunerOptions.Archive / WatchOptions.Archive or query it directly
	// with QueryArchive.
	Archive = archive.Store
	// DiskArchive is the persistent implementation: an append-only
	// JSON-lines segment log plus an index, crash-safe (a torn tail is
	// truncated on open) and fsynced on seal. Its GC method compacts
	// the log and drops unsealed records.
	DiskArchive = archive.Disk
	// MemArchive is the in-memory implementation, for tests and
	// ephemeral cross-session sharing within one process.
	MemArchive = archive.Mem
	// ArchiveMeta identifies one archived session: key, topology
	// fingerprint and name, strategy, parameter set, seed, features.
	ArchiveMeta = archive.SessionMeta
	// ArchiveRecord is one archived session: its meta, per-trial
	// evidence, sealed flag and (when sealed) serialized session state.
	ArchiveRecord = archive.SessionRecord
	// ArchiveTrial is one compact archived trial record.
	ArchiveTrial = archive.TrialRecord
	// ArchiveFeatures is the topology feature vector similarity ranking
	// uses: component counts, depth, fan-out, TIIM class, contention
	// share and cluster dimensions.
	ArchiveFeatures = archive.Features
	// ArchiveRanked is one similarity-ranked QueryArchive result.
	ArchiveRanked = archive.Ranked
	// WarmStartOptions enable transfer learning from an Archive:
	// warm-start configurations from prior incumbents and an optional
	// archived-runs prior on the GP mean, guarded by a minimum donor
	// similarity. Off by default.
	WarmStartOptions = core.WarmStartOptions
	// TransferSeed is the materialized transfer a warm-started session
	// applied: donor identity, similarity, warm-start points and the
	// prior training set. Serialized into snapshots so a resumed run
	// reapplies the identical transfer.
	TransferSeed = core.TransferSeed
)

// OpenArchive opens (creating if needed) the persistent archive rooted
// at dir. Partial trailing writes from a crash are truncated away;
// corruption anywhere earlier is reported as an error.
func OpenArchive(dir string) (*DiskArchive, error) { return archive.Open(dir) }

// NewMemArchive builds an empty in-memory archive.
func NewMemArchive() *MemArchive { return archive.NewMem() }

// ExtractArchiveFeatures computes a topology's feature vector against
// a cluster spec — what SessionMeta carries and similarity ranking
// compares.
func ExtractArchiveFeatures(t *Topology, spec ClusterSpec) ArchiveFeatures {
	return archive.Extract(t, spec)
}

// QueryArchive returns the top-k archived sessions most relevant to a
// topology, best first: exact fingerprint matches outrank any feature
// distance, then descending similarity.
func QueryArchive(a Archive, fp uint64, f ArchiveFeatures, k int) []ArchiveRanked {
	return archive.Query(a, fp, f, k)
}

// ExportArchive writes every record as one JSON line — the
// `stormtune archive export` format ImportArchive reads back.
func ExportArchive(a Archive, w io.Writer) error { return archive.ExportStore(a, w) }

// ImportArchive merges exported records into a, skipping keys that
// already exist, and reports how many were imported.
func ImportArchive(a Archive, r io.Reader) (int, error) { return archive.ImportStore(a, r) }

// deriveArchiveKey builds the deterministic archive key of a new run:
// a base identifying topology+strategy+seed, suffixed with a run
// counter so re-running the same tuning setup archives a fresh record
// while resume (which pins the stored key) re-attaches.
func deriveArchiveKey(a Archive, topoName string, fp uint64, strategy string, seed int64) string {
	base := fmt.Sprintf("%s-%016x/%s/s%d", topoName, fp, strategy, seed)
	n := 1
	for _, k := range a.Keys() {
		if k == base || strings.HasPrefix(k, base+"#") {
			n++
		}
	}
	return fmt.Sprintf("%s#%d", base, n)
}
