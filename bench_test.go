// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableX / BenchmarkFigX runs the
// corresponding experiment and prints the paper-style report once (so
// `go test -bench=.` output contains the regenerated rows).
//
// By default the experiments run at a reduced scale that preserves the
// paper's qualitative shapes; set STORMTUNE_FULL=1 for the full §V
// protocol (60/180 steps, 2 passes, 30 re-runs, all three sizes).
//
// The micro-benchmarks at the bottom measure the library's hot paths:
// one simulated measurement run (the paper burned ~2 cluster-minutes
// per sample; the fluid evaluator answers in microseconds) and one
// Bayesian-optimizer decision step.
package stormtune_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"stormtune"
	"stormtune/internal/archive"
	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/experiments"
	"stormtune/internal/gp"
	"stormtune/internal/scheduler"
	"stormtune/internal/storm"
	"stormtune/internal/watch"
)

var printed sync.Map

// benchExperiment runs one experiment id per iteration, printing its
// report the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := experiments.ScaleFromEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiments.Run(id, sc, &buf); err != nil {
			b.Fatal(err)
		}
		if _, done := printed.LoadOrStore(id, true); !done {
			fmt.Fprint(os.Stdout, buf.String())
		}
	}
}

// BenchmarkTable2 regenerates Table II (synthetic topology statistics).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table III (operator counts in literature).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig3 regenerates Figure 3 (network load per worker).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4 (throughput across conditions,
// sizes and strategies). The synthetic grid is computed once and cached
// for Figures 5-7, exactly as the paper derives those figures from the
// same experiment series.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (convergence speed).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (LOESS-smoothed optimization traces).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (optimizer decision time vs size).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8a regenerates Figure 8a (Sundog throughput by parameter
// set).
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates Figure 8b (Sundog convergence traces).
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkAblation runs the optimizer-design ablation (acquisition
// function, hyperparameter marginalization, candidate seeding).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkBatchScaling regenerates the concurrent-trials report.
func BenchmarkBatchScaling(b *testing.B) { benchExperiment(b, "batch") }

// BenchmarkAsyncScaling regenerates the dispatch-mode report
// (sequential vs barrier batch vs free-slot refill under heavy-tailed
// trial durations).
func BenchmarkAsyncScaling(b *testing.B) { benchExperiment(b, "async") }

// BenchmarkFluidSolve measures one simulated measurement run of the
// medium topology — the objective-function evaluation inside every
// optimization step.
func BenchmarkFluidSolve(b *testing.B) {
	t := stormtune.BuildSynthetic("medium", stormtune.Condition{}, 1)
	ev := stormtune.NewFluidSim(t, stormtune.PaperCluster(), stormtune.SinkTuples, 1)
	cfg := stormtune.DefaultSyntheticConfig(t, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ev.Run(cfg, i)
		if r.Failed {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkBatchDES measures one discrete-event simulation of the small
// topology's batch pipeline.
func BenchmarkBatchDES(b *testing.B) {
	t := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	ev := stormtune.NewBatchDES(t, stormtune.SmallCluster(), stormtune.SinkTuples)
	cfg := stormtune.DefaultSyntheticConfig(t, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ev.Run(cfg, i)
		if r.Failed {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkGPFit measures fitting the Gaussian process on a 60-point
// design in 11 dimensions (the small topology's search space after a
// full optimization pass).
func BenchmarkGPFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 60, 11
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gp.New(gp.NewMatern52(d, 0.3), 1e-3)
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// suggestBenchSpace is the 6-dimensional space (4 float, 2 int) the
// optimizer decision-step benchmarks share.
func suggestBenchSpace() *bo.Space {
	return bo.MustSpace(
		bo.Dim{Name: "a", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "b", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "c", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "d", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "e", Kind: bo.Int, Min: 1, Max: 64},
		bo.Dim{Name: "f", Kind: bo.Int, Min: 1, Max: 64},
	)
}

func suggestBenchObjective(u []float64) float64 {
	return -((u[0]-0.4)*(u[0]-0.4) + (u[1]-0.6)*(u[1]-0.6) + 0.1*u[2])
}

// seedSuggestBench feeds n pseudo-random observations into opt and runs
// one untimed warm-up ask/tell turn, so the timed iterations measure the
// steady-state incremental hot path — cached Cholesky factors extended
// per observation, hyperparameter refits amortized across the epoch —
// rather than the first ask's cold fit and slice-sampling burn.
func seedSuggestBench(b *testing.B, opt *bo.Optimizer, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		u := make([]float64, 6)
		for j := range u {
			u[j] = rng.Float64()
		}
		opt.Observe(u, suggestBenchObjective(u))
	}
	u := opt.Suggest()
	opt.Observe(u, suggestBenchObjective(u))
}

// benchmarkSuggestWorkers measures one optimizer decision step on a
// 100-observation history at a fixed worker count; the Sequential/
// Parallel pair below shows the speedup of the concurrent candidate
// scorer on multi-core hardware. Gated against BENCH_baseline.json by
// cmd/benchcmp.
func benchmarkSuggestWorkers(b *testing.B, workers int) {
	b.Helper()
	opt := bo.NewOptimizer(suggestBenchSpace(), bo.Options{
		Seed: 1, Candidates: 150, HyperSamples: 2, Workers: workers,
		LocalSearchIters: -1,
	})
	seedSuggestBench(b, opt, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := opt.Suggest()
		opt.Observe(u, suggestBenchObjective(u))
	}
}

// BenchmarkFleetSchedule measures the fleet scheduler's slot-allocation
// hot path: the weighted fair-share pick plus the grant/release
// bookkeeping, across 64 sessions with mixed weights and per-session
// in-flight caps — the decision made every time a shared slot frees up
// under `stormtune fleet`. One benchmark op is 4096 decisions, so the
// ns/op is stable at the gate's small -benchtime. Gated against
// BENCH_baseline.json by cmd/benchcmp.
func BenchmarkFleetSchedule(b *testing.B) {
	const sessions, slots, rounds = 64, 16, 4096
	weights := make([]float64, sessions)
	caps := make([]int, sessions)
	for i := range weights {
		weights[i] = float64(1 + i%4)
		caps[i] = 1 + i%3
	}
	share := scheduler.NewFairShare(weights)
	inflight := make([]int, sessions)
	eligible := make([]bool, sessions)
	// Grants release FIFO through a fixed ring: the oldest in-flight
	// trial completes whenever the shared slots fill up.
	var ring [slots]int
	head, held := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			for j := range eligible {
				eligible[j] = inflight[j] < caps[j]
			}
			if g := share.Pick(eligible); g >= 0 {
				inflight[g]++
				ring[(head+held)%slots] = g
				held++
			}
			if held == slots {
				inflight[ring[head]]--
				head = (head + 1) % slots
				held--
			}
		}
	}
}

// BenchmarkBOSuggestSequentialScorer pins candidate scoring and GP
// refits to one goroutine.
func BenchmarkBOSuggestSequentialScorer(b *testing.B) { benchmarkSuggestWorkers(b, 1) }

// BenchmarkBOSuggestParallelScorer fans both out across all cores.
func BenchmarkBOSuggestParallelScorer(b *testing.B) { benchmarkSuggestWorkers(b, runtime.NumCPU()) }

// BenchmarkGPObserveIncremental measures conditioning one new
// observation into a 500-point GP and retracting it again — the rank-1
// Cholesky extend/shrink pair plus the two alpha refreshes that the
// optimizer's cached hot path performs per ask instead of an O(n³)
// refactorization. Gated against BENCH_baseline.json by cmd/benchcmp.
func BenchmarkGPObserveIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 500, 6
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = rng.NormFloat64()
	}
	g := gp.New(gp.NewMatern52(d, 0.3), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, d)
	for j := range x {
		x[j] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Observe(x, 0.5); err != nil {
			b.Fatal(err)
		}
		if err := g.Retract(x, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBOSuggestLargeHistory measures the decision step as the
// observation history grows past the exact-GP regime: n=100 runs dense
// cached Cholesky, n=1000 and n=10000 sit past ApproxAfter and run the
// random-Fourier-feature surrogate, whose per-ask cost is constant in
// n. The three sub-benchmarks together pin the sublinear growth of the
// hot path. Gated against BENCH_baseline.json by cmd/benchcmp.
func BenchmarkBOSuggestLargeHistory(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			opt := bo.NewOptimizer(suggestBenchSpace(), bo.Options{
				Seed: 1, Candidates: 150, HyperSamples: 2, LocalSearchIters: -1,
				ApproxAfter: 512, RFFFeatures: 128,
			})
			seedSuggestBench(b, opt, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := opt.Suggest()
				opt.Observe(u, suggestBenchObjective(u))
			}
		})
	}
}

// BenchmarkTuneBatch measures a full concurrent-trials round (q=4) on
// the fluid evaluator, the dispatch loop of the batch engine.
func BenchmarkTuneBatch(b *testing.B) {
	t := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	spec := stormtune.SmallCluster()
	ev := stormtune.NewFluidSim(t, spec, stormtune.SinkTuples, 1)
	template := stormtune.DefaultSyntheticConfig(t, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strat := stormtune.NewBO(t, spec, template, stormtune.BOOptions{
			Seed: int64(i + 1),
			Opt:  bo.Options{Candidates: 150, HyperSamples: 2, LocalSearchIters: 4},
		})
		tn, err := stormtune.NewTuner(t, stormtune.AsBackend(ev), stormtune.TunerOptions{
			Steps: 12, Strategy: strat, Cluster: &spec, Template: &template,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tn.RunBatch(context.Background(), 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkTunerRunAsync measures a full free-slot-refill session
// (q=4) on the fluid evaluator — the async counterpart of
// BenchmarkTuneBatch.
func BenchmarkTunerRunAsync(b *testing.B) {
	t := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	spec := stormtune.SmallCluster()
	template := stormtune.DefaultSyntheticConfig(t, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := stormtune.NewFluidSim(t, spec, stormtune.SinkTuples, 1)
		tn, err := stormtune.NewTuner(t, stormtune.AsBackend(ev), stormtune.TunerOptions{
			Steps: 12, Seed: int64(i + 1), Template: &template, Cluster: &spec,
			Candidates: 150, HyperSamples: 2, LocalSearchIters: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tn.RunAsync(context.Background(), 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkMonitorObserve measures the watch degradation monitor
// consuming a 10k-sample observation stream per op — the per-sample
// cost of continuous tuning's hold phase (rolling baseline update,
// degradation/backpressure streak tracking, episode bookkeeping),
// including the trigger/reset cycle every time a degradation burst
// fires. Gated against BENCH_baseline.json by cmd/benchcmp.
func BenchmarkMonitorObserve(b *testing.B) {
	const samples = 10_000
	// A deterministic stream: long healthy stretches with a degradation
	// burst every 100 samples, so each op exercises fills, pushes,
	// streaks and ~100 full trigger/reset episodes.
	stream := make([]storm.Result, samples)
	for i := range stream {
		r := storm.Result{Throughput: 95 + float64(i%7), OfferedLoad: 100}
		if i%100 >= 90 {
			r.Throughput = 40
			r.Backpressured = true
		}
		stream[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := watch.NewMonitor(watch.MonitorOptions{Window: 8})
		for j, r := range stream {
			m.Observe(float64(j)*60, r)
			if _, ok := m.TakeTrigger(); ok {
				m.Reset()
			}
		}
	}
}

// BenchmarkArchiveQuery measures one similarity-ranked top-k lookup
// against a 1000-session archive — the query a warm-started session
// issues at construction time, scanning every record's feature vector
// (exact fingerprint matches ranked first, then weighted feature
// distance). Gated against BENCH_baseline.json by cmd/benchcmp.
func BenchmarkArchiveQuery(b *testing.B) {
	store := archive.NewMem()
	cfg := storm.Config{Hints: []int{4, 4, 4, 4}, BatchSize: 50, BatchParallelism: 8, WorkerThreads: 8, ReceiverThreads: 1}
	for i := 0; i < 1000; i++ {
		meta := archive.SessionMeta{
			Key:         fmt.Sprintf("s%04d", i),
			Fingerprint: uint64(1 + i%97), // a handful of exact matches per fingerprint
			Topology:    "bench",
			Strategy:    "bo",
			Seed:        int64(i),
			Features: archive.Features{
				Nodes: 4 + i%32, Spouts: 1 + i%3, Edges: 6 + i%40,
				Depth: 2 + i%8, FanOut: 1 + i%5, TIIMClass: i % 4,
				Contention: float64(i%10) / 10, Machines: 8, Slots: 16,
			},
		}
		if err := store.Begin(meta); err != nil {
			b.Fatal(err)
		}
		if err := store.Append(meta.Key,
			archive.TrialRecord{Step: 1, Config: cfg, Y: float64(i)},
			archive.TrialRecord{Step: 2, Config: cfg, Y: float64(i) * 1.1},
		); err != nil {
			b.Fatal(err)
		}
	}
	target := archive.Features{
		Nodes: 10, Spouts: 2, Edges: 14, Depth: 4, FanOut: 3,
		TIIMClass: 1, Contention: 0.2, Machines: 8, Slots: 16,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := archive.Query(store, 50, target, 5); len(rs) != 5 {
			b.Fatalf("got %d ranked results, want 5", len(rs))
		}
	}
}

// BenchmarkWarmStartSeed measures computing one transfer seed — the
// archive query, donor filtering, warm-point projection and prior
// training-set assembly a warm-started tuner performs once at
// construction — against an archive holding 8 same-fingerprint donors
// of 60 trials each plus 200 dissimilar sessions. Gated against
// BENCH_baseline.json by cmd/benchcmp.
func BenchmarkWarmStartSeed(b *testing.B) {
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	spec := cluster.Small()
	template := storm.DefaultSyntheticConfig(top, 1)
	store := archive.NewMem()
	rng := rand.New(rand.NewSource(4))

	// Same-fingerprint donors: archived evidence the transfer must rank
	// first, project into the unit cube and z-score for the prior.
	feats := archive.Extract(top, spec)
	for d := 0; d < 8; d++ {
		meta := archive.SessionMeta{
			Key: fmt.Sprintf("donor-%d", d), Fingerprint: top.Fingerprint(),
			Topology: top.Name, Strategy: "bo", Set: int(core.Hints),
			Seed: int64(d), Features: feats,
		}
		if err := store.Begin(meta); err != nil {
			b.Fatal(err)
		}
		for s := 1; s <= 60; s++ {
			cfg := template
			cfg.Hints = make([]int, top.N())
			for j := range cfg.Hints {
				cfg.Hints[j] = 1 + rng.Intn(64)
			}
			if err := store.Append(meta.Key,
				archive.TrialRecord{Step: s, Config: cfg, Y: 1000 + 500*rng.Float64()}); err != nil {
				b.Fatal(err)
			}
		}
		if err := store.Seal(meta.Key, nil); err != nil {
			b.Fatal(err)
		}
	}
	// Dissimilar background sessions the query has to scan past.
	for i := 0; i < 200; i++ {
		meta := archive.SessionMeta{
			Key: fmt.Sprintf("other-%d", i), Fingerprint: uint64(1_000_000 + i),
			Topology: "other", Strategy: "bo", Set: int(core.Hints), Seed: int64(i),
			Features: archive.Features{
				Nodes: 3 + i%40, Spouts: 1, Edges: 4 + i%50, Depth: 2 + i%10,
				FanOut: 1 + i%6, TIIMClass: i % 4, Contention: float64(i%7) / 7,
				Machines: 4, Slots: 8,
			},
		}
		if err := store.Begin(meta); err != nil {
			b.Fatal(err)
		}
	}

	bs := core.NewBO(top, spec, template, core.BOOptions{
		Seed: 99, Opt: bo.Options{Candidates: 150, HyperSamples: 2, LocalSearchIters: 4},
	})
	meta := core.SessionMetaFor("self", top, spec, "bo", core.Hints, 99)
	ws := core.WarmStartOptions{Enabled: true, Prior: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := core.ComputeTransfer(bs, store, meta, ws)
		if seed == nil || !seed.Exact || len(seed.Points) == 0 {
			b.Fatalf("transfer seed = %+v, want an exact-donor warm start", seed)
		}
	}
}

// BenchmarkBOSuggest measures one optimizer decision step with 30
// observations — the per-step cost Figure 7 studies.
func BenchmarkBOSuggest(b *testing.B) {
	space := bo.MustSpace(
		bo.Dim{Name: "x", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "y", Kind: bo.Float, Min: 0, Max: 1},
		bo.Dim{Name: "n", Kind: bo.Int, Min: 1, Max: 64},
	)
	opt := bo.NewOptimizer(space, bo.Options{Seed: 1, Candidates: 300, HyperSamples: 2})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		u := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		opt.Observe(u, -((u[0]-0.4)*(u[0]-0.4) + (u[1]-0.6)*(u[1]-0.6)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := opt.Suggest()
		opt.Observe(u, -((u[0]-0.4)*(u[0]-0.4) + (u[1]-0.6)*(u[1]-0.6)))
	}
}
