package stormtune_test

import (
	"testing"

	"stormtune"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// TestEndToEndDeterminism runs the whole stack twice with the same
// seeds — topology generation, simulation noise, optimizer — and
// demands identical outcomes.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (float64, []int) {
		top := topo.BuildSynthetic("small", topo.Condition{TimeImbalance: 1}, 7)
		ev := storm.NewFluidSim(top, cluster.Paper(), storm.SinkTuples, 9)
		strat := core.NewBO(top, cluster.Paper(), storm.DefaultSyntheticConfig(top, 1),
			core.BOOptions{Seed: 5})
		tr := core.Tune(ev, strat, 12, 0, 0)
		best, ok := tr.Best()
		if !ok {
			t.Fatal("no best")
		}
		return best.Result.Throughput, best.Config.NormalizedHints()
	}
	y1, h1 := run()
	y2, h2 := run()
	if y1 != y2 {
		t.Fatalf("non-deterministic throughput: %v vs %v", y1, y2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("non-deterministic hints: %v vs %v", h1, h2)
		}
	}
}

// TestStrategiesRespectEvaluatorContract checks that every strategy
// family produces configurations every evaluator accepts, across
// conditions — the cross-module contract the experiments rely on.
func TestStrategiesRespectEvaluatorContract(t *testing.T) {
	spec := cluster.Small()
	for _, cond := range topo.Conditions() {
		top := topo.BuildSynthetic("small", cond, 2)
		template := storm.DefaultSyntheticConfig(top, 1)
		evals := []storm.Evaluator{
			storm.NewFluidSim(top, spec, storm.SinkTuples, 1),
			storm.NewBatchDES(top, spec, storm.SinkTuples),
		}
		for _, name := range core.StrategySet {
			factory, err := core.MakeFactory(name, top, spec, template, 1, core.BOOptions{})
			if err != nil {
				t.Fatal(err)
			}
			strat := factory(0)
			for step := 0; step < 3; step++ {
				cfg, ok := strat.Next()
				if !ok {
					break
				}
				if err := cfg.Validate(top); err != nil {
					t.Fatalf("%s/%s: %v", cond.Label(), name, err)
				}
				for _, ev := range evals {
					r := ev.Run(cfg, step)
					strat.Observe(cfg, r)
				}
			}
		}
	}
}

// TestParallelRerunsDeterministic ensures the concurrent best-config
// re-runs produce the same summary as a sequential execution would
// (noise keyed by run index, not scheduling order).
func TestParallelRerunsDeterministic(t *testing.T) {
	top := stormtune.BuildSynthetic("small", stormtune.Condition{}, 1)
	ev := stormtune.NewFluidSim(top, stormtune.PaperCluster(), stormtune.SinkTuples, 3)
	p := stormtune.DefaultProtocol()
	p.Steps, p.Passes, p.BestReruns = 4, 1, 16
	factory := func(int) stormtune.Strategy {
		return stormtune.NewIPLA(top, stormtune.DefaultSyntheticConfig(top, 1))
	}
	a := stormtune.RunProtocol(stormtune.AsBackend(ev), factory, p)
	b := stormtune.RunProtocol(stormtune.AsBackend(ev), factory, p)
	if a.Summary != b.Summary {
		t.Fatalf("parallel reruns nondeterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

// TestIBOHintsFollowWeights verifies the informed decoding: with equal
// multipliers, deeper nodes (larger weights) receive larger hints.
func TestIBOHintsFollowWeights(t *testing.T) {
	top := topo.BuildSynthetic("medium", topo.Condition{}, 1)
	weights := top.BaseWeights()
	strat := core.NewBO(top, cluster.Paper(), storm.DefaultSyntheticConfig(top, 1),
		core.BOOptions{Set: core.InformedHints, Seed: 1})
	// Sample several suggestions and check rank correlation between
	// weights and hints is positive on average (multipliers vary, but
	// weights set the scale).
	agree, total := 0, 0
	for s := 0; s < 5; s++ {
		cfg, _ := strat.Next()
		strat.Observe(cfg, storm.Result{Throughput: 1})
		for i := 0; i < top.N(); i++ {
			for j := i + 1; j < top.N(); j++ {
				if weights[i] == weights[j] {
					continue
				}
				total++
				if (weights[i] > weights[j]) == (cfg.Hints[i] >= cfg.Hints[j]) {
					agree++
				}
			}
		}
	}
	if total == 0 || float64(agree)/float64(total) < 0.6 {
		t.Fatalf("informed hints poorly correlated with weights: %d/%d", agree, total)
	}
}
