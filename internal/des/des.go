// Package des is a small discrete-event simulation kernel: a clock and
// a priority queue of timestamped events with deterministic FIFO
// tie-breaking. The Storm batch simulator is built on it.
package des

import (
	"container/heap"
	"math"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine runs events in timestamp order.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	// Processed counts executed events; useful for test assertions and
	// run diagnostics.
	Processed uint64
}

// New creates an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time (seconds by convention).
func (e *Engine) Now() float64 { return e.now }

// Schedule registers fn to run at absolute time t. Events scheduled in
// the past run at the current time (never rewinding the clock).
func (e *Engine) Schedule(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// ScheduleAfter registers fn to run after delay d from now.
func (e *Engine) ScheduleAfter(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Run executes events until the queue empties or the clock passes
// until. Events scheduled exactly at until still execute. Returns the
// final clock value.
func (e *Engine) Run(until float64) float64 {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.time > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.time
		e.Processed++
		next.fn()
	}
	if e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
