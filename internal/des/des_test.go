package des

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Processed != 3 {
		t.Fatalf("processed = %d", e.Processed)
	}
}

func TestTiesRunFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(5, func() { ran = true })
	now := e.Run(3)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if now != 3 {
		t.Fatalf("clock = %v, want 3", now)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// Continue past it.
	e.Run(10)
	if !ran {
		t.Fatal("event not executed after extending horizon")
	}
}

func TestScheduleDuringRun(t *testing.T) {
	e := New()
	var hits []float64
	var rec func()
	count := 0
	rec = func() {
		hits = append(hits, e.Now())
		count++
		if count < 4 {
			e.ScheduleAfter(1, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run(100)
	if len(hits) != 4 {
		t.Fatalf("hits = %v", hits)
	}
	for i, h := range hits {
		if h != float64(i) {
			t.Fatalf("hit %d at %v, want %v", i, h, float64(i))
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := New()
	e.Schedule(5, func() {
		e.Schedule(1, func() {
			if e.Now() != 5 {
				t.Fatalf("past event ran at %v, want clamp to 5", e.Now())
			}
		})
	})
	e.Run(10)
}

func TestNegativeDelayClamps(t *testing.T) {
	e := New()
	ran := false
	e.ScheduleAfter(-3, func() { ran = true })
	e.Run(1)
	if !ran {
		t.Fatal("negative-delay event should run immediately")
	}
}

func TestEmptyRunAdvancesClock(t *testing.T) {
	e := New()
	if got := e.Run(7); got != 7 {
		t.Fatalf("clock = %v", got)
	}
}
