// Package scheduler implements the free-slot-refill dispatch loop the
// asynchronous tuning driver is built on: up to a fixed number of jobs
// run concurrently, and the moment any job completes a replacement is
// requested — no barrier between rounds, so slow jobs never hold idle
// slots hostage the way batch dispatch does when durations vary.
//
// Completions are processed strictly one at a time on the caller's
// goroutine, so given the same completion order the sequence of
// next/done calls — and therefore everything the caller derives from it
// — is deterministic.
package scheduler

import "context"

// Loop runs the dispatch loop until the job source dries up, done asks
// to stop, or ctx is cancelled. next(ctx, free) must return at most
// free jobs (it is called with the full slot count first, then with
// the number of slots just vacated); returning none means no work is
// currently available — the loop asks again after the next completion
// and exits once nothing is in flight. The loop forwards its own ctx
// to next so proposal work (which can be expensive) observes
// cancellation without the source having to capture a context. run
// evaluates one job (called concurrently, one goroutine per in-flight
// job). done is called serially in completion order; returning false
// stops the loop from issuing further jobs.
//
// On cancellation or stop the loop does not abandon in-flight jobs: it
// keeps collecting (and reporting via done) every result already paid
// for, then returns ctx.Err().
func Loop[J, R any](ctx context.Context, slots int,
	next func(ctx context.Context, free int) []J,
	run func(context.Context, J) R,
	done func(J, R) bool,
) error {
	if slots < 1 {
		slots = 1
	}
	type completion struct {
		job J
		res R
	}
	ch := make(chan completion)
	inflight := 0
	launch := func(jobs []J) {
		for _, j := range jobs {
			inflight++
			go func(j J) {
				ch <- completion{job: j, res: run(ctx, j)}
			}(j)
		}
	}
	stopped := ctx.Err() != nil
	if !stopped {
		launch(next(ctx, slots))
	}
	for inflight > 0 {
		c := <-ch
		inflight--
		if !done(c.job, c.res) || ctx.Err() != nil {
			stopped = true
		}
		if !stopped {
			launch(next(ctx, slots-inflight))
		}
	}
	return ctx.Err()
}
