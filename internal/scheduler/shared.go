package scheduler

import "context"

// FairShare allocates slot grants across weighted sources by stride
// scheduling: each source carries a pass value advanced by 1/weight on
// every grant, and the next grant goes to the eligible source with the
// lowest pass (ties to the lowest index). Over time each source
// receives grants in proportion to its weight, and — unlike picking by
// current occupancy alone — no eligible source is ever starved: a
// source skipped now keeps its pass while the others' grow, so it
// becomes the minimum after at most ~maxWeight/itsWeight grants.
//
// FairShare is not safe for concurrent use; the dispatch loops that own
// one call it from a single goroutine.
type FairShare struct {
	pass   []float64
	stride []float64
}

// NewFairShare builds an allocator for len(weights) sources. Weights at
// or below zero count as 1 (plain fair share); larger weights receive
// proportionally more grants.
func NewFairShare(weights []float64) *FairShare {
	f := &FairShare{
		pass:   make([]float64, len(weights)),
		stride: make([]float64, len(weights)),
	}
	for i, w := range weights {
		if w <= 0 {
			w = 1
		}
		f.stride[i] = 1 / w
		// Start each source one stride in, the standard stride-scheduling
		// initialization: the very first grants already follow the weights
		// instead of handing every source one grant in index order.
		f.pass[i] = f.stride[i]
	}
	return f
}

// Len returns the number of sources.
func (f *FairShare) Len() int { return len(f.pass) }

// Pick returns the eligible source the next slot should go to and
// advances its pass, or -1 when no source is eligible. eligible must
// have Len() entries; an ineligible source (dead, or at its in-flight
// cap) keeps its pass, so it is not penalized for the time it could not
// compete.
func (f *FairShare) Pick(eligible []bool) int {
	best := -1
	for i, p := range f.pass {
		if !eligible[i] {
			continue
		}
		if best < 0 || p < f.pass[best] {
			best = i
		}
	}
	if best >= 0 {
		f.pass[best] += f.stride[best]
	}
	return best
}

// SharedSource is one job source competing for the slots of a Shared
// dispatch loop. The loop calls Next and Done from a single goroutine;
// only Run executes concurrently.
type SharedSource[J, R any] struct {
	// Weight scales the source's share of slot grants (≤ 0 means 1).
	Weight float64
	// Max caps the source's own in-flight jobs; 0 means no cap beyond
	// the shared slot count. A session whose cluster can only host k
	// concurrent trials sets Max=k so the fleet never oversubscribes it.
	Max int
	// Next returns the source's next job; ok=false means the source is
	// exhausted and will not be asked again. The loop forwards its own
	// ctx so proposal work observes cancellation without the source
	// having to capture a context.
	Next func(ctx context.Context) (job J, ok bool)
	// Run evaluates one job; one goroutine per in-flight job.
	Run func(context.Context, J) R
	// Done is called serially, in completion order across all sources;
	// returning false stops the loop from issuing further jobs to this
	// source (in-flight ones still complete and are reported).
	Done func(J, R) bool
	// Drained, when non-nil, is called exactly once — serially, from the
	// loop goroutine — when the source will produce no further
	// completions: it stopped issuing (exhausted, Done returned false,
	// or the context was cancelled) and its last in-flight job has been
	// reported. Every source's Drained has fired by the time Shared
	// returns.
	Drained func()
}

// Shared runs several job sources over one shared pool of slots: at
// most `slots` jobs are in flight across all sources at any instant,
// and each freed slot is granted to the eligible source chosen by a
// weighted-fair-share FairShare allocator. Completions are processed
// strictly one at a time on the caller's goroutine, so given the same
// completion order the sequence of Next/Done/Drained calls is
// deterministic.
//
// The loop returns when every source has drained — all are exhausted
// (or stopped) and nothing is in flight. On cancellation it stops
// issuing but keeps collecting (and reporting via Done) every in-flight
// result already paid for, then returns ctx.Err().
func Shared[J, R any](ctx context.Context, slots int, sources []SharedSource[J, R]) error {
	if slots < 1 {
		slots = 1
	}
	n := len(sources)
	weights := make([]float64, n)
	for i := range sources {
		weights[i] = sources[i].Weight
	}
	share := NewFairShare(weights)
	type completion struct {
		src int
		job J
		res R
	}
	ch := make(chan completion)
	inflight := make([]int, n)
	total := 0
	alive := make([]bool, n)
	drained := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// drain marks a source as producing no further completions and fires
	// its hook; safe to call repeatedly.
	drain := func(i int) {
		if drained[i] {
			return
		}
		drained[i] = true
		if sources[i].Drained != nil {
			sources[i].Drained()
		}
	}
	stop := func() {
		for i := range alive {
			alive[i] = false
			if inflight[i] == 0 {
				drain(i)
			}
		}
	}
	eligible := make([]bool, n)
	// fill grants free slots until none are left or no source is
	// eligible. Next and the grant bookkeeping run on this goroutine.
	fill := func() {
		for total < slots {
			for i := range eligible {
				eligible[i] = alive[i] && (sources[i].Max <= 0 || inflight[i] < sources[i].Max)
			}
			i := share.Pick(eligible)
			if i < 0 {
				return
			}
			job, ok := sources[i].Next(ctx)
			if !ok {
				alive[i] = false
				if inflight[i] == 0 {
					drain(i)
				}
				continue
			}
			inflight[i]++
			total++
			go func(i int, job J) {
				ch <- completion{src: i, job: job, res: sources[i].Run(ctx, job)}
			}(i, job)
		}
	}
	if ctx.Err() != nil {
		stop()
		return ctx.Err()
	}
	fill()
	for total > 0 {
		c := <-ch
		inflight[c.src]--
		total--
		if !sources[c.src].Done(c.job, c.res) {
			alive[c.src] = false
		}
		if ctx.Err() != nil {
			stop()
		}
		if !alive[c.src] && inflight[c.src] == 0 {
			drain(c.src)
		}
		fill()
	}
	stop() // sources never granted a slot still owe their Drained
	return ctx.Err()
}
