package scheduler

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// trackPeak records the global and per-source peak concurrency of a
// Shared run.
type trackPeak struct {
	inflight atomic.Int32
	peak     atomic.Int32
}

func (p *trackPeak) enter() {
	cur := p.inflight.Add(1)
	for {
		prev := p.peak.Load()
		if cur <= prev || p.peak.CompareAndSwap(prev, cur) {
			return
		}
	}
}

func (p *trackPeak) leave() { p.inflight.Add(-1) }

// counterSource builds a SharedSource that issues `jobs` integer jobs
// and counts completions.
func counterSource(jobs int, peak *trackPeak, grants *[]int, idx int,
	completed *atomic.Int32, weight float64, max int) SharedSource[int, int] {
	issued := 0
	return SharedSource[int, int]{
		Weight: weight,
		Max:    max,
		Next: func(context.Context) (int, bool) {
			if issued >= jobs {
				return 0, false
			}
			issued++
			if grants != nil {
				*grants = append(*grants, idx)
			}
			return issued, true
		},
		Run: func(_ context.Context, j int) int {
			peak.enter()
			time.Sleep(time.Duration(50+j%3*50) * time.Microsecond)
			peak.leave()
			return j
		},
		Done: func(_, _ int) bool { completed.Add(1); return true },
	}
}

// TestSharedNeverExceedsSlots is the fleet capacity invariant: however
// many sessions compete, the total number of in-flight jobs never
// exceeds the shared slot count, and every job still completes.
func TestSharedNeverExceedsSlots(t *testing.T) {
	const slots = 3
	var peak trackPeak
	var completed atomic.Int32
	sources := make([]SharedSource[int, int], 5)
	for i := range sources {
		sources[i] = counterSource(8, &peak, nil, i, &completed, 1, 0)
	}
	if err := Shared(context.Background(), slots, sources); err != nil {
		t.Fatal(err)
	}
	if got := completed.Load(); got != 40 {
		t.Fatalf("completed %d jobs, want 40", got)
	}
	if p := peak.peak.Load(); p > slots {
		t.Fatalf("peak in-flight %d exceeds %d shared slots", p, slots)
	}
}

// TestSharedHonorsPerSourceMax pins the per-session cap: a source with
// Max=1 never has two jobs in flight even when the fleet has idle
// slots.
func TestSharedHonorsPerSourceMax(t *testing.T) {
	var peaks [2]trackPeak
	var completed atomic.Int32
	mk := func(i, max int) SharedSource[int, int] {
		issued := 0
		return SharedSource[int, int]{
			Max: max,
			Next: func(context.Context) (int, bool) {
				if issued >= 10 {
					return 0, false
				}
				issued++
				return issued, true
			},
			Run: func(_ context.Context, j int) int {
				peaks[i].enter()
				time.Sleep(100 * time.Microsecond)
				peaks[i].leave()
				return j
			},
			Done: func(_, _ int) bool { completed.Add(1); return true },
		}
	}
	sources := []SharedSource[int, int]{mk(0, 1), mk(1, 0)}
	if err := Shared(context.Background(), 4, sources); err != nil {
		t.Fatal(err)
	}
	if got := completed.Load(); got != 20 {
		t.Fatalf("completed %d jobs, want 20", got)
	}
	if p := peaks[0].peak.Load(); p > 1 {
		t.Fatalf("capped source peaked at %d in-flight, want ≤ 1", p)
	}
}

// TestSharedReleasesSlotsAcrossSources checks that sessions finishing
// at different times release their slots to the survivors: once the
// short source drains, the long one gets the whole pool.
func TestSharedReleasesSlotsAcrossSources(t *testing.T) {
	const slots = 4
	var longPeakAfter atomic.Int32 // peak in-flight of the long source after the short one drained
	var shortDone atomic.Bool
	var longInflight atomic.Int32
	var completed atomic.Int32

	shortIssued, longIssued := 0, 0
	short := SharedSource[int, int]{
		Next: func(context.Context) (int, bool) {
			if shortIssued >= 2 {
				return 0, false
			}
			shortIssued++
			return shortIssued, true
		},
		Run: func(_ context.Context, j int) int {
			time.Sleep(200 * time.Microsecond)
			return j
		},
		Done:    func(_, _ int) bool { completed.Add(1); return true },
		Drained: func() { shortDone.Store(true) },
	}
	long := SharedSource[int, int]{
		Next: func(context.Context) (int, bool) {
			if longIssued >= 60 {
				return 0, false
			}
			longIssued++
			return longIssued, true
		},
		Run: func(_ context.Context, j int) int {
			cur := longInflight.Add(1)
			if shortDone.Load() {
				for {
					prev := longPeakAfter.Load()
					if cur <= prev || longPeakAfter.CompareAndSwap(prev, cur) {
						break
					}
				}
			}
			time.Sleep(300 * time.Microsecond)
			longInflight.Add(-1)
			return j
		},
		Done: func(_, _ int) bool { completed.Add(1); return true },
	}
	if err := Shared(context.Background(), slots, []SharedSource[int, int]{short, long}); err != nil {
		t.Fatal(err)
	}
	if got := completed.Load(); got != 62 {
		t.Fatalf("completed %d jobs, want 62", got)
	}
	if !shortDone.Load() {
		t.Fatal("short source never reported drained")
	}
	if p := longPeakAfter.Load(); p < slots {
		t.Fatalf("after the short source drained, the long source peaked at %d in-flight, want the full %d slots", p, slots)
	}
}

// TestSharedWeightedShareAndNoStarvation drives two sources with a 1:9
// weight ratio through a slot-at-a-time loop and checks both
// properties of stride scheduling at once: grants split roughly by
// weight, and the light source is never starved — its grants are
// spread through the sequence, not bunched at the end.
func TestSharedWeightedShareAndNoStarvation(t *testing.T) {
	var grants []int
	var peak trackPeak
	var completed atomic.Int32
	sources := []SharedSource[int, int]{
		counterSource(200, &peak, &grants, 0, &completed, 1, 0),
		counterSource(200, &peak, &grants, 1, &completed, 9, 0),
	}
	// One slot makes the grant sequence exactly the scheduler's choice
	// order (completions can't reorder it).
	if err := Shared(context.Background(), 1, sources); err != nil {
		t.Fatal(err)
	}
	// While both sources still have jobs (first 220 grants: neither can
	// be exhausted yet at a 1:9 split), the split should be ~1:9.
	window := grants[:220]
	count := [2]int{}
	firstLight := -1
	lastGapStart := 0
	maxGap := 0
	for i, s := range window {
		count[s]++
		if s == 0 {
			if firstLight < 0 {
				firstLight = i
			}
			if gap := i - lastGapStart; gap > maxGap {
				maxGap = gap
			}
			lastGapStart = i
		}
	}
	if count[0] == 0 {
		t.Fatal("light source starved: no grants in the first 220")
	}
	ratio := float64(count[1]) / float64(count[0])
	if ratio < 6 || ratio > 12 {
		t.Fatalf("grant split %d:%d (ratio %.1f), want roughly 1:9", count[0], count[1], ratio)
	}
	// No starvation: the light source appears at least every ~2×(9+1)
	// grants, never pushed arbitrarily far out.
	if maxGap > 25 {
		t.Fatalf("light source went %d grants without a slot; stride scheduling should bound the gap near 10", maxGap)
	}
}

// TestSharedEqualWeightsAlternate pins plain fair share: with equal
// weights and one slot, grants alternate between the sources.
func TestSharedEqualWeightsAlternate(t *testing.T) {
	var grants []int
	var peak trackPeak
	var completed atomic.Int32
	sources := []SharedSource[int, int]{
		counterSource(10, &peak, &grants, 0, &completed, 0, 0), // weight ≤0 means 1
		counterSource(10, &peak, &grants, 1, &completed, 1, 0),
	}
	if err := Shared(context.Background(), 1, sources); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < 20; i += 2 {
		if grants[i] == grants[i+1] {
			t.Fatalf("grants %v: equal-weight sources should alternate", grants)
		}
	}
}

// TestSharedCancellationCollectsInFlight mirrors Loop's contract: on
// cancellation the loop stops issuing but reports every in-flight
// result, and every source's Drained still fires exactly once.
func TestSharedCancellationCollectsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var reported atomic.Int32
	var drained [3]atomic.Int32
	started := make(chan struct{}, 16)
	sources := make([]SharedSource[int, int], 3)
	for i := range sources {
		i := i
		issued := 0
		sources[i] = SharedSource[int, int]{
			Next: func(context.Context) (int, bool) {
				if issued >= 100 {
					return 0, false
				}
				issued++
				return issued, true
			},
			Run: func(ctx context.Context, j int) int {
				started <- struct{}{}
				<-ctx.Done()
				return j
			},
			Done:    func(_, _ int) bool { reported.Add(1); return true },
			Drained: func() { drained[i].Add(1) },
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- Shared(ctx, 3, sources) }()
	for i := 0; i < 3; i++ {
		<-started
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Shared returned %v, want context.Canceled", err)
	}
	if got := reported.Load(); got != 3 {
		t.Fatalf("reported %d in-flight results after cancel, want 3", got)
	}
	for i := range drained {
		if got := drained[i].Load(); got != 1 {
			t.Fatalf("source %d Drained fired %d times, want exactly 1", i, got)
		}
	}
}

// TestSharedDoneFalseStopsOneSource checks that Done returning false
// stops only that source; the others run to completion.
func TestSharedDoneFalseStopsOneSource(t *testing.T) {
	var aCompleted, bCompleted atomic.Int32
	var aDrained atomic.Bool
	aIssued, bIssued := 0, 0
	a := SharedSource[int, int]{
		Next: func(context.Context) (int, bool) {
			if aIssued >= 50 {
				return 0, false
			}
			aIssued++
			return aIssued, true
		},
		Run:  func(_ context.Context, j int) int { return j },
		Done: func(j, _ int) bool { aCompleted.Add(1); return j < 3 }, // stop after the 3rd completion
		Drained: func() {
			aDrained.Store(true)
		},
	}
	b := SharedSource[int, int]{
		Next: func(context.Context) (int, bool) {
			if bIssued >= 20 {
				return 0, false
			}
			bIssued++
			return bIssued, true
		},
		Run:  func(_ context.Context, j int) int { return j },
		Done: func(_, _ int) bool { bCompleted.Add(1); return true },
	}
	if err := Shared(context.Background(), 2, []SharedSource[int, int]{a, b}); err != nil {
		t.Fatal(err)
	}
	if got := bCompleted.Load(); got != 20 {
		t.Fatalf("surviving source completed %d jobs, want all 20", got)
	}
	if !aDrained.Load() {
		t.Fatal("stopped source never drained")
	}
	// The stopped source completed its third job (and possibly jobs
	// already in flight when it stopped), but nowhere near all 50.
	if got := aCompleted.Load(); got < 3 || got > 5 {
		t.Fatalf("stopped source completed %d jobs, want 3..5", got)
	}
}

// TestSharedRaceHammer drives many weighted sources with jittered job
// durations under -race: the invariants are total completions, the
// shared-slot cap, per-source caps, and exactly-once Drained.
func TestSharedRaceHammer(t *testing.T) {
	const nSources, jobs, slots = 8, 30, 5
	rng := rand.New(rand.NewSource(7))
	durations := make([][]time.Duration, nSources)
	for i := range durations {
		durations[i] = make([]time.Duration, jobs)
		for j := range durations[i] {
			durations[i][j] = time.Duration(rng.Intn(300)) * time.Microsecond
		}
	}
	var peak trackPeak
	perPeak := make([]trackPeak, nSources)
	var completed atomic.Int32
	var drainMu sync.Mutex
	drains := make(map[int]int)
	sources := make([]SharedSource[int, int], nSources)
	for i := range sources {
		i := i
		issued := 0
		max := 0
		if i%2 == 0 {
			max = 2
		}
		sources[i] = SharedSource[int, int]{
			Weight: float64(1 + i%3),
			Max:    max,
			Next: func(context.Context) (int, bool) {
				if issued >= jobs {
					return 0, false
				}
				issued++
				return issued, true
			},
			Run: func(_ context.Context, j int) int {
				peak.enter()
				perPeak[i].enter()
				time.Sleep(durations[i][j-1])
				perPeak[i].leave()
				peak.leave()
				return j
			},
			Done: func(_, _ int) bool { completed.Add(1); return true },
			Drained: func() {
				drainMu.Lock()
				drains[i]++
				drainMu.Unlock()
			},
		}
	}
	if err := Shared(context.Background(), slots, sources); err != nil {
		t.Fatal(err)
	}
	if got := completed.Load(); got != nSources*jobs {
		t.Fatalf("completed %d jobs, want %d", got, nSources*jobs)
	}
	if p := peak.peak.Load(); p > slots {
		t.Fatalf("peak in-flight %d exceeds %d shared slots", p, slots)
	}
	for i := range perPeak {
		if i%2 == 0 {
			if p := perPeak[i].peak.Load(); p > 2 {
				t.Fatalf("source %d peaked at %d in-flight, capped at 2", i, p)
			}
		}
	}
	for i := 0; i < nSources; i++ {
		if drains[i] != 1 {
			t.Fatalf("source %d Drained fired %d times, want exactly 1", i, drains[i])
		}
	}
}

// TestFairSharePickDeterministic pins the allocator itself: picks are
// deterministic, proportional to weight, and skip ineligible sources
// without advancing their pass.
func TestFairSharePickDeterministic(t *testing.T) {
	f := NewFairShare([]float64{1, 3})
	eligible := []bool{true, true}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, f.Pick(eligible))
	}
	count := [2]int{}
	for _, g := range got {
		count[g]++
	}
	if count[0] != 2 || count[1] != 6 {
		t.Fatalf("grants %v: want a 2:6 split for weights 1:3", got)
	}
	// Same weights, same sequence.
	f2 := NewFairShare([]float64{1, 3})
	for i, want := range got {
		if g := f2.Pick(eligible); g != want {
			t.Fatalf("pick %d: %d, want %d (allocator must be deterministic)", i, g, want)
		}
	}
	// An ineligible source is skipped and not penalized: once eligible
	// again it picks up where its pass left off.
	f3 := NewFairShare([]float64{1, 1})
	first := f3.Pick([]bool{true, true})
	other := 1 - first
	for i := 0; i < 5; i++ {
		if g := f3.Pick([]bool{first == 0, first == 1}); g != first {
			t.Fatalf("only eligible source is %d, picked %d", first, g)
		}
	}
	if g := f3.Pick([]bool{true, true}); g != other {
		t.Fatalf("re-eligible source should win immediately, picked %d", g)
	}
	if g := f3.Pick([]bool{false, false}); g != -1 {
		t.Fatalf("no eligible source: want -1, got %d", g)
	}
}
