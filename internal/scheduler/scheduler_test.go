package scheduler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoopRunsEveryJobOnce feeds a fixed job list through the loop and
// checks each job completes exactly once, with at most `slots` in
// flight.
func TestLoopRunsEveryJobOnce(t *testing.T) {
	const n, slots = 20, 3
	issued := 0
	next := func(_ context.Context, free int) []int {
		var out []int
		for free > 0 && issued < n {
			issued++
			out = append(out, issued)
			free--
		}
		return out
	}
	var inflight, peak atomic.Int32
	run := func(_ context.Context, j int) int {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return j * 2
	}
	done := map[int]int{}
	report := func(j, r int) bool {
		done[j] = r
		return true
	}
	if err := Loop(context.Background(), slots, next, run, report); err != nil {
		t.Fatal(err)
	}
	if len(done) != n {
		t.Fatalf("completed %d jobs, want %d", len(done), n)
	}
	for j, r := range done {
		if r != j*2 {
			t.Fatalf("job %d result %d", j, r)
		}
	}
	if p := peak.Load(); p > slots {
		t.Fatalf("peak in-flight %d exceeds %d slots", p, slots)
	}
}

// TestLoopRefillsFreedSlot checks the free-slot-refill property: with
// one slow job and several fast ones, the fast slot turns over multiple
// jobs while the slow one is still running.
func TestLoopRefillsFreedSlot(t *testing.T) {
	durations := []time.Duration{50 * time.Millisecond, 1, 1, 1, 1, 1}
	issued := 0
	next := func(_ context.Context, free int) []int {
		var out []int
		for free > 0 && issued < len(durations) {
			out = append(out, issued)
			issued++
			free--
		}
		return out
	}
	var order []int
	start := time.Now()
	err := Loop(context.Background(), 2, next,
		func(_ context.Context, j int) struct{} {
			time.Sleep(durations[j])
			return struct{}{}
		},
		func(j int, _ struct{}) bool {
			order = append(order, j)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(durations) {
		t.Fatalf("completed %d, want %d", len(order), len(durations))
	}
	// A barrier over batches of 2 would need 3 rounds each gated on the
	// 50 ms job's round; free-slot refill finishes all fast jobs during
	// the one slow job.
	if wall := time.Since(start); wall > 150*time.Millisecond {
		t.Fatalf("loop took %v, refill is not overlapping work", wall)
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("slow job should complete last, order %v", order)
	}
}

// TestLoopStopsWhenDoneSaysSo checks that done=false stops issuing but
// still drains in-flight jobs.
func TestLoopStopsWhenDoneSaysSo(t *testing.T) {
	issued := 0
	next := func(_ context.Context, free int) []int {
		var out []int
		for ; free > 0; free-- {
			issued++
			out = append(out, issued)
		}
		return out
	}
	completions := 0
	err := Loop(context.Background(), 4, next,
		func(_ context.Context, j int) int { return j },
		func(int, int) bool {
			completions++
			return false
		})
	if err != nil {
		t.Fatal(err)
	}
	if completions != 4 {
		t.Fatalf("expected the initial 4 in-flight jobs to drain, got %d completions", completions)
	}
	if issued != 4 {
		t.Fatalf("no refill should happen after stop, issued %d", issued)
	}
}

// TestLoopHonorsCancellation checks that cancelling the context stops
// refills, drains in-flight work, and surfaces ctx.Err().
func TestLoopHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	issued := 0
	next := func(_ context.Context, free int) []int {
		var out []int
		for ; free > 0; free-- {
			issued++
			out = append(out, issued)
		}
		return out
	}
	completions := 0
	err := Loop(ctx, 2, next,
		func(_ context.Context, j int) int {
			time.Sleep(2 * time.Millisecond)
			return j
		},
		func(int, int) bool {
			completions++
			if completions == 3 {
				cancel()
			}
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After cancel at the 3rd completion, only already-launched jobs may
	// complete: at most 3 + 2 slots.
	if completions > 5 {
		t.Fatalf("%d completions after cancellation", completions)
	}
	if issued > completions+2 {
		t.Fatalf("issued %d, completed %d: loop kept refilling after cancel", issued, completions)
	}
}

// TestLoopPreCancelled checks a cancelled context runs nothing.
func TestLoopPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Loop(ctx, 2,
		func(context.Context, int) []int { ran = true; return []int{1} },
		func(_ context.Context, j int) int { ran = true; return j },
		func(int, int) bool { ran = true; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("pre-cancelled loop must not issue work")
	}
}
