package ggen

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateBasicInvariants(t *testing.T) {
	d := Generate(Params{V: 30, L: 5, P: 0.2, Seed: 1})
	if d.V != 30 || d.L != 5 {
		t.Fatalf("dims wrong: %d %d", d.V, d.L)
	}
	// Edges only go to strictly higher layers (acyclicity by construction).
	for u, adj := range d.Adj {
		for _, v := range adj {
			if d.Layer[u] >= d.Layer[v] {
				t.Fatalf("edge %d->%d does not go downstream (layers %d, %d)",
					u, v, d.Layer[u], d.Layer[v])
			}
		}
	}
	// In/Adj are mirrors.
	for u, adj := range d.Adj {
		for _, v := range adj {
			found := false
			for _, w := range d.In[v] {
				if w == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from In", u, v)
			}
		}
	}
}

func TestEveryLayerNonEmpty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		d := Generate(Params{V: 12, L: 6, P: 0.3, Seed: seed})
		seen := make([]bool, d.L)
		for _, l := range d.Layer {
			seen[l] = true
		}
		for l, ok := range seen {
			if !ok {
				t.Fatalf("seed %d: layer %d empty", seed, l)
			}
		}
	}
}

func TestNoIsolatedVertices(t *testing.T) {
	// Constraint (1) of §IV-B: all vertices connected to ≥1 other.
	for seed := int64(1); seed <= 30; seed++ {
		d := Generate(Params{V: 40, L: 8, P: 0.02, Seed: seed}) // sparse: repair must kick in
		for v := 0; v < d.V; v++ {
			if len(d.Adj[v])+len(d.In[v]) == 0 {
				t.Fatalf("seed %d: vertex %d isolated", seed, v)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Params{V: 25, L: 4, P: 0.3, Seed: 7})
	b := Generate(Params{V: 25, L: 4, P: 0.3, Seed: 7})
	if a.Edges() != b.Edges() {
		t.Fatalf("same seed, different graphs: %d vs %d edges", a.Edges(), b.Edges())
	}
	for v := 0; v < a.V; v++ {
		if len(a.Adj[v]) != len(b.Adj[v]) {
			t.Fatalf("same seed, different adjacency at %d", v)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	d := Generate(Params{V: 30, L: 5, P: 0.25, Seed: 3})
	pos := make([]int, d.V)
	for i, v := range d.TopoOrder() {
		pos[v] = i
	}
	for u, adj := range d.Adj {
		for _, v := range adj {
			if pos[u] >= pos[v] {
				t.Fatalf("topo order violates edge %d->%d", u, v)
			}
		}
	}
}

func TestSourcesAndSinks(t *testing.T) {
	d := Generate(Params{V: 20, L: 4, P: 0.3, Seed: 5})
	for _, s := range d.Sources() {
		if len(d.In[s]) != 0 {
			t.Fatalf("source %d has parents", s)
		}
	}
	for _, s := range d.Sinks() {
		if len(d.Adj[s]) != 0 {
			t.Fatalf("sink %d has children", s)
		}
	}
	if len(d.Sources()) == 0 || len(d.Sinks()) == 0 {
		t.Fatal("layered DAG must have sources and sinks")
	}
}

func TestStatsConsistency(t *testing.T) {
	d := Generate(Params{V: 50, L: 5, P: 0.08, Seed: 2})
	s := d.ComputeStats()
	if s.E != d.Edges() || s.Src != len(d.Sources()) || s.Snk != len(d.Sinks()) {
		t.Fatalf("stats inconsistent: %+v", s)
	}
	if s.AvgOutDeg != float64(s.E)/float64(s.V) {
		t.Fatalf("AOD inconsistent")
	}
}

func TestGenerateMatchingTableII(t *testing.T) {
	for name, want := range TableIITargets {
		d := GenerateMatching(name, 500)
		got := d.ComputeStats()
		if got.V != want.V || got.L != want.L {
			t.Fatalf("%s: V/L mismatch: %+v", name, got)
		}
		if relErr(got.E, want.E) > 0.15 {
			t.Fatalf("%s: edge count %d too far from published %d", name, got.E, want.E)
		}
		if relErr(got.Src, want.Src) > 0.4 || relErr(got.Snk, want.Snk) > 0.4 {
			t.Fatalf("%s: src/snk (%d/%d) too far from published (%d/%d)",
				name, got.Src, got.Snk, want.Src, want.Snk)
		}
	}
}

func TestGenerateMatchingUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown name")
		}
	}()
	GenerateMatching("gigantic", 10)
}

func TestGeneratePanicsOnBadParams(t *testing.T) {
	for _, p := range []Params{
		{V: 5, L: 1, P: 0.5},
		{V: 3, L: 5, P: 0.5},
		{V: 10, L: 3, P: 0},
		{V: 10, L: 3, P: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %+v should panic", p)
				}
			}()
			Generate(p)
		}()
	}
}

func TestDOTOutput(t *testing.T) {
	d := Generate(Params{V: 6, L: 3, P: 0.5, Seed: 1})
	dot := d.DOT("test")
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Fatalf("DOT output malformed:\n%s", dot)
	}
}

// Property: generated DAGs are always acyclic and connected-per-vertex
// for arbitrary valid parameters.
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seed int64, vRaw, lRaw uint8, pRaw float64) bool {
		l := 2 + int(lRaw)%8
		v := l + int(vRaw)%60
		p := 0.02 + 0.9*frac(pRaw)
		d := Generate(Params{V: v, L: l, P: p, Seed: seed})
		for u, adj := range d.Adj {
			for _, w := range adj {
				if d.Layer[u] >= d.Layer[w] {
					return false
				}
			}
		}
		for x := 0; x < d.V; x++ {
			if len(d.Adj[x])+len(d.In[x]) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	v := math.Abs(math.Mod(x, 1))
	if math.IsNaN(v) || v >= 1 {
		return 0.5
	}
	return v
}
