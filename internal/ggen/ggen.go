// Package ggen reimplements the "layer-by-layer" random task-graph
// generator of GGen (Cordeiro et al., SIMUTools 2010) that the paper
// uses to produce its three synthetic topologies (Table II).
//
// Vertices are assigned to L layers; for every ordered pair of vertices
// in layers i < j an edge is added with probability P. The paper's two
// validity constraints are enforced by a repair pass: (1) every vertex
// is connected to at least one other vertex and (2) the average
// out-degree stays approximately constant across the generated graphs
// (achieved through the published (V, L, P) parameter choices).
package ggen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Params configure layer-by-layer generation.
type Params struct {
	V    int     // number of vertices
	L    int     // number of layers
	P    float64 // probability of connecting to a vertex of a downstream layer
	Seed int64   // RNG seed
}

// DAG is a layered directed acyclic graph.
type DAG struct {
	V     int
	Layer []int   // Layer[v] ∈ [0, L)
	L     int     // number of layers
	Adj   [][]int // Adj[v] = sorted downstream neighbours
	In    [][]int // In[v] = sorted upstream neighbours
}

// Generate builds a layer-by-layer DAG. It panics on invalid
// parameters (V < L, L < 2, P outside (0, 1]).
func Generate(p Params) *DAG {
	if p.L < 2 {
		panic(fmt.Sprintf("ggen: need at least 2 layers, got %d", p.L))
	}
	if p.V < p.L {
		panic(fmt.Sprintf("ggen: V=%d must be at least L=%d", p.V, p.L))
	}
	if p.P <= 0 || p.P > 1 {
		panic(fmt.Sprintf("ggen: P=%v must be in (0,1]", p.P))
	}
	rng := rand.New(rand.NewSource(p.Seed))

	d := &DAG{V: p.V, L: p.L, Layer: make([]int, p.V)}
	// Guarantee every layer is non-empty: first L vertices pin one
	// layer each, the rest are uniform.
	perm := rng.Perm(p.V)
	for i, v := range perm {
		if i < p.L {
			d.Layer[v] = i
		} else {
			d.Layer[v] = rng.Intn(p.L)
		}
	}
	d.Adj = make([][]int, p.V)
	d.In = make([][]int, p.V)
	for u := 0; u < p.V; u++ {
		for v := 0; v < p.V; v++ {
			if d.Layer[u] < d.Layer[v] && rng.Float64() < p.P {
				d.Adj[u] = append(d.Adj[u], v)
				d.In[v] = append(d.In[v], u)
			}
		}
	}
	d.repair(rng)
	for v := 0; v < p.V; v++ {
		sort.Ints(d.Adj[v])
		sort.Ints(d.In[v])
	}
	return d
}

// repair connects isolated vertices (constraint 1 of §IV-B) by linking
// them to a random vertex in an adjacent reachable layer.
func (d *DAG) repair(rng *rand.Rand) {
	for v := 0; v < d.V; v++ {
		if len(d.Adj[v])+len(d.In[v]) > 0 {
			continue
		}
		// Prefer an upstream parent so the vertex stays reachable; top
		// layer vertices get a downstream child instead.
		if d.Layer[v] > 0 {
			u := d.randomInLayerRange(rng, 0, d.Layer[v])
			d.Adj[u] = append(d.Adj[u], v)
			d.In[v] = append(d.In[v], u)
		} else {
			w := d.randomInLayerRange(rng, d.Layer[v]+1, d.L)
			d.Adj[v] = append(d.Adj[v], w)
			d.In[w] = append(d.In[w], v)
		}
	}
}

// randomInLayerRange picks a uniform vertex with layer in [lo, hi).
func (d *DAG) randomInLayerRange(rng *rand.Rand, lo, hi int) int {
	var pool []int
	for v := 0; v < d.V; v++ {
		if d.Layer[v] >= lo && d.Layer[v] < hi {
			pool = append(pool, v)
		}
	}
	return pool[rng.Intn(len(pool))]
}

// Edges returns the edge count.
func (d *DAG) Edges() int {
	e := 0
	for _, a := range d.Adj {
		e += len(a)
	}
	return e
}

// Sources returns vertices with no incoming edges (spouts).
func (d *DAG) Sources() []int {
	var out []int
	for v := 0; v < d.V; v++ {
		if len(d.In[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns vertices with no outgoing edges.
func (d *DAG) Sinks() []int {
	var out []int
	for v := 0; v < d.V; v++ {
		if len(d.Adj[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TopoOrder returns vertices sorted by layer (a valid topological
// order, since edges only go to higher layers).
func (d *DAG) TopoOrder() []int {
	order := make([]int, d.V)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return d.Layer[order[a]] < d.Layer[order[b]] })
	return order
}

// Stats summarizes a DAG with the columns of Table II.
type Stats struct {
	V, E, L   int
	Src, Snk  int
	AvgOutDeg float64
}

// ComputeStats returns Table II statistics for the DAG.
func (d *DAG) ComputeStats() Stats {
	return Stats{
		V:         d.V,
		E:         d.Edges(),
		L:         d.L,
		Src:       len(d.Sources()),
		Snk:       len(d.Sinks()),
		AvgOutDeg: float64(d.Edges()) / float64(d.V),
	}
}

// DOT renders the DAG in Graphviz format.
func (d *DAG) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	for v := 0; v < d.V; v++ {
		fmt.Fprintf(&sb, "  n%d [label=\"%d (L%d)\"];\n", v, v, d.Layer[v])
	}
	for u, adj := range d.Adj {
		for _, v := range adj {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", u, v)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TableIIParams are the published parameters of the paper's three
// synthetic topologies.
var TableIIParams = map[string]Params{
	"small":  {V: 10, L: 4, P: 0.40},
	"medium": {V: 50, L: 5, P: 0.08},
	"large":  {V: 100, L: 10, P: 0.04},
}

// TableIITargets are the published resulting statistics, used to select
// seeds and to validate generated graphs.
var TableIITargets = map[string]Stats{
	"small":  {V: 10, E: 17, L: 4, Src: 3, Snk: 3, AvgOutDeg: 1.70},
	"medium": {V: 50, E: 88, L: 5, Src: 17, Snk: 17, AvgOutDeg: 1.76},
	"large":  {V: 100, E: 170, L: 10, Src: 29, Snk: 27, AvgOutDeg: 1.65},
}

// GenerateMatching searches seeds until a generated graph matches the
// published Table II statistics within tolerance (edge count within
// ~15%, source/sink counts within ±40% rounded) and every vertex is
// connected. It mirrors the paper's own procedure of picking parameter
// settings "that would fulfill these constraints". maxSeeds bounds the
// search; it panics if no seed qualifies (which would indicate a
// generator bug — tested).
func GenerateMatching(name string, maxSeeds int) *DAG {
	p, ok := TableIIParams[name]
	if !ok {
		panic(fmt.Sprintf("ggen: unknown topology %q", name))
	}
	target := TableIITargets[name]
	bestScore := -1.0
	var best *DAG
	for seed := int64(1); seed <= int64(maxSeeds); seed++ {
		p.Seed = seed
		d := Generate(p)
		s := d.ComputeStats()
		score := matchScore(s, target)
		if score > bestScore {
			bestScore = score
			best = d
		}
		if withinTol(s, target) {
			return d
		}
	}
	if best == nil {
		panic("ggen: no graph generated")
	}
	return best
}

func matchScore(s, t Stats) float64 {
	return -(relErr(s.E, t.E) + relErr(s.Src, t.Src) + relErr(s.Snk, t.Snk))
}

func relErr(a, b int) float64 {
	if b == 0 {
		return float64(a)
	}
	d := float64(a-b) / float64(b)
	if d < 0 {
		d = -d
	}
	return d
}

func withinTol(s, t Stats) bool {
	return relErr(s.E, t.E) <= 0.15 && relErr(s.Src, t.Src) <= 0.4 && relErr(s.Snk, t.Snk) <= 0.4
}
