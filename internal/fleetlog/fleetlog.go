// Package fleetlog persists a fleet's tuning progress to one
// append-only JSONL file so a killed `stormtune fleet` run can resume
// every member bit-identically.
//
// The log interleaves two record kinds, each tagged with the member it
// belongs to:
//
//   - "event": one recorder event (an opaque JSON payload plus its
//     recorder sequence number) — the audit trail of what happened.
//   - "snapshot": a member's full session state (opaque JSON) covering
//     every event up to Seq. The last durable snapshot per member is
//     what resume restores from.
//
// Durability follows the archive package's idiom: appends are buffered,
// a snapshot flushes and fsyncs (a snapshot that cannot be trusted is
// worthless), and Open truncates a torn tail — a partial last line from
// a crash mid-write — back to the last intact record. Losing buffered
// events after the final fsync is harmless: resume falls back to the
// last durable snapshot and the session re-proposes the same trials
// deterministically.
//
// The payloads are opaque to this package (json.RawMessage): the public
// layer stores marshaled TunerState snapshots and core.RecordedEvent
// events without this package importing either.
package fleetlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Record kinds.
const (
	// KindEvent is one recorder event of a member.
	KindEvent = "event"
	// KindSnapshot is a member's full session state.
	KindSnapshot = "snapshot"
)

// Record is one JSONL line of the log.
type Record struct {
	// Kind is KindEvent or KindSnapshot.
	Kind string `json:"kind"`
	// Member names the fleet member the record belongs to.
	Member string `json:"member"`
	// Seq is the recorder sequence number: the event's own for
	// KindEvent, the last sequence the state covers for KindSnapshot.
	Seq int64 `json:"seq,omitempty"`
	// Event is the opaque event payload (KindEvent).
	Event json.RawMessage `json:"event,omitempty"`
	// State is the opaque session-state payload (KindSnapshot).
	State json.RawMessage `json:"state,omitempty"`
}

// MemberState is what the log knows about one member after recovery or
// during a live run.
type MemberState struct {
	// State is the member's last durable snapshot payload; nil when the
	// log holds only events for it.
	State json.RawMessage
	// Seq is the recorder sequence number the snapshot covers.
	Seq int64
	// Events counts the member's event records seen (diagnostics).
	Events int64
}

// Log is an append-only fleet progress log backed by one JSONL file.
// All methods are safe for concurrent use — each member's observer
// appends from its own session's callback goroutine.
type Log struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	states map[string]*MemberState
	closed bool
}

// Create starts a fresh log at path, truncating any previous one — the
// non-resume fleet run's entry point.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: create %s: %w", path, err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriter(f), states: make(map[string]*MemberState)}, nil
}

// Open recovers an existing log for resumption: it scans every record,
// keeps the last snapshot per member, truncates a torn tail back to the
// last intact line, and reopens the file for appending — the resumed
// run continues the same log.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: open %s: %w", path, err)
	}
	l := &Log{path: path, f: f, w: bufio.NewWriter(f), states: make(map[string]*MemberState)}
	good, err := l.recover()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleetlog: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleetlog: seeking %s: %w", path, err)
	}
	return l, nil
}

// recover scans the file, folding intact records into the member map,
// and returns the offset just past the last intact line.
func (l *Log) recover() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("fleetlog: seeking %s: %w", l.path, err)
	}
	r := bufio.NewReader(l.f)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final line without its newline is a torn tail even when it
			// parses — the writer always terminates records.
			return good, nil
		}
		if err != nil {
			return 0, fmt.Errorf("fleetlog: reading %s: %w", l.path, err)
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Member == "" {
			// Torn or foreign line: everything from here on is untrusted.
			return good, nil
		}
		l.fold(rec)
		good += int64(len(line))
	}
}

// fold applies one intact record to the member map.
func (l *Log) fold(rec Record) {
	ms, ok := l.states[rec.Member]
	if !ok {
		ms = &MemberState{}
		l.states[rec.Member] = ms
	}
	switch rec.Kind {
	case KindEvent:
		ms.Events++
	case KindSnapshot:
		ms.State = rec.State
		ms.Seq = rec.Seq
	}
}

// append writes one record as a single compacted JSONL line.
func (l *Log) append(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleetlog: encoding record: %w", err)
	}
	// Compact defensively: an embedded RawMessage payload with raw
	// newlines would break the one-record-per-line invariant recovery
	// depends on.
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return fmt.Errorf("fleetlog: compacting record: %w", err)
	}
	buf.WriteByte('\n')
	if _, err := l.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("fleetlog: appending to %s: %w", l.path, err)
	}
	l.fold(rec)
	return nil
}

// AppendEvent appends one member event (buffered; durable at the next
// snapshot or Close).
func (l *Log) AppendEvent(member string, seq int64, event json.RawMessage) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("fleetlog: %s is closed", l.path)
	}
	return l.append(Record{Kind: KindEvent, Member: member, Seq: seq, Event: event})
}

// Snapshot appends a member's session state covering events up to seq,
// then flushes and fsyncs: once Snapshot returns, a crash cannot lose
// the member's progress past this point.
func (l *Log) Snapshot(member string, seq int64, state json.RawMessage) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("fleetlog: %s is closed", l.path)
	}
	if err := l.append(Record{Kind: KindSnapshot, Member: member, Seq: seq, State: state}); err != nil {
		return err
	}
	return l.sync()
}

// sync flushes the buffer and fsyncs the file. Callers hold l.mu.
func (l *Log) sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("fleetlog: flushing %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("fleetlog: syncing %s: %w", l.path, err)
	}
	return nil
}

// MemberState returns what the log knows about a member. The snapshot
// payload is shared, not copied — treat it as read-only.
func (l *Log) MemberState(member string) (MemberState, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ms, ok := l.states[member]
	if !ok {
		return MemberState{}, false
	}
	return *ms, true
}

// Members lists every member the log has records for, sorted.
func (l *Log) Members() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.states))
	for name := range l.states {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close flushes, fsyncs and closes the file. The log cannot be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
