package fleetlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func writeSome(t *testing.T, l *Log) {
	t.Helper()
	mustAppend(t, l.AppendEvent("alpha", 1, json.RawMessage(`{"e":1}`)))
	mustAppend(t, l.AppendEvent("alpha", 2, json.RawMessage(`{"e":2}`)))
	mustAppend(t, l.Snapshot("alpha", 2, json.RawMessage(`{"state":"a2"}`)))
	mustAppend(t, l.AppendEvent("beta", 1, json.RawMessage(`{"e":1}`)))
	mustAppend(t, l.Snapshot("beta", 1, json.RawMessage(`{"state":"b1"}`)))
	mustAppend(t, l.Snapshot("alpha", 5, json.RawMessage(`{"state":"a5"}`)))
}

func TestRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	writeSome(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Members(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Members = %v", got)
	}
	a, ok := r.MemberState("alpha")
	if !ok || a.Seq != 5 || string(a.State) != `{"state":"a5"}` || a.Events != 2 {
		t.Fatalf("alpha = %+v (ok=%v), want seq 5, last snapshot, 2 events", a, ok)
	}
	b, _ := r.MemberState("beta")
	if b.Seq != 1 || string(b.State) != `{"state":"b1"}` {
		t.Fatalf("beta = %+v", b)
	}
	// The reopened log keeps appending: a later snapshot wins.
	mustAppend(t, r.Snapshot("beta", 3, json.RawMessage(`{"state":"b3"}`)))
	b, _ = r.MemberState("beta")
	if b.Seq != 3 {
		t.Fatalf("beta after append = %+v", b)
	}
}

// TestOpenTruncatesTornTail: a crash mid-append leaves a partial final
// line; Open must fold everything before it and truncate the file back
// to the last intact record.
func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	writeSome(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: half a record, no newline.
	torn := append(append([]byte{}, intact...), []byte(`{"kind":"snapshot","member":"alpha","seq":9,"st`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.MemberState("alpha")
	if a.Seq != 5 {
		t.Fatalf("alpha seq = %d, want 5 (torn record must not count)", a.Seq)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(intact) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(intact))
	}
}

// TestOpenDropsNewlineLessFinalLine: a final line that parses as JSON
// but lacks its terminating newline is still a torn tail — the writer
// always terminates records, so the line may be a prefix of a longer
// payload that happens to parse.
func TestOpenDropsNewlineLessFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l.Snapshot("alpha", 1, json.RawMessage(`{"s":1}`)))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Parses fine, but no trailing newline.
	if _, err := f.WriteString(`{"kind":"snapshot","member":"alpha","seq":7,"state":{"s":7}}`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, _ := r.MemberState("alpha")
	if a.Seq != 1 {
		t.Fatalf("alpha seq = %d, want 1: a newline-less tail must be dropped", a.Seq)
	}
}

// TestOpenStopsAtForeignLine: garbage in the middle of the file (a
// concurrent writer, manual editing) marks everything after it
// untrusted.
func TestOpenStopsAtForeignLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l.Snapshot("alpha", 1, json.RawMessage(`{"s":1}`)))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n" + `{"kind":"snapshot","member":"alpha","seq":9,"state":{"s":9}}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, _ := r.MemberState("alpha")
	if a.Seq != 1 {
		t.Fatalf("alpha seq = %d, want 1: records past a foreign line are untrusted", a.Seq)
	}
}
