// Package a exercises emitnolock: observer dispatch under a held
// mutex is flagged; the unlock-then-emit idiom, early-out branches
// and goroutines are not.
package a

import "sync"

// Event mimics the tuner's event type.
type Event struct{ Name string }

// Observer mimics core.Observer.
type Observer interface{ OnEvent(Event) }

// Session mimics core.Session's locking structure.
type Session struct {
	mu    sync.Mutex
	obsMu sync.Mutex
	obs   Observer
	n     int
}

func (s *Session) emit(e Event) {
	if s.obs == nil {
		return
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	//lint:emitnolock obsMu is the dedicated dispatch-serialization lock, never taken with state held
	s.obs.OnEvent(e)
}

func (s *Session) badDeferred(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.obs.OnEvent(e) // want "OnEvent called while a sync mutex is held"
}

func (s *Session) badPaired(e Event) {
	s.mu.Lock()
	s.emit(e) // want "emit called while a sync mutex is held"
	s.mu.Unlock()
}

func (s *Session) badInBranch(e Event) {
	s.mu.Lock()
	if s.n > 0 {
		s.obs.OnEvent(e) // want "OnEvent called while a sync mutex is held"
	}
	s.mu.Unlock()
}

// badAfterBranchUnlock: one path released the lock, the other did
// not; the pessimistic join still counts the lock as held.
func (s *Session) badAfterBranchUnlock(e Event) {
	s.mu.Lock()
	if s.n > 0 {
		s.mu.Unlock()
	}
	s.emit(e) // want "emit called while a sync mutex is held"
}

func (s *Session) goodUnlockThenEmit(e Event) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.emit(e)
}

// goodEarlyOut mirrors Session.Report: early-out branches unlock and
// return, and the emit happens after the main path's unlock.
func (s *Session) goodEarlyOut(e Event) {
	s.mu.Lock()
	if s.n < 0 {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	s.emit(e)
}

// goodRWLock: read locks count too — but this one is released first.
type Guarded struct {
	rw  sync.RWMutex
	obs Observer
}

func (g *Guarded) goodReadPath(e Event) {
	g.rw.RLock()
	n := 1
	g.rw.RUnlock()
	_ = n
	g.obs.OnEvent(e)
}

func (g *Guarded) badReadPath(e Event) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.obs.OnEvent(e) // want "OnEvent called while a sync mutex is held"
}

// goodGoroutine: the spawned goroutine does not hold the caller's
// lock at dispatch time (it synchronizes on its own).
func (s *Session) goodGoroutine(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.emit(e)
	}()
}

// goodEmbedded exercises promoted methods of an embedded mutex.
type Embedded struct {
	sync.Mutex
	obs Observer
}

func (m *Embedded) badPromoted(e Event) {
	m.Lock()
	defer m.Unlock()
	m.obs.OnEvent(e) // want "OnEvent called while a sync mutex is held"
}

func (m *Embedded) goodPromoted(e Event) {
	m.Lock()
	n := 1
	m.Unlock()
	_ = n
	m.obs.OnEvent(e)
}
