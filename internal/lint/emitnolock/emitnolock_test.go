package emitnolock_test

import (
	"testing"

	"stormtune/internal/lint/emitnolock"
	"stormtune/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", emitnolock.Analyzer)
}
