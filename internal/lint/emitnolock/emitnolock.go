// Package emitnolock enforces the "dispatch outside the state lock"
// contract.
//
// Observer callbacks are arbitrary user code: one that re-enters the
// session (Snapshot from inside OnEvent, a dashboard poll, a fleet
// sibling reacting to NewBest) deadlocks instantly if the event was
// emitted while the state mutex was held. internal/core/session.go
// documents the contract; this analyzer makes it mechanical: no call
// to an event-dispatch method (OnEvent / Emit / emit) may occur while
// a sync.Mutex or sync.RWMutex acquired in the same function is still
// held.
//
// The analysis is a conservative, block-structured approximation: it
// walks each function's statements in order tracking how many locks
// are held, treats `defer mu.Unlock()` as holding until return, and
// merges branches pessimistically (a lock held on any path is treated
// as held after the join). A dispatch that is genuinely safe under a
// dedicated serialization lock — the session's obsMu pattern — is
// allowlisted with //lint:emitnolock <why>.
package emitnolock

import (
	"go/ast"

	"stormtune/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "emitnolock",
	Doc: "forbid observer dispatch (OnEvent/Emit/emit) while a sync mutex " +
		"acquired in the same function is held",
	Run: run,
}

// EmitNames are the dispatch entry points the contract covers.
var EmitNames = map[string]bool{
	"OnEvent": true,
	"Emit":    true,
	"emit":    true,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				w := &walker{pass: pass}
				w.block(fn.Body.List, &lockState{})
			}
		case *ast.FuncLit:
			// Literals are walked as functions in their own right when
			// encountered here; the statement walker does not descend
			// into them, so each body is analyzed exactly once.
			w := &walker{pass: pass}
			w.block(fn.Body.List, &lockState{})
		}
		return true
	})
	return nil
}

// lockState is the walker's approximation of how many mutexes the
// current statement runs under. held counts paired Lock/Unlock
// acquisitions; deferred counts `defer mu.Unlock()` registrations,
// which keep their lock held for the rest of the function.
type lockState struct {
	held     int
	deferred int
}

func (s *lockState) locked() bool { return s.held+s.deferred > 0 }

func (s *lockState) clone() *lockState { c := *s; return &c }

// merge folds a non-terminating branch back into the parent,
// pessimistically: a lock held on either path is held after the join.
func (s *lockState) merge(branch *lockState) {
	if branch.held > s.held {
		s.held = branch.held
	}
	if branch.deferred > s.deferred {
		s.deferred = branch.deferred
	}
}

type walker struct {
	pass *analysis.Pass
}

// block walks statements in order, mutating st.
func (w *walker) block(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		w.stmt(s, st)
	}
}

func (w *walker) stmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch {
			case w.isLock(call):
				st.held++
				return
			case w.isUnlock(call):
				if st.held > 0 {
					st.held--
				}
				return
			}
		}
		w.scan(s.X, st)
	case *ast.DeferStmt:
		if w.isUnlock(s.Call) {
			// The lock stays held until return; move one acquisition
			// into the deferred bucket so a later paired Unlock of a
			// different mutex is not miscounted against it.
			if st.held > 0 {
				st.held--
			}
			st.deferred++
			return
		}
		// Other defers run at return, outside this walk's lock model;
		// their argument expressions are still evaluated here.
		for _, arg := range s.Call.Args {
			w.scan(arg, st)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks. Its body
		// (a FuncLit) is analyzed separately by run.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, st)
		}
		for _, e := range s.Lhs {
			w.scan(e, st)
		}
	case *ast.DeclStmt:
		w.scan(s, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, st)
		}
	case *ast.BlockStmt:
		w.block(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scan(s.Cond, st)
		w.branch(s.Body.List, st)
		if s.Else != nil {
			w.branch([]ast.Stmt{s.Else}, st)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scan(s.Cond, st)
		}
		w.branch(s.Body.List, st)
	case *ast.RangeStmt:
		w.scan(s.X, st)
		w.branch(s.Body.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scan(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, st)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body, st)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	default:
		if s != nil {
			w.scan(s, st)
		}
	}
}

// branch walks a conditional block with a cloned state. A branch that
// cannot fall through (it ends in return/panic/break/continue/goto)
// leaves the parent state untouched — the early-unlock-and-return
// idiom; one that falls through merges pessimistically.
func (w *walker) branch(stmts []ast.Stmt, st *lockState) {
	child := st.clone()
	w.block(stmts, child)
	if !terminates(stmts) {
		st.merge(child)
	}
}

// scan looks for dispatch calls and lock operations inside an
// arbitrary expression or declaration subtree, skipping nested
// function literals (they are analyzed on their own and do not run
// under this function's locks unless called — which the ExprStmt
// handling above would see as a call expression).
func (w *walker) scan(n ast.Node, st *lockState) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch {
			case w.isLock(n):
				st.held++
			case w.isUnlock(n):
				if st.held > 0 {
					st.held--
				}
			case st.locked():
				if f := analysis.CalleeFunc(w.pass.Info, n); f != nil && EmitNames[f.Name()] {
					w.pass.Reportf(n.Pos(),
						"%s called while a sync mutex is held; dispatch observer callbacks "+
							"after releasing the lock (see the session emit contract), "+
							"or annotate //lint:emitnolock <why this lock is emit-safe>",
						f.Name())
				}
			}
		}
		return true
	})
}

func (w *walker) isLock(call *ast.CallExpr) bool {
	return w.syncMethod(call, "Lock") || w.syncMethod(call, "RLock")
}

func (w *walker) isUnlock(call *ast.CallExpr) bool {
	return w.syncMethod(call, "Unlock") || w.syncMethod(call, "RUnlock")
}

// syncMethod reports whether the call invokes sync.(*Mutex)/(*RWMutex)
// method name, including promoted methods of embedded mutexes.
func (w *walker) syncMethod(call *ast.CallExpr, name string) bool {
	f := analysis.CalleeFunc(w.pass.Info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == name
}

// terminates reports whether a statement list cannot fall through to
// the statement after its enclosing block.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}
