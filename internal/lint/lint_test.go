package lint_test

import (
	"testing"

	"stormtune/internal/lint"
	"stormtune/internal/lint/analysis"
	"stormtune/internal/lint/load"
)

func TestInScope(t *testing.T) {
	scope := map[string][]string{
		"ctxflow":    {"stormtune", "stormtune/internal/core/..."},
		"norawrand":  {"stormtune/internal/bo/..."},
		"everywhere": nil,
		"emptyIsAll": {},
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		// Exact entries match only themselves: the root package entry
		// must not leak onto the rest of the module.
		{"ctxflow", "stormtune", true},
		{"ctxflow", "stormtune/internal/dash", false},
		{"ctxflow", "stormtune/internal/core", true},
		{"ctxflow", "stormtune/internal/core/sub", true},
		{"norawrand", "stormtune/internal/bo", true},
		{"norawrand", "stormtune/internal/bogus", false},
		{"norawrand", "stormtune/internal/gp", false},
		// Absent or empty scope means the whole module.
		{"maporder", "stormtune/anything", true},
		{"maporder", "stormtune/internal/archive", true},
		{"everywhere", "stormtune/internal/dash", true},
		{"emptyIsAll", "stormtune/internal/dash", true},
	}
	for _, c := range cases {
		a := &analysis.Analyzer{Name: c.analyzer}
		if got := lint.InScope(scope, a, c.pkg); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestSuiteHasFiveAnalyzers(t *testing.T) {
	as := lint.Analyzers()
	if len(as) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"norawrand", "nowallclock", "maporder", "emitnolock", "ctxflow"} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
	for name := range lint.DefaultScope {
		if !seen[name] {
			t.Errorf("DefaultScope names unknown analyzer %q", name)
		}
	}
}

// TestArchiveInDefaultScope pins the session-archive coverage: the
// determinism analyzers must bind internal/archive (similarity
// ranking and warm-start seeding are decision paths), and the
// module-wide rules reach it by construction.
func TestArchiveInDefaultScope(t *testing.T) {
	for _, name := range []string{"norawrand", "nowallclock", "maporder", "emitnolock"} {
		a := &analysis.Analyzer{Name: name}
		if !lint.InScope(lint.DefaultScope, a, "stormtune/internal/archive") {
			t.Errorf("analyzer %q does not cover stormtune/internal/archive", name)
		}
	}
}

// TestRepoIsClean is the smoke test CI relies on: the full suite over
// the whole module, with the default scopes, must report nothing —
// every known-good exception carries its //lint: directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := load.Packages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ./... from the module root should find many more", len(pkgs))
	}
	for _, p := range pkgs {
		var active []*analysis.Analyzer
		for _, a := range lint.Analyzers() {
			if lint.InScope(lint.DefaultScope, a, p.Path) {
				active = append(active, a)
			}
		}
		diags, err := analysis.Run(p.Target, active)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
