package nowallclock_test

import (
	"testing"

	"stormtune/internal/lint/linttest"
	"stormtune/internal/lint/nowallclock"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nowallclock.Analyzer)
}
