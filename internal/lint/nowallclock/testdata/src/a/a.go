// Package a exercises nowallclock: bare wall-clock reads are flagged;
// the //lint:wallclock directive allowlists telemetry, both as a
// trailing comment and on the line above.
package a

import "time"

// Step mimics an optimizer step whose duration is telemetry.
type Step struct {
	LastStepDuration time.Duration
}

func bad() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	_ = time.Until(start)    // want "wall-clock read time.Until"
	return time.Since(start) // want "wall-clock read time.Since"
}

func allowedTrailing(s *Step) {
	start := time.Now() //lint:wallclock telemetry: feeds LastStepDuration, never a decision
	defer func() {
		s.LastStepDuration = time.Since(start) //lint:wallclock telemetry
	}()
}

func allowedAbove() time.Time {
	//lint:wallclock timestamping a report, not a decision input
	return time.Now()
}

// otherDirective does not allowlist this analyzer, so the read is
// still flagged.
func otherDirective() time.Time {
	//lint:maporder wrong directive for this analyzer
	return time.Now() // want "wall-clock read time.Now"
}

func goodNoClock() time.Duration {
	d := 5 * time.Millisecond
	return d * 2
}

// monitor mimics the watch degradation monitor: every decision input
// is a simulated timestamp passed in by the caller, so the whole
// decision path is clean without any directive.
type monitor struct {
	firedAt  float64
	cooldown float64
}

func (m *monitor) goodSimClockDecision(simTime float64) bool {
	return simTime-m.firedAt >= m.cooldown
}

// badWallClockDecision smuggles the wall clock into the same decision;
// replaying a snapshot would then diverge from the live run.
func (m *monitor) badWallClockDecision() bool {
	now := float64(time.Now().UnixNano()) / 1e9 // want "wall-clock read time.Now"
	return now-m.firedAt >= m.cooldown
}
