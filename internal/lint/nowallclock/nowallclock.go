// Package nowallclock forbids wall-clock reads in deterministic
// decision paths.
//
// BO scoring, GP fits and scheduler allocation must compute the same
// result for the same inputs on every run and on every resume — a
// time.Now() feeding a decision (a tie-break, a budget, an iteration
// cutoff) silently couples the proposal sequence to the machine's
// load. Legitimate wall-clock use in these packages is telemetry
// (e.g. populating a LastStepDuration field for the dashboard); mark
// those lines with an allowlist directive:
//
//	start := time.Now() //lint:wallclock telemetry only, not a decision input
//
// The justification text is part of the contract: it tells the next
// reader why the read cannot alter proposals.
package nowallclock

import (
	"go/ast"

	"stormtune/internal/lint/analysis"
)

// Analyzer implements the check. Its suppression directive is
// //lint:wallclock.
var Analyzer = &analysis.Analyzer{
	Name:      "nowallclock",
	Directive: "wallclock",
	Doc: "forbid time.Now/Since/Until in deterministic decision paths; " +
		"allowlist telemetry with //lint:wallclock <why>",
	Run: run,
}

var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" || !clockFuncs[f.Name()] {
			return true
		}
		pass.Reportf(call.Pos(),
			"wall-clock read time.%s in a deterministic decision path; "+
				"if this is telemetry, annotate the line with //lint:wallclock <why>",
			f.Name())
		return true
	})
	return nil
}
