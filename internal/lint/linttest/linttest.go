// Package linttest runs a stormlint analyzer over a fixture package
// and checks its diagnostics against expectations embedded in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	x := rand.Int() // want "global generator"
//
// where each double-quoted string after "want" is a regular
// expression that must match the message of exactly one diagnostic
// reported on that line. Diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test.
//
// Fixtures live under testdata/src/<name> and must type-check against
// the standard library only — they are parsed and checked directly,
// outside the module, so they cannot import stormtune packages.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"stormtune/internal/lint/analysis"
)

// Run analyzes the fixture package in dir (e.g. "testdata/src/a")
// with a and reports any mismatch between its diagnostics and the
// fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	diags, wants := analyze(t, dir, a)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		if !claim(wants, matched, d) {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(d), d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// analyze loads the fixture and returns the analyzer's diagnostics
// alongside the fixture's wants.
func analyze(t *testing.T, dir string, a *analysis.Analyzer) ([]analysis.Diagnostic, []want) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		ws, err := collectWants(fset, f)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		wants = append(wants, ws...)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	target := analysis.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return diags, wants
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantComment matches the want marker and captures the quoted
// patterns that follow it.
var (
	wantComment = regexp.MustCompile(`^//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
	wantPattern = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(fset *token.FileSet, f *ast.File) ([]want, error) {
	var out []want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantComment.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantPattern.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want pattern %s: %w", pos.Line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want regexp %q: %w", pos.Line, pat, err)
				}
				out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}

// claim matches d against the first unclaimed want on its line.
func claim(wants []want, matched []bool, d analysis.Diagnostic) bool {
	for i, w := range wants {
		if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			matched[i] = true
			return true
		}
	}
	return false
}

func posOf(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
}
