// Package norawrand forbids ambient randomness in the tuner's
// decision paths.
//
// Snapshot/resume replays the ask/tell log and expects bit-identical
// proposals, and fleet runs assert sequential parity — both break the
// moment any random draw comes from somewhere other than the
// session's seeded *rand.Rand. The analyzer flags (a) calls to
// math/rand's (and math/rand/v2's) package-level functions, which use
// the shared global generator, and (b) rand.New/rand.NewSource seeded
// from the wall clock. Constructing a generator from an explicit seed
// (rand.New(rand.NewSource(cfg.Seed))) is allowed: that is exactly
// the pattern the contract demands.
package norawrand

import (
	"go/ast"
	"go/types"

	"stormtune/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "norawrand",
	Doc: "forbid math/rand global functions and wall-clock seeding; " +
		"randomness must flow through an injected, explicitly seeded *rand.Rand",
	Run: run,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// constructors build generators from an explicit seed and are the
// sanctioned way to obtain randomness.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true, // rand/v2
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || !randPkgs[f.Pkg().Path()] {
			return true
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods of *rand.Rand etc. are the sanctioned path
		}
		if !constructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s uses the process-global generator; thread a seeded *rand.Rand through instead",
				f.Pkg().Path(), f.Name())
			return true
		}
		if from, ok := wallClockArg(pass.Info, call); ok {
			pass.Reportf(call.Pos(),
				"%s.%s seeded from the wall clock (time.%s); derive seeds from configuration so runs are reproducible",
				f.Pkg().Path(), f.Name(), from)
		}
		return true
	})
	return nil
}

// wallClockArg reports whether any argument of the constructor call
// derives from a time-package function (time.Now().UnixNano() and
// friends), returning the offending function name.
func wallClockArg(info *types.Info, call *ast.CallExpr) (string, bool) {
	name := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(info, inner)
			if f == nil || f.Pkg() == nil {
				return true
			}
			if randPkgs[f.Pkg().Path()] && constructors[f.Name()] {
				return false // nested constructor: reported on its own
			}
			if f.Pkg().Path() == "time" {
				name = f.Name()
				return false
			}
			return true
		})
		if name != "" {
			return name, true
		}
	}
	return "", false
}
