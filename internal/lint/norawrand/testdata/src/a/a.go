// Package a exercises norawrand: global math/rand functions and
// wall-clock seeding are flagged; explicitly seeded generators pass.
package a

import (
	"math/rand"
	mrand "math/rand"
	"time"
)

// Seed stands in for a configuration-provided seed.
var Seed int64 = 42

func bad() {
	_ = rand.Int()                                      // want "global generator"
	_ = rand.Float64()                                  // want "global generator"
	_ = rand.Intn(10)                                   // want "global generator"
	rand.Shuffle(3, func(i, j int) {})                  // want "global generator"
	_ = rand.Perm(5)                                    // want "global generator"
	_ = mrand.Int63()                                   // want "global generator"
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
	_ = rand.NewSource(int64(time.Now().Nanosecond()))  // want "seeded from the wall clock"
}

func good() *rand.Rand {
	rng := rand.New(rand.NewSource(Seed))
	_ = rng.Int()
	_ = rng.Float64()
	rng.Shuffle(3, func(i, j int) {})
	src := rand.NewSource(7)
	_ = rand.New(src)
	return rng
}

// goodDerived derives a child seed from an injected generator — the
// pattern batch proposers use — and must not be flagged.
func goodDerived(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}
