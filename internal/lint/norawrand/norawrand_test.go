package norawrand_test

import (
	"testing"

	"stormtune/internal/lint/linttest"
	"stormtune/internal/lint/norawrand"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", norawrand.Analyzer)
}
