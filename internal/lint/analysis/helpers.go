package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call invokes: package-level
// functions (possibly package-qualified) and methods (including
// promoted methods of embedded fields, via Selections). Returns nil
// for builtins, conversions, and calls of function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// No selection entry: a package-qualified call like time.Now.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether f is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// IsBuiltin reports whether the call invokes the named builtin
// (append, len, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// NamedFrom reports whether t (or the pointee, if t is a pointer) is
// the named type pkgPath.name.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
