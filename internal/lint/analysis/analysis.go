// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repo builds hermetically with no module downloads, so the real
// x/tools framework is not available; this package keeps the same
// shape (Analyzer / Pass / Reportf / want-comment fixtures via
// linttest) so the stormlint analyzers could be ported to
// golang.org/x/tools/go/analysis mechanically if the dependency ever
// lands.
//
// One deliberate extension: line-scoped suppression directives. A
// comment of the form
//
//	//lint:<directive> <justification>
//
// on the offending line, or alone on the line above it, suppresses
// that analyzer's diagnostics for the line. Each analyzer names its
// directive (default: the analyzer name); nowallclock, for example,
// uses //lint:wallclock. A justification is required by convention —
// the directive marks a reviewed, intentional exception to a
// determinism or concurrency contract, and the reviewer of the next
// change needs to know why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output, flags and fixtures.
	Name string
	// Doc is a short description: first line is a summary, the rest
	// explains the contract the analyzer enforces.
	Doc string
	// Directive overrides the //lint:<token> suppression token for
	// this analyzer; empty means Name.
	Directive string
	// Run inspects the package via pass and reports diagnostics.
	Run func(pass *Pass) error
}

// DirectiveToken returns the //lint: token that suppresses this
// analyzer's diagnostics.
func (a *Analyzer) DirectiveToken() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos. Suppression directives are
// applied by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Preorder walks every file's AST in source order, calling fn for each
// node; fn returning false prunes that subtree.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Target is one loaded, type-checked package — the runner's input.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics (suppression directives applied), sorted by position.
// Analyzer errors are returned after the diagnostics collected so far.
func Run(t Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := collectDirectives(t.Fset, t.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		tok := a.DirectiveToken()
		pass := &Pass{
			Analyzer: a,
			Fset:     t.Fset,
			Files:    t.Files,
			Pkg:      t.Pkg,
			Info:     t.Info,
			report: func(d Diagnostic) {
				if dirs.suppresses(tok, d.Pos) {
					return
				}
				out = append(out, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// directiveIndex maps file → line → set of directive tokens present on
// that line.
type directiveIndex map[string]map[int]map[string]bool

const directivePrefix = "//lint:"

func collectDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	add := func(file string, line int, tok string) {
		byLine := idx[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			idx[file] = byLine
		}
		toks := byLine[line]
		if toks == nil {
			toks = map[string]bool{}
			byLine[line] = toks
		}
		toks[tok] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				tok, _, _ := strings.Cut(rest, " ")
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, tok)
				// A directive whose justification continues over the
				// following comment lines still covers the statement
				// after the group.
				if end := fset.Position(cg.End()); end.Line > pos.Line {
					add(end.Filename, end.Line, tok)
				}
			}
		}
	}
	return idx
}

// suppresses reports whether a directive for tok covers pos: same
// line (trailing comment) or the line directly above (own-line
// comment).
func (idx directiveIndex) suppresses(tok string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][tok] || byLine[pos.Line-1][tok]
}
