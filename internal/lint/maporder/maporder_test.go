package maporder_test

import (
	"testing"

	"stormtune/internal/lint/linttest"
	"stormtune/internal/lint/maporder"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", maporder.Analyzer)
}
