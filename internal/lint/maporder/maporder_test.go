package maporder_test

import (
	"testing"

	"stormtune/internal/lint/linttest"
	"stormtune/internal/lint/maporder"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", maporder.Analyzer)
}

// TestArchiveFixture pins the session-archive shape: similarity
// ranking over a map of archived sessions must collect and sort keys
// before scoring, never rank straight out of a map range.
func TestArchiveFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/archive", maporder.Analyzer)
}
