// Package maporder flags map iteration feeding order-sensitive sinks.
//
// Go randomizes map iteration order on purpose; any `range` over a
// map whose body appends to an outer slice, emits events, writes to a
// stream/encoder or feeds a hash produces a different sequence on
// every run. That is precisely the class of bug that breaks the
// tuner's bit-identical snapshot/resume and fleet sequential-parity
// guarantees — an op log or fingerprint built in map order never
// replays. The fix is always the same: collect the keys, sort them,
// range over the sorted slice.
//
// Commutative bodies (scalar accumulation, writes into another map,
// per-iteration locals) are not flagged. A genuinely order-free sink
// can be allowlisted with //lint:maporder <why>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"stormtune/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append, emit events, write to " +
		"streams/hashes or send on channels; sort the keys first",
	Run: run,
}

// sinkNames are callee names whose argument order is observable:
// event dispatch, stream/encoder writes, hashing.
var sinkNames = map[string]bool{
	"OnEvent":     true,
	"Emit":        true,
	"emit":        true,
	"Record":      true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Encode":      true,
	"Sum":         true,
	"Push":        true,
	"Enqueue":     true,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink, ok := orderSensitiveSink(pass, rng); ok {
			pass.Reportf(rng.Pos(),
				"iteration over map %s feeds an order-sensitive sink (%s); "+
					"range over sorted keys instead, or annotate //lint:maporder <why order cannot matter>",
				exprString(rng.X), sink)
		}
		return true
	})
	return nil
}

// orderSensitiveSink scans the loop body for the first construct whose
// effect depends on iteration order.
func orderSensitiveSink(pass *analysis.Pass, rng *ast.RangeStmt) (string, bool) {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal defined here is not necessarily run here.
			return false
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.CallExpr:
			if analysis.IsBuiltin(pass.Info, n, "append") {
				if obj, outer := appendTarget(pass, rng, n); outer && !sortedAfter(pass, obj, rng.End()) {
					sink = "append to a slice declared outside the loop"
					return false
				}
			}
			if f := analysis.CalleeFunc(pass.Info, n); f != nil && sinkNames[f.Name()] {
				sink = "call to " + f.Name()
				return false
			}
		}
		return true
	})
	return sink, sink != ""
}

// appendTarget resolves the append's destination and reports whether
// it lives outside the range statement: appending to a per-iteration
// local accumulates nothing across iterations and is order-free.
func appendTarget(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) (types.Object, bool) {
	if len(call.Args) == 0 {
		return nil, true
	}
	base := ast.Unparen(call.Args[0])
	switch base.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		// A freshly built slice ([]T{...}, []T(nil), make(...)) is a
		// per-iteration value, not an accumulator.
		return nil, false
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		// Field/index targets (s.events, out[i]) necessarily outlive
		// the iteration.
		return nil, true
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return nil, true
	}
	return obj, obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortFuncs maps package path to the sorting functions whose first
// argument is the slice being ordered.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj — the slice a map range appends to —
// is passed to a sort function after the loop. Collect-then-sort is
// the canonical fix for map-order bugs and must not be flagged;
// anything subtler than a direct sort call (sorting behind a helper,
// sorting before a later use) still needs the //lint:maporder
// directive.
func sortedAfter(pass *analysis.Pass, obj types.Object, after token.Pos) bool {
	if obj == nil {
		return false
	}
	sorted := false
	pass.Preorder(func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		f := analysis.CalleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || !sortFuncs[f.Pkg().Path()][f.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}
