// Package a exercises maporder: map ranges feeding order-sensitive
// sinks are flagged; commutative bodies and sorted-key iteration are
// not.
package a

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Event mimics the tuner's observer plumbing.
type Event struct{ Name string }

// Observer mimics core.Observer.
type Observer interface{ OnEvent(Event) }

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want "append to a slice declared outside the loop"
		keys = append(keys, k)
	}
	return keys
}

func badEmit(m map[string]int, o Observer) {
	for k := range m { // want "call to OnEvent"
		o.OnEvent(Event{Name: k})
	}
}

func badHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k, v := range m { // want "call to Fprintf"
		fmt.Fprintf(h, "%s=%d;", k, v)
	}
	return h.Sum64()
}

func badWrite(m map[string]int, w io.Writer) {
	for k := range m { // want "call to Write"
		w.Write([]byte(k))
	}
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

// goodSortedKeys is the canonical fix — collect, sort, then consume —
// and must pass without any directive.
func goodSortedKeys(m map[string]int, o Observer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: not map iteration
		o.OnEvent(Event{Name: k})
	}
}

// allowedEmit shows the escape hatch: the directive on the line above
// the range suppresses the finding.
func allowedEmit(m map[string]int, o Observer) {
	//lint:maporder receiver counts events and ignores their order
	for k := range m {
		o.OnEvent(Event{Name: k})
	}
}

func goodCommutative(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := append([]int(nil), vs...)
		n += len(local)
	}
	return n
}

func goodFuncLit(m map[string]int) []func() string {
	// The literal captures k but is not called during iteration; the
	// analyzer must not descend into it.
	var fns []func() string
	for k := range m { // want "append to a slice declared outside the loop"
		k := k
		fns = append(fns, func() string {
			var parts []string
			parts = append(parts, k)
			return parts[0]
		})
	}
	return fns
}
