// Package archive exercises maporder against the session-archive
// shape: a store holds sessions in a map keyed by session key, and
// similarity ranking must not let that map's iteration order leak
// into the ranked result — ties between equally similar donors would
// otherwise resolve differently run to run.
package archive

import "sort"

// Session mimics archive.SessionRecord: a key plus a similarity
// score computed against the live run's topology features.
type Session struct {
	Key        string
	Similarity float64
}

// badRank builds the candidate pool straight out of a map range and
// hands it back unsorted: the donor picked for warm-starting is then
// whatever the map yielded first, different run to run.
func badRank(sessions map[string]float64, minSim float64) []Session {
	var pool []Session
	for k, sim := range sessions { // want "append to a slice declared outside the loop"
		if sim >= minSim {
			pool = append(pool, Session{Key: k, Similarity: sim})
		}
	}
	return pool
}

// goodRank is the archive package's actual shape: iterate keys in
// sorted order first, then score — ties break on the key, which is
// stable across runs.
func goodRank(sessions map[string]float64) []Session {
	keys := make([]string, 0, len(sessions))
	for k := range sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ranked := make([]Session, 0, len(keys))
	for _, k := range keys {
		ranked = append(ranked, Session{Key: k, Similarity: sessions[k]})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].Similarity > ranked[j].Similarity
	})
	return ranked
}

var _ = badRank
var _ = goodRank
