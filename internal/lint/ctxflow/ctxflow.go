// Package ctxflow enforces the codebase's context discipline.
//
// Cancellation is the only way the tuner's drivers, remote backends
// and the fleet scheduler shut down cleanly; it works only if every
// blocking call receives the caller's context. Three rules make that
// mechanical:
//
//  1. context.Context is never stored in a struct field — a stored
//     context outlives its cancellation scope and silently detaches
//     everything below it (the standard library's own guidance).
//  2. A function that already has a context parameter never calls
//     context.Background() or context.TODO() — that severs the
//     caller's cancellation mid-chain. Deliberate detachment (e.g. a
//     shutdown grace period that must outlive the cancelled request
//     context) is allowlisted with //lint:ctxflow <why>.
//  3. An exported function that takes a context takes it as its first
//     parameter, so call sites read uniformly.
package ctxflow

import (
	"go/ast"
	"go/types"

	"stormtune/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context.Context must flow through parameters: no struct fields, " +
		"no context.Background()/TODO() where a caller context exists, ctx first",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			checkStructFields(pass, n)
		case *ast.FuncDecl:
			checkFunc(pass, n)
		}
		return true
	})
	return nil
}

func isCtxType(t types.Type) bool {
	return analysis.NamedFrom(t, "context", "Context")
}

func checkStructFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isCtxType(tv.Type) {
			continue
		}
		name := "embedded context.Context"
		if len(field.Names) > 0 {
			name = "field " + field.Names[0].Name
		}
		pass.Reportf(field.Pos(),
			"%s stores a context.Context in a struct; contexts must be passed "+
				"per call so cancellation follows the caller", name)
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxParams := contextParams(pass, fn.Type)
	if len(ctxParams) == 0 {
		return
	}
	if fn.Name.IsExported() && ctxParams[0] != 0 {
		pass.Reportf(fn.Type.Params.List[0].Pos(),
			"exported %s takes context.Context as parameter %d; context should be the first parameter",
			fn.Name.Name, ctxParams[0]+1)
	}
	if fn.Body == nil {
		return
	}
	// A context parameter is in scope for the whole body, including
	// closures: fresh Background()/TODO() anywhere inside discards it.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		if analysis.IsPkgFunc(f, "context", "Background") || analysis.IsPkgFunc(f, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that receives a context; forward the "+
					"caller's context, or annotate //lint:ctxflow <why this must detach>",
				f.Name())
		}
		return true
	})
}

// contextParams returns the flattened positions of context.Context
// parameters in the signature.
func contextParams(pass *analysis.Pass, ft *ast.FuncType) []int {
	var out []int
	pos := 0
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.Info.Types[field.Type]
		if ok && isCtxType(tv.Type) {
			for i := 0; i < n; i++ {
				out = append(out, pos+i)
			}
		}
		pos += n
	}
	return out
}
