// Package a exercises ctxflow: stored contexts, severed context
// chains and misplaced ctx parameters are flagged; plain forwarding
// and root-level Background() are not.
package a

import (
	"context"
	"time"
)

type badHolder struct {
	ctx context.Context // want "stores a context.Context in a struct"
	n   int
}

type badEmbed struct {
	context.Context // want "stores a context.Context in a struct"
}

type goodHolder struct {
	n int
}

func work(ctx context.Context) error { return ctx.Err() }

// Run forwards its context — the contract.
func Run(ctx context.Context, h *goodHolder) error {
	return work(ctx)
}

// BadSever receives a context but detaches its callee from it.
func BadSever(ctx context.Context) error {
	return work(context.Background()) // want "context.Background\\(\\) inside a function that receives a context"
}

// BadTODO is the same severing with TODO.
func BadTODO(ctx context.Context) error {
	return work(context.TODO()) // want "context.TODO\\(\\) inside a function that receives a context"
}

// BadClosure severs inside a closure that had ctx in scope.
func BadClosure(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want "context.Background\\(\\) inside a function that receives a context"
	}
}

// AllowedDetach is the sanctioned escape: a shutdown grace period
// must outlive the already-cancelled caller context.
func AllowedDetach(ctx context.Context) error {
	<-ctx.Done()
	//lint:ctxflow shutdown grace must outlive the cancelled request context
	grace, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return work(grace)
}

// BadOrder puts ctx after another parameter on an exported function.
func BadOrder(n int, ctx context.Context) error { // want "context should be the first parameter"
	return work(ctx)
}

// goodRoot has no caller context — Background() at the root of a call
// tree (main, tests, servers) is exactly what Background is for.
func goodRoot() error {
	return work(context.Background())
}

// goodUnexportedOrder: parameter order is only enforced on exported
// functions.
func goodUnexportedOrder(n int, ctx context.Context) error {
	return work(ctx)
}

// GoodDerive derives from the caller's context — forwarding, not
// severing.
func GoodDerive(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(sub)
}
