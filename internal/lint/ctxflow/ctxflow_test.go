package ctxflow_test

import (
	"testing"

	"stormtune/internal/lint/ctxflow"
	"stormtune/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src/a", ctxflow.Analyzer)
}
