// Package lint assembles the stormlint analyzer suite: which
// analyzers exist, and which parts of the module each one binds.
//
// Every load-bearing guarantee of this reproduction — bit-identical
// snapshot/resume of the ask/tell log, same-RunIndex retry recovery,
// fleet sequential parity — rests on invariants no compiler checks:
// randomness flows from an explicitly seeded *rand.Rand, no wall
// clock or map-iteration order leaks into decision paths, observer
// callbacks fire outside locks, contexts flow through parameters.
// The analyzers here make those invariants machine-checked so the
// upcoming GP hot-path refactor and session-archive work cannot
// silently break them. cmd/stormlint is the command-line driver;
// `make lint` and CI run it over ./... and fail on any finding.
package lint

import (
	"strings"

	"stormtune/internal/lint/analysis"
	"stormtune/internal/lint/ctxflow"
	"stormtune/internal/lint/emitnolock"
	"stormtune/internal/lint/maporder"
	"stormtune/internal/lint/norawrand"
	"stormtune/internal/lint/nowallclock"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		norawrand.Analyzer,
		nowallclock.Analyzer,
		maporder.Analyzer,
		emitnolock.Analyzer,
		ctxflow.Analyzer,
	}
}

// DefaultScope maps analyzer name to the import paths it applies to:
// an entry is an exact package path, or a subtree when suffixed with
// "/...". An absent entry (or nil slice) means the whole module.
//
// The scopes mirror where each contract binds: randomness and wall
// clocks are decision-path concerns (proposal, fitting, sampling,
// simulation), context discipline binds the blocking plumbing, and
// map-order/emit-under-lock are module-wide correctness rules.
var DefaultScope = map[string][]string{
	"norawrand": {
		"stormtune/internal/archive/...",
		"stormtune/internal/bo/...",
		"stormtune/internal/gp/...",
		"stormtune/internal/sample/...",
		"stormtune/internal/des/...",
		"stormtune/internal/storm/...",
		"stormtune/internal/watch/...",
	},
	"nowallclock": {
		"stormtune/internal/archive/...",
		"stormtune/internal/bo/...",
		"stormtune/internal/gp/...",
		"stormtune/internal/linalg/...",
		"stormtune/internal/sample/...",
		"stormtune/internal/scheduler/...",
		"stormtune/internal/storm/...",
		"stormtune/internal/watch/...",
	},
	"ctxflow": {
		"stormtune", // the public API package, exactly
		"stormtune/internal/core/...",
		"stormtune/internal/remote/...",
		"stormtune/internal/scheduler/...",
	},
	// maporder and emitnolock apply module-wide.
}

// InScope reports whether analyzer a applies to the package at
// import path pkgPath under scope (typically DefaultScope).
func InScope(scope map[string][]string, a *analysis.Analyzer, pkgPath string) bool {
	prefixes, ok := scope[a.Name]
	if !ok || len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}
