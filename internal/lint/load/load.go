// Package load turns `go list` package patterns into type-checked
// analysis.Targets using only the standard library: the go command
// expands patterns and enumerates files, go/parser parses them, and
// go/types checks them with the source importer (which type-checks
// dependencies — stdlib and module-local alike — from source, so no
// export data or network is needed).
//
// Only non-test files are loaded: the determinism and concurrency
// contracts stormlint enforces bind production code, while tests
// legitimately use wall clocks, global rand and ad-hoc goroutines.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"

	"stormtune/internal/lint/analysis"
)

// Package is one loaded package: its import path plus the
// type-checked syntax handed to analyzers.
type Package struct {
	Path string
	analysis.Target
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Packages expands patterns (e.g. "./...") relative to dir and loads
// each matched package. The returned packages are in go list order
// (deterministic: lexical by import path within a pattern).
func Packages(dir string, patterns []string) ([]*Package, error) {
	entries, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One source importer for the whole run: it caches every package it
	// type-checks, so shared dependencies are checked once.
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, e := range entries {
		p, err := check(fset, imp, e)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func list(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(outPipe)
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		entries = append(entries, e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return entries, nil
}

func check(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", e.ImportPath, err)
	}
	return &Package{
		Path: e.ImportPath,
		Target: analysis.Target{
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		},
	}, nil
}
