package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelBasics(t *testing.T) {
	for _, k := range []Kernel{NewMatern52(3, 0.5), NewSquaredExp(3, 0.5)} {
		a := []float64{0.1, 0.2, 0.3}
		// k(x,x) = amplitude.
		if math.Abs(k.Eval(a, a)-1) > 1e-12 {
			t.Fatalf("k(x,x) = %v, want 1", k.Eval(a, a))
		}
		// Symmetry.
		b := []float64{0.9, 0.8, 0.7}
		if math.Abs(k.Eval(a, b)-k.Eval(b, a)) > 1e-15 {
			t.Fatalf("kernel not symmetric")
		}
		// Decay with distance.
		c := []float64{0.15, 0.2, 0.3}
		if k.Eval(a, c) <= k.Eval(a, b) {
			t.Fatalf("kernel should decay with distance: near=%v far=%v", k.Eval(a, c), k.Eval(a, b))
		}
		if k.Dim() != 3 {
			t.Fatalf("dim = %d", k.Dim())
		}
	}
}

func TestKernelHypersRoundTrip(t *testing.T) {
	for _, k := range []Kernel{NewMatern52(2, 0.4), NewSquaredExp(2, 0.4)} {
		h := k.Hypers()
		if len(h) != 3 {
			t.Fatalf("hypers len = %d, want 3", len(h))
		}
		h2 := append([]float64(nil), h...)
		h2[1] = math.Log(0.9)
		k.SetHypers(h2)
		got := k.Hypers()
		if math.Abs(got[1]-math.Log(0.9)) > 1e-12 {
			t.Fatalf("SetHypers did not stick: %v", got)
		}
	}
}

func TestKernelCloneIndependence(t *testing.T) {
	k := NewMatern52(2, 0.4)
	c := k.Clone().(*Matern52)
	c.Lengths[0] = 99
	if k.Lengths[0] == 99 {
		t.Fatal("Clone aliases parent")
	}
}

func TestGPInterpolatesWithLowNoise(t *testing.T) {
	// With tiny noise the posterior mean must pass near the data.
	x := [][]float64{{0.0}, {0.25}, {0.5}, {0.75}, {1.0}}
	y := []float64{0, 1, 0, -1, 0}
	g := New(NewMatern52(1, 0.3), 1e-8)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		mu, s2 := g.Predict(xi)
		if math.Abs(mu-y[i]) > 1e-3 {
			t.Fatalf("mu(%v) = %v, want %v", xi, mu, y[i])
		}
		if s2 > 1e-3 {
			t.Fatalf("variance at datum should be tiny, got %v", s2)
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.5}}
	y := []float64{1}
	g := New(NewSquaredExp(1, 0.1), 1e-6)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, atData := g.Predict([]float64{0.5})
	_, far := g.Predict([]float64{0.95})
	if far <= atData {
		t.Fatalf("variance should grow away from data: %v vs %v", atData, far)
	}
}

func TestGPRevertsToMeanFarAway(t *testing.T) {
	x := [][]float64{{0.1}, {0.2}}
	y := []float64{10, 12}
	g := New(NewSquaredExp(1, 0.05), 1e-6)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.99})
	if math.Abs(mu-11) > 0.5 {
		t.Fatalf("far prediction should revert to mean 11, got %v", mu)
	}
}

func TestGPFitErrors(t *testing.T) {
	g := New(NewMatern52(1, 0.3), 1e-6)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty fit")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestGPPredictBeforeFit(t *testing.T) {
	g := New(NewMatern52(1, 0.3), 1e-6)
	mu, s2 := g.Predict([]float64{0.3})
	if mu != 0 || s2 <= 0 {
		t.Fatalf("prior predict = (%v, %v)", mu, s2)
	}
}

func TestLogMarginalLikelihoodPrefersTruth(t *testing.T) {
	// Data generated from a smooth function: a reasonable length scale
	// should beat an absurdly short one.
	rng := rand.New(rand.NewSource(42))
	var x [][]float64
	var y []float64
	for i := 0; i < 25; i++ {
		xi := rng.Float64()
		x = append(x, []float64{xi})
		y = append(y, math.Sin(3*xi)+0.05*rng.NormFloat64())
	}
	good := New(NewMatern52(1, 0.4), 0.01)
	if err := good.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	bad := New(NewMatern52(1, 1e-4), 0.01)
	if err := bad.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Fatalf("LML should prefer sane length scale: good=%v bad=%v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}

func TestSliceSampleHypersImprovesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		xi := float64(i) / 19
		x = append(x, []float64{xi})
		y = append(y, math.Sin(4*xi))
	}
	g := New(NewMatern52(1, 5.0), 0.5) // deliberately bad start
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	before := g.LogMarginalLikelihood()
	samples := g.SliceSampleHypers(rng, 10, 3)
	if len(samples) != 10 {
		t.Fatalf("got %d samples", len(samples))
	}
	after := g.LogMarginalLikelihood()
	if after < before-1 {
		t.Fatalf("sampling should not end far below start: before=%v after=%v", before, after)
	}
	// Each sample must have the right length: kernel hypers + noise.
	if len(samples[0]) != len(g.Kern.Hypers())+1 {
		t.Fatalf("sample length = %d", len(samples[0]))
	}
}

func TestFitMAPRecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		xi := float64(i) / 29
		x = append(x, []float64{xi})
		y = append(y, 2*xi)
	}
	g := New(NewMatern52(1, 0.001), 1.0)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	g.FitMAP(rng, 8)
	// After MAP fitting, predictions should roughly track the line.
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-1.0) > 0.3 {
		t.Fatalf("MAP-fit prediction at 0.5 = %v, want ≈1", mu)
	}
}

func TestGPClone(t *testing.T) {
	x := [][]float64{{0.1}, {0.5}, {0.9}}
	y := []float64{1, 2, 3}
	g := New(NewMatern52(1, 0.3), 1e-4)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	muG, _ := g.Predict([]float64{0.4})
	muC, _ := c.Predict([]float64{0.4})
	if math.Abs(muG-muC) > 1e-9 {
		t.Fatalf("clone predicts differently: %v vs %v", muG, muC)
	}
	// Mutating the clone's kernel must not affect the parent.
	c.Kern.(*Matern52).Lengths[0] = 100
	muG2, _ := g.Predict([]float64{0.4})
	if muG2 != muG {
		t.Fatalf("clone mutation leaked into parent")
	}
}

// Property: posterior variance is never negative and never exceeds the
// prior variance at any query point (for noise-free interpolation this
// is the standard GP contraction property).
func TestQuickGPVarianceBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.NormFloat64()
		}
		g := New(NewMatern52(2, 0.3), 1e-4)
		if err := g.Fit(x, y); err != nil {
			return true // degenerate draw; skip
		}
		prior := g.Kern.Eval([]float64{0, 0}, []float64{0, 0})
		for i := 0; i < 5; i++ {
			q := []float64{rng.Float64(), rng.Float64()}
			_, s2 := g.Predict(q)
			if s2 < 0 || s2 > prior*(1+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPriorMeanHook pins the transfer-learning prior: when the data is
// exactly the prior, the GP learns a ~zero constant and predictions far
// from the data fall back to the prior, not to a global constant.
func TestPriorMeanHook(t *testing.T) {
	prior := func(x []float64) float64 { return 3 + 2*x[0] }
	x := [][]float64{{0.1, 0.1}, {0.4, 0.6}, {0.8, 0.3}}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = prior(xi)
	}
	g := New(NewMatern52(2, 0.3), 1e-6)
	g.Prior = prior
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean) > 1e-9 {
		t.Fatalf("residual mean should be ~0, got %v", g.Mean)
	}
	// Far from every observation the posterior reverts to the prior.
	far := []float64{0.95, 0.95}
	mu, _ := g.Predict(far)
	if math.Abs(mu-prior(far)) > 0.2 {
		t.Fatalf("far prediction %v should track prior %v", mu, prior(far))
	}
	// At a data point it interpolates.
	mu, _ = g.Predict(x[0])
	if math.Abs(mu-y[0]) > 1e-3 {
		t.Fatalf("interpolation off: %v vs %v", mu, y[0])
	}
	if lml := g.LogMarginalLikelihood(); math.IsInf(lml, -1) || math.IsNaN(lml) {
		t.Fatalf("bad log marginal likelihood %v", lml)
	}
	// Clone keeps the prior.
	c := g.Clone()
	cmu, _ := c.Predict(far)
	if math.Abs(cmu-mu2(g, far)) > 1e-9 {
		t.Fatalf("clone prediction differs: %v", cmu)
	}
}

func mu2(g *GP, x []float64) float64 {
	mu, _ := g.Predict(x)
	return mu
}
