package gp

import (
	"math"
	"math/rand"
)

// hyperPrior is a weak log-normal prior over the log-space
// hyperparameters keeping length scales, amplitude and noise in sane
// ranges for unit-cube inputs. Without it the sampler can wander to
// degenerate kernels when few observations exist.
func hyperPrior(h []float64) float64 {
	lp := 0.0
	for _, v := range h {
		// N(log 0.3 ≈ -1.2, sd 2.5) keeps values within a few orders of
		// magnitude of O(1).
		d := (v + 1.2) / 2.5
		lp += -0.5 * d * d
	}
	return lp
}

// logPosterior evaluates log p(θ) + log p(y|x,θ), refitting the GP.
// Returns -Inf when the kernel matrix is not factorizable.
func (g *GP) logPosterior(h []float64) float64 {
	if err := g.setHypers(h); err != nil {
		return math.Inf(-1)
	}
	ll := g.LogMarginalLikelihood()
	if math.IsNaN(ll) {
		return math.Inf(-1)
	}
	return ll + hyperPrior(h)
}

// SliceSampleHypers draws nSamples hyperparameter vectors from the
// posterior over (kernel hypers, noise) using univariate slice sampling
// with stepping out (Neal 2003), the scheme Spearmint uses. The GP is
// left fitted at the last sample. Returned samples are log-space
// vectors suitable for setHypers.
func (g *GP) SliceSampleHypers(rng *rand.Rand, nSamples, burn int) [][]float64 {
	cur := g.hypers()
	curLP := g.logPosterior(cur)
	if math.IsInf(curLP, -1) {
		// Reset to a safe default before sampling.
		for i := range cur {
			cur[i] = math.Log(0.3)
		}
		curLP = g.logPosterior(cur)
	}
	total := nSamples + burn
	out := make([][]float64, 0, nSamples)
	const (
		width    = 1.0
		maxSteps = 20
	)
	for s := 0; s < total; s++ {
		for d := 0; d < len(cur); d++ {
			logU := curLP + math.Log(rng.Float64()+1e-300)
			lo := cur[d] - width*rng.Float64()
			hi := lo + width
			// Step out.
			trial := append([]float64(nil), cur...)
			for i := 0; i < maxSteps; i++ {
				trial[d] = lo
				if g.logPosterior(trial) <= logU {
					break
				}
				lo -= width
			}
			for i := 0; i < maxSteps; i++ {
				trial[d] = hi
				if g.logPosterior(trial) <= logU {
					break
				}
				hi += width
			}
			// Shrink.
			for i := 0; i < 50; i++ {
				x := lo + rng.Float64()*(hi-lo)
				trial[d] = x
				lp := g.logPosterior(trial)
				if lp > logU {
					cur[d] = x
					curLP = lp
					break
				}
				if x < cur[d] {
					lo = x
				} else {
					hi = x
				}
				if hi-lo < 1e-9 {
					trial[d] = cur[d]
					curLP = g.logPosterior(trial)
					break
				}
			}
		}
		if s >= burn {
			out = append(out, append([]float64(nil), cur...))
		}
	}
	// Leave the GP fitted at the final state.
	_ = g.setHypers(cur)
	return out
}

// FitMAP does a cheap maximum-a-posteriori hyperparameter fit: a short
// slice-sampling run followed by keeping the best sample. It is used
// when the caller wants a single point estimate rather than full
// marginalization.
func (g *GP) FitMAP(rng *rand.Rand, iters int) {
	samples := g.SliceSampleHypers(rng, iters, 2)
	best := g.hypers()
	bestLP := g.logPosterior(best)
	for _, s := range samples {
		lp := g.logPosterior(s)
		if lp > bestLP {
			bestLP = lp
			best = s
		}
	}
	_ = g.setHypers(best)
}
