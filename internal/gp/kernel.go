package gp

import (
	"fmt"
	"math"

	"stormtune/internal/linalg"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	// EvalRow evaluates one input against many in a single call:
	// dst[i] = k(x, xs[i]). The GP hot path (kernel-matrix rows in
	// Fit/Observe, k* vectors in Predict) goes through EvalRow:
	// per-dimension inverse length scales are computed once per
	// row instead of once per pair, and the interface dispatch happens
	// once per row instead of once per training point.
	//
	// Note EvalRow multiplies by precomputed reciprocals where Eval
	// divides, so the two may differ in the last ulp. The GP uses EvalRow
	// consistently on every internal path, which is what makes the
	// incremental factor updates bit-identical to batch refactorization.
	EvalRow(x []float64, xs [][]float64, dst []float64)

	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Dim returns the input dimensionality the kernel is configured for.
	Dim() int
	// Hypers returns the current hyperparameters in log space (the
	// parameterization used by the slice sampler).
	Hypers() []float64
	// SetHypers installs hyperparameters from log space.
	SetHypers(h []float64)
	// Clone returns an independent copy.
	Clone() Kernel
}

// Matern52 is the ARD Matérn-5/2 kernel Spearmint defaults to:
//
//	k(a,b) = σ² (1 + √5 r + 5r²/3) exp(-√5 r),  r² = Σ (a_i-b_i)²/ℓ_i²
type Matern52 struct {
	Amp2    float64   // signal variance σ²
	Lengths []float64 // per-dimension length scales ℓ_i
}

// NewMatern52 builds a Matérn-5/2 kernel with unit amplitude and the
// given initial length scale in every one of d dimensions.
func NewMatern52(d int, length float64) *Matern52 {
	ls := make([]float64, d)
	for i := range ls {
		ls[i] = length
	}
	return &Matern52{Amp2: 1, Lengths: ls}
}

// Eval returns the Matérn-5/2 covariance between a and b.
func (k *Matern52) Eval(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := (a[i] - b[i]) / k.Lengths[i]
		r2 += d * d
	}
	r := math.Sqrt(5 * r2)
	return k.Amp2 * (1 + r + r*r/3) * math.Exp(-r)
}

// maxStackDims bounds the stack-allocated reciprocal-length buffer in
// EvalRow; higher-dimensional spaces fall back to a heap slice.
const maxStackDims = 32

// invLengths fills a buffer with 1/ℓ_i, reusing buf when it is large
// enough.
func invLengths(buf, lengths []float64) []float64 {
	if cap(buf) < len(lengths) {
		buf = make([]float64, len(lengths))
	}
	buf = buf[:len(lengths)]
	for i, l := range lengths {
		buf[i] = 1 / l
	}
	return buf
}

// EvalRow sets dst[i] = k(x, xs[i]) without per-pair divisions.
func (k *Matern52) EvalRow(x []float64, xs [][]float64, dst []float64) {
	var stack [maxStackDims]float64
	inv := invLengths(stack[:0], k.Lengths)
	amp2 := k.Amp2
	for i, xi := range xs {
		r2 := 0.0
		for j, v := range x {
			d := (v - xi[j]) * inv[j]
			r2 += d * d
		}
		r := math.Sqrt(5 * r2)
		dst[i] = amp2 * (1 + r + r*r/3) * math.Exp(-r)
	}
}

// Dim returns the number of input dimensions.
func (k *Matern52) Dim() int { return len(k.Lengths) }

// Hypers returns [log σ², log ℓ_1 … log ℓ_d].
func (k *Matern52) Hypers() []float64 {
	h := make([]float64, 1+len(k.Lengths))
	h[0] = math.Log(k.Amp2)
	for i, l := range k.Lengths {
		h[i+1] = math.Log(l)
	}
	return h
}

// SetHypers installs [log σ², log ℓ…].
func (k *Matern52) SetHypers(h []float64) {
	if len(h) != 1+len(k.Lengths) {
		panic(fmt.Sprintf("gp: Matern52 wants %d hypers, got %d", 1+len(k.Lengths), len(h)))
	}
	k.Amp2 = math.Exp(h[0])
	for i := range k.Lengths {
		k.Lengths[i] = math.Exp(h[i+1])
	}
}

// Clone returns an independent copy.
func (k *Matern52) Clone() Kernel {
	return &Matern52{Amp2: k.Amp2, Lengths: linalg.CloneVec(k.Lengths)}
}

// SquaredExp is the ARD squared-exponential (RBF) kernel:
//
//	k(a,b) = σ² exp(-½ Σ (a_i-b_i)²/ℓ_i²)
type SquaredExp struct {
	Amp2    float64
	Lengths []float64
}

// NewSquaredExp builds an RBF kernel with unit amplitude and the given
// initial length scale in every one of d dimensions.
func NewSquaredExp(d int, length float64) *SquaredExp {
	ls := make([]float64, d)
	for i := range ls {
		ls[i] = length
	}
	return &SquaredExp{Amp2: 1, Lengths: ls}
}

// Eval returns the RBF covariance between a and b.
func (k *SquaredExp) Eval(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := (a[i] - b[i]) / k.Lengths[i]
		r2 += d * d
	}
	return k.Amp2 * math.Exp(-0.5*r2)
}

// EvalRow sets dst[i] = k(x, xs[i]) without per-pair divisions.
func (k *SquaredExp) EvalRow(x []float64, xs [][]float64, dst []float64) {
	var stack [maxStackDims]float64
	inv := invLengths(stack[:0], k.Lengths)
	amp2 := k.Amp2
	for i, xi := range xs {
		r2 := 0.0
		for j, v := range x {
			d := (v - xi[j]) * inv[j]
			r2 += d * d
		}
		dst[i] = amp2 * math.Exp(-0.5*r2)
	}
}

// Dim returns the number of input dimensions.
func (k *SquaredExp) Dim() int { return len(k.Lengths) }

// Hypers returns [log σ², log ℓ_1 … log ℓ_d].
func (k *SquaredExp) Hypers() []float64 {
	h := make([]float64, 1+len(k.Lengths))
	h[0] = math.Log(k.Amp2)
	for i, l := range k.Lengths {
		h[i+1] = math.Log(l)
	}
	return h
}

// SetHypers installs [log σ², log ℓ…].
func (k *SquaredExp) SetHypers(h []float64) {
	if len(h) != 1+len(k.Lengths) {
		panic(fmt.Sprintf("gp: SquaredExp wants %d hypers, got %d", 1+len(k.Lengths), len(h)))
	}
	k.Amp2 = math.Exp(h[0])
	for i := range k.Lengths {
		k.Lengths[i] = math.Exp(h[i+1])
	}
}

// Clone returns an independent copy.
func (k *SquaredExp) Clone() Kernel {
	return &SquaredExp{Amp2: k.Amp2, Lengths: linalg.CloneVec(k.Lengths)}
}
