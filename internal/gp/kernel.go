// Package gp implements Gaussian-process regression as used by
// Spearmint: an ARD Matérn-5/2 (or squared-exponential) kernel over the
// unit hypercube, exact inference via Cholesky factorization, and
// marginalization of kernel hyperparameters by slice sampling.
package gp

import (
	"fmt"
	"math"

	"stormtune/internal/linalg"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Dim returns the input dimensionality the kernel is configured for.
	Dim() int
	// Hypers returns the current hyperparameters in log space (the
	// parameterization used by the slice sampler).
	Hypers() []float64
	// SetHypers installs hyperparameters from log space.
	SetHypers(h []float64)
	// Clone returns an independent copy.
	Clone() Kernel
}

// Matern52 is the ARD Matérn-5/2 kernel Spearmint defaults to:
//
//	k(a,b) = σ² (1 + √5 r + 5r²/3) exp(-√5 r),  r² = Σ (a_i-b_i)²/ℓ_i²
type Matern52 struct {
	Amp2    float64   // signal variance σ²
	Lengths []float64 // per-dimension length scales ℓ_i
}

// NewMatern52 builds a Matérn-5/2 kernel with unit amplitude and the
// given initial length scale in every one of d dimensions.
func NewMatern52(d int, length float64) *Matern52 {
	ls := make([]float64, d)
	for i := range ls {
		ls[i] = length
	}
	return &Matern52{Amp2: 1, Lengths: ls}
}

// Eval returns the Matérn-5/2 covariance between a and b.
func (k *Matern52) Eval(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := (a[i] - b[i]) / k.Lengths[i]
		r2 += d * d
	}
	r := math.Sqrt(5 * r2)
	return k.Amp2 * (1 + r + r*r/3) * math.Exp(-r)
}

// Dim returns the number of input dimensions.
func (k *Matern52) Dim() int { return len(k.Lengths) }

// Hypers returns [log σ², log ℓ_1 … log ℓ_d].
func (k *Matern52) Hypers() []float64 {
	h := make([]float64, 1+len(k.Lengths))
	h[0] = math.Log(k.Amp2)
	for i, l := range k.Lengths {
		h[i+1] = math.Log(l)
	}
	return h
}

// SetHypers installs [log σ², log ℓ…].
func (k *Matern52) SetHypers(h []float64) {
	if len(h) != 1+len(k.Lengths) {
		panic(fmt.Sprintf("gp: Matern52 wants %d hypers, got %d", 1+len(k.Lengths), len(h)))
	}
	k.Amp2 = math.Exp(h[0])
	for i := range k.Lengths {
		k.Lengths[i] = math.Exp(h[i+1])
	}
}

// Clone returns an independent copy.
func (k *Matern52) Clone() Kernel {
	return &Matern52{Amp2: k.Amp2, Lengths: linalg.CloneVec(k.Lengths)}
}

// SquaredExp is the ARD squared-exponential (RBF) kernel:
//
//	k(a,b) = σ² exp(-½ Σ (a_i-b_i)²/ℓ_i²)
type SquaredExp struct {
	Amp2    float64
	Lengths []float64
}

// NewSquaredExp builds an RBF kernel with unit amplitude and the given
// initial length scale in every one of d dimensions.
func NewSquaredExp(d int, length float64) *SquaredExp {
	ls := make([]float64, d)
	for i := range ls {
		ls[i] = length
	}
	return &SquaredExp{Amp2: 1, Lengths: ls}
}

// Eval returns the RBF covariance between a and b.
func (k *SquaredExp) Eval(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := (a[i] - b[i]) / k.Lengths[i]
		r2 += d * d
	}
	return k.Amp2 * math.Exp(-0.5*r2)
}

// Dim returns the number of input dimensions.
func (k *SquaredExp) Dim() int { return len(k.Lengths) }

// Hypers returns [log σ², log ℓ_1 … log ℓ_d].
func (k *SquaredExp) Hypers() []float64 {
	h := make([]float64, 1+len(k.Lengths))
	h[0] = math.Log(k.Amp2)
	for i, l := range k.Lengths {
		h[i+1] = math.Log(l)
	}
	return h
}

// SetHypers installs [log σ², log ℓ…].
func (k *SquaredExp) SetHypers(h []float64) {
	if len(h) != 1+len(k.Lengths) {
		panic(fmt.Sprintf("gp: SquaredExp wants %d hypers, got %d", 1+len(k.Lengths), len(h)))
	}
	k.Amp2 = math.Exp(h[0])
	for i := range k.Lengths {
		k.Lengths[i] = math.Exp(h[i+1])
	}
}

// Clone returns an independent copy.
func (k *SquaredExp) Clone() Kernel {
	return &SquaredExp{Amp2: k.Amp2, Lengths: linalg.CloneVec(k.Lengths)}
}
