package gp

import (
	"math"
	"math/rand"
	"testing"
)

func randomData(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		s := 0.0
		for j := range x {
			x[j] = rng.Float64()
			s += math.Sin(3 * x[j])
		}
		xs[i] = x
		ys[i] = s + 0.05*rng.NormFloat64()
	}
	return xs, ys
}

// TestGPObserveMatchesFit pins the cache contract: a GP grown one
// Observe at a time is bit-identical — factor, alpha, mean, posterior —
// to a GP fitted cold on the full data at the same hyperparameters.
func TestGPObserveMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := randomData(rng, 30, 4)

	inc := New(NewMatern52(4, 0.3), 1e-4)
	for i := range xs {
		if err := inc.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	cold := New(NewMatern52(4, 0.3), 1e-4)
	if err := cold.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}

	if inc.Jitter() != cold.Jitter() {
		t.Fatalf("jitter: incremental %g vs cold %g", inc.Jitter(), cold.Jitter())
	}
	if inc.Mean != cold.Mean {
		t.Fatalf("mean: incremental %g vs cold %g", inc.Mean, cold.Mean)
	}
	for i, v := range inc.chol.L.Data {
		if v != cold.chol.L.Data[i] {
			t.Fatalf("factor entry %d: %g vs %g", i, v, cold.chol.L.Data[i])
		}
	}
	for i, v := range inc.alpha {
		if v != cold.alpha[i] {
			t.Fatalf("alpha entry %d: %g vs %g", i, v, cold.alpha[i])
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		m1, v1 := inc.Predict(q)
		m2, v2 := cold.Predict(q)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("posterior differs at %v: (%g,%g) vs (%g,%g)", q, m1, v1, m2, v2)
		}
	}
}

// TestGPRetractRestores appends fantasy points and retracts them in
// reverse order, requiring the original factor, alpha and mean back
// bit-for-bit — the constant-liar batch contract.
func TestGPRetractRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := randomData(rng, 20, 3)
	g := New(NewMatern52(3, 0.3), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	wantL := append([]float64(nil), g.chol.L.Data...)
	wantAlpha := append([]float64(nil), g.alpha...)
	wantMean := g.Mean

	fx, fy := randomData(rng, 4, 3)
	for i := range fx {
		if err := g.Observe(fx[i], fy[i]); err != nil {
			t.Fatalf("fantasy observe %d: %v", i, err)
		}
	}
	if g.N() != len(xs)+len(fx) {
		t.Fatalf("n = %d", g.N())
	}
	for i := len(fx) - 1; i >= 0; i-- {
		if err := g.Retract(fx[i], fy[i]); err != nil {
			t.Fatalf("retract %d: %v", i, err)
		}
	}
	if g.N() != len(xs) {
		t.Fatalf("n after retract = %d", g.N())
	}
	for i, v := range g.chol.L.Data {
		if v != wantL[i] {
			t.Fatalf("factor entry %d not restored", i)
		}
	}
	for i, v := range g.alpha {
		if v != wantAlpha[i] {
			t.Fatalf("alpha entry %d not restored", i)
		}
	}
	if g.Mean != wantMean {
		t.Fatalf("mean not restored: %g vs %g", g.Mean, wantMean)
	}

	// Retracting a point that is not the most recent must fail.
	if err := g.Retract(xs[0], ys[0]); err == nil && len(xs) > 1 {
		t.Fatal("retract of non-trailing point succeeded")
	}
}

// TestGPRefitInvalidation pins the invalidation rule: a hyperparameter
// refit mid-session (after incremental observes) produces posteriors
// identical to a cold rebuild with the same hypers on the same data.
func TestGPRefitInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys := randomData(rng, 25, 3)

	g := New(NewMatern52(3, 0.3), 1e-4)
	if err := g.Fit(xs[:10], ys[:10]); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < len(xs); i++ {
		if err := g.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	newHypers := []float64{math.Log(1.7), math.Log(0.21), math.Log(0.45), math.Log(0.33), math.Log(2e-4)}
	if err := g.SetHypersAndRefit(newHypers); err != nil {
		t.Fatal(err)
	}

	cold := New(NewMatern52(3, 0.3), 1e-4)
	if err := cold.SetHypersAndRefit(append([]float64(nil), newHypers...)); err != nil {
		t.Fatal(err)
	}
	if err := cold.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		m1, v1 := g.Predict(q)
		m2, v2 := cold.Predict(q)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("post-refit posterior differs at %v: (%g,%g) vs (%g,%g)", q, m1, v1, m2, v2)
		}
	}
}

// TestGPObserveFallbackRefits forces an Extend failure — a duplicate
// point with the noise variance far below the diagonal's rounding
// granularity makes the extension numerically indefinite at the
// recorded (zero) jitter — and checks Observe transparently falls back
// to a full refit with jitter escalation that still answers queries.
func TestGPObserveFallbackRefits(t *testing.T) {
	kern := NewMatern52(2, 0.5)
	kern.Amp2 = 1e12 // noise/amp² ≈ 1e-22 < one ulp: duplicates round to singular
	g := New(kern, 1e-10)
	pt := []float64{0.4, 0.6}
	if err := g.Observe(pt, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(pt, 1.0); err != nil {
		t.Fatalf("duplicate observe: %v", err)
	}
	mu, sigma2 := g.Predict(pt)
	if math.IsNaN(mu) || math.IsNaN(sigma2) {
		t.Fatalf("degenerate posterior: %g, %g", mu, sigma2)
	}
	if g.Jitter() == 0 {
		t.Fatal("expected jitter escalation on the fallback path")
	}
}

// TestRFFDeterministic pins the reproducibility contract: same kernel,
// seed and observation sequence mean bitwise-identical posteriors;
// different seeds mean a different feature draw.
func TestRFFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs, ys := randomData(rng, 40, 3)
	build := func(seed int64) *RFF {
		r, err := NewRFF(NewMatern52(3, 0.3), 1e-4, 128, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if err := r.Observe(xs[i], ys[i]); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	a, b, c := build(7), build(7), build(8)
	q := []float64{0.3, 0.5, 0.7}
	ma, va := a.Predict(q)
	mb, vb := b.Predict(q)
	mc, _ := c.Predict(q)
	if ma != mb || va != vb {
		t.Fatalf("same seed diverged: (%g,%g) vs (%g,%g)", ma, va, mb, vb)
	}
	if ma == mc {
		t.Fatal("different seeds produced identical posterior mean")
	}
}

// TestRFFApproximatesGP checks approximation quality: with enough
// features the RFF posterior mean tracks the exact GP closely on held-
// out points, and retraction restores the pre-fantasy state to
// numerical precision.
func TestRFFApproximatesGP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs, ys := randomData(rng, 60, 2)

	exact := New(NewMatern52(2, 0.4), 1e-3)
	if err := exact.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	approx, err := NewRFF(NewMatern52(2, 0.4), 1e-3, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := approx.Observe(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}

	var se, sy float64
	for trial := 0; trial < 200; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		me, _ := exact.Predict(q)
		ma, _ := approx.Predict(q)
		se += (me - ma) * (me - ma)
		sy += me * me
	}
	if rel := math.Sqrt(se / sy); rel > 0.15 {
		t.Fatalf("rff posterior mean too far from exact GP: relative rmse %g", rel)
	}

	// Fantasy round trip.
	q := []float64{0.25, 0.75}
	m0, v0 := approx.Predict(q)
	fx := []float64{0.9, 0.1}
	if err := approx.Observe(fx, -1.3); err != nil {
		t.Fatal(err)
	}
	if err := approx.Retract(fx, -1.3); err != nil {
		t.Fatal(err)
	}
	m1, v1 := approx.Predict(q)
	if math.Abs(m0-m1) > 1e-8 || math.Abs(v0-v1) > 1e-8 {
		t.Fatalf("fantasy round trip drifted: (%g,%g) vs (%g,%g)", m0, v0, m1, v1)
	}
}
