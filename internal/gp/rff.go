package gp

import (
	"fmt"
	"math"
	"math/rand"

	"stormtune/internal/linalg"
)

// RFF is a random-Fourier-feature approximation of GP regression
// (Rahimi & Recht): the kernel is approximated by an explicit
// m-dimensional feature map φ(x) = √(2σ²/m)·cos(Wx + b), turning the
// posterior into Bayesian linear regression over the features. Observe
// is a rank-1 Cholesky update of the m×m feature Gram factor — O(m²),
// constant in the number of observations — which is what keeps a
// months-long tuning session with tens of thousands of trials
// responsive. Retract is the matching rank-1 downdate.
//
// The frequency matrix W and phases b are drawn once at construction
// from a fixed seed, so every posterior quantity is deterministic for a
// given (kernel hypers, seed, observation sequence) — the same
// reproducibility contract stormlint enforces on the exact path.
// Hyperparameters are frozen at construction: changing them means
// building a new RFF (internal/bo freezes hypers when it crosses the
// approximation threshold).
type RFF struct {
	Noise float64 // observation noise variance σ_n²
	Prior func(x []float64) float64

	m     int
	dim   int
	amp2  float64
	w     []float64 // m×dim frequency rows, flattened
	phase []float64 // m phases in [0, 2π)
	scale float64   // √(2·amp²/m)

	chol     *linalg.Cholesky // factor of ΦᵀΦ + σ_n² I (m×m)
	bRaw     []float64        // Σ_i φ(x_i)·resid_i
	sPhi     []float64        // Σ_i φ(x_i)
	sumResid float64
	n        int
	mean     float64
	wmean    []float64 // posterior weight mean A⁻¹(bRaw − mean·sPhi)
	phi      []float64 // Observe/Retract scratch
	rhs      []float64 // refresh scratch: right-hand side
	fwdBuf   []float64 // refresh scratch: forward-solve output
}

// NewRFF builds an m-feature approximation of the given kernel at its
// current hyperparameters. Matérn-5/2 frequencies are sampled from the
// kernel's spectral density (a multivariate t with 5 degrees of
// freedom: scaled Gaussian draws divided by √(χ²₅/5)); squared
// exponential uses plain Gaussian frequencies. Unsupported kernels
// return an error so callers can stay on the exact path.
func NewRFF(kern Kernel, noise float64, m int, seed int64) (*RFF, error) {
	if m <= 0 {
		return nil, fmt.Errorf("gp: rff needs m > 0, got %d", m)
	}
	if noise < 1e-10 {
		noise = 1e-10
	}
	var (
		amp2    float64
		lengths []float64
		matern  bool
	)
	switch k := kern.(type) {
	case *Matern52:
		amp2, lengths, matern = k.Amp2, k.Lengths, true
	case *SquaredExp:
		amp2, lengths, matern = k.Amp2, k.Lengths, false
	default:
		return nil, fmt.Errorf("gp: rff does not support kernel %T", kern)
	}
	d := len(lengths)
	r := &RFF{
		Noise:  noise,
		m:      m,
		dim:    d,
		amp2:   amp2,
		w:      make([]float64, m*d),
		phase:  make([]float64, m),
		scale:  math.Sqrt(2 * amp2 / float64(m)),
		bRaw:   make([]float64, m),
		sPhi:   make([]float64, m),
		wmean:  make([]float64, m),
		phi:    make([]float64, m),
		rhs:    make([]float64, m),
		fwdBuf: make([]float64, m),
	}
	rng := rand.New(rand.NewSource(seed))
	for j := 0; j < m; j++ {
		row := r.w[j*d : (j+1)*d]
		for k := 0; k < d; k++ {
			row[k] = rng.NormFloat64() / lengths[k]
		}
		if matern {
			// t-distributed frequencies with 2ν = 5 dof: scale the
			// Gaussian row by √(5/q), q ~ χ²₅.
			q := 0.0
			for t := 0; t < 5; t++ {
				g := rng.NormFloat64()
				q += g * g
			}
			f := math.Sqrt(5 / q)
			for k := range row {
				row[k] *= f
			}
		}
		r.phase[j] = 2 * math.Pi * rng.Float64()
	}
	// Zero observations: A = σ_n² I, so L = σ_n·I directly.
	l := linalg.NewMatrix(m, m)
	sn := math.Sqrt(noise)
	for j := 0; j < m; j++ {
		l.Data[j*m+j] = sn
	}
	r.chol = &linalg.Cholesky{L: l}
	return r, nil
}

// prior evaluates the prior mean, zero when unset.
func (r *RFF) prior(x []float64) float64 {
	if r.Prior == nil {
		return 0
	}
	return r.Prior(x)
}

// features fills dst with φ(x).
func (r *RFF) features(x []float64, dst []float64) {
	for j := 0; j < r.m; j++ {
		s := r.phase[j]
		row := r.w[j*r.dim : (j+1)*r.dim]
		for k, v := range x {
			s += row[k] * v
		}
		dst[j] = r.scale * math.Cos(s)
	}
}

// N returns the number of conditioning observations.
func (r *RFF) N() int { return r.n }

// M returns the number of random features.
func (r *RFF) M() int { return r.m }

// Observe folds one observation into the model: a rank-1 update of the
// feature Gram factor plus O(m) accumulator updates, independent of how
// many observations came before. It cannot fail (a rank-1 update
// preserves positive definiteness) but keeps the error in its signature
// to satisfy Surrogate.
func (r *RFF) Observe(x []float64, y float64) error {
	r.features(x, r.phi)
	resid := y - r.prior(x)
	r.chol.Update(r.phi)
	for j, p := range r.phi {
		r.bRaw[j] += p * resid
		r.sPhi[j] += p
	}
	r.sumResid += resid
	r.n++
	r.refresh()
	return nil
}

// Retract removes a previously observed point via the matching rank-1
// downdate. Callers retract in reverse observation order (the constant-
// liar contract); downdating a point that was actually observed cannot
// make the Gram matrix indefinite except through rounding, in which
// case the factor is left unchanged and the error tells the caller to
// rebuild.
func (r *RFF) Retract(x []float64, y float64) error {
	if r.n == 0 {
		return fmt.Errorf("gp: retract on empty rff model")
	}
	r.features(x, r.phi)
	if err := r.chol.Downdate(r.phi); err != nil {
		return err
	}
	resid := y - r.prior(x)
	for j, p := range r.phi {
		r.bRaw[j] -= p * resid
		r.sPhi[j] -= p
	}
	r.sumResid -= resid
	r.n--
	r.refresh()
	return nil
}

// refresh recomputes the constant mean and posterior weight mean after
// an Observe/Retract: solve (ΦᵀΦ + σ_n² I) w = Φᵀ(resid − mean).
func (r *RFF) refresh() {
	if r.n == 0 {
		r.mean = 0
		for j := range r.wmean {
			r.wmean[j] = 0
		}
		return
	}
	r.mean = r.sumResid / float64(r.n)
	for j := range r.rhs {
		r.rhs[j] = r.bRaw[j] - r.mean*r.sPhi[j]
	}
	r.chol.ForwardSolveInto(r.fwdBuf, r.rhs)
	r.chol.BackSolveInto(r.wmean, r.fwdBuf)
}

// Predict returns the approximate posterior mean and latent variance at
// xs.
func (r *RFF) Predict(xs []float64) (mu, sigma2 float64) {
	var s Scratch
	return r.PredictInto(&s, xs)
}

// PredictInto is Predict with caller-owned scratch: φ(xs) into the
// scratch, mean from the weight posterior, variance from one triangular
// solve — O(m²) per query, constant in n.
func (r *RFF) PredictInto(s *Scratch, xs []float64) (mu, sigma2 float64) {
	s.ensure(r.m)
	r.features(xs, s.kstar)
	mu = r.prior(xs) + r.mean + linalg.Dot(s.kstar, r.wmean)
	r.chol.ForwardSolveInto(s.v, s.kstar)
	sigma2 = r.Noise * linalg.Dot(s.v, s.v)
	if sigma2 < 0 {
		sigma2 = 0
	}
	return mu, sigma2
}

var (
	_ Surrogate = (*GP)(nil)
	_ Surrogate = (*RFF)(nil)
)
