package gp

import (
	"errors"
	"fmt"
	"math"

	"stormtune/internal/linalg"
)

// GP is a Gaussian-process regressor with a constant mean function and
// i.i.d. Gaussian observation noise. Fit must be called before Predict.
type GP struct {
	Kern  Kernel
	Noise float64 // observation noise variance σ_n²
	Mean  float64 // constant mean m(x) = Mean

	// Prior, when set, is an explicit prior mean function m₀(x): the GP
	// models residuals y − m₀(x) around the fitted constant, and
	// predictions add m₀(xs) back. This is the transfer-learning hook —
	// a model fit on archived runs biases where the surrogate expects
	// good objectives before any local data says otherwise. Nil means
	// m₀ ≡ 0 (the classic constant-mean GP).
	Prior func(x []float64) float64

	x     [][]float64
	y     []float64
	chol  *linalg.Cholesky
	alpha []float64 // K⁻¹ (y - m)
}

// prior evaluates the prior mean, zero when unset.
func (g *GP) prior(x []float64) float64 {
	if g.Prior == nil {
		return 0
	}
	return g.Prior(x)
}

// New creates a GP with the given kernel and noise variance. A zero
// noise variance is clamped to a small positive value for stability.
func New(k Kernel, noise float64) *GP {
	if noise < 1e-10 {
		noise = 1e-10
	}
	return &GP{Kern: k, Noise: noise}
}

// ErrNoData is returned by Fit when given no observations.
var ErrNoData = errors.New("gp: no observations")

// Fit conditions the GP on observations (x, y). The constant mean is
// set to the sample mean of the prior-mean residuals y − m₀(x)
// (empirical-Bayes choice, as Spearmint does before standardizing);
// with no Prior that is simply the sample mean of y.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	n := len(x)
	g.x = x
	g.y = y
	resid := make([]float64, n)
	mean := 0.0
	for i, v := range y {
		resid[i] = v - g.prior(x[i])
		mean += resid[i]
	}
	g.Mean = mean / float64(n)

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kern.Eval(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Add(i, i, g.Noise)
	}
	ch, err := linalg.NewCholesky(k)
	if err != nil {
		return err
	}
	g.chol = ch
	for i := range resid {
		resid[i] -= g.Mean
	}
	g.alpha = ch.SolveVec(resid)
	return nil
}

// N returns the number of conditioning observations.
func (g *GP) N() int { return len(g.x) }

// Predict returns the posterior mean and variance of the latent
// function at xs. The variance excludes observation noise.
func (g *GP) Predict(xs []float64) (mu, sigma2 float64) {
	if g.chol == nil {
		return g.prior(xs) + g.Mean, g.Kern.Eval(xs, xs)
	}
	n := len(g.x)
	kstar := make([]float64, n)
	for i, xi := range g.x {
		kstar[i] = g.Kern.Eval(xs, xi)
	}
	mu = g.prior(xs) + g.Mean + linalg.Dot(kstar, g.alpha)
	v := g.chol.ForwardSolve(kstar)
	sigma2 = g.Kern.Eval(xs, xs) - linalg.Dot(v, v)
	if sigma2 < 0 {
		sigma2 = 0
	}
	return mu, sigma2
}

// LogMarginalLikelihood returns log p(y | x, θ) for the currently
// fitted data under the current hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := float64(len(g.y))
	resid := make([]float64, len(g.y))
	for i, v := range g.y {
		resid[i] = v - g.prior(g.x[i]) - g.Mean
	}
	return -0.5*linalg.Dot(resid, g.alpha) - 0.5*g.chol.LogDet() - 0.5*n*math.Log(2*math.Pi)
}

// hypers returns the full log-space parameter vector:
// [kernel hypers…, log noise].
func (g *GP) hypers() []float64 {
	kh := g.Kern.Hypers()
	return append(kh, math.Log(g.Noise))
}

// setHypers installs a full log-space parameter vector and refits.
func (g *GP) setHypers(h []float64) error {
	nk := len(g.Kern.Hypers())
	g.Kern.SetHypers(h[:nk])
	g.Noise = math.Exp(h[nk])
	if g.x == nil {
		return nil
	}
	return g.Fit(g.x, g.y)
}

// SetHypersAndRefit installs a full log-space hyperparameter vector
// (kernel hypers followed by log noise, as produced by
// SliceSampleHypers) and refits the GP on its current data.
func (g *GP) SetHypersAndRefit(h []float64) error {
	if len(h) != len(g.Kern.Hypers())+1 {
		return fmt.Errorf("gp: want %d hypers, got %d", len(g.Kern.Hypers())+1, len(h))
	}
	return g.setHypers(h)
}

// Clone returns a GP sharing no mutable state with g. Conditioning data
// slices are shared (they are never mutated).
func (g *GP) Clone() *GP {
	out := &GP{Kern: g.Kern.Clone(), Noise: g.Noise, Mean: g.Mean, Prior: g.Prior}
	if g.x != nil {
		// Refit to rebuild factorization against the cloned kernel.
		if err := out.Fit(g.x, g.y); err != nil {
			// Cloning a successfully fitted GP with identical
			// hyperparameters cannot fail; keep the zero state if it
			// somehow does.
			out.chol = nil
		}
	}
	return out
}
