// Package gp implements Gaussian-process regression as used by
// Spearmint: an ARD Matérn-5/2 (or squared-exponential) kernel over the
// unit hypercube, exact inference via Cholesky factorization, and
// marginalization of kernel hyperparameters by slice sampling.
//
// # Cache lifecycle
//
// A fitted GP caches its Cholesky factor and alpha vector across calls,
// and the residual vector y − m₀(x) that both derive from. The cache
// supports three transitions:
//
//   - Observe appends one observation by extending the cached factor in
//     place (linalg.Cholesky.Extend, O(n²)). The result is bit-identical
//     to refitting from scratch at the same jitter; if the extension is
//     not positive definite at the recorded jitter, Observe falls back
//     to a full refit with jitter escalation.
//   - Retract drops the most recently observed point (linalg's Shrink,
//     a trailing downdate), restoring the previous factor bit-for-bit.
//     Constant-liar fantasy points are always appended last so batch
//     proposal never pays a refactorization.
//   - Fit and SetHypersAndRefit invalidate everything: new
//     hyperparameters change every kernel matrix entry, so the factor is
//     rebuilt in O(n³). This is the only invalidation rule — anything
//     short of a refit reuses the cached factor.
//
// Posterior queries never mutate the cache: Predict/PredictInto read
// the cached factor and alpha, and PredictInto is allocation-free given
// a caller-owned Scratch (safe for concurrent readers, one Scratch per
// goroutine).
//
// # Exact / approximate switchover
//
// Exact inference costs O(n²) per observe and O(n) per posterior mean.
// Past a few thousand points that is too slow for a continuous tuning
// service, so RFF provides a random-Fourier-feature approximation with
// O(m²) observe and O(m) posterior cost, constant in n (m = number of
// features, deterministic for a fixed seed). Both satisfy Surrogate;
// internal/bo switches from GP to RFF past its ApproxAfter threshold.
package gp

import (
	"errors"
	"fmt"
	"math"

	"stormtune/internal/linalg"
)

// Surrogate is the posterior interface internal/bo consumes: an exact
// GP below the approximation threshold, an RFF model above it. Observe
// and Retract are incremental (no refactorization); Retract removes the
// most recently observed point and callers retract in reverse
// observation order.
type Surrogate interface {
	Predict(xs []float64) (mu, sigma2 float64)
	PredictInto(s *Scratch, xs []float64) (mu, sigma2 float64)
	Observe(x []float64, y float64) error
	Retract(x []float64, y float64) error
	N() int
}

// GP is a Gaussian-process regressor with a constant mean function and
// i.i.d. Gaussian observation noise. Fit must be called before Predict.
type GP struct {
	Kern  Kernel
	Noise float64 // observation noise variance σ_n²
	Mean  float64 // constant mean m(x) = Mean

	// Prior, when set, is an explicit prior mean function m₀(x): the GP
	// models residuals y − m₀(x) around the fitted constant, and
	// predictions add m₀(xs) back. This is the transfer-learning hook —
	// a model fit on archived runs biases where the surrogate expects
	// good objectives before any local data says otherwise. Nil means
	// m₀ ≡ 0 (the classic constant-mean GP).
	Prior func(x []float64) float64

	x     [][]float64
	y     []float64
	resid []float64 // y − m₀(x), uncentered (Mean is subtracted on solve)
	chol  *linalg.Cholesky
	alpha []float64 // K⁻¹ (y - m)

	// Scratch buffers reused across Fit calls (slice sampling refits the
	// same n repeatedly) and refreshAlpha.
	kmat     *linalg.Matrix
	centered []float64
	fwd      []float64
}

// prior evaluates the prior mean, zero when unset.
func (g *GP) prior(x []float64) float64 {
	if g.Prior == nil {
		return 0
	}
	return g.Prior(x)
}

// New creates a GP with the given kernel and noise variance. A zero
// noise variance is clamped to a small positive value for stability.
func New(k Kernel, noise float64) *GP {
	if noise < 1e-10 {
		noise = 1e-10
	}
	return &GP{Kern: k, Noise: noise}
}

// ErrNoData is returned by Fit when given no observations.
var ErrNoData = errors.New("gp: no observations")

// Fit conditions the GP on observations (x, y), rebuilding the cached
// factor from scratch (the refit invalidation path). The constant mean
// is set to the sample mean of the prior-mean residuals y − m₀(x)
// (empirical-Bayes choice, as Spearmint does before standardizing);
// with no Prior that is simply the sample mean of y.
//
// The observation slices are copied, so a later Observe on this GP
// never aliases the caller's backing arrays.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	n := len(x)
	g.x = append(g.x[:0], x...)
	g.y = append(g.y[:0], y...)
	if cap(g.resid) < n {
		g.resid = make([]float64, n)
	}
	g.resid = g.resid[:n]
	for i, v := range g.y {
		g.resid[i] = v - g.prior(g.x[i])
	}

	if g.kmat == nil || g.kmat.Rows != n {
		g.kmat = linalg.NewMatrix(n, n)
	}
	k := g.kmat
	for i := 0; i < n; i++ {
		row := k.Data[i*n : i*n+i+1]
		g.Kern.EvalRow(g.x[i], g.x[:i+1], row)
		for j := 0; j < i; j++ {
			k.Data[j*n+i] = row[j]
		}
		k.Data[i*n+i] = row[i] + g.Noise
	}
	ch, err := linalg.NewCholesky(k)
	if err != nil {
		return err
	}
	g.chol = ch
	g.refreshAlpha()
	return nil
}

// Observe appends one observation to a fitted GP, extending the cached
// factor in O(n²) instead of refitting in O(n³). The extended factor is
// bit-identical to what Fit would build on the same data at the same
// jitter; when the extension fails (the appended point makes the matrix
// indefinite at the recorded jitter) Observe transparently falls back
// to a full refit with jitter escalation. On an unfitted GP it behaves
// like a one-point Fit.
func (g *GP) Observe(x []float64, y float64) error {
	n := len(g.x)
	g.x = append(g.x, x)
	g.y = append(g.y, y)
	g.resid = append(g.resid, y-g.prior(x))
	if g.chol == nil || n == 0 {
		return g.Fit(g.x, g.y)
	}
	if cap(g.fwd) < n {
		g.fwd = make([]float64, n)
	}
	row := g.fwd[:n]
	g.Kern.EvalRow(x, g.x[:n], row)
	diag := g.Kern.Eval(x, x) + g.Noise
	if err := g.chol.Extend(row, diag); err != nil {
		return g.Fit(g.x, g.y)
	}
	g.refreshAlpha()
	return nil
}

// Retract removes the most recently observed point, restoring the
// previous factor bit-for-bit (a trailing downdate via Shrink). The
// arguments identify the point for interface symmetry with RFF, which
// needs them; the GP only checks that x matches the trailing row.
// Retracting the last remaining point returns the GP to its unfitted
// state.
func (g *GP) Retract(x []float64, y float64) error {
	n := len(g.x)
	if n == 0 {
		return errors.New("gp: retract on empty GP")
	}
	if x != nil && len(g.x[n-1]) == len(x) {
		for i, v := range x {
			if g.x[n-1][i] != v {
				return errors.New("gp: retract point is not the most recent observation")
			}
		}
	}
	g.x = g.x[:n-1]
	g.y = g.y[:n-1]
	g.resid = g.resid[:n-1]
	if n == 1 {
		g.chol = nil
		g.alpha = nil
		g.Mean = 0
		return nil
	}
	if err := g.chol.Shrink(n - 1); err != nil {
		return err
	}
	g.refreshAlpha()
	return nil
}

// refreshAlpha recomputes the constant mean and alpha vector from the
// cached residuals and factor. The accumulation order matches Fit's, so
// an incrementally maintained GP and a freshly fitted one agree
// bit-for-bit.
func (g *GP) refreshAlpha() {
	n := len(g.resid)
	mean := 0.0
	for _, r := range g.resid {
		mean += r
	}
	g.Mean = mean / float64(n)
	if cap(g.centered) < n {
		g.centered = make([]float64, n)
		g.fwd = make([]float64, n)
	}
	c := g.centered[:n]
	for i, r := range g.resid {
		c[i] = r - g.Mean
	}
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.chol.ForwardSolveInto(g.fwd[:n], c)
	g.chol.BackSolveInto(g.alpha, g.fwd[:n])
}

// N returns the number of conditioning observations.
func (g *GP) N() int { return len(g.x) }

// Jitter reports the diagonal jitter of the cached factorization, zero
// when unfitted.
func (g *GP) Jitter() float64 {
	if g.chol == nil {
		return 0
	}
	return g.chol.Jitter
}

// Scratch holds per-caller buffers for PredictInto. A single Scratch
// must not be shared between goroutines; the model itself may be read
// concurrently.
type Scratch struct {
	kstar []float64
	v     []float64
}

func (s *Scratch) ensure(n int) {
	if cap(s.kstar) < n {
		s.kstar = make([]float64, n)
		s.v = make([]float64, n)
	}
	s.kstar = s.kstar[:n]
	s.v = s.v[:n]
}

// Predict returns the posterior mean and variance of the latent
// function at xs. The variance excludes observation noise.
func (g *GP) Predict(xs []float64) (mu, sigma2 float64) {
	var s Scratch
	return g.PredictInto(&s, xs)
}

// PredictInto is Predict with caller-owned scratch buffers: zero
// allocations after the first call on a given Scratch, the form the
// acquisition scorer uses per candidate.
func (g *GP) PredictInto(s *Scratch, xs []float64) (mu, sigma2 float64) {
	if g.chol == nil {
		return g.prior(xs) + g.Mean, g.Kern.Eval(xs, xs)
	}
	n := len(g.x)
	s.ensure(n)
	g.Kern.EvalRow(xs, g.x, s.kstar)
	mu = g.prior(xs) + g.Mean + linalg.Dot(s.kstar, g.alpha)
	g.chol.ForwardSolveInto(s.v, s.kstar)
	sigma2 = g.Kern.Eval(xs, xs) - linalg.Dot(s.v, s.v)
	if sigma2 < 0 {
		sigma2 = 0
	}
	return mu, sigma2
}

// LogMarginalLikelihood returns log p(y | x, θ) for the currently
// fitted data under the current hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := float64(len(g.y))
	resid := make([]float64, len(g.resid))
	for i, r := range g.resid {
		resid[i] = r - g.Mean
	}
	return -0.5*linalg.Dot(resid, g.alpha) - 0.5*g.chol.LogDet() - 0.5*n*math.Log(2*math.Pi)
}

// HyperVector returns the current full log-space hyperparameter vector
// (kernel hypers followed by log noise) — the parameterization
// SliceSampleHypers and SetHypersAndRefit speak.
func (g *GP) HyperVector() []float64 { return g.hypers() }

// hypers returns the full log-space parameter vector:
// [kernel hypers…, log noise].
func (g *GP) hypers() []float64 {
	kh := g.Kern.Hypers()
	return append(kh, math.Log(g.Noise))
}

// setHypers installs a full log-space parameter vector and refits.
func (g *GP) setHypers(h []float64) error {
	nk := len(g.Kern.Hypers())
	g.Kern.SetHypers(h[:nk])
	g.Noise = math.Exp(h[nk])
	if g.x == nil {
		return nil
	}
	return g.Fit(g.x, g.y)
}

// SetHypersAndRefit installs a full log-space hyperparameter vector
// (kernel hypers followed by log noise, as produced by
// SliceSampleHypers) and refits the GP on its current data. This is the
// cache invalidation point: every cached quantity — kernel matrix,
// factor, alpha — is rebuilt under the new hyperparameters.
func (g *GP) SetHypersAndRefit(h []float64) error {
	if len(h) != len(g.Kern.Hypers())+1 {
		return fmt.Errorf("gp: want %d hypers, got %d", len(g.Kern.Hypers())+1, len(h))
	}
	return g.setHypers(h)
}

// Clone returns a GP sharing no mutable state with g. Conditioning data
// slices are shared (they are never mutated).
func (g *GP) Clone() *GP {
	out := &GP{Kern: g.Kern.Clone(), Noise: g.Noise, Mean: g.Mean, Prior: g.Prior}
	if g.x != nil {
		// Refit to rebuild factorization against the cloned kernel.
		if err := out.Fit(g.x, g.y); err != nil {
			// Cloning a successfully fitted GP with identical
			// hyperparameters cannot fail; keep the zero state if it
			// somehow does.
			out.chol = nil
		}
	}
	return out
}
