package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSetHypersAndRefitValidation(t *testing.T) {
	g := New(NewMatern52(2, 0.3), 1e-4)
	if err := g.SetHypersAndRefit([]float64{0, 0}); err == nil {
		t.Fatal("wrong-length hypers accepted")
	}
	x := [][]float64{{0.1, 0.1}, {0.9, 0.2}}
	y := []float64{1, 2}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	h := append(g.Kern.Hypers(), math.Log(1e-3))
	if err := g.SetHypersAndRefit(h); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Noise-1e-3) > 1e-12 {
		t.Fatalf("noise = %v, want 1e-3", g.Noise)
	}
}

func TestLogMarginalBeforeFit(t *testing.T) {
	g := New(NewMatern52(1, 0.3), 1e-4)
	if !math.IsInf(g.LogMarginalLikelihood(), -1) {
		t.Fatal("LML before fit should be -Inf")
	}
}

func TestSetHypersPanicsOnKernelMismatch(t *testing.T) {
	k := NewMatern52(2, 0.3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.SetHypers([]float64{0})
}

func TestSliceSamplerRecoversFromBadStart(t *testing.T) {
	// A start so extreme that the posterior is -Inf forces the
	// sampler's reset path.
	rng := rand.New(rand.NewSource(3))
	x := [][]float64{{0.1}, {0.5}, {0.9}}
	y := []float64{0, 1, 0}
	g := New(NewMatern52(1, math.Exp(200)), math.Exp(200))
	_ = g.Fit(x, y)
	samples := g.SliceSampleHypers(rng, 4, 1)
	if len(samples) != 4 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("degenerate sample %v", s)
			}
		}
	}
}

func TestHyperPriorPrefersModerateValues(t *testing.T) {
	moderate := []float64{math.Log(0.3), math.Log(0.3)}
	extreme := []float64{math.Log(1e6), math.Log(1e-9)}
	if hyperPrior(moderate) <= hyperPrior(extreme) {
		t.Fatal("prior should prefer moderate hyperparameters")
	}
}
