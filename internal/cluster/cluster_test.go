package cluster

import (
	"testing"
	"testing/quick"
)

func TestPaperSpec(t *testing.T) {
	s := Paper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalCores() != 320 {
		t.Fatalf("paper cluster has %d cores, want 320", s.TotalCores())
	}
	if s.Machines != 80 {
		t.Fatalf("paper cluster has %d machines, want 80", s.Machines)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Machines: -1, CoresPerMachine: 4, CoreMillisPerSec: 1000, NICBytesPerSec: 1, TaskSlotsPerMachine: 1},
		{Machines: 1, CoresPerMachine: 4, CoreMillisPerSec: 0, NICBytesPerSec: 1, TaskSlotsPerMachine: 1},
		{Machines: 1, CoresPerMachine: 4, CoreMillisPerSec: 1, NICBytesPerSec: 1, TaskSlotsPerMachine: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestPlaceRoundRobinSpreads(t *testing.T) {
	spec := Spec{Machines: 4, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 1, TaskSlotsPerMachine: 10, ThrashTasksPerCore: 4}
	p := PlaceRoundRobin(spec, []int{4, 4})
	// 8 tasks over 4 machines → exactly 2 per machine.
	for m, n := range p.TasksOn {
		if n != 2 {
			t.Fatalf("machine %d has %d tasks, want 2", m, n)
		}
	}
	// Each node's instances land on all 4 machines.
	for node := 0; node < 2; node++ {
		seen := map[int]bool{}
		for _, tid := range p.NodeTasks[node] {
			seen[p.MachineOf[tid]] = true
		}
		if len(seen) != 4 {
			t.Fatalf("node %d spread over %d machines, want 4", node, len(seen))
		}
	}
}

func TestPlacementOverload(t *testing.T) {
	spec := Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 1, TaskSlotsPerMachine: 3, ThrashTasksPerCore: 4}
	if PlaceRoundRobin(spec, []int{6}).Overloaded() {
		t.Fatal("6 tasks on 2×3 slots should fit")
	}
	if !PlaceRoundRobin(spec, []int{7}).Overloaded() {
		t.Fatal("7 tasks on 2×3 slots should overload")
	}
}

func TestQuickPlacementConservation(t *testing.T) {
	spec := Paper()
	f := func(a, b, c uint8) bool {
		counts := []int{1 + int(a)%50, 1 + int(b)%50, 1 + int(c)%50}
		p := PlaceRoundRobin(spec, counts)
		total := 0
		for _, n := range p.TasksOn {
			total += n
		}
		want := counts[0] + counts[1] + counts[2]
		if total != want || len(p.MachineOf) != want {
			return false
		}
		// Per-machine balance within 1 of ceiling.
		if p.MaxTasksOnAnyMachine() > (want+spec.Machines-1)/spec.Machines+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxConcurrentTrials(t *testing.T) {
	s := Paper() // 80 × 48 = 3840 slots
	if got := s.MaxConcurrentTrials(100); got != 38 {
		t.Fatalf("MaxConcurrentTrials(100) = %d, want 38", got)
	}
	// A trial bigger than the cluster still gets one sequential slot.
	if got := s.MaxConcurrentTrials(10000); got != 1 {
		t.Fatalf("oversized trial should report 1, got %d", got)
	}
	if got := s.MaxConcurrentTrials(0); got != 1 {
		t.Fatalf("degenerate task count should report 1, got %d", got)
	}
}

func TestMaxConcurrentTrialsEdgeCases(t *testing.T) {
	s := Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 1, TaskSlotsPerMachine: 8, ThrashTasksPerCore: 2} // 16 slots
	cases := []struct {
		tasksPerTrial, want int
		why                 string
	}{
		{-5, 1, "negative task count degrades to the sequential baseline"},
		{0, 1, "zero task count degrades to the sequential baseline"},
		{16, 1, "exact-fit single trial occupies the whole cluster"},
		{17, 1, "trial larger than the cluster still gets one sequential slot"},
		{8, 2, "exact-fit boundary: two trials pack with no slack"},
		{7, 2, "just under the boundary must not round up to 3"},
		{5, 3, "16/5 truncates to 3"},
		{1, 16, "one-task trials fill every slot"},
	}
	for _, c := range cases {
		if got := s.MaxConcurrentTrials(c.tasksPerTrial); got != c.want {
			t.Errorf("MaxConcurrentTrials(%d) = %d, want %d: %s", c.tasksPerTrial, got, c.want, c.why)
		}
	}
	// The bound never exceeds the slot count and is always ≥ 1.
	for tasks := -2; tasks <= 20; tasks++ {
		got := s.MaxConcurrentTrials(tasks)
		if got < 1 || got > s.TotalTaskSlots() {
			t.Fatalf("MaxConcurrentTrials(%d) = %d out of [1, %d]", tasks, got, s.TotalTaskSlots())
		}
	}
}
