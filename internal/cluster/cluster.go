// Package cluster models the physical substrate the paper ran on: 80
// commodity machines (iMacs: 4 cores at 2.7 GHz, 8 GB RAM, 1 Gbps NICs)
// joined through rack switches, managed by a YARN-like scheduler that
// places one Storm worker per machine and assigns task instances to
// workers round-robin (Storm's even scheduler).
package cluster

import "fmt"

// Spec describes a homogeneous cluster.
type Spec struct {
	Machines int
	// CoresPerMachine is the per-machine parallel compute capacity.
	CoresPerMachine int
	// CoreMillisPerSec is the compute budget of one core per wall
	// second (1000 = one compute unit ≈ 1 ms of busy wait, §IV-B1).
	CoreMillisPerSec float64
	// NICBytesPerSec is the per-machine network bandwidth (1 Gbps ≈
	// 128 MB/s in the paper's setup).
	NICBytesPerSec float64
	// TaskSlotsPerMachine bounds how many task instances a worker can
	// host before the JVM is memory-exhausted and the topology fails to
	// run (the "zero performance" the pla stopping rule watches for).
	TaskSlotsPerMachine int
	// ThrashTasksPerCore is the oversubscription level beyond which
	// context switching starts to tax throughput.
	ThrashTasksPerCore float64
}

// Paper returns the evaluation cluster of §IV-C: 80 machines × 4 cores.
func Paper() Spec {
	return Spec{
		Machines:            80,
		CoresPerMachine:     4,
		CoreMillisPerSec:    1000,
		NICBytesPerSec:      128e6,
		TaskSlotsPerMachine: 48,
		ThrashTasksPerCore:  2,
	}
}

// Small returns a laptop-scale cluster for examples and fast tests.
func Small() Spec {
	return Spec{
		Machines:            4,
		CoresPerMachine:     4,
		CoreMillisPerSec:    1000,
		NICBytesPerSec:      128e6,
		TaskSlotsPerMachine: 48,
		ThrashTasksPerCore:  2,
	}
}

// Validate sanity-checks the spec.
func (s Spec) Validate() error {
	if s.Machines <= 0 || s.CoresPerMachine <= 0 {
		return fmt.Errorf("cluster: need positive machines and cores, got %d×%d", s.Machines, s.CoresPerMachine)
	}
	if s.CoreMillisPerSec <= 0 || s.NICBytesPerSec <= 0 {
		return fmt.Errorf("cluster: need positive core and NIC capacity")
	}
	if s.TaskSlotsPerMachine <= 0 {
		return fmt.Errorf("cluster: need positive task slots")
	}
	return nil
}

// TotalCores returns the cluster-wide core count (the paper's "320
// cores").
func (s Spec) TotalCores() int { return s.Machines * s.CoresPerMachine }

// TotalTaskSlots returns the cluster-wide instance capacity.
func (s Spec) TotalTaskSlots() int { return s.Machines * s.TaskSlotsPerMachine }

// MaxConcurrentTrials reports how many trial deployments, each needing
// tasksPerTrial task instances, the cluster can host side by side —
// the capacity bound a batch-suggesting tuner should respect when
// picking its batch size. At least one trial always fits (the
// sequential baseline).
func (s Spec) MaxConcurrentTrials(tasksPerTrial int) int {
	if tasksPerTrial <= 0 {
		return 1
	}
	n := s.TotalTaskSlots() / tasksPerTrial
	if n < 1 {
		n = 1
	}
	return n
}

// Placement maps task instances onto machines.
type Placement struct {
	Spec Spec
	// MachineOf[globalTask] = machine index.
	MachineOf []int
	// TasksOn[machine] = number of instances hosted.
	TasksOn []int
	// NodeTasks[node] = global task ids of that node's instances.
	NodeTasks [][]int
}

// PlaceRoundRobin distributes counts[node] instances of each node over
// the machines in Storm's even-scheduler style: tasks are dealt one
// machine at a time in node order, wrapping around the cluster, so
// every node's instances spread as widely as possible.
func PlaceRoundRobin(spec Spec, counts []int) *Placement {
	total := 0
	for _, c := range counts {
		total += c
	}
	p := &Placement{
		Spec:      spec,
		MachineOf: make([]int, total),
		TasksOn:   make([]int, spec.Machines),
		NodeTasks: make([][]int, len(counts)),
	}
	gid := 0
	m := 0
	for node, c := range counts {
		p.NodeTasks[node] = make([]int, 0, c)
		for i := 0; i < c; i++ {
			p.MachineOf[gid] = m
			p.TasksOn[m]++
			p.NodeTasks[node] = append(p.NodeTasks[node], gid)
			gid++
			m = (m + 1) % spec.Machines
		}
	}
	return p
}

// Overloaded reports whether any machine exceeds its task-slot budget —
// the condition under which the simulated topology fails to start and
// measures zero throughput.
func (p *Placement) Overloaded() bool {
	for _, n := range p.TasksOn {
		if n > p.Spec.TaskSlotsPerMachine {
			return true
		}
	}
	return false
}

// MaxTasksOnAnyMachine returns the placement's peak per-machine load.
func (p *Placement) MaxTasksOnAnyMachine() int {
	m := 0
	for _, n := range p.TasksOn {
		if n > m {
			m = n
		}
	}
	return m
}
