// Package storm simulates a Storm/Trident deployment well enough to
// serve as the black-box objective function the paper optimizes: given
// a topology, a cluster and a configuration (Table I), it returns the
// sustained throughput a two-minute measurement run would observe,
// including measurement noise.
//
// Two evaluators implement the same contract. FluidSim solves for the
// steady-state maximum rate analytically (fast; used inside
// optimization loops, where the paper burned two minutes of cluster
// time per sample). BatchDES replays the Trident batch pipeline as a
// discrete-event simulation (used for validation and examples). Both
// model the mechanisms the paper identifies as shaping performance:
// per-tuple busy-wait cost, resource contention that scales service
// time with the instance count, scheduler capacity, batch pipelining,
// acker bookkeeping, receiver threads and the worker thread pool.
package storm

import (
	"fmt"
	"hash/fnv"
	"math"

	"stormtune/internal/topo"
)

// Config carries the Table I parameters.
type Config struct {
	// Hints holds the parallelism hint for each topology node, in node
	// index order. Values are pre-normalization ("Storm may change
	// these hints for consistency purposes").
	Hints []int
	// MaxTasks caps the total task-instance count; hints are scaled
	// down proportionally when their sum exceeds it (§V-A: "we
	// normalized the chosen hints using the max-task parameter").
	// Zero means no cap.
	MaxTasks int
	// BatchSize is the number of source tuples per Trident mini-batch.
	BatchSize int
	// BatchParallelism is the number of batches processed in parallel
	// (pipeline parallelism).
	BatchParallelism int
	// WorkerThreads is the per-worker thread-pool size.
	WorkerThreads int
	// ReceiverThreads is the number of message-receiver threads per
	// worker.
	ReceiverThreads int
	// Ackers is the total number of acker tasks; 0 selects Storm's
	// default of one per worker host.
	Ackers int
}

// DefaultConfig mirrors the manually tuned deployment of §V-D: batch
// size 50 000, batch parallelism 5, a worker thread pool of 8 on 4-core
// hosts, one receiver thread, and one acker per worker.
func DefaultConfig(t *topo.Topology, hint int) Config {
	hints := make([]int, t.N())
	for i := range hints {
		hints[i] = hint
	}
	return Config{
		Hints:            hints,
		BatchSize:        50000,
		BatchParallelism: 5,
		WorkerThreads:    8,
		ReceiverThreads:  1,
		Ackers:           0,
	}
}

// DefaultSyntheticConfig is the fixed batching configuration used for
// the synthetic parallelism experiments (§V-A tunes hints only): small
// mini-batches keep the pipeline bound from dominating the CPU
// behaviour under 20 ms tuples.
func DefaultSyntheticConfig(t *topo.Topology, hint int) Config {
	c := DefaultConfig(t, hint)
	c.BatchSize = 50
	c.BatchParallelism = 32
	return c
}

// Validate checks the config against a topology.
func (c Config) Validate(t *topo.Topology) error {
	if len(c.Hints) != t.N() {
		return fmt.Errorf("storm: %d hints for %d nodes", len(c.Hints), t.N())
	}
	for i, h := range c.Hints {
		if h < 1 {
			return fmt.Errorf("storm: hint[%d]=%d must be ≥1", i, h)
		}
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("storm: batch size %d must be ≥1", c.BatchSize)
	}
	if c.BatchParallelism < 1 {
		return fmt.Errorf("storm: batch parallelism %d must be ≥1", c.BatchParallelism)
	}
	if c.WorkerThreads < 1 {
		return fmt.Errorf("storm: worker threads %d must be ≥1", c.WorkerThreads)
	}
	if c.ReceiverThreads < 1 {
		return fmt.Errorf("storm: receiver threads %d must be ≥1", c.ReceiverThreads)
	}
	if c.Ackers < 0 {
		return fmt.Errorf("storm: ackers %d must be ≥0", c.Ackers)
	}
	if c.MaxTasks < 0 {
		return fmt.Errorf("storm: max tasks %d must be ≥0", c.MaxTasks)
	}
	return nil
}

// NormalizedHints applies the max-tasks normalization: when the hint
// sum exceeds MaxTasks, hints are scaled proportionally, flooring at 1
// instance per node.
func (c Config) NormalizedHints() []int {
	out := make([]int, len(c.Hints))
	copy(out, c.Hints)
	if c.MaxTasks <= 0 {
		return out
	}
	sum := 0
	for _, h := range out {
		sum += h
	}
	if sum <= c.MaxTasks {
		return out
	}
	scale := float64(c.MaxTasks) / float64(sum)
	for i, h := range out {
		v := int(math.Floor(float64(h) * scale))
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// TotalTasks returns the post-normalization instance count.
func (c Config) TotalTasks() int {
	s := 0
	for _, h := range c.NormalizedHints() {
		s += h
	}
	return s
}

// Clone deep-copies the config.
func (c Config) Clone() Config {
	out := c
	out.Hints = append([]int(nil), c.Hints...)
	return out
}

// Fingerprint hashes the configuration; the noise model uses it so that
// repeated runs of the same configuration see run-to-run variation
// while distinct configurations get independent draws.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, hint := range c.Hints {
		wr(hint)
	}
	wr(c.MaxTasks)
	wr(c.BatchSize)
	wr(c.BatchParallelism)
	wr(c.WorkerThreads)
	wr(c.ReceiverThreads)
	wr(c.Ackers)
	return h.Sum64()
}
