package storm

import (
	"math"
	"time"
)

// JitterEval wraps an evaluator so every Run additionally takes a
// deterministic, heavy-tailed amount of wall-clock time. Real trial
// deployments do not finish in lock-step — JVM warmup, scheduler queue
// position and interference stretch some runs far past the median
// (§IV-C1 mentions students using the machines mid-evaluation) — and
// this wrapper reproduces that skew so the dispatch experiments can
// measure how barrier batching and free-slot refill cope with it.
type JitterEval struct {
	Inner Evaluator
	// Base is the minimum trial duration (the Pareto scale).
	Base time.Duration
	// Alpha is the Pareto tail index; smaller means heavier tails
	// (default 1.3 — infinite variance, like real stragglers).
	Alpha float64
	// Cap bounds a single trial's duration (default 25×Base).
	Cap time.Duration
	// Seed decorrelates experiments; durations are deterministic given
	// (Seed, config fingerprint, run index).
	Seed int64
}

// Jittered wraps ev with heavy-tailed per-trial durations.
func Jittered(ev Evaluator, base time.Duration, seed int64) *JitterEval {
	return &JitterEval{Inner: ev, Base: base, Alpha: 1.3, Cap: 25 * base, Seed: seed}
}

// Duration returns the wall-clock time one trial of cfg takes; it is a
// pure function of (Seed, cfg, runIndex).
func (j *JitterEval) Duration(cfg Config, runIndex int) time.Duration {
	h := cfg.Fingerprint() ^ uint64(runIndex)*0x9e3779b97f4a7c15 ^ uint64(j.Seed)*0xbf58476d1ce4e5b9
	// splitmix64 finalizer for well-mixed bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	u := float64(h>>11) / float64(1<<53) // uniform [0, 1)
	alpha := j.Alpha
	if alpha <= 0 {
		alpha = 1.3
	}
	d := time.Duration(float64(j.Base) * math.Pow(1-u, -1/alpha))
	cap := j.Cap
	if cap <= 0 {
		cap = 25 * j.Base
	}
	if d > cap {
		d = cap
	}
	if d < j.Base {
		d = j.Base
	}
	return d
}

// Run implements Evaluator: sleep the trial's duration, then measure.
func (j *JitterEval) Run(cfg Config, runIndex int) Result {
	time.Sleep(j.Duration(cfg, runIndex))
	return j.Inner.Run(cfg, runIndex)
}

// Metric implements Evaluator.
func (j *JitterEval) Metric() Metric { return j.Inner.Metric() }
