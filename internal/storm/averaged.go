package storm

// AveragedEvaluator wraps an Evaluator and measures every
// configuration k times, reporting the mean — the improvement the
// paper's §VI proposes as future work ("our setup could be improved by
// running each sampling run multiple times and by using the average
// performance for each tested parameter configuration"). Averaging
// reduces the noise the Gaussian process has to absorb at k times the
// sampling cost.
type AveragedEvaluator struct {
	Inner Evaluator
	K     int
}

// Averaged wraps ev so each Run averages k measurements. k < 1 is
// treated as 1.
func Averaged(ev Evaluator, k int) *AveragedEvaluator {
	if k < 1 {
		k = 1
	}
	return &AveragedEvaluator{Inner: ev, K: k}
}

// Metric implements Evaluator.
func (a *AveragedEvaluator) Metric() Metric { return a.Inner.Metric() }

// Run implements Evaluator: the K underlying runs use distinct run
// indices derived from runIndex so their noise draws are independent.
func (a *AveragedEvaluator) Run(cfg Config, runIndex int) Result {
	var acc Result
	ok := 0
	for i := 0; i < a.K; i++ {
		r := a.Inner.Run(cfg, runIndex*a.K+i)
		if r.Failed {
			// One failed run fails the configuration, as a real
			// deployment failure would.
			return r
		}
		acc.Throughput += r.Throughput
		acc.SpoutRate += r.SpoutRate
		acc.SinkRate += r.SinkRate
		acc.NetworkBytesPerWorker += r.NetworkBytesPerWorker
		acc.Bottleneck = r.Bottleneck
		acc.Tasks = r.Tasks
		ok++
	}
	n := float64(ok)
	acc.Throughput /= n
	acc.SpoutRate /= n
	acc.SinkRate /= n
	acc.NetworkBytesPerWorker /= n
	return acc
}
