package storm

import (
	"math"

	"stormtune/internal/cluster"
	"stormtune/internal/des"
	"stormtune/internal/topo"
)

// BatchDES replays the Trident mini-batch pipeline as a discrete-event
// simulation: batches are issued while fewer than BatchParallelism are
// in flight; at every node a batch's tuple share is split across the
// node's task instances, each instance job queues for a core on its
// machine, and a node stage completes when all its jobs finish (the
// per-batch barrier Trident's consistency guarantee implies). Batch
// completion pays the coordination overhead before the slot frees.
//
// It validates the FluidSim's CPU and pipeline behaviour; ackers,
// receiver threads and the NIC are fluid-only refinements.
type BatchDES struct {
	Topo    *topo.Topology
	Cluster cluster.Spec
	Costs   CostModel
	Noise   NoiseModel
	// ReportMetric selects the reported rate.
	ReportMetric Metric
	// WarmupBatches are excluded from the measurement (default 5).
	WarmupBatches int
	// MeasureBatches is the measurement length (default 40).
	MeasureBatches int
}

// NewBatchDES builds a DES evaluator with calibrated costs and no noise
// (its queueing already provides variation; tests want determinism).
func NewBatchDES(t *topo.Topology, spec cluster.Spec, metric Metric) *BatchDES {
	return &BatchDES{
		Topo:           t,
		Cluster:        spec,
		Costs:          DefaultCosts(),
		Noise:          NoNoise(),
		ReportMetric:   metric,
		WarmupBatches:  5,
		MeasureBatches: 40,
	}
}

// Metric implements Evaluator.
func (d *BatchDES) Metric() Metric { return d.ReportMetric }

// desInstance is one task instance: a single-threaded server with its
// own FIFO job queue. Jobs of the same instance never run concurrently
// (a Storm executor processes tuples sequentially), and a running job
// also occupies one core of the host machine.
type desInstance struct {
	busy   bool
	queued bool // present in the machine's ready list
	q      []*desJob
}

// machineQueue schedules instances onto the machine's cores.
type machineQueue struct {
	free  int
	ready []*desInstance // instances with waiting jobs, FIFO
}

type desJob struct {
	dur   float64 // seconds of core time
	batch *desBatch
	node  int
	inst  *desInstance
}

type desBatch struct {
	id        int
	remaining []int // unfinished parent stages per node
	jobsLeft  []int // unfinished jobs per node stage
	done      int   // completed sink stages
}

// Run implements Evaluator.
func (d *BatchDES) Run(cfg Config, runIndex int) Result {
	t := d.Topo
	spec := d.Cluster
	hints := cfg.NormalizedHints()

	ackers := cfg.Ackers
	if ackers <= 0 {
		ackers = spec.Machines
	}
	counts := append(append([]int(nil), hints...), ackers)
	place := cluster.PlaceRoundRobin(spec, counts)
	if place.Overloaded() {
		return Result{Failed: true, Failure: FailurePlacement, Bottleneck: "scheduler", Tasks: cfg.TotalTasks()}
	}

	rates := t.Rates()
	svc := make([]float64, t.N())
	for v := range t.Nodes {
		svc[v] = t.Nodes[v].TimeUnits + d.Costs.FrameworkOverheadMS
	}
	order := t.TopoOrder()
	sinks := t.Sinks()
	isSink := make([]bool, t.N())
	for _, s := range sinks {
		isSink[s] = true
	}
	parentsCount := make([]int, t.N())
	for v := range t.Nodes {
		parentsCount[v] = len(t.Parents(v))
	}

	eng := des.New()
	machines := make([]*machineQueue, spec.Machines)
	for m := range machines {
		machines[m] = &machineQueue{free: spec.CoresPerMachine}
	}
	// One single-threaded server per task instance (topology tasks only;
	// acker work is a fluid-model refinement).
	instances := make([][]*desInstance, t.N())
	for v := 0; v < t.N(); v++ {
		instances[v] = make([]*desInstance, hints[v])
		for i := range instances[v] {
			instances[v][i] = &desInstance{}
		}
	}

	warmup := d.WarmupBatches
	if warmup <= 0 {
		warmup = 5
	}
	measure := d.MeasureBatches
	if measure <= 0 {
		measure = 40
	}
	totalBatches := warmup + measure
	bs := float64(cfg.BatchSize)

	var (
		inFlight    int
		issued      int
		completed   int
		measStart   = math.Inf(1)
		measEnd     float64
		measBatches int
	)

	var finishJob func(m int, j *desJob)
	var startStage func(b *desBatch, v int)
	var issueBatch func()

	dispatch := func(m int) {
		q := machines[m]
		for q.free > 0 && len(q.ready) > 0 {
			inst := q.ready[0]
			q.ready = q.ready[1:]
			inst.queued = false
			if inst.busy || len(inst.q) == 0 {
				continue
			}
			j := inst.q[0]
			inst.q = inst.q[1:]
			inst.busy = true
			q.free--
			eng.ScheduleAfter(j.dur, func() { finishJob(m, j) })
		}
	}

	enqueue := func(m int, inst *desInstance, j *desJob) {
		inst.q = append(inst.q, j)
		if !inst.busy && !inst.queued {
			inst.queued = true
			machines[m].ready = append(machines[m].ready, inst)
		}
		dispatch(m)
	}

	finishJob = func(m int, j *desJob) {
		machines[m].free++
		j.inst.busy = false
		if len(j.inst.q) > 0 && !j.inst.queued {
			j.inst.queued = true
			machines[m].ready = append(machines[m].ready, j.inst)
		}
		b := j.batch
		b.jobsLeft[j.node]--
		if b.jobsLeft[j.node] == 0 {
			// Stage complete: release children after the hop latency.
			for _, w := range t.Children(j.node) {
				w := w
				eng.ScheduleAfter(d.Costs.HopLatencySec, func() {
					b.remaining[w]--
					if b.remaining[w] == 0 {
						startStage(b, w)
					}
				})
			}
			if isSink[j.node] {
				b.done++
				if b.done == len(sinks) {
					// Batch complete after the coordination overhead.
					eng.ScheduleAfter(d.Costs.BatchOverheadSec, func() {
						inFlight--
						completed++
						if completed == warmup {
							measStart = eng.Now()
						}
						if completed > warmup {
							measBatches++
							measEnd = eng.Now()
						}
						issueBatch()
					})
				}
			}
		}
		dispatch(m)
	}

	startStage = func(b *desBatch, v int) {
		n := hints[v]
		tuples := bs * rates[v] / float64(n)
		durMS := tuples * svc[v]
		if t.Nodes[v].Contentious {
			durMS *= float64(n)
		}
		b.jobsLeft[v] = n
		for i, tid := range place.NodeTasks[v] {
			m := place.MachineOf[tid]
			inst := instances[v][i]
			enqueue(m, inst, &desJob{dur: durMS / 1000, batch: b, node: v, inst: inst})
		}
	}

	issueBatch = func() {
		for inFlight < cfg.BatchParallelism && issued < totalBatches {
			b := &desBatch{
				id:        issued,
				remaining: append([]int(nil), parentsCount...),
				jobsLeft:  make([]int, t.N()),
			}
			issued++
			inFlight++
			for _, v := range order {
				if t.Nodes[v].Kind == topo.Spout {
					startStage(b, v)
				}
			}
		}
	}

	eng.Schedule(0, issueBatch)
	eng.Run(math.Inf(1))

	elapsed := measEnd - measStart
	if measBatches == 0 || elapsed <= 0 {
		return Result{Failed: true, Failure: FailureTimeout, Bottleneck: "timeout", Tasks: cfg.TotalTasks()}
	}
	// Each batch carries bs source tuples per unit-rate spout, scaled by
	// each spout's rate factor.
	spoutSum := 0.0
	for _, s := range t.Spouts() {
		spoutSum += rates[s]
	}
	srcRate := float64(measBatches) * bs * spoutSum / elapsed
	sinkSum := 0.0
	for _, s := range sinks {
		sinkSum += rates[s]
	}
	remoteFrac := 0.0
	if spec.Machines > 1 {
		remoteFrac = 1 - 1/float64(spec.Machines)
	}
	totalBytes := 0.0
	for _, e := range t.Edges {
		out := rates[e.From]
		if t.Nodes[e.From].Kind != topo.Spout {
			sel := t.Nodes[e.From].Selectivity
			if sel == 0 {
				sel = 1
			}
			out *= sel
		}
		totalBytes += out * float64(t.Nodes[e.From].TupleBytes) * remoteFrac
	}
	perSpout := srcRate / spoutSum
	res := Result{
		SpoutRate:             srcRate,
		SinkRate:              perSpout * sinkSum,
		NetworkBytesPerWorker: perSpout * totalBytes / float64(spec.Machines),
		Bottleneck:            "des",
		Tasks:                 cfg.TotalTasks(),
	}
	mult := d.Noise.Multiplier(cfg.Fingerprint(), runIndex)
	res.SpoutRate *= mult
	res.SinkRate *= mult
	res.NetworkBytesPerWorker *= mult
	if d.ReportMetric == SourceTuples {
		res.Throughput = res.SpoutRate
	} else {
		res.Throughput = res.SinkRate
	}
	return res
}
