package storm

import (
	"math"
	"testing"

	"stormtune/internal/cluster"
	"stormtune/internal/stats"
)

func TestAveragedReducesVariance(t *testing.T) {
	tp := chainTopo(20)
	base := NewFluidSim(tp, testCluster(), SinkTuples, 5)
	avg := Averaged(base, 8)
	cfg := DefaultSyntheticConfig(tp, 4)

	varOf := func(ev Evaluator) float64 {
		var xs []float64
		for i := 0; i < 40; i++ {
			xs = append(xs, ev.Run(cfg, i).Throughput)
		}
		return stats.Variance(xs)
	}
	vBase := varOf(base)
	vAvg := varOf(avg)
	if !(vAvg < vBase/3) {
		t.Fatalf("averaging should cut variance sharply: base %v vs avg %v", vBase, vAvg)
	}
}

func TestAveragedPreservesMean(t *testing.T) {
	tp := chainTopo(20)
	base := NewFluidSim(tp, testCluster(), SinkTuples, 5)
	avg := Averaged(base, 6)
	cfg := DefaultSyntheticConfig(tp, 4)
	var mBase, mAvg float64
	n := 60
	for i := 0; i < n; i++ {
		mBase += base.Run(cfg, i).Throughput
		mAvg += avg.Run(cfg, i).Throughput
	}
	mBase /= float64(n)
	mAvg /= float64(n)
	if math.Abs(mBase-mAvg)/mBase > 0.03 {
		t.Fatalf("averaging shifted the mean: %v vs %v", mBase, mAvg)
	}
}

func TestAveragedPropagatesFailure(t *testing.T) {
	tp := chainTopo(20)
	spec := cluster.Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 2, ThrashTasksPerCore: 2}
	avg := Averaged(NewFluidSim(tp, spec, SinkTuples, 1), 4)
	r := avg.Run(DefaultSyntheticConfig(tp, 50), 0)
	if !r.Failed {
		t.Fatal("failure must propagate through averaging")
	}
}

func TestAveragedDegenerateK(t *testing.T) {
	tp := chainTopo(20)
	base := NewFluidSim(tp, testCluster(), SinkTuples, 5)
	if Averaged(base, 0).K != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
	if Averaged(base, 1).Metric() != SinkTuples {
		t.Fatal("metric must pass through")
	}
}
