package storm

// Result reports one measurement run, mirroring what the paper's
// harness collected from a two-minute topology execution.
type Result struct {
	// Throughput is the objective the optimizers maximize: tuples per
	// second arriving at sink operators (synthetic topologies) or
	// ingested at the spouts (Sundog-style pipelines); see
	// Evaluator.Metric.
	Throughput float64
	// SpoutRate is the aggregate source emission rate in tuples/s.
	SpoutRate float64
	// SinkRate is the aggregate sink arrival rate in tuples/s.
	SinkRate float64
	// NetworkBytesPerWorker is the average NIC load per worker in
	// bytes/s (the Figure 3 metric).
	NetworkBytesPerWorker float64
	// Failed marks a run that measured zero throughput because the
	// scheduler could not place the requested tasks (worker
	// memory exhaustion in the real system).
	Failed bool
	// Bottleneck names the binding constraint, for diagnostics and the
	// ablation benches.
	Bottleneck string
	// Tasks is the post-normalization task count.
	Tasks int
}

// Metric selects which rate a Result reports as Throughput.
type Metric int

// Metric values.
const (
	// SinkTuples counts tuples/s arriving at sinks — the synthetic
	// topologies' "tuples/s" axis in Figures 4-6.
	SinkTuples Metric = iota
	// SourceTuples counts tuples/s ingested at spouts — the Sundog
	// "million tuples/s" axis in Figure 8.
	SourceTuples
)

// Evaluator is the black-box objective: run one measurement with a
// configuration and return the observed result. runIndex distinguishes
// repeated measurements of the same configuration (each gets its own
// noise draw).
type Evaluator interface {
	Run(cfg Config, runIndex int) Result
	Metric() Metric
}
