package storm

import "fmt"

// Failure classifies why a run failed, so failed measurements surface
// as a typed condition instead of a silent zero-throughput observation.
type Failure string

// Failure values.
const (
	// FailureNone marks a successful run (the zero value).
	FailureNone Failure = ""
	// FailurePlacement marks a configuration the scheduler could not
	// place (worker memory exhaustion in the real system). The
	// measurement itself is valid: the configuration performs at zero.
	FailurePlacement Failure = "placement"
	// FailureTimeout marks a simulated run that exceeded its step budget
	// before reaching steady state.
	FailureTimeout Failure = "timeout"
	// FailureEvaluation marks a trial whose measurement was lost — the
	// backend timed out, the connection dropped, or the run crashed — and
	// whose retry budget is exhausted. The recorded zero throughput is a
	// pessimistic stand-in, not a measurement.
	FailureEvaluation Failure = "evaluation"
)

// FailedResult builds the pessimistic observation recorded when a
// trial's evaluation permanently fails: zero throughput, Failed set,
// and the failure classified so callers can tell a lost measurement
// from a genuinely unplaceable configuration.
func FailedResult(f Failure, msg string) Result {
	return Result{Failed: true, Failure: f, Error: msg}
}

// Result reports one measurement run, mirroring what the paper's
// harness collected from a two-minute topology execution.
type Result struct {
	// Throughput is the objective the optimizers maximize: tuples per
	// second arriving at sink operators (synthetic topologies) or
	// ingested at the spouts (Sundog-style pipelines); see
	// Evaluator.Metric.
	Throughput float64
	// SpoutRate is the aggregate source emission rate in tuples/s.
	SpoutRate float64
	// SinkRate is the aggregate sink arrival rate in tuples/s.
	SinkRate float64
	// NetworkBytesPerWorker is the average NIC load per worker in
	// bytes/s (the Figure 3 metric).
	NetworkBytesPerWorker float64
	// Failed marks a run that measured zero throughput because the
	// scheduler could not place the requested tasks (worker
	// memory exhaustion in the real system), or whose measurement was
	// permanently lost; Failure tells the two apart.
	Failed bool
	// Failure classifies a failed run; empty on success.
	Failure Failure `json:",omitempty"`
	// Error carries the last evaluation error message for
	// FailureEvaluation results; empty otherwise.
	Error string `json:",omitempty"`
	// Bottleneck names the binding constraint, for diagnostics and the
	// ablation benches.
	Bottleneck string
	// Tasks is the post-normalization task count.
	Tasks int
	// OfferedLoad is the arrival rate the workload offered during the
	// run, in the same units as Throughput. Zero means the evaluator is
	// stationary (no drift wrapper) and throughput is capacity-bound
	// only. When set, Throughput ≤ OfferedLoad: delivered rate is the
	// minimum of capacity and offered load.
	OfferedLoad float64 `json:",omitempty"`
	// Backpressured marks a run whose configuration could not keep up
	// with the offered load (capacity < offered): tuples queue and the
	// topology throttles its spouts.
	Backpressured bool `json:",omitempty"`
}

// Metric selects which rate a Result reports as Throughput.
type Metric int

// Metric values.
const (
	// SinkTuples counts tuples/s arriving at sinks — the synthetic
	// topologies' "tuples/s" axis in Figures 4-6.
	SinkTuples Metric = iota
	// SourceTuples counts tuples/s ingested at spouts — the Sundog
	// "million tuples/s" axis in Figure 8.
	SourceTuples
)

// String names the metric; the remote evaluation protocol carries this
// form so "unset" (empty) stays distinguishable from SinkTuples.
func (m Metric) String() string {
	switch m {
	case SinkTuples:
		return "sink-tuples"
	case SourceTuples:
		return "source-tuples"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Evaluator is the black-box objective: run one measurement with a
// configuration and return the observed result. runIndex distinguishes
// repeated measurements of the same configuration (each gets its own
// noise draw).
type Evaluator interface {
	Run(cfg Config, runIndex int) Result
	Metric() Metric
}

// TimedEvaluator is an Evaluator whose measurements depend on *when*
// they are taken on a simulated timeline: the same configuration
// measured at different simulated times can see different load.
// Backends that carry a per-trial simulated timestamp dispatch through
// RunAt; plain Run measures at t=0.
type TimedEvaluator interface {
	Evaluator
	RunAt(cfg Config, runIndex int, simTime float64) Result
}
