package storm

import (
	"math"
	"testing"

	"stormtune/internal/cluster"
	"stormtune/internal/topo"
)

// chainTopo builds spout → b1 → b2 with uniform cost.
func chainTopo(cost float64) *topo.Topology {
	return topo.MustNew("chain",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: cost, Selectivity: 1, TupleBytes: 100},
			{Name: "b1", Kind: topo.Bolt, TimeUnits: cost, Selectivity: 1, TupleBytes: 100},
			{Name: "b2", Kind: topo.Bolt, TimeUnits: cost, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1, Grouping: topo.Shuffle}, {From: 1, To: 2, Grouping: topo.Shuffle}},
	)
}

func testCluster() cluster.Spec {
	return cluster.Spec{
		Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 48, ThrashTasksPerCore: 4,
	}
}

func noNoiseFluid(t *topo.Topology, spec cluster.Spec) *FluidSim {
	f := NewFluidSim(t, spec, SinkTuples, 1)
	f.Noise = NoNoise()
	return f
}

func TestConfigValidate(t *testing.T) {
	tp := chainTopo(20)
	good := DefaultSyntheticConfig(tp, 2)
	if err := good.Validate(tp); err != nil {
		t.Fatal(err)
	}
	bad := good.Clone()
	bad.Hints = bad.Hints[:2]
	if err := bad.Validate(tp); err == nil {
		t.Fatal("hint-count mismatch accepted")
	}
	bad = good.Clone()
	bad.Hints[0] = 0
	if err := bad.Validate(tp); err == nil {
		t.Fatal("zero hint accepted")
	}
	bad = good.Clone()
	bad.BatchParallelism = 0
	if err := bad.Validate(tp); err == nil {
		t.Fatal("zero batch parallelism accepted")
	}
}

func TestNormalizedHints(t *testing.T) {
	c := Config{Hints: []int{10, 20, 30}, MaxTasks: 30}
	n := c.NormalizedHints()
	sum := n[0] + n[1] + n[2]
	if sum > 30 {
		t.Fatalf("normalization exceeded max-tasks: %v (sum %d)", n, sum)
	}
	// Proportions roughly preserved.
	if !(n[0] <= n[1] && n[1] <= n[2]) {
		t.Fatalf("normalization broke ordering: %v", n)
	}
	if n[0] < 1 {
		t.Fatalf("hint floored below 1: %v", n)
	}
	// No cap → unchanged.
	c2 := Config{Hints: []int{10, 20, 30}}
	n2 := c2.NormalizedHints()
	if n2[0] != 10 || n2[2] != 30 {
		t.Fatalf("uncapped hints changed: %v", n2)
	}
}

func TestNormalizedHintsFloorAtOne(t *testing.T) {
	c := Config{Hints: []int{1, 1, 100}, MaxTasks: 10}
	n := c.NormalizedHints()
	for i, h := range n {
		if h < 1 {
			t.Fatalf("hint %d below 1: %v", i, n)
		}
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	tp := chainTopo(20)
	a := DefaultSyntheticConfig(tp, 2)
	b := a.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs should share a fingerprint")
	}
	b.Hints[1]++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different configs should differ")
	}
	b = a.Clone()
	b.BatchSize++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("batch size change should alter fingerprint")
	}
}

func TestNoiseModel(t *testing.T) {
	n := DefaultNoise(7)
	a := n.Multiplier(123, 0)
	b := n.Multiplier(123, 0)
	if a != b {
		t.Fatal("noise must be deterministic per (config, run)")
	}
	c := n.Multiplier(123, 1)
	if a == c {
		t.Fatal("different runs should draw different noise")
	}
	if NoNoise().Multiplier(99, 3) != 1 {
		t.Fatal("NoNoise must return 1")
	}
	// Multipliers stay in a plausible band.
	for i := 0; i < 200; i++ {
		m := n.Multiplier(uint64(i), i)
		if m < 0.5 || m > 1.5 {
			t.Fatalf("noise multiplier %v outside sane band", m)
		}
	}
}

func TestFluidMoreParallelismHelpsUntilSaturation(t *testing.T) {
	tp := chainTopo(20)
	f := noNoiseFluid(tp, testCluster())
	prev := 0.0
	for _, h := range []int{1, 2, 4, 8} {
		r := f.Solve(DefaultSyntheticConfig(tp, h))
		if r.Failed {
			t.Fatalf("hint %d failed", h)
		}
		if r.Throughput < prev*0.99 {
			t.Fatalf("throughput dropped going to hint %d: %v → %v", h, prev, r.Throughput)
		}
		prev = r.Throughput
	}
}

func TestFluidContentionCancelsParallelism(t *testing.T) {
	tp := chainTopo(20)
	tp.Nodes[1].Contentious = true
	f := noNoiseFluid(tp, testCluster())
	r1 := f.Solve(DefaultSyntheticConfig(tp, 1))
	r8 := f.Solve(DefaultSyntheticConfig(tp, 8))
	if r1.Failed || r8.Failed {
		t.Fatal("runs failed")
	}
	// Parallelism must NOT buy throughput through the contentious bolt;
	// allow a little slack from other stages speeding up.
	if r8.Throughput > r1.Throughput*1.6 {
		t.Fatalf("contention should cancel parallelism gains: h=1 %v vs h=8 %v",
			r1.Throughput, r8.Throughput)
	}
}

func TestFluidSchedulerFailure(t *testing.T) {
	tp := chainTopo(20)
	spec := testCluster() // 8 machines × 48 slots = 384
	f := noNoiseFluid(tp, spec)
	cfg := DefaultSyntheticConfig(tp, 200) // 600 tasks
	r := f.Solve(cfg)
	if !r.Failed || r.Bottleneck != "scheduler" {
		t.Fatalf("oversubscription should fail scheduling: %+v", r)
	}
	if got := f.Run(cfg, 0); got.Throughput != 0 || !got.Failed {
		t.Fatalf("Run should report zero throughput on failure: %+v", got)
	}
}

func TestFluidMaxTasksNormalizationPreventsFailure(t *testing.T) {
	tp := chainTopo(20)
	f := noNoiseFluid(tp, testCluster())
	cfg := DefaultSyntheticConfig(tp, 200)
	cfg.MaxTasks = 100
	r := f.Solve(cfg)
	if r.Failed {
		t.Fatalf("normalized config should schedule: %+v", r)
	}
	if r.Tasks > 100 {
		t.Fatalf("normalization ineffective: %d tasks", r.Tasks)
	}
}

func TestFluidBatchPipelineBound(t *testing.T) {
	tp := chainTopo(20)
	f := noNoiseFluid(tp, testCluster())
	base := DefaultSyntheticConfig(tp, 8)
	base.BatchParallelism = 1
	base.BatchSize = 10
	r1 := f.Solve(base)
	more := base.Clone()
	more.BatchParallelism = 8
	r8 := f.Solve(more)
	if !(r8.Throughput > r1.Throughput*2) {
		t.Fatalf("batch parallelism should relieve the pipeline bound: bp=1 %v vs bp=8 %v",
			r1.Throughput, r8.Throughput)
	}
	if r1.Bottleneck != "batch" {
		t.Fatalf("bp=1 should be batch-bound, got %s", r1.Bottleneck)
	}
}

func TestFluidBiggerBatchesAmortizeOverhead(t *testing.T) {
	// With fixed bp, larger batches amortize the per-batch coordination
	// cost until stage time dominates.
	tp := chainTopo(0.01) // light per-tuple work (Sundog regime)
	f := noNoiseFluid(tp, testCluster())
	f.ReportMetric = SourceTuples
	cfg := DefaultConfig(tp, 8)
	cfg.BatchParallelism = 2
	cfg.BatchSize = 100
	small := f.Solve(cfg)
	cfg.BatchSize = 100000
	big := f.Solve(cfg)
	if !(big.Throughput > small.Throughput*3) {
		t.Fatalf("large batches should amortize overhead: bs=100 %v vs bs=100k %v",
			small.Throughput, big.Throughput)
	}
}

func TestFluidReceiverThreadBound(t *testing.T) {
	tp := chainTopo(0.001) // very light tuples → receiver-bound regime
	f := noNoiseFluid(tp, testCluster())
	f.ReportMetric = SourceTuples
	// Exaggerate receive cost relative to processing so the receiver
	// station clearly binds with a single thread.
	f.Costs.FrameworkOverheadMS = 0.01
	f.Costs.RecvCostMS = 0.05
	cfg := DefaultConfig(tp, 32)
	cfg.BatchSize = 500000
	cfg.BatchParallelism = 64
	cfg.ReceiverThreads = 1
	r1 := f.Solve(cfg)
	cfg.ReceiverThreads = 8
	r8 := f.Solve(cfg)
	if !(r8.Throughput > r1.Throughput*1.5) {
		t.Fatalf("receiver threads should matter for light tuples: 1→%v (%s) 8→%v (%s)",
			r1.Throughput, r1.Bottleneck, r8.Throughput, r8.Bottleneck)
	}
	if r1.Bottleneck != "receiver" {
		t.Fatalf("expected receiver bottleneck, got %s", r1.Bottleneck)
	}
}

func TestFluidAckerBound(t *testing.T) {
	tp := chainTopo(0.001)
	f := noNoiseFluid(tp, testCluster())
	f.ReportMetric = SourceTuples
	cfg := DefaultConfig(tp, 8)
	cfg.BatchSize = 500000
	cfg.BatchParallelism = 64
	cfg.ReceiverThreads = 16
	cfg.Ackers = 1
	r1 := f.Solve(cfg)
	cfg.Ackers = 64
	r64 := f.Solve(cfg)
	if !(r64.Throughput > r1.Throughput*1.5) {
		t.Fatalf("ackers should matter for light tuples: 1→%v (%s) 64→%v (%s)",
			r1.Throughput, r1.Bottleneck, r64.Throughput, r64.Bottleneck)
	}
}

func TestFluidNetworkAccountingPositive(t *testing.T) {
	tp := chainTopo(20)
	f := noNoiseFluid(tp, testCluster())
	r := f.Solve(DefaultSyntheticConfig(tp, 4))
	if r.NetworkBytesPerWorker <= 0 {
		t.Fatalf("network accounting missing: %+v", r)
	}
	// Paper Figure 3: network never saturated — far below 128 MB/s here.
	if r.NetworkBytesPerWorker > 0.5*128e6 {
		t.Fatalf("synthetic run should not approach NIC saturation: %v B/s", r.NetworkBytesPerWorker)
	}
}

func TestFluidRunAddsNoise(t *testing.T) {
	tp := chainTopo(20)
	f := NewFluidSim(tp, testCluster(), SinkTuples, 3)
	cfg := DefaultSyntheticConfig(tp, 4)
	a := f.Run(cfg, 0)
	b := f.Run(cfg, 1)
	if a.Throughput == b.Throughput {
		t.Fatal("distinct runs should see noise")
	}
	if f.Run(cfg, 0).Throughput != a.Throughput {
		t.Fatal("same run index must be reproducible")
	}
}

func TestFluidWeightProportionalBeatsUniform(t *testing.T) {
	// On a homogeneous fan-in topology under a task budget, hints
	// proportional to the base weights (= rates) must beat uniform
	// hints — the mechanism behind ipla's Figure 4 dominance.
	tp := topo.MustNew("fanin",
		[]topo.Node{
			{Name: "s1", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "s2", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "s3", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "join", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "sink", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{
			{From: 0, To: 3, Grouping: topo.Shuffle},
			{From: 1, To: 3, Grouping: topo.Shuffle},
			{From: 2, To: 3, Grouping: topo.Shuffle},
			{From: 3, To: 4, Grouping: topo.Shuffle},
		},
	)
	f := noNoiseFluid(tp, testCluster())
	uniform := DefaultSyntheticConfig(tp, 3) // 15 tasks
	// Weights: spouts 1,1,1; join 3; sink 3 → proportional allocation
	// within a comparable 16-task budget.
	informed := DefaultSyntheticConfig(tp, 1)
	informed.Hints = []int{2, 2, 2, 5, 5}
	ru := f.Solve(uniform)
	ri := f.Solve(informed)
	if !(ri.Throughput > ru.Throughput*1.2) {
		t.Fatalf("weight-proportional should beat uniform under budget: uniform %v (%s) vs informed %v (%s)",
			ru.Throughput, ru.Bottleneck, ri.Throughput, ri.Bottleneck)
	}
}

func TestDESAgreesWithFluidOnOrdering(t *testing.T) {
	tp := chainTopo(20)
	spec := testCluster()
	fl := noNoiseFluid(tp, spec)
	ds := NewBatchDES(tp, spec, SinkTuples)
	cfgLo := DefaultSyntheticConfig(tp, 1)
	cfgHi := DefaultSyntheticConfig(tp, 6)
	flLo, flHi := fl.Solve(cfgLo).Throughput, fl.Solve(cfgHi).Throughput
	dsLo, dsHi := ds.Run(cfgLo, 0).Throughput, ds.Run(cfgHi, 0).Throughput
	if (flHi > flLo) != (dsHi > dsLo) {
		t.Fatalf("fluid and DES disagree on config ordering: fluid %v/%v, des %v/%v",
			flLo, flHi, dsLo, dsHi)
	}
}

func TestDESWithinToleranceOfFluid(t *testing.T) {
	tp := chainTopo(20)
	spec := testCluster()
	fl := noNoiseFluid(tp, spec)
	ds := NewBatchDES(tp, spec, SinkTuples)
	for _, h := range []int{1, 2, 4} {
		cfg := DefaultSyntheticConfig(tp, h)
		a := fl.Solve(cfg).Throughput
		b := ds.Run(cfg, 0).Throughput
		ratio := a / b
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("hint %d: fluid %v vs DES %v (ratio %v) outside tolerance", h, a, b, ratio)
		}
	}
}

func TestDESSchedulerFailure(t *testing.T) {
	tp := chainTopo(20)
	ds := NewBatchDES(tp, testCluster(), SinkTuples)
	r := ds.Run(DefaultSyntheticConfig(tp, 200), 0)
	if !r.Failed {
		t.Fatal("DES should fail on oversubscription")
	}
}

func TestDESDeterministic(t *testing.T) {
	tp := chainTopo(20)
	ds := NewBatchDES(tp, testCluster(), SinkTuples)
	cfg := DefaultSyntheticConfig(tp, 3)
	a := ds.Run(cfg, 0)
	b := ds.Run(cfg, 0)
	if a.Throughput != b.Throughput {
		t.Fatal("DES must be deterministic")
	}
}

func TestFuseChains(t *testing.T) {
	// s → a → b → c with a,b,c a pure chain plus a fan-out at c.
	tp := topo.MustNew("chainfuse",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 1, Selectivity: 1, TupleBytes: 10},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 2, Selectivity: 2, TupleBytes: 20},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 3, Selectivity: 0.5, TupleBytes: 30},
			{Name: "c1", Kind: topo.Bolt, TimeUnits: 4, Selectivity: 1, TupleBytes: 40},
			{Name: "c2", Kind: topo.Bolt, TimeUnits: 5, Selectivity: 1, TupleBytes: 50},
		},
		[]topo.Edge{
			{From: 0, To: 1, Grouping: topo.Shuffle},
			{From: 1, To: 2, Grouping: topo.Shuffle},
			{From: 2, To: 3, Grouping: topo.Shuffle},
			{From: 2, To: 4, Grouping: topo.Shuffle},
		},
	)
	fused, mapping := FuseChains(tp)
	// s+a+b collapse (s→a→b is a chain); c1, c2 stay.
	if fused.N() != 3 {
		t.Fatalf("fused to %d nodes, want 3: %+v", fused.N(), fused.Nodes)
	}
	if mapping[0] != mapping[1] || mapping[1] != mapping[2] {
		t.Fatalf("chain not fused together: %v", mapping)
	}
	head := fused.Nodes[mapping[0]]
	if head.TimeUnits != 6 {
		t.Fatalf("fused cost = %v, want 6", head.TimeUnits)
	}
	if head.Selectivity != 1 { // 1 × 2 × 0.5
		t.Fatalf("fused selectivity = %v, want 1", head.Selectivity)
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFuseChainsContentionPropagates(t *testing.T) {
	tp := chainTopo(5)
	tp.Nodes[2].Contentious = true
	fused, mapping := FuseChains(tp)
	if !fused.Nodes[mapping[2]].Contentious {
		t.Fatal("contention flag lost in fusion")
	}
}

func TestFuseHints(t *testing.T) {
	hints := []int{2, 7, 3}
	mapping := []int{0, 0, 1}
	out := FuseHints(hints, mapping, 2)
	if out[0] != 7 || out[1] != 3 {
		t.Fatalf("fused hints = %v", out)
	}
}

func TestSundogUniformHintOptimumIsInterior(t *testing.T) {
	// The paper's pla found its best Sundog configuration at a moderate
	// uniform hint (11). Our simulator must reproduce the interior
	// optimum: beyond some hint, context-switch thrash inflates batch
	// stage times and throughput declines, so uniform-hint search does
	// not drift to the slot limit.
	sd := topo.Sundog()
	f := noNoiseFluid(sd, cluster.Paper())
	f.ReportMetric = SourceTuples
	bestH, bestY := 0, 0.0
	var last float64
	for h := 1; h <= 60; h++ {
		r := f.Solve(DefaultConfig(sd, h))
		if r.Failed {
			break
		}
		if r.Throughput > bestY {
			bestY = r.Throughput
			bestH = h
		}
		last = r.Throughput
	}
	if bestH < 5 || bestH > 40 {
		t.Fatalf("uniform-hint optimum at h=%d, want an interior moderate value", bestH)
	}
	if !(last < bestY*0.98) {
		t.Fatalf("throughput should decline past the optimum: best %v (h=%d) vs h=60 %v", bestY, bestH, last)
	}
}

func TestSundogThroughputRegime(t *testing.T) {
	// The Sundog pipeline on the paper cluster with the manual config
	// must land in the ~10⁵-10⁶ source tuples/s regime of Figure 8 and
	// improve when batch size and parallelism grow (the 2.8× result).
	sd := topo.Sundog()
	f := noNoiseFluid(sd, cluster.Paper())
	f.ReportMetric = SourceTuples
	manual := DefaultConfig(sd, 11)
	base := f.Solve(manual)
	if base.Failed {
		t.Fatalf("manual config failed: %+v", base)
	}
	if base.Throughput < 1e5 || base.Throughput > 5e6 {
		t.Fatalf("Sundog baseline %v outside the paper's regime", base.Throughput)
	}
	tuned := manual.Clone()
	tuned.BatchParallelism = 16
	tuned.BatchSize = 265312
	better := f.Solve(tuned)
	if !(better.Throughput > base.Throughput*1.5) {
		t.Fatalf("bs/bp tuning should give large gains: %v → %v (bottlenecks %s → %s)",
			base.Throughput, better.Throughput, base.Bottleneck, better.Bottleneck)
	}
	if math.IsInf(better.Throughput, 0) {
		t.Fatal("throughput must stay finite")
	}
}
