package storm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stormtune/internal/cluster"
	"stormtune/internal/ggen"
	"stormtune/internal/topo"
)

// randomTopology builds a random valid synthetic topology for property
// tests.
func randomTopology(seed int64) *topo.Topology {
	rng := rand.New(rand.NewSource(seed))
	d := ggen.Generate(ggen.Params{V: 8 + rng.Intn(20), L: 3 + rng.Intn(4), P: 0.15 + 0.3*rng.Float64(), Seed: seed})
	opts := topo.DefaultSynthetic()
	opts.Seed = seed
	opts.TimeImbalance = rng.Float64()
	if rng.Intn(2) == 1 {
		opts.ContentiousFraction = 0.25
	}
	return topo.FromDAG("prop", d, opts)
}

// Property: throughput is finite, non-negative, and zero exactly when
// Failed for arbitrary topologies and configurations.
func TestQuickFluidSanity(t *testing.T) {
	spec := cluster.Paper()
	f := func(seed int64, hintRaw, mtRaw uint8) bool {
		tp := randomTopology(seed)
		sim := NewFluidSim(tp, spec, SinkTuples, seed)
		sim.Noise = NoNoise()
		cfg := DefaultSyntheticConfig(tp, 1+int(hintRaw)%64)
		cfg.MaxTasks = int(mtRaw) * 16
		r := sim.Solve(cfg)
		if r.Failed {
			return r.Throughput == 0
		}
		return r.Throughput > 0 && !math.IsInf(r.Throughput, 0) && !math.IsNaN(r.Throughput) &&
			r.NetworkBytesPerWorker >= 0 && r.SpoutRate > 0 && r.SinkRate > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-tasks normalization never increases throughput variance
// into failure — a normalized config never fails scheduling when the
// cap is within cluster slots.
func TestQuickNormalizationPreventsSchedulingFailure(t *testing.T) {
	spec := cluster.Paper()
	f := func(seed int64, hintRaw uint8) bool {
		tp := randomTopology(seed)
		sim := NewFluidSim(tp, spec, SinkTuples, seed)
		sim.Noise = NoNoise()
		cfg := DefaultSyntheticConfig(tp, 1+int(hintRaw))
		cfg.MaxTasks = spec.TotalTaskSlots() / 2
		r := sim.Solve(cfg)
		return !r.Failed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bigger cluster never yields lower noise-free throughput
// for the same configuration (monotonicity in resources).
func TestFluidMonotoneInClusterSize(t *testing.T) {
	tp := topo.BuildSynthetic("small", topo.Condition{}, 1)
	cfg := DefaultSyntheticConfig(tp, 4)
	prev := 0.0
	for _, machines := range []int{4, 8, 20, 40, 80} {
		spec := cluster.Paper()
		spec.Machines = machines
		sim := NewFluidSim(tp, spec, SinkTuples, 1)
		sim.Noise = NoNoise()
		r := sim.Solve(cfg)
		if r.Failed {
			t.Fatalf("machines=%d failed", machines)
		}
		if r.Throughput < prev*0.999 {
			t.Fatalf("throughput fell when growing the cluster to %d machines: %v → %v",
				machines, prev, r.Throughput)
		}
		prev = r.Throughput
	}
}

// Property: adding contention never increases noise-free throughput.
func TestContentionNeverHelps(t *testing.T) {
	spec := cluster.Paper()
	for seed := int64(1); seed <= 10; seed++ {
		d := ggen.Generate(ggen.Params{V: 15, L: 4, P: 0.25, Seed: seed})
		plain := topo.FromDAG("p", d, topo.DefaultSynthetic())
		opts := topo.DefaultSynthetic()
		opts.ContentiousFraction = 0.25
		opts.Seed = seed
		flagged := topo.FromDAG("f", d, opts)
		cfg := DefaultSyntheticConfig(plain, 6)
		a := func(tp *topo.Topology) float64 {
			sim := NewFluidSim(tp, spec, SinkTuples, 1)
			sim.Noise = NoNoise()
			return sim.Solve(cfg).Throughput
		}
		if a(flagged) > a(plain)*1.0001 {
			t.Fatalf("seed %d: contention increased throughput %v → %v", seed, a(plain), a(flagged))
		}
	}
}

// Failure injection: a cluster with a broken (tiny-NIC) network must
// surface the NIC as the bottleneck for byte-heavy topologies.
func TestNICBottleneckSurfaces(t *testing.T) {
	tp := topo.MustNew("fat",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 0.01, Selectivity: 1, TupleBytes: 1 << 20},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 0.01, Selectivity: 1, TupleBytes: 1 << 20},
		},
		[]topo.Edge{{From: 0, To: 1, Grouping: topo.Shuffle}},
	)
	spec := cluster.Paper()
	spec.NICBytesPerSec = 1e6 // 1 MB/s "broken" network
	sim := NewFluidSim(tp, spec, SinkTuples, 1)
	sim.Noise = NoNoise()
	r := sim.Solve(DefaultConfig(tp, 8))
	if r.Bottleneck != "nic" {
		t.Fatalf("expected nic bottleneck, got %s", r.Bottleneck)
	}
}

// The batch bound must weaken monotonically with batch parallelism.
func TestQuickBatchBoundMonotoneInBP(t *testing.T) {
	tp := topo.BuildSynthetic("small", topo.Condition{}, 1)
	sim := NewFluidSim(tp, cluster.Paper(), SinkTuples, 1)
	sim.Noise = NoNoise()
	f := func(bpRaw uint8) bool {
		bp := 1 + int(bpRaw)%32
		lo := DefaultSyntheticConfig(tp, 8)
		lo.BatchParallelism = bp
		hi := lo.Clone()
		hi.BatchParallelism = bp + 1
		return sim.Solve(hi).Throughput >= sim.Solve(lo).Throughput*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// DES and fluid must agree that the Sundog batch-tuning result holds
// qualitatively: bigger batches and deeper pipelines beat the manual
// configuration on both evaluators.
func TestDESConfirmsSundogBatchGains(t *testing.T) {
	sd := topo.Sundog()
	spec := cluster.Small() // keep the DES affordable in tests
	manual := DefaultConfig(sd, 2)
	// A shallow pipeline with small batches is clearly pipeline-bound
	// on the small cluster too.
	manual.BatchSize = 5000
	manual.BatchParallelism = 1
	tuned := manual.Clone()
	tuned.BatchSize = 265312
	tuned.BatchParallelism = 16

	fl := NewFluidSim(sd, spec, SourceTuples, 1)
	fl.Noise = NoNoise()
	ds := NewBatchDES(sd, spec, SourceTuples)

	flGain := fl.Solve(tuned).Throughput / fl.Solve(manual).Throughput
	dsGain := ds.Run(tuned, 0).Throughput / ds.Run(manual, 0).Throughput
	if flGain <= 1 || dsGain <= 1 {
		t.Fatalf("batch tuning should help on both evaluators: fluid %.2fx, des %.2fx", flGain, dsGain)
	}
}
