package storm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DriftProfile modulates a workload's offered load over a simulated
// timeline. Factor returns the multiplier applied to the base arrival
// rate at simulated time t (seconds); 1 means nominal load. Profiles
// are pure functions of t (plus an explicit seed where randomness is
// wanted), so a fixed profile yields a bit-identical load curve on
// every run — the property the golden determinism tests pin down.
type DriftProfile interface {
	// Factor returns the offered-load multiplier at simulated time t
	// seconds. Implementations must be deterministic and never return
	// a negative value.
	Factor(t float64) float64
	// String renders the profile in the -drift flag syntax, so a
	// profile parsed from a spec round-trips.
	String() string
}

// Diurnal is a sinusoidal day/night cycle: the offered load swings
// ±Amplitude around nominal with the given period.
type Diurnal struct {
	// Period is the cycle length in simulated seconds (default 86400,
	// one day).
	Period float64
	// Amplitude is the peak fractional swing (0.4 means load varies
	// between 0.6× and 1.4× nominal). Values are clamped so the factor
	// never goes negative.
	Amplitude float64
	// Phase shifts the cycle start, in simulated seconds.
	Phase float64
}

// Factor implements DriftProfile.
func (d Diurnal) Factor(t float64) float64 {
	period := d.Period
	if period <= 0 {
		period = 86400
	}
	f := 1 + d.Amplitude*math.Sin(2*math.Pi*(t+d.Phase)/period)
	if f < 0 {
		f = 0
	}
	return f
}

// String implements DriftProfile.
func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal:period=%s,amp=%s,phase=%s",
		trimFloat(d.Period), trimFloat(d.Amplitude), trimFloat(d.Phase))
}

// FlashCrowd is a step-function load spike: at time At the offered
// load ramps up to Magnitude× nominal over Ramp seconds, holds for
// Duration, then ramps back down. Duration ≤ 0 means the crowd never
// leaves (a permanent regime change).
type FlashCrowd struct {
	// At is when the spike begins, in simulated seconds.
	At float64
	// Duration is how long the elevated load holds (excluding ramps).
	Duration float64
	// Magnitude is the multiplier at the plateau (3 = 3× nominal).
	Magnitude float64
	// Ramp is the linear ramp-up/ramp-down length in seconds; 0 means
	// an instantaneous step.
	Ramp float64
}

// Factor implements DriftProfile.
func (f FlashCrowd) Factor(t float64) float64 {
	mag := f.Magnitude
	if mag <= 0 {
		mag = 1
	}
	rel := t - f.At
	if rel < 0 {
		return 1
	}
	// Ramp up.
	if f.Ramp > 0 && rel < f.Ramp {
		return 1 + (mag-1)*rel/f.Ramp
	}
	hold := rel
	if f.Ramp > 0 {
		hold -= f.Ramp
	}
	if f.Duration <= 0 || hold < f.Duration {
		return mag
	}
	// Ramp down.
	down := hold - f.Duration
	if f.Ramp > 0 && down < f.Ramp {
		return mag - (mag-1)*down/f.Ramp
	}
	return 1
}

// String implements DriftProfile.
func (f FlashCrowd) String() string {
	return fmt.Sprintf("flash:at=%s,dur=%s,mag=%s,ramp=%s",
		trimFloat(f.At), trimFloat(f.Duration), trimFloat(f.Magnitude), trimFloat(f.Ramp))
}

// Trend is gradual linear drift: the offered load grows (or shrinks,
// for negative Slope) by Slope× nominal per simulated second, floored
// at zero.
type Trend struct {
	// Slope is the fractional load change per simulated second
	// (1e-4 ≈ +36% per hour).
	Slope float64
}

// Factor implements DriftProfile.
func (tr Trend) Factor(t float64) float64 {
	f := 1 + tr.Slope*t
	if f < 0 {
		f = 0
	}
	return f
}

// String implements DriftProfile.
func (tr Trend) String() string {
	return fmt.Sprintf("trend:slope=%s", trimFloat(tr.Slope))
}

// Squall is seeded random burstiness: the timeline is cut into
// Window-second windows and each window independently hosts a spike
// of Magnitude× nominal with probability Prob. Whether a window
// spikes is a pure hash of (Seed, window index), so a fixed seed
// yields a bit-identical spike train.
type Squall struct {
	// Window is the spike granularity in simulated seconds (default
	// 300).
	Window float64
	// Prob is the per-window spike probability (default 0.05).
	Prob float64
	// Magnitude is the multiplier during a spiking window (default 2).
	Magnitude float64
	// Seed selects the spike train.
	Seed int64
}

// Factor implements DriftProfile.
func (s Squall) Factor(t float64) float64 {
	if t < 0 {
		return 1
	}
	window := s.Window
	if window <= 0 {
		window = 300
	}
	prob := s.Prob
	if prob <= 0 {
		prob = 0.05
	}
	mag := s.Magnitude
	if mag <= 0 {
		mag = 2
	}
	idx := uint64(t / window)
	h := splitmix(uint64(s.Seed)*0xbf58476d1ce4e5b9 ^ (idx+1)*0x9e3779b97f4a7c15)
	u := float64(h>>11) / float64(1<<53)
	if u < prob {
		return mag
	}
	return 1
}

// String implements DriftProfile.
func (s Squall) String() string {
	return fmt.Sprintf("squall:window=%s,prob=%s,mag=%s,seed=%d",
		trimFloat(s.Window), trimFloat(s.Prob), trimFloat(s.Magnitude), s.Seed)
}

// Composite multiplies component profiles: diurnal cycles under a
// growth trend with occasional squalls compose naturally because each
// factor is relative to nominal.
type Composite []DriftProfile

// Compose combines profiles multiplicatively. Compose() (no parts)
// yields the stationary profile (factor 1 everywhere).
func Compose(parts ...DriftProfile) Composite { return Composite(parts) }

// Factor implements DriftProfile.
func (c Composite) Factor(t float64) float64 {
	f := 1.0
	for _, p := range c {
		f *= p.Factor(t)
	}
	return f
}

// String implements DriftProfile.
func (c Composite) String() string {
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.String()
	}
	return strings.Join(parts, ";")
}

// ParseDrift parses a -drift flag spec into a profile. The syntax is
// semicolon-separated components, each "kind:key=val,key=val":
//
//	flash:at=600,dur=900,mag=3,ramp=60
//	diurnal:period=86400,amp=0.4,phase=0
//	trend:slope=1e-4
//	squall:window=300,prob=0.05,mag=2,seed=7
//
// Composed components multiply:
// "diurnal:amp=0.3;flash:at=3600,mag=2". An empty spec or "none"
// yields nil (stationary workload).
func ParseDrift(spec string) (DriftProfile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var parts []DriftProfile
	for _, comp := range strings.Split(spec, ";") {
		comp = strings.TrimSpace(comp)
		if comp == "" {
			continue
		}
		p, err := parseDriftComponent(comp)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	switch len(parts) {
	case 0:
		return nil, nil
	case 1:
		return parts[0], nil
	default:
		return Composite(parts), nil
	}
}

func parseDriftComponent(comp string) (DriftProfile, error) {
	kind, rest, _ := strings.Cut(comp, ":")
	kind = strings.TrimSpace(kind)
	kv, err := parseDriftArgs(rest)
	if err != nil {
		return nil, fmt.Errorf("storm: drift component %q: %w", comp, err)
	}
	// get consumes recognized keys so leftovers can be rejected; typos
	// in a profile spec must fail loudly, not silently run stationary.
	get := func(key string, def float64) float64 {
		if v, ok := kv[key]; ok {
			delete(kv, key)
			return v
		}
		return def
	}
	var p DriftProfile
	switch kind {
	case "diurnal":
		p = Diurnal{Period: get("period", 86400), Amplitude: get("amp", 0.4), Phase: get("phase", 0)}
	case "flash":
		p = FlashCrowd{At: get("at", 0), Duration: get("dur", 0), Magnitude: get("mag", 2), Ramp: get("ramp", 0)}
	case "trend":
		p = Trend{Slope: get("slope", 0)}
	case "squall":
		p = Squall{Window: get("window", 300), Prob: get("prob", 0.05), Magnitude: get("mag", 2), Seed: int64(get("seed", 0))}
	default:
		return nil, fmt.Errorf("storm: unknown drift kind %q (want diurnal, flash, trend or squall)", kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("storm: drift component %q: unknown keys %v", comp, keys)
	}
	return p, nil
}

func parseDriftArgs(rest string) (map[string]float64, error) {
	kv := make(map[string]float64)
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("malformed pair %q (want key=value)", pair)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("value for %q: %v", strings.TrimSpace(key), err)
		}
		kv[strings.TrimSpace(key)] = f
	}
	return kv, nil
}

// trimFloat renders a float compactly for profile specs.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// DriftingEval wraps a stationary evaluator with a time-varying
// offered load, the drift analogue of Jittered's duration skew. The
// inner evaluator measures a configuration's *capacity*; the wrapper
// caps delivered throughput at the load the profile offers at the
// trial's simulated time:
//
//	offered   = BaseLoad × Profile.Factor(t)
//	delivered = min(capacity, offered)
//
// so an over-provisioned config is indistinguishable from a
// just-sufficient one until load rises — exactly the ambiguity that
// makes continuous tuning necessary. Backpressured is set whenever
// capacity < offered.
type DriftingEval struct {
	Inner Evaluator
	// Profile modulates the offered load over simulated time; nil
	// means stationary at BaseLoad.
	Profile DriftProfile
	// BaseLoad is the nominal offered arrival rate, in the inner
	// evaluator's throughput units. ≤ 0 disables the load cap (the
	// wrapper only annotates OfferedLoad as +Inf-free zero).
	BaseLoad float64
}

// Drifting wraps ev with a time-varying offered load.
func Drifting(ev Evaluator, profile DriftProfile, baseLoad float64) *DriftingEval {
	return &DriftingEval{Inner: ev, Profile: profile, BaseLoad: baseLoad}
}

// Offered returns the offered load at simulated time t.
func (d *DriftingEval) Offered(t float64) float64 {
	if d.BaseLoad <= 0 {
		return 0
	}
	f := 1.0
	if d.Profile != nil {
		f = d.Profile.Factor(t)
	}
	return d.BaseLoad * f
}

// RunAt implements TimedEvaluator: measure capacity with the inner
// evaluator, then cap delivery at the load offered at simulated time
// t.
func (d *DriftingEval) RunAt(cfg Config, runIndex int, simTime float64) Result {
	res := d.Inner.Run(cfg, runIndex)
	offered := d.Offered(simTime)
	if offered <= 0 {
		return res
	}
	res.OfferedLoad = offered
	if res.Failed {
		return res
	}
	if res.Throughput >= offered {
		res.Throughput = offered
	} else {
		res.Backpressured = true
	}
	return res
}

// Run implements Evaluator; it measures at simulated time zero.
func (d *DriftingEval) Run(cfg Config, runIndex int) Result {
	return d.RunAt(cfg, runIndex, 0)
}

// Metric implements Evaluator.
func (d *DriftingEval) Metric() Metric { return d.Inner.Metric() }
