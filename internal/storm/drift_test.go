package storm

import (
	"math"
	"strings"
	"testing"

	"stormtune/internal/cluster"
)

// goldenCurve samples a profile on a fixed grid; the determinism
// tests compare curves bit-for-bit (exact float equality), because
// drift profiles are pure functions of time and seed.
func goldenCurve(p DriftProfile, n int, step float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Factor(float64(i) * step)
	}
	return out
}

func curvesIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDriftProfilesDeterministic(t *testing.T) {
	// Two independently constructed instances of the same profile must
	// produce bit-identical load curves.
	cases := []struct {
		name string
		mk   func() DriftProfile
	}{
		{"diurnal", func() DriftProfile { return Diurnal{Period: 3600, Amplitude: 0.4, Phase: 120} }},
		{"flash", func() DriftProfile { return FlashCrowd{At: 600, Duration: 900, Magnitude: 3, Ramp: 60} }},
		{"trend", func() DriftProfile { return Trend{Slope: 1e-4} }},
		{"squall", func() DriftProfile { return Squall{Window: 300, Prob: 0.1, Magnitude: 2, Seed: 7} }},
		{"composite", func() DriftProfile {
			return Compose(Diurnal{Period: 3600, Amplitude: 0.3}, Trend{Slope: 5e-5}, Squall{Seed: 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := goldenCurve(tc.mk(), 500, 30)
			b := goldenCurve(tc.mk(), 500, 30)
			if !curvesIdentical(a, b) {
				t.Fatal("profile is not deterministic: two instances diverged")
			}
			for i, f := range a {
				if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("factor at sample %d is %v; must be finite and ≥0", i, f)
				}
			}
		})
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Period: 86400, Amplitude: 0.4}
	if got := d.Factor(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("factor at t=0 = %v, want 1", got)
	}
	if got := d.Factor(86400 / 4); math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("peak factor = %v, want 1.4", got)
	}
	if got := d.Factor(3 * 86400 / 4); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("trough factor = %v, want 0.6", got)
	}
	// One full period later the curve repeats (up to sin rounding).
	if math.Abs(d.Factor(1234)-d.Factor(1234+86400)) > 1e-9 {
		t.Fatal("diurnal cycle must be periodic")
	}
}

func TestFlashCrowdShape(t *testing.T) {
	f := FlashCrowd{At: 600, Duration: 900, Magnitude: 3, Ramp: 60}
	if got := f.Factor(0); got != 1 {
		t.Fatalf("pre-spike factor = %v, want 1", got)
	}
	if got := f.Factor(630); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mid-ramp factor = %v, want 2", got)
	}
	if got := f.Factor(1000); got != 3 {
		t.Fatalf("plateau factor = %v, want 3", got)
	}
	if got := f.Factor(600 + 60 + 900 + 60 + 1); got != 1 {
		t.Fatalf("post-spike factor = %v, want 1", got)
	}
	// Permanent regime change: Duration ≤ 0 never ramps down.
	perm := FlashCrowd{At: 100, Magnitude: 2}
	if got := perm.Factor(1e9); got != 2 {
		t.Fatalf("permanent crowd factor = %v, want 2", got)
	}
}

func TestSquallSeedSelectsSpikeTrain(t *testing.T) {
	a := goldenCurve(Squall{Window: 300, Prob: 0.2, Magnitude: 2, Seed: 1}, 2000, 300)
	b := goldenCurve(Squall{Window: 300, Prob: 0.2, Magnitude: 2, Seed: 2}, 2000, 300)
	if curvesIdentical(a, b) {
		t.Fatal("different seeds produced identical spike trains")
	}
	spikes := 0
	for _, f := range a {
		if f != 1 && f != 2 {
			t.Fatalf("squall factor %v outside {1, magnitude}", f)
		}
		if f == 2 {
			spikes++
		}
	}
	// ~20% of 2000 windows; loose bounds, but zero or all would mean
	// the hash is broken.
	if spikes < 200 || spikes > 600 {
		t.Fatalf("spike count %d implausible for prob 0.2 over 2000 windows", spikes)
	}
}

func TestParseDriftRoundTrip(t *testing.T) {
	specs := []string{
		"flash:at=600,dur=900,mag=3,ramp=60",
		"diurnal:period=3600,amp=0.4,phase=0",
		"trend:slope=0.0001",
		"squall:window=300,prob=0.05,mag=2,seed=7",
		"diurnal:period=3600,amp=0.3,phase=0;flash:at=600,dur=0,mag=2,ramp=0",
	}
	for _, spec := range specs {
		p, err := ParseDrift(spec)
		if err != nil {
			t.Fatalf("ParseDrift(%q): %v", spec, err)
		}
		again, err := ParseDrift(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", p.String(), spec, err)
		}
		if !curvesIdentical(goldenCurve(p, 200, 60), goldenCurve(again, 200, 60)) {
			t.Fatalf("spec %q does not round-trip through String(): %q", spec, p.String())
		}
	}
	if p, err := ParseDrift(""); err != nil || p != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
	if p, err := ParseDrift("none"); err != nil || p != nil {
		t.Fatalf("\"none\": got (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"bogus:x=1", "flash:at", "flash:at=nope", "flash:typo=3"} {
		if _, err := ParseDrift(bad); err == nil {
			t.Fatalf("ParseDrift(%q) accepted a malformed spec", bad)
		}
	}
}

func TestDriftingEvalCapsThroughputAtOfferedLoad(t *testing.T) {
	tp := jitterTopo()
	inner := NewFluidSim(tp, cluster.Small(), SinkTuples, 1)
	inner.Noise = NoNoise()
	cfg := DefaultConfig(tp, 2)
	capacity := inner.Run(cfg, 0).Throughput
	if capacity <= 0 {
		t.Fatal("inner capacity must be positive")
	}

	// Offered load below capacity: delivery is load-bound, no
	// backpressure.
	d := Drifting(inner, FlashCrowd{At: 100, Magnitude: 4}, capacity/2)
	res := d.RunAt(cfg, 0, 0)
	if res.Throughput != capacity/2 {
		t.Fatalf("under-loaded delivery %v, want offered %v", res.Throughput, capacity/2)
	}
	if res.Backpressured {
		t.Fatal("under-loaded run must not be backpressured")
	}
	if res.OfferedLoad != capacity/2 {
		t.Fatalf("OfferedLoad %v, want %v", res.OfferedLoad, capacity/2)
	}

	// After the flash crowd, offered = 2× capacity: delivery is
	// capacity-bound and backpressured.
	res = d.RunAt(cfg, 0, 200)
	if res.Throughput != capacity {
		t.Fatalf("overloaded delivery %v, want capacity %v", res.Throughput, capacity)
	}
	if !res.Backpressured {
		t.Fatal("overloaded run must be backpressured")
	}
	if res.OfferedLoad != 2*capacity {
		t.Fatalf("OfferedLoad %v, want %v", res.OfferedLoad, 2*capacity)
	}

	// Run (no timestamp) measures at t=0.
	if got, want := d.Run(cfg, 0).Throughput, d.RunAt(cfg, 0, 0).Throughput; got != want {
		t.Fatalf("Run measured %v, want the t=0 measurement %v", got, want)
	}

	// BaseLoad ≤ 0 disables the cap entirely.
	plain := Drifting(inner, FlashCrowd{At: 0, Magnitude: 4}, 0)
	res = plain.RunAt(cfg, 0, 50)
	if res.Throughput != capacity || res.OfferedLoad != 0 || res.Backpressured {
		t.Fatalf("BaseLoad=0 must pass the measurement through, got %+v", res)
	}
}

func TestDriftingEvalPreservesFailures(t *testing.T) {
	tp := jitterTopo()
	inner := NewFluidSim(tp, cluster.Small(), SinkTuples, 1)
	d := Drifting(inner, nil, 1000)
	cfg := DefaultConfig(tp, 2)
	cfg.MaxTasks = 1 // placement failure: cannot seat one task per node
	res := d.RunAt(cfg, 0, 0)
	if !res.Failed {
		t.Skip("configuration unexpectedly placeable; failure pass-through untestable here")
	}
	if res.Throughput != 0 || res.Backpressured {
		t.Fatalf("failed run must keep zero throughput and no backpressure, got %+v", res)
	}
}

// TestParseDriftErrorPaths pins the failure modes of the -drift spec
// parser: a typo must fail loudly with a message naming the offending
// component, never silently run a stationary workload.
func TestParseDriftErrorPaths(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		// Unknown kinds, including near-misses.
		{"bogus:x=1", "unknown drift kind"},
		{"diurnall:amp=0.3", "unknown drift kind"},
		{"flashflood", "unknown drift kind"},
		// Malformed key=val pairs.
		{"flash:at", "malformed pair"},
		{"flash:at=600,mag", "malformed pair"},
		{"flash:=3", "unknown keys"},
		{"flash:at=notanumber", `value for "at"`},
		// Recognized kind, unrecognized keys.
		{"flash:typo=3", "unknown keys"},
		{"diurnal:period=3600,height=0.3", "unknown keys"},
		// A bad component anywhere in a composite fails the whole spec.
		{"diurnal:amp=0.3;bogus:x=1", "unknown drift kind"},
		{"bogus:x=1;diurnal:amp=0.3", "unknown drift kind"},
	}
	for _, c := range cases {
		p, err := ParseDrift(c.spec)
		if err == nil {
			t.Errorf("ParseDrift(%q) = %v, want error", c.spec, p)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseDrift(%q) error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}

	// Empty segments between separators are tolerated, not errors: the
	// remaining components still parse, and an all-empty spec is the
	// stationary nil profile.
	p, err := ParseDrift("diurnal:amp=0.3;;flash:at=600,mag=2;")
	if err != nil {
		t.Fatalf("empty segments must be skipped, got %v", err)
	}
	comp, ok := p.(Composite)
	if !ok || len(comp) != 2 {
		t.Fatalf("spec with empty segments parsed to %#v, want a 2-part Composite", p)
	}
	for _, spec := range []string{";", " ; ; "} {
		if p, err := ParseDrift(spec); err != nil || p != nil {
			t.Fatalf("ParseDrift(%q) = (%v, %v), want (nil, nil)", spec, p, err)
		}
	}
}
