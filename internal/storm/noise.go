package storm

import (
	"math"
	"math/rand"
)

// NoiseModel reproduces the measurement noise of the paper's setup:
// run-to-run variance from JVM warmup and scheduling jitter (a
// multiplicative lognormal term) plus occasional interference from
// students using the iMacs during evaluations (§IV-C1), modeled as a
// rare throughput dip.
type NoiseModel struct {
	// Sigma is the lognormal standard deviation (default 0.04).
	Sigma float64
	// SpikeProb is the per-run probability of interference (default 0.06).
	SpikeProb float64
	// SpikeFactor multiplies throughput during an interference run
	// (default 0.8).
	SpikeFactor float64
	// Seed decorrelates experiments; runs are deterministic given
	// (Seed, config fingerprint, run index).
	Seed int64
}

// DefaultNoise returns the calibrated noise model.
func DefaultNoise(seed int64) NoiseModel {
	return NoiseModel{Sigma: 0.04, SpikeProb: 0.06, SpikeFactor: 0.8, Seed: seed}
}

// NoNoise returns a deterministic model (multiplier always 1); tests
// and the DES-vs-fluid cross-checks use it.
func NoNoise() NoiseModel { return NoiseModel{} }

// Multiplier returns the throughput factor for one run of one
// configuration.
func (n NoiseModel) Multiplier(fingerprint uint64, runIndex int) float64 {
	if n.Sigma == 0 && n.SpikeProb == 0 {
		return 1
	}
	seed := splitmix(uint64(n.Seed) ^ fingerprint ^ (uint64(runIndex)+1)*0x9e3779b97f4a7c15)
	rng := rand.New(rand.NewSource(int64(seed)))
	m := math.Exp(n.Sigma * rng.NormFloat64())
	if rng.Float64() < n.SpikeProb {
		m *= n.SpikeFactor
	}
	return m
}

// splitmix is the SplitMix64 finalizer; it turns correlated seeds into
// well-distributed ones.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
