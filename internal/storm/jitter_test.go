package storm

import (
	"testing"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/topo"
)

func jitterTopo() *topo.Topology {
	return topo.MustNew("j",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 10, Selectivity: 1, TupleBytes: 64},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 10, Selectivity: 1, TupleBytes: 64},
		},
		[]topo.Edge{{From: 0, To: 1}},
	)
}

func TestJitteredDurationsDeterministicAndHeavyTailed(t *testing.T) {
	tp := jitterTopo()
	inner := NewFluidSim(tp, cluster.Small(), SinkTuples, 1)
	j := Jittered(inner, time.Millisecond, 7)
	cfg := DefaultConfig(tp, 2)

	if j.Duration(cfg, 3) != j.Duration(cfg, 3) {
		t.Fatal("duration must be deterministic per (config, run)")
	}
	if j.Duration(cfg, 3) == j.Duration(cfg, 4) {
		t.Fatal("different runs should draw different durations")
	}

	var min, max, total time.Duration
	min = time.Hour
	const n = 200
	for i := 0; i < n; i++ {
		d := j.Duration(cfg, i)
		if d < j.Base || d > j.Cap {
			t.Fatalf("duration %v outside [%v, %v]", d, j.Base, j.Cap)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	// Heavy tail: the worst trial dwarfs the typical one.
	if max < 5*min {
		t.Fatalf("tail too light: min %v max %v", min, max)
	}
	if mean := total / n; mean < time.Millisecond || mean > 10*time.Millisecond {
		t.Fatalf("mean duration %v implausible for base 1ms", mean)
	}
}

func TestJitteredPreservesMeasurements(t *testing.T) {
	tp := jitterTopo()
	inner := NewFluidSim(tp, cluster.Small(), SinkTuples, 1)
	j := Jittered(inner, 100*time.Microsecond, 1)
	cfg := DefaultConfig(tp, 2)
	want := inner.Run(cfg, 5)
	got := j.Run(cfg, 5)
	if got.Throughput != want.Throughput || got.Failed != want.Failed {
		t.Fatalf("jitter changed the measurement: %+v vs %+v", got, want)
	}
	if j.Metric() != inner.Metric() {
		t.Fatal("metric must pass through")
	}
}
