package storm

import (
	"fmt"

	"stormtune/internal/topo"
)

// FuseChains applies Trident-style operator fusion: maximal linear
// chains (each link with out-degree 1 into a bolt with in-degree 1) are
// merged into a single processing element, as SPADE does in System-S
// and Trident does to "prevent frequent reshuffling of data across the
// network" (§III-A). Fusion is one of the framework behaviours the
// paper notes obfuscates the impact of individual parallelism hints.
//
// The fused node sums the chain's per-tuple cost, multiplies
// selectivities, keeps the last member's tuple size, and is contentious
// if any member is. The returned mapping gives, for every original node
// index, the index of the fused node that absorbed it.
func FuseChains(t *topo.Topology) (*topo.Topology, []int) {
	n := t.N()
	// next[v] = w if (v,w) is a fusable link: v has exactly one child w,
	// w has exactly one parent v, and w is a bolt.
	next := make([]int, n)
	prevFused := make([]bool, n)
	for v := 0; v < n; v++ {
		next[v] = -1
		ch := t.Children(v)
		if len(ch) != 1 {
			continue
		}
		w := ch[0]
		if len(t.Parents(w)) != 1 || t.Nodes[w].Kind != topo.Bolt {
			continue
		}
		next[v] = w
		prevFused[w] = true
	}
	// Heads of chains: nodes not absorbed into a predecessor.
	mapping := make([]int, n)
	var nodes []topo.Node
	for v := 0; v < n; v++ {
		if prevFused[v] {
			continue
		}
		idx := len(nodes)
		merged := t.Nodes[v]
		sel := merged.Selectivity
		if sel == 0 {
			sel = 1
		}
		mapping[v] = idx
		name := merged.Name
		for w := next[v]; w != -1; w = next[w] {
			mapping[w] = idx
			merged.TimeUnits += t.Nodes[w].TimeUnits
			ws := t.Nodes[w].Selectivity
			if ws == 0 {
				ws = 1
			}
			sel *= ws
			merged.Contentious = merged.Contentious || t.Nodes[w].Contentious
			merged.TupleBytes = t.Nodes[w].TupleBytes
			name = name + "+" + t.Nodes[w].Name
		}
		merged.Name = name
		merged.Selectivity = sel
		nodes = append(nodes, merged)
	}
	// Rebuild edges between fused groups, dropping intra-group links
	// and deduplicating.
	seen := map[[2]int]bool{}
	var edges []topo.Edge
	for _, e := range t.Edges {
		f, g := mapping[e.From], mapping[e.To]
		if f == g {
			continue
		}
		key := [2]int{f, g}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, topo.Edge{From: f, To: g, Grouping: e.Grouping})
	}
	fused, err := topo.New(t.Name+"(fused)", nodes, edges)
	if err != nil {
		// Fusion of a valid topology cannot produce an invalid one;
		// a failure here is a programming error.
		panic(fmt.Sprintf("storm: fusion produced invalid topology: %v", err))
	}
	return fused, mapping
}

// FuseHints projects a per-node hint vector of the original topology
// onto a fused one: the fused node takes the maximum hint among its
// members, mirroring how Trident overrides programmer hints for fused
// groups.
func FuseHints(hints []int, mapping []int, fusedN int) []int {
	out := make([]int, fusedN)
	for i := range out {
		out[i] = 1
	}
	for v, h := range hints {
		if h > out[mapping[v]] {
			out[mapping[v]] = h
		}
	}
	return out
}
