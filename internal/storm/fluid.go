package storm

import (
	"math"

	"stormtune/internal/cluster"
	"stormtune/internal/topo"
)

// CostModel collects the framework constants of the simulation. Values
// are calibrated so that the paper's qualitative results emerge; each
// constant maps to a real Storm/Trident mechanism.
type CostModel struct {
	// FrameworkOverheadMS is per-tuple (de)serialization and queue
	// handling added to every node's service time.
	FrameworkOverheadMS float64
	// AckCostMS is acker bookkeeping per processed tuple.
	AckCostMS float64
	// RecvCostMS is receiver-thread cost per remote tuple.
	RecvCostMS float64
	// BatchOverheadSec is the per-batch coordination cost c0 (Trident
	// commit protocol).
	BatchOverheadSec float64
	// HopLatencySec is per-stage batch coordination latency on the
	// critical path (Trident's barrier and commit messages between
	// consecutive stages). It is independent of batch size and
	// parallelism, which is what caps parallelism-only tuning of
	// lightweight pipelines (Figure 8's flat "h" curves).
	HopLatencySec float64
	// ThreadSwitchPenalty taxes machine capacity per task beyond the
	// thrash threshold.
	ThreadSwitchPenalty float64
	// WorkerThreadPenalty taxes capacity per pool thread beyond 4×cores
	// (oversized pools cost context switches).
	WorkerThreadPenalty float64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		FrameworkOverheadMS: 0.005,
		AckCostMS:           0.002,
		RecvCostMS:          0.004,
		BatchOverheadSec:    0.05,
		HopLatencySec:       0.035,
		ThreadSwitchPenalty: 0.35,
		WorkerThreadPenalty: 0.01,
	}
}

// FluidSim evaluates configurations by solving for the maximum
// sustainable rate under the capacity constraints described in
// DESIGN.md §5. It is deterministic up to the noise model.
type FluidSim struct {
	Topo    *topo.Topology
	Cluster cluster.Spec
	Costs   CostModel
	Noise   NoiseModel
	// Which rate Run reports as Throughput.
	ReportMetric Metric
}

// NewFluidSim builds an evaluator with calibrated costs and noise.
func NewFluidSim(t *topo.Topology, spec cluster.Spec, metric Metric, noiseSeed int64) *FluidSim {
	return &FluidSim{
		Topo:         t,
		Cluster:      spec,
		Costs:        DefaultCosts(),
		Noise:        DefaultNoise(noiseSeed),
		ReportMetric: metric,
	}
}

// Metric implements Evaluator.
func (f *FluidSim) Metric() Metric { return f.ReportMetric }

// Run implements Evaluator. It returns the throughput one measurement
// run observes under cfg.
func (f *FluidSim) Run(cfg Config, runIndex int) Result {
	res := f.Solve(cfg)
	if res.Failed {
		return res
	}
	m := f.Noise.Multiplier(cfg.Fingerprint(), runIndex)
	res.Throughput *= m
	res.SpoutRate *= m
	res.SinkRate *= m
	res.NetworkBytesPerWorker *= m
	return res
}

// Solve computes the noise-free steady state for cfg.
func (f *FluidSim) Solve(cfg Config) Result {
	t := f.Topo
	spec := f.Cluster
	costs := f.Costs

	hints := cfg.NormalizedHints()
	nNodes := t.N()

	// Ackers are system tasks placed alongside the topology's.
	ackers := cfg.Ackers
	if ackers <= 0 {
		ackers = spec.Machines
	}
	counts := append(append([]int(nil), hints...), ackers)
	place := cluster.PlaceRoundRobin(spec, counts)
	totalTasks := 0
	for _, c := range hints {
		totalTasks += c
	}
	if place.Overloaded() {
		return Result{Failed: true, Failure: FailurePlacement, Bottleneck: "scheduler", Tasks: totalTasks}
	}

	rates := t.Rates()
	spouts := t.Spouts()
	// Aggregate spout emission per unit λ, weighted by rate factors.
	spoutSum := 0.0
	for _, s := range spouts {
		spoutSum += rates[s]
	}

	// Output rate per node per unit per-spout rate.
	outRate := make([]float64, nNodes)
	for v := range t.Nodes {
		if t.Nodes[v].Kind == topo.Spout {
			outRate[v] = rates[v]
			continue
		}
		sel := t.Nodes[v].Selectivity
		if sel == 0 {
			sel = 1
		}
		outRate[v] = rates[v] * sel
	}

	// Per-instance CPU demand per unit rate (ms/s): contentious nodes'
	// service time scales with their instance count (§IV-B2), which
	// exactly cancels the parallelism gain.
	instDemand := make([]float64, nNodes)
	svc := make([]float64, nNodes)
	for v := range t.Nodes {
		svc[v] = t.Nodes[v].TimeUnits + costs.FrameworkOverheadMS
		d := rates[v] * svc[v]
		if !t.Nodes[v].Contentious {
			d /= float64(hints[v])
		}
		instDemand[v] = d
	}

	bounds := map[string]float64{}

	// 1. Per-instance bound: an instance is single-threaded and owns at
	// most one core.
	lInst := math.Inf(1)
	for v := range t.Nodes {
		if instDemand[v] <= 0 {
			continue
		}
		if b := spec.CoreMillisPerSec / instDemand[v]; b < lInst {
			lInst = b
		}
	}
	bounds["instance"] = lInst

	// 2. Per-machine CPU bound, including acker and receiver work.
	remoteFrac := 0.0
	if spec.Machines > 1 {
		remoteFrac = 1 - 1/float64(spec.Machines)
	}
	totalArrivals := 0.0 // tuples/s per unit rate, for ack work
	for v := range t.Nodes {
		totalArrivals += rates[v]
	}
	ackWorkPerAcker := totalArrivals * costs.AckCostMS / float64(ackers)

	demandOnMachine := make([]float64, spec.Machines)
	recvOnMachine := make([]float64, spec.Machines)
	for v := 0; v < nNodes; v++ {
		for _, tid := range place.NodeTasks[v] {
			m := place.MachineOf[tid]
			demandOnMachine[m] += instDemand[v]
			// Remote arrivals for this instance pass the machine's
			// receiver threads.
			recvOnMachine[m] += rates[v] / float64(hints[v]) * remoteFrac
		}
	}
	for _, tid := range place.NodeTasks[nNodes] { // ackers
		m := place.MachineOf[tid]
		demandOnMachine[m] += ackWorkPerAcker
	}
	lMach := math.Inf(1)
	effCores := float64(spec.CoresPerMachine)
	if float64(cfg.WorkerThreads) < effCores {
		effCores = float64(cfg.WorkerThreads)
	}
	threadExcess := float64(cfg.WorkerThreads) - 4*float64(spec.CoresPerMachine)
	threadTax := 1.0
	if threadExcess > 0 {
		threadTax = 1 + costs.WorkerThreadPenalty*threadExcess
	}
	for m := 0; m < spec.Machines; m++ {
		d := demandOnMachine[m] + recvOnMachine[m]*costs.RecvCostMS
		if d <= 0 {
			continue
		}
		thrash := 1.0
		if excess := float64(place.TasksOn[m]) - spec.ThrashTasksPerCore*float64(spec.CoresPerMachine); excess > 0 {
			thrash = 1 + costs.ThreadSwitchPenalty*excess
		}
		cap := effCores * spec.CoreMillisPerSec / (thrash * threadTax)
		if b := cap / d; b < lMach {
			lMach = b
		}
	}
	bounds["machine"] = lMach

	// 3. Acker task bound.
	if ackWorkPerAcker > 0 {
		bounds["acker"] = spec.CoreMillisPerSec / ackWorkPerAcker
	}

	// 4. Receiver-thread bound per machine.
	lRecv := math.Inf(1)
	recvCap := float64(cfg.ReceiverThreads) * spec.CoreMillisPerSec
	for m := 0; m < spec.Machines; m++ {
		if recvOnMachine[m] <= 0 {
			continue
		}
		if b := recvCap / (recvOnMachine[m] * costs.RecvCostMS); b < lRecv {
			lRecv = b
		}
	}
	bounds["receiver"] = lRecv

	// 5. NIC ingress bound per machine.
	bytesIn := make([]float64, spec.Machines)
	for _, e := range t.Edges {
		per := outRate[e.From] * float64(t.Nodes[e.From].TupleBytes) * remoteFrac
		for _, tid := range place.NodeTasks[e.To] {
			bytesIn[place.MachineOf[tid]] += per / float64(hints[e.To])
		}
	}
	lNIC := math.Inf(1)
	for m := 0; m < spec.Machines; m++ {
		if bytesIn[m] <= 0 {
			continue
		}
		if b := spec.NICBytesPerSec / bytesIn[m]; b < lNIC {
			lNIC = b
		}
	}
	bounds["nic"] = lNIC

	// 6. Batch pipeline bound: at most BatchParallelism batches in
	// flight, each needing L seconds end to end. A batch carries
	// BatchSize source tuples per spout, so the bound is directly in
	// per-spout rate. Stage times inflate by the cluster's worst
	// context-switch factor: a thrashing machine slows every stage
	// whose instances it hosts, and the per-batch barrier waits for the
	// slowest instance.
	maxThrash := 1.0
	for m := 0; m < spec.Machines; m++ {
		if excess := float64(place.TasksOn[m]) - spec.ThrashTasksPerCore*float64(spec.CoresPerMachine); excess > 0 {
			if th := 1 + costs.ThreadSwitchPenalty*excess; th > maxThrash {
				maxThrash = th
			}
		}
	}
	bounds["batch"] = f.batchBound(cfg, hints, rates, svc, maxThrash)

	lambda := math.Inf(1)
	bottleneck := "none"
	for name, b := range bounds {
		if b < lambda {
			lambda = b
			bottleneck = name
		}
	}
	if math.IsInf(lambda, 1) || lambda < 0 {
		lambda = 0
	}

	sinkSum := 0.0
	for _, s := range t.Sinks() {
		sinkSum += rates[s]
	}
	totalBytes := 0.0
	for _, e := range t.Edges {
		totalBytes += outRate[e.From] * float64(t.Nodes[e.From].TupleBytes) * remoteFrac
	}

	res := Result{
		SpoutRate:             lambda * spoutSum,
		SinkRate:              lambda * sinkSum,
		NetworkBytesPerWorker: lambda * totalBytes / float64(spec.Machines),
		Bottleneck:            bottleneck,
		Tasks:                 totalTasks,
	}
	if f.ReportMetric == SourceTuples {
		res.Throughput = res.SpoutRate
	} else {
		res.Throughput = res.SinkRate
	}
	return res
}

// batchBound returns the pipeline-limited aggregate source rate
// bp × bs / L(bs), where L is the batch latency along the critical
// path.
func (f *FluidSim) batchBound(cfg Config, hints []int, rates, svc []float64, thrash float64) float64 {
	t := f.Topo
	costs := f.Costs
	bs := float64(cfg.BatchSize)

	// stageSec[v]: time for a batch's tuples to clear node v.
	best := make([]float64, t.N())
	hops := make([]int, t.N())
	maxL, maxHops := 0.0, 0
	for _, v := range t.TopoOrder() {
		b := 0.0
		h := 0
		for _, p := range t.Parents(v) {
			if best[p] > b {
				b = best[p]
			}
			if hops[p] > h {
				h = hops[p]
			}
		}
		eff := float64(hints[v])
		if t.Nodes[v].Contentious {
			eff = 1
		}
		stage := bs * rates[v] * svc[v] * thrash / (1000 * eff)
		best[v] = b + stage
		hops[v] = h + 1
		if best[v] > maxL {
			maxL = best[v]
		}
		if hops[v] > maxHops {
			maxHops = hops[v]
		}
	}
	latency := costs.BatchOverheadSec + maxL + costs.HopLatencySec*float64(maxHops)
	if latency <= 0 {
		return math.Inf(1)
	}
	return float64(cfg.BatchParallelism) * bs / latency
}
