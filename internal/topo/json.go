package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonTopology is the on-disk schema for user-provided topologies.
type jsonTopology struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "spout" or "bolt"
	TimeUnits   float64 `json:"time_units"`
	Contentious bool    `json:"contentious,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`
	TupleBytes  int     `json:"tuple_bytes,omitempty"`
	RateFactor  float64 `json:"rate_factor,omitempty"`
}

type jsonEdge struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Grouping string `json:"grouping,omitempty"` // "shuffle" (default), "fields", "global"
}

// WriteJSON serializes the topology in the user-facing schema.
func (t *Topology) WriteJSON(w io.Writer) error {
	jt := jsonTopology{Name: t.Name}
	for _, n := range t.Nodes {
		jt.Nodes = append(jt.Nodes, jsonNode{
			Name: n.Name, Kind: n.Kind.String(), TimeUnits: n.TimeUnits,
			Contentious: n.Contentious, Selectivity: n.Selectivity,
			TupleBytes: n.TupleBytes, RateFactor: n.RateFactor,
		})
	}
	for _, e := range t.Edges {
		jt.Edges = append(jt.Edges, jsonEdge{
			From: t.Nodes[e.From].Name, To: t.Nodes[e.To].Name,
			Grouping: e.Grouping.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON parses and validates a topology from the user-facing
// schema. Node references in edges are by name; groupings default to
// shuffle; selectivity defaults to 1.
func ReadJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topo: decoding JSON: %w", err)
	}
	if jt.Name == "" {
		jt.Name = "topology"
	}
	idx := map[string]int{}
	nodes := make([]Node, 0, len(jt.Nodes))
	for i, jn := range jt.Nodes {
		if jn.Name == "" {
			return nil, fmt.Errorf("topo: node %d has no name", i)
		}
		if _, dup := idx[jn.Name]; dup {
			return nil, fmt.Errorf("topo: duplicate node name %q", jn.Name)
		}
		var kind Kind
		switch jn.Kind {
		case "spout":
			kind = Spout
		case "bolt":
			kind = Bolt
		default:
			return nil, fmt.Errorf("topo: node %q has unknown kind %q (want spout or bolt)", jn.Name, jn.Kind)
		}
		sel := jn.Selectivity
		if sel == 0 {
			sel = 1
		}
		bytes := jn.TupleBytes
		if bytes == 0 {
			bytes = 256
		}
		idx[jn.Name] = len(nodes)
		nodes = append(nodes, Node{
			Name: jn.Name, Kind: kind, TimeUnits: jn.TimeUnits,
			Contentious: jn.Contentious, Selectivity: sel,
			TupleBytes: bytes, RateFactor: jn.RateFactor,
		})
	}
	edges := make([]Edge, 0, len(jt.Edges))
	for i, je := range jt.Edges {
		from, ok := idx[je.From]
		if !ok {
			return nil, fmt.Errorf("topo: edge %d references unknown node %q", i, je.From)
		}
		to, ok := idx[je.To]
		if !ok {
			return nil, fmt.Errorf("topo: edge %d references unknown node %q", i, je.To)
		}
		var g Grouping
		switch je.Grouping {
		case "", "shuffle":
			g = Shuffle
		case "fields":
			g = Fields
		case "global":
			g = Global
		default:
			return nil, fmt.Errorf("topo: edge %d has unknown grouping %q", i, je.Grouping)
		}
		edges = append(edges, Edge{From: from, To: to, Grouping: g})
	}
	return New(jt.Name, nodes, edges)
}

// LoadJSONFile reads a topology spec from a file.
func LoadJSONFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
