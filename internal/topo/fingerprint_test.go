package topo

import "testing"

// TestFingerprintGolden pins Fingerprint's wire value. The fingerprint
// is a persistence format, not just an equality check: session
// archives key tuning evidence by it, and remote workers are verified
// against it across process and version boundaries. If this test
// fails, the hash input layout changed — which orphans every existing
// archive record and breaks mixed-version client/worker fleets — so
// fix the change rather than the constants here.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name string
		topo *Topology
		want uint64
	}{
		{"small-seed1", BuildSynthetic("small", Condition{}, 1), 0xa674e04fbc424ec1},
		{"medium-seed1", BuildSynthetic("medium", Condition{}, 1), 0x901043a6bd0344c3},
		{"large-tiim50-cont20-seed7",
			BuildSynthetic("large", Condition{TimeImbalance: 0.5, ContentiousFraction: 0.2}, 7),
			0x9db2e707a53e052c},
		{"sundog", Sundog(), 0x193463952037ae57},
	}
	for _, c := range cases {
		if got := c.topo.Fingerprint(); got != c.want {
			t.Errorf("%s: Fingerprint() = %016x, want %016x (hash layout changed: archive keys and remote verification break)",
				c.name, got, c.want)
		}
	}
}

// TestFingerprintStability: equal structure hashes equal, across
// independently built instances and clones.
func TestFingerprintStability(t *testing.T) {
	a := BuildSynthetic("small", Condition{}, 1)
	b := BuildSynthetic("small", Condition{}, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two identical builds fingerprint differently")
	}
	if c := a.Clone(); c.Fingerprint() != a.Fingerprint() {
		t.Fatal("clone fingerprints differently from its original")
	}
}

// TestFingerprintCollisions: every structural field participates in
// the hash — mutating any one of them must change the fingerprint,
// otherwise two genuinely different topologies would share archive
// evidence and pass remote verification against each other.
func TestFingerprintCollisions(t *testing.T) {
	base := func() *Topology { return BuildSynthetic("small", Condition{}, 1) }
	fp := base().Fingerprint()

	mutations := map[string]func(*Topology){
		"name":             func(t *Topology) { t.Name = "renamed" },
		"node-name":        func(t *Topology) { t.Nodes[1].Name += "x" },
		"node-kind":        func(t *Topology) { t.Nodes[1].Kind = Spout },
		"node-time-units":  func(t *Topology) { t.Nodes[1].TimeUnits *= 2 },
		"node-contentious": func(t *Topology) { t.Nodes[1].Contentious = !t.Nodes[1].Contentious },
		"node-selectivity": func(t *Topology) { t.Nodes[1].Selectivity += 0.5 },
		"node-tuple-bytes": func(t *Topology) { t.Nodes[1].TupleBytes += 8 },
		"node-rate-factor": func(t *Topology) { t.Nodes[1].RateFactor += 0.25 },
		"edge-endpoint":    func(t *Topology) { t.Edges[0].To = t.Edges[1].To },
		"edge-grouping":    func(t *Topology) { t.Edges[0].Grouping = Global },
	}
	for name, mutate := range mutations {
		m := base()
		mutate(m)
		if m.Fingerprint() == fp {
			t.Errorf("mutation %q does not change the fingerprint", name)
		}
	}

	// Different generation parameters — same size, same name shape —
	// must not collide either (a seed-2 donor is not seed-1 evidence).
	// With zero imbalance/contention the seed draws nothing, so use a
	// condition where it actually shapes the node parameters.
	cond := Condition{TimeImbalance: 0.5}
	if BuildSynthetic("small", cond, 2).Fingerprint() == BuildSynthetic("small", cond, 1).Fingerprint() {
		t.Error("seed 1 and seed 2 imbalanced small topologies collide")
	}
	// And pairwise across the stock topologies.
	seen := map[uint64]string{}
	for _, c := range []struct {
		name string
		topo *Topology
	}{
		{"small", BuildSynthetic("small", Condition{}, 1)},
		{"medium", BuildSynthetic("medium", Condition{}, 1)},
		{"large", BuildSynthetic("large", Condition{}, 1)},
		{"sundog", Sundog()},
	} {
		got := c.topo.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s share fingerprint %016x", c.name, prev, got)
		}
		seen[got] = c.name
	}
}
