package topo

// LiteratureTopology is one row of Table III: operator counts of stream
// topologies published in the literature, which the paper surveys to
// justify its 10/50/100-vertex synthetic sizes.
type LiteratureTopology struct {
	Year        int
	Description string
	Operators   int
}

// TableIII reproduces the paper's literature survey verbatim.
func TableIII() []LiteratureTopology {
	return []LiteratureTopology{
		{2003, "Data Dissemination Problem in Aurora [27]", 40},
		{2004, "Linear Road Benchmark in [28]", 60},
		{2013, "Linear Road Benchmark used in [29]", 7},
		{2013, "DEBS'13 Grand Challenge Query [30]", 3},
	}
}
