package topo

// Sundog builds the modified Sundog entity-ranking topology of Figure 2
// (Fischer, Blanco, Mika & Bernstein, ISWC 2015), as adapted for the
// paper: input is read from HDFS (a common-crawl dump stands in for
// search logs) and all distributed key-value-store calls are dummied
// out — which leaves the workload *shape* intact while invalidating the
// rankings, exactly as §IV-A describes.
//
// Phase 1 (reading, preprocessing, counting): HDFS1 → Filter →
// PPS1→PPS2→PPS3 feeding counters CNT1..CNT5; term statistics are
// written to DKVS1. Phase 2 (feature computation): FC1..FC7 combine
// counter outputs. Phase 3 (ranking): M1..M3 merge features with
// semi-static features from DKVS2 and R1 scores entity pairs, writing
// results to HDFS2/HDFS3.
//
// Per-tuple costs are in compute units (1 unit ≈ 1 ms); Sundog operates
// on lightweight tuples (parsed text lines), so costs are in the
// micro- to sub-millisecond range, giving the million-tuples-per-second
// throughput regime of Figure 8.
func Sundog() *Topology {
	// Node indices; keep in sync with the edges below.
	const (
		hdfs1 = iota // spout: read common-crawl lines
		filter
		dkvs1 // dummied DKVS writer (terminal)
		pps1
		pps2
		pps3
		cnt1
		cnt2
		cnt3
		cnt4
		cnt5
		fc1
		fc2
		fc3
		fc4
		fc5
		fc6
		fc7
		dkvs2 // spout: semi-static feature table scan (dummied, returns 1)
		m1
		m2
		m3
		r1
		hdfs2
		hdfs3
		nNodes
	)
	us := func(micros float64) float64 { return micros / 1000 } // µs → compute units (ms)

	nodes := make([]Node, nNodes)
	set := func(i int, name string, kind Kind, costMicros, sel float64, bytes int) {
		nodes[i] = Node{Name: name, Kind: kind, TimeUnits: us(costMicros), Selectivity: sel, TupleBytes: bytes}
	}
	// Reading and filtering: the dictionary filter drops most lines
	// (selectivity < 1), which is what makes downstream phases cheap
	// relative to ingest.
	set(hdfs1, "HDFS1", Spout, 3, 1, 240)
	set(filter, "Filter", Bolt, 3, 0.30, 160)
	set(dkvs1, "DKVS1", Bolt, 5, 1, 48)
	// Preprocessing steps build entity pairs.
	set(pps1, "PPS1", Bolt, 12, 1, 152)
	set(pps2, "PPS2", Bolt, 10, 1, 144)
	set(pps3, "PPS3", Bolt, 10, 0.8, 136)
	// Counters aggregate (fields grouping), emitting periodic updates.
	set(cnt1, "CNT1", Bolt, 7, 0.5, 64)
	set(cnt2, "CNT2", Bolt, 7, 0.5, 64)
	set(cnt3, "CNT3", Bolt, 7, 0.5, 64)
	set(cnt4, "CNT4", Bolt, 7, 0.5, 64)
	set(cnt5, "CNT5", Bolt, 7, 0.5, 64)
	// Feature computation.
	set(fc1, "FC1", Bolt, 8, 1, 80)
	set(fc2, "FC2", Bolt, 8, 1, 80)
	set(fc3, "FC3", Bolt, 8, 1, 80)
	set(fc4, "FC4", Bolt, 8, 1, 80)
	set(fc5, "FC5", Bolt, 8, 1, 80)
	set(fc6, "FC6", Bolt, 8, 1, 80)
	set(fc7, "FC7", Bolt, 8, 1, 80)
	// Semi-static features arrive on a slow spout ("do not change often
	// or not at all", §IV-A): it trickles at 1% of the main ingest rate.
	set(dkvs2, "DKVS2", Spout, 4, 1, 88)
	nodes[dkvs2].RateFactor = 0.01
	set(m1, "M1", Bolt, 8, 0.9, 104)
	set(m2, "M2", Bolt, 8, 0.9, 104)
	set(m3, "M3", Bolt, 8, 0.9, 104)
	set(r1, "R1", Bolt, 1, 1, 120) // decision-tree scoring (high-rate, light)
	set(hdfs2, "HDFS2", Bolt, 1, 1, 120)
	set(hdfs3, "HDFS3", Bolt, 1, 1, 120)

	edges := []Edge{
		{hdfs1, filter, Shuffle},
		{filter, dkvs1, Fields}, // term-occurrence stats to the DKVS
		{filter, pps1, Shuffle},
		{pps1, pps2, Shuffle},
		{pps2, pps3, Shuffle},
		// Counters hang off the preprocessing chain; fields grouping
		// guarantees same-entity tuples meet the same counter instance.
		{pps1, cnt1, Fields},
		{pps2, cnt2, Fields},
		{pps2, cnt3, Fields},
		{pps3, cnt4, Fields},
		{pps3, cnt5, Fields},
		// Feature computation fan-in/fan-out.
		{cnt1, fc1, Fields},
		{cnt1, fc2, Fields},
		{cnt2, fc2, Fields},
		{cnt2, fc3, Fields},
		{cnt3, fc4, Fields},
		{cnt3, fc5, Fields},
		{cnt4, fc5, Fields},
		{cnt4, fc6, Fields},
		{cnt5, fc6, Fields},
		{cnt5, fc7, Fields},
		// Merging with semi-static features.
		{fc1, m1, Fields},
		{fc2, m1, Fields},
		{fc3, m1, Fields},
		{fc4, m2, Fields},
		{fc5, m2, Fields},
		{fc6, m3, Fields},
		{fc7, m3, Fields},
		{dkvs2, m1, Shuffle},
		{dkvs2, m2, Shuffle},
		{dkvs2, m3, Shuffle},
		// Ranking and output.
		{m1, r1, Fields},
		{m2, r1, Fields},
		{m3, r1, Fields},
		{r1, hdfs2, Shuffle},
		{r1, hdfs3, Shuffle},
	}
	return MustNew("sundog", nodes, edges)
}
