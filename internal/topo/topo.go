// Package topo models Storm/Trident topologies: directed acyclic
// operator graphs of spouts and bolts with per-node time complexity
// (compute units per tuple, 1 unit ≈ 1 ms of busy-wait as in §IV-B1),
// resource-contention flags (§IV-B2), selectivity, and grouping
// strategies on edges. It also provides the synthetic modification
// passes, the recursive base-parallelism weights used by the informed
// optimizers, and the Sundog real-world topology of Figure 2.
package topo

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Kind distinguishes spouts (sources) from bolts.
type Kind int

// Node kinds.
const (
	Spout Kind = iota
	Bolt
)

// String names the kind.
func (k Kind) String() string {
	if k == Spout {
		return "spout"
	}
	return "bolt"
}

// Grouping is the strategy by which tuples on an edge are routed to
// downstream task instances.
type Grouping int

// Grouping strategies (the synthetic topologies use shuffle only,
// §IV-B4; Sundog mixes shuffle and fields grouping).
const (
	Shuffle Grouping = iota
	Fields
	Global
)

// String names the grouping.
func (g Grouping) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	default:
		return "global"
	}
}

// Node is one operator of the topology.
type Node struct {
	Name string
	Kind Kind
	// TimeUnits is the compute cost per tuple in compute-resource units
	// (1 unit ≈ 1 ms, §IV-B1). For spouts this is the per-tuple emit cost.
	TimeUnits float64
	// Contentious marks the node as bound by a globally contended
	// resource: its effective service time is multiplied by its total
	// task-instance count (§IV-B2).
	Contentious bool
	// Selectivity is the number of tuples emitted per input tuple on
	// each outgoing edge (§IV-B3). Spouts ignore it.
	Selectivity float64
	// TupleBytes is the serialized size of one emitted tuple, used for
	// the network-load accounting of Figure 3.
	TupleBytes int
	// RateFactor scales a spout's emission rate relative to the
	// topology's base rate λ (default 1). Slow auxiliary sources — like
	// Sundog's semi-static feature table — use factors ≪ 1. Bolts
	// ignore it.
	RateFactor float64
}

// Edge connects two nodes.
type Edge struct {
	From, To int
	Grouping Grouping
}

// Topology is an operator DAG.
type Topology struct {
	Name  string
	Nodes []Node
	Edges []Edge

	adj [][]int // computed lazily by buildIndex
	in  [][]int
}

// New constructs a topology and validates it (see Validate).
func New(name string, nodes []Node, edges []Edge) (*Topology, error) {
	t := &Topology{Name: name, Nodes: nodes, Edges: edges}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.buildIndex()
	return t, nil
}

// MustNew is New that panics on error, for statically known topologies.
func MustNew(name string, nodes []Node, edges []Edge) *Topology {
	t, err := New(name, nodes, edges)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) buildIndex() {
	n := len(t.Nodes)
	t.adj = make([][]int, n)
	t.in = make([][]int, n)
	for _, e := range t.Edges {
		t.adj[e.From] = append(t.adj[e.From], e.To)
		t.in[e.To] = append(t.in[e.To], e.From)
	}
	for v := 0; v < n; v++ {
		sort.Ints(t.adj[v])
		sort.Ints(t.in[v])
	}
}

// Validate checks structural invariants: edge endpoints in range, no
// self loops, acyclicity, spouts have no in-edges, every node reachable
// from some spout or a spout itself, at least one spout and one sink,
// positive time units, non-negative selectivity.
func (t *Topology) Validate() error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("topo %s: no nodes", t.Name)
	}
	in := make([]int, n)
	adj := make([][]int, n)
	for i, e := range t.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("topo %s: edge %d endpoints (%d,%d) out of range", t.Name, i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("topo %s: self loop at node %d", t.Name, e.From)
		}
		adj[e.From] = append(adj[e.From], e.To)
		in[e.To]++
	}
	spouts := 0
	for i, nd := range t.Nodes {
		if nd.Kind == Spout {
			spouts++
			if in[i] != 0 {
				return fmt.Errorf("topo %s: spout %s has incoming edges", t.Name, nd.Name)
			}
		} else if in[i] == 0 {
			return fmt.Errorf("topo %s: bolt %s has no incoming edges", t.Name, nd.Name)
		}
		if nd.TimeUnits < 0 {
			return fmt.Errorf("topo %s: node %s has negative time units", t.Name, nd.Name)
		}
		if nd.Selectivity < 0 {
			return fmt.Errorf("topo %s: node %s has negative selectivity", t.Name, nd.Name)
		}
	}
	if spouts == 0 {
		return fmt.Errorf("topo %s: no spouts", t.Name)
	}
	// Cycle check via Kahn's algorithm.
	deg := append([]int(nil), in...)
	var queue []int
	for i, d := range deg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	visited := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		for _, w := range adj[v] {
			deg[w]--
			if deg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if visited != n {
		return fmt.Errorf("topo %s: graph has a cycle", t.Name)
	}
	return nil
}

// N returns the node count.
func (t *Topology) N() int { return len(t.Nodes) }

// Fingerprint hashes the topology's full structure — name, every node
// parameter, every edge. Two topologies with the same name and node
// count but different generation parameters (seed, imbalance,
// contention) hash differently, which is what lets a remote evaluation
// client verify the worker serves the exact topology it is tuning.
func (t *Topology) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wi(math.Float64bits(v)) }
	h.Write([]byte(t.Name))
	for _, n := range t.Nodes {
		h.Write([]byte{0})
		h.Write([]byte(n.Name))
		wi(uint64(n.Kind))
		wf(n.TimeUnits)
		if n.Contentious {
			wi(1)
		} else {
			wi(0)
		}
		wf(n.Selectivity)
		wi(uint64(n.TupleBytes))
		wf(n.RateFactor)
	}
	for _, e := range t.Edges {
		wi(uint64(e.From))
		wi(uint64(e.To))
		wi(uint64(e.Grouping))
	}
	return h.Sum64()
}

// Children returns the downstream neighbours of v.
func (t *Topology) Children(v int) []int { return t.adj[v] }

// Parents returns the upstream neighbours of v.
func (t *Topology) Parents(v int) []int { return t.in[v] }

// Spouts returns the indices of all spout nodes.
func (t *Topology) Spouts() []int {
	var out []int
	for i, n := range t.Nodes {
		if n.Kind == Spout {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns the indices of nodes with no outgoing edges.
func (t *Topology) Sinks() []int {
	var out []int
	for i := range t.Nodes {
		if len(t.adj[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns a topological order of the nodes.
func (t *Topology) TopoOrder() []int {
	n := len(t.Nodes)
	deg := make([]int, n)
	for _, e := range t.Edges {
		deg[e.To]++
	}
	var queue, order []int
	for i, d := range deg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range t.adj[v] {
			deg[w]--
			if deg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order
}

// Rates returns, for a unit aggregate emission rate at every spout, the
// tuple arrival rate at each node. Storm semantics: every outgoing edge
// carries the node's full output stream (selectivity applied per edge).
func (t *Topology) Rates() []float64 {
	rate := make([]float64, len(t.Nodes))
	for _, s := range t.Spouts() {
		rf := t.Nodes[s].RateFactor
		if rf == 0 {
			rf = 1
		}
		rate[s] = rf
	}
	for _, v := range t.TopoOrder() {
		var out float64
		if t.Nodes[v].Kind == Spout {
			out = rate[v]
		} else {
			sel := t.Nodes[v].Selectivity
			if sel == 0 {
				sel = 1
			}
			out = rate[v] * sel
		}
		for _, w := range t.adj[v] {
			rate[w] += out
		}
	}
	return rate
}

// BaseWeights computes the recursive "base parallelism weight" of §V-A:
// spouts have weight 1; a bolt's weight is the sum of its parents'
// weights. These are the weights the informed optimizers (ipla, ibo)
// multiply.
func (t *Topology) BaseWeights() []float64 {
	w := make([]float64, len(t.Nodes))
	for _, v := range t.TopoOrder() {
		if t.Nodes[v].Kind == Spout {
			w[v] = 1
			continue
		}
		s := 0.0
		for _, p := range t.in[v] {
			s += w[p]
		}
		w[v] = s
	}
	return w
}

// TotalTimeUnits sums time complexity over all nodes (used when
// selecting contentious nodes by compute mass, §IV-B2).
func (t *Topology) TotalTimeUnits() float64 {
	s := 0.0
	for _, n := range t.Nodes {
		s += n.TimeUnits
	}
	return s
}

// ContentiousShare returns the fraction of total compute units that is
// flagged contentious.
func (t *Topology) ContentiousShare() float64 {
	total := t.TotalTimeUnits()
	if total == 0 {
		return 0
	}
	c := 0.0
	for _, n := range t.Nodes {
		if n.Contentious {
			c += n.TimeUnits
		}
	}
	return c / total
}

// Clone deep-copies the topology.
func (t *Topology) Clone() *Topology {
	nodes := append([]Node(nil), t.Nodes...)
	edges := append([]Edge(nil), t.Edges...)
	c := &Topology{Name: t.Name, Nodes: nodes, Edges: edges}
	c.buildIndex()
	return c
}

// CriticalPathUnits returns the largest sum of TimeUnits along any
// spout→sink path; the batch-latency model uses it.
func (t *Topology) CriticalPathUnits() float64 {
	best := make([]float64, len(t.Nodes))
	maxAll := 0.0
	for _, v := range t.TopoOrder() {
		b := 0.0
		for _, p := range t.in[v] {
			if best[p] > b {
				b = best[p]
			}
		}
		best[v] = b + t.Nodes[v].TimeUnits
		if best[v] > maxAll {
			maxAll = best[v]
		}
	}
	return maxAll
}

// MaxFiniteWeight returns the largest base weight, guarding against the
// exponential growth deep layered graphs can exhibit.
func (t *Topology) MaxFiniteWeight() float64 {
	m := 0.0
	for _, w := range t.BaseWeights() {
		if !math.IsInf(w, 0) && w > m {
			m = w
		}
	}
	return m
}
