package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"stormtune/internal/ggen"
)

// SyntheticOptions control how a GGen DAG becomes a Storm topology and
// which of the paper's modifications are applied (§IV-B).
type SyntheticOptions struct {
	// BaseTimeUnits is the target compute cost per tuple; the paper
	// sets 20 units (≈20 ms).
	BaseTimeUnits float64
	// TimeImbalance selects between homogeneous cost (0) and the fully
	// imbalanced variant (1) where costs are uniform in
	// [0, 2×BaseTimeUnits], preserving the mean (§IV-B1). Intermediate
	// values interpolate the spread.
	TimeImbalance float64
	// ContentiousFraction is the share of total compute units flagged
	// as resource-contentious (§IV-B2); the paper uses 0 or 0.25.
	ContentiousFraction float64
	// TupleBytes sets the per-tuple wire size (Figure 3 accounting);
	// default 4096.
	TupleBytes int
	// Seed drives the random modifications.
	Seed int64
}

// DefaultSynthetic returns the paper's base configuration: 20 compute
// units per tuple, no imbalance, no contention.
func DefaultSynthetic() SyntheticOptions {
	return SyntheticOptions{BaseTimeUnits: 20, TupleBytes: 4096, Seed: 1}
}

// FromDAG converts a generated DAG into a topology: sources become
// spouts, everything else bolts, every edge uses shuffle grouping
// (§IV-B4), and the modification passes are applied.
func FromDAG(name string, d *ggen.DAG, opts SyntheticOptions) *Topology {
	if opts.BaseTimeUnits <= 0 {
		opts.BaseTimeUnits = 20
	}
	if opts.TupleBytes <= 0 {
		opts.TupleBytes = 4096
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	isSource := make([]bool, d.V)
	for _, s := range d.Sources() {
		isSource[s] = true
	}
	nodes := make([]Node, d.V)
	for v := 0; v < d.V; v++ {
		kind := Bolt
		prefix := "bolt"
		if isSource[v] {
			kind = Spout
			prefix = "spout"
		}
		nodes[v] = Node{
			Name:        fmt.Sprintf("%s-%d", prefix, v),
			Kind:        kind,
			TimeUnits:   opts.BaseTimeUnits,
			Selectivity: 1,
			TupleBytes:  opts.TupleBytes,
		}
	}
	var edges []Edge
	for u := 0; u < d.V; u++ {
		for _, v := range d.Adj[u] {
			edges = append(edges, Edge{From: u, To: v, Grouping: Shuffle})
		}
	}
	t := MustNew(name, nodes, edges)
	if opts.TimeImbalance > 0 {
		ApplyTimeImbalance(t, rng, opts.BaseTimeUnits, opts.TimeImbalance)
	}
	if opts.ContentiousFraction > 0 {
		ApplyContention(t, rng, opts.ContentiousFraction)
	}
	return t
}

// ApplyTimeImbalance redraws per-node compute cost from a uniform
// distribution with the given mean, spread scaled by imbalance ∈ [0,1]:
// imbalance 1 gives U(0, 2·mean) as in the paper ("a uniform
// distribution of compute length with a mean of 20 compute units
// (between 0 and 40)").
func ApplyTimeImbalance(t *Topology, rng *rand.Rand, mean, imbalance float64) {
	if imbalance < 0 {
		imbalance = 0
	}
	if imbalance > 1 {
		imbalance = 1
	}
	for i := range t.Nodes {
		// U(mean-(spread), mean+(spread)) with spread = imbalance×mean.
		u := 2*rng.Float64() - 1 // [-1, 1)
		t.Nodes[i].TimeUnits = mean + u*imbalance*mean
		if t.Nodes[i].TimeUnits < 0.1 {
			t.Nodes[i].TimeUnits = 0.1
		}
	}
}

// ApplyContention flags nodes as resource-contentious until the flagged
// share of total compute units reaches fraction. Per §IV-B2 the
// selection is based on compute mass rather than node count: "we select
// nodes with a total time complexity of [fraction × total] units ...
// and flag them". Nodes are drawn in random order; the pass stops at
// the node whose inclusion gets closest to the target without wildly
// overshooting.
func ApplyContention(t *Topology, rng *rand.Rand, fraction float64) {
	if fraction <= 0 {
		return
	}
	if fraction > 1 {
		fraction = 1
	}
	target := fraction * t.TotalTimeUnits()
	order := rng.Perm(len(t.Nodes))
	// Spouts are never contentious — contention models shared backend
	// resources bolts call into.
	var bolts []int
	for _, i := range order {
		if t.Nodes[i].Kind == Bolt {
			bolts = append(bolts, i)
		}
	}
	acc := 0.0
	for _, i := range bolts {
		if acc >= target {
			break
		}
		cost := t.Nodes[i].TimeUnits
		// Skip a node that would overshoot badly unless nothing else
		// can fill the gap.
		if acc+cost > target && (target-acc) < cost/2 {
			continue
		}
		t.Nodes[i].Contentious = true
		acc += cost
	}
	// If rounding left us short with nothing flagged, flag the closest
	// single bolt so the condition is at least represented.
	if acc == 0 && len(bolts) > 0 {
		best := bolts[0]
		for _, i := range bolts {
			if diff(t.Nodes[i].TimeUnits, target) < diff(t.Nodes[best].TimeUnits, target) {
				best = i
			}
		}
		t.Nodes[best].Contentious = true
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Condition identifies one cell of the paper's 2×2 synthetic experiment
// grid (Figure 4): time-complexity imbalance × contentious share.
type Condition struct {
	TimeImbalance       float64
	ContentiousFraction float64
}

// Label renders a condition the way the paper's figures caption it.
func (c Condition) Label() string {
	ti := "0% TiIm"
	if c.TimeImbalance > 0 {
		ti = "100% TiIm"
	}
	co := "0% Contentious"
	if c.ContentiousFraction > 0 {
		co = "25% Contentious"
	}
	return ti + " / " + co
}

// Conditions returns the four cells of Figure 4 in reading order.
func Conditions() []Condition {
	return []Condition{
		{0, 0},
		{0, 0.25},
		{1, 0},
		{1, 0.25},
	}
}

// Sizes returns the topology size names in increasing order.
func Sizes() []string { return []string{"small", "medium", "large"} }

// BuildSynthetic generates the named Table II topology and applies a
// condition, using deterministic seeds so experiments are reproducible.
func BuildSynthetic(size string, cond Condition, seed int64) *Topology {
	d := ggen.GenerateMatching(size, 500)
	opts := DefaultSynthetic()
	opts.TimeImbalance = cond.TimeImbalance
	opts.ContentiousFraction = cond.ContentiousFraction
	opts.Seed = seed
	name := fmt.Sprintf("%s[TiIm=%.0f%%,Cont=%.0f%%]", size, cond.TimeImbalance*100, cond.ContentiousFraction*100)
	return FromDAG(name, d, opts)
}

// NodeNamesSorted returns node names in index order; helper for stable
// test output.
func (t *Topology) NodeNamesSorted() []string {
	names := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
