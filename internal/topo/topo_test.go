package topo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stormtune/internal/ggen"
)

// diamond builds spout → a, b → sink.
func diamond(t *testing.T) *Topology {
	t.Helper()
	top, err := New("diamond",
		[]Node{
			{Name: "s", Kind: Spout, TimeUnits: 1, Selectivity: 1},
			{Name: "a", Kind: Bolt, TimeUnits: 2, Selectivity: 1},
			{Name: "b", Kind: Bolt, TimeUnits: 3, Selectivity: 1},
			{Name: "sink", Kind: Bolt, TimeUnits: 4, Selectivity: 1},
		},
		[]Edge{{0, 1, Shuffle}, {0, 2, Shuffle}, {1, 3, Shuffle}, {2, 3, Shuffle}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	spout := Node{Name: "s", Kind: Spout, TimeUnits: 1}
	bolt := Node{Name: "b", Kind: Bolt, TimeUnits: 1}
	cases := []struct {
		name  string
		nodes []Node
		edges []Edge
	}{
		{"empty", nil, nil},
		{"no-spout", []Node{bolt}, nil},
		{"spout-with-input", []Node{spout, {Name: "s2", Kind: Spout}}, []Edge{{0, 1, Shuffle}}},
		{"orphan-bolt", []Node{spout, bolt}, nil},
		{"self-loop", []Node{spout, bolt}, []Edge{{0, 1, Shuffle}, {1, 1, Shuffle}}},
		{"out-of-range", []Node{spout, bolt}, []Edge{{0, 5, Shuffle}}},
		{"cycle", []Node{spout, bolt, {Name: "c", Kind: Bolt, TimeUnits: 1}},
			[]Edge{{0, 1, Shuffle}, {1, 2, Shuffle}, {2, 1, Shuffle}}},
		{"negative-time", []Node{{Name: "s", Kind: Spout, TimeUnits: -1}}, nil},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.nodes, c.edges); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDiamondStructure(t *testing.T) {
	top := diamond(t)
	if got := top.Spouts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("spouts = %v", got)
	}
	if got := top.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sinks = %v", got)
	}
	if got := top.Children(0); len(got) != 2 {
		t.Fatalf("children(0) = %v", got)
	}
	if got := top.Parents(3); len(got) != 2 {
		t.Fatalf("parents(3) = %v", got)
	}
}

func TestTopoOrderValid(t *testing.T) {
	top := diamond(t)
	order := top.TopoOrder()
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range top.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("order violates edge %v", e)
		}
	}
}

func TestRatesDiamond(t *testing.T) {
	top := diamond(t)
	r := top.Rates()
	// Spout rate 1 → a and b each receive 1 → sink receives 2.
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("rates = %v, want %v", r, want)
		}
	}
}

func TestRatesWithSelectivity(t *testing.T) {
	top := MustNew("sel",
		[]Node{
			{Name: "s", Kind: Spout, TimeUnits: 1, Selectivity: 1},
			{Name: "x2", Kind: Bolt, TimeUnits: 1, Selectivity: 2},
			{Name: "sink", Kind: Bolt, TimeUnits: 1, Selectivity: 1},
		},
		[]Edge{{0, 1, Shuffle}, {1, 2, Shuffle}},
	)
	r := top.Rates()
	if r[2] != 2 {
		t.Fatalf("selectivity 2 should double downstream rate: %v", r)
	}
}

func TestBaseWeightsDiamond(t *testing.T) {
	top := diamond(t)
	w := top.BaseWeights()
	// spout=1; a=b=1; sink=2 — identical to Rates for selectivity-1 DAGs.
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("weights = %v, want %v", w, want)
		}
	}
}

// Property: for selectivity-1 topologies the base-parallelism weights
// equal the tuple rates — the structural fact that makes ipla optimal
// on homogeneous topologies (§V-A discussion).
func TestQuickWeightsEqualRates(t *testing.T) {
	f := func(seed int64) bool {
		d := ggen.Generate(ggen.Params{V: 20, L: 4, P: 0.3, Seed: seed})
		top := FromDAG("t", d, DefaultSynthetic())
		w := top.BaseWeights()
		r := top.Rates()
		for i := range w {
			if math.Abs(w[i]-r[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFromDAGStructure(t *testing.T) {
	d := ggen.GenerateMatching("small", 500)
	top := FromDAG("small", d, DefaultSynthetic())
	if top.N() != 10 {
		t.Fatalf("N = %d", top.N())
	}
	if len(top.Spouts()) == 0 || len(top.Sinks()) == 0 {
		t.Fatal("no spouts or sinks")
	}
	for _, n := range top.Nodes {
		if n.TimeUnits != 20 {
			t.Fatalf("base config should have uniform 20 units, got %v", n.TimeUnits)
		}
		if n.Contentious {
			t.Fatal("base config should have no contention")
		}
	}
	for _, e := range top.Edges {
		if e.Grouping != Shuffle {
			t.Fatal("synthetic edges must use shuffle grouping")
		}
	}
}

func TestApplyTimeImbalancePreservesMeanApprox(t *testing.T) {
	d := ggen.GenerateMatching("medium", 500)
	top := FromDAG("m", d, DefaultSynthetic())
	rng := rand.New(rand.NewSource(42))
	ApplyTimeImbalance(top, rng, 20, 1)
	sum, mn, mx := 0.0, math.Inf(1), math.Inf(-1)
	for _, n := range top.Nodes {
		sum += n.TimeUnits
		mn = math.Min(mn, n.TimeUnits)
		mx = math.Max(mx, n.TimeUnits)
	}
	mean := sum / float64(top.N())
	if math.Abs(mean-20) > 5 {
		t.Fatalf("mean time = %v, want ≈20", mean)
	}
	if mx-mn < 10 {
		t.Fatalf("imbalance should spread costs, got range [%v, %v]", mn, mx)
	}
	if mn < 0 || mx > 40.0001 {
		t.Fatalf("costs outside U(0,40): [%v, %v]", mn, mx)
	}
}

func TestApplyContentionTargetsComputeMass(t *testing.T) {
	d := ggen.GenerateMatching("medium", 500)
	top := FromDAG("m", d, DefaultSynthetic())
	rng := rand.New(rand.NewSource(7))
	ApplyContention(top, rng, 0.25)
	share := top.ContentiousShare()
	if share < 0.10 || share > 0.40 {
		t.Fatalf("contentious share = %v, want ≈0.25", share)
	}
	for i, n := range top.Nodes {
		if n.Contentious && n.Kind == Spout {
			t.Fatalf("spout %d flagged contentious", i)
		}
	}
}

func TestApplyContentionZeroFraction(t *testing.T) {
	top := diamond(t)
	ApplyContention(top, rand.New(rand.NewSource(1)), 0)
	if top.ContentiousShare() != 0 {
		t.Fatal("zero fraction should flag nothing")
	}
}

func TestBuildSyntheticConditions(t *testing.T) {
	for _, size := range Sizes() {
		for _, cond := range Conditions() {
			top := BuildSynthetic(size, cond, 3)
			if err := top.Validate(); err != nil {
				t.Fatalf("%s %s: %v", size, cond.Label(), err)
			}
			if cond.ContentiousFraction > 0 && top.ContentiousShare() == 0 {
				t.Fatalf("%s %s: contention requested but absent", size, cond.Label())
			}
			if cond.ContentiousFraction == 0 && top.ContentiousShare() != 0 {
				t.Fatalf("%s %s: unexpected contention", size, cond.Label())
			}
		}
	}
}

func TestConditionsGridAndLabels(t *testing.T) {
	cs := Conditions()
	if len(cs) != 4 {
		t.Fatalf("want 4 conditions, got %d", len(cs))
	}
	if cs[0].Label() != "0% TiIm / 0% Contentious" {
		t.Fatalf("label = %q", cs[0].Label())
	}
	if cs[3].Label() != "100% TiIm / 25% Contentious" {
		t.Fatalf("label = %q", cs[3].Label())
	}
}

func TestSundogStructure(t *testing.T) {
	s := Sundog()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 25 {
		t.Fatalf("sundog has %d nodes, want 25 (Figure 2 operators)", s.N())
	}
	if got := len(s.Spouts()); got != 2 {
		t.Fatalf("sundog spouts = %d, want 2 (HDFS1, DKVS2)", got)
	}
	// Sinks: DKVS1, HDFS2, HDFS3.
	if got := len(s.Sinks()); got != 3 {
		t.Fatalf("sundog sinks = %d, want 3", got)
	}
	// The ranking node must be reachable from both spouts' phases.
	var r1 int = -1
	for i, n := range s.Nodes {
		if n.Name == "R1" {
			r1 = i
		}
	}
	if r1 < 0 {
		t.Fatal("R1 missing")
	}
	if len(s.Parents(r1)) != 3 {
		t.Fatalf("R1 should merge M1..M3, has %d parents", len(s.Parents(r1)))
	}
	// Lightweight per-tuple costs: everything well under 1 compute unit.
	for _, n := range s.Nodes {
		if n.TimeUnits <= 0 || n.TimeUnits > 0.1 {
			t.Fatalf("sundog node %s cost %v outside µs regime", n.Name, n.TimeUnits)
		}
	}
}

func TestCriticalPathUnits(t *testing.T) {
	top := diamond(t)
	// Longest path: s(1) → b(3) → sink(4) = 8.
	if got := top.CriticalPathUnits(); got != 8 {
		t.Fatalf("critical path = %v, want 8", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	top := diamond(t)
	c := top.Clone()
	c.Nodes[0].TimeUnits = 99
	if top.Nodes[0].TimeUnits == 99 {
		t.Fatal("clone aliases parent")
	}
	if len(c.Children(0)) != len(top.Children(0)) {
		t.Fatal("clone index not rebuilt")
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII()
	if len(rows) != 4 {
		t.Fatalf("Table III has %d rows, want 4", len(rows))
	}
	// The paper's observation: most topologies < 60 operators.
	for _, r := range rows {
		if r.Operators > 60 {
			t.Fatalf("row %+v exceeds the surveyed maximum", r)
		}
	}
}

func TestKindAndGroupingStrings(t *testing.T) {
	if Spout.String() != "spout" || Bolt.String() != "bolt" {
		t.Fatal("kind strings wrong")
	}
	if Shuffle.String() != "shuffle" || Fields.String() != "fields" || Global.String() != "global" {
		t.Fatal("grouping strings wrong")
	}
}
