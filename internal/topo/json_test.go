package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Sundog()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || len(back.Edges) != len(orig.Edges) {
		t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
			back.N(), orig.N(), len(back.Edges), len(orig.Edges))
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], back.Nodes[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.TimeUnits != b.TimeUnits ||
			a.Selectivity != b.Selectivity || a.RateFactor != b.RateFactor {
			t.Fatalf("node %d changed: %+v vs %+v", i, a, b)
		}
	}
	// Rates must be identical (derived behaviour preserved).
	ra, rb := orig.Rates(), back.Rates()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rates changed at %d: %v vs %v", i, ra[i], rb[i])
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	cases := map[string]string{
		"bad-json":       `{`,
		"unknown-kind":   `{"nodes":[{"name":"a","kind":"widget","time_units":1}],"edges":[]}`,
		"dup-name":       `{"nodes":[{"name":"a","kind":"spout","time_units":1},{"name":"a","kind":"bolt","time_units":1}],"edges":[{"from":"a","to":"a"}]}`,
		"unknown-node":   `{"nodes":[{"name":"a","kind":"spout","time_units":1}],"edges":[{"from":"a","to":"zz"}]}`,
		"bad-grouping":   `{"nodes":[{"name":"a","kind":"spout","time_units":1},{"name":"b","kind":"bolt","time_units":1}],"edges":[{"from":"a","to":"b","grouping":"psychic"}]}`,
		"no-name":        `{"nodes":[{"kind":"spout","time_units":1}],"edges":[]}`,
		"structural-bad": `{"nodes":[{"name":"b","kind":"bolt","time_units":1}],"edges":[]}`,
	}
	for label, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid spec", label)
		}
	}
}

func TestReadJSONDefaults(t *testing.T) {
	src := `{
	  "nodes": [
	    {"name": "in", "kind": "spout", "time_units": 5},
	    {"name": "out", "kind": "bolt", "time_units": 10}
	  ],
	  "edges": [{"from": "in", "to": "out"}]
	}`
	tp, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name != "topology" {
		t.Fatalf("default name = %q", tp.Name)
	}
	if tp.Nodes[1].Selectivity != 1 || tp.Nodes[1].TupleBytes != 256 {
		t.Fatalf("defaults not applied: %+v", tp.Nodes[1])
	}
	if tp.Edges[0].Grouping != Shuffle {
		t.Fatalf("default grouping = %v", tp.Edges[0].Grouping)
	}
}
