package dash

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// seqStrategy proposes `n` fixed configurations with rising throughput
// under the seqBackend below.
type seqStrategy struct {
	n, step int
}

func (s *seqStrategy) Name() string { return "seq" }
func (s *seqStrategy) Next() (storm.Config, bool) {
	if s.step >= s.n {
		return storm.Config{}, false
	}
	s.step++
	return storm.Config{Hints: []int{s.step}}, true
}
func (s *seqStrategy) Observe(storm.Config, storm.Result) {}
func (s *seqStrategy) DecisionTime() time.Duration        { return 0 }

// seqBackend reports throughput = 100 × hint.
type seqBackend struct{}

func (seqBackend) Run(_ context.Context, tr core.Trial) (storm.Result, error) {
	return storm.Result{Throughput: float64(100 * tr.Config.Hints[0])}, nil
}

// testFleet builds (without running) a fleet of sessions with
// recorders wired in.
func testFleet(t *testing.T, slots int, steps ...int) *core.Fleet {
	t.Helper()
	members := make([]core.FleetMember, len(steps))
	for i, n := range steps {
		rec := core.NewRecorder()
		sess := core.NewSession(&seqStrategy{n: n}, seqBackend{}, core.SessionOptions{
			MaxSteps: n, Observer: rec,
		})
		members[i] = core.FleetMember{
			Name: []string{"alpha", "beta", "gamma"}[i], Session: sess, Recorder: rec,
			Weight: float64(i + 1),
		}
	}
	f, err := core.NewFleet(core.FleetOptions{Slots: slots}, members...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestFleetStateMatchesSessionStates is the consistency check the
// ISSUE asks for: after a fleet run, every per-session entry in
// /api/fleet agrees with that session's own /api/state — same trial
// counts, same incumbent, both done.
func TestFleetStateMatchesSessionStates(t *testing.T) {
	f := testFleet(t, 2, 4, 6, 3)
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := NewFleet(f, FleetOptions{
		Title: "test fleet",
		Info:  map[string]any{"mode": "test"},
		PoolStats: func() []WorkerStats {
			return []WorkerStats{{Worker: "w0", Completed: 13}}
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var fs FleetState
	getJSON(t, srv.URL+"/api/fleet", &fs)
	if fs.Title != "test fleet" || fs.Slots != 2 || !fs.Done {
		t.Fatalf("fleet state header wrong: %+v", fs)
	}
	if fs.InFlight != 0 {
		t.Fatalf("finished fleet reports %d in flight", fs.InFlight)
	}
	if len(fs.Sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(fs.Sessions))
	}
	if len(fs.Workers) != 1 || fs.Workers[0].Worker != "w0" {
		t.Fatalf("pool stats not surfaced: %+v", fs.Workers)
	}
	wantSteps := map[string]int{"alpha": 4, "beta": 6, "gamma": 3}
	for _, ss := range fs.Sessions {
		if ss.StateURL == "" || ss.EventsURL == "" || ss.URL == "" {
			t.Fatalf("session %q missing drill-down URLs: %+v", ss.Name, ss)
		}
		var st State
		getJSON(t, srv.URL+ss.StateURL, &st)
		if st.Completed != ss.Completed || len(st.Trials) != ss.Trials {
			t.Fatalf("session %q: fleet says %d/%d trials, state says %d/%d",
				ss.Name, ss.Completed, ss.Trials, st.Completed, len(st.Trials))
		}
		if st.Best != ss.Best || st.BestTrial != ss.BestTrial {
			t.Fatalf("session %q: fleet incumbent %v@%d, state %v@%d",
				ss.Name, ss.Best, ss.BestTrial, st.Best, st.BestTrial)
		}
		if !st.Done || !ss.Done {
			t.Fatalf("session %q: done flags disagree (fleet %v, state %v)", ss.Name, ss.Done, st.Done)
		}
		if want := wantSteps[ss.Name]; ss.Completed != want {
			t.Fatalf("session %q completed %d, want %d", ss.Name, ss.Completed, want)
		}
		if ss.Best != float64(100*wantSteps[ss.Name]) {
			t.Fatalf("session %q best %v, want %v", ss.Name, ss.Best, 100*wantSteps[ss.Name])
		}
		if st.Info["session"] != ss.Name {
			t.Fatalf("session %q drill-down info: %+v", ss.Name, st.Info)
		}
	}
	// The fleet incumbent is the max over sessions.
	if fs.Best != 600 || fs.BestSession != "beta" {
		t.Fatalf("fleet best %v (%s), want 600 (beta)", fs.Best, fs.BestSession)
	}
}

// TestFleetSessionSSEReplay checks the per-session drill-down reuses
// the SSE replay machinery: a late subscriber with ?after=N sees only
// the later events and the terminal done handshake.
func TestFleetSessionSSEReplay(t *testing.T) {
	f := testFleet(t, 1, 3, 2)
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewFleet(f, FleetOptions{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/sessions/alpha/api/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	var ids []string
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("stream did not finish with a done event")
	}
	if len(ids) == 0 || ids[0] != "3" {
		t.Fatalf("replay after=2 started at ids %v, want first id 3", ids)
	}
}

// TestFleetPageAndUnknownSession covers the index page and the 404 on
// a session that does not exist.
func TestFleetPageAndUnknownSession(t *testing.T) {
	f := testFleet(t, 1, 2)
	srv := httptest.NewServer(NewFleet(f, FleetOptions{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "api/fleet") {
		t.Fatalf("fleet page: HTTP %d", resp.StatusCode)
	}

	// The drill-down page mounted under /sessions/{name}/ must reach
	// its endpoints relative to that directory: any absolute "/api/..."
	// reference would resolve to the fleet root, where those routes do
	// not exist.
	resp, err = http.Get(srv.URL + "/sessions/alpha/")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drill-down page: HTTP %d (%v)", resp.StatusCode, err)
	}
	for _, abs := range []string{`"/api/state"`, `"/api/events"`, `"/healthz"`} {
		if strings.Contains(string(page), abs) {
			t.Fatalf("drill-down page references absolute %s; it must use relative URLs to work under /sessions/{name}/", abs)
		}
	}
	if !strings.Contains(string(page), `"api/state"`) {
		t.Fatal("drill-down page does not reference api/state at all")
	}

	resp, err = http.Get(srv.URL + "/sessions/nope/api/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: HTTP %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

// TestFleetStateLiveDuringRun polls /api/fleet while the fleet is
// mid-run and checks the invariant the smoke test also probes: total
// in-flight never exceeds the slot count, and per-session in-flight
// counts sum to the fleet's.
func TestFleetStateLiveDuringRun(t *testing.T) {
	members := make([]core.FleetMember, 3)
	release := make(chan struct{})
	gate := make(chan struct{}, 16)
	bk := blockingBackend{release: release, started: gate}
	for i := range members {
		rec := core.NewRecorder()
		sess := core.NewSession(&seqStrategy{n: 4}, bk, core.SessionOptions{MaxSteps: 4, Observer: rec})
		members[i] = core.FleetMember{
			Name: []string{"a", "b", "c"}[i], Session: sess, Recorder: rec,
		}
	}
	f, err := core.NewFleet(core.FleetOptions{Slots: 2}, members...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewFleet(f, FleetOptions{}))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(context.Background())
	}()
	<-gate
	<-gate
	var fs FleetState
	getJSON(t, srv.URL+"/api/fleet", &fs)
	if fs.InFlight != 2 {
		t.Fatalf("mid-run in-flight %d, want 2 (both slots held)", fs.InFlight)
	}
	sum := 0
	for _, ss := range fs.Sessions {
		sum += ss.InFlight
	}
	if sum != fs.InFlight {
		t.Fatalf("per-session in-flight sums to %d, fleet reports %d", sum, fs.InFlight)
	}
	if fs.Done {
		t.Fatal("fleet reports done mid-run")
	}
	close(release)
	<-done
}

// blockingBackend blocks every Run until released, reporting each
// start on the started channel.
type blockingBackend struct {
	release <-chan struct{}
	started chan<- struct{}
}

func (b blockingBackend) Run(ctx context.Context, tr core.Trial) (storm.Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return storm.Result{}, ctx.Err()
	}
	return storm.Result{Throughput: float64(100 * tr.Config.Hints[0])}, nil
}
