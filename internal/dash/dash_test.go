package dash

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

func trial(id int) core.Trial {
	return core.Trial{ID: id, Config: storm.Config{Hints: []int{id}}}
}

func feed(r *core.Recorder, n int) {
	for i := 1; i <= n; i++ {
		r.OnEvent(core.TrialStarted{Trial: trial(i)})
		r.OnEvent(core.TrialCompleted{Trial: trial(i), Result: storm.Result{Throughput: float64(100 * i)}})
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New(core.NewRecorder(), Options{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestStateJSON(t *testing.T) {
	rec := core.NewRecorder()
	feed(rec, 3)
	h := New(rec, Options{
		Title: "test run",
		Info:  map[string]any{"topology": "small"},
		PoolStats: func() []WorkerStats {
			return []WorkerStats{{Worker: "http://w1", InFlight: 1, Completed: 2}}
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Title != "test run" || len(st.Trials) != 3 || st.Best != 300 {
		t.Fatalf("state: %+v", st)
	}
	if st.Info["topology"] != "small" {
		t.Fatalf("info: %+v", st.Info)
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != "http://w1" || st.Workers[0].InFlight != 1 {
		t.Fatalf("workers: %+v", st.Workers)
	}
	if len(st.Incumbent) != 3 || st.Incumbent[2].Best != 300 {
		t.Fatalf("incumbent: %+v", st.Incumbent)
	}
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(New(core.NewRecorder(), Options{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<!DOCTYPE html>") {
		t.Fatalf("index: HTTP %d, body %q…", resp.StatusCode, body[:min(80, len(body))])
	}
	// Anything else under / is not the page.
	resp2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope: HTTP %d", resp2.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id, kind, data string
}

// sseReader pumps one response body on a single goroutine so repeated
// reads off the same stream don't race on the buffered reader.
type sseReader struct {
	lines chan string
	errc  chan error
}

func newSSEReader(body io.Reader) *sseReader {
	r := &sseReader{lines: make(chan string), errc: make(chan error, 1)}
	br := bufio.NewReader(body)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				r.errc <- err
				return
			}
			r.lines <- strings.TrimRight(line, "\n")
		}
	}()
	return r
}

// read parses frames off the stream until the predicate says stop, the
// stream ends, or the timeout hits.
func (r *sseReader) read(t *testing.T, stop func(sseEvent) bool, timeout time.Duration) []sseEvent {
	t.Helper()
	done := time.After(timeout)
	var out []sseEvent
	cur := sseEvent{}
	for {
		select {
		case <-done:
			t.Fatalf("SSE timeout; got %d events so far: %+v", len(out), out)
		case <-r.errc:
			return out
		case line := <-r.lines:
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				cur.kind = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				cur.data = line[len("data: "):]
			case line == "" && cur.kind != "":
				out = append(out, cur)
				if stop(cur) {
					return out
				}
				cur = sseEvent{}
			}
		}
	}
}

// TestSSEReplayFromID subscribes after some history exists and checks
// that ?after=N replays exactly the suffix, that live events follow,
// and that the stream says goodbye once the session completes.
func TestSSEReplayFromID(t *testing.T) {
	rec := core.NewRecorder()
	feed(rec, 3) // 6 events: seq 1..6
	srv := httptest.NewServer(New(rec, Options{}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/events?after=4", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	br := newSSEReader(resp.Body)

	// Replayed suffix: seq 5 and 6.
	replay := br.read(t, func(e sseEvent) bool { return e.id == "6" }, 10*time.Second)
	if len(replay) != 2 || replay[0].id != "5" || replay[1].id != "6" {
		t.Fatalf("replay after 4: %+v", replay)
	}
	if replay[1].kind != core.KindTrialCompleted {
		t.Fatalf("seq 6 kind %q", replay[1].kind)
	}
	var ev core.RecordedEvent
	if err := json.Unmarshal([]byte(replay[1].data), &ev); err != nil {
		t.Fatalf("seq 6 data: %v", err)
	}
	if ev.Seq != 6 || ev.TrialID != 3 || ev.Throughput != 300 {
		t.Fatalf("seq 6 payload: %+v", ev)
	}

	// A live event arrives on the open stream.
	rec.OnEvent(core.TrialStarted{Trial: trial(4)})
	live := br.read(t, func(e sseEvent) bool { return e.id == "7" }, 10*time.Second)
	if len(live) != 1 || live[0].kind != core.KindTrialStarted {
		t.Fatalf("live event: %+v", live)
	}

	// Completion: pass_completed then the terminal done event, after
	// which the server closes the stream.
	rec.OnEvent(core.PassCompleted{Steps: 4, Found: true})
	tail := br.read(t, func(e sseEvent) bool { return e.kind == "done" }, 10*time.Second)
	kinds := make([]string, len(tail))
	for i, e := range tail {
		kinds[i] = e.kind
	}
	if len(tail) < 2 || kinds[len(kinds)-2] != core.KindPassCompleted || kinds[len(kinds)-1] != "done" {
		t.Fatalf("tail kinds: %v", kinds)
	}
}

// TestSSELastEventIDHeader checks the standard reconnect header is an
// accepted replay cursor too.
func TestSSELastEventIDHeader(t *testing.T) {
	rec := core.NewRecorder()
	feed(rec, 2) // seq 1..4
	rec.OnEvent(core.PassCompleted{Steps: 2, Found: true})
	srv := httptest.NewServer(New(rec, Options{}))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/events", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := newSSEReader(resp.Body).read(t, func(e sseEvent) bool { return e.kind == "done" }, 10*time.Second)
	// seq 4 (trial_completed), seq 5 (pass_completed), done.
	if len(evs) != 3 || evs[0].id != "4" {
		t.Fatalf("replay after Last-Event-ID 3: %+v", evs)
	}
}

func TestSSEBadAfter(t *testing.T) {
	srv := httptest.NewServer(New(core.NewRecorder(), Options{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/events?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad after: HTTP %d", resp.StatusCode)
	}
}
