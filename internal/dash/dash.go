// Package dash serves a live tuning-session dashboard over HTTP: a
// JSON state snapshot, a Server-Sent-Events stream of the session's
// typed events with replay-from-ID for late subscribers, a health
// probe, and a small self-refreshing HTML page — everything a human
// (or a CI smoke test) needs to watch a run converge, with no
// dependencies beyond the standard library.
//
// The handler is a read-only view over a core.Recorder; wire the
// Recorder into the session as its Observer (or one member of a
// MultiObserver) and serve the handler for the duration of the run.
package dash

import (
	"context"
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"stormtune/internal/core"
)

//go:embed page.html
var pageHTML []byte

// WorkerStats describes one member of a backend pool for the state
// JSON: how many trials it is evaluating right now and how many it has
// finished or lost. It mirrors core.WorkerStats.
type WorkerStats = core.WorkerStats

// Options configure a dashboard handler.
type Options struct {
	// Title is shown on the HTML page and in /api/state (default
	// "stormtune").
	Title string
	// Info carries static run metadata — topology, strategy, budget —
	// merged into /api/state under "info".
	Info map[string]any
	// PoolStats, when set, is sampled on every /api/state request and
	// surfaced under "workers" — per-worker in-flight counts when the
	// session tunes against a backend pool.
	PoolStats func() []WorkerStats
	// Heartbeat is the idle interval between SSE keep-alive comments
	// (default 15s; intervals below 100ms are raised to it).
	Heartbeat time.Duration
}

// Handler is the dashboard's HTTP surface:
//
//	GET /            the embedded live page
//	GET /api/state   full JSON snapshot (recorder state + workers + info)
//	GET /api/events  SSE stream; ?after=SEQ or Last-Event-ID replays
//	                 history from that sequence number before following
//	GET /healthz     liveness probe
type Handler struct {
	rec  *core.Recorder
	opts Options
	mux  *http.ServeMux
}

// New builds a dashboard over a recorder.
func New(rec *core.Recorder, opts Options) *Handler {
	if opts.Title == "" {
		opts.Title = "stormtune"
	}
	if opts.Heartbeat < 100*time.Millisecond {
		opts.Heartbeat = 15 * time.Second
	}
	h := &Handler{rec: rec, opts: opts, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /{$}", h.handlePage)
	h.mux.HandleFunc("GET /api/state", h.handleState)
	h.mux.HandleFunc("GET /api/events", h.handleEvents)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) handlePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(pageHTML)
}

// State is the /api/state document.
type State struct {
	Title string `json:"title"`
	core.RecorderSnapshot
	Info    map[string]any `json:"info,omitempty"`
	Workers []WorkerStats  `json:"workers,omitempty"`
}

func (h *Handler) state() State {
	st := State{
		Title:            h.opts.Title,
		RecorderSnapshot: h.rec.Snapshot(),
		Info:             h.opts.Info,
	}
	if h.opts.PoolStats != nil {
		st.Workers = h.opts.PoolStats()
	}
	return st
}

func (h *Handler) handleState(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h.state())
}

// handleEvents streams the recorder history as Server-Sent Events.
// Replay starts after the sequence number in ?after= (or the standard
// Last-Event-ID header a reconnecting EventSource sends); omitting both
// replays the whole history. Each event is
//
//	id: <seq>
//	event: <kind>
//	data: <RecordedEvent JSON>
//
// and the stream closes itself once the session is done and fully
// delivered (a final "done" event), so consumers — curl in CI included
// — terminate with the run instead of hanging on an idle socket.
func (h *Handler) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	after := int64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad after parameter", http.StatusBadRequest)
			return
		}
		after = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			after = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stormtune event stream, replaying after seq %d\n\n", after)
	fl.Flush()

	ctx := r.Context()
	heartbeat := time.NewTicker(h.opts.Heartbeat)
	defer heartbeat.Stop()
	for {
		// Read Done before draining: OnEvent appends pass_completed and
		// sets done atomically, so "done was already set AND the drain
		// came back empty" proves the history was fully delivered —
		// checking Done after an empty drain instead would race with the
		// final events and hang up without sending them.
		done := h.rec.Done()
		evs, wait := h.rec.EventsSince(after)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				// Skip the unmarshalable event but still advance past it,
				// or the follow loop would re-fetch it forever.
				after = ev.Seq
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return // subscriber gone (or server force-closed)
			}
			after = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
			continue
		}
		// History drained; if the session is over, say goodbye and hang
		// up — everything up to pass_completed has been delivered.
		if done {
			fmt.Fprintf(w, "event: done\ndata: {\"seq\":%d}\n\n", after)
			fl.Flush()
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wait:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Serve runs the dashboard on addr until ctx is cancelled, then shuts
// the server down gracefully (bounded by grace; SSE streams are closed
// forcibly after it). It returns once the server has stopped; a nil
// error means a clean shutdown. A listen error (bad address, port in
// use) is returned before any serving starts — callers that need to
// fail fast can bind themselves and use ServeListener.
func Serve(ctx context.Context, addr string, h http.Handler, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, h, grace)
}

// ServeListener is Serve over a caller-bound listener, which it takes
// ownership of. Binding first makes "the address is bad" a synchronous
// error the caller sees before committing to a run, with no polling.
func ServeListener(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	if grace <= 0 {
		grace = 2 * time.Second
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Idle SSE subscribers hold their connections open past the
		// grace; close them rather than leak the listener.
		srv.Close()
	}
	// Normally http.ErrServerClosed — but a Serve failure that raced the
	// cancellation (listener died as the run ended) is a real error and
	// must not be reported as a clean shutdown.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
