package dash

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"stormtune/internal/core"
)

//go:embed fleet.html
var fleetHTML []byte

// FleetOptions configure a fleet dashboard handler.
type FleetOptions struct {
	// Title is shown on the fleet page and in /api/fleet (default
	// "stormtune fleet").
	Title string
	// Info carries static run metadata — manifest path, worker URLs,
	// dispatch mode — merged into /api/fleet under "info".
	Info map[string]any
	// SessionInfo, when set, supplies per-session static metadata keyed
	// by member name, forwarded into each drill-down dashboard's
	// /api/state "info" field.
	SessionInfo map[string]map[string]any
	// PoolStats, when set, is sampled on every /api/fleet request and
	// surfaced under "workers" — the shared pool's per-worker counters.
	PoolStats func() []WorkerStats
	// Heartbeat is the idle interval between SSE keep-alive comments on
	// the per-session event streams (default 15s).
	Heartbeat time.Duration
}

// FleetSessionState is one session's entry in the /api/fleet document:
// the fleet-level status plus the drill-down URLs.
type FleetSessionState struct {
	core.FleetSessionStatus
	// URL, StateURL and EventsURL locate the session's own dashboard
	// page, JSON state and SSE stream (empty when the member has no
	// Recorder to serve).
	URL       string `json:"url,omitempty"`
	StateURL  string `json:"stateUrl,omitempty"`
	EventsURL string `json:"eventsUrl,omitempty"`
}

// FleetState is the /api/fleet document.
type FleetState struct {
	Title string `json:"title"`
	// Slots, InFlight, Best, BestSession and Done mirror
	// core.FleetStatus; Sessions carries the per-session entries with
	// drill-down URLs attached.
	Slots       int                 `json:"slots"`
	InFlight    int                 `json:"inFlight"`
	Best        float64             `json:"best"`
	BestSession string              `json:"bestSession,omitempty"`
	Done        bool                `json:"done"`
	Sessions    []FleetSessionState `json:"sessions"`
	Info        map[string]any      `json:"info,omitempty"`
	Workers     []WorkerStats       `json:"workers,omitempty"`
}

// FleetHandler is the aggregated dashboard over a core.Fleet:
//
//	GET /                        the embedded fleet index page
//	GET /api/fleet               aggregated JSON (per-session status,
//	                             incumbents, slot occupancy, pool stats)
//	GET /sessions/{name}/        one session's full dashboard — the same
//	                             page, /api/state and SSE /api/events
//	                             (replay-from-ID included) a
//	                             single-session Handler serves
//	GET /healthz                 liveness probe
//
// Per-session drill-down reuses Handler verbatim over each member's
// Recorder, so everything that works against a single run — SSE replay
// with ?after=N or Last-Event-ID, the terminal done event, curl in CI —
// works per fleet session unchanged.
type FleetHandler struct {
	fleet    *core.Fleet
	opts     FleetOptions
	mux      *http.ServeMux
	sessions map[string]*Handler
}

// NewFleet builds the aggregated dashboard over a fleet. Members with a
// Recorder get a drill-down dashboard mounted under /sessions/{name}/;
// members without one still appear in /api/fleet (slot occupancy only).
func NewFleet(f *core.Fleet, opts FleetOptions) *FleetHandler {
	if opts.Title == "" {
		opts.Title = "stormtune fleet"
	}
	h := &FleetHandler{
		fleet:    f,
		opts:     opts,
		mux:      http.NewServeMux(),
		sessions: make(map[string]*Handler),
	}
	for _, m := range f.Members() {
		if m.Recorder == nil {
			continue
		}
		info := map[string]any{"fleet": opts.Title, "session": m.Name}
		for k, v := range opts.SessionInfo[m.Name] {
			info[k] = v
		}
		h.sessions[m.Name] = New(m.Recorder, Options{
			Title:     opts.Title + " · " + m.Name,
			Info:      info,
			Heartbeat: opts.Heartbeat,
		})
	}
	h.mux.HandleFunc("GET /{$}", h.handlePage)
	h.mux.HandleFunc("GET /api/fleet", h.handleFleet)
	h.mux.HandleFunc("GET /sessions/{name}/", h.handleSession)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *FleetHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *FleetHandler) handlePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(fleetHTML)
}

// State assembles the /api/fleet document.
func (h *FleetHandler) State() FleetState {
	fs := h.fleet.Status()
	st := FleetState{
		Title:       h.opts.Title,
		Slots:       fs.Slots,
		InFlight:    fs.InFlight,
		Best:        fs.Best,
		BestSession: fs.BestSession,
		Done:        fs.Done,
		Sessions:    make([]FleetSessionState, 0, len(fs.Sessions)),
		Info:        h.opts.Info,
	}
	for _, ss := range fs.Sessions {
		entry := FleetSessionState{FleetSessionStatus: ss}
		if _, ok := h.sessions[ss.Name]; ok {
			base := "/sessions/" + ss.Name
			entry.URL = base + "/"
			entry.StateURL = base + "/api/state"
			entry.EventsURL = base + "/api/events"
		}
		st.Sessions = append(st.Sessions, entry)
	}
	if h.opts.PoolStats != nil {
		st.Workers = h.opts.PoolStats()
	}
	return st
}

func (h *FleetHandler) handleFleet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h.State())
}

// handleSession routes /sessions/{name}/... into the member's own
// dashboard handler, prefix-stripped so the single-session routes
// (/, /api/state, /api/events, /healthz) apply unchanged.
func (h *FleetHandler) handleSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh, ok := h.sessions[name]
	if !ok {
		http.NotFound(w, r)
		return
	}
	http.StripPrefix("/sessions/"+name, sh).ServeHTTP(w, r)
}
