package watch

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func watchTopo() *topo.Topology {
	return topo.MustNew("t",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "c", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
}

func watchSpec() cluster.Spec {
	return cluster.Spec{Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 16, ThrashTasksPerCore: 4}
}

func fastBO() core.BOOptions {
	return core.BOOptions{
		Opt:  bo.Options{Candidates: 120, HyperSamples: 2, LocalSearchIters: 4},
		Seed: 1,
	}
}

// flashEval wraps the deterministic fluid simulator in a drifting
// workload: offered load 300 until t=2000, then a permanent flash
// crowd doubles it to 600 (capacity headroom exists — the topology
// tops out near 625).
func flashEval(tp *topo.Topology) *storm.DriftingEval {
	f := storm.NewFluidSim(tp, watchSpec(), storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	return storm.Drifting(f, storm.FlashCrowd{At: 2000, Magnitude: 2}, 300)
}

// eventLog collects the typed event stream; the watch emits from a
// single goroutine but the mutex keeps the race detector satisfied
// when tests read the log afterwards.
type eventLog struct {
	mu     sync.Mutex
	events []core.Event
}

func (l *eventLog) OnEvent(e core.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) all() []core.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]core.Event(nil), l.events...)
}

func watchOpts(obs core.Observer) Options {
	return Options{
		Steps: 12, RetuneSteps: 10,
		TrialCost: 60, HoldInterval: 60,
		MaxEpisodes: 1,
		Monitor:     MonitorOptions{Window: 6},
		Observer:    obs,
	}
}

// The headline behavior: under a flash crowd the watch detects the
// sustained shortfall, runs one conservative retune episode, and
// installs an incumbent that delivers strictly more of the new offered
// load than the old one did.
func TestWatchFlashCrowdTriggersRetune(t *testing.T) {
	tp := watchTopo()
	log := &eventLog{}
	c := New(tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1),
		core.AsBackend(flashEval(tp)), fastBO(), watchOpts(log))

	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", c.Episodes())
	}

	var trig *core.RetuneTriggered
	var done *core.RetuneCompleted
	holds := 0
	for _, e := range log.all() {
		switch ev := e.(type) {
		case core.RetuneTriggered:
			if trig != nil {
				t.Fatal("more than one RetuneTriggered for a single episode")
			}
			trig = &ev
		case core.RetuneCompleted:
			done = &ev
		case core.HoldSampled:
			holds++
		}
	}
	if trig == nil || done == nil {
		t.Fatalf("trigger/completion missing: %v %v", trig, done)
	}
	if trig.SimTime < 2000 {
		t.Fatalf("triggered at t=%v, before the flash crowd", trig.SimTime)
	}
	if trig.Reason != "backpressure" && trig.Reason != "degradation" {
		t.Fatalf("trigger reason %q", trig.Reason)
	}
	if holds < 10 {
		t.Fatalf("only %d monitoring samples before the trigger", holds)
	}
	if done.Episode != trig.Episode || done.Episode != 1 {
		t.Fatalf("episode numbering: trig %d done %d", trig.Episode, done.Episode)
	}

	// The initial incumbent delivered the pre-flash plateau (300). The
	// retuned incumbent is measured under the doubled load, and must
	// beat what the old configuration could deliver there.
	inc, ok := c.Incumbent()
	if !ok {
		t.Fatal("no incumbent after the watch")
	}
	if inc.Y <= 300 {
		t.Fatalf("retuned incumbent delivers %v, no better than the pre-flash plateau", inc.Y)
	}
}

// Two identical watches produce bit-identical final states: the whole
// loop — drift, monitoring, trigger, retune — is a function of the
// seed and the simulated timeline.
func TestWatchDeterministic(t *testing.T) {
	run := func() []byte {
		tp := watchTopo()
		c := New(tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1),
			core.AsBackend(flashEval(tp)), fastBO(), watchOpts(nil))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(c.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("watch runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// Killing a watch mid-retune and resuming from its snapshot lands in
// exactly the state an uninterrupted run reaches: the embedded session
// snapshot replays, the clock and monitor pick up where they stopped.
func TestWatchSnapshotResumeMidRetune(t *testing.T) {
	tp := watchTopo()
	template := storm.DefaultSyntheticConfig(tp, 1)

	// Reference: one uninterrupted run.
	ref := New(tp, watchSpec(), template, core.AsBackend(flashEval(tp)), fastBO(), watchOpts(nil))
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel three trials into the retune episode (the
	// initial tune completes 12), then snapshot.
	ctx, cancel := context.WithCancel(context.Background())
	completed := 0
	killer := core.ObserverFunc(func(e core.Event) {
		if _, ok := e.(core.TrialCompleted); ok {
			completed++
			if completed == 15 {
				cancel()
			}
		}
	})
	c := New(tp, watchSpec(), template, core.AsBackend(flashEval(tp)), fastBO(), watchOpts(killer))
	if err := c.Run(ctx); err == nil {
		t.Fatal("cancelled watch returned nil error")
	}
	st := c.Snapshot()
	if st.Phase != PhaseRetune {
		t.Fatalf("interrupted mid-retune but snapshot phase = %q", st.Phase)
	}
	if st.Session == nil {
		t.Fatal("mid-retune snapshot carries no session")
	}
	if st.Episode != 1 {
		t.Fatalf("snapshot episode = %d, want 1", st.Episode)
	}

	// The snapshot must survive serialization — that is how the CLI
	// stores it.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	// Resume against fresh evaluator and strategy instances.
	rc, err := Resume(&back, tp, watchSpec(), template,
		core.AsBackend(flashEval(tp)), fastBO(), watchOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed watch diverged from the uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestWatchCapturesHyperState checks the transfer of the GP
// hyperparameter posterior across the watch's sessions: the initial
// tune's posterior is captured, persisted in snapshots, and restored
// on resume so retune episodes warm-start from it bit-identically.
func TestWatchCapturesHyperState(t *testing.T) {
	tp := watchTopo()
	c := New(tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1),
		core.AsBackend(flashEval(tp)), fastBO(), watchOpts(nil))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.Hypers == nil || len(st.Hypers.Hypers) == 0 {
		t.Fatal("finished watch snapshot carries no hyperparameter posterior")
	}

	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	rc, err := Resume(&back, tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1),
		core.AsBackend(flashEval(tp)), fastBO(), watchOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	rc.mu.Lock()
	got := rc.hypers
	rc.mu.Unlock()
	if got == nil || len(got.Hypers) != len(st.Hypers.Hypers) {
		t.Fatal("resume dropped the hyperparameter posterior")
	}
	for i := range got.Hypers {
		for j := range got.Hypers[i] {
			if got.Hypers[i][j] != st.Hypers.Hypers[i][j] {
				t.Fatalf("hyper sample %d changed across the JSON round trip", i)
			}
		}
	}
}

// Resume validates its input.
func TestResumeRejectsBadState(t *testing.T) {
	tp := watchTopo()
	bk := core.AsBackend(flashEval(tp))
	if _, err := Resume(nil, tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1), bk, fastBO(), Options{}); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := Resume(&State{Version: 99, Phase: PhaseHold}, tp, watchSpec(),
		storm.DefaultSyntheticConfig(tp, 1), bk, fastBO(), Options{}); err == nil {
		t.Fatal("future state version accepted")
	}
	if _, err := Resume(&State{Version: StateVersion, Phase: "limbo"}, tp, watchSpec(),
		storm.DefaultSyntheticConfig(tp, 1), bk, fastBO(), Options{}); err == nil {
		t.Fatal("unknown phase accepted")
	}
	if _, err := Resume(&State{Version: StateVersion, Phase: PhaseHold}, tp, watchSpec(),
		storm.DefaultSyntheticConfig(tp, 1), bk, fastBO(), Options{}); err == nil {
		t.Fatal("hold phase without incumbent accepted")
	}
}

// The horizon ends a watch cleanly from the hold phase.
func TestWatchHorizonStopsHold(t *testing.T) {
	tp := watchTopo()
	f := storm.NewFluidSim(tp, watchSpec(), storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	// Stationary workload: no drift, so the monitor never fires and the
	// horizon is the only exit.
	ev := storm.Drifting(f, nil, 300)
	c := New(tp, watchSpec(), storm.DefaultSyntheticConfig(tp, 1),
		core.AsBackend(ev), fastBO(), Options{
			Steps: 6, TrialCost: 60, HoldInterval: 60, Horizon: 1200,
			Monitor: MonitorOptions{Window: 4},
		})
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Episodes() != 0 {
		t.Fatalf("stationary watch retuned %d times", c.Episodes())
	}
	if got := c.Clock().Now(); got < 1200 {
		t.Fatalf("watch stopped at t=%v before the horizon", got)
	}
	if st := c.Snapshot(); st.Phase != PhaseDone {
		t.Fatalf("phase after horizon = %q, want done", st.Phase)
	}
}
