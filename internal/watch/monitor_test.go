package watch

import (
	"encoding/json"
	"testing"

	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// healthy and degraded build monitoring samples with a raw throughput
// perf (no offered load reported).
func healthy(v float64) storm.Result  { return storm.Result{Throughput: v} }
func degraded(v float64) storm.Result { return storm.Result{Throughput: v} }

// fill feeds n healthy samples so the baseline window establishes,
// advancing the simulated time by 60 per sample from start.
func fill(m *Monitor, start float64, n int, v float64) float64 {
	t := start
	for i := 0; i < n; i++ {
		if _, fired := m.Observe(t, healthy(v)); fired {
			panic("monitor fired while establishing the baseline")
		}
		t += 60
	}
	return t
}

func TestPerfPrefersUtilization(t *testing.T) {
	if p := Perf(storm.Result{Throughput: 300, OfferedLoad: 600}); p != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", p)
	}
	if p := Perf(storm.Result{Throughput: 300}); p != 300 {
		t.Fatalf("raw throughput = %v, want 300", p)
	}
	if p := Perf(storm.FailedResult(storm.FailurePlacement, "x")); p != 0 {
		t.Fatalf("failed sample perf = %v, want 0", p)
	}
}

// A dip shorter than Sustain must never trigger: the monitor degrades
// then recovers and stays silent.
func TestMonitorIgnoresTransientDip(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 4, Sustain: 3})
	now := fill(m, 0, 4, 1.0)
	for _, v := range []float64{0.5, 0.5, 1.0, 1.0, 0.5, 0.5, 1.0} {
		if _, fired := m.Observe(now, degraded(v)); fired {
			t.Fatalf("transient dip triggered a retune at t=%v", now)
		}
		now += 60
	}
	if base, ok := m.Baseline(); !ok || base != 1.0 {
		t.Fatalf("degraded samples leaked into the baseline: %v %v", base, ok)
	}
}

// Sustained degradation triggers exactly once per episode: the monitor
// disarms after firing and only a Reset re-arms it.
func TestMonitorFiresOncePerEpisode(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 4, Sustain: 3})
	now := fill(m, 0, 4, 1.0)
	fires := 0
	var tr Trigger
	for i := 0; i < 10; i++ {
		if got, fired := m.Observe(now, degraded(0.5)); fired {
			fires++
			tr = got
		}
		now += 60
	}
	if fires != 1 {
		t.Fatalf("sustained degradation fired %d times, want exactly 1", fires)
	}
	if tr.Reason != "degradation" || tr.Baseline != 1.0 || tr.Current != 0.5 {
		t.Fatalf("trigger = %+v", tr)
	}
	// The third degraded sample completes the streak.
	if tr.SimTime != 4*60+2*60 {
		t.Fatalf("fired at t=%v, want %v", tr.SimTime, 4*60+2*60)
	}

	// A new episode: Reset re-arms, the baseline re-establishes, and a
	// second sustained degradation fires again.
	m.Reset()
	now = fill(m, now, 4, 0.9)
	fires = 0
	for i := 0; i < 5; i++ {
		if _, fired := m.Observe(now, degraded(0.4)); fired {
			fires++
		}
		now += 60
	}
	if fires != 1 {
		t.Fatalf("second episode fired %d times, want 1", fires)
	}
}

// Backpressure has its own, faster sustain path.
func TestMonitorBackpressureTrigger(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 4, Sustain: 5, BackpressureSustain: 2})
	now := fill(m, 0, 4, 1.0)
	bp := storm.Result{Throughput: 0.9, OfferedLoad: 1.0, Backpressured: true}
	if _, fired := m.Observe(now, bp); fired {
		t.Fatal("single backpressured sample must not trigger")
	}
	tr, fired := m.Observe(now+60, bp)
	if !fired || tr.Reason != "backpressure" {
		t.Fatalf("sustained backpressure did not trigger: fired=%v tr=%+v", fired, tr)
	}
}

func TestMonitorCooldown(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 2, Sustain: 2, Cooldown: 500})
	now := fill(m, 0, 2, 1.0)
	m.Observe(now, degraded(0.1))
	tr, fired := m.Observe(now+60, degraded(0.1))
	if !fired {
		t.Fatal("first episode did not trigger")
	}
	// Re-armed for the next episode, but still inside the cooldown.
	m.Reset()
	now = fill(m, tr.SimTime+60, 2, 1.0)
	for ; now < tr.SimTime+500; now += 60 {
		if _, f := m.Observe(now, degraded(0.1)); f {
			t.Fatalf("triggered at t=%v inside the cooldown (fired at %v)", now, tr.SimTime)
		}
	}
	if _, f := m.Observe(now, degraded(0.1)); !f {
		t.Fatalf("no trigger at t=%v after the cooldown expired", now)
	}
}

func TestMonitorDisabled(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 2, Sustain: 1, Disabled: true})
	for i := 0; i < 20; i++ {
		if _, fired := m.Observe(float64(i)*60, degraded(0)); fired {
			t.Fatal("disabled monitor fired")
		}
	}
}

// The monitor consumes HoldSampled events off the observer chain and
// parks the trigger for the controller.
func TestMonitorOnEvent(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 2, Sustain: 2})
	now := fill(m, 0, 2, 1.0)
	m.OnEvent(core.HoldSampled{SimTime: now, Result: degraded(0.1)})
	if _, ok := m.TakeTrigger(); ok {
		t.Fatal("trigger before the streak sustained")
	}
	m.OnEvent(core.TrialStarted{}) // foreign events are ignored
	m.OnEvent(core.HoldSampled{SimTime: now + 60, Result: degraded(0.1)})
	tr, ok := m.TakeTrigger()
	if !ok || tr.Reason != "degradation" {
		t.Fatalf("TakeTrigger = %+v, %v", tr, ok)
	}
	if _, ok := m.TakeTrigger(); ok {
		t.Fatal("TakeTrigger did not clear the pending trigger")
	}
}

// State/Restore round-trips the monitor bit-identically: the restored
// monitor makes the same decision on the same next sample.
func TestMonitorStateRoundTrip(t *testing.T) {
	m := NewMonitor(MonitorOptions{Window: 3, Sustain: 2})
	now := fill(m, 0, 3, 1.0)
	m.Observe(now, degraded(0.2)) // one degraded sample: streak at 1

	st := m.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back MonitorState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	m2 := NewMonitor(MonitorOptions{Window: 3, Sustain: 2})
	m2.Restore(back)

	tr1, f1 := m.Observe(now+60, degraded(0.2))
	tr2, f2 := m2.Observe(now+60, degraded(0.2))
	if f1 != f2 || tr1 != tr2 {
		t.Fatalf("restored monitor diverged: %v %+v vs %v %+v", f1, tr1, f2, tr2)
	}
	if !f1 {
		t.Fatal("both monitors should have completed the streak")
	}
}
