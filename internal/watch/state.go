package watch

import (
	"fmt"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// StateVersion is the current State schema version.
const StateVersion = 1

// State is a watch frozen at one instant — mid-tune, mid-hold or
// mid-retune. It embeds the active session's own SessionState when a
// tuning session is in flight, so Resume replays it through the same
// ledger machinery ordinary sessions use and the watch continues
// bit-identically.
//
// Incumbent and History always hold the values the in-flight session
// was seeded from (the controller installs a new incumbent only after
// an episode completes), which is exactly what reconstructing the
// episode's strategy needs.
type State struct {
	Version     int                    `json:"version"`
	Phase       Phase                  `json:"phase"`
	Clock       float64                `json:"clock"`
	Episode     int                    `json:"episode"`
	HoldCount   int                    `json:"holdCount"`
	RunOffset   int                    `json:"runOffset"`
	SessionSeed int64                  `json:"sessionSeed"`
	Incumbent   *core.WarmObservation  `json:"incumbent,omitempty"`
	History     []core.WarmObservation `json:"history,omitempty"`
	// Hypers is the hyperparameter posterior captured from the last
	// completed session; retune episodes warm-start from it, so a
	// resumed mid-retune session must rebuild its strategy with the
	// same posterior to continue bit-identically.
	Hypers  *bo.HyperState     `json:"hypers,omitempty"`
	Monitor MonitorState       `json:"monitor"`
	Session *core.SessionState `json:"session,omitempty"`
}

// Snapshot freezes the watch. Safe to call from observer callbacks and
// other goroutines while Run is in flight.
func (c *Controller) Snapshot() *State {
	c.mu.Lock()
	st := &State{
		Version:     StateVersion,
		Phase:       c.phase,
		Clock:       c.clock.Now(),
		Episode:     c.episode,
		HoldCount:   c.holdCount,
		RunOffset:   c.runOffset,
		SessionSeed: c.sessSeed,
		History:     append([]core.WarmObservation(nil), c.history...),
		Hypers:      c.hypers,
		Monitor:     c.monitor.State(),
	}
	if c.incumbent != nil {
		inc := *c.incumbent
		st.Incumbent = &inc
	}
	sess := c.sess
	c.mu.Unlock()
	if sess != nil {
		st.Session = sess.Snapshot()
	}
	return st
}

// Resume rebuilds a watch from a State. The topology, spec, template,
// backend, BO options and watch options are supplied by the caller —
// like core.ResumeSession, a snapshot carries the progress, not the
// environment. An embedded session snapshot is replayed through a
// freshly reconstructed strategy (the initial-tune BO or the episode's
// retune BO, per the frozen phase), so the resumed watch continues the
// in-flight session exactly where it stopped.
func Resume(st *State, t *topo.Topology, spec cluster.Spec, template storm.Config,
	bk core.Backend, boOpts core.BOOptions, opts Options) (*Controller, error) {
	if st == nil {
		return nil, fmt.Errorf("watch: nil state")
	}
	if st.Version != StateVersion {
		return nil, fmt.Errorf("watch: state version %d, want %d", st.Version, StateVersion)
	}
	switch st.Phase {
	case PhaseTune, PhaseHold, PhaseRetune, PhaseDone:
	default:
		return nil, fmt.Errorf("watch: unknown phase %q in state", st.Phase)
	}
	if st.Phase != PhaseTune && st.Incumbent == nil {
		return nil, fmt.Errorf("watch: phase %q state has no incumbent", st.Phase)
	}
	c := New(t, spec, template, bk, boOpts, opts)
	c.clock.Set(st.Clock)
	c.monitor.Restore(st.Monitor)
	c.mu.Lock()
	c.phase = st.Phase
	c.episode = st.Episode
	c.holdCount = st.HoldCount
	c.runOffset = st.RunOffset
	if st.SessionSeed != 0 {
		c.sessSeed = st.SessionSeed
	}
	c.history = append([]core.WarmObservation(nil), st.History...)
	c.hypers = st.Hypers
	if st.Incumbent != nil {
		inc := *st.Incumbent
		c.incumbent = &inc
	}
	c.mu.Unlock()
	if st.Session != nil {
		var strat core.Strategy
		switch st.Phase {
		case PhaseTune:
			strat = core.NewBO(t, spec, template, c.seededBO(c.sessSeed))
		case PhaseRetune:
			c.mu.Lock()
			strat = c.retuneStrategyLocked()
			c.mu.Unlock()
		default:
			return nil, fmt.Errorf("watch: phase %q state carries an in-flight session", st.Phase)
		}
		// Zero MaxSteps inherits the snapshot's; RunOffset is always
		// forced to the snapshot's own.
		sess, err := core.ResumeSession(st.Session, strat, bk, core.SessionOptions{
			Retry:    opts.Retry,
			Observer: c.sessionObserver(),
			Clock:    c.clock,
		})
		if err != nil {
			return nil, fmt.Errorf("watch: resume session: %w", err)
		}
		c.mu.Lock()
		c.sess = sess
		c.mu.Unlock()
	}
	return c, nil
}
