package watch

import (
	"stormtune/internal/core"
	"stormtune/internal/storm"
)

// MonitorOptions tune the degradation monitor. Zero values select the
// defaults; all fields are serializable so a snapshot reconstructs the
// monitor exactly.
type MonitorOptions struct {
	// Window is the number of healthy samples the rolling baseline
	// averages over (default 8). The monitor stays silent until the
	// window first fills.
	Window int `json:"window,omitempty"`
	// DegradeFactor is the fraction of the baseline below which a
	// sample counts as degraded (default 0.85 — the should_online_tune
	// shape: fire when performance falls below ~baseline×0.8, here
	// slightly tighter and configurable).
	DegradeFactor float64 `json:"degradeFactor,omitempty"`
	// Sustain is the number of consecutive degraded samples required
	// to trigger (default 3) — the hysteresis that keeps one noisy dip
	// from launching a retune.
	Sustain int `json:"sustain,omitempty"`
	// BackpressureSustain is the consecutive backpressured samples
	// required for the faster backpressure trigger path (default 2).
	BackpressureSustain int `json:"backpressureSustain,omitempty"`
	// Cooldown is the minimum simulated seconds between triggers
	// (default 0 — the episode structure already prevents overlapping
	// retunes; set it to damp oscillating workloads further).
	Cooldown float64 `json:"cooldown,omitempty"`
	// Disabled turns the monitor off entirely — the "never retune"
	// policy the drift experiments compare against.
	Disabled bool `json:"disabled,omitempty"`
}

func (o MonitorOptions) window() int {
	if o.Window <= 0 {
		return 8
	}
	return o.Window
}

func (o MonitorOptions) degradeFactor() float64 {
	if o.DegradeFactor <= 0 || o.DegradeFactor >= 1 {
		return 0.85
	}
	return o.DegradeFactor
}

func (o MonitorOptions) sustain() int {
	if o.Sustain <= 0 {
		return 3
	}
	return o.Sustain
}

func (o MonitorOptions) backpressureSustain() int {
	if o.BackpressureSustain <= 0 {
		return 2
	}
	return o.BackpressureSustain
}

// Trigger is one monitor firing: the moment a retune episode starts.
type Trigger struct {
	// SimTime is the simulated timestamp of the firing sample.
	SimTime float64 `json:"simTime"`
	// Baseline is the rolling estimate the incumbent was held against;
	// Current is the sample performance that completed the streak.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Reason is "degradation" or "backpressure".
	Reason string `json:"reason"`
}

// Monitor watches the incumbent's monitoring samples and decides when
// sustained degradation or backpressure warrants a retune. It keeps a
// noise-aware rolling baseline (the mean of the last Window healthy
// samples — degraded samples feed the trigger streak, not the
// baseline, so a real regression cannot drag the reference down with
// it), requires Sustain consecutive degraded samples before firing
// (hysteresis), fires at most once per episode (it disarms until
// Reset), and enforces a Cooldown between episodes. All decisions are
// functions of the samples and their simulated timestamps — never the
// wall clock.
//
// Performance is utilization (Throughput/OfferedLoad) when the
// workload reports offered load, raw throughput otherwise: a demand
// trough then looks healthy (delivering everything offered) while a
// capacity shortfall looks degraded, which is exactly the distinction
// a retune trigger needs under drifting load.
//
// Methods are not safe for concurrent use; the controller drives the
// monitor from its single run goroutine.
type Monitor struct {
	opts MonitorOptions

	window        []float64
	degraded      int
	backpressured int
	armed         bool
	fired         bool
	firedAt       float64
	pending       *Trigger
}

// NewMonitor builds an armed monitor.
func NewMonitor(opts MonitorOptions) *Monitor {
	return &Monitor{opts: opts, armed: true}
}

// Perf extracts the performance figure a sample is judged by.
func Perf(res storm.Result) float64 {
	if res.Failed {
		return 0
	}
	if res.OfferedLoad > 0 {
		return res.Throughput / res.OfferedLoad
	}
	return res.Throughput
}

// Baseline returns the rolling estimate; ok is false until the window
// has filled once.
func (m *Monitor) Baseline() (float64, bool) {
	if len(m.window) < m.opts.window() {
		return 0, false
	}
	sum := 0.0
	for _, v := range m.window {
		sum += v
	}
	return sum / float64(len(m.window)), true
}

// push folds a healthy sample into the rolling window.
func (m *Monitor) push(perf float64) {
	m.window = append(m.window, perf)
	if w := m.opts.window(); len(m.window) > w {
		m.window = m.window[len(m.window)-w:]
	}
}

// Observe feeds one monitoring sample taken at simTime. It returns a
// Trigger (and true) when this sample completes a sustained
// degradation or backpressure streak on an armed monitor outside the
// cooldown; the monitor then disarms until Reset.
func (m *Monitor) Observe(simTime float64, res storm.Result) (Trigger, bool) {
	if m.opts.Disabled {
		return Trigger{}, false
	}
	perf := Perf(res)
	base, ready := m.Baseline()
	if !ready {
		// Still establishing the reference; backpressure is tracked so
		// a watch that starts already drowning fires the moment the
		// baseline exists.
		m.push(perf)
		if res.Backpressured {
			m.backpressured++
		} else {
			m.backpressured = 0
		}
		return Trigger{}, false
	}
	if perf < base*m.opts.degradeFactor() {
		m.degraded++
	} else {
		m.degraded = 0
		m.push(perf)
	}
	if res.Backpressured {
		m.backpressured++
	} else {
		m.backpressured = 0
	}
	if !m.armed {
		return Trigger{}, false
	}
	if m.fired && m.opts.Cooldown > 0 && simTime < m.firedAt+m.opts.Cooldown {
		return Trigger{}, false
	}
	var reason string
	switch {
	case m.backpressured >= m.opts.backpressureSustain():
		reason = "backpressure"
	case m.degraded >= m.opts.sustain():
		reason = "degradation"
	default:
		return Trigger{}, false
	}
	m.armed = false
	m.fired = true
	m.firedAt = simTime
	m.degraded = 0
	m.backpressured = 0
	return Trigger{SimTime: simTime, Baseline: base, Current: perf, Reason: reason}, true
}

// Reset re-arms the monitor around a new incumbent: the rolling window
// and streaks clear so the baseline re-establishes from the
// post-retune samples. The cooldown clock is not reset — it runs from
// the last firing.
func (m *Monitor) Reset() {
	m.window = m.window[:0]
	m.degraded = 0
	m.backpressured = 0
	m.armed = true
	m.pending = nil
}

// OnEvent implements core.Observer: the monitor consumes HoldSampled
// events from the session event stream and holds any resulting
// trigger for TakeTrigger. Other event types are ignored, so the
// monitor composes into a MultiObserver chain alongside a Recorder.
func (m *Monitor) OnEvent(e core.Event) {
	hs, ok := e.(core.HoldSampled)
	if !ok {
		return
	}
	if tr, fired := m.Observe(hs.SimTime, hs.Result); fired {
		m.pending = &tr
	}
}

// TakeTrigger collects (and clears) a trigger produced via OnEvent.
func (m *Monitor) TakeTrigger() (Trigger, bool) {
	if m.pending == nil {
		return Trigger{}, false
	}
	tr := *m.pending
	m.pending = nil
	return tr, true
}

// MonitorState is the monitor's serializable state.
type MonitorState struct {
	Window        []float64 `json:"window,omitempty"`
	Degraded      int       `json:"degraded,omitempty"`
	Backpressured int       `json:"backpressured,omitempty"`
	Armed         bool      `json:"armed"`
	Fired         bool      `json:"fired,omitempty"`
	FiredAt       float64   `json:"firedAt,omitempty"`
}

// State captures the monitor for a snapshot.
func (m *Monitor) State() MonitorState {
	return MonitorState{
		Window:        append([]float64(nil), m.window...),
		Degraded:      m.degraded,
		Backpressured: m.backpressured,
		Armed:         m.armed,
		Fired:         m.fired,
		FiredAt:       m.firedAt,
	}
}

// Restore rebuilds the monitor from a snapshot.
func (m *Monitor) Restore(st MonitorState) {
	m.window = append(m.window[:0], st.Window...)
	m.degraded = st.Degraded
	m.backpressured = st.Backpressured
	m.armed = st.Armed
	m.fired = st.Fired
	m.firedAt = st.FiredAt
	m.pending = nil
}
