package watch

import "sync"

// Clock is the simulated timeline a watch runs against. It implements
// core.SimClock, so sessions stamp proposed trials with its reading,
// and it only moves when the controller advances it — one TrialCost
// per evaluated trial, one HoldInterval per monitoring sample. No
// wall-clock ever feeds it: a watch replayed from a snapshot sees the
// exact same timeline, which is what makes continuous tuning
// deterministic end to end.
type Clock struct {
	mu sync.Mutex
	t  float64
}

// NewClock starts a clock at the given simulated time (seconds).
func NewClock(start float64) *Clock { return &Clock{t: start} }

// Now implements core.SimClock.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d seconds and returns the new
// reading.
func (c *Clock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += d
	return c.t
}

// Set jumps the clock to an absolute reading (resume from a snapshot).
func (c *Clock) Set(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
