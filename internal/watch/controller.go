// Package watch implements continuous tuning: a session that never
// ends. A Controller tunes a topology to convergence, then holds —
// periodically re-measuring the incumbent on a simulated timeline
// while a Monitor watches for sustained degradation or backpressure —
// and when the monitor fires it runs a conservative retune episode (a
// trust-region BO session seeded from the incumbent, see
// core.NewRetuneBO) before holding again, repeating until the context
// is cancelled, a horizon is reached, or an episode budget is spent.
//
// Everything is driven by the simulated clock: trials cost TrialCost
// simulated seconds, monitoring samples HoldInterval, and no decision
// reads the wall clock (stormlint's nowallclock contract covers this
// package). A watch snapshots to a serializable State at any moment —
// mid-retune included — and resumes bit-identically.
package watch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Phase is where a watch is in its tune → hold → retune → hold cycle.
type Phase string

// Watch phases.
const (
	// PhaseTune is the initial cold tuning session.
	PhaseTune Phase = "tune"
	// PhaseHold is monitoring: the incumbent is deployed and sampled.
	PhaseHold Phase = "hold"
	// PhaseRetune is a conservative retune episode.
	PhaseRetune Phase = "retune"
	// PhaseDone marks a watch that exited cleanly (horizon reached or
	// episode budget spent).
	PhaseDone Phase = "done"
)

// holdRunBase offsets monitoring-sample run indices far past any
// session's trial indices, so hold samples draw independent noise and
// never collide with tuning measurements.
const holdRunBase = 1 << 20

// historyCap bounds the warm-start observations carried between
// episodes, keeping retune GP fits cheap on long watches.
const historyCap = 40

// Options configure a watch.
type Options struct {
	// Steps is the initial tuning session's budget (default 40).
	Steps int
	// RetuneSteps is each retune episode's budget (default
	// max(8, Steps/4)).
	RetuneSteps int
	// TrialCost is the simulated seconds one trial evaluation takes
	// (default 60) — how fast the timeline moves while tuning.
	TrialCost float64
	// HoldInterval is the simulated seconds between monitoring samples
	// (default 60).
	HoldInterval float64
	// Horizon stops the watch when the simulated clock reaches it;
	// 0 means no horizon (run until ctx cancel or MaxEpisodes).
	Horizon float64
	// MaxEpisodes stops the watch after this many completed retune
	// episodes; 0 means unlimited.
	MaxEpisodes int
	// Monitor tunes the degradation monitor; Retune bounds the
	// conservative search.
	Monitor MonitorOptions
	Retune  core.RetuneOptions
	// Retry is the per-trial retry policy of the tuning sessions.
	Retry core.RetryPolicy
	// Observer receives every session event plus the watch's own
	// HoldSampled / RetuneTriggered / RetuneCompleted stream; nil
	// disables.
	Observer core.Observer
	// Snapshot, when set with SnapshotEvery > 0, receives a periodic
	// State — every SnapshotEvery completed trials or monitoring
	// samples — so a killed watch resumes from recent state.
	Snapshot      func(*State)
	SnapshotEvery int
	// Throttle paces the hold loop in wall-clock time (one sample per
	// Throttle) so a live dashboard is watchable; zero runs the
	// timeline as fast as the simulator allows. Pacing only — no
	// decision reads it.
	Throttle time.Duration
}

func (o Options) steps() int {
	if o.Steps <= 0 {
		return 40
	}
	return o.Steps
}

func (o Options) retuneSteps() int {
	if o.RetuneSteps > 0 {
		return o.RetuneSteps
	}
	if s := o.steps() / 4; s > 8 {
		return s
	}
	return 8
}

func (o Options) trialCost() float64 {
	if o.TrialCost <= 0 {
		return 60
	}
	return o.TrialCost
}

func (o Options) holdInterval() float64 {
	if o.HoldInterval <= 0 {
		return 60
	}
	return o.HoldInterval
}

// Controller runs the continuous-tuning loop. Build one with New (or
// Resume), then call Run; Snapshot is safe from any goroutine,
// including observer callbacks.
type Controller struct {
	topology *topo.Topology
	spec     cluster.Spec
	template storm.Config
	boOpts   core.BOOptions
	bk       core.Backend
	opts     Options
	clock    *Clock
	monitor  *Monitor
	obs      core.Observer

	mu        sync.Mutex
	phase     Phase
	episode   int
	holdCount int
	runOffset int
	sessSeed  int64
	incumbent *core.WarmObservation
	history   []core.WarmObservation
	hypers    *bo.HyperState
	sess      *core.Session
	sinceSnap int
}

// New builds a fresh watch over a topology. boOpts.Seed seeds the
// initial tuning session; episode e's retune session uses Seed+e, so
// every session in the watch is independently reproducible.
func New(t *topo.Topology, spec cluster.Spec, template storm.Config, bk core.Backend,
	boOpts core.BOOptions, opts Options) *Controller {
	if boOpts.Seed == 0 {
		boOpts.Seed = 1
	}
	c := &Controller{
		topology: t, spec: spec, template: template, boOpts: boOpts,
		bk: bk, opts: opts,
		clock:    NewClock(0),
		monitor:  NewMonitor(opts.Monitor),
		phase:    PhaseTune,
		sessSeed: boOpts.Seed,
	}
	c.obs = core.MultiObserver(c.monitor, opts.Observer)
	return c
}

// Clock exposes the watch's simulated clock (read-only use intended).
func (c *Controller) Clock() *Clock { return c.clock }

// Incumbent returns the configuration the watch currently holds and
// its measured objective; ok is false before the initial tune
// completes.
func (c *Controller) Incumbent() (core.WarmObservation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.incumbent == nil {
		return core.WarmObservation{}, false
	}
	return *c.incumbent, true
}

// Episodes returns the number of completed retune episodes.
func (c *Controller) Episodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.episode
}

func (c *Controller) emit(e core.Event) {
	if c.obs != nil {
		c.obs.OnEvent(e)
	}
}

// sessionObserver wires a tuning session into the watch: events are
// forwarded to the composed observer, the simulated clock advances one
// TrialCost per completed trial, and the periodic snapshot hook runs.
func (c *Controller) sessionObserver() core.Observer {
	return core.ObserverFunc(func(e core.Event) {
		c.emit(e)
		if _, ok := e.(core.TrialCompleted); ok {
			c.clock.Advance(c.opts.trialCost())
			c.maybeSnapshot()
		}
	})
}

// maybeSnapshot invokes the snapshot callback when SnapshotEvery
// progress units have passed since the last one. The counter is
// guarded by mu; the snapshot itself is taken after release so the
// callback never runs under the controller lock.
func (c *Controller) maybeSnapshot() {
	if c.opts.Snapshot == nil || c.opts.SnapshotEvery <= 0 {
		return
	}
	c.mu.Lock()
	c.sinceSnap++
	due := c.sinceSnap >= c.opts.SnapshotEvery
	if due {
		c.sinceSnap = 0
	}
	c.mu.Unlock()
	if due {
		c.opts.Snapshot(c.Snapshot())
	}
}

func (c *Controller) setPhase(p Phase) {
	c.mu.Lock()
	c.phase = p
	c.mu.Unlock()
}

// Run drives the watch until ctx is cancelled, the horizon is
// reached, or MaxEpisodes retune episodes have completed. On
// cancellation it returns ctx's error with all state intact — call
// Snapshot for a resumable State.
func (c *Controller) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		phase := c.phase
		c.mu.Unlock()
		switch phase {
		case PhaseTune:
			if err := c.runTune(ctx); err != nil {
				return err
			}
			c.setPhase(PhaseHold)
		case PhaseHold:
			next, err := c.runHold(ctx)
			if err != nil {
				return err
			}
			c.setPhase(next)
		case PhaseRetune:
			if err := c.runRetune(ctx); err != nil {
				return err
			}
			c.mu.Lock()
			done := c.opts.MaxEpisodes > 0 && c.episode >= c.opts.MaxEpisodes
			c.mu.Unlock()
			if done {
				c.setPhase(PhaseDone)
			} else {
				c.setPhase(PhaseHold)
			}
		case PhaseDone:
			return nil
		default:
			return fmt.Errorf("watch: unknown phase %q", phase)
		}
	}
}

// sessionOptions builds the SessionOptions every watch session shares.
func (c *Controller) sessionOptions(steps, runOffset int) core.SessionOptions {
	return core.SessionOptions{
		MaxSteps:  steps,
		RunOffset: runOffset,
		Retry:     c.opts.Retry,
		Observer:  c.sessionObserver(),
		Clock:     c.clock,
	}
}

// runTune runs (or, after a resume, finishes) the initial tuning
// session and installs its best configuration as the incumbent.
func (c *Controller) runTune(ctx context.Context) error {
	c.mu.Lock()
	sess := c.sess
	if sess == nil {
		strat := core.NewBO(c.topology, c.spec, c.template, c.seededBO(c.sessSeed))
		sess = core.NewSession(strat, c.bk, c.sessionOptions(c.opts.steps(), c.runOffset))
		c.sess = sess
	}
	c.mu.Unlock()
	res, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	best, found := res.Best()
	if !found {
		return fmt.Errorf("watch: initial tune found no working configuration")
	}
	c.mu.Lock()
	c.adoptSessionLocked(sess, res, best)
	c.mu.Unlock()
	return nil
}

// adoptSessionLocked folds a finished session into the watch state:
// the incumbent, the warm-start history, the hyperparameter posterior
// and the cumulative run-index offset. Callers hold mu.
func (c *Controller) adoptSessionLocked(sess *core.Session, res core.TuneResult, best core.RunRecord) {
	c.incumbent = &core.WarmObservation{Config: best.Config, Y: best.Result.Throughput}
	if bs, ok := sess.Strategy().(*core.BOStrategy); ok {
		if hs := bs.HyperState(); hs != nil {
			c.hypers = hs
		}
	}
	for _, r := range res.Records {
		y := r.Result.Throughput
		if r.Result.Failed {
			y = 0
		}
		c.history = append(c.history, core.WarmObservation{Config: r.Config, Y: y})
	}
	if len(c.history) > historyCap {
		c.history = c.history[len(c.history)-historyCap:]
	}
	c.runOffset += sess.Snapshot().Issued
	c.sess = nil
}

// runHold samples the incumbent on the simulated timeline until the
// monitor fires (→ PhaseRetune), the horizon or episode budget ends
// the watch (→ PhaseDone), or ctx is cancelled.
func (c *Controller) runHold(ctx context.Context) (Phase, error) {
	interval := c.opts.holdInterval()
	for {
		if err := ctx.Err(); err != nil {
			return PhaseHold, err
		}
		now := c.clock.Now()
		if c.opts.Horizon > 0 && now >= c.opts.Horizon {
			return PhaseDone, nil
		}
		c.mu.Lock()
		inc := *c.incumbent
		c.holdCount++
		idx := c.holdCount
		c.mu.Unlock()
		tr := core.Trial{ID: idx, Config: inc.Config, RunIndex: holdRunBase + idx, SimTime: now}
		res, err := c.bk.Run(ctx, tr)
		if err != nil {
			if ctx.Err() != nil {
				// The sample never happened; rewind so the resumed watch
				// takes it with the same run index.
				c.mu.Lock()
				c.holdCount--
				c.mu.Unlock()
				return PhaseHold, ctx.Err()
			}
			// A lost monitoring sample is itself evidence of trouble:
			// record it as a failed measurement and let the monitor's
			// hysteresis decide whether it sustains.
			res = storm.FailedResult(storm.FailureEvaluation, err.Error())
		}
		base, _ := c.monitor.Baseline()
		c.emit(core.HoldSampled{SimTime: now, Result: res, Baseline: base})
		c.maybeSnapshot()
		if trig, fired := c.monitor.TakeTrigger(); fired {
			c.mu.Lock()
			allowed := c.opts.MaxEpisodes == 0 || c.episode < c.opts.MaxEpisodes
			var episode int
			if allowed {
				c.episode++
				episode = c.episode
				c.sessSeed = c.boOpts.Seed + int64(c.episode)
				c.phase = PhaseRetune
			}
			c.mu.Unlock()
			if allowed {
				c.emit(core.RetuneTriggered{
					Episode: episode, SimTime: trig.SimTime,
					Baseline: trig.Baseline, Current: trig.Current, Reason: trig.Reason,
				})
				return PhaseRetune, nil
			}
		}
		c.clock.Advance(interval)
		if c.opts.Throttle > 0 {
			// Wall-clock pacing for live dashboards; the timeline above
			// is untouched by it.
			t := time.NewTimer(c.opts.Throttle)
			select {
			case <-ctx.Done():
				t.Stop()
				return PhaseHold, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// runRetune runs (or, after a resume, finishes) one conservative
// retune episode and installs its outcome as the incumbent.
func (c *Controller) runRetune(ctx context.Context) error {
	c.mu.Lock()
	episode := c.episode
	sess := c.sess
	if sess == nil {
		strat := c.retuneStrategyLocked()
		sess = core.NewSession(strat, c.bk, c.sessionOptions(c.opts.retuneSteps(), c.runOffset))
		c.sess = sess
	}
	c.mu.Unlock()
	res, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	best, found := res.Best()
	c.mu.Lock()
	prev := *c.incumbent
	if !found || best.Result.Throughput <= prev.Y {
		// No retune trial beat the incumbent: keep it. The episode
		// still consumed timeline and budget, which the events record.
		bestRec := core.RunRecord{Config: prev.Config, Result: storm.Result{Throughput: prev.Y}}
		c.adoptSessionLocked(sess, res, bestRec)
		now := c.clock.Now()
		c.mu.Unlock()
		c.monitor.Reset()
		c.emit(core.RetuneCompleted{
			Episode: episode, SimTime: now, Steps: len(res.Records),
			Best: bestRec, Found: found,
		})
		return nil
	}
	c.adoptSessionLocked(sess, res, best)
	now := c.clock.Now()
	c.mu.Unlock()
	c.monitor.Reset()
	c.emit(core.RetuneCompleted{
		Episode: episode, SimTime: now, Steps: len(res.Records),
		Best: best, Found: true,
	})
	return nil
}

// retuneStrategyLocked builds the episode's conservative strategy from
// the current incumbent, history and captured hyperparameter
// posterior. The freshest captured posterior wins over any
// caller-supplied Retune.InitHypers, which only seeds episodes run
// before the watch has completed a session of its own. Callers hold mu.
func (c *Controller) retuneStrategyLocked() core.Strategy {
	ro := c.opts.Retune
	if c.hypers != nil {
		ro.InitHypers = c.hypers
	}
	return core.NewRetuneBO(c.topology, c.spec, c.template, c.seededBO(c.sessSeed),
		*c.incumbent, c.history, ro)
}

// seededBO returns the watch's BO options with the session seed.
func (c *Controller) seededBO(seed int64) core.BOOptions {
	o := c.boOpts
	o.Seed = seed
	return o
}
