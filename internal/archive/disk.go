package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// formatVersion is the on-disk format version, stamped on every
// segment record and on the index. Readers reject newer versions
// rather than misparse them.
const formatVersion = 1

// indexName is the catalog file rewritten (atomically) on every seal,
// gc and import: a compact, versioned summary of the archive that
// tools can read without replaying segments.
const indexName = "index.json"

// record is one line of a segment file: a versioned envelope around
// one of the append-only operations.
type record struct {
	V  int    `json:"v"`
	Op string `json:"op"` // "begin" | "trial" | "seal" | "delete"
	// Key identifies the session for trial/seal/delete ops.
	Key   string          `json:"key,omitempty"`
	Meta  *SessionMeta    `json:"meta,omitempty"`  // begin
	Trial *TrialRecord    `json:"trial,omitempty"` // trial
	State json.RawMessage `json:"state,omitempty"` // seal
}

// indexEntry summarizes one session in the index file.
type indexEntry struct {
	Key         string `json:"key"`
	Fingerprint uint64 `json:"fingerprint"`
	Topology    string `json:"topology"`
	Sealed      bool   `json:"sealed"`
	Trials      int    `json:"trials"`
}

type indexFile struct {
	V        int          `json:"v"`
	Sessions []indexEntry `json:"sessions"`
}

// Disk is the persistent Store: a directory of append-only JSON-lines
// segment files plus an index. Appends buffer in the OS (a crash loses
// at most the unsealed tail, which Open truncates away); Seal fsyncs
// the segment and rewrites the index atomically, so completed evidence
// is durable.
type Disk struct {
	dir string

	mu     sync.Mutex
	recs   map[string]*SessionRecord
	seg    *os.File // current segment, opened lazily on first write
	segNum int      // number the next segment will use
	closed bool
}

// Open opens (creating if needed) a disk archive rooted at dir. All
// existing segments are replayed in name order; a torn trailing record
// — the signature of a crash mid-append — is truncated so the segment
// is clean for future readers. Corruption anywhere else is an error.
func Open(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	d := &Disk{dir: dir, recs: make(map[string]*SessionRecord), segNum: 1}
	if err := d.readIndexVersion(); err != nil {
		return nil, err
	}
	segs, err := d.segmentFiles()
	if err != nil {
		return nil, err
	}
	for _, name := range segs {
		if err := d.replaySegment(name); err != nil {
			return nil, err
		}
		var n int
		fmt.Sscanf(filepath.Base(name), "seg-%d.jsonl", &n)
		if n >= d.segNum {
			d.segNum = n + 1
		}
	}
	return d, nil
}

// Dir returns the archive's root directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) segmentFiles() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".jsonl") {
			segs = append(segs, filepath.Join(d.dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// readIndexVersion rejects archives written by a newer format version.
// The index is advisory beyond that: segments are the truth.
func (d *Disk) readIndexVersion() error {
	data, err := os.ReadFile(filepath.Join(d.dir, indexName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		return fmt.Errorf("archive: corrupt index: %w", err)
	}
	if idx.V > formatVersion {
		return fmt.Errorf("archive: index version %d is newer than supported %d", idx.V, formatVersion)
	}
	return nil
}

// replaySegment applies one segment's records to the in-memory state.
// A record that fails to parse with nothing but a torn tail after it
// truncates the file at the last good offset; garbage followed by more
// records is corruption and errors out.
func (d *Disk) replaySegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	good := 0 // offset past the last fully-applied record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		var next int
		if nl < 0 {
			line, next = data[off:], len(data)
		} else {
			line, next = data[off:off+nl], off+nl+1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			off = next
			good = next
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || nl < 0 {
			// Torn tail: no newline, or undecodable. Anything non-blank
			// after it means mid-file corruption, not a crash.
			rest := bytes.TrimSpace(data[next:])
			if err == nil && nl >= 0 {
				// Decodable but unterminated — still a torn write.
				rest = nil
			}
			if len(rest) > 0 {
				return fmt.Errorf("archive: segment %s corrupt at offset %d", path, off)
			}
			return os.Truncate(path, int64(good))
		}
		if rec.V > formatVersion {
			return fmt.Errorf("archive: segment %s has record version %d (supported %d)", path, rec.V, formatVersion)
		}
		if err := d.apply(rec); err != nil {
			return fmt.Errorf("archive: segment %s: %w", path, err)
		}
		off = next
		good = next
	}
	return nil
}

// apply folds one replayed record into the in-memory state. Replay is
// forgiving where live calls are strict: evidence for sessions whose
// begin record was lost is dropped, not fatal.
func (d *Disk) apply(rec record) error {
	switch rec.Op {
	case "begin":
		if rec.Meta == nil {
			return fmt.Errorf("begin record without meta")
		}
		if _, ok := d.recs[rec.Meta.Key]; !ok {
			d.recs[rec.Meta.Key] = &SessionRecord{Meta: *rec.Meta}
		}
	case "trial":
		if r, ok := d.recs[rec.Key]; ok && rec.Trial != nil {
			r.Trials = append(r.Trials, *rec.Trial)
		}
	case "seal":
		if r, ok := d.recs[rec.Key]; ok {
			r.Sealed = true
			if rec.State != nil {
				r.State = append(json.RawMessage(nil), rec.State...)
			}
		}
	case "delete":
		delete(d.recs, rec.Key)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// writeLocked appends one record line to the current segment, opening
// a fresh segment on first write. Callers hold mu.
func (d *Disk) writeLocked(rec record) error {
	if d.closed {
		return fmt.Errorf("archive: store is closed")
	}
	rec.V = formatVersion
	if d.seg == nil {
		path := filepath.Join(d.dir, fmt.Sprintf("seg-%06d.jsonl", d.segNum))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		d.seg = f
		d.segNum++
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err := d.seg.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// Begin implements Store.
func (d *Disk) Begin(meta SessionMeta) error {
	if err := validateMeta(meta); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if rec, ok := d.recs[meta.Key]; ok {
		if rec.Meta.Fingerprint != meta.Fingerprint {
			return fmt.Errorf("archive: key %q already holds fingerprint %016x, not %016x",
				meta.Key, rec.Meta.Fingerprint, meta.Fingerprint)
		}
		return nil // re-attach
	}
	if err := d.writeLocked(record{Op: "begin", Meta: &meta}); err != nil {
		return err
	}
	d.recs[meta.Key] = &SessionRecord{Meta: meta}
	return d.writeIndexLocked()
}

// Append implements Store.
func (d *Disk) Append(key string, trials ...TrialRecord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.recs[key]
	if !ok {
		return fmt.Errorf("archive: append to unknown session %q", key)
	}
	for i := range trials {
		tr := trials[i]
		if err := d.writeLocked(record{Op: "trial", Key: key, Trial: &tr}); err != nil {
			return err
		}
		rec.Trials = append(rec.Trials, tr)
	}
	return nil
}

// Seal implements Store. The seal record is fsynced and the index
// rewritten, making the whole session durable.
func (d *Disk) Seal(key string, state json.RawMessage) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.recs[key]
	if !ok {
		return fmt.Errorf("archive: seal of unknown session %q", key)
	}
	if err := d.writeLocked(record{Op: "seal", Key: key, State: state}); err != nil {
		return err
	}
	if err := d.seg.Sync(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	rec.Sealed = true
	if state != nil {
		rec.State = append(json.RawMessage(nil), state...)
	}
	return d.writeIndexLocked()
}

// writeIndexLocked rewrites the index catalog atomically (temp file +
// rename). Callers hold mu.
func (d *Disk) writeIndexLocked() error {
	idx := indexFile{V: formatVersion}
	keys := make([]string, 0, len(d.recs))
	for k := range d.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := d.recs[k]
		idx.Sessions = append(idx.Sessions, indexEntry{
			Key: k, Fingerprint: r.Meta.Fingerprint, Topology: r.Meta.Topology,
			Sealed: r.Sealed, Trials: len(r.Trials),
		})
	}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	tmp := filepath.Join(d.dir, indexName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, indexName)); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string) (SessionRecord, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.recs[key]
	if !ok {
		return SessionRecord{}, false
	}
	return copyRecord(rec), true
}

// Keys implements Store.
func (d *Disk) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.keysLocked()
}

// LastStep implements Store.
func (d *Disk) LastStep(key string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.recs[key]
	if !ok {
		return 0
	}
	last := 0
	for _, tr := range rec.Trials {
		if tr.Step > last {
			last = tr.Step
		}
	}
	return last
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.recs[key]; !ok {
		return nil
	}
	if err := d.writeLocked(record{Op: "delete", Key: key}); err != nil {
		return err
	}
	delete(d.recs, key)
	return d.writeIndexLocked()
}

// GC drops unsealed (abandoned or in-progress elsewhere — don't gc a
// live archive) records and compacts every segment into one, so
// deletes and torn tails stop costing replay time. It returns the
// number of records dropped.
func (d *Disk) GC() (dropped int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(d.recs))
	for k := range d.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !d.recs[k].Sealed {
			delete(d.recs, k)
			dropped++
		}
	}
	// Compact: write the surviving state into a fresh segment, fsync,
	// then drop the old segments.
	old, err := d.segmentFiles()
	if err != nil {
		return dropped, err
	}
	if d.seg != nil {
		d.seg.Close()
		d.seg = nil
	}
	for _, k := range d.keysLocked() {
		rec := d.recs[k]
		meta := rec.Meta
		if err := d.writeLocked(record{Op: "begin", Meta: &meta}); err != nil {
			return dropped, err
		}
		for i := range rec.Trials {
			tr := rec.Trials[i]
			if err := d.writeLocked(record{Op: "trial", Key: k, Trial: &tr}); err != nil {
				return dropped, err
			}
		}
		if rec.Sealed {
			if err := d.writeLocked(record{Op: "seal", Key: k, State: rec.State}); err != nil {
				return dropped, err
			}
		}
	}
	if d.seg != nil {
		if err := d.seg.Sync(); err != nil {
			return dropped, fmt.Errorf("archive: %w", err)
		}
	}
	newSeg := ""
	if d.seg != nil {
		newSeg = d.seg.Name()
	}
	for _, path := range old {
		if path == newSeg {
			continue
		}
		if err := os.Remove(path); err != nil {
			return dropped, fmt.Errorf("archive: %w", err)
		}
	}
	return dropped, d.writeIndexLocked()
}

// keysLocked lists keys sorted; callers hold mu.
func (d *Disk) keysLocked() []string {
	keys := make([]string, 0, len(d.recs))
	for k := range d.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Export writes every record as one JSON line to w, in key order.
func (d *Disk) Export(w io.Writer) error {
	return ExportStore(d, w)
}

// Import merges records from an Export stream into the archive,
// skipping keys that already exist. It returns the number imported.
func (d *Disk) Import(r io.Reader) (int, error) {
	return ImportStore(d, r)
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if d.seg != nil {
		err := d.seg.Close()
		d.seg = nil
		return err
	}
	return nil
}

// ExportStore writes every record of any Store as one JSON line per
// session, in key order.
func ExportStore(s Store, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, key := range s.Keys() {
		rec, ok := s.Get(key)
		if !ok {
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	return bw.Flush()
}

// ImportStore merges an Export stream into any Store, skipping keys
// that already exist. It returns the number of sessions imported.
func ImportStore(s Store, r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	existing := make(map[string]bool)
	for _, k := range s.Keys() {
		existing[k] = true
	}
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec SessionRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, fmt.Errorf("archive: import: %w", err)
		}
		if existing[rec.Meta.Key] {
			continue
		}
		if err := s.Begin(rec.Meta); err != nil {
			return n, err
		}
		if len(rec.Trials) > 0 {
			if err := s.Append(rec.Meta.Key, rec.Trials...); err != nil {
				return n, err
			}
		}
		if rec.Sealed {
			if err := s.Seal(rec.Meta.Key, rec.State); err != nil {
				return n, err
			}
		}
		existing[rec.Meta.Key] = true
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("archive: import: %w", err)
	}
	return n, nil
}
