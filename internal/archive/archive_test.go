package archive

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func chain(name string, n int) *topo.Topology {
	nodes := make([]topo.Node, n)
	var edges []topo.Edge
	for i := range nodes {
		kind := topo.Bolt
		if i == 0 {
			kind = topo.Spout
		}
		nodes[i] = topo.Node{Name: string(rune('a' + i)), Kind: kind, TimeUnits: 1, Selectivity: 1, TupleBytes: 100}
		if i > 0 {
			edges = append(edges, topo.Edge{From: i - 1, To: i})
		}
	}
	return topo.MustNew(name, nodes, edges)
}

func cfg(hints ...int) storm.Config {
	return storm.Config{Hints: hints, MaxTasks: 64}
}

func meta(key string, t *topo.Topology) SessionMeta {
	return SessionMeta{
		Key:         key,
		Fingerprint: t.Fingerprint(),
		Topology:    t.Name,
		Features:    Extract(t, cluster.Small()),
	}
}

func TestExtractFeatures(t *testing.T) {
	tp := chain("c5", 5)
	f := Extract(tp, cluster.Small())
	want := Features{Nodes: 5, Spouts: 1, Edges: 4, Depth: 5, FanOut: 1, Machines: 4, Slots: 48}
	if f != want {
		t.Fatalf("features = %+v, want %+v", f, want)
	}
	if g := Extract(tp, cluster.Small()); g != f {
		t.Fatal("Extract is not deterministic")
	}
}

func TestSimilarity(t *testing.T) {
	a := Extract(chain("c5", 5), cluster.Small())
	if s := Similarity(a, a); s != 1 {
		t.Fatalf("self similarity = %v, want 1", s)
	}
	b := Extract(chain("c6", 6), cluster.Small())
	c := Extract(chain("c50", 50), cluster.Paper())
	if Similarity(a, b) != Similarity(b, a) {
		t.Fatal("similarity is not symmetric")
	}
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatalf("near chain should outrank far chain: near=%v far=%v", Similarity(a, b), Similarity(a, c))
	}
	if s := Similarity(a, c); s <= 0 || s >= 1 {
		t.Fatalf("similarity must stay in (0,1): %v", s)
	}
}

func TestQueryRanksExactFirst(t *testing.T) {
	tp := chain("c5", 5)
	near := chain("c6", 6)
	far := chain("c50", 50)
	st := NewMem()
	for _, m := range []SessionMeta{meta("far", far), meta("near", near), meta("same", tp)} {
		if err := st.Begin(m); err != nil {
			t.Fatal(err)
		}
		if err := st.Append(m.Key, TrialRecord{Step: 1, Config: cfg(1, 1, 1, 1, 1), Y: 10}); err != nil {
			t.Fatal(err)
		}
	}
	got := Query(st, tp.Fingerprint(), Extract(tp, cluster.Small()), 3)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	if !got[0].Exact || got[0].Rec.Meta.Key != "same" || got[0].Sim != 1 {
		t.Fatalf("exact match should rank first, got %+v", got[0])
	}
	if got[1].Rec.Meta.Key != "near" || got[2].Rec.Meta.Key != "far" {
		t.Fatalf("feature ranking wrong: %q then %q", got[1].Rec.Meta.Key, got[2].Rec.Meta.Key)
	}
	// A record with only failed trials carries nothing transferable.
	if err := st.Begin(SessionMeta{Key: "allfail", Fingerprint: tp.Fingerprint()}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("allfail", TrialRecord{Step: 1, Config: cfg(1, 1, 1, 1, 1), Failed: true}); err != nil {
		t.Fatal(err)
	}
	got = Query(st, tp.Fingerprint(), Extract(tp, cluster.Small()), 10)
	for _, r := range got {
		if r.Rec.Meta.Key == "allfail" {
			t.Fatal("all-failed record should be skipped")
		}
	}
}

func TestTopKDedupsAndOrders(t *testing.T) {
	rec := SessionRecord{Trials: []TrialRecord{
		{Step: 1, Config: cfg(1, 1), Y: 5},
		{Step: 2, Config: cfg(2, 2), Y: 9},
		{Step: 3, Config: cfg(2, 2), Y: 9}, // re-measured incumbent
		{Step: 4, Config: cfg(3, 3), Y: 7},
		{Step: 5, Config: cfg(4, 4), Failed: true},
	}}
	top := rec.TopK(3)
	if len(top) != 3 {
		t.Fatalf("got %d, want 3", len(top))
	}
	if top[0].Y != 9 || top[1].Y != 7 || top[2].Y != 5 {
		t.Fatalf("wrong order: %v %v %v", top[0].Y, top[1].Y, top[2].Y)
	}
	if best, ok := rec.Best(); !ok || best.Y != 9 {
		t.Fatalf("best = %+v, %v", best, ok)
	}
}

// populate runs the same op sequence against any store.
func populate(t *testing.T, st Store) {
	t.Helper()
	tp := chain("c5", 5)
	if err := st.Begin(meta("run-1", tp)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("run-1",
		TrialRecord{Step: 1, Config: cfg(1, 1, 1, 1, 1), Y: 3},
		TrialRecord{Step: 2, Config: cfg(2, 2, 2, 2, 2), Y: 8},
	); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal("run-1", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(meta("run-2", chain("c6", 6))); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("run-2", TrialRecord{Step: 1, Config: cfg(1, 1, 1, 1, 1, 1), Y: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestMemDiskParity(t *testing.T) {
	mem := NewMem()
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	populate(t, mem)
	populate(t, disk)
	if !reflect.DeepEqual(mem.Keys(), disk.Keys()) {
		t.Fatalf("keys differ: %v vs %v", mem.Keys(), disk.Keys())
	}
	for _, k := range mem.Keys() {
		a, _ := mem.Get(k)
		b, _ := disk.Get(k)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %q differs:\nmem  %+v\ndisk %+v", k, a, b)
		}
		if mem.LastStep(k) != disk.LastStep(k) {
			t.Fatalf("last step differs for %q", k)
		}
	}
}

func TestDiskReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d)
	before, _ := d.Get("run-1")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	after, ok := d2.Get("run-1")
	if !ok || !reflect.DeepEqual(before, after) {
		t.Fatalf("round trip lost data: %+v vs %+v", before, after)
	}
	if got := d2.LastStep("run-1"); got != 2 {
		t.Fatalf("last step = %d, want 2", got)
	}
	if rec, _ := d2.Get("run-1"); !rec.Sealed || string(rec.State) != `{"v":1}` {
		t.Fatalf("seal state lost: %+v", rec)
	}
	// The index catalog exists and is versioned.
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		V        int `json:"v"`
		Sessions []struct {
			Key    string `json:"key"`
			Sealed bool   `json:"sealed"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if idx.V != 1 || len(idx.Sessions) != 2 || !idx.Sessions[0].Sealed {
		t.Fatalf("bad index: %+v", idx)
	}
}

// TestDiskTornTailTruncated is the crash-safety contract: a record cut
// mid-write (kill -9 during append) must not poison the archive — the
// torn tail is truncated on open and everything before it survives.
func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d)
	d.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	torn := full[:len(full)-10]
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer d2.Close()
	// The torn record was run-2's only trial; the begin survived.
	if rec, ok := d2.Get("run-2"); !ok || len(rec.Trials) != 0 {
		t.Fatalf("torn trial should be dropped, got %+v ok=%v", rec, ok)
	}
	if rec, ok := d2.Get("run-1"); !ok || len(rec.Trials) != 2 || !rec.Sealed {
		t.Fatalf("earlier records must survive: %+v", rec)
	}
	// The file itself was truncated to the last good record.
	now, _ := os.ReadFile(segs[0])
	if len(now) >= len(torn) {
		t.Fatalf("segment not truncated: %d >= %d", len(now), len(torn))
	}
	if len(now) == 0 || now[len(now)-1] != '\n' {
		t.Fatal("truncated segment must end on a record boundary")
	}
}

func TestDiskMidFileCorruptionErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d)
	d.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	data, _ := os.ReadFile(segs[0])
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("want ≥3 lines, got %d", len(lines))
	}
	lines[0] = []byte("{garbage\n")
	if err := os.WriteFile(segs[0], bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption must error, not truncate away good records")
	}
}

func TestDiskRejectsNewerVersion(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "seg-000001.jsonl")
	if err := os.WriteFile(seg, []byte(`{"v":99,"op":"begin","meta":{"key":"x"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("newer record version must be rejected")
	}
	if err := os.Remove(seg); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"v":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("newer index version must be rejected")
	}
}

func TestDiskReattachAndLastStep(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d)
	d.Close()
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Re-begin with the same key continues the record.
	if err := d2.Begin(meta("run-2", chain("c6", 6))); err != nil {
		t.Fatal(err)
	}
	if got := d2.LastStep("run-2"); got != 1 {
		t.Fatalf("last step = %d, want 1", got)
	}
	if err := d2.Append("run-2", TrialRecord{Step: 2, Config: cfg(2, 2, 2, 2, 2, 2), Y: 6}); err != nil {
		t.Fatal(err)
	}
	if rec, _ := d2.Get("run-2"); len(rec.Trials) != 2 {
		t.Fatalf("want 2 trials after re-attach, got %d", len(rec.Trials))
	}
	// A different fingerprint under the same key is a caller bug.
	if err := d2.Begin(meta("run-2", chain("other", 7))); err == nil {
		t.Fatal("fingerprint mismatch on re-begin must error")
	}
}

func TestDiskGC(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d) // run-1 sealed, run-2 unsealed
	dropped, err := d.GC()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if got := d.Keys(); len(got) != 1 || got[0] != "run-1" {
		t.Fatalf("keys after gc = %v", got)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("gc should compact to one segment, got %v", segs)
	}
	d.Close()
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec, ok := d2.Get("run-1"); !ok || len(rec.Trials) != 2 || !rec.Sealed {
		t.Fatalf("compacted record wrong: %+v ok=%v", rec, ok)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	populate(t, d)
	var buf bytes.Buffer
	if err := d.Export(&buf); err != nil {
		t.Fatal(err)
	}
	mem := NewMem()
	n, err := ImportStore(mem, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d, want 2", n)
	}
	for _, k := range d.Keys() {
		a, _ := d.Get(k)
		b, _ := mem.Get(k)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("import lost data for %q", k)
		}
	}
	// Importing again is a no-op (keys exist).
	n, err = ImportStore(mem, bytes.NewReader(buf.Bytes()))
	if err != nil || n != 0 {
		t.Fatalf("re-import = %d, %v; want 0, nil", n, err)
	}
}
