// Package archive is the persistent memory of the tuner: a store of
// completed and in-progress tuning evidence — archived session states
// plus compact per-trial records — keyed by topology fingerprint and a
// small topology feature vector. A new session queries the archive for
// similar prior runs and warm-starts from their evidence instead of
// starting cold (see core's transfer layer).
//
// Two implementations share the Store interface: Mem (tests, fleets
// that only share within one process) and Disk (append-only JSON-lines
// segments plus an index file, crash-safe: a torn final record is
// truncated on open, and sealing a session fsyncs the segment).
//
// Everything here is decision-path code for warm-started sessions, so
// the package is bound by stormlint's norawrand/nowallclock/maporder
// contracts: no wall clock, no unseeded randomness, and every listing
// or ranking is deterministically ordered.
package archive

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Features is the topology feature vector archive queries rank by:
// component counts, graph shape, the time-imbalance class, contention,
// and the cluster dimensions the session tuned against. Two runs with
// equal fingerprints always have equal features; the vector is what
// lets evidence transfer between *similar* — not identical —
// topologies.
type Features struct {
	// Nodes, Spouts and Edges are component counts.
	Nodes  int `json:"nodes"`
	Spouts int `json:"spouts"`
	Edges  int `json:"edges"`
	// Depth is the node count of the longest spout→sink path.
	Depth int `json:"depth"`
	// FanOut is the maximum out-degree of any node.
	FanOut int `json:"fanOut"`
	// TIIMClass quantizes the time-complexity imbalance across nodes
	// (coefficient of variation of TimeUnits): 0 balanced through 3
	// extreme.
	TIIMClass int `json:"tiimClass"`
	// Contention is the contentious share of total compute units.
	Contention float64 `json:"contention"`
	// Machines and Slots are the cluster dimensions (machine count and
	// task slots per machine).
	Machines int `json:"machines"`
	Slots    int `json:"slots"`
}

// Extract derives the feature vector of a topology on a cluster.
func Extract(t *topo.Topology, spec cluster.Spec) Features {
	f := Features{
		Nodes:      t.N(),
		Spouts:     len(t.Spouts()),
		Edges:      len(t.Edges),
		Contention: t.ContentiousShare(),
		Machines:   spec.Machines,
		Slots:      spec.TaskSlotsPerMachine,
	}
	// Depth in nodes: longest path where every node costs 1.
	depth := make([]int, t.N())
	for _, v := range t.TopoOrder() {
		d := 0
		for _, p := range t.Parents(v) {
			if depth[p] > d {
				d = depth[p]
			}
		}
		depth[v] = d + 1
		if depth[v] > f.Depth {
			f.Depth = depth[v]
		}
	}
	for v := 0; v < t.N(); v++ {
		if c := len(t.Children(v)); c > f.FanOut {
			f.FanOut = c
		}
	}
	f.TIIMClass = tiimClass(t)
	return f
}

// tiimClass buckets the coefficient of variation of per-node compute
// cost into four imbalance classes.
func tiimClass(t *topo.Topology) int {
	n := float64(t.N())
	mean := t.TotalTimeUnits() / n
	if mean <= 0 {
		return 0
	}
	var ss float64
	for _, nd := range t.Nodes {
		d := nd.TimeUnits - mean
		ss += d * d
	}
	cv := math.Sqrt(ss/n) / mean
	switch {
	case cv < 0.25:
		return 0
	case cv < 0.75:
		return 1
	case cv < 1.5:
		return 2
	default:
		return 3
	}
}

// Similarity scores two feature vectors in (0, 1]: 1 for identical
// features, decaying with a weighted normalized distance. Structural
// counts compare on relative scale (a 10-node and an 11-node chain are
// close; a 10-node and a 100-node one are not); the imbalance class
// and contention compare absolutely. Deterministic and symmetric.
func Similarity(a, b Features) float64 {
	rel := func(x, y, w float64) float64 {
		m := math.Max(math.Abs(x), math.Abs(y))
		if m == 0 {
			return 0
		}
		return w * math.Abs(x-y) / m
	}
	d := rel(float64(a.Nodes), float64(b.Nodes), 2) +
		rel(float64(a.Spouts), float64(b.Spouts), 1) +
		rel(float64(a.Edges), float64(b.Edges), 1) +
		rel(float64(a.Depth), float64(b.Depth), 1) +
		rel(float64(a.FanOut), float64(b.FanOut), 0.5) +
		0.5*math.Abs(float64(a.TIIMClass)-float64(b.TIIMClass))/3 +
		1.0*math.Abs(a.Contention-b.Contention) +
		rel(float64(a.Machines), float64(b.Machines), 1) +
		rel(float64(a.Slots), float64(b.Slots), 0.5)
	return math.Exp(-d)
}

// TrialRecord is one completed trial in compact archived form: enough
// to replay the configuration into a new session's parameter space and
// weight its observed objective.
type TrialRecord struct {
	// Step is the 1-based completion index within the session.
	Step   int          `json:"step"`
	Config storm.Config `json:"config"`
	// Y is the observed objective (throughput; 0 for failed trials).
	Y      float64 `json:"y"`
	Failed bool    `json:"failed,omitempty"`
}

// SessionMeta identifies one archived session.
type SessionMeta struct {
	// Key is the caller-stable identity of the run: re-attaching with
	// the same key (after a crash or snapshot/resume) continues the
	// same record instead of duplicating it.
	Key string `json:"key"`
	// Fingerprint is topo.Fingerprint of the tuned topology — the
	// primary archive key; exact matches outrank any feature distance.
	Fingerprint uint64 `json:"fingerprint"`
	// Topology is the human-readable topology name.
	Topology string `json:"topology"`
	// Strategy names the proposal strategy that produced the evidence.
	Strategy string `json:"strategy,omitempty"`
	// Set is the tuned parameter set (core.ParamSet numeric value).
	Set int `json:"set"`
	// Seed is the session's RNG seed.
	Seed int64 `json:"seed"`
	// Features is the topology feature vector used for similarity
	// ranking against non-identical fingerprints.
	Features Features `json:"features"`
}

// SessionRecord is one archived session: its identity, the compact
// per-trial evidence in completion order, and — once sealed — the full
// serialized session state.
type SessionRecord struct {
	Meta   SessionMeta   `json:"meta"`
	Trials []TrialRecord `json:"trials,omitempty"`
	// Sealed marks a completed session; unsealed records are abandoned
	// or still in progress.
	Sealed bool `json:"sealed,omitempty"`
	// State is the archived session state (a serialized
	// core.SessionState), present on sealed records when the sealer
	// provided one. Opaque to this package.
	State json.RawMessage `json:"state,omitempty"`
}

// Best returns the record's best successful trial, ok=false when every
// trial failed or none were archived.
func (r *SessionRecord) Best() (TrialRecord, bool) {
	var best TrialRecord
	found := false
	for _, tr := range r.Trials {
		if tr.Failed {
			continue
		}
		if !found || tr.Y > best.Y {
			best, found = tr, true
		}
	}
	return best, found
}

// TopK returns the record's k best successful trials, best first, with
// duplicate configurations collapsed (a session re-measuring its
// incumbent should contribute it once). Ties break on archive step so
// the ranking is deterministic.
func (r *SessionRecord) TopK(k int) []TrialRecord {
	ok := make([]TrialRecord, 0, len(r.Trials))
	for _, tr := range r.Trials {
		if !tr.Failed {
			ok = append(ok, tr)
		}
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].Y > ok[j].Y })
	out := make([]TrialRecord, 0, k)
	seen := make(map[uint64]bool)
	for _, tr := range ok {
		fp := tr.Config.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, tr)
		if len(out) == k {
			break
		}
	}
	return out
}

// Store is the archive contract both implementations satisfy. All
// methods are safe for concurrent use; listings are deterministically
// ordered by key.
type Store interface {
	// Begin registers a session. Re-beginning an existing key is the
	// re-attach path: the stored trials are kept and later Appends
	// continue the record. The metadata of a re-begun key must match
	// the stored record's fingerprint.
	Begin(meta SessionMeta) error
	// Append adds completed trials to an open or existing record.
	Append(key string, trials ...TrialRecord) error
	// Seal marks the session complete, optionally attaching the full
	// serialized session state, and makes the evidence durable.
	Seal(key string, state json.RawMessage) error
	// Get returns a deep-enough copy of one record.
	Get(key string) (SessionRecord, bool)
	// Keys lists all record keys in sorted order.
	Keys() []string
	// LastStep returns the highest archived trial step for key (0 when
	// none) — the resume cursor that prevents double-appending.
	LastStep(key string) int
	// Delete removes a record (gc support).
	Delete(key string) error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// Ranked is one similarity-ranked query result.
type Ranked struct {
	Rec SessionRecord
	// Sim is the similarity in (0, 1]; exact fingerprint matches score
	// exactly 1.
	Sim float64
	// Exact marks an exact-fingerprint match.
	Exact bool
}

// Query returns the top-k archived sessions most relevant to a
// topology, best first: exact fingerprint matches rank before any
// feature-distance match, then by descending similarity, with key
// order as the final deterministic tiebreak. Records with no
// successful trial carry no transferable evidence and are skipped.
func Query(s Store, fp uint64, f Features, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	var out []Ranked
	for _, key := range s.Keys() {
		rec, ok := s.Get(key)
		if !ok {
			continue
		}
		if _, any := rec.Best(); !any {
			continue
		}
		r := Ranked{Rec: rec}
		if rec.Meta.Fingerprint == fp {
			r.Exact, r.Sim = true, 1
		} else {
			r.Sim = Similarity(f, rec.Meta.Features)
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Exact != out[j].Exact {
			return out[i].Exact
		}
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Rec.Meta.Key < out[j].Rec.Meta.Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// validateMeta rejects metadata no store accepts.
func validateMeta(meta SessionMeta) error {
	if meta.Key == "" {
		return fmt.Errorf("archive: session key must be non-empty")
	}
	return nil
}
