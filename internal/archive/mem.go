package archive

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory Store: the test double, and the natural choice
// for a single-process fleet that shares evidence across members
// without persisting it.
type Mem struct {
	mu   sync.Mutex
	recs map[string]*SessionRecord
}

// NewMem returns an empty in-memory archive.
func NewMem() *Mem {
	return &Mem{recs: make(map[string]*SessionRecord)}
}

// Begin implements Store.
func (m *Mem) Begin(meta SessionMeta) error {
	if err := validateMeta(meta); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.recs[meta.Key]; ok {
		if rec.Meta.Fingerprint != meta.Fingerprint {
			return fmt.Errorf("archive: key %q already holds fingerprint %016x, not %016x",
				meta.Key, rec.Meta.Fingerprint, meta.Fingerprint)
		}
		return nil
	}
	m.recs[meta.Key] = &SessionRecord{Meta: meta}
	return nil
}

// Append implements Store.
func (m *Mem) Append(key string, trials ...TrialRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[key]
	if !ok {
		return fmt.Errorf("archive: append to unknown session %q", key)
	}
	rec.Trials = append(rec.Trials, trials...)
	return nil
}

// Seal implements Store.
func (m *Mem) Seal(key string, state json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[key]
	if !ok {
		return fmt.Errorf("archive: seal of unknown session %q", key)
	}
	rec.Sealed = true
	if state != nil {
		rec.State = append(json.RawMessage(nil), state...)
	}
	return nil
}

// Get implements Store.
func (m *Mem) Get(key string) (SessionRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[key]
	if !ok {
		return SessionRecord{}, false
	}
	return copyRecord(rec), true
}

// Keys implements Store.
func (m *Mem) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.recs))
	for k := range m.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LastStep implements Store.
func (m *Mem) LastStep(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[key]
	if !ok {
		return 0
	}
	last := 0
	for _, tr := range rec.Trials {
		if tr.Step > last {
			last = tr.Step
		}
	}
	return last
}

// Delete implements Store.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, key)
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

func copyRecord(rec *SessionRecord) SessionRecord {
	out := *rec
	out.Trials = append([]TrialRecord(nil), rec.Trials...)
	for i := range out.Trials {
		out.Trials[i].Config = out.Trials[i].Config.Clone()
	}
	if rec.State != nil {
		out.State = append(json.RawMessage(nil), rec.State...)
	}
	return out
}
