// Package sample generates space-filling point sets in the unit
// hypercube: Latin hypercube designs for Bayesian-optimization seeding
// and Halton sequences plus uniform draws for acquisition-function
// candidate grids (the role Spearmint's candidate grid plays).
package sample

import (
	"fmt"
	"math/rand"
)

// LatinHypercube returns n points in [0,1)^d such that each dimension's
// projection hits each of the n equal strata exactly once.
func LatinHypercube(rng *rand.Rand, n, d int) [][]float64 {
	if n <= 0 || d <= 0 {
		return nil
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	perm := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			pts[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}

// Uniform returns n independent uniform points in [0,1)^d.
func Uniform(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// primes used as Halton bases; enough for 100+-dimensional topologies
// plus auxiliary dimensions.
var primes = func() []int {
	var ps []int
	for n := 2; len(ps) < 200; n++ {
		isPrime := true
		for _, p := range ps {
			if p*p > n {
				break
			}
			if n%p == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			ps = append(ps, n)
		}
	}
	return ps
}()

// Halton returns the i-th element (1-based index recommended) of the
// d-dimensional Halton sequence. For d beyond the prime table it panics.
func Halton(i, d int) []float64 {
	if d > len(primes) {
		panic(fmt.Sprintf("sample: Halton dimension %d exceeds prime table (%d)", d, len(primes)))
	}
	pt := make([]float64, d)
	for j := 0; j < d; j++ {
		pt[j] = radicalInverse(i, primes[j])
	}
	return pt
}

// HaltonSeq returns n Halton points starting at index start (use
// start ≥ 1; index 0 is the origin in every dimension).
func HaltonSeq(start, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for k := 0; k < n; k++ {
		pts[k] = Halton(start+k, d)
	}
	return pts
}

func radicalInverse(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}
