package sample

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 16, 3
	pts := LatinHypercube(rng, n, d)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	for j := 0; j < d; j++ {
		seen := make([]bool, n)
		for _, p := range pts {
			if p[j] < 0 || p[j] >= 1 {
				t.Fatalf("point out of unit cube: %v", p[j])
			}
			stratum := int(p[j] * float64(n))
			if seen[stratum] {
				t.Fatalf("dim %d stratum %d hit twice", j, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestLatinHypercubeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if LatinHypercube(rng, 0, 3) != nil {
		t.Fatal("n=0 should return nil")
	}
	if LatinHypercube(rng, 3, 0) != nil {
		t.Fatal("d=0 should return nil")
	}
	pts := LatinHypercube(rng, 1, 2)
	if len(pts) != 1 || len(pts[0]) != 2 {
		t.Fatalf("1x2 LHS wrong shape")
	}
}

func TestUniformInCube(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := Uniform(rng, 50, 4)
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("uniform point out of range: %v", v)
			}
		}
	}
}

func TestHaltonKnownPrefix(t *testing.T) {
	// Base-2 radical inverse: 1→0.5, 2→0.25, 3→0.75.
	want := []float64{0.5, 0.25, 0.75}
	for i, w := range want {
		got := Halton(i+1, 1)[0]
		if got != w {
			t.Fatalf("halton(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Base-3 second dimension: 1→1/3, 2→2/3.
	if Halton(1, 2)[1] != 1.0/3 {
		t.Fatalf("halton base 3 wrong: %v", Halton(1, 2)[1])
	}
}

func TestHaltonSeqShape(t *testing.T) {
	pts := HaltonSeq(1, 10, 5)
	if len(pts) != 10 || len(pts[0]) != 5 {
		t.Fatalf("shape = %dx%d", len(pts), len(pts[0]))
	}
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("halton point out of range: %v", v)
			}
		}
	}
}

func TestQuickHaltonInUnitCube(t *testing.T) {
	f := func(i uint16, d uint8) bool {
		dim := 1 + int(d)%20
		idx := 1 + int(i)%5000
		p := Halton(idx, dim)
		for _, v := range p {
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHaltonHighDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond prime table")
		}
	}()
	Halton(1, 10_000)
}
