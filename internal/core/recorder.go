package core

import (
	"fmt"
	"sync"
	"time"

	"stormtune/internal/storm"
)

// MultiObserver composes observers: every event is delivered to each
// member in order, so a progress printer, a Recorder and a metrics
// exporter can all watch one session. Nil members are skipped; with no
// non-nil member the result is nil (which SessionOptions treats as "no
// observer").
func MultiObserver(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

// OnEvent implements Observer.
func (m multiObserver) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// TrialStatus is the lifecycle state the Recorder derives for a trial.
type TrialStatus string

// Trial lifecycle states.
const (
	// StatusPending marks a trial carried over from a snapshot that the
	// resumed session has not re-dispatched yet.
	StatusPending TrialStatus = "pending"
	// StatusRunning marks a trial handed out for evaluation.
	StatusRunning TrialStatus = "running"
	// StatusRetrying marks a trial whose last evaluation attempt was
	// lost: it covers the backoff wait and the re-attempt itself (the
	// retry loop emits no per-attempt start event), until the trial
	// completes or fails permanently.
	StatusRetrying TrialStatus = "retrying"
	// StatusDone marks a trial with a successful measurement.
	StatusDone TrialStatus = "done"
	// StatusFailed marks a trial whose recorded result is a failure —
	// an unplaceable configuration, a timeout, or a permanently lost
	// measurement.
	StatusFailed TrialStatus = "failed"
)

// RecordedEvent is one session event in the Recorder's history,
// flattened into a serializable form: a monotonically increasing
// sequence number (the SSE event ID the dashboard replays from), the
// wall-clock time, and the event's payload fields. Fields not relevant
// to the Kind are zero.
type RecordedEvent struct {
	// Seq is the 1-based position in the history.
	Seq int64 `json:"seq"`
	// Kind names the event type: "trial_started", "trial_completed",
	// "trial_failed", "trial_retried", "new_best", "pass_completed",
	// "parallelism_clamped".
	Kind string `json:"kind"`
	// At is the wall-clock time the Recorder saw the event.
	At time.Time `json:"at"`
	// ElapsedMS is At relative to the Recorder's start.
	ElapsedMS int64 `json:"elapsedMs"`
	// TrialID is set for per-trial events.
	TrialID int `json:"trialId,omitempty"`
	// Attempt is the evaluation attempt for failure/retry events.
	Attempt int `json:"attempt,omitempty"`
	// Throughput carries the measurement of trial_completed / new_best.
	Throughput float64 `json:"throughput,omitempty"`
	// Failed and Failure classify a failed measurement.
	Failed  bool   `json:"failed,omitempty"`
	Failure string `json:"failure,omitempty"`
	// Err is the evaluation error of trial_failed / trial_retried.
	Err string `json:"err,omitempty"`
	// Permanent marks a trial_failed with the retry budget spent.
	Permanent bool `json:"permanent,omitempty"`
	// BackoffMS is the wait before a retried attempt.
	BackoffMS int64 `json:"backoffMs,omitempty"`
	// Steps and Found summarize a pass_completed.
	Steps int  `json:"steps,omitempty"`
	Found bool `json:"found,omitempty"`
	// Requested and Allowed describe a parallelism_clamped.
	Requested int `json:"requested,omitempty"`
	Allowed   int `json:"allowed,omitempty"`
	// SimTime is the simulated timestamp of continuous-tuning events
	// (hold_sample, retune_triggered, retune_completed).
	SimTime float64 `json:"simTime,omitempty"`
	// Episode is the retune episode of retune_triggered /
	// retune_completed.
	Episode int `json:"episode,omitempty"`
	// Baseline is the monitor's rolling performance estimate
	// (hold_sample, retune_triggered); Current is the degraded estimate
	// that tripped a retune_triggered.
	Baseline float64 `json:"baseline,omitempty"`
	Current  float64 `json:"current,omitempty"`
	// Reason is the retune_triggered trigger path ("degradation" or
	// "backpressure").
	Reason string `json:"reason,omitempty"`
	// Replayed marks an event synthesized by Prime from a snapshot
	// rather than observed live; its timing fields describe the replay,
	// not the original run.
	Replayed bool `json:"replayed,omitempty"`
}

// Event kind names, as RecordedEvent.Kind and the SSE stream carry them.
const (
	KindTrialStarted       = "trial_started"
	KindTrialCompleted     = "trial_completed"
	KindTrialFailed        = "trial_failed"
	KindTrialRetried       = "trial_retried"
	KindNewBest            = "new_best"
	KindPassCompleted      = "pass_completed"
	KindParallelismClamped = "parallelism_clamped"
	KindHoldSample         = "hold_sample"
	KindRetuneTriggered    = "retune_triggered"
	KindRetuneCompleted    = "retune_completed"
)

// TrialView is the Recorder's derived per-trial state.
type TrialView struct {
	ID     int          `json:"id"`
	Config storm.Config `json:"config"`
	Status TrialStatus  `json:"status"`
	// Attempts is the number of evaluation attempts consumed so far —
	// failed ones plus, for a running trial, the one in flight.
	Attempts int `json:"attempts"`
	// StartedAt / FinishedAt bound the trial's wall-clock; FinishedAt is
	// zero while the trial is in flight.
	StartedAt  time.Time `json:"startedAt"`
	FinishedAt time.Time `json:"finishedAt,omitempty"`
	// DurationMS is FinishedAt - StartedAt for finished trials.
	DurationMS int64 `json:"durationMs,omitempty"`
	// Throughput, Failed and Failure carry the recorded measurement.
	Throughput float64 `json:"throughput"`
	Failed     bool    `json:"failed,omitempty"`
	Failure    string  `json:"failure,omitempty"`
	Error      string  `json:"error,omitempty"`
	// Best marks the trial that holds (or held) the incumbent.
	Best bool `json:"best,omitempty"`
	// Replayed marks a trial restored by Prime rather than observed.
	Replayed bool `json:"replayed,omitempty"`
}

// IncumbentPoint is one point of the best-so-far curve: after the
// completion of trial Step, the best throughput seen was Best. The
// curve is the convergence trace of Figures 6/8b, updated live; regret
// against the final incumbent is Best(final) - Best(step).
type IncumbentPoint struct {
	// Step counts completed trials (1-based completion order).
	Step int `json:"step"`
	// TrialID is the trial whose completion produced the point.
	TrialID int `json:"trialId"`
	// Best is the best throughput after this completion.
	Best float64 `json:"best"`
	// ElapsedMS is the session wall-clock at the completion.
	ElapsedMS int64 `json:"elapsedMs"`
}

// RetunePoint is one retune episode in the Recorder's derived state:
// when the monitor fired, why, and how the episode ended. Completed is
// false while the episode's conservative search is still running.
type RetunePoint struct {
	// Episode is the 1-based retune episode index.
	Episode int `json:"episode"`
	// SimTime is the simulated timestamp of the trigger.
	SimTime float64 `json:"simTime"`
	// Baseline and Current are the monitor's estimates at the trigger.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Reason is the trigger path: "degradation" or "backpressure".
	Reason string `json:"reason"`
	// Completed marks a finished episode; the fields below are zero
	// until then.
	Completed bool `json:"completed"`
	// CompletedSimTime is the simulated timestamp at completion.
	CompletedSimTime float64 `json:"completedSimTime,omitempty"`
	// Steps is the number of retune trials the episode evaluated.
	Steps int `json:"steps,omitempty"`
	// Best is the throughput of the incumbent held after the episode.
	Best float64 `json:"best,omitempty"`
}

// RecorderSnapshot is the queryable state of a Recorder at one instant.
type RecorderSnapshot struct {
	// StartedAt is when the Recorder was created (or primed).
	StartedAt time.Time `json:"startedAt"`
	// ElapsedMS is the wall-clock observed so far.
	ElapsedMS int64 `json:"elapsedMs"`
	// Events is the history length; the SSE stream's next event will
	// carry Seq = Events + 1.
	Events int64 `json:"events"`
	// Trials holds every trial seen, in first-seen order.
	Trials []TrialView `json:"trials"`
	// Incumbent is the best-so-far curve, one point per completion.
	Incumbent []IncumbentPoint `json:"incumbent"`
	// Best and BestTrial identify the incumbent (zero when every run
	// failed so far).
	Best      float64 `json:"best"`
	BestTrial int     `json:"bestTrial"`
	// Counters over Trials, precomputed for display.
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Retrying  int `json:"retrying"`
	Completed int `json:"completed"`
	FailedN   int `json:"failedTrials"`
	// Retries is the total number of lost attempts that were retried.
	Retries int `json:"retries"`
	// Retunes lists the continuous-tuning retune episodes observed so
	// far (empty for plain tuning runs).
	Retunes []RetunePoint `json:"retunes,omitempty"`
	// WarmStarted marks a session seeded from the archive; the Warm*
	// fields identify the donor run (fingerprint in hex) and its
	// similarity to this session's topology. All zero for cold runs.
	WarmStarted          bool    `json:"warmStarted,omitempty"`
	WarmDonor            string  `json:"warmDonor,omitempty"`
	WarmDonorFingerprint string  `json:"warmDonorFingerprint,omitempty"`
	WarmSimilarity       float64 `json:"warmSimilarity,omitempty"`
	// Done reports that a driver finished (pass_completed observed).
	Done bool `json:"done"`
}

// Recorder is an Observer that keeps the full event history plus the
// derived live state of a tuning session — per-trial status, attempt
// counts and timing, the incumbent trace, and a best-so-far curve —
// queryable at any time via Snapshot. It is safe for concurrent use:
// the session delivers events serially, but Snapshot, EventsSince and
// the SSE consumers they serve may run from any goroutine. Compose it
// with other observers via MultiObserver, or hand it to the public
// tuner through TunerOptions.Recorder.
type Recorder struct {
	mu       sync.Mutex
	now      func() time.Time
	start    time.Time
	events   []RecordedEvent
	trials   map[int]*TrialView
	order    []int
	curve    []IncumbentPoint
	best     float64
	bestID   int
	retries  int
	retunes  []RetunePoint
	transfer *TransferSeed
	done     bool
	// wake is closed and replaced whenever the history grows, so
	// EventsSince callers can block for the next event without polling.
	wake chan struct{}
}

// NewRecorder builds an empty Recorder; its clock starts now.
func NewRecorder() *Recorder {
	return newRecorderAt(time.Now)
}

func newRecorderAt(now func() time.Time) *Recorder {
	return &Recorder{
		now:    now,
		start:  now(),
		trials: make(map[int]*TrialView),
		wake:   make(chan struct{}),
	}
}

// trial returns (creating if needed) the view for a trial id.
func (r *Recorder) trial(tr Trial) *TrialView {
	tv, ok := r.trials[tr.ID]
	if !ok {
		tv = &TrialView{ID: tr.ID, Config: tr.Config}
		r.trials[tr.ID] = tv
		r.order = append(r.order, tr.ID)
	}
	return tv
}

// OnEvent implements Observer: fold the event into the derived state
// and append it to the history.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	at := r.now()
	re := RecordedEvent{At: at, ElapsedMS: at.Sub(r.start).Milliseconds()}
	switch ev := e.(type) {
	case TrialStarted:
		re.Kind = KindTrialStarted
		re.TrialID = ev.Trial.ID
		tv := r.trial(ev.Trial)
		tv.Status = StatusRunning
		tv.StartedAt = at
		// Trial.Attempt counts consumed (failed) attempts; the dispatch
		// itself is one more in flight. Monotonic so a retry event's
		// count is never rolled back.
		if a := ev.Trial.Attempt + 1; a > tv.Attempts {
			tv.Attempts = a
		}
	case TrialCompleted:
		re.Kind = KindTrialCompleted
		re.TrialID = ev.Trial.ID
		re.Throughput = ev.Result.Throughput
		re.Failed = ev.Result.Failed
		re.Failure = string(ev.Result.Failure)
		tv := r.trial(ev.Trial)
		tv.FinishedAt = at
		if !tv.StartedAt.IsZero() {
			tv.DurationMS = at.Sub(tv.StartedAt).Milliseconds()
		}
		tv.Throughput = ev.Result.Throughput
		tv.Failed = ev.Result.Failed
		tv.Failure = string(ev.Result.Failure)
		tv.Error = ev.Result.Error
		if ev.Result.Failed {
			tv.Status = StatusFailed
		} else {
			tv.Status = StatusDone
		}
		// Same rule as Session.Report's NewBest: a strictly positive
		// improvement. A non-failed zero-throughput run is recorded but
		// never starred — the session would not call it best either.
		if !ev.Result.Failed && ev.Result.Throughput > r.best {
			r.setBest(ev.Trial.ID, ev.Result.Throughput)
		}
		r.curve = append(r.curve, IncumbentPoint{
			Step: len(r.curve) + 1, TrialID: ev.Trial.ID, Best: r.best,
			ElapsedMS: re.ElapsedMS,
		})
	case TrialFailed:
		re.Kind = KindTrialFailed
		re.TrialID = ev.Trial.ID
		re.Attempt = ev.Attempt
		re.Permanent = ev.Permanent
		if ev.Err != nil {
			re.Err = ev.Err.Error()
		}
		tv := r.trial(ev.Trial)
		tv.Attempts = ev.Attempt
		if !ev.Permanent {
			tv.Status = StatusRetrying
		}
		// A permanent failure is followed by a TrialCompleted carrying
		// the pessimistic result; that transition sets StatusFailed.
	case TrialRetried:
		re.Kind = KindTrialRetried
		re.TrialID = ev.Trial.ID
		re.Attempt = ev.Attempt
		re.BackoffMS = ev.Backoff.Milliseconds()
		if ev.Err != nil {
			re.Err = ev.Err.Error()
		}
		tv := r.trial(ev.Trial)
		tv.Status = StatusRetrying
		tv.Attempts = ev.Attempt // the attempt about to start
		r.retries++
	case NewBest:
		re.Kind = KindNewBest
		re.TrialID = ev.Trial.ID
		re.Throughput = ev.Result.Throughput
		// Report observed the improvement before emitting; the
		// TrialCompleted branch above already moved the incumbent.
	case PassCompleted:
		re.Kind = KindPassCompleted
		re.Steps = ev.Steps
		re.Found = ev.Found
		r.done = true
		// A driver that stopped on cancellation leaves in-flight trials
		// pending in the session (a snapshot carries them); mirror that
		// so a finished dashboard never shows "done" next to trials
		// still badged running.
		for _, tv := range r.trials {
			if tv.Status == StatusRunning || tv.Status == StatusRetrying {
				tv.Status = StatusPending
			}
		}
	case ParallelismClamped:
		re.Kind = KindParallelismClamped
		re.Requested = ev.Requested
		re.Allowed = ev.Allowed
	case HoldSampled:
		re.Kind = KindHoldSample
		re.SimTime = ev.SimTime
		re.Throughput = ev.Result.Throughput
		re.Failed = ev.Result.Failed
		re.Failure = string(ev.Result.Failure)
		re.Baseline = ev.Baseline
	case RetuneTriggered:
		re.Kind = KindRetuneTriggered
		re.SimTime = ev.SimTime
		re.Episode = ev.Episode
		re.Baseline = ev.Baseline
		re.Current = ev.Current
		re.Reason = ev.Reason
		r.retunes = append(r.retunes, RetunePoint{
			Episode: ev.Episode, SimTime: ev.SimTime,
			Baseline: ev.Baseline, Current: ev.Current, Reason: ev.Reason,
		})
	case RetuneCompleted:
		re.Kind = KindRetuneCompleted
		re.SimTime = ev.SimTime
		re.Episode = ev.Episode
		re.Steps = ev.Steps
		re.Found = ev.Found
		re.Throughput = ev.Best.Result.Throughput
		// Complete the matching episode; retunes are appended in episode
		// order so scanning backwards finds it first.
		for i := len(r.retunes) - 1; i >= 0; i-- {
			if r.retunes[i].Episode == ev.Episode {
				r.retunes[i].Completed = true
				r.retunes[i].CompletedSimTime = ev.SimTime
				r.retunes[i].Steps = ev.Steps
				r.retunes[i].Best = ev.Best.Result.Throughput
				break
			}
		}
	default:
		r.mu.Unlock()
		return // unknown future event type: derive nothing, record nothing
	}
	// Any event after a pass_completed means the session is being driven
	// again (raised budget, in-process resume): the run is live, so the
	// SSE streams must follow it instead of hanging up at "done".
	if re.Kind != KindPassCompleted {
		r.done = false
	}
	r.append(re)
	r.mu.Unlock()
}

// setBest moves the incumbent, clearing the Best mark on the previous
// holder. Callers hold r.mu.
func (r *Recorder) setBest(trialID int, throughput float64) {
	if prev, ok := r.trials[r.bestID]; ok {
		prev.Best = false
	}
	r.best = throughput
	r.bestID = trialID
	if tv, ok := r.trials[trialID]; ok {
		tv.Best = true
	}
}

// append stamps the next sequence number, stores the event and wakes
// blocked EventsSince callers. Callers hold r.mu.
func (r *Recorder) append(re RecordedEvent) {
	re.Seq = int64(len(r.events)) + 1
	r.events = append(r.events, re)
	close(r.wake)
	r.wake = make(chan struct{})
}

// Prime seeds the Recorder from a session snapshot, synthesizing the
// history a live Recorder would have accumulated: one started+completed
// event pair per record (with new_best events as the incumbent
// improved) and a pending trial per in-flight snapshot entry. Use it
// with ResumeTuner so the dashboard of a resumed run shows the whole
// incumbent trace, not just the continuation; the public tuner primes
// TunerOptions.Recorder automatically. Priming a recorder that already
// holds events is a no-op: an in-process resume reusing its live
// Recorder keeps the live history. Synthesized events carry
// Replayed and replay-time timestamps — the original run's wall-clock
// is not part of a snapshot.
func (r *Recorder) Prime(st *SessionState) {
	if st == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// A recorder that has already observed events (an in-process resume
	// reusing the live Recorder) keeps its richer live history —
	// replaying the snapshot on top would duplicate every trial, curve
	// point and incumbent move.
	if len(r.events) > 0 {
		return
	}
	at := r.now()
	stamp := func(kind string) RecordedEvent {
		return RecordedEvent{
			Kind: kind, At: at, ElapsedMS: at.Sub(r.start).Milliseconds(),
			Replayed: true,
		}
	}
	for _, rec := range st.Records {
		tv := r.trial(Trial{ID: rec.Step, Config: rec.Config})
		tv.Replayed = true
		tv.Throughput = rec.Result.Throughput
		tv.Failed = rec.Result.Failed
		tv.Failure = string(rec.Result.Failure)
		tv.Error = rec.Result.Error
		tv.Attempts = 1
		if rec.Result.Failed {
			tv.Status = StatusFailed
		} else {
			tv.Status = StatusDone
		}
		started := stamp(KindTrialStarted)
		started.TrialID = rec.Step
		r.append(started)
		completed := stamp(KindTrialCompleted)
		completed.TrialID = rec.Step
		completed.Throughput = rec.Result.Throughput
		completed.Failed = rec.Result.Failed
		completed.Failure = string(rec.Result.Failure)
		r.append(completed)
		if !rec.Result.Failed && rec.Result.Throughput > r.best {
			r.setBest(rec.Step, rec.Result.Throughput)
			nb := stamp(KindNewBest)
			nb.TrialID = rec.Step
			nb.Throughput = rec.Result.Throughput
			r.append(nb)
		}
		r.curve = append(r.curve, IncumbentPoint{
			Step: len(r.curve) + 1, TrialID: rec.Step, Best: r.best,
			ElapsedMS: at.Sub(r.start).Milliseconds(),
		})
	}
	for _, p := range st.Pending {
		tv := r.trial(Trial{ID: p.ID, Config: p.Config})
		tv.Replayed = true
		tv.Status = StatusPending
		tv.Attempts = p.Attempt
	}
}

// SetTransfer records the warm start a session applied so the
// dashboard's /api/state carries the provenance (warmStarted, donor
// key, donor fingerprint, similarity). A nil seed is a no-op — cold
// runs stay unmarked.
func (r *Recorder) SetTransfer(seed *TransferSeed) {
	if seed == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transfer = seed
}

// Snapshot returns the derived state at this instant. The returned
// slices are copies; callers may keep them.
func (r *Recorder) Snapshot() RecorderSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RecorderSnapshot{
		StartedAt: r.start,
		ElapsedMS: r.now().Sub(r.start).Milliseconds(),
		Events:    int64(len(r.events)),
		Trials:    make([]TrialView, 0, len(r.order)),
		Incumbent: append([]IncumbentPoint(nil), r.curve...),
		Best:      r.best,
		BestTrial: r.bestID,
		Retries:   r.retries,
		Retunes:   append([]RetunePoint(nil), r.retunes...),
		Done:      r.done,
	}
	if r.transfer != nil {
		s.WarmStarted = true
		s.WarmDonor = r.transfer.Donor
		s.WarmDonorFingerprint = fmt.Sprintf("%016x", r.transfer.DonorFingerprint)
		s.WarmSimilarity = r.transfer.Similarity
	}
	for _, id := range r.order {
		tv := *r.trials[id]
		s.Trials = append(s.Trials, tv)
		switch tv.Status {
		case StatusPending:
			s.Pending++
		case StatusRunning:
			s.Running++
		case StatusRetrying:
			s.Retrying++
		case StatusDone:
			s.Completed++
		case StatusFailed:
			s.Completed++
			s.FailedN++
		}
	}
	return s
}

// RecorderStats are a Recorder's scalar counters — what a cross-session
// aggregator needs, without the trial-view and curve copies Snapshot
// makes.
type RecorderStats struct {
	// Trials counts every trial seen; Completed counts finished ones
	// (failures included) and Failed the failures among them.
	Trials    int
	Completed int
	Failed    int
	// Retries is the total number of lost attempts that were retried.
	Retries int
	// Best and BestTrial identify the incumbent.
	Best      float64
	BestTrial int
	// ElapsedMS is the wall-clock observed so far.
	ElapsedMS int64
	// Done reports that a driver finished.
	Done bool
}

// Stats samples the scalar counters without copying the event history
// or per-trial state — cheap enough for a fleet dashboard to poll per
// member on every /api/fleet request.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RecorderStats{
		Trials:    len(r.order),
		Retries:   r.retries,
		Best:      r.best,
		BestTrial: r.bestID,
		ElapsedMS: r.now().Sub(r.start).Milliseconds(),
		Done:      r.done,
	}
	for _, tv := range r.trials {
		switch tv.Status {
		case StatusDone:
			st.Completed++
		case StatusFailed:
			st.Completed++
			st.Failed++
		}
	}
	return st
}

// IncumbentTrace returns the (trial id, best throughput) pairs at which
// the incumbent moved — the convergence trace in its most comparable
// form (timestamps excluded, so a primed Recorder's trace can be
// compared with the live one it replays).
func (r *Recorder) IncumbentTrace() []IncumbentPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	var trace []IncumbentPoint
	prev := -1.0
	for _, p := range r.curve {
		if p.Best != prev {
			trace = append(trace, IncumbentPoint{Step: p.Step, TrialID: p.TrialID, Best: p.Best})
			prev = p.Best
		}
	}
	return trace
}

// Done reports whether a pass_completed event has been observed.
func (r *Recorder) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// EventsSince returns a copy of the history after sequence number
// `after` (0 = from the beginning). When the history has no newer
// events, the returned channel can be waited on: it is closed as soon
// as one arrives (wait is nil when events were returned). This is the
// replay-plus-follow primitive the SSE endpoint is built on.
//
// A cursor beyond the history cannot come from this Recorder (sequence
// numbers are dense) — it is a stale Last-Event-ID from a previous
// run, e.g. a browser reconnecting after the process restarted on the
// same port — so it resets to a full replay rather than silently
// starving the subscriber until the new run catches up.
func (r *Recorder) EventsSince(after int64) (evs []RecordedEvent, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if after < 0 || int(after) > len(r.events) {
		after = 0
	}
	if int(after) < len(r.events) {
		return append([]RecordedEvent(nil), r.events[after:]...), nil
	}
	return nil, r.wake
}
