package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/storm"
)

// tinySpec is a cluster too small to place anything beyond the first
// few hint levels.
func tinySpec() cluster.Spec {
	return cluster.Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 4, ThrashTasksPerCore: 4}
}

// flakyBackend wraps a backend and fails the first failures evaluation
// attempts of every selected trial with an error, then lets the wrapped
// backend answer — the "measurement lost N times, then the cluster
// recovers" shape the retry policy exists for. A nil match selects
// every trial.
type flakyBackend struct {
	inner    Backend
	failures int
	match    func(tr Trial) bool

	mu    sync.Mutex
	seen  map[int]int // trial ID → failed attempts so far
	fails int
}

func newFlaky(inner Backend, failures int, match func(Trial) bool) *flakyBackend {
	return &flakyBackend{inner: inner, failures: failures, match: match, seen: map[int]int{}}
}

func (f *flakyBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	if f.match == nil || f.match(tr) {
		f.mu.Lock()
		if f.seen[tr.ID] < f.failures {
			f.seen[tr.ID]++
			f.fails++
			f.mu.Unlock()
			return storm.Result{}, fmt.Errorf("flaky: trial %d attempt %d lost", tr.ID, tr.Attempt)
		}
		f.mu.Unlock()
	}
	return f.inner.Run(ctx, tr)
}

// eventCounter tallies failure/retry events; safe for concurrent emit.
type eventCounter struct {
	mu        sync.Mutex
	failed    int
	permanent int
	retried   int
	retriedAt []int // attempt numbers announced by TrialRetried
}

func (c *eventCounter) OnEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev := e.(type) {
	case TrialFailed:
		c.failed++
		if ev.Permanent {
			c.permanent++
		}
	case TrialRetried:
		c.retried++
		c.retriedAt = append(c.retriedAt, ev.Attempt)
	}
}

// TestRetryFlakyBackendMatchesCleanRun: a backend that loses the first
// two measurements of every trial, under MaxAttempts 3, produces the
// exact records of a never-failing run — the retry re-dispatches the
// same RunIndex, so the recovered measurement is the same draw.
func TestRetryFlakyBackendMatchesCleanRun(t *testing.T) {
	tp := testTopo()
	want := Tune(testEval(tp), newTestBO(9), 8, 0, 0)

	flaky := newFlaky(AsBackend(testEval(tp)), 2, nil)
	counter := &eventCounter{}
	sess := NewSession(newTestBO(9), flaky, SessionOptions{
		MaxSteps: 8,
		Retry:    RetryPolicy{MaxAttempts: 3},
		Observer: counter,
	})
	got, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, want.Records, got.Records)
	if counter.failed != 16 || counter.permanent != 0 {
		t.Fatalf("TrialFailed = %d (permanent %d), want 16 transient", counter.failed, counter.permanent)
	}
	if counter.retried != 16 {
		t.Fatalf("TrialRetried = %d, want 16", counter.retried)
	}
	for _, r := range got.Records {
		if r.Result.Failure == storm.FailureEvaluation {
			t.Fatalf("a successful retry must not record an evaluation failure: %+v", r.Result)
		}
	}
}

// TestPermanentFailureObservedPessimistically: when the retry budget is
// spent the session records a typed FailureEvaluation result — a
// pessimistic observation, not a silent zero — emits TrialFailed with
// Permanent, keeps tuning, and Best() excludes the failed step.
func TestPermanentFailureObservedPessimistically(t *testing.T) {
	tp := testTopo()
	flaky := newFlaky(AsBackend(testEval(tp)), 1000, func(tr Trial) bool { return tr.ID == 3 })
	counter := &eventCounter{}
	sess := NewSession(newTestBO(5), flaky, SessionOptions{
		MaxSteps: 8,
		Retry:    RetryPolicy{MaxAttempts: 2},
		Observer: counter,
	})
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 8 {
		t.Fatalf("session stalled at %d records, want 8", len(res.Records))
	}
	rec := res.Records[2]
	if rec.Step != 3 || !rec.Result.Failed {
		t.Fatalf("step 3 should be the failed record: %+v", rec)
	}
	if rec.Result.Failure != storm.FailureEvaluation {
		t.Fatalf("failure = %q, want %q", rec.Result.Failure, storm.FailureEvaluation)
	}
	if rec.Result.Error == "" {
		t.Fatal("failed record should carry the evaluation error")
	}
	if counter.permanent != 1 {
		t.Fatalf("permanent TrialFailed = %d, want 1", counter.permanent)
	}
	if counter.retried != 1 {
		t.Fatalf("TrialRetried = %d, want 1 (MaxAttempts 2)", counter.retried)
	}
	if best, ok := res.Best(); !ok || best.Step == 3 {
		t.Fatalf("best = %+v (ok=%v); must exclude the failed step", best, ok)
	}
}

// TestBOObservesFailureAsZero pins the optimizer's pessimistic
// handling: a typed failed result must influence the surrogate exactly
// like a zero-throughput measurement, steering the search away without
// corrupting it.
func TestBOObservesFailureAsZero(t *testing.T) {
	a, b := newTestBO(11), newTestBO(11)
	ca, _ := a.Next()
	cb, _ := b.Next()
	if ca.Fingerprint() != cb.Fingerprint() {
		t.Fatal("identical strategies must propose identically")
	}
	a.Observe(ca, storm.FailedResult(storm.FailureEvaluation, "lost"))
	b.Observe(cb, storm.Result{Throughput: 0})
	na, _ := a.Next()
	nb, _ := b.Next()
	if na.Fingerprint() != nb.Fingerprint() {
		t.Fatal("a failed observation must act as a zero-throughput observation")
	}
}

// TestPermanentFailuresDoNotTripStoppingRule: StopAfterZeros reacts to
// measured zero performance; pessimistic FailureEvaluation stand-ins
// are lost measurements and must not let an infrastructure outage
// permanently stop the session (the stopped flag survives snapshots).
func TestPermanentFailuresDoNotTripStoppingRule(t *testing.T) {
	tp := testTopo()
	dead := newFlaky(AsBackend(testEval(tp)), 1000, nil) // every trial lost forever
	sess := NewSession(newTestBO(5), dead, SessionOptions{
		MaxSteps:       6,
		StopAfterZeros: 3,
		Retry:          RetryPolicy{MaxAttempts: 2},
	})
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("lost measurements must not trip the zeros rule: ran %d of 6", len(res.Records))
	}
	if sess.Done() != true {
		t.Fatal("budget exhausted, session should be done")
	}
	// Genuine measured zeros (placement failures) still trip it: a
	// cluster too small for any config stops a PLA-style session early.
	small := storm.NewFluidSim(tp, tinySpec(), storm.SinkTuples, 1)
	small.Noise = storm.NoNoise()
	plaSess := NewSession(NewPLA(tp, storm.DefaultSyntheticConfig(tp, 1)), AsBackend(small), SessionOptions{
		MaxSteps:       60,
		StopAfterZeros: 3,
	})
	plaRes, err := plaSess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(plaRes.Records) >= 60 {
		t.Fatalf("measured zeros must still stop the session, ran %d", len(plaRes.Records))
	}
}

// TestCancellationMidRetryKeepsTrialPending: cancelling the session
// during a retry backoff must not fabricate a pessimistic record — the
// trial stays pending (attempt count preserved) for a snapshot/resume.
func TestCancellationMidRetryKeepsTrialPending(t *testing.T) {
	tp := testTopo()
	dead := newFlaky(AsBackend(testEval(tp)), 1000, nil)
	ctx, cancel := context.WithCancel(context.Background())
	obs := ObserverFunc(func(e Event) {
		if _, ok := e.(TrialRetried); ok {
			cancel() // mid-retry: the backoff select sees the cancellation
		}
	})
	sess := NewSession(newTestBO(5), dead, SessionOptions{
		MaxSteps: 8,
		Retry:    RetryPolicy{MaxAttempts: 10, Backoff: time.Minute},
		Observer: obs,
	})
	start := time.Now()
	res, err := sess.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff must not be slept out", d)
	}
	if len(res.Records) != 0 {
		t.Fatalf("cancelled retry produced %d records, want none", len(res.Records))
	}
	pend := sess.Pending()
	if len(pend) != 1 {
		t.Fatalf("pending = %d trials, want the retrying one", len(pend))
	}
	if pend[0].Attempt != 1 {
		t.Fatalf("pending attempt = %d, want 1 started attempt", pend[0].Attempt)
	}
}

// TestSnapshotResumeMidRetry: a snapshot taken while a trial is in the
// retrying state carries its consumed attempts; the resumed session
// re-dispatches it with the remaining budget and — because the retry
// re-uses the trial's RunIndex — completes bit-identically to a run
// that never failed.
func TestSnapshotResumeMidRetry(t *testing.T) {
	tp := testTopo()
	full := Tune(testEval(tp), newTestBO(7), 10, 0, 0)

	// First process: trial 4's measurement is lost; cancel during the
	// retry backoff, snapshot, and "restart".
	flaky := newFlaky(AsBackend(testEval(tp)), 1000, func(tr Trial) bool { return tr.ID == 4 })
	ctx, cancel := context.WithCancel(context.Background())
	obs := ObserverFunc(func(e Event) {
		if _, ok := e.(TrialRetried); ok {
			cancel()
		}
	})
	sess := NewSession(newTestBO(7), flaky, SessionOptions{
		MaxSteps: 10,
		Retry:    RetryPolicy{MaxAttempts: 3, Backoff: time.Minute},
		Observer: obs,
	})
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := sess.Snapshot()
	if len(st.Pending) != 1 || st.Pending[0].ID != 4 || st.Pending[0].Attempt != 1 {
		t.Fatalf("snapshot pending = %+v, want trial 4 with 1 consumed attempt", st.Pending)
	}
	if st.Retry.MaxAttempts != 3 {
		t.Fatalf("snapshot lost the retry policy: %+v", st.Retry)
	}

	// Second process: the cluster recovered. The carried trial must be
	// re-dispatched first, with its attempt budget continuing at 2.
	var attempts []int
	probe := backendFunc(func(ctx context.Context, tr Trial) (storm.Result, error) {
		if tr.ID == 4 {
			attempts = append(attempts, tr.Attempt)
		}
		return AsBackend(testEval(tp)).Run(ctx, tr)
	})
	resumed, err := ResumeSession(st, newTestBO(7), probe, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, full.Records, got.Records)
	if len(attempts) != 1 || attempts[0] != 2 {
		t.Fatalf("resumed trial 4 ran attempts %v, want the single attempt 2", attempts)
	}
}

// TestInterruptedAttemptBurnsNoRetryBudget: cancelling a session while
// an attempt is in flight (no failure) must not consume retry budget —
// repeated pause/resume cycles would otherwise drain it to zero.
func TestInterruptedAttemptBurnsNoRetryBudget(t *testing.T) {
	tp := testTopo()
	ctx, cancel := context.WithCancel(context.Background())
	hanging := backendFunc(func(runCtx context.Context, tr Trial) (storm.Result, error) {
		cancel() // the session is cancelled while this attempt runs
		<-runCtx.Done()
		return storm.Result{}, runCtx.Err()
	})
	sess := NewSession(newTestBO(5), hanging, SessionOptions{
		MaxSteps: 4,
		Retry:    RetryPolicy{MaxAttempts: 2},
	})
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := sess.Snapshot()
	if len(st.Pending) != 1 || st.Pending[0].Attempt != 0 {
		t.Fatalf("snapshot pending = %+v; an interrupted attempt must consume no budget", st.Pending)
	}

	// Resume: the trial still has its full two attempts — one transient
	// failure must be retried, not recorded as permanent.
	flaky := newFlaky(AsBackend(testEval(tp)), 1, nil)
	resumed, err := ResumeSession(st, newTestBO(5), flaky, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Result.Failure == storm.FailureEvaluation {
			t.Fatalf("transient failure after resume recorded as permanent: %+v", r.Result)
		}
	}
}

// backendFunc adapts a function to Backend for test probes.
type backendFunc func(ctx context.Context, tr Trial) (storm.Result, error)

func (f backendFunc) Run(ctx context.Context, tr Trial) (storm.Result, error) { return f(ctx, tr) }

// TestTrialTimeoutRetriesThenFails: a backend that blocks past the
// per-trial deadline is treated as a lost measurement — retried, then
// failed permanently — while the session keeps its own context.
func TestTrialTimeoutRetriesThenFails(t *testing.T) {
	tp := testTopo()
	slow := backendFunc(func(ctx context.Context, tr Trial) (storm.Result, error) {
		if tr.ID == 2 {
			<-ctx.Done() // blocks until the trial deadline
			return storm.Result{}, ctx.Err()
		}
		return AsBackend(testEval(tp)).Run(ctx, tr)
	})
	counter := &eventCounter{}
	sess := NewSession(newTestBO(3), slow, SessionOptions{
		MaxSteps:     4,
		Retry:        RetryPolicy{MaxAttempts: 2},
		TrialTimeout: 20 * time.Millisecond,
		Observer:     counter,
	})
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("ran %d records, want 4", len(res.Records))
	}
	rec := res.Records[1]
	if !rec.Result.Failed || rec.Result.Failure != storm.FailureEvaluation {
		t.Fatalf("timed-out trial should fail as evaluation: %+v", rec.Result)
	}
	if counter.permanent != 1 || counter.retried != 1 {
		t.Fatalf("events: permanent=%d retried=%d, want 1/1", counter.permanent, counter.retried)
	}
}

// TestRunBatchRetriesConcurrently: the barrier driver applies the retry
// policy per trial without losing determinism of the record set.
func TestRunBatchRetriesConcurrently(t *testing.T) {
	tp := testTopo()
	want := TuneBatch(testEval(tp), newTestBO(6), 9, 3, 0, 0)

	flaky := newFlaky(AsBackend(testEval(tp)), 1, nil)
	sess := NewSession(newTestBO(6), flaky, SessionOptions{
		MaxSteps: 9,
		Retry:    RetryPolicy{MaxAttempts: 2},
	})
	got, err := sess.RunBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, want.Records, got.Records)
}

// TestPoolBackendDistributes: the pool borrows one member per in-flight
// trial, so concurrent drivers use every worker without doubling up on
// one.
func TestPoolBackendDistributes(t *testing.T) {
	tp := testTopo()
	var calls [2]atomic.Int32
	member := func(i int) Backend {
		return backendFunc(func(ctx context.Context, tr Trial) (storm.Result, error) {
			calls[i].Add(1)
			time.Sleep(time.Millisecond)
			return AsBackend(testEval(tp)).Run(ctx, tr)
		})
	}
	pool, err := NewPoolBackend(member(0), member(1))
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(newTestBO(4), pool, SessionOptions{MaxSteps: 8})
	res, err := sess.RunAsync(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 8 {
		t.Fatalf("ran %d records, want 8", len(res.Records))
	}
	total := calls[0].Load() + calls[1].Load()
	if total != 8 {
		t.Fatalf("pool dispatched %d runs, want 8", total)
	}
	if calls[0].Load() == 0 || calls[1].Load() == 0 {
		t.Fatalf("pool left a worker idle: %d/%d", calls[0].Load(), calls[1].Load())
	}
}

// TestRetryPolicyDelay pins the exponential backoff schedule.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 0},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{4, 300 * time.Millisecond}, // capped
		{5, 300 * time.Millisecond},
	} {
		if got := p.delay(tc.attempt); got != tc.want {
			t.Fatalf("delay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	if (RetryPolicy{}).maxAttempts() != 1 {
		t.Fatal("zero policy must mean exactly one attempt")
	}
}
