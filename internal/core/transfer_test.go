package core

import (
	"reflect"
	"testing"

	"stormtune/internal/archive"
	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// archiveDonor runs a cold tuning pass and archives it under key,
// returning the pass result.
func archiveDonor(t *testing.T, store archive.Store, key string, seed int64, steps int) TuneResult {
	t.Helper()
	tp := testTopo()
	f := testEval(tp)
	res := Tune(f, newTestBO(seed), steps, 0, 0)
	rec, err := NewArchiveRecorder(store, SessionMetaFor(key, tp, cluster.Small(), "bo", Hints, seed))
	if err != nil {
		t.Fatal(err)
	}
	rec.Backfill(res.Records)
	if err := rec.Seal(nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArchiveRecorderObservesAndSeals(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	store := archive.NewMem()
	meta := SessionMetaFor("live-1", tp, cluster.Small(), "bo", Hints, 5)
	rec, err := NewArchiveRecorder(store, meta)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(newTestBO(5), AsBackend(f), SessionOptions{MaxSteps: 6, Observer: rec})
	res, err := sess.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Seal(sess.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get("live-1")
	if !ok || !got.Sealed || len(got.State) == 0 {
		t.Fatalf("sealed record missing: ok=%v sealed=%v state=%d bytes", ok, got.Sealed, len(got.State))
	}
	if len(got.Trials) != len(res.Records) {
		t.Fatalf("archived %d trials, session ran %d", len(got.Trials), len(res.Records))
	}
	for i, tr := range got.Trials {
		r := res.Records[i]
		if tr.Step != r.Step || tr.Config.Fingerprint() != r.Config.Fingerprint() {
			t.Fatalf("trial %d diverges from session record", i)
		}
	}
	// Backfilling the already-archived records must not double-append.
	rec2, err := NewArchiveRecorder(store, meta)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Backfill(res.Records)
	if again, _ := store.Get("live-1"); len(again.Trials) != len(got.Trials) {
		t.Fatalf("backfill after resume double-appended: %d -> %d", len(got.Trials), len(again.Trials))
	}
}

func TestComputeTransferWarmStartsDeterministic(t *testing.T) {
	store := archive.NewMem()
	donor := archiveDonor(t, store, "donor-1", 21, 12)
	donorBest, _ := donor.Best()

	tp := testTopo()
	meta := SessionMetaFor("self-1", tp, cluster.Small(), "bo", Hints, 22)
	build := func() *BOStrategy {
		o := fastBOOpts()
		o.Seed = 22
		return NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), o)
	}
	s := build()
	seed := ComputeTransfer(s, store, meta, WarmStartOptions{Enabled: true, Prior: true})
	if seed == nil {
		t.Fatal("exact-fingerprint donor must produce a transfer seed")
	}
	if !seed.Exact || seed.Donor != "donor-1" || seed.Similarity != 1 {
		t.Fatalf("seed identity = %+v", seed)
	}
	if len(seed.Points) == 0 || len(seed.Points) > s.opt.Opts.InitialDesign {
		t.Fatalf("warm points = %d, design = %d", len(seed.Points), s.opt.Opts.InitialDesign)
	}
	if want := s.Encode(donorBest.Config); !reflect.DeepEqual(seed.Points[0], want) {
		t.Fatalf("first warm point should be the donor incumbent: %v vs %v", seed.Points[0], want)
	}
	if len(seed.PriorU) == 0 || len(seed.PriorU) != len(seed.PriorZ) || len(seed.PriorU) != len(seed.PriorW) {
		t.Fatalf("prior training set inconsistent: %d/%d/%d", len(seed.PriorU), len(seed.PriorZ), len(seed.PriorW))
	}

	// Bit-identical determinism: the same seed applied to two freshly
	// built strategies replays the identical warm-started run.
	f := testEval(tp)
	run := func() TuneResult {
		s := build()
		s.ApplyTransfer(seed)
		if s.opt.Opts.PriorMean == nil {
			t.Fatal("ApplyTransfer should install the prior mean")
		}
		return Tune(f, s, 10, 0, 0)
	}
	sameRecords(t, run().Records, run().Records)
}

// TestWarmStartHalvesTrialsToIncumbent pins the ISSUE acceptance bound:
// on a same-fingerprint re-tune, the warm-started session reaches the
// cold run's final incumbent within half the cold run's trials (the
// donor incumbent is re-proposed first, so one trial suffices on the
// noise-free simulator).
func TestWarmStartHalvesTrialsToIncumbent(t *testing.T) {
	store := archive.NewMem()
	cold := archiveDonor(t, store, "cold-run", 31, 14)
	coldBest, ok := cold.Best()
	if !ok {
		t.Fatal("cold run found no incumbent")
	}

	tp := testTopo()
	f := testEval(tp)
	o := fastBOOpts()
	o.Seed = 32
	warmStrat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), o)
	seed := ComputeTransfer(warmStrat, store, SessionMetaFor("warm-run", tp, cluster.Small(), "bo", Hints, 32), WarmStartOptions{Enabled: true})
	if seed == nil {
		t.Fatal("same-fingerprint donor must warm-start")
	}
	warmStrat.ApplyTransfer(seed)
	warm := Tune(f, warmStrat, 7, 0, 0)
	reached := -1
	for _, r := range warm.Records {
		if !r.Result.Failed && r.Result.Throughput >= coldBest.Result.Throughput {
			reached = r.Step
			break
		}
	}
	if reached < 0 || reached > 7 {
		wb, _ := warm.Best()
		t.Fatalf("warm run did not reach cold incumbent %.1f within half the trials (best %.1f)",
			coldBest.Result.Throughput, wb.Result.Throughput)
	}
}

func TestNegativeTransferGuard(t *testing.T) {
	store := archive.NewMem()
	archiveDonor(t, store, "donor-1", 41, 10)

	// A deep chain shares nothing structural with the diamond donor:
	// similarity falls below the guard and transfer must not engage.
	nodes := []topo.Node{{Name: "s0", Kind: topo.Spout, TimeUnits: 5, Selectivity: 1, TupleBytes: 50}}
	var edges []topo.Edge
	for i := 1; i < 12; i++ {
		nodes = append(nodes, topo.Node{Name: string(rune('a' + i)), Kind: topo.Bolt, TimeUnits: 5, Selectivity: 1, TupleBytes: 50})
		edges = append(edges, topo.Edge{From: i - 1, To: i})
	}
	chain := topo.MustNew("chain12", nodes, edges)
	meta := SessionMetaFor("chain-run", chain, cluster.Small(), "bo", Hints, 1)

	donorMeta := SessionMetaFor("x", testTopo(), cluster.Small(), "bo", Hints, 1)
	if sim := archive.Similarity(meta.Features, donorMeta.Features); sim >= 0.35 {
		t.Fatalf("test premise broken: similarity %.3f not below guard", sim)
	}

	o := fastBOOpts()
	o.Seed = 42
	s := NewBO(chain, cluster.Small(), storm.DefaultSyntheticConfig(chain, 1), o)
	if seed := ComputeTransfer(s, store, meta, WarmStartOptions{Enabled: true, Prior: true}); seed != nil {
		t.Fatalf("dissimilar topology must not transfer, got donor %q sim %.3f", seed.Donor, seed.Similarity)
	}
}

func TestComputeTransferSkipsOwnKeyAndOtherParamSets(t *testing.T) {
	store := archive.NewMem()
	res := archiveDonor(t, store, "self-1", 51, 8)

	tp := testTopo()
	meta := SessionMetaFor("self-1", tp, cluster.Small(), "bo", Hints, 51)
	o := fastBOOpts()
	o.Seed = 51
	s := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), o)
	if seed := ComputeTransfer(s, store, meta, WarmStartOptions{Enabled: true}); seed != nil {
		t.Fatalf("a session must not be its own donor, got %q", seed.Donor)
	}

	// A donor tuned over a different parameter set lives in a different
	// space and must be skipped even on an exact fingerprint match.
	rec, err := NewArchiveRecorder(store, SessionMetaFor("batchcc-1", tp, cluster.Small(), "bo.bs-bp-cc", BatchCC, 7))
	if err != nil {
		t.Fatal(err)
	}
	rec.Backfill(res.Records)
	meta2 := SessionMetaFor("hints-2", tp, cluster.Small(), "bo", Hints, 52)
	seed := ComputeTransfer(s, store, meta2, WarmStartOptions{Enabled: true})
	if seed == nil || seed.Donor != "self-1" {
		t.Fatalf("expected the Hints donor, got %+v", seed)
	}
}

// TestFleetIncumbentSharing pins the cross-member mechanism: member
// A's NewBest re-ranks member B's warm-start pool — B's optimizer
// receives A's incumbent as a shared seed and proposes it next.
func TestFleetIncumbentSharing(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	mk := func(seed int64) *Session {
		o := fastBOOpts()
		o.Seed = seed
		return NewSession(NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), o),
			AsBackend(f), SessionOptions{MaxSteps: 12})
	}
	a, b := mk(61), mk(62)
	fl, err := NewFleet(FleetOptions{Slots: 2, ShareIncumbents: true},
		FleetMember{Name: "A", Session: a}, FleetMember{Name: "B", Session: b})
	if err != nil {
		t.Fatal(err)
	}

	// Drive member A by hand to a successful trial, then fire the
	// report-boundary hook the scheduler loop would fire.
	ctx := t.Context()
	succeeded := false
	for i := 0; i < 8 && !succeeded; i++ {
		trials, err := a.Propose(ctx, 1)
		if err != nil || len(trials) == 0 {
			t.Fatalf("propose: %v (%d trials)", err, len(trials))
		}
		resA := f.Run(trials[0].Config, trials[0].RunIndex)
		if err := a.Report(trials[0], resA); err != nil {
			t.Fatal(err)
		}
		succeeded = !resA.Failed
	}
	if !succeeded {
		t.Fatal("no successful trial for member A")
	}
	fl.shareIncumbent(0)

	pool := fl.SharedPool("B")
	if len(pool) != 1 {
		t.Fatalf("B's pool should hold A's incumbent, got %d entries", len(pool))
	}
	var aBest storm.Config
	a.UpdateStrategy(func(st Strategy) { aBest, _ = st.(*BOStrategy).BestConfig() })
	if pool[0].Fingerprint() != aBest.Fingerprint() {
		t.Fatal("pool entry is not A's incumbent")
	}
	var wantU, gotU []float64
	b.UpdateStrategy(func(st Strategy) {
		bs := st.(*BOStrategy)
		if len(bs.opt.Opts.SharedSeeds) != 1 {
			t.Fatalf("B's optimizer holds %d shared seeds", len(bs.opt.Opts.SharedSeeds))
		}
		wantU = bs.Encode(aBest)
		gotU = bs.opt.Opts.SharedSeeds[0]
	})
	if !reflect.DeepEqual(gotU, wantU) {
		t.Fatalf("B's shared seed %v != encoded A incumbent %v", gotU, wantU)
	}
	// B's next proposal adopts the shared incumbent (it leads B's
	// unissued initial design).
	tb, err := b.Propose(ctx, 1)
	if err != nil || len(tb) == 0 {
		t.Fatalf("B propose: %v", err)
	}
	if tb[0].Config.Fingerprint() != aBest.Fingerprint() {
		t.Fatalf("B's next trial should be A's incumbent")
	}

	// A pool is ranked: when B later reports a better incumbent, A's
	// pool re-ranks with B first.
	if err := b.Report(tb[0], f.Run(tb[0].Config, tb[0].RunIndex)); err != nil {
		t.Fatal(err)
	}
	fl.shareIncumbent(1)
	if poolA := fl.SharedPool("A"); len(poolA) != 1 {
		t.Fatalf("A's pool should now hold B's incumbent, got %d", len(poolA))
	}
}

// TestFleetShareIncumbentsRuns smoke-tests a full concurrent fleet run
// with sharing enabled: no deadlock between the scheduler loop's
// UpdateStrategy calls and the drivers, and results for every member.
func TestFleetShareIncumbentsRuns(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	mk := func(seed int64) *Session {
		o := fastBOOpts()
		o.Seed = seed
		return NewSession(NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), o),
			AsBackend(f), SessionOptions{MaxSteps: 6})
	}
	fl, err := NewFleet(FleetOptions{Slots: 2, ShareIncumbents: true},
		FleetMember{Name: "A", Session: mk(71)}, FleetMember{Name: "B", Session: mk(72)})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B"} {
		res, ok := results[name]
		if !ok || len(res.Records) != 6 {
			t.Fatalf("member %s: ok=%v records=%d", name, ok, len(res.Records))
		}
	}
}
