package core

import (
	"math"
	"time"

	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// PLA is the paper's baseline: a naive parallel-linear-ascent optimizer
// that "sets the same parallelism hint on all spout/bolt nodes in the
// topology and increases them in parallel" (§V-A), one unit per step.
type PLA struct {
	Template storm.Config
	n        int
	step     int
}

// NewPLA builds the baseline over a topology; template supplies the
// non-parallelism parameters (batching, threads), which pla leaves
// untouched.
func NewPLA(t *topo.Topology, template storm.Config) *PLA {
	return &PLA{Template: template.Clone(), n: t.N()}
}

// Name implements Strategy.
func (p *PLA) Name() string { return "pla" }

// Next implements Strategy: uniform hints 1, 2, 3, …
func (p *PLA) Next() (storm.Config, bool) {
	p.step++
	cfg := p.Template.Clone()
	cfg.Hints = make([]int, p.n)
	for i := range cfg.Hints {
		cfg.Hints[i] = p.step
	}
	return cfg, true
}

// Observe implements Strategy (pla learns nothing).
func (p *PLA) Observe(storm.Config, storm.Result) {}

// DecisionTime implements Strategy; linear ascent decides instantly
// ("the pla and ipla times … lie all between 0 and 1 second").
func (p *PLA) DecisionTime() time.Duration { return 0 }

// IPLA is the informed variant: hints are the recursive base-parallelism
// weights (spout = 1, bolt = Σ parents) times a multiplier that
// increases linearly.
type IPLA struct {
	Template storm.Config
	weights  []float64
	step     int
}

// NewIPLA builds the informed baseline using the topology's base
// weights.
func NewIPLA(t *topo.Topology, template storm.Config) *IPLA {
	return &IPLA{Template: template.Clone(), weights: t.BaseWeights()}
}

// Name implements Strategy.
func (p *IPLA) Name() string { return "ipla" }

// Next implements Strategy: hint_b = round(weight_b × k) for k = 1, 2, …
func (p *IPLA) Next() (storm.Config, bool) {
	p.step++
	cfg := p.Template.Clone()
	cfg.Hints = ScaleWeights(p.weights, float64(p.step))
	return cfg, true
}

// Observe implements Strategy (ipla learns nothing).
func (p *IPLA) Observe(storm.Config, storm.Result) {}

// DecisionTime implements Strategy.
func (p *IPLA) DecisionTime() time.Duration { return 0 }

// ScaleWeights converts base weights times a multiplier into integer
// hints, flooring at one instance per node.
func ScaleWeights(weights []float64, k float64) []int {
	hints := make([]int, len(weights))
	for i, w := range weights {
		h := int(math.Round(w * k))
		if h < 1 {
			h = 1
		}
		hints[i] = h
	}
	return hints
}
