package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"stormtune/internal/storm"
)

// unreachableErr mimics a transport-level failure: the request never
// reached a server, so the pool counts it toward eviction.
type unreachableErr struct{}

func (unreachableErr) Error() string     { return "dial tcp: connection refused" }
func (unreachableErr) Unreachable() bool { return true }

// crashyWorker is a pool member whose process can be "killed" and
// "restarted" by flipping down; it answers health probes accordingly.
type crashyWorker struct {
	down atomic.Bool
	runs atomic.Int64
}

func (w *crashyWorker) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	if w.down.Load() {
		return storm.Result{}, unreachableErr{}
	}
	w.runs.Add(1)
	return storm.Result{Throughput: 100}, nil
}

func (w *crashyWorker) CheckHealth(ctx context.Context) error {
	if w.down.Load() {
		return unreachableErr{}
	}
	return nil
}

// TestPoolEvictsAndReadmitsUnreachableMember: consecutive transport
// failures evict a member, an acquire with nothing healthy re-probes it
// synchronously (failing with AllMembersDownError while it stays down),
// and a successful probe readmits it.
func TestPoolEvictsAndReadmitsUnreachableMember(t *testing.T) {
	w := &crashyWorker{}
	w.down.Store(true)
	pool, err := NewPoolBackendWith(PoolOptions{UnhealthyAfter: 2}, w)
	if err != nil {
		t.Fatal(err)
	}

	// Two transport failures reach UnhealthyAfter and evict the member.
	for i := 0; i < 2; i++ {
		if _, err := pool.Run(context.Background(), Trial{ID: i}); !errors.As(err, &unreachableErr{}) {
			t.Fatalf("run %d err = %v, want the transport failure", i, err)
		}
	}
	st := pool.Stats()
	if len(st) != 1 || st[0].Healthy || st[0].Errors != 2 {
		t.Fatalf("after eviction Stats = %+v, want unhealthy with 2 errors", st)
	}

	// Still down: acquire finds nothing healthy, re-probes, and reports
	// every serving member down — a retryable condition, not permanent.
	_, err = pool.Run(context.Background(), Trial{ID: 2})
	var allDown *AllMembersDownError
	if !errors.As(err, &allDown) {
		t.Fatalf("err = %v, want AllMembersDownError", err)
	}
	if p, ok := err.(interface{ Permanent() bool }); ok && p.Permanent() {
		t.Fatal("AllMembersDownError must stay retryable: workers come back")
	}

	// Worker restarts: the next acquire's re-probe readmits it and the
	// trial runs.
	w.down.Store(false)
	if _, err := pool.Run(context.Background(), Trial{ID: 3}); err != nil {
		t.Fatalf("run after restart: %v", err)
	}
	st = pool.Stats()
	if !st[0].Healthy || st[0].Completed != 1 {
		t.Fatalf("after readmission Stats = %+v, want healthy with 1 completion", st)
	}
	if w.runs.Load() != 1 {
		t.Fatalf("worker ran %d evaluations, want 1", w.runs.Load())
	}
}

// routedWorker serves a fixed fingerprint set.
type routedWorker struct {
	fps map[string]bool
}

func (w *routedWorker) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	return storm.Result{Throughput: 100}, nil
}

func (w *routedWorker) Serves(fp string) bool { return w.fps[fp] }

// TestPoolUnroutableFingerprintIsPermanent: a fingerprint no member
// serves fails immediately and permanently — the registry view will not
// change by retrying.
func TestPoolUnroutableFingerprintIsPermanent(t *testing.T) {
	pool, err := NewPoolBackend(&routedWorker{fps: map[string]bool{"aaaa": true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Run(context.Background(), Trial{Fingerprint: "aaaa"}); err != nil {
		t.Fatalf("routable trial failed: %v", err)
	}
	_, err = pool.Run(context.Background(), Trial{Fingerprint: "dead"})
	var nsm *NoServingMemberError
	if !errors.As(err, &nsm) {
		t.Fatalf("err = %v, want NoServingMemberError", err)
	}
	if !nsm.Permanent() {
		t.Fatal("NoServingMemberError must be permanent")
	}
	if nsm.Fingerprint != "dead" || len(nsm.Members) != 1 {
		t.Fatalf("error lacks diagnostics: %+v", nsm)
	}
}
