package core

import (
	"testing"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

func testTopo() *topo.Topology {
	return topo.MustNew("t",
		[]topo.Node{
			{Name: "s", Kind: topo.Spout, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "a", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "b", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
			{Name: "c", Kind: topo.Bolt, TimeUnits: 20, Selectivity: 1, TupleBytes: 100},
		},
		[]topo.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}},
	)
}

func testEval(t *topo.Topology) *storm.FluidSim {
	spec := cluster.Spec{Machines: 8, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 16, ThrashTasksPerCore: 4}
	f := storm.NewFluidSim(t, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	return f
}

func fastBOOpts() BOOptions {
	return BOOptions{Opt: bo.Options{Candidates: 120, HyperSamples: 2, LocalSearchIters: 4}}
}

func TestPLAUniformAscent(t *testing.T) {
	tp := testTopo()
	p := NewPLA(tp, storm.DefaultSyntheticConfig(tp, 1))
	for step := 1; step <= 3; step++ {
		cfg, ok := p.Next()
		if !ok {
			t.Fatal("pla exhausted early")
		}
		for i, h := range cfg.Hints {
			if h != step {
				t.Fatalf("step %d hint[%d] = %d", step, i, h)
			}
		}
	}
	if p.DecisionTime() != 0 {
		t.Fatal("pla decision time should be ~0")
	}
}

func TestIPLAWeightedAscent(t *testing.T) {
	tp := testTopo()
	p := NewIPLA(tp, storm.DefaultSyntheticConfig(tp, 1))
	cfg, _ := p.Next()
	// Weights: s=1, a=1, b=1, c=2 → k=1 hints {1,1,1,2}.
	want := []int{1, 1, 1, 2}
	for i := range want {
		if cfg.Hints[i] != want[i] {
			t.Fatalf("k=1 hints = %v, want %v", cfg.Hints, want)
		}
	}
	cfg, _ = p.Next()
	if cfg.Hints[3] != 4 {
		t.Fatalf("k=2 deep hint = %d, want 4", cfg.Hints[3])
	}
}

func TestScaleWeightsFloorsAtOne(t *testing.T) {
	h := ScaleWeights([]float64{0.2, 1, 3}, 1)
	if h[0] != 1 || h[1] != 1 || h[2] != 3 {
		t.Fatalf("scaled = %v", h)
	}
}

func TestTuneStopsAfterConsecutiveZeros(t *testing.T) {
	tp := testTopo()
	spec := cluster.Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 4, ThrashTasksPerCore: 4}
	f := storm.NewFluidSim(tp, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	// 4 nodes × hint k tasks; capacity 8 → fails from k=3 on.
	res := Tune(f, NewPLA(tp, storm.DefaultSyntheticConfig(tp, 1)), 60, 3, 0)
	if len(res.Records) >= 60 {
		t.Fatalf("pla should stop early, ran %d steps", len(res.Records))
	}
	// Last three records are failures.
	n := len(res.Records)
	for _, r := range res.Records[n-3:] {
		if !r.Result.Failed {
			t.Fatalf("expected trailing failures, got %+v", r.Result)
		}
	}
	if best, ok := res.Best(); !ok || best.Result.Throughput <= 0 {
		t.Fatalf("best = %+v, ok=%v", best, ok)
	}
}

func TestTuneRecordsBestStep(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	res := Tune(f, NewPLA(tp, storm.DefaultSyntheticConfig(tp, 1)), 20, 3, 0)
	if res.BestStep <= 0 || res.BestStep > 20 {
		t.Fatalf("best step = %d", res.BestStep)
	}
	trace := res.BestSoFar()
	if len(trace) != len(res.Records) {
		t.Fatalf("trace length mismatch")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1] {
			t.Fatalf("best-so-far must be monotone: %v", trace)
		}
	}
}

func TestBOStrategyImprovesOverInitial(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	strat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts())
	res := Tune(f, strat, 25, 0, 0)
	if len(res.Records) != 25 {
		t.Fatalf("ran %d steps", len(res.Records))
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no successful run")
	}
	first := res.Records[0].Result.Throughput
	if best.Result.Throughput < first {
		t.Fatalf("optimization should not end below its start: %v vs %v", best.Result.Throughput, first)
	}
	if _, ok := strat.BestConfig(); !ok {
		t.Fatal("BestConfig unavailable after observations")
	}
}

func TestBOStrategyDecodesValidConfigs(t *testing.T) {
	tp := testTopo()
	spec := cluster.Small()
	for _, set := range []ParamSet{Hints, HintsBatch, BatchCC, InformedHints} {
		o := fastBOOpts()
		o.Set = set
		strat := NewBO(tp, spec, storm.DefaultSyntheticConfig(tp, 2), o)
		for i := 0; i < 6; i++ {
			cfg, ok := strat.Next()
			if !ok {
				t.Fatalf("set %d exhausted", set)
			}
			if err := cfg.Validate(tp); err != nil {
				t.Fatalf("set %d produced invalid config: %v", set, err)
			}
			strat.Observe(cfg, storm.Result{Throughput: float64(i)})
		}
	}
}

func TestBOStrategyBatchCCKeepsHints(t *testing.T) {
	tp := testTopo()
	o := fastBOOpts()
	o.Set = BatchCC
	template := storm.DefaultSyntheticConfig(tp, 11)
	strat := NewBO(tp, cluster.Small(), template, o)
	cfg, _ := strat.Next()
	for i, h := range cfg.Hints {
		if h != 11 {
			t.Fatalf("bs-bp-cc must keep template hints, hint[%d]=%d", i, h)
		}
	}
	if cfg.BatchSize == template.BatchSize && cfg.BatchParallelism == template.BatchParallelism &&
		cfg.WorkerThreads == template.WorkerThreads {
		// Extremely unlikely unless decoding is broken; the space spans
		// orders of magnitude.
		t.Fatal("bs-bp-cc did not vary any searched parameter")
	}
}

func TestTuneBatchRespectsBudgetAndSteps(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	strat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts())
	res := TuneBatch(f, strat, 10, 4, 0, 0)
	if len(res.Records) != 10 {
		t.Fatalf("ran %d steps, want exactly the 10-step budget", len(res.Records))
	}
	for i, r := range res.Records {
		if r.Step != i+1 {
			t.Fatalf("record %d has step %d", i, r.Step)
		}
	}
	if strat.opt.N() != 10 {
		t.Fatalf("optimizer saw %d observations, want 10", strat.opt.N())
	}
}

func TestTuneBatchDeterministic(t *testing.T) {
	run := func() TuneResult {
		tp := testTopo()
		f := testEval(tp)
		strat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts())
		return TuneBatch(f, strat, 12, 3, 0, 0)
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Result.Throughput != b.Records[i].Result.Throughput {
			t.Fatalf("step %d throughput differs: %v vs %v", i+1,
				a.Records[i].Result.Throughput, b.Records[i].Result.Throughput)
		}
	}
}

// TestTuneBatchRegretParity checks the batch engine gives up at most
// 10% of the sequential optimizer's best objective for the same budget.
func TestTuneBatchRegretParity(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	budget := 24
	seq := Tune(f, NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts()), budget, 0, 0)
	seqBest, ok := seq.Best()
	if !ok {
		t.Fatal("sequential run found nothing")
	}
	for _, q := range []int{2, 4} {
		strat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts())
		res := TuneBatch(f, strat, budget, q, 0, 0)
		best, ok := res.Best()
		if !ok {
			t.Fatalf("q=%d found nothing", q)
		}
		if best.Result.Throughput < seqBest.Result.Throughput*0.9 {
			t.Fatalf("q=%d best %v below 90%% of sequential %v",
				q, best.Result.Throughput, seqBest.Result.Throughput)
		}
	}
}

func TestTuneBatchStopsAfterZeros(t *testing.T) {
	tp := testTopo()
	spec := cluster.Spec{Machines: 2, CoresPerMachine: 4, CoreMillisPerSec: 1000,
		NICBytesPerSec: 128e6, TaskSlotsPerMachine: 4, ThrashTasksPerCore: 4}
	f := storm.NewFluidSim(tp, spec, storm.SinkTuples, 1)
	f.Noise = storm.NoNoise()
	// PLA has no NextBatch; TuneBatch assembles batches via Next and
	// must still honor the zero-performance stopping rule.
	res := TuneBatch(f, NewPLA(tp, storm.DefaultSyntheticConfig(tp, 1)), 60, 2, 3, 0)
	if len(res.Records) >= 60 {
		t.Fatalf("batch pla should stop early, ran %d steps", len(res.Records))
	}
}

func TestBOStrategyObserveOutOfOrder(t *testing.T) {
	tp := testTopo()
	strat := NewBO(tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), fastBOOpts())
	cfgs, ok := strat.NextBatch(3)
	if !ok || len(cfgs) != 3 {
		t.Fatalf("NextBatch = %d, %v", len(cfgs), ok)
	}
	// Feed results back in reverse: every pending suggestion must be
	// retired against its own configuration.
	for i := len(cfgs) - 1; i >= 0; i-- {
		strat.Observe(cfgs[i], storm.Result{Throughput: float64(100 + i)})
	}
	if len(strat.pending) != 0 {
		t.Fatalf("pending not drained: %d left", len(strat.pending))
	}
	if strat.opt.N() != 3 {
		t.Fatalf("optimizer saw %d observations", strat.opt.N())
	}
}

func TestProtocolConcurrencyShape(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	p := Protocol{Steps: 8, Passes: 2, BestReruns: 4, Seed: 1, Concurrency: 2}
	factory, err := MakeFactory("bo", tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), 1, fastBOOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := RunProtocol(AsBackend(f), factory, p)
	if len(out.Passes) != 2 {
		t.Fatalf("want 2 passes, got %d", len(out.Passes))
	}
	for _, pass := range out.Passes {
		if len(pass.Records) != 8 {
			t.Fatalf("concurrent pass ran %d steps, want 8", len(pass.Records))
		}
	}
	if out.Summary.N != 4 {
		t.Fatalf("summary over %d reruns, want 4", out.Summary.N)
	}
}

func TestRunProtocolShape(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	p := Protocol{Steps: 10, Passes: 2, BestReruns: 5, StopAfterZeros: 3, Seed: 1}
	factory, err := MakeFactory("pla", tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), 1, fastBOOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := RunProtocol(AsBackend(f), factory, p)
	if out.Strategy != "pla" {
		t.Fatalf("strategy = %s", out.Strategy)
	}
	if len(out.Passes) != 2 || len(out.StepsToBest) != 2 {
		t.Fatalf("want 2 passes, got %d", len(out.Passes))
	}
	if out.Summary.N != 5 {
		t.Fatalf("summary over %d reruns, want 5", out.Summary.N)
	}
	if out.Summary.Min > out.Summary.Mean || out.Summary.Mean > out.Summary.Max {
		t.Fatalf("summary ordering broken: %+v", out.Summary)
	}
	if out.BestConfig.Hints == nil {
		t.Fatal("no best config")
	}
}

func TestMakeFactoryUnknown(t *testing.T) {
	tp := testTopo()
	if _, err := MakeFactory("sgd", tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), 1, BOOptions{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestMakeFactoryAllStrategies(t *testing.T) {
	tp := testTopo()
	for _, name := range StrategySet {
		factory, err := MakeFactory(name, tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), 1, fastBOOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := factory(0)
		cfg, ok := s.Next()
		if !ok {
			t.Fatalf("%s: no first config", name)
		}
		if err := cfg.Validate(tp); err != nil {
			t.Fatalf("%s: invalid first config: %v", name, err)
		}
	}
}

func TestBOPassesUseDifferentSeeds(t *testing.T) {
	tp := testTopo()
	factory, err := MakeFactory("bo", tp, cluster.Small(), storm.DefaultSyntheticConfig(tp, 1), 1, fastBOOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := factory(0)
	b := factory(1)
	ca, _ := a.Next()
	cb, _ := b.Next()
	same := true
	for i := range ca.Hints {
		if ca.Hints[i] != cb.Hints[i] {
			same = false
		}
	}
	if same && ca.MaxTasks == cb.MaxTasks {
		t.Fatal("different passes should explore differently")
	}
}
