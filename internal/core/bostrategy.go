package core

import (
	"math"
	"time"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// ParamSet selects which Table I parameters the Bayesian optimizer
// searches, mirroring the experiment groups of §V-D.
type ParamSet int

// Parameter sets.
const (
	// Hints searches the per-node parallelism hints plus max-tasks
	// (the §V-A setup).
	Hints ParamSet = iota
	// HintsBatch adds batch size and batch parallelism ("h bs bp").
	HintsBatch
	// BatchCC fixes the hints and searches batch size, batch
	// parallelism and the concurrency parameters ("bs bp cc").
	BatchCC
	// InformedHints searches a float multiplier per node applied to the
	// base-parallelism weights (the ibo setup), plus max-tasks.
	InformedHints
)

// BOOptions configure a BO strategy.
type BOOptions struct {
	// Set selects the parameter group (default Hints).
	Set ParamSet
	// HintMax bounds each per-node hint (default 64).
	HintMax int
	// MaxTasksMax bounds the max-tasks dimension (default: cluster task
	// slots).
	MaxTasksMax int
	// MultiplierMax bounds ibo's per-node weight multiplier (default 8).
	MultiplierMax float64
	// Seed drives the optimizer's randomness; two passes use different
	// seeds.
	Seed int64
	// Opt tunes the underlying optimizer; candidate/hyper sample counts
	// mainly trade decision time for quality.
	Opt bo.Options
}

// BOStrategy adapts the Spearmint-style optimizer to the Strategy
// interface: it owns the mapping between the unit-cube search space and
// storm.Config values.
type BOStrategy struct {
	name     string
	template storm.Config
	topology *topo.Topology
	weights  []float64
	set      ParamSet
	space    *bo.Space
	opt      *bo.Optimizer
	pending  []pendingTrial
	lastDur  time.Duration
	hintMax  int
}

// pendingTrial is a suggested-but-unmeasured configuration: the
// unit-cube point the optimizer proposed and the fingerprint of its
// decoded configuration, used to pair Observe calls with suggestions
// when a batch's results arrive out of order.
type pendingTrial struct {
	u   []float64
	key uint64
}

// NewBO builds a Bayesian-optimization strategy over the given
// parameter set.
func NewBO(t *topo.Topology, spec cluster.Spec, template storm.Config, opts BOOptions) *BOStrategy {
	if opts.HintMax <= 0 {
		opts.HintMax = 64
	}
	if opts.MaxTasksMax <= 0 {
		opts.MaxTasksMax = spec.TotalTaskSlots()
	}
	// The max-tasks dimension needs a non-degenerate range even on
	// clusters with fewer slots than the topology has nodes.
	if opts.MaxTasksMax <= t.N() {
		opts.MaxTasksMax = t.N() + 1
	}
	if opts.MultiplierMax <= 0 {
		opts.MultiplierMax = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	var dims []bo.Dim
	name := "bo"
	switch opts.Set {
	case Hints, HintsBatch:
		for _, n := range t.Nodes {
			dims = append(dims, bo.Dim{Name: "hint:" + n.Name, Kind: bo.Int, Min: 1, Max: float64(opts.HintMax)})
		}
		dims = append(dims, bo.Dim{Name: "max-tasks", Kind: bo.Int,
			Min: float64(t.N()), Max: float64(opts.MaxTasksMax)})
		if opts.Set == HintsBatch {
			dims = append(dims, batchDims()...)
			name = "bo.h-bs-bp"
		}
	case BatchCC:
		dims = append(dims, batchDims()...)
		dims = append(dims,
			bo.Dim{Name: "worker-threads", Kind: bo.Int, Min: 1, Max: 32},
			bo.Dim{Name: "receiver-threads", Kind: bo.Int, Min: 1, Max: 16},
			bo.Dim{Name: "ackers", Kind: bo.Int, Min: 1, Max: 320, Log: true},
		)
		name = "bo.bs-bp-cc"
	case InformedHints:
		for _, n := range t.Nodes {
			dims = append(dims, bo.Dim{Name: "mult:" + n.Name, Kind: bo.Float, Min: 0.25, Max: opts.MultiplierMax})
		}
		dims = append(dims, bo.Dim{Name: "max-tasks", Kind: bo.Int,
			Min: float64(t.N()), Max: float64(opts.MaxTasksMax)})
		name = "ibo"
	}
	space := bo.MustSpace(dims...)
	o := opts.Opt
	o.Seed = opts.Seed
	if len(o.SeedCandidates) == 0 {
		o.SeedCandidates = diagonalSeeds(opts.Set, len(dims), t.N())
	}
	return &BOStrategy{
		name:     name,
		template: template.Clone(),
		topology: t,
		weights:  t.BaseWeights(),
		set:      opts.Set,
		space:    space,
		opt:      bo.NewOptimizer(space, o),
		hintMax:  opts.HintMax,
	}
}

// diagonalSeeds builds baseline candidate points for hint-style spaces:
// uniform values across all hint dimensions at several levels crossed
// with several max-tasks levels — the configurations a practitioner
// (or the pla/ipla baselines) would try first. The optimizer only
// selects them when the surrogate predicts improvement.
func diagonalSeeds(set ParamSet, dims, nNodes int) [][]float64 {
	if set == BatchCC {
		// Batch-size × batch-parallelism sweep grid with mid-range
		// concurrency settings.
		var seeds [][]float64
		for _, bs := range []float64{0.2, 0.5, 0.8, 0.99} {
			for _, bp := range []float64{0.2, 0.5, 0.8, 0.99} {
				u := make([]float64, dims)
				u[0], u[1] = bs, bp
				for i := 2; i < dims; i++ {
					u[i] = 0.5
				}
				seeds = append(seeds, u)
			}
		}
		return seeds
	}
	batchLevels := []float64{0.5}
	if dims > nNodes+1 {
		batchLevels = []float64{0.3, 0.6, 0.9, 0.99}
	}
	var seeds [][]float64
	for _, level := range []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 0.95} {
		for _, mt := range []float64{0.15, 0.4, 0.7, 1.0} {
			for _, bl := range batchLevels {
				u := make([]float64, dims)
				for i := 0; i < nNodes; i++ {
					u[i] = level
				}
				u[nNodes] = mt
				for i := nNodes + 1; i < dims; i++ {
					u[i] = bl
				}
				seeds = append(seeds, u)
			}
		}
	}
	return seeds
}

func batchDims() []bo.Dim {
	return []bo.Dim{
		{Name: "batch-size", Kind: bo.Int, Min: 100, Max: 500000, Log: true},
		{Name: "batch-parallelism", Kind: bo.Int, Min: 1, Max: 64},
	}
}

// Name implements Strategy.
func (s *BOStrategy) Name() string { return s.name }

// Next implements Strategy.
func (s *BOStrategy) Next() (storm.Config, bool) {
	cfgs, ok := s.NextBatch(1)
	if !ok {
		return storm.Config{}, false
	}
	return cfgs[0], true
}

// NextBatch implements BatchStrategy: it asks the optimizer for q
// constant-liar suggestions that can be deployed concurrently.
func (s *BOStrategy) NextBatch(q int) ([]storm.Config, bool) {
	if q <= 0 {
		return nil, false
	}
	us := s.opt.SuggestBatch(q)
	s.lastDur = s.opt.LastStepDuration
	cfgs := make([]storm.Config, len(us))
	for i, u := range us {
		cfgs[i] = s.decode(u)
		s.pending = append(s.pending, pendingTrial{u: u, key: cfgs[i].Fingerprint()})
	}
	return cfgs, len(cfgs) > 0
}

// Observe implements Strategy; the objective is measured throughput
// (zero for failed runs, which teaches the GP to avoid the region).
// Results of a batch may arrive in any order: the configuration's
// fingerprint selects the matching pending suggestion, falling back to
// the oldest one.
func (s *BOStrategy) Observe(cfg storm.Config, res storm.Result) {
	if len(s.pending) == 0 {
		return
	}
	idx := 0
	key := cfg.Fingerprint()
	for i, p := range s.pending {
		if p.key == key {
			idx = i
			break
		}
	}
	u := s.pending[idx].u
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	y := res.Throughput
	if res.Failed {
		y = 0
	}
	s.opt.Observe(u, y)
}

// DecisionTime implements Strategy.
func (s *BOStrategy) DecisionTime() time.Duration { return s.lastDur }

// HyperState returns the optimizer's current hyperparameter posterior —
// the slice samples of its latest refit epoch — or nil before the first
// GP fit. Feed it to a later session through RetuneOptions.InitHypers
// (or bo.Options.InitHypers) to skip that session's cold slice-sampling
// burn.
func (s *BOStrategy) HyperState() *bo.HyperState { return s.opt.HyperState() }

// BestConfig returns the configuration of the incumbent.
func (s *BOStrategy) BestConfig() (storm.Config, bool) {
	u, _, ok := s.opt.Best()
	if !ok {
		return storm.Config{}, false
	}
	return s.decode(u), true
}

// Encode maps a concrete configuration back to the unit cube — the
// inverse of decode up to integer rounding. A retune session uses it
// to center its trust region on the running incumbent and to warm the
// optimizer with the previous session's measurements.
func (s *BOStrategy) Encode(cfg storm.Config) []float64 {
	n := s.topology.N()
	var vals []float64
	switch s.set {
	case Hints, HintsBatch:
		for i := 0; i < n; i++ {
			vals = append(vals, float64(cfg.Hints[i]))
		}
		vals = append(vals, float64(cfg.MaxTasks))
		if s.set == HintsBatch {
			vals = append(vals, float64(cfg.BatchSize), float64(cfg.BatchParallelism))
		}
	case BatchCC:
		vals = append(vals, float64(cfg.BatchSize), float64(cfg.BatchParallelism),
			float64(cfg.WorkerThreads), float64(cfg.ReceiverThreads), float64(cfg.Ackers))
	case InformedHints:
		for i := 0; i < n; i++ {
			w := s.weights[i]
			if w <= 0 {
				w = 1
			}
			vals = append(vals, float64(cfg.Hints[i])/w)
		}
		vals = append(vals, float64(cfg.MaxTasks))
	}
	return s.space.Encode(vals)
}

// WarmObservation is one (configuration, objective) pair used to warm
// a retune strategy with measurements from the session that produced
// the incumbent.
type WarmObservation struct {
	Config storm.Config `json:"config"`
	Y      float64      `json:"y"`
}

// RetuneOptions bound a conservative retune session's per-step
// movement in the unit cube (see bo.TrustRegion). All fields are
// serializable so a snapshot can reconstruct the exact region. Zero
// values select the defaults.
type RetuneOptions struct {
	// Radius is the initial trust-region half-width (default 0.1).
	Radius float64 `json:"radius,omitempty"`
	// RadiusMin/RadiusMax bound adaptation (defaults 0.02 / 0.5).
	RadiusMin float64 `json:"radiusMin,omitempty"`
	RadiusMax float64 `json:"radiusMax,omitempty"`
	// Grow/Shrink/GrowAfter set the Big/Small adaptation (defaults
	// 1.6 / 0.5 / 2).
	Grow      float64 `json:"grow,omitempty"`
	Shrink    float64 `json:"shrink,omitempty"`
	GrowAfter int     `json:"growAfter,omitempty"`
	// InitHypers seeds the retune optimizer's first hyperparameter
	// epoch with the incumbent session's posterior (see
	// BOStrategy.HyperState), so the episode skips the cold
	// slice-sampling burn and starts from length scales already
	// adapted to the topology's response surface. Nil samples cold.
	InitHypers *bo.HyperState `json:"initHypers,omitempty"`
}

func (ro RetuneOptions) radius() float64 {
	if ro.Radius <= 0 {
		return 0.1
	}
	return ro.Radius
}

// NewRetuneBO builds a conservative retune strategy: a BO strategy
// warm-started with the previous session's measurements and confined
// to a trust region centered on the incumbent. The warm observations
// are fed to the optimizer *before* the region attaches, so seeding
// does not walk the radius; the incumbent is observed last so it is
// the optimizer's Best when history and incumbent tie. The returned
// strategy enters the normal ask/tell loop — snapshot/resume, retry
// policy, Recorder and dashboard all work unchanged.
func NewRetuneBO(t *topo.Topology, spec cluster.Spec, template storm.Config, opts BOOptions,
	incumbent WarmObservation, history []WarmObservation, ro RetuneOptions) *BOStrategy {
	// The incumbent is re-proposed or improved upon, never re-seeded
	// from a cold Latin hypercube.
	opts.Opt.InitialDesign = 1
	opts.Opt.InitHypers = ro.InitHypers
	s := NewBO(t, spec, template, opts)
	s.name += ".retune"
	for _, w := range history {
		s.opt.Observe(s.Encode(w.Config), w.Y)
	}
	center := s.Encode(incumbent.Config)
	s.opt.Observe(center, incumbent.Y)
	tr := &bo.TrustRegion{
		Center: center, Radius: ro.radius(),
		RadiusMin: ro.RadiusMin, RadiusMax: ro.RadiusMax,
		Grow: ro.Grow, Shrink: ro.Shrink, GrowAfter: ro.GrowAfter,
	}
	tr.Baseline(incumbent.Y)
	s.opt.Opts.Trust = tr
	return s
}

// decode maps a unit-cube point to a concrete configuration.
func (s *BOStrategy) decode(u []float64) storm.Config {
	vals := s.space.Decode(u)
	cfg := s.template.Clone()
	n := s.topology.N()
	switch s.set {
	case Hints, HintsBatch:
		cfg.Hints = make([]int, n)
		for i := 0; i < n; i++ {
			cfg.Hints[i] = int(vals[i])
		}
		cfg.MaxTasks = int(vals[n])
		if s.set == HintsBatch {
			cfg.BatchSize = int(vals[n+1])
			cfg.BatchParallelism = int(vals[n+2])
		}
	case BatchCC:
		cfg.BatchSize = int(vals[0])
		cfg.BatchParallelism = int(vals[1])
		cfg.WorkerThreads = int(vals[2])
		cfg.ReceiverThreads = int(vals[3])
		cfg.Ackers = int(vals[4])
	case InformedHints:
		cfg.Hints = make([]int, n)
		for i := 0; i < n; i++ {
			h := int(math.Round(s.weights[i] * vals[i]))
			if h < 1 {
				h = 1
			}
			if h > s.hintMax*4 {
				h = s.hintMax * 4
			}
			cfg.Hints[i] = h
		}
		cfg.MaxTasks = int(vals[n])
	}
	return cfg
}
