// Package core implements the paper's contribution: automatic
// configuration of a distributed stream processor. It provides the
// four optimization strategies of §V (pla, ipla, bo, ibo), the
// parameter-set variants of §V-D (h, h+bs+bp, bs+bp+cc), and the
// experimental protocol (optimization passes, zero-performance early
// stopping, best-configuration re-runs).
package core

import (
	"context"
	"time"

	"stormtune/internal/storm"
)

// Strategy proposes configurations to evaluate, one per optimization
// step, and learns from the measured results.
type Strategy interface {
	// Name identifies the strategy ("pla", "bo", …).
	Name() string
	// Next returns the next configuration to measure; ok is false when
	// the strategy has nothing more to propose.
	Next() (cfg storm.Config, ok bool)
	// Observe feeds the measured result for a configuration returned by
	// Next back into the strategy.
	Observe(cfg storm.Config, res storm.Result)
	// DecisionTime reports how long the last Next call spent choosing
	// (the Figure 7 metric).
	DecisionTime() time.Duration
}

// BatchStrategy is a Strategy that can propose several configurations
// at once for concurrent trial deployments. Observe must accept the
// batch's results in any order.
type BatchStrategy interface {
	Strategy
	// NextBatch returns up to q configurations to measure concurrently;
	// ok is false when the strategy has nothing more to propose.
	NextBatch(q int) (cfgs []storm.Config, ok bool)
}

// RunRecord is one completed optimization step.
type RunRecord struct {
	Step     int
	Config   storm.Config
	Result   storm.Result
	Decision time.Duration
}

// TuneResult is one optimization pass.
type TuneResult struct {
	Strategy string
	Records  []RunRecord
	// BestStep is the 1-based step at which the best throughput was
	// first measured; 0 if no successful run.
	BestStep int
}

// Best returns the record with the highest throughput; ok is false if
// every run failed.
func (t TuneResult) Best() (RunRecord, bool) {
	bi := -1
	for i, r := range t.Records {
		if r.Result.Failed {
			continue
		}
		if bi < 0 || r.Result.Throughput > t.Records[bi].Result.Throughput {
			bi = i
		}
	}
	if bi < 0 {
		return RunRecord{}, false
	}
	return t.Records[bi], true
}

// BestSoFar returns the running maximum of throughput after each step —
// the convergence trace Figures 6 and 8b plot.
func (t TuneResult) BestSoFar() []float64 {
	out := make([]float64, len(t.Records))
	best := 0.0
	for i, r := range t.Records {
		if !r.Result.Failed && r.Result.Throughput > best {
			best = r.Result.Throughput
		}
		out[i] = best
	}
	return out
}

// MeanDecisionSeconds averages the per-step decision time, the paper's
// scalability measure.
func (t TuneResult) MeanDecisionSeconds() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	var sum time.Duration
	for _, r := range t.Records {
		sum += r.Decision
	}
	return sum.Seconds() / float64(len(t.Records))
}

// TuneBatch runs one optimization pass with concurrent trial
// deployments: per round the strategy proposes up to q configurations
// (via NextBatch when it implements BatchStrategy, otherwise by calling
// Next q times) and the evaluator measures them in parallel, one
// goroutine per trial — both simulators are pure per Run call, and the
// result depends only on (config, run index), so the pass is
// deterministic. Records keep sequential step numbers; each record's
// Decision is the batch decision time amortized over the batch, keeping
// MeanDecisionSeconds comparable with sequential passes. q ≤ 1 degrades
// to Tune.
//
// It is a convenience wrapper over Session.RunBatch; build a Session
// directly for cancellation, events, async dispatch or snapshots.
func TuneBatch(ev storm.Evaluator, strat Strategy, maxSteps, q, stopAfterZeros, runOffset int) TuneResult {
	s := NewSession(strat, AsBackend(ev), SessionOptions{
		MaxSteps: maxSteps, StopAfterZeros: stopAfterZeros, RunOffset: runOffset,
	})
	res, _ := s.RunBatch(context.Background(), q)
	return res
}

// nextBatch pulls up to q configurations from the strategy, using its
// native batch interface when available, and reports the total decision
// time spent assembling the batch.
func nextBatch(strat Strategy, q int) ([]storm.Config, time.Duration, bool) {
	if bs, ok := strat.(BatchStrategy); ok {
		cfgs, ok := bs.NextBatch(q)
		return cfgs, strat.DecisionTime(), ok
	}
	var cfgs []storm.Config
	var dec time.Duration
	for i := 0; i < q; i++ {
		cfg, ok := strat.Next()
		if !ok {
			break
		}
		dec += strat.DecisionTime()
		cfgs = append(cfgs, cfg)
	}
	return cfgs, dec, len(cfgs) > 0
}

// Tune runs one optimization pass: up to maxSteps evaluations of ev, or
// fewer if the strategy exhausts itself or — when stopAfterZeros > 0 —
// after that many consecutive zero-performance runs (the paper stops
// the pla strategies after three).
//
// It is a convenience wrapper over Session.Run; build a Session
// directly for cancellation, events, async dispatch or snapshots.
func Tune(ev storm.Evaluator, strat Strategy, maxSteps, stopAfterZeros int, runOffset int) TuneResult {
	s := NewSession(strat, AsBackend(ev), SessionOptions{
		MaxSteps: maxSteps, StopAfterZeros: stopAfterZeros, RunOffset: runOffset,
	})
	res, _ := s.Run(context.Background())
	return res
}
