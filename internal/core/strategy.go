// Package core implements the paper's contribution: automatic
// configuration of a distributed stream processor. It provides the
// four optimization strategies of §V (pla, ipla, bo, ibo), the
// parameter-set variants of §V-D (h, h+bs+bp, bs+bp+cc), and the
// experimental protocol (optimization passes, zero-performance early
// stopping, best-configuration re-runs).
package core

import (
	"time"

	"stormtune/internal/storm"
)

// Strategy proposes configurations to evaluate, one per optimization
// step, and learns from the measured results.
type Strategy interface {
	// Name identifies the strategy ("pla", "bo", …).
	Name() string
	// Next returns the next configuration to measure; ok is false when
	// the strategy has nothing more to propose.
	Next() (cfg storm.Config, ok bool)
	// Observe feeds the measured result for a configuration returned by
	// Next back into the strategy.
	Observe(cfg storm.Config, res storm.Result)
	// DecisionTime reports how long the last Next call spent choosing
	// (the Figure 7 metric).
	DecisionTime() time.Duration
}

// RunRecord is one completed optimization step.
type RunRecord struct {
	Step     int
	Config   storm.Config
	Result   storm.Result
	Decision time.Duration
}

// TuneResult is one optimization pass.
type TuneResult struct {
	Strategy string
	Records  []RunRecord
	// BestStep is the 1-based step at which the best throughput was
	// first measured; 0 if no successful run.
	BestStep int
}

// Best returns the record with the highest throughput; ok is false if
// every run failed.
func (t TuneResult) Best() (RunRecord, bool) {
	bi := -1
	for i, r := range t.Records {
		if r.Result.Failed {
			continue
		}
		if bi < 0 || r.Result.Throughput > t.Records[bi].Result.Throughput {
			bi = i
		}
	}
	if bi < 0 {
		return RunRecord{}, false
	}
	return t.Records[bi], true
}

// BestSoFar returns the running maximum of throughput after each step —
// the convergence trace Figures 6 and 8b plot.
func (t TuneResult) BestSoFar() []float64 {
	out := make([]float64, len(t.Records))
	best := 0.0
	for i, r := range t.Records {
		if !r.Result.Failed && r.Result.Throughput > best {
			best = r.Result.Throughput
		}
		out[i] = best
	}
	return out
}

// MeanDecisionSeconds averages the per-step decision time, the paper's
// scalability measure.
func (t TuneResult) MeanDecisionSeconds() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	var sum time.Duration
	for _, r := range t.Records {
		sum += r.Decision
	}
	return sum.Seconds() / float64(len(t.Records))
}

// Tune runs one optimization pass: up to maxSteps evaluations of ev, or
// fewer if the strategy exhausts itself or — when stopAfterZeros > 0 —
// after that many consecutive zero-performance runs (the paper stops
// the pla strategies after three).
func Tune(ev storm.Evaluator, strat Strategy, maxSteps, stopAfterZeros int, runOffset int) TuneResult {
	res := TuneResult{Strategy: strat.Name()}
	zeros := 0
	best := 0.0
	for step := 1; step <= maxSteps; step++ {
		cfg, ok := strat.Next()
		if !ok {
			break
		}
		dec := strat.DecisionTime()
		r := ev.Run(cfg, runOffset+step)
		strat.Observe(cfg, r)
		res.Records = append(res.Records, RunRecord{Step: step, Config: cfg, Result: r, Decision: dec})
		if !r.Failed && r.Throughput > best {
			best = r.Throughput
			res.BestStep = step
		}
		if r.Failed || r.Throughput == 0 {
			zeros++
			if stopAfterZeros > 0 && zeros >= stopAfterZeros {
				break
			}
		} else {
			zeros = 0
		}
	}
	return res
}
