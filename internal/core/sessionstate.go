package core

import (
	"fmt"
	"time"

	"stormtune/internal/storm"
)

// SessionOp is one entry of the session's ask/tell log. Exactly one
// field is set: Ask is the size of one strategy batch request, Tell is
// the trial id (= record step) whose result was reported. Replaying the
// log against a freshly built strategy reproduces the strategy's
// internal state — including its RNG position — bit for bit, which is
// what makes a resumed session continue exactly like an uninterrupted
// one.
type SessionOp struct {
	Ask  int `json:"ask,omitempty"`
	Tell int `json:"tell,omitempty"`
}

// RecordState is one completed trial in serialized form.
type RecordState struct {
	Step       int          `json:"step"`
	Config     storm.Config `json:"config"`
	Result     storm.Result `json:"result"`
	DecisionNS int64        `json:"decisionNs,omitempty"`
}

// TrialState is one proposed-but-unreported trial in serialized form.
// Attempt carries the evaluation attempts that have failed, so a trial
// snapshotted mid-retry resumes with its remaining retry budget rather
// than a fresh one (an attempt interrupted by the shutdown itself is
// not a failure and consumes nothing).
type TrialState struct {
	ID         int          `json:"id"`
	Config     storm.Config `json:"config"`
	Attempt    int          `json:"attempt,omitempty"`
	DecisionNS int64        `json:"decisionNs,omitempty"`
	// SimTime preserves the simulated timestamp the trial was proposed
	// at, so a resumed drifting-workload session re-measures it under
	// the same load.
	SimTime float64 `json:"simTime,omitempty"`
}

// SessionState is the serializable snapshot of a session: the completed
// records, the in-flight (pending) trials, and the interleaved ask/tell
// log from which the strategy's random state is reconstructed on
// resume. It extends the optimizer-level bo.State to the session level,
// the way Spearmint's pause/resume covered the whole tuning run
// (§III-C: it "turned out to be important" on the shared lab cluster).
type SessionState struct {
	Version        int           `json:"version"`
	Strategy       string        `json:"strategy"`
	MaxSteps       int           `json:"maxSteps"`
	StopAfterZeros int           `json:"stopAfterZeros,omitempty"`
	RunOffset      int           `json:"runOffset,omitempty"`
	Retry          RetryPolicy   `json:"retry"`
	TrialTimeoutNS int64         `json:"trialTimeoutNs,omitempty"`
	Issued         int           `json:"issued"`
	Zeros          int           `json:"zeros,omitempty"`
	Stopped        bool          `json:"stopped,omitempty"`
	Exhausted      bool          `json:"exhausted,omitempty"`
	Records        []RecordState `json:"records"`
	Pending        []TrialState  `json:"pending,omitempty"`
	Ops            []SessionOp   `json:"ops"`
}

const sessionStateVersion = 1

// Snapshot captures the session. It is safe to call at any time,
// including from an Observer callback or while a driver is mid-run; a
// snapshot taken between a proposal and its report carries the trial as
// pending, and the resumed session re-dispatches it with the original
// run index.
func (s *Session) Snapshot() *SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &SessionState{
		Version:        sessionStateVersion,
		Strategy:       s.strat.Name(),
		MaxSteps:       s.opts.MaxSteps,
		StopAfterZeros: s.opts.StopAfterZeros,
		RunOffset:      s.opts.RunOffset,
		Retry:          s.opts.Retry,
		TrialTimeoutNS: int64(s.opts.TrialTimeout),
		Issued:         s.issued,
		Zeros:          s.zeros,
		Stopped:        s.stopped,
		Exhausted:      s.exhausted,
		Records:        make([]RecordState, len(s.records)),
		Ops:            append([]SessionOp(nil), s.ops...),
	}
	for i, r := range s.records {
		st.Records[i] = RecordState{Step: r.Step, Config: r.Config, Result: r.Result, DecisionNS: int64(r.Decision)}
	}
	for _, p := range s.pending {
		st.Pending = append(st.Pending, TrialState{
			ID: p.ID, Config: p.Config, Attempt: p.Attempt, DecisionNS: int64(p.Decision),
			SimTime: p.SimTime,
		})
	}
	return st
}

// Validate sanity-checks a deserialized state.
func (st *SessionState) Validate() error {
	if st == nil {
		return fmt.Errorf("core: nil session state")
	}
	if st.Version != sessionStateVersion {
		return fmt.Errorf("core: unsupported session state version %d", st.Version)
	}
	asks, tells := 0, 0
	for i, op := range st.Ops {
		switch {
		case op.Ask > 0 && op.Tell == 0:
			asks += op.Ask
		case op.Tell > 0 && op.Ask == 0:
			tells++
		default:
			return fmt.Errorf("core: session op %d is neither ask nor tell", i)
		}
	}
	if asks != st.Issued {
		return fmt.Errorf("core: op log issues %d trials, state says %d", asks, st.Issued)
	}
	if tells != len(st.Records) {
		return fmt.Errorf("core: op log reports %d trials, state has %d records", tells, len(st.Records))
	}
	if len(st.Records)+len(st.Pending) != st.Issued {
		return fmt.Errorf("core: %d records + %d pending ≠ %d issued",
			len(st.Records), len(st.Pending), st.Issued)
	}
	return nil
}

// ResumeSession reconstructs a session from a snapshot. strat must be a
// freshly constructed strategy with the same options and seed as the
// one the snapshot was taken from: the snapshot's ask/tell log is
// replayed against it — every ask re-drawn, every recorded result
// re-observed in the original interleaving — so the strategy (RNG
// position included) ends up bit-identical to the snapshotted one and
// the resumed session continues exactly like an uninterrupted run.
// Replay cross-checks each re-drawn configuration against the snapshot
// and fails if the strategy diverges (wrong options, seed or topology).
//
// opts.MaxSteps may raise (or lower) the remaining budget; zero keeps
// the snapshot's, as do a zero opts.Retry and opts.TrialTimeout.
// opts.RunOffset is ignored — the snapshot's offset is kept so
// evaluator noise draws line up. In-flight trials — including ones
// snapshotted mid-retry — come back as pending with their attempt
// budget where it left off, and the drivers re-dispatch them first.
func ResumeSession(st *SessionState, strat Strategy, bk Backend, opts SessionOptions) (*Session, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	wantCfg := make(map[int]storm.Config, st.Issued)
	recByStep := make(map[int]RecordState, len(st.Records))
	for _, r := range st.Records {
		recByStep[r.Step] = r
		wantCfg[r.Step] = r.Config
	}
	pendByID := make(map[int]TrialState, len(st.Pending))
	for _, p := range st.Pending {
		pendByID[p.ID] = p
		wantCfg[p.ID] = p.Config
	}

	nextID := 0
	for _, op := range st.Ops {
		if op.Ask > 0 {
			cfgs, _, ok := nextBatch(strat, op.Ask)
			if !ok || len(cfgs) != op.Ask {
				return nil, fmt.Errorf("core: resume replay: strategy returned %d of %d trials at op ask", len(cfgs), op.Ask)
			}
			for _, cfg := range cfgs {
				nextID++
				want, known := wantCfg[nextID]
				if !known {
					return nil, fmt.Errorf("core: resume replay: snapshot has no configuration for trial %d", nextID)
				}
				if want.Fingerprint() != cfg.Fingerprint() {
					return nil, fmt.Errorf("core: resume replay diverged at trial %d — strategy options, seed or topology differ from the snapshotted run", nextID)
				}
			}
			continue
		}
		rec, ok := recByStep[op.Tell]
		if !ok {
			return nil, fmt.Errorf("core: resume replay: tell for unknown trial %d", op.Tell)
		}
		strat.Observe(rec.Config, rec.Result)
	}

	if opts.MaxSteps <= 0 {
		opts.MaxSteps = st.MaxSteps
	}
	if opts.StopAfterZeros == 0 {
		opts.StopAfterZeros = st.StopAfterZeros
	}
	if opts.Retry == (RetryPolicy{}) {
		opts.Retry = st.Retry
	}
	if opts.TrialTimeout == 0 {
		opts.TrialTimeout = time.Duration(st.TrialTimeoutNS)
	}
	opts.RunOffset = st.RunOffset
	s := NewSession(strat, bk, opts)
	s.issued = st.Issued
	s.zeros = st.Zeros
	s.stopped = st.Stopped
	// A raised budget clears strategy exhaustion only if the strategy
	// can actually propose again; keep the cheap flag and let the next
	// Propose re-discover exhaustion if it persists.
	s.exhausted = false
	s.ops = append([]SessionOp(nil), st.Ops...)
	s.records = make([]RunRecord, len(st.Records))
	for i, r := range st.Records {
		s.records[i] = RunRecord{Step: r.Step, Config: r.Config, Result: r.Result, Decision: time.Duration(r.DecisionNS)}
		if !r.Result.Failed && r.Result.Throughput > s.best {
			s.best = r.Result.Throughput
			s.bestStep = r.Step
		}
	}
	for _, p := range st.Pending {
		// Fingerprint is routing metadata, not persisted state: re-stamp
		// it from the resuming options so restored trials route the same
		// way fresh proposals do.
		s.pending = append(s.pending, Trial{
			ID: p.ID, Config: p.Config,
			RunIndex:    st.RunOffset + p.ID,
			Attempt:     p.Attempt,
			Timeout:     opts.TrialTimeout,
			Decision:    time.Duration(p.DecisionNS),
			SimTime:     p.SimTime,
			Fingerprint: opts.Fingerprint,
		})
	}
	return s, nil
}
