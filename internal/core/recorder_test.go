package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stormtune/internal/storm"
)

func cfgN(hint int) storm.Config {
	return storm.Config{Hints: []int{hint}}
}

func ok(tput float64) storm.Result { return storm.Result{Throughput: tput} }

// TestRecorderDerivedState walks a Recorder through a scripted session
// — successes, a new best, a retried trial, a permanent failure — and
// checks every piece of derived state.
func TestRecorderDerivedState(t *testing.T) {
	r := NewRecorder()

	t1 := Trial{ID: 1, Config: cfgN(1)}
	t2 := Trial{ID: 2, Config: cfgN(2)}
	t3 := Trial{ID: 3, Config: cfgN(3)}

	r.OnEvent(TrialStarted{Trial: t1})
	if s := r.Snapshot(); s.Running != 1 || len(s.Trials) != 1 || s.Trials[0].Status != StatusRunning {
		t.Fatalf("after start: %+v", s)
	}
	r.OnEvent(TrialCompleted{Trial: t1, Result: ok(100)})
	r.OnEvent(NewBest{Trial: t1, Result: ok(100)})

	// Trial 2: one lost attempt, then a success that beats the best.
	r.OnEvent(TrialStarted{Trial: t2})
	lost := errors.New("connection reset")
	r.OnEvent(TrialFailed{Trial: t2, Attempt: 1, Err: lost})
	r.OnEvent(TrialRetried{Trial: t2, Attempt: 2, Backoff: 10 * time.Millisecond, Err: lost})
	if s := r.Snapshot(); s.Retrying != 1 || s.Retries != 1 {
		t.Fatalf("mid-retry: retrying=%d retries=%d", s.Retrying, s.Retries)
	}
	r.OnEvent(TrialCompleted{Trial: t2, Result: ok(250)})
	r.OnEvent(NewBest{Trial: t2, Result: ok(250)})

	// Trial 3: permanent failure → pessimistic completed record.
	r.OnEvent(TrialStarted{Trial: t3})
	r.OnEvent(TrialFailed{Trial: t3, Attempt: 2, Err: lost, Permanent: true})
	r.OnEvent(TrialCompleted{Trial: t3, Result: storm.FailedResult(storm.FailureEvaluation, lost.Error())})
	r.OnEvent(PassCompleted{Steps: 3, Found: true})

	s := r.Snapshot()
	if !s.Done {
		t.Fatal("pass_completed not reflected")
	}
	if s.Completed != 3 || s.FailedN != 1 || s.Running != 0 || s.Retrying != 0 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Best != 250 || s.BestTrial != 2 {
		t.Fatalf("incumbent: best=%v trial=%d", s.Best, s.BestTrial)
	}
	byID := map[int]TrialView{}
	for _, tv := range s.Trials {
		byID[tv.ID] = tv
	}
	if byID[1].Status != StatusDone || byID[1].Best {
		t.Fatalf("trial 1: %+v", byID[1])
	}
	if !byID[2].Best || byID[2].Attempts != 2 {
		t.Fatalf("trial 2: %+v", byID[2])
	}
	if byID[3].Status != StatusFailed || byID[3].Failure != string(storm.FailureEvaluation) {
		t.Fatalf("trial 3: %+v", byID[3])
	}
	wantCurve := []float64{100, 250, 250}
	if len(s.Incumbent) != len(wantCurve) {
		t.Fatalf("curve has %d points, want %d", len(s.Incumbent), len(wantCurve))
	}
	for i, p := range s.Incumbent {
		if p.Best != wantCurve[i] || p.Step != i+1 {
			t.Fatalf("curve[%d] = %+v, want best %v", i, p, wantCurve[i])
		}
	}
	trace := r.IncumbentTrace()
	if len(trace) != 2 || trace[0].TrialID != 1 || trace[1].TrialID != 2 {
		t.Fatalf("trace: %+v", trace)
	}

	// Event history: sequential IDs, kinds in emission order.
	evs, wait := r.EventsSince(0)
	if wait != nil || len(evs) != 12 {
		t.Fatalf("history: %d events (wait=%v)", len(evs), wait)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Kind != KindTrialStarted || evs[11].Kind != KindPassCompleted {
		t.Fatalf("kinds: first %s last %s", evs[0].Kind, evs[11].Kind)
	}

	// Replay-from-ID returns exactly the suffix.
	tail, _ := r.EventsSince(10)
	if len(tail) != 2 || tail[0].Seq != 11 {
		t.Fatalf("suffix after 10: %+v", tail)
	}
}

// TestRecorderEventsSinceWait verifies the blocking follow primitive:
// with the history drained, EventsSince hands back a channel that is
// closed by the next event.
func TestRecorderEventsSinceWait(t *testing.T) {
	r := NewRecorder()
	evs, wait := r.EventsSince(0)
	if len(evs) != 0 || wait == nil {
		t.Fatalf("empty recorder: evs=%d wait=%v", len(evs), wait)
	}
	select {
	case <-wait:
		t.Fatal("wait channel closed before any event")
	default:
	}
	go r.OnEvent(TrialStarted{Trial: Trial{ID: 1, Config: cfgN(1)}})
	select {
	case <-wait:
	case <-time.After(2 * time.Second):
		t.Fatal("wait channel not closed by the event")
	}
	evs, wait = r.EventsSince(0)
	if len(evs) != 1 || wait != nil {
		t.Fatalf("after event: evs=%d wait=%v", len(evs), wait)
	}
	// A cursor beyond this recorder's history is stale (a reconnecting
	// subscriber from a previous run) and resets to a full replay.
	evs, _ = r.EventsSince(400)
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("stale cursor should replay from the start: %+v", evs)
	}
}

// TestRecorderConcurrentAccess hammers one Recorder from writer and
// reader goroutines; run with -race this is the Recorder's
// thread-safety proof.
func TestRecorderConcurrentAccess(t *testing.T) {
	r := NewRecorder()
	const writers, trialsPerWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < trialsPerWriter; i++ {
				id := w*trialsPerWriter + i + 1
				tr := Trial{ID: id, Config: cfgN(id)}
				r.OnEvent(TrialStarted{Trial: tr})
				r.OnEvent(TrialCompleted{Trial: tr, Result: ok(float64(id))})
			}
		}(w)
	}
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				_ = s.Trials
				evs, _ := r.EventsSince(cursor)
				if len(evs) > 0 {
					cursor = evs[len(evs)-1].Seq
				}
				r.IncumbentTrace()
			}
		}()
	}
	// Writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Readers loop until stop; writers are the first 4 Adds. Give
		// them a deadline so a deadlock fails the test instead of
		// hanging it.
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent access deadlocked")
	}
	s := r.Snapshot()
	if got := len(s.Trials); got != writers*trialsPerWriter {
		t.Fatalf("lost trials: %d of %d", got, writers*trialsPerWriter)
	}
	if s.Events != int64(2*writers*trialsPerWriter) {
		t.Fatalf("lost events: %d", s.Events)
	}
	if s.Best != float64(writers*trialsPerWriter) {
		t.Fatalf("best = %v", s.Best)
	}
}

// TestRecorderPrime replays a real session's snapshot into a fresh
// Recorder and checks it reconstructs the live Recorder's incumbent
// trace and trial table (statuses included).
func TestRecorderPrime(t *testing.T) {
	live := NewRecorder()
	sess := NewSession(&scriptedStrategy{n: 6}, scriptedBackend{}, SessionOptions{
		MaxSteps: 6, Observer: live,
	})
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sess.Snapshot()

	primed := NewRecorder()
	primed.Prime(st)

	lt, pt := live.IncumbentTrace(), primed.IncumbentTrace()
	if len(lt) != len(pt) {
		t.Fatalf("trace lengths differ: live %d primed %d", len(lt), len(pt))
	}
	for i := range lt {
		if lt[i].TrialID != pt[i].TrialID || lt[i].Best != pt[i].Best || lt[i].Step != pt[i].Step {
			t.Fatalf("trace[%d]: live %+v primed %+v", i, lt[i], pt[i])
		}
	}
	ls, ps := live.Snapshot(), primed.Snapshot()
	if ls.Best != ps.Best || ls.BestTrial != ps.BestTrial || ls.Completed != ps.Completed {
		t.Fatalf("snapshots differ: live %+v primed %+v", ls, ps)
	}
	for i := range ls.Trials {
		l, p := ls.Trials[i], ps.Trials[i]
		if l.ID != p.ID || l.Status != p.Status || l.Throughput != p.Throughput || l.Failed != p.Failed {
			t.Fatalf("trial %d differs: live %+v primed %+v", l.ID, l, p)
		}
		if !p.Replayed {
			t.Fatalf("primed trial %d not marked replayed", p.ID)
		}
	}

	// Priming a non-empty recorder is a no-op — both the re-primed copy
	// and the live recorder (in-process resume) must not duplicate.
	primed.Prime(st)
	live.Prime(st)
	if s := primed.Snapshot(); s.Events != ps.Events || len(s.Trials) != len(ps.Trials) {
		t.Fatalf("re-prime duplicated history: %d events, was %d", s.Events, ps.Events)
	}
	if s := live.Snapshot(); s.Events != ls.Events {
		t.Fatalf("priming the live recorder duplicated history: %d events, was %d", s.Events, ls.Events)
	}
}

// TestRecorderPrimePending carries a pending trial through Prime.
func TestRecorderPrimePending(t *testing.T) {
	st := &SessionState{
		Version: 1, Strategy: "scripted", MaxSteps: 5, Issued: 2,
		Records: []RecordState{{Step: 1, Config: cfgN(1), Result: ok(10)}},
		Pending: []TrialState{{ID: 2, Config: cfgN(2), Attempt: 1}},
		Ops:     []SessionOp{{Ask: 1}, {Tell: 1}, {Ask: 1}},
	}
	r := NewRecorder()
	r.Prime(st)
	s := r.Snapshot()
	if s.Pending != 1 || s.Completed != 1 {
		t.Fatalf("counters: %+v", s)
	}
	var pend TrialView
	for _, tv := range s.Trials {
		if tv.ID == 2 {
			pend = tv
		}
	}
	if pend.Status != StatusPending || pend.Attempts != 1 {
		t.Fatalf("pending trial: %+v", pend)
	}
}

// TestMultiObserver checks fan-out order and nil handling.
func TestMultiObserver(t *testing.T) {
	if MultiObserver() != nil || MultiObserver(nil, nil) != nil {
		t.Fatal("empty composition should be nil")
	}
	var got []string
	a := ObserverFunc(func(Event) { got = append(got, "a") })
	b := ObserverFunc(func(Event) { got = append(got, "b") })
	if single := MultiObserver(nil, a); single == nil {
		t.Fatal("single composition dropped the observer")
	}
	m := MultiObserver(a, nil, b)
	m.OnEvent(PassCompleted{})
	m.OnEvent(PassCompleted{})
	want := []string{"a", "b", "a", "b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
}

// scriptedStrategy proposes n fixed configurations with varying quality
// so the incumbent moves more than once.
type scriptedStrategy struct {
	n, i int
}

func (s *scriptedStrategy) Name() string { return "scripted" }
func (s *scriptedStrategy) Next() (storm.Config, bool) {
	if s.i >= s.n {
		return storm.Config{}, false
	}
	s.i++
	return cfgN(s.i), true
}
func (s *scriptedStrategy) Observe(storm.Config, storm.Result) {}
func (s *scriptedStrategy) DecisionTime() time.Duration        { return 0 }

// scriptedBackend maps hint → throughput with a dip so not every trial
// is a new best, and one placement failure.
type scriptedBackend struct{}

func (scriptedBackend) Run(_ context.Context, tr Trial) (storm.Result, error) {
	h := tr.Config.Hints[0]
	if h == 4 {
		return storm.FailedResult(storm.FailurePlacement, "unplaceable"), nil
	}
	tputs := map[int]float64{1: 100, 2: 80, 3: 300, 5: 120, 6: 350}
	return ok(tputs[h]), nil
}
