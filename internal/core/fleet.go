package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"stormtune/internal/scheduler"
	"stormtune/internal/storm"
)

// FleetMember is one tuning session of a Fleet: a name (the dashboard
// URL segment and result key), the session itself, its fair-share
// weight, an optional per-session in-flight cap, and the Recorder the
// fleet's aggregated status reads (nil disables per-session derived
// state in FleetStatus and the dashboard drill-down).
type FleetMember struct {
	// Name identifies the session; fleet member names must be unique
	// and non-empty.
	Name string
	// Session is the session to drive. It must have a backend (fleet
	// members cannot be ask/tell-only) and must not be driven by any
	// other caller while the fleet runs.
	Session *Session
	// Weight scales the member's share of slot grants (≤ 0 means 1):
	// with weights 1 and 3 the second session receives three out of
	// every four grants both sessions compete for.
	Weight float64
	// MaxInFlight caps the member's own concurrent trials — the
	// cluster's concurrent-trial capacity for its template
	// configuration; 0 means bounded only by the fleet's slots.
	MaxInFlight int
	// Recorder, when set, is the session's Recorder (already wired into
	// its observer chain); the fleet aggregates its derived state into
	// FleetStatus and the dashboard serves it for drill-down.
	Recorder *Recorder
}

// FleetOptions configure a Fleet.
type FleetOptions struct {
	// Slots is the total number of trials in flight across all sessions
	// at any instant — the shared worker pool's capacity. Values below
	// 1 mean 1.
	Slots int
	// ShareIncumbents propagates each member's new-best configuration
	// to every sibling at report boundaries: the fleet keeps a ranked
	// pool of member incumbents (best throughput first) and pushes it
	// into each sibling's BO strategy as shared candidate seeds — a
	// NewBest in one member re-ranks the others' warm-start pools
	// mid-run. Members whose strategy is not BO-based, or whose
	// parameter space cannot represent a sibling's configuration,
	// ignore the pool.
	ShareIncumbents bool
}

// FleetSessionStatus is one member's entry in a FleetStatus.
type FleetSessionStatus struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// InFlight is the number of shared slots the session holds right
	// now; MaxInFlight is its own cap (0 = bounded only by the fleet).
	InFlight    int `json:"inFlight"`
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// Done reports that the session has drained: it will issue no
	// further trials and none are in flight.
	Done bool `json:"done"`
	// The remaining fields are derived from the member's Recorder and
	// absent (zero) without one: trials seen, completions (failures
	// included), failures, retries, the incumbent, and the session
	// wall-clock.
	Trials    int     `json:"trials"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failedTrials,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Best      float64 `json:"best"`
	BestTrial int     `json:"bestTrial,omitempty"`
	ElapsedMS int64   `json:"elapsedMs"`
}

// FleetStatus is the cross-session state of a fleet at one instant.
type FleetStatus struct {
	// Slots and InFlight are the shared capacity and its current
	// occupancy; InFlight never exceeds Slots.
	Slots    int `json:"slots"`
	InFlight int `json:"inFlight"`
	// Sessions holds one entry per member, in construction order.
	Sessions []FleetSessionStatus `json:"sessions"`
	// Best is the best throughput over all sessions; BestSession names
	// the session holding it (empty while every trial has failed).
	Best        float64 `json:"best"`
	BestSession string  `json:"bestSession,omitempty"`
	// Done reports that every session has drained.
	Done bool `json:"done"`
}

// Fleet drives several independent tuning sessions concurrently over
// one shared pool of evaluation slots. A fleet-level scheduler grants
// each freed slot to one session — weighted fair share via stride
// scheduling, so no session hogs the pool and none starves — and the
// total number of in-flight trials never exceeds FleetOptions.Slots:
// sized to the shared worker pool's capacity, the workers are saturated
// but never oversubscribed.
//
// Each member keeps its own Session (and usually its own Recorder);
// the fleet only owns slot allocation and cross-session aggregation
// (Status). Run may be called once.
type Fleet struct {
	mu       sync.Mutex
	members  []FleetMember
	slots    int
	inflight []int
	finished []bool
	results  map[string]TuneResult
	started  bool

	// Incumbent-sharing state; confined to the scheduler loop
	// goroutine (Done hooks run serialized there), so unlocked.
	share     bool
	shareBest []float64
	shareCfg  []storm.Config
}

// NewFleet validates the members and builds a fleet. Member names must
// be unique and non-empty, and every session needs a backend.
func NewFleet(opts FleetOptions, members ...FleetMember) (*Fleet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one member")
	}
	seen := make(map[string]bool, len(members))
	for i, m := range members {
		if m.Name == "" {
			return nil, fmt.Errorf("core: fleet member %d has no name", i)
		}
		if !validFleetName(m.Name) {
			return nil, fmt.Errorf("core: fleet member name %q: use letters, digits, '.', '_' and '-' (it becomes a dashboard URL segment)", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("core: duplicate fleet member name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Session == nil {
			return nil, fmt.Errorf("core: fleet member %q has no session", m.Name)
		}
		if m.Session.bk == nil {
			return nil, fmt.Errorf("core: fleet member %q: %w", m.Name, ErrNoBackend)
		}
	}
	slots := opts.Slots
	if slots < 1 {
		slots = 1
	}
	return &Fleet{
		members:   append([]FleetMember(nil), members...),
		slots:     slots,
		inflight:  make([]int, len(members)),
		finished:  make([]bool, len(members)),
		results:   make(map[string]TuneResult, len(members)),
		share:     opts.ShareIncumbents,
		shareBest: make([]float64, len(members)),
		shareCfg:  make([]storm.Config, len(members)),
	}, nil
}

// validFleetName keeps member names usable as dashboard URL path
// segments without escaping.
func validFleetName(name string) bool {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Slots returns the fleet's shared slot capacity.
func (f *Fleet) Slots() int { return f.slots }

// Members returns the fleet's members, in construction order.
func (f *Fleet) Members() []FleetMember {
	return append([]FleetMember(nil), f.members...)
}

// Member returns the member with the given name.
func (f *Fleet) Member(name string) (FleetMember, bool) {
	for _, m := range f.members {
		if m.Name == name {
			return m, true
		}
	}
	return FleetMember{}, false
}

// Status samples the cross-session state: per-session slot occupancy
// and recorder-derived progress, plus the fleet-wide incumbent. Safe to
// call at any time, including while Run is in flight — the dashboard
// polls it.
func (f *Fleet) Status() FleetStatus {
	f.mu.Lock()
	inflight := append([]int(nil), f.inflight...)
	finished := append([]bool(nil), f.finished...)
	f.mu.Unlock()
	st := FleetStatus{Slots: f.slots, Done: true}
	for i, m := range f.members {
		ss := FleetSessionStatus{
			Name: m.Name, Weight: weightOf(m.Weight), InFlight: inflight[i],
			MaxInFlight: m.MaxInFlight, Done: finished[i],
		}
		if m.Recorder != nil {
			rs := m.Recorder.Stats()
			ss.Trials = rs.Trials
			ss.Completed = rs.Completed
			ss.Failed = rs.Failed
			ss.Retries = rs.Retries
			ss.Best = rs.Best
			ss.BestTrial = rs.BestTrial
			ss.ElapsedMS = rs.ElapsedMS
		}
		st.InFlight += ss.InFlight
		if !ss.Done {
			st.Done = false
		}
		if ss.Best > st.Best {
			st.Best = ss.Best
			st.BestSession = m.Name
		}
		st.Sessions = append(st.Sessions, ss)
	}
	return st
}

func weightOf(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// Results returns the per-session summaries of the members that have
// finished so far, keyed by member name; after Run returns it covers
// every member.
func (f *Fleet) Results() map[string]TuneResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]TuneResult, len(f.results))
	for k, v := range f.results {
		out[k] = v
	}
	return out
}

// finishMember records a drained session's summary (emitting its
// PassCompleted) exactly once.
func (f *Fleet) finishMember(i int) {
	f.mu.Lock()
	if f.finished[i] {
		f.mu.Unlock()
		return
	}
	f.finished[i] = true
	f.mu.Unlock()
	res, _ := f.members[i].Session.finish(nil)
	f.mu.Lock()
	f.results[f.members[i].Name] = res
	f.mu.Unlock()
}

// Run drives every session to completion — budgets spent, strategies
// exhausted, stopping rules fired — or until ctx is cancelled, sharing
// the fleet's slots among them. It returns the per-session summaries
// keyed by member name; on cancellation the partial results are
// returned with ctx's error, and each session's in-flight trials stay
// pending (their snapshots carry them, exactly as with the
// single-session drivers). Run may be called once.
func (f *Fleet) Run(ctx context.Context) (map[string]TuneResult, error) {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return nil, fmt.Errorf("core: fleet already run")
	}
	f.started = true
	f.mu.Unlock()

	// Each member runs on the same dispatch plumbing as Session.RunAsync
	// (carry-over hand-out, propose-on-demand, retrying evaluate,
	// report); the fleet adds only slot accounting around Run and the
	// drain notification.
	dispatches := make([]*dispatchSource, len(f.members))
	sources := make([]scheduler.SharedSource[Trial, dispatchOutcome], len(f.members))
	for i := range f.members {
		i := i
		m := f.members[i]
		d := m.Session.newDispatch()
		dispatches[i] = d
		sources[i] = scheduler.SharedSource[Trial, dispatchOutcome]{
			Weight: m.Weight,
			Max:    m.MaxInFlight,
			Next:   d.nextOne,
			Run: func(ctx context.Context, tr Trial) dispatchOutcome {
				f.addInFlight(i, 1)
				defer f.addInFlight(i, -1)
				return d.run(ctx, tr)
			},
			Done: func(tr Trial, o dispatchOutcome) bool {
				ok := d.report(tr, o)
				if f.share {
					f.shareIncumbent(i)
				}
				return ok
			},
			Drained: func() { f.finishMember(i) },
		}
	}
	err := scheduler.Shared(ctx, f.slots, sources)
	if err == nil {
		for i, d := range dispatches {
			if ferr := d.firstErr(); ferr != nil {
				err = fmt.Errorf("fleet session %q: %w", f.members[i].Name, ferr)
				break
			}
		}
	}
	return f.Results(), err
}

// shareIncumbent runs after member i reported a trial: if the member's
// best improved, its incumbent configuration joins the fleet pool and
// every sibling's warm-start seeds are re-ranked (best contributor
// first, own incumbent excluded — the member's model already holds
// it). Runs only on the scheduler loop goroutine, after d.report
// released the session lock, so UpdateStrategy cannot deadlock.
func (f *Fleet) shareIncumbent(i int) {
	y, _, ok := f.members[i].Session.BestSoFar()
	if !ok || y <= f.shareBest[i] {
		return
	}
	var cfg storm.Config
	var have bool
	f.members[i].Session.UpdateStrategy(func(st Strategy) {
		if b, isBO := st.(*BOStrategy); isBO {
			cfg, have = b.BestConfig()
		}
	})
	if !have {
		return
	}
	f.shareBest[i] = y
	f.shareCfg[i] = cfg

	order := make([]int, 0, len(f.members))
	for j := range f.members {
		if f.shareBest[j] > 0 {
			order = append(order, j)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.shareBest[order[a]] > f.shareBest[order[b]]
	})
	for j := range f.members {
		pool := make([]storm.Config, 0, len(order))
		for _, k := range order {
			if k != j {
				pool = append(pool, f.shareCfg[k])
			}
		}
		if len(pool) == 0 {
			continue
		}
		f.members[j].Session.UpdateStrategy(func(st Strategy) {
			if b, isBO := st.(*BOStrategy); isBO {
				b.SetSharedSeeds(pool)
			}
		})
	}
}

// SharedPool returns the current ranked incumbent pool as seen by
// member name (best contributor first, the member's own incumbent
// excluded). Test/diagnostic helper; meaningful only between report
// boundaries.
func (f *Fleet) SharedPool(name string) []storm.Config {
	idx := -1
	for j, m := range f.members {
		if m.Name == name {
			idx = j
		}
	}
	if idx < 0 {
		return nil
	}
	order := make([]int, 0, len(f.members))
	for j := range f.members {
		if f.shareBest[j] > 0 {
			order = append(order, j)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.shareBest[order[a]] > f.shareBest[order[b]]
	})
	var pool []storm.Config
	for _, k := range order {
		if k != idx {
			pool = append(pool, f.shareCfg[k].Clone())
		}
	}
	return pool
}

// addInFlight adjusts a member's live slot count (Status reads it).
func (f *Fleet) addInFlight(i, delta int) {
	f.mu.Lock()
	f.inflight[i] += delta
	f.mu.Unlock()
}
