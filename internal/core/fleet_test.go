package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stormtune/internal/storm"
)

// countingBackend wraps a Backend and tracks concurrent Run calls —
// the "shared pool capacity" invariant probe.
type countingBackend struct {
	bk       Backend
	inflight atomic.Int32
	peak     atomic.Int32
	runs     atomic.Int32
	delay    time.Duration
}

func (c *countingBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	cur := c.inflight.Add(1)
	for {
		prev := c.peak.Load()
		if cur <= prev || c.peak.CompareAndSwap(prev, cur) {
			break
		}
	}
	defer c.inflight.Add(-1)
	c.runs.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.bk.Run(ctx, tr)
}

func fleetMembers(t *testing.T, bk Backend, steps int, recorders bool, names ...string) []FleetMember {
	t.Helper()
	members := make([]FleetMember, len(names))
	for i, name := range names {
		var rec *Recorder
		var obs Observer
		if recorders {
			rec = NewRecorder()
			obs = rec
		}
		sess := NewSession(newTestBO(int64(i+1)), bk, SessionOptions{
			MaxSteps: steps, Observer: obs,
		})
		members[i] = FleetMember{Name: name, Session: sess, Recorder: rec}
	}
	return members
}

// TestFleetRunsAllSessionsWithinCapacity drives three sessions over a
// shared backend with 2 slots: every session finishes its budget, and
// the backend never sees more than 2 concurrent evaluations.
func TestFleetRunsAllSessionsWithinCapacity(t *testing.T) {
	tp := testTopo()
	bk := &countingBackend{bk: AsBackend(testEval(tp)), delay: 200 * time.Microsecond}
	members := fleetMembers(t, bk, 6, true, "a", "b", "c")
	f, err := NewFleet(FleetOptions{Slots: 2}, members...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, name := range []string{"a", "b", "c"} {
		tr, ok := results[name]
		if !ok {
			t.Fatalf("no result for session %q", name)
		}
		if len(tr.Records) != 6 {
			t.Fatalf("session %q completed %d trials, want 6", name, len(tr.Records))
		}
		if _, found := tr.Best(); !found {
			t.Fatalf("session %q found no best", name)
		}
	}
	if got := bk.runs.Load(); got != 18 {
		t.Fatalf("backend ran %d evaluations, want 18", got)
	}
	if p := bk.peak.Load(); p > 2 {
		t.Fatalf("backend saw %d concurrent evaluations, capacity is 2", p)
	}
	st := f.Status()
	if !st.Done {
		t.Fatal("fleet status not done after Run returned")
	}
	if st.InFlight != 0 {
		t.Fatalf("fleet reports %d in-flight after completion", st.InFlight)
	}
	for _, ss := range st.Sessions {
		if !ss.Done || ss.Completed != 6 || ss.Trials != 6 {
			t.Fatalf("session %q status %+v, want done with 6/6 trials", ss.Name, ss)
		}
		if ss.Best <= 0 {
			t.Fatalf("session %q status reports best %v", ss.Name, ss.Best)
		}
	}
	if st.Best <= 0 || st.BestSession == "" {
		t.Fatalf("fleet incumbent missing: %+v", st)
	}
}

// TestFleetMatchesSequentialSessions pins that fleet scheduling does
// not change any session's optimization trajectory: with each member
// capped at one in-flight trial (sequential within the session) and a
// deterministic backend, its records equal those of the same session
// driven alone — the fleet interleaves sessions, never the per-session
// ask/tell order.
func TestFleetMatchesSequentialSessions(t *testing.T) {
	tp := testTopo()
	ev := testEval(tp)
	want := make(map[string]TuneResult)
	for i, name := range []string{"a", "b"} {
		sess := NewSession(newTestBO(int64(i+1)), AsBackend(ev), SessionOptions{MaxSteps: 8})
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res
	}
	members := fleetMembers(t, AsBackend(ev), 8, false, "a", "b")
	for i := range members {
		members[i].MaxInFlight = 1
	}
	f, err := NewFleet(FleetOptions{Slots: 3}, members...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name := range want {
		sameRecords(t, want[name].Records, got[name].Records)
	}
}

// TestFleetCancellationLeavesTrialsPending cancels mid-run: Run
// returns ctx.Err(), partial results are reported, and in-flight
// trials stay pending in their sessions for a snapshot to carry.
func TestFleetCancellationLeavesTrialsPending(t *testing.T) {
	tp := testTopo()
	ev := testEval(tp)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	slow := BackendFunc(func(ctx context.Context, tr Trial) (storm.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return storm.Result{}, ctx.Err()
		}
		return ev.Run(tr.Config, tr.RunIndex), nil
	})
	members := fleetMembers(t, slow, 50, false, "a", "b")
	f, err := NewFleet(FleetOptions{Slots: 2}, members...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results map[string]TuneResult
	var runErr error
	go func() {
		defer close(done)
		results, runErr = f.Run(ctx)
	}()
	<-started
	<-started
	cancel()
	<-done
	if runErr != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", runErr)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want partial summaries for both sessions", len(results))
	}
	pending := 0
	for _, m := range f.Members() {
		pending += len(m.Session.Pending())
	}
	if pending == 0 {
		t.Fatal("cancelled fleet left no pending trials; in-flight work should stay pending")
	}
	close(release)
}

// BackendFunc adapts a function to Backend for tests.
type BackendFunc func(ctx context.Context, tr Trial) (storm.Result, error)

func (f BackendFunc) Run(ctx context.Context, tr Trial) (storm.Result, error) { return f(ctx, tr) }

// TestFleetWeightedPriorityNoStarvation runs a weight-1 session next
// to a weight-8 one over a single slot and checks the light session
// still progresses throughout the run rather than only after the heavy
// one finishes.
func TestFleetWeightedPriorityNoStarvation(t *testing.T) {
	tp := testTopo()
	var order []string
	var mu sync.Mutex
	members := fleetMembers(t, AsBackend(testEval(tp)), 16, false, "light", "heavy")
	members[0].Weight = 1
	members[1].Weight = 8
	// Observe report order through the sessions' observers.
	for i := range members {
		name := members[i].Name
		members[i].Session.opts.Observer = ObserverFunc(func(e Event) {
			if _, ok := e.(TrialCompleted); ok {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
		})
	}
	f, err := NewFleet(FleetOptions{Slots: 1}, members...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 32 {
		t.Fatalf("completed %d trials, want 32", len(order))
	}
	// The heavy session finishes its 16 trials first, but the light one
	// must get slots interleaved: its first completion happens before
	// the heavy session's 12th (a 1:8 split grants it every ~9th slot).
	firstLight := -1
	heavyBefore := 0
	for i, n := range order {
		if n == "light" {
			firstLight = i
			break
		}
		heavyBefore++
	}
	if firstLight < 0 {
		t.Fatal("light session never completed a trial")
	}
	if heavyBefore > 11 {
		t.Fatalf("light session starved: %d heavy completions before its first", heavyBefore)
	}
}

// TestFleetValidation covers the constructor's error paths.
func TestFleetValidation(t *testing.T) {
	tp := testTopo()
	bk := AsBackend(testEval(tp))
	mk := func(name string) FleetMember {
		return FleetMember{Name: name, Session: NewSession(newTestBO(1), bk, SessionOptions{MaxSteps: 2})}
	}
	cases := []struct {
		name    string
		members []FleetMember
		wantErr string
	}{
		{"no members", nil, "at least one"},
		{"empty name", []FleetMember{mk("")}, "no name"},
		{"bad name", []FleetMember{mk("a/b")}, "URL segment"},
		{"duplicate", []FleetMember{mk("x"), mk("x")}, "duplicate"},
		{"nil session", []FleetMember{{Name: "x"}}, "no session"},
		{"no backend", []FleetMember{{Name: "x", Session: NewSession(newTestBO(1), nil, SessionOptions{})}}, "no backend"},
	}
	for _, tc := range cases {
		_, err := NewFleet(FleetOptions{Slots: 1}, tc.members...)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	// Run may be called once.
	f, err := NewFleet(FleetOptions{Slots: 1}, mk("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err == nil {
		t.Fatal("second Run should error")
	}
}

// TestFleetHammer is the -race stress test the ISSUE asks for:
// sessions of very different lengths over a jittered shared backend —
// slots released by early finishers are reused, the capacity cap
// holds, and every session drains exactly once.
func TestFleetHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is slow; run without -short")
	}
	tp := testTopo()
	inner := AsBackend(testEval(tp))
	bk := &countingBackend{bk: inner, delay: 300 * time.Microsecond}
	names := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	members := make([]FleetMember, len(names))
	for i, name := range names {
		rec := NewRecorder()
		sess := NewSession(newTestBO(int64(i+1)), bk, SessionOptions{
			MaxSteps: 3 + i*3, // 3, 6, 9, 12, 15, 18 — finishing at very different times
			Observer: rec,
		})
		members[i] = FleetMember{
			Name: name, Session: sess, Recorder: rec,
			Weight:      float64(1 + i%3),
			MaxInFlight: 1 + i%2,
		}
	}
	f, err := NewFleet(FleetOptions{Slots: 3}, members...)
	if err != nil {
		t.Fatal(err)
	}
	statusDone := make(chan struct{})
	go func() {
		// Hammer Status concurrently with the run (the dashboard does).
		defer close(statusDone)
		for {
			st := f.Status()
			if st.InFlight > st.Slots {
				panic("fleet status reports in-flight above capacity")
			}
			if st.Done {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	results, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-statusDone
	if p := bk.peak.Load(); p > 3 {
		t.Fatalf("backend saw %d concurrent evaluations, capacity is 3", p)
	}
	wantTotal := 0
	for i, name := range names {
		want := 3 + i*3
		wantTotal += want
		if got := len(results[name].Records); got != want {
			t.Fatalf("session %q completed %d trials, want %d", name, got, want)
		}
	}
	if got := bk.runs.Load(); int(got) != wantTotal {
		t.Fatalf("backend ran %d evaluations, want %d", got, wantTotal)
	}
}
