package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"stormtune/internal/storm"
)

// Backend evaluates trials. It is the session's view of whatever runs
// the measurements — the bundled simulators (via AsBackend), a remote
// evaluation service, or a caller's own cluster harness.
//
// Run must honor ctx: the session passes a context carrying its
// cancellation and, when the trial has a deadline (Trial.Timeout), that
// deadline. The two return paths mean different things:
//
//   - (Result, nil): the measurement happened. A Result with Failed set
//     is still a valid observation — the configuration performs at zero
//     (e.g. the scheduler could not place it) — and is fed to the
//     optimizer as such.
//   - (_, error): the measurement was lost — timeout, dropped
//     connection, crashed worker. Nothing was observed; the session's
//     RetryPolicy decides whether to retry the trial or give up and
//     record a pessimistic storm.FailedResult.
//
// Run must be safe for concurrent use: the batch and async drivers
// evaluate several trials at once.
type Backend interface {
	Run(ctx context.Context, tr Trial) (storm.Result, error)
}

// EvaluatorBackend adapts a storm.Evaluator — both simulators, and any
// wrapper like storm.Averaged or storm.Jittered — to the Backend
// contract. The evaluator cannot be interrupted mid-measurement, so
// cancellation is checked before the run starts; simulator runs are
// fast enough that this is where cancellation matters.
type EvaluatorBackend struct {
	Ev storm.Evaluator
}

// AsBackend wraps an evaluator as a Backend; a nil evaluator yields a
// nil Backend (an ask/tell-only session).
func AsBackend(ev storm.Evaluator) Backend {
	if ev == nil {
		return nil
	}
	return &EvaluatorBackend{Ev: ev}
}

// Run implements Backend. An evaluator that understands simulated time
// (storm.TimedEvaluator — drifting workloads) measures at the trial's
// SimTime; stationary evaluators ignore it.
func (b *EvaluatorBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	if err := ctx.Err(); err != nil {
		return storm.Result{}, err
	}
	if te, ok := b.Ev.(storm.TimedEvaluator); ok {
		return te.RunAt(tr.Config, tr.RunIndex, tr.SimTime), nil
	}
	return b.Ev.Run(tr.Config, tr.RunIndex), nil
}

// Metric exposes the wrapped evaluator's throughput definition.
func (b *EvaluatorBackend) Metric() storm.Metric { return b.Ev.Metric() }

// RetryPolicy governs how a session handles trials whose evaluation
// errors (Backend.Run returning a non-nil error — a lost measurement,
// not a zero-performing configuration). The zero value never retries:
// the first error is permanent.
//
// After a permanent failure — the attempt budget is spent — the session
// records a pessimistic observation (storm.FailedResult with
// FailureEvaluation) so the optimizer steers away from the region
// instead of stalling, and emits TrialFailed with Permanent set.
type RetryPolicy struct {
	// MaxAttempts is the total number of evaluation attempts per trial,
	// the first try included; values below 1 mean 1 (no retries).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Backoff is the wait before the second attempt; each further
	// attempt doubles it. Zero retries immediately.
	Backoff time.Duration `json:"backoffNs,omitempty"`
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration `json:"maxBackoffNs,omitempty"`
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay returns the backoff before the given attempt (2-based: the
// first retry is attempt 2).
func (p RetryPolicy) delay(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt <= 1 {
		return 0
	}
	d := p.Backoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// retryRun is the attempt loop shared by the session drivers and the
// protocol's best-config re-runs: evaluate tr against bk, re-attempting
// lost evaluations per policy, with each attempt bounded by the trial's
// deadline. tr.Attempt carries the failures already consumed (resumed
// trials continue their budget; an attempt interrupted by ctx burns
// nothing). onFail, when non-nil, is invoked after each failed attempt
// — before the backoff, with permanent=true when the budget is spent.
//
// ok is false when ctx was cancelled before a result or a permanent
// failure was reached; otherwise err carries the permanent evaluation
// failure, if any.
func retryRun(ctx context.Context, bk Backend, tr Trial, policy RetryPolicy,
	onFail func(tr Trial, attempt int, err error, permanent bool)) (res storm.Result, err error, ok bool) {
	attempt := tr.Attempt
	for {
		attempt++
		tr.Attempt = attempt
		runCtx, cancel := trialContext(ctx, tr)
		res, err = bk.Run(runCtx, tr)
		cancel()
		if err == nil {
			return res, nil, true
		}
		if ctx.Err() != nil {
			// The caller is being cancelled: the trial was not
			// permanently lost, so no retry budget is consumed.
			return storm.Result{}, nil, false
		}
		if attempt >= policy.maxAttempts() {
			if onFail != nil {
				onFail(tr, attempt, err, true)
			}
			return storm.Result{}, err, true
		}
		if onFail != nil {
			onFail(tr, attempt, err, false)
		}
		if d := policy.delay(attempt + 1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return storm.Result{}, nil, false
			case <-t.C:
			}
		}
	}
}

// trialContext derives the context one evaluation attempt runs under,
// applying the trial's deadline when set.
func trialContext(ctx context.Context, tr Trial) (context.Context, context.CancelFunc) {
	if tr.Timeout > 0 {
		return context.WithTimeout(ctx, tr.Timeout)
	}
	return context.WithCancel(ctx)
}

// NewPoolBackend distributes concurrent trials over a pool of member
// backends: each Run borrows a free member for the duration of the
// evaluation, so a session driving q concurrent trials (RunAsync or
// RunBatch) saturates up to q workers — the one-session, many-worker-
// processes deployment the remote backend enables. Run blocks until a
// member is free or ctx is done. The returned pool satisfies Backend
// and additionally exposes per-worker counters through Stats — the
// dashboard's "workers" table.
func NewPoolBackend(members ...Backend) (*PoolBackend, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: pool backend needs at least one member")
	}
	p := &PoolBackend{
		free:    make(chan *poolWorker, len(members)),
		workers: make([]*poolWorker, len(members)),
	}
	for i, b := range members {
		if b == nil {
			return nil, fmt.Errorf("core: pool backend member %d is nil", i)
		}
		label := fmt.Sprintf("worker-%d", i)
		// A remote backend knows its server address; prefer it as the
		// human-readable label.
		if u, ok := b.(interface{ URL() string }); ok {
			label = u.URL()
		}
		w := &poolWorker{bk: b, label: label}
		p.workers[i] = w
		p.free <- w
	}
	return p, nil
}

// WorkerStats is one pool member's live counters.
type WorkerStats struct {
	// Worker labels the member: the remote backend's URL when it has
	// one, "worker-N" otherwise.
	Worker string `json:"worker"`
	// InFlight is the number of evaluations the member is running now.
	InFlight int `json:"inFlight"`
	// Completed counts evaluations that returned a measurement.
	Completed int64 `json:"completed"`
	// Errors counts evaluations the member lost (Backend.Run errors);
	// the session's RetryPolicy decides what happens next.
	Errors int64 `json:"errors"`
}

type poolWorker struct {
	bk    Backend
	label string

	inFlight  atomic.Int64
	completed atomic.Int64
	errors    atomic.Int64
}

// PoolBackend fans one session's concurrent trials out over a fixed
// set of member backends. See NewPoolBackend.
type PoolBackend struct {
	free    chan *poolWorker
	workers []*poolWorker
}

// Run implements Backend.
func (p *PoolBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	select {
	case w := <-p.free:
		defer func() { p.free <- w }()
		w.inFlight.Add(1)
		defer w.inFlight.Add(-1)
		start := time.Now()
		res, err := w.bk.Run(ctx, tr)
		switch {
		case err == nil:
			w.completed.Add(1)
		case ctx.Err() == nil:
			// Worker-originated failure: the context is intact, the
			// member lost the measurement on its own.
			w.errors.Add(1)
		case tr.Timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) &&
			time.Since(start) >= tr.Timeout*9/10:
			// The trial's deadline expired while this member held it for
			// essentially the whole budget: the member was too slow — a
			// loss chargeable to it. The duration guard keeps the common
			// non-worker causes out of the count (a deadline mostly
			// consumed queueing for a free member; a session-wide
			// deadline cutting an evaluation short); a session deadline
			// that happens to expire within the trial budget's final
			// tenth is still misattributed — a bounded, accepted
			// imprecision. A plain cancellation says nothing about the
			// member and counts nowhere.
			w.errors.Add(1)
		}
		return res, err
	case <-ctx.Done():
		return storm.Result{}, ctx.Err()
	}
}

// Size returns the number of pool members.
func (p *PoolBackend) Size() int { return len(p.workers) }

// Stats samples every member's counters, in construction order. It is
// safe to call concurrently with Run — the dashboard polls it while
// trials are in flight.
func (p *PoolBackend) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStats{
			Worker:    w.label,
			InFlight:  int(w.inFlight.Load()),
			Completed: w.completed.Load(),
			Errors:    w.errors.Load(),
		}
	}
	return out
}
