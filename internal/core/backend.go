package core

import (
	"context"
	"errors"
	"time"

	"stormtune/internal/storm"
)

// Backend evaluates trials. It is the session's view of whatever runs
// the measurements — the bundled simulators (via AsBackend), a remote
// evaluation service, or a caller's own cluster harness.
//
// Run must honor ctx: the session passes a context carrying its
// cancellation and, when the trial has a deadline (Trial.Timeout), that
// deadline. The two return paths mean different things:
//
//   - (Result, nil): the measurement happened. A Result with Failed set
//     is still a valid observation — the configuration performs at zero
//     (e.g. the scheduler could not place it) — and is fed to the
//     optimizer as such.
//   - (_, error): the measurement was lost — timeout, dropped
//     connection, crashed worker. Nothing was observed; the session's
//     RetryPolicy decides whether to retry the trial or give up and
//     record a pessimistic storm.FailedResult.
//
// Run must be safe for concurrent use: the batch and async drivers
// evaluate several trials at once.
type Backend interface {
	Run(ctx context.Context, tr Trial) (storm.Result, error)
}

// EvaluatorBackend adapts a storm.Evaluator — both simulators, and any
// wrapper like storm.Averaged or storm.Jittered — to the Backend
// contract. The evaluator cannot be interrupted mid-measurement, so
// cancellation is checked before the run starts; simulator runs are
// fast enough that this is where cancellation matters.
type EvaluatorBackend struct {
	Ev storm.Evaluator
}

// AsBackend wraps an evaluator as a Backend; a nil evaluator yields a
// nil Backend (an ask/tell-only session).
func AsBackend(ev storm.Evaluator) Backend {
	if ev == nil {
		return nil
	}
	return &EvaluatorBackend{Ev: ev}
}

// Run implements Backend. An evaluator that understands simulated time
// (storm.TimedEvaluator — drifting workloads) measures at the trial's
// SimTime; stationary evaluators ignore it.
func (b *EvaluatorBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	if err := ctx.Err(); err != nil {
		return storm.Result{}, err
	}
	if te, ok := b.Ev.(storm.TimedEvaluator); ok {
		return te.RunAt(tr.Config, tr.RunIndex, tr.SimTime), nil
	}
	return b.Ev.Run(tr.Config, tr.RunIndex), nil
}

// Metric exposes the wrapped evaluator's throughput definition.
func (b *EvaluatorBackend) Metric() storm.Metric { return b.Ev.Metric() }

// RetryPolicy governs how a session handles trials whose evaluation
// errors (Backend.Run returning a non-nil error — a lost measurement,
// not a zero-performing configuration). The zero value never retries:
// the first error is permanent.
//
// After a permanent failure — the attempt budget is spent — the session
// records a pessimistic observation (storm.FailedResult with
// FailureEvaluation) so the optimizer steers away from the region
// instead of stalling, and emits TrialFailed with Permanent set.
type RetryPolicy struct {
	// MaxAttempts is the total number of evaluation attempts per trial,
	// the first try included; values below 1 mean 1 (no retries).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Backoff is the wait before the second attempt; each further
	// attempt doubles it. Zero retries immediately.
	Backoff time.Duration `json:"backoffNs,omitempty"`
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration `json:"maxBackoffNs,omitempty"`
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay returns the backoff before the given attempt (2-based: the
// first retry is attempt 2).
func (p RetryPolicy) delay(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt <= 1 {
		return 0
	}
	d := p.Backoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// IsPermanentBackendErr reports whether the backend error declares
// itself unretryable via a `Permanent() bool` method anywhere in its
// chain — rejected credentials, a worker that does not serve the
// trial's topology. Re-sending the identical request cannot succeed,
// so the retry loop fails the trial immediately instead of burning its
// attempt budget on a foregone conclusion.
func IsPermanentBackendErr(err error) bool {
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}

// isOverloadedErr detects admission-control refusals (a worker at
// capacity declined the run before evaluating) via the `Overloaded()
// bool` marker. Nothing was lost; the pool sheds the trial elsewhere.
func isOverloadedErr(err error) bool {
	var o interface{ Overloaded() bool }
	return errors.As(err, &o) && o.Overloaded()
}

// isUnreachableErr detects transport-level failures (no HTTP reply at
// all) via the `Unreachable() bool` marker; the pool's health tracking
// counts these toward member eviction.
func isUnreachableErr(err error) bool {
	var u interface{ Unreachable() bool }
	return errors.As(err, &u) && u.Unreachable()
}

// retryAfterHint extracts the server-suggested wait from an overloaded
// error (via the `RetryAfterHint() time.Duration` accessor the remote
// package's OverloadedError provides), zero when it carries none.
func retryAfterHint(err error) time.Duration {
	var r interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &r) {
		return r.RetryAfterHint()
	}
	return 0
}

// retryRun is the attempt loop shared by the session drivers and the
// protocol's best-config re-runs: evaluate tr against bk, re-attempting
// lost evaluations per policy, with each attempt bounded by the trial's
// deadline. tr.Attempt carries the failures already consumed (resumed
// trials continue their budget; an attempt interrupted by ctx burns
// nothing). onFail, when non-nil, is invoked after each failed attempt
// — before the backoff, with permanent=true when the budget is spent.
// An error that declares itself permanent (IsPermanentBackendErr) fails
// the trial on the spot: no amount of retrying fixes bad credentials or
// a worker that does not serve the topology.
//
// ok is false when ctx was cancelled before a result or a permanent
// failure was reached; otherwise err carries the permanent evaluation
// failure, if any.
func retryRun(ctx context.Context, bk Backend, tr Trial, policy RetryPolicy,
	onFail func(tr Trial, attempt int, err error, permanent bool)) (res storm.Result, err error, ok bool) {
	attempt := tr.Attempt
	for {
		attempt++
		tr.Attempt = attempt
		runCtx, cancel := trialContext(ctx, tr)
		res, err = bk.Run(runCtx, tr)
		cancel()
		if err == nil {
			return res, nil, true
		}
		if ctx.Err() != nil {
			// The caller is being cancelled: the trial was not
			// permanently lost, so no retry budget is consumed.
			return storm.Result{}, nil, false
		}
		if attempt >= policy.maxAttempts() || IsPermanentBackendErr(err) {
			if onFail != nil {
				onFail(tr, attempt, err, true)
			}
			return storm.Result{}, err, true
		}
		if onFail != nil {
			onFail(tr, attempt, err, false)
		}
		if d := policy.delay(attempt + 1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return storm.Result{}, nil, false
			case <-t.C:
			}
		}
	}
}

// trialContext derives the context one evaluation attempt runs under,
// applying the trial's deadline when set.
func trialContext(ctx context.Context, tr Trial) (context.Context, context.CancelFunc) {
	if tr.Timeout > 0 {
		return context.WithTimeout(ctx, tr.Timeout)
	}
	return context.WithCancel(ctx)
}

// The pool backend (NewPoolBackend and friends) lives in pool.go.
