package core

import (
	"time"

	"stormtune/internal/storm"
)

// Event is a typed notification emitted by a tuning session. The
// concrete types are TrialStarted, TrialCompleted, TrialFailed,
// TrialRetried, NewBest, PassCompleted and ParallelismClamped; switch
// on them to react to the ones of interest.
type Event interface{ sessionEvent() }

// TrialStarted reports that a trial has been handed out for evaluation
// (by Propose or one of the drivers).
type TrialStarted struct {
	Trial Trial
}

// TrialCompleted reports that a trial's measurement was fed back into
// the session.
type TrialCompleted struct {
	Trial  Trial
	Result storm.Result
}

// TrialFailed reports that an evaluation attempt errored: the
// measurement was lost (timeout, dropped connection, crashed run), not
// merely zero. With Permanent false the session will retry the trial
// (a TrialRetried event follows); with Permanent true the retry budget
// is spent and the session records a pessimistic failed observation —
// the TrialCompleted that follows carries it.
type TrialFailed struct {
	Trial Trial
	// Attempt is the 1-based evaluation attempt that failed.
	Attempt int
	// Err is the backend's evaluation error.
	Err error
	// Permanent marks the retry budget as exhausted.
	Permanent bool
}

// TrialRetried reports that a failed trial is being re-attempted after
// the backoff elapses.
type TrialRetried struct {
	Trial Trial
	// Attempt is the 1-based attempt about to start.
	Attempt int
	// Backoff is the wait before the attempt.
	Backoff time.Duration
	// Err is the error being retried.
	Err error
}

// NewBest reports that a completed trial improved on the best
// throughput seen so far in this session.
type NewBest struct {
	Trial  Trial
	Result storm.Result
}

// PassCompleted reports that a driver (Run, RunBatch, RunAsync) has
// finished — the budget is spent, the strategy is exhausted, the
// zero-performance stopping rule fired, or the context was cancelled.
type PassCompleted struct {
	// Steps is the number of completed (reported) trials.
	Steps int
	// Best is the winning record; Found is false when every run failed.
	Best  RunRecord
	Found bool
}

// ParallelismClamped reports that a driver reduced its requested
// parallelism to the cluster's concurrent-trial capacity instead of
// oversubscribing it.
type ParallelismClamped struct {
	Requested int
	Allowed   int
}

// HoldSampled reports one monitoring measurement of the incumbent
// taken while a continuous-tuning watch holds between retunes.
type HoldSampled struct {
	// SimTime is the simulated timestamp of the sample.
	SimTime float64
	// Result is the incumbent's measurement at that instant.
	Result storm.Result
	// Baseline is the monitor's current rolling performance estimate
	// (utilization when the workload reports offered load, raw
	// throughput otherwise); zero until the baseline window fills.
	Baseline float64
}

// RetuneTriggered reports that a watch's degradation monitor fired:
// the incumbent has sustainedly underperformed its rolling baseline
// (or sustained backpressure) and a conservative retune episode is
// starting.
type RetuneTriggered struct {
	// Episode is the 1-based retune episode index within the watch.
	Episode int
	// SimTime is the simulated timestamp of the trigger.
	SimTime float64
	// Baseline is the rolling performance estimate the incumbent was
	// held against.
	Baseline float64
	// Current is the degraded performance estimate that tripped the
	// monitor.
	Current float64
	// Reason distinguishes the trigger path: "degradation" or
	// "backpressure".
	Reason string
}

// RetuneCompleted reports that a retune episode's conservative BO
// session finished and the watch is holding on a (possibly new)
// incumbent.
type RetuneCompleted struct {
	// Episode matches the RetuneTriggered that started the episode.
	Episode int
	// SimTime is the simulated timestamp at completion.
	SimTime float64
	// Steps is the number of retune trials evaluated.
	Steps int
	// Best is the incumbent the watch holds after the episode; Found
	// is false when every retune trial failed (the old incumbent is
	// kept).
	Best  RunRecord
	Found bool
}

func (TrialStarted) sessionEvent()       {}
func (TrialCompleted) sessionEvent()     {}
func (TrialFailed) sessionEvent()        {}
func (TrialRetried) sessionEvent()       {}
func (NewBest) sessionEvent()            {}
func (PassCompleted) sessionEvent()      {}
func (ParallelismClamped) sessionEvent() {}
func (HoldSampled) sessionEvent()        {}
func (RetuneTriggered) sessionEvent()    {}
func (RetuneCompleted) sessionEvent()    {}

// Observer receives session events. Callbacks are serialized — at most
// one runs at a time — but with a concurrent driver (RunBatch,
// RunAsync) the TrialFailed/TrialRetried events of different in-flight
// trials may interleave with the main stream, each from its evaluation
// goroutine. Callbacks must not block for long and may call
// Session.Snapshot but no other session methods.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }
