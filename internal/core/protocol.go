package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/stats"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Protocol captures the experimental procedure of §V-A: run the
// optimizer for a step budget (twice, keeping the better pass, "given
// that our approach is probabilistic"), stop pla-style strategies after
// three consecutive zero-performance runs, then re-run the best
// configuration 30 times and report min/avg/max.
type Protocol struct {
	// Steps is the evaluation budget per pass (60 in the paper; 180 for
	// bo180).
	Steps int
	// Passes is the number of independent optimization passes (2).
	Passes int
	// BestReruns is how often the winning configuration is re-measured
	// (30).
	BestReruns int
	// StopAfterZeros stops a pass after this many consecutive
	// zero-performance runs; 0 disables (used for bo). The paper uses 3
	// for the linear strategies.
	StopAfterZeros int
	// Seed decorrelates passes and noise.
	Seed int64
	// Concurrency > 1 dispatches that many trial deployments per round
	// (constant-liar batches for BO strategies) and evaluates them in
	// parallel — the concurrent-trials extension; ≤ 1 reproduces the
	// paper's strictly sequential procedure.
	Concurrency int
	// Async switches the concurrent dispatch from barrier batches to
	// free-slot refill (a replacement trial starts the moment any
	// in-flight one completes). Only meaningful with Concurrency > 1.
	Async bool
	// Retry governs lost evaluations within each pass (see
	// SessionOptions.Retry); the zero value never retries.
	Retry RetryPolicy
	// TrialTimeout bounds each evaluation attempt; zero disables.
	TrialTimeout time.Duration
	// Observer, when set, receives each pass's session events.
	Observer Observer
}

// DefaultProtocol returns the paper's settings.
func DefaultProtocol() Protocol {
	return Protocol{Steps: 60, Passes: 2, BestReruns: 30, StopAfterZeros: 3, Seed: 1}
}

// StrategyFactory builds a fresh strategy for a pass; pass numbering
// starts at 0 and should vary the strategy's seed.
type StrategyFactory func(pass int) Strategy

// Outcome aggregates a full protocol execution for one strategy.
type Outcome struct {
	Strategy string
	// Passes holds each optimization pass.
	Passes []TuneResult
	// BestPass indexes the pass whose best run won.
	BestPass int
	// BestConfig is the winning configuration.
	BestConfig storm.Config
	// Summary is the min/avg/max over the 30 re-runs of BestConfig.
	Summary stats.Summary
	// RerunSamples holds the raw re-run measurements (for t-tests).
	RerunSamples []float64
	// StepsToBest is BestStep per pass (Figure 5 plots min/avg/max over
	// passes).
	StepsToBest []int
	// MeanDecisionSec is the average optimizer decision time per pass
	// (Figure 7).
	MeanDecisionSec []float64
}

// RunProtocol executes the protocol for one strategy family against a
// backend (wrap a simulator with AsBackend).
func RunProtocol(bk Backend, factory StrategyFactory, p Protocol) Outcome {
	out, _ := RunProtocolContext(context.Background(), bk, factory, p)
	return out
}

// RunProtocolContext executes the protocol with cancellation: each pass
// runs as a tuning session honoring ctx, and a cancelled protocol
// returns the passes (and partial pass) completed so far together with
// ctx's error. The re-runs of the winning configuration are skipped on
// cancellation; a re-run whose evaluation is lost contributes a zero
// sample (the passes themselves retry per Protocol.Retry).
func RunProtocolContext(ctx context.Context, bk Backend, factory StrategyFactory, p Protocol) (Outcome, error) {
	if p.Steps <= 0 {
		p.Steps = 60
	}
	if p.Passes <= 0 {
		p.Passes = 2
	}
	if p.BestReruns <= 0 {
		p.BestReruns = 30
	}
	out := Outcome{BestPass: -1}
	bestThroughput := -1.0
	for pass := 0; pass < p.Passes; pass++ {
		strat := factory(pass)
		if out.Strategy == "" {
			out.Strategy = strat.Name()
		}
		runOffset := pass * (p.Steps + p.BestReruns + 1000)
		sess := NewSession(strat, bk, SessionOptions{
			MaxSteps:       p.Steps,
			StopAfterZeros: p.StopAfterZeros,
			RunOffset:      runOffset,
			Retry:          p.Retry,
			TrialTimeout:   p.TrialTimeout,
			Observer:       p.Observer,
		})
		var tr TuneResult
		var err error
		if p.Async && p.Concurrency > 1 {
			tr, err = sess.RunAsync(ctx, p.Concurrency)
		} else {
			tr, err = sess.RunBatch(ctx, p.Concurrency)
		}
		out.Passes = append(out.Passes, tr)
		out.StepsToBest = append(out.StepsToBest, tr.BestStep)
		out.MeanDecisionSec = append(out.MeanDecisionSec, tr.MeanDecisionSeconds())
		if best, ok := tr.Best(); ok && best.Result.Throughput > bestThroughput {
			bestThroughput = best.Result.Throughput
			out.BestPass = pass
			out.BestConfig = best.Config
		}
		if err != nil {
			return out, err
		}
	}
	if out.BestPass < 0 || ctx.Err() != nil {
		return out, ctx.Err()
	}
	// Re-run the winning configuration. Both simulators are pure per
	// Run call, so the re-runs fan out across cores; results stay
	// deterministic because the noise draw depends only on (config,
	// run index).
	vals := make([]float64, p.BestReruns)
	finished := make([]bool, p.BestReruns)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i := 0; i < p.BestReruns; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Re-runs honor the same retry policy as the passes; a
			// re-run lost past the retry budget contributes a zero
			// sample, but one interrupted by cancellation contributes
			// nothing — phantom zeros would corrupt the summary.
			tr := Trial{ID: -1, Config: out.BestConfig, RunIndex: 1_000_000 + i, Timeout: p.TrialTimeout}
			res, _, ok := retryRun(ctx, bk, tr, p.Retry, nil)
			if ok {
				vals[i], finished[i] = res.Throughput, true
			}
		}(i)
	}
	wg.Wait()
	samples := vals[:0:0]
	for i, ok := range finished {
		if ok {
			samples = append(samples, vals[i])
		}
	}
	if len(samples) > 0 {
		out.Summary = stats.Summarize(samples)
	}
	out.RerunSamples = samples
	return out, ctx.Err()
}

// StrategySet names the strategy families of Figure 4.
var StrategySet = []string{"pla", "bo", "ipla", "ibo"}

// MakeFactory builds the named strategy family for a synthetic
// topology experiment.
func MakeFactory(name string, t *topo.Topology, spec cluster.Spec, template storm.Config, seed int64, opt BOOptions) (StrategyFactory, error) {
	switch name {
	case "pla":
		return func(int) Strategy { return NewPLA(t, template) }, nil
	case "ipla":
		return func(int) Strategy { return NewIPLA(t, template) }, nil
	case "bo", "bo180":
		return func(pass int) Strategy {
			o := opt
			o.Set = Hints
			o.Seed = seed + int64(pass)*7919
			return NewBO(t, spec, template, o)
		}, nil
	case "ibo":
		return func(pass int) Strategy {
			o := opt
			o.Set = InformedHints
			o.Seed = seed + int64(pass)*7919
			return NewBO(t, spec, template, o)
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", name)
	}
}
