package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stormtune/internal/cluster"
	"stormtune/internal/storm"
)

func newTestBO(seed int64) *BOStrategy {
	o := fastBOOpts()
	o.Seed = seed
	return NewBO(testTopo(), cluster.Small(), storm.DefaultSyntheticConfig(testTopo(), 1), o)
}

func sameRecords(t *testing.T, a, b []RunRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Step != b[i].Step {
			t.Fatalf("record %d step %d vs %d", i, a[i].Step, b[i].Step)
		}
		if a[i].Config.Fingerprint() != b[i].Config.Fingerprint() {
			t.Fatalf("record %d configs differ", i)
		}
		if a[i].Result.Throughput != b[i].Result.Throughput {
			t.Fatalf("record %d throughput %v vs %v", i, a[i].Result.Throughput, b[i].Result.Throughput)
		}
	}
}

// TestSessionAskTellMatchesTune drives a session by hand through
// Propose/Report and checks the result is identical to the one-shot
// Tune driver with the same seed.
func TestSessionAskTellMatchesTune(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	want := Tune(f, newTestBO(9), 12, 0, 0)

	sess := NewSession(newTestBO(9), nil, SessionOptions{MaxSteps: 12})
	ctx := context.Background()
	for {
		trials, err := sess.Propose(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) == 0 {
			break
		}
		tr := trials[0]
		if err := sess.Report(tr, f.Run(tr.Config, tr.RunIndex)); err != nil {
			t.Fatal(err)
		}
	}
	got := sess.Result()
	sameRecords(t, want.Records, got.Records)
	if want.BestStep != got.BestStep {
		t.Fatalf("best step %d vs %d", want.BestStep, got.BestStep)
	}
}

// TestSessionRunAsyncOneSlotMatchesTune: at q=1 the free-slot driver is
// exactly the sequential driver.
func TestSessionRunAsyncOneSlotMatchesTune(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	want := Tune(f, newTestBO(4), 10, 0, 0)
	sess := NewSession(newTestBO(4), AsBackend(f), SessionOptions{MaxSteps: 10})
	got, err := sess.RunAsync(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, want.Records, got.Records)
}

// TestSessionSnapshotResumeBitIdentical snapshots a sequential run
// mid-way, resumes it with a fresh strategy, and checks the combined
// run matches an uninterrupted one record for record.
func TestSessionSnapshotResumeBitIdentical(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	full := Tune(f, newTestBO(7), 16, 0, 0)

	half := NewSession(newTestBO(7), AsBackend(f), SessionOptions{MaxSteps: 8})
	if _, err := half.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := half.Snapshot()

	resumed, err := ResumeSession(st, newTestBO(7), AsBackend(f), SessionOptions{MaxSteps: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, full.Records, got.Records)
	if full.BestStep != got.BestStep {
		t.Fatalf("best step %d vs %d", full.BestStep, got.BestStep)
	}
}

// TestSessionSnapshotCarriesPendingTrials: a snapshot taken between a
// proposal and its report re-dispatches the trial on resume with its
// original run index.
func TestSessionSnapshotCarriesPendingTrials(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	full := Tune(f, newTestBO(3), 10, 0, 0)

	sess := NewSession(newTestBO(3), AsBackend(f), SessionOptions{MaxSteps: 10})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		trials, err := sess.Propose(ctx, 1)
		if err != nil || len(trials) == 0 {
			t.Fatalf("propose %d: %v", i, err)
		}
		tr := trials[0]
		if err := sess.Report(tr, f.Run(tr.Config, tr.RunIndex)); err != nil {
			t.Fatal(err)
		}
	}
	// Propose the 6th trial but snapshot before reporting it.
	trials, err := sess.Propose(ctx, 1)
	if err != nil || len(trials) != 1 {
		t.Fatalf("propose pending: %v", err)
	}
	st := sess.Snapshot()
	if len(st.Pending) != 1 || st.Pending[0].ID != 6 {
		t.Fatalf("snapshot pending = %+v", st.Pending)
	}

	resumed, err := ResumeSession(st, newTestBO(3), AsBackend(f), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Pending(); len(got) != 1 || got[0].RunIndex != 6 {
		t.Fatalf("resumed pending = %+v", got)
	}
	res, err := resumed.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, full.Records, res.Records)
}

// TestResumeSessionRejectsDivergingStrategy: replay cross-checks the
// regenerated configurations, so resuming with the wrong seed fails
// loudly instead of silently corrupting the run.
func TestResumeSessionRejectsDivergingStrategy(t *testing.T) {
	f := testEval(testTopo())
	sess := NewSession(newTestBO(7), AsBackend(f), SessionOptions{MaxSteps: 6})
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSession(sess.Snapshot(), newTestBO(8), AsBackend(f), SessionOptions{}); err == nil {
		t.Fatal("resume with a different seed should fail the replay cross-check")
	}
}

// TestSessionReportUnknownTrial rejects results for trials the session
// never proposed (or already consumed).
func TestSessionReportUnknownTrial(t *testing.T) {
	f := testEval(testTopo())
	sess := NewSession(newTestBO(1), AsBackend(f), SessionOptions{MaxSteps: 4})
	if err := sess.Report(Trial{ID: 99}, storm.Result{}); err == nil {
		t.Fatal("expected error for unknown trial")
	}
	trials, err := sess.Propose(context.Background(), 1)
	if err != nil || len(trials) != 1 {
		t.Fatal("propose failed")
	}
	if err := sess.Report(trials[0], storm.Result{Throughput: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Report(trials[0], storm.Result{Throughput: 1}); err == nil {
		t.Fatal("double report should fail")
	}
}

// TestSessionEmitsEvents checks the typed event stream of a sequential
// driver run: started/completed per trial, NewBest on improvements, one
// PassCompleted at the end.
func TestSessionEmitsEvents(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	var started, completed, newBest, passDone int
	lastCompleted := 0
	obs := ObserverFunc(func(e Event) {
		switch ev := e.(type) {
		case TrialStarted:
			started++
			if ev.Trial.ID != started {
				t.Errorf("TrialStarted id %d at position %d", ev.Trial.ID, started)
			}
		case TrialCompleted:
			completed++
			lastCompleted = ev.Trial.ID
		case NewBest:
			newBest++
			if ev.Trial.ID != lastCompleted {
				t.Errorf("NewBest for trial %d before its TrialCompleted", ev.Trial.ID)
			}
		case PassCompleted:
			passDone++
			if ev.Steps != completed {
				t.Errorf("PassCompleted.Steps = %d, completed %d", ev.Steps, completed)
			}
			if !ev.Found {
				t.Error("PassCompleted.Found = false on a healthy run")
			}
		}
	})
	sess := NewSession(newTestBO(2), AsBackend(f), SessionOptions{MaxSteps: 8, Observer: obs})
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if started != 8 || completed != 8 {
		t.Fatalf("started %d completed %d, want 8/8", started, completed)
	}
	if newBest == 0 {
		t.Fatal("no NewBest events")
	}
	if passDone != 1 {
		t.Fatalf("PassCompleted emitted %d times", passDone)
	}
}

// TestSessionRunHonorsCancellation: a cancelled context stops the
// driver promptly, surfaces ctx.Err(), and keeps the partial records.
func TestSessionRunHonorsCancellation(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	obs := ObserverFunc(func(e Event) {
		if _, ok := e.(TrialCompleted); ok {
			n++
			if n == 3 {
				cancel()
			}
		}
	})
	sess := NewSession(newTestBO(2), AsBackend(f), SessionOptions{MaxSteps: 50, Observer: obs})
	res, err := sess.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("cancelled after 3 completions but kept %d records", len(res.Records))
	}
}

// trackingEval counts evaluator runs and the peak number running
// concurrently.
type trackingEval struct {
	inner    storm.Evaluator
	runs     atomic.Int32
	inflight atomic.Int32
	peak     atomic.Int32
}

func (e *trackingEval) Run(cfg storm.Config, runIndex int) storm.Result {
	e.runs.Add(1)
	cur := e.inflight.Add(1)
	for {
		p := e.peak.Load()
		if cur <= p || e.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	time.Sleep(time.Millisecond)
	defer e.inflight.Add(-1)
	return e.inner.Run(cfg, runIndex)
}

func (e *trackingEval) Metric() storm.Metric { return e.inner.Metric() }

// TestResumedRunHonorsCancelledContext: a resumed session with carried
// pending trials must not evaluate any of them under a context that is
// already cancelled (they may be real cluster deployments).
func TestResumedRunHonorsCancelledContext(t *testing.T) {
	f := testEval(testTopo())
	sess := NewSession(newTestBO(5), nil, SessionOptions{MaxSteps: 8})
	if _, err := sess.Propose(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	st := sess.Snapshot()

	tracked := &trackingEval{inner: f}
	resumed, err := ResumeSession(st, newTestBO(5), AsBackend(tracked), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() (TuneResult, error){
		"Run":      func() (TuneResult, error) { return resumed.Run(ctx) },
		"RunBatch": func() (TuneResult, error) { return resumed.RunBatch(ctx, 2) },
		"RunAsync": func() (TuneResult, error) { return resumed.RunAsync(ctx, 2) },
	} {
		if _, err := run(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if n := tracked.runs.Load(); n != 0 {
			t.Fatalf("%s evaluated %d carried trials under a cancelled context", name, n)
		}
	}
	if got := resumed.Pending(); len(got) != 3 {
		t.Fatalf("pending trials lost: %d left, want 3", len(got))
	}
}

// TestResumedRunBatchChunksCarryToQ: carried pending trials are
// re-dispatched in rounds of at most q, not as one oversized barrier.
func TestResumedRunBatchChunksCarryToQ(t *testing.T) {
	f := testEval(testTopo())
	sess := NewSession(newTestBO(6), nil, SessionOptions{MaxSteps: 5})
	if _, err := sess.Propose(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	tracked := &trackingEval{inner: f}
	resumed, err := ResumeSession(sess.Snapshot(), newTestBO(6), AsBackend(tracked), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.RunBatch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("completed %d records, want 5", len(res.Records))
	}
	if p := tracked.peak.Load(); p > 2 {
		t.Fatalf("carry dispatched %d trials concurrently, q=2", p)
	}
}

// TestSessionProposeFillIsAtomic: concurrent ProposeFill callers never
// jointly exceed the in-flight cap.
func TestSessionProposeFillIsAtomic(t *testing.T) {
	sess := NewSession(newTestBO(2), nil, SessionOptions{MaxSteps: 40})
	const fill = 3
	var wg sync.WaitGroup
	issued := make([][]Trial, 8)
	for i := range issued {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trials, err := sess.ProposeFill(context.Background(), fill)
			if err != nil {
				t.Error(err)
			}
			issued[i] = trials
		}(i)
	}
	wg.Wait()
	total := 0
	for _, ts := range issued {
		total += len(ts)
	}
	if total > fill {
		t.Fatalf("concurrent ProposeFill issued %d trials, cap %d", total, fill)
	}
	if got := len(sess.Pending()); got != total {
		t.Fatalf("pending %d != issued %d", got, total)
	}
}

// TestSessionRunBatchMatchesTuneBatch: the session batch driver is the
// implementation under the legacy TuneBatch wrapper; both entry points
// must agree.
func TestSessionRunBatchMatchesTuneBatch(t *testing.T) {
	tp := testTopo()
	f := testEval(tp)
	want := TuneBatch(f, newTestBO(5), 12, 3, 0, 0)
	sess := NewSession(newTestBO(5), AsBackend(f), SessionOptions{MaxSteps: 12})
	got, err := sess.RunBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, want.Records, got.Records)
}

// TestSessionDecisionTimes: per-record decision time stays comparable
// between drivers (amortized over the batch).
func TestSessionDecisionTimes(t *testing.T) {
	f := testEval(testTopo())
	sess := NewSession(newTestBO(6), AsBackend(f), SessionOptions{MaxSteps: 6})
	res, err := sess.RunBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, r := range res.Records {
		total += r.Decision
	}
	if total <= 0 {
		t.Fatal("no decision time recorded")
	}
}
