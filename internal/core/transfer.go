package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"stormtune/internal/archive"
	"stormtune/internal/cluster"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// WarmStartOptions configure transfer learning from an archive of past
// tuning runs. The zero value disables transfer entirely; enabling it
// never changes behavior when the archive holds no sufficiently
// similar donor (the negative-transfer guard).
type WarmStartOptions struct {
	// Enabled turns transfer on. Off by default.
	Enabled bool
	// TopK bounds how many archived donor sessions are consulted
	// (default 3).
	TopK int
	// Configs bounds how many warm-start configurations replace the
	// optimizer's Latin-hypercube budget (default: half the initial
	// design, at least one). The cap never exceeds the design size.
	Configs int
	// MinSimilarity is the negative-transfer guard: donors below this
	// similarity are ignored (default 0.35). Exact fingerprint matches
	// always qualify.
	MinSimilarity float64
	// Prior additionally fits an archived-runs prior on the GP mean
	// from the donors' z-scored observations, down-weighted by
	// similarity.
	Prior bool
	// PriorScale scales the prior's amplitude (default 1).
	PriorScale float64
}

func (ws WarmStartOptions) topK() int {
	if ws.TopK <= 0 {
		return 3
	}
	return ws.TopK
}

func (ws WarmStartOptions) minSimilarity() float64 {
	if ws.MinSimilarity <= 0 {
		return 0.35
	}
	return ws.MinSimilarity
}

func (ws WarmStartOptions) priorScale() float64 {
	if ws.PriorScale <= 0 {
		return 1
	}
	return ws.PriorScale
}

// transferPriorCap bounds how many historical observations feed the
// prior mean — enough to shape it, small enough that evaluating it per
// candidate stays cheap.
const transferPriorCap = 64

// TransferSeed is the fully materialized result of an archive query
// against one strategy's parameter space: the unit-cube warm-start
// points and the prior-mean training set. It is serializable so a
// snapshot can reapply the exact same transfer on resume — replay
// cross-checks proposal fingerprints, so the resumed warm design must
// be bit-identical to the original.
type TransferSeed struct {
	// Donor is the best-ranked donor session's archive key.
	Donor string `json:"donor"`
	// DonorFingerprint is that donor's topology fingerprint.
	DonorFingerprint uint64 `json:"donorFingerprint"`
	// Similarity is the best donor's similarity (1 for exact matches).
	Similarity float64 `json:"similarity"`
	// Exact marks an exact-fingerprint donor.
	Exact bool `json:"exact,omitempty"`
	// Points are the warm-start unit-cube points, issue order.
	Points [][]float64 `json:"points,omitempty"`
	// PriorU/PriorZ/PriorW are the prior-mean training set: unit-cube
	// inputs, per-donor z-scored objectives, and similarity weights.
	PriorU [][]float64 `json:"priorU,omitempty"`
	PriorZ []float64   `json:"priorZ,omitempty"`
	PriorW []float64   `json:"priorW,omitempty"`
	// PriorScale is the amplitude applied to the fitted prior,
	// serialized so resume reconstructs the identical mean function.
	PriorScale float64 `json:"priorScale,omitempty"`
}

// SessionMetaFor assembles the archive identity of a tuning session.
func SessionMetaFor(key string, t *topo.Topology, spec cluster.Spec, strategy string, set ParamSet, seed int64) archive.SessionMeta {
	return archive.SessionMeta{
		Key:         key,
		Fingerprint: t.Fingerprint(),
		Topology:    t.Name,
		Strategy:    strategy,
		Set:         int(set),
		Seed:        seed,
		Features:    archive.Extract(t, spec),
	}
}

// encodeCompat maps an archived configuration into this strategy's
// unit cube, ok=false when the parameter spaces do not match (a donor
// tuned with per-node hints on a different node count cannot be
// projected). Values outside the local bounds clamp at the cube edge.
func (s *BOStrategy) encodeCompat(cfg storm.Config) ([]float64, bool) {
	switch s.set {
	case Hints, HintsBatch, InformedHints:
		if len(cfg.Hints) != s.topology.N() {
			return nil, false
		}
	}
	return s.Encode(cfg), true
}

// ComputeTransfer queries the archive for donors relevant to the
// strategy's topology and materializes a TransferSeed: prior
// incumbents and top-k configurations mapped through matching
// parameter spaces become warm-start points, and (optionally) the
// donors' z-scored trial histories become a similarity-down-weighted
// prior on the GP mean. Donors tuned over a different ParamSet are
// skipped — their evidence lives in a different space. Returns nil
// when transfer is disabled or no donor clears the guard; the caller
// then proceeds exactly as a cold run. Deterministic for a fixed
// archive snapshot. meta carries the querying session's own identity
// (fingerprint, features, key) — its record is never its own donor.
func ComputeTransfer(s *BOStrategy, store archive.Store, meta archive.SessionMeta, ws WarmStartOptions) *TransferSeed {
	if !ws.Enabled || store == nil || s == nil {
		return nil
	}
	// Query extra slots so filtering out the session's own key (resume
	// re-attach) and mismatched parameter sets cannot starve the pool.
	ranked := archive.Query(store, meta.Fingerprint, meta.Features, ws.topK()+4)
	minSim := ws.minSimilarity()
	var donors []archive.Ranked
	for _, r := range ranked {
		if r.Rec.Meta.Key == meta.Key {
			continue // never transfer from this session's own record
		}
		if int(s.set) != r.Rec.Meta.Set {
			continue
		}
		if !r.Exact && r.Sim < minSim {
			continue
		}
		donors = append(donors, r)
		if len(donors) == ws.topK() {
			break
		}
	}
	if len(donors) == 0 {
		return nil
	}

	seed := &TransferSeed{
		Donor:            donors[0].Rec.Meta.Key,
		DonorFingerprint: donors[0].Rec.Meta.Fingerprint,
		Similarity:       donors[0].Sim,
		Exact:            donors[0].Exact,
		PriorScale:       ws.priorScale(),
	}

	maxPts := ws.Configs
	if maxPts <= 0 {
		maxPts = (s.opt.Opts.InitialDesign + 1) / 2
	}
	if maxPts > s.opt.Opts.InitialDesign {
		maxPts = s.opt.Opts.InitialDesign
	}
	if maxPts < 1 {
		maxPts = 1
	}
	// Warm points: donors in rank order, each contributing its best
	// configurations first, dedup across donors.
	for _, d := range donors {
		for _, tr := range d.Rec.TopK(maxPts) {
			u, ok := s.encodeCompat(tr.Config)
			if !ok {
				break // same ParamSet but incompatible shape: whole donor out
			}
			if containsVec(seed.Points, u) {
				continue
			}
			seed.Points = append(seed.Points, u)
			if len(seed.Points) == maxPts {
				break
			}
		}
		if len(seed.Points) == maxPts {
			break
		}
	}

	if ws.Prior {
		perDonor := transferPriorCap / len(donors)
		if perDonor < 1 {
			perDonor = 1
		}
		for _, d := range donors {
			zs, ok := zscores(d.Rec.Trials)
			if !ok {
				continue
			}
			taken := 0
			for i, tr := range d.Rec.Trials {
				u, enc := s.encodeCompat(tr.Config)
				if !enc {
					break
				}
				seed.PriorU = append(seed.PriorU, u)
				seed.PriorZ = append(seed.PriorZ, zs[i])
				seed.PriorW = append(seed.PriorW, d.Sim)
				taken++
				if taken == perDonor {
					break
				}
			}
		}
	}

	if len(seed.Points) == 0 && len(seed.PriorU) == 0 {
		return nil
	}
	return seed
}

// ApplyTransfer installs a transfer seed into the strategy's optimizer:
// warm-start points replace part of the Latin-hypercube budget, and the
// prior training set becomes a kernel-regression prior on the GP mean.
// Must run before the first suggestion; applying the same seed to a
// freshly built strategy reproduces the identical run (resume path).
// A nil seed is a no-op.
func (s *BOStrategy) ApplyTransfer(seed *TransferSeed) {
	if seed == nil {
		return
	}
	if len(seed.Points) > 0 {
		pts := make([][]float64, len(seed.Points))
		for i, p := range seed.Points {
			pts[i] = append([]float64(nil), p...)
		}
		s.opt.Opts.WarmStarts = pts
	}
	if len(seed.PriorU) > 0 {
		s.opt.Opts.PriorMean = transferPrior(seed.PriorU, seed.PriorZ, seed.PriorW, seed.PriorScale)
	}
}

// SetSharedSeeds pushes cross-session candidate configurations (fleet
// siblings' incumbents) into the optimizer: fresh ones take over the
// remaining initial-design slots and all of them join every model
// pass's candidate pool. Configurations the space cannot represent are
// dropped. Callers must hold the owning session's lock (use
// Session.UpdateStrategy).
func (s *BOStrategy) SetSharedSeeds(cfgs []storm.Config) {
	var us [][]float64
	for _, cfg := range cfgs {
		if u, ok := s.encodeCompat(cfg); ok {
			us = append(us, u)
		}
	}
	s.opt.SetSharedSeeds(us)
}

// transferPrior builds the archived-runs prior mean: Nadaraya-Watson
// kernel regression over the donors' z-scored observations, weighted
// by donor similarity and shrunk toward zero (the local surrogate's
// standardized mean) where the history is sparse — far from all donor
// evidence the prior vanishes and the run behaves cold.
func transferPrior(us [][]float64, zs, ws []float64, scale float64) func([]float64) float64 {
	const ell = 0.25   // kernel length scale in the unit cube
	const shrink = 1.0 // pseudo-weight pulling toward 0
	const clampZ = 2.0 // archived evidence never dominates local data
	if scale <= 0 {
		scale = 1
	}
	return func(u []float64) float64 {
		var num, den float64
		for i, ui := range us {
			d2 := 0.0
			for j := range u {
				dd := u[j] - ui[j]
				d2 += dd * dd
			}
			k := ws[i] * math.Exp(-d2/(2*ell*ell))
			num += k * zs[i]
			den += k
		}
		v := scale * num / (den + shrink)
		if v > clampZ {
			v = clampZ
		}
		if v < -clampZ {
			v = -clampZ
		}
		return v
	}
}

// zscores standardizes a donor's trial objectives within the donor
// (failed trials keep their zero objective — a cheap "avoid here"
// signal). ok is false when the history is empty or constant.
func zscores(trials []archive.TrialRecord) ([]float64, bool) {
	if len(trials) == 0 {
		return nil, false
	}
	mean := 0.0
	for _, tr := range trials {
		mean += tr.Y
	}
	mean /= float64(len(trials))
	variance := 0.0
	for _, tr := range trials {
		d := tr.Y - mean
		variance += d * d
	}
	variance /= float64(len(trials))
	if variance <= 0 {
		return nil, false
	}
	sd := math.Sqrt(variance)
	zs := make([]float64, len(trials))
	for i, tr := range trials {
		zs[i] = (tr.Y - mean) / sd
	}
	return zs, true
}

func containsVec(set [][]float64, u []float64) bool {
	for _, v := range set {
		if len(v) != len(u) {
			continue
		}
		same := true
		for i := range v {
			if v[i] != u[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// ArchiveRecorder is the session observer that appends completed
// trials to an archive store as they happen. OnEvent runs on the
// session's serialized observer dispatch — outside the session lock,
// off the propose/report hot path — so the store write never blocks a
// proposal (the emitnolock contract). On resume it skips steps the
// archive already holds, preventing double-appends when the archive is
// ahead of the snapshot.
type ArchiveRecorder struct {
	store archive.Store
	key   string

	mu sync.Mutex
	// seen holds every archived step — membership, not a high-water
	// mark, because concurrent trials complete out of order (trial 3
	// may report before trial 2) and a monotone cursor would silently
	// drop the laggard.
	seen   map[int]bool
	sealed bool
	err    error
}

// NewArchiveRecorder registers (or re-attaches) the session in the
// store and returns the observer. Steps the store already holds for
// the key are marked seen, so a resumed session double-appends
// nothing.
func NewArchiveRecorder(store archive.Store, meta archive.SessionMeta) (*ArchiveRecorder, error) {
	if err := store.Begin(meta); err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	if rec, ok := store.Get(meta.Key); ok {
		for _, tr := range rec.Trials {
			seen[tr.Step] = true
		}
	}
	return &ArchiveRecorder{store: store, key: meta.Key, seen: seen}, nil
}

// Key returns the archive key the recorder appends under.
func (a *ArchiveRecorder) Key() string { return a.key }

// OnEvent implements Observer.
func (a *ArchiveRecorder) OnEvent(e Event) {
	tc, ok := e.(TrialCompleted)
	if !ok {
		return
	}
	y := tc.Result.Throughput
	if tc.Result.Failed {
		y = 0
	}
	a.append(archive.TrialRecord{Step: tc.Trial.ID, Config: tc.Trial.Config, Y: y, Failed: tc.Result.Failed})
}

func (a *ArchiveRecorder) append(tr archive.TrialRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sealed || a.seen[tr.Step] {
		return
	}
	if err := a.store.Append(a.key, tr); err != nil && a.err == nil {
		a.err = err
		return
	}
	a.seen[tr.Step] = true
}

// Backfill archives completed records a resumed session replayed
// internally (replay does not emit TrialCompleted): only steps the
// archive does not already hold are appended, so a snapshot behind
// the archive double-appends nothing.
func (a *ArchiveRecorder) Backfill(records []RunRecord) {
	for _, r := range records {
		y := r.Result.Throughput
		if r.Result.Failed {
			y = 0
		}
		a.append(archive.TrialRecord{Step: r.Step, Config: r.Config, Y: y, Failed: r.Result.Failed})
	}
}

// Seal marks the archived session complete, attaching the final
// session state (nil is allowed) and making the evidence durable.
func (a *ArchiveRecorder) Seal(state *SessionState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sealed {
		return nil
	}
	var raw json.RawMessage
	if state != nil {
		b, err := json.Marshal(state)
		if err != nil {
			return fmt.Errorf("core: marshal session state for seal: %w", err)
		}
		raw = b
	}
	if err := a.store.Seal(a.key, raw); err != nil {
		return err
	}
	a.sealed = true
	return nil
}

// Err returns the first append error, if any — appends happen on the
// observer path where errors cannot propagate.
func (a *ArchiveRecorder) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}
