package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stormtune/internal/storm"
)

// fingerprintRouter is implemented by members that know which topology
// fingerprints they serve (the remote backend caches its server's
// registry). Members without it are assumed to serve everything — a
// local simulator backend measures whatever config it is handed.
type fingerprintRouter interface {
	Serves(fingerprint string) bool
}

// healthChecker is implemented by members that can be probed cheaply
// (the remote backend refetches /info). The pool re-probes evicted
// members through it before readmitting them; members without it are
// readmitted optimistically.
type healthChecker interface {
	CheckHealth(ctx context.Context) error
}

// NoServingMemberError reports a trial whose topology fingerprint no
// pool member serves — not even an evicted one. It is permanent: the
// pool's registry view will not change by retrying, so the session
// fails the trial immediately instead of burning its retry budget.
type NoServingMemberError struct {
	// Fingerprint is the routing key no member matched.
	Fingerprint string
	// Members labels the pool members consulted.
	Members []string
}

// Error implements error.
func (e *NoServingMemberError) Error() string {
	return fmt.Sprintf("core: no pool member serves topology fingerprint %q (members: %s)",
		e.Fingerprint, strings.Join(e.Members, ", "))
}

// Permanent marks the error as unretryable for the session's
// RetryPolicy.
func (e *NoServingMemberError) Permanent() bool { return true }

// AllMembersDownError reports that every member serving the trial's
// fingerprint is evicted and failed its re-probe. Unlike
// NoServingMemberError it is NOT permanent — workers come back — so the
// session's RetryPolicy paces further attempts.
type AllMembersDownError struct {
	// Fingerprint is the routing key whose servers are all down.
	Fingerprint string
}

// Error implements error.
func (e *AllMembersDownError) Error() string {
	return fmt.Sprintf("core: every pool member serving fingerprint %q is unreachable", e.Fingerprint)
}

// PoolOptions tune the pool's health and shedding behavior. The zero
// value is ready to use.
type PoolOptions struct {
	// UnhealthyAfter is the consecutive transport-failure count that
	// evicts a member (default 3). Evicted members receive no trials
	// until a re-probe succeeds.
	UnhealthyAfter int
	// ReprobeEvery re-probes evicted members in the background every
	// this many dispatches (default 16), so recovered workers rejoin
	// even while healthy members keep the pool serving.
	ReprobeEvery int
	// ProbeTimeout bounds one health re-probe (default 2s).
	ProbeTimeout time.Duration
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.UnhealthyAfter <= 0 {
		o.UnhealthyAfter = 3
	}
	if o.ReprobeEvery <= 0 {
		o.ReprobeEvery = 16
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	return o
}

// WorkerStats is one pool member's live counters.
type WorkerStats struct {
	// Worker labels the member: the remote backend's URL when it has
	// one, "worker-N" otherwise.
	Worker string `json:"worker"`
	// InFlight is the number of evaluations the member is running now.
	InFlight int `json:"inFlight"`
	// Completed counts evaluations that returned a measurement.
	Completed int64 `json:"completed"`
	// Errors counts evaluations the member lost (Backend.Run errors);
	// the session's RetryPolicy decides what happens next.
	Errors int64 `json:"errors"`
	// Shed counts admission refusals consumed from this member — trials
	// it declined at capacity that the pool re-routed elsewhere.
	Shed int64 `json:"shed,omitempty"`
	// Healthy is false while the member is evicted (consecutive
	// transport failures reached PoolOptions.UnhealthyAfter) and not yet
	// readmitted by a successful re-probe.
	Healthy bool `json:"healthy"`
}

type poolWorker struct {
	bk    Backend
	label string

	inFlight  atomic.Int64
	completed atomic.Int64
	errors    atomic.Int64
	shed      atomic.Int64

	// Guarded by the pool mutex.
	busy       bool
	evicted    bool
	consecFail int
	removed    bool
	probing    bool
}

// serves reports whether the member routes the fingerprint; members
// without routing knowledge accept everything.
func (w *poolWorker) serves(fingerprint string) bool {
	if r, ok := w.bk.(fingerprintRouter); ok {
		return r.Serves(fingerprint)
	}
	return true
}

// PoolBackend fans concurrent trials out over a set of member backends,
// routing each trial to a member serving its topology fingerprint and
// shedding it to a less-loaded member when a worker refuses at
// capacity. Members can join (Add) and leave (Remove) a live pool, and
// members whose transport keeps failing are evicted until a re-probe
// succeeds. See NewPoolBackend.
type PoolBackend struct {
	opts PoolOptions

	mu        sync.Mutex
	cond      *sync.Cond
	workers   []*poolWorker
	nextLabel int
	dispatch  int64
}

// errAllTried is acquire's internal signal: every healthy member
// serving the fingerprint refused this round at capacity — back off
// briefly and try the round again.
var errAllTried = errors.New("core: all serving members refused at capacity")

// NewPoolBackend distributes concurrent trials over a pool of member
// backends: each Run borrows a free member serving the trial's topology
// fingerprint, so a session driving q concurrent trials (RunAsync or
// RunBatch) saturates up to q workers — and a fleet of heterogeneous
// sessions shares one worker pool, each trial routed to a worker
// registered for its topology. Run blocks until an eligible member is
// free or ctx is done. The returned pool satisfies Backend and
// additionally exposes per-worker counters through Stats — the
// dashboard's "workers" table.
func NewPoolBackend(members ...Backend) (*PoolBackend, error) {
	return NewPoolBackendWith(PoolOptions{}, members...)
}

// NewPoolBackendWith is NewPoolBackend with explicit health/shedding
// options.
func NewPoolBackendWith(opts PoolOptions, members ...Backend) (*PoolBackend, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: pool backend needs at least one member")
	}
	p := &PoolBackend{opts: opts.withDefaults()}
	p.cond = sync.NewCond(&p.mu)
	for i, b := range members {
		if b == nil {
			return nil, fmt.Errorf("core: pool backend member %d is nil", i)
		}
		p.Add(b)
	}
	return p, nil
}

// Add joins a member to the live pool; trials routable to it are
// dispatched from the next acquisition on.
func (p *PoolBackend) Add(bk Backend) {
	p.mu.Lock()
	defer p.mu.Unlock()
	label := fmt.Sprintf("worker-%d", p.nextLabel)
	p.nextLabel++
	// A remote backend knows its server address; prefer it as the
	// human-readable label.
	if u, ok := bk.(interface{ URL() string }); ok {
		label = u.URL()
	}
	p.workers = append(p.workers, &poolWorker{bk: bk, label: label})
	p.cond.Broadcast()
}

// Remove detaches the member with the given label (its URL or
// "worker-N") from the live pool. An evaluation already running on it
// completes; no new trial is dispatched to it. Reports whether a member
// matched.
func (p *PoolBackend) Remove(label string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.label == label && !w.removed {
			w.removed = true
			p.cond.Broadcast()
			return true
		}
	}
	return false
}

// Size returns the number of attached (non-removed) pool members.
func (p *PoolBackend) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.removed {
			n++
		}
	}
	return n
}

// Stats samples every attached member's counters, in join order. It is
// safe to call concurrently with Run — the dashboard polls it while
// trials are in flight.
func (p *PoolBackend) Stats() []WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStats, 0, len(p.workers))
	for _, w := range p.workers {
		if w.removed {
			continue
		}
		out = append(out, WorkerStats{
			Worker:    w.label,
			InFlight:  int(w.inFlight.Load()),
			Completed: w.completed.Load(),
			Errors:    w.errors.Load(),
			Shed:      w.shed.Load(),
			Healthy:   !w.evicted,
		})
	}
	return out
}

// Run implements Backend: route the trial to a free member serving its
// fingerprint and evaluate there. A member refusing at capacity
// (admission control) costs nothing — the trial is shed to the next
// eligible member, or, when every serving member refused this round,
// re-offered after the smallest advertised Retry-After. Transport
// failures count toward the member's eviction and surface to the
// session's RetryPolicy as a lost measurement.
func (p *PoolBackend) Run(ctx context.Context, tr Trial) (storm.Result, error) {
	// Wake any acquire wait when the caller gives up.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()

	p.maybeReprobe()

	tried := make(map[*poolWorker]bool)
	var backoff time.Duration
	for {
		w, err := p.acquire(ctx, tr.Fingerprint, tried)
		if errors.Is(err, errAllTried) {
			// Every serving member is at capacity: wait out the smallest
			// hint they gave, then offer the round again.
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return storm.Result{}, ctx.Err()
			case <-t.C:
			}
			tried = make(map[*poolWorker]bool)
			backoff = 0
			continue
		}
		if err != nil {
			return storm.Result{}, err
		}
		res, err := p.runOn(ctx, w, tr)
		if err != nil && isOverloadedErr(err) && ctx.Err() == nil {
			// Admission refusal: nothing ran, shed to the next member.
			w.shed.Add(1)
			tried[w] = true
			if hint := retryAfterHint(err); hint > 0 && (backoff == 0 || hint < backoff) {
				backoff = hint
			}
			continue
		}
		return res, err
	}
}

// acquire picks a free, healthy member serving the fingerprint,
// preferring the least-loaded (fewest completions), and marks it busy.
// It blocks while every candidate is busy, re-probes when every serving
// member is evicted, and returns errAllTried when the only free
// candidates already refused this round.
func (p *PoolBackend) acquire(ctx context.Context, fingerprint string, tried map[*poolWorker]bool) (*poolWorker, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var pick *poolWorker
		serving, healthy, waitWorthy := 0, 0, false
		var downed []*poolWorker
		for _, w := range p.workers {
			if w.removed || !w.serves(fingerprint) {
				continue
			}
			serving++
			if w.evicted {
				downed = append(downed, w)
				continue
			}
			healthy++
			if tried[w] {
				continue
			}
			if w.busy {
				waitWorthy = true
				continue
			}
			if pick == nil || w.completed.Load() < pick.completed.Load() {
				pick = w
			}
		}
		if pick != nil {
			pick.busy = true
			return pick, nil
		}
		if serving == 0 {
			labels := make([]string, 0, len(p.workers))
			for _, w := range p.workers {
				if !w.removed {
					labels = append(labels, w.label)
				}
			}
			sort.Strings(labels)
			return nil, &NoServingMemberError{Fingerprint: fingerprint, Members: labels}
		}
		if healthy == 0 {
			// Everything serving this topology is evicted: re-probe now,
			// outside the lock, and re-evaluate.
			p.mu.Unlock()
			readmitted := p.reprobe(downed)
			p.mu.Lock()
			if readmitted == 0 {
				return nil, &AllMembersDownError{Fingerprint: fingerprint}
			}
			continue
		}
		if !waitWorthy {
			// Healthy members exist but each free one already refused at
			// capacity this round.
			return nil, errAllTried
		}
		p.cond.Wait()
	}
}

// runOn evaluates the trial on the acquired member, maintaining its
// counters and health state, and releases it.
func (p *PoolBackend) runOn(ctx context.Context, w *poolWorker, tr Trial) (storm.Result, error) {
	defer func() {
		p.mu.Lock()
		w.busy = false
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)
	start := time.Now()
	res, err := w.bk.Run(ctx, tr)
	p.noteHealth(w, err)
	switch {
	case err == nil:
		w.completed.Add(1)
	case isOverloadedErr(err):
		// An admission refusal is neither a completion nor a loss; the
		// caller counts it as shed.
	case ctx.Err() == nil:
		// Worker-originated failure: the context is intact, the
		// member lost the measurement on its own.
		w.errors.Add(1)
	case tr.Timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) &&
		time.Since(start) >= tr.Timeout*9/10:
		// The trial's deadline expired while this member held it for
		// essentially the whole budget: the member was too slow — a
		// loss chargeable to it. The duration guard keeps the common
		// non-worker causes out of the count (a deadline mostly
		// consumed queueing for a free member; a session-wide
		// deadline cutting an evaluation short); a session deadline
		// that happens to expire within the trial budget's final
		// tenth is still misattributed — a bounded, accepted
		// imprecision. A plain cancellation says nothing about the
		// member and counts nowhere.
		w.errors.Add(1)
	}
	return res, err
}

// noteHealth updates the member's eviction state from one evaluation
// outcome: transport failures accumulate toward eviction, anything that
// reached the server resets the streak.
func (p *PoolBackend) noteHealth(w *poolWorker, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil && isUnreachableErr(err) {
		w.consecFail++
		if w.consecFail >= p.opts.UnhealthyAfter {
			w.evicted = true
		}
		return
	}
	w.consecFail = 0
}

// maybeReprobe kicks off a background re-probe of evicted members every
// ReprobeEvery dispatches, so recovered workers rejoin a pool that is
// otherwise healthy enough to never block on them.
func (p *PoolBackend) maybeReprobe() {
	p.mu.Lock()
	p.dispatch++
	due := p.dispatch%int64(p.opts.ReprobeEvery) == 0
	var evicted []*poolWorker
	if due {
		for _, w := range p.workers {
			if w.evicted && !w.removed && !w.probing {
				evicted = append(evicted, w)
			}
		}
	}
	p.mu.Unlock()
	if len(evicted) > 0 {
		go p.reprobe(evicted)
	}
}

// reprobe checks each candidate's health and readmits the ones that
// answer (or, for members without a CheckHealth probe, readmits
// optimistically — the next transport failure evicts them again).
// Returns how many members were readmitted.
func (p *PoolBackend) reprobe(candidates []*poolWorker) int {
	readmitted := 0
	for _, w := range candidates {
		p.mu.Lock()
		if w.probing || w.removed || !w.evicted {
			p.mu.Unlock()
			continue
		}
		w.probing = true
		p.mu.Unlock()

		ok := true
		if hc, isChecker := w.bk.(healthChecker); isChecker {
			ctx, cancel := context.WithTimeout(context.Background(), p.opts.ProbeTimeout)
			ok = hc.CheckHealth(ctx) == nil
			cancel()
		}

		p.mu.Lock()
		w.probing = false
		if ok {
			w.evicted = false
			w.consecFail = 0
			readmitted++
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
	return readmitted
}
