package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stormtune/internal/scheduler"
	"stormtune/internal/storm"
)

// Trial is one proposed-but-not-yet-reported configuration evaluation.
// ID is the 1-based issue order within the session and doubles as the
// record step; RunIndex is the evaluator run index the trial must be
// measured with so that repeated measurements and resumed sessions draw
// the same noise.
type Trial struct {
	ID       int
	Config   storm.Config
	RunIndex int
	// Decision is the optimizer decision time attributed to this trial
	// (a batch's decision time amortized over the batch).
	Decision time.Duration
}

// SessionOptions configure a tuning session.
type SessionOptions struct {
	// MaxSteps is the evaluation budget — the total number of trials the
	// session will issue (default 60).
	MaxSteps int
	// StopAfterZeros stops the session after this many consecutive
	// zero-performance reports; 0 disables.
	StopAfterZeros int
	// RunOffset shifts evaluator run indices (protocol passes use it to
	// decorrelate noise draws between passes).
	RunOffset int
	// Observer receives the session's typed events; nil disables.
	Observer Observer
}

// ErrNoEvaluator is returned by the drivers of a session constructed
// without an evaluator (pure ask/tell use).
var ErrNoEvaluator = errors.New("core: session has no evaluator; drive it via Propose/Report")

// Session is an interruptible ask/tell tuning run: Propose hands out
// trials, Report feeds measurements back, and the Run/RunBatch/RunAsync
// drivers automate the loop against an evaluator. All methods are safe
// for concurrent use; the built-in drivers call Propose and Report from
// a single goroutine so their event order and results are deterministic
// for a fixed seed (RunAsync: fixed seed and completion order).
type Session struct {
	mu    sync.Mutex
	strat Strategy
	ev    storm.Evaluator
	opts  SessionOptions

	issued    int
	records   []RunRecord
	pending   []Trial
	ops       []SessionOp
	zeros     int
	best      float64
	bestStep  int
	stopped   bool
	exhausted bool
}

// NewSession starts a session for a strategy. ev may be nil when the
// caller drives evaluations itself through Propose/Report — e.g.
// against a real external cluster.
func NewSession(strat Strategy, ev storm.Evaluator, opts SessionOptions) *Session {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 60
	}
	return &Session{strat: strat, ev: ev, opts: opts}
}

// Strategy returns the session's strategy.
func (s *Session) Strategy() Strategy { return s.strat }

// emit dispatches events outside the state lock, preserving the order
// they were produced in (drivers emit from one goroutine).
func (s *Session) emit(evs ...Event) {
	if s.opts.Observer == nil {
		return
	}
	for _, e := range evs {
		s.opts.Observer.OnEvent(e)
	}
}

// Emit forwards an event to the session's observer; the drivers layered
// on top (and the public Tuner) use it for their own notifications.
func (s *Session) Emit(e Event) { s.emit(e) }

// Propose asks the strategy for up to n new trials. It returns fewer —
// possibly none — when the remaining budget is smaller, the strategy is
// exhausted, or the zero-performance stopping rule has fired; an empty
// result with a nil error means the session has nothing left to
// propose. The only error is ctx's.
func (s *Session) Propose(ctx context.Context, n int) ([]Trial, error) {
	return s.propose(ctx, n, false)
}

// ProposeFill asks for enough new trials to top the in-flight set up to
// fill. The free-slot computation happens under the session lock, so
// concurrent callers cannot jointly over-issue past fill.
func (s *Session) ProposeFill(ctx context.Context, fill int) ([]Trial, error) {
	return s.propose(ctx, fill, true)
}

func (s *Session) propose(ctx context.Context, n int, fillPending bool) ([]Trial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.stopped || s.exhausted {
		s.mu.Unlock()
		return nil, nil
	}
	if fillPending {
		n -= len(s.pending)
	}
	if rem := s.opts.MaxSteps - s.issued; n > rem {
		n = rem
	}
	if n <= 0 {
		s.mu.Unlock()
		return nil, nil
	}
	cfgs, dec, ok := nextBatch(s.strat, n)
	if !ok || len(cfgs) == 0 {
		s.exhausted = true
		s.mu.Unlock()
		return nil, nil
	}
	per := dec / time.Duration(len(cfgs))
	trials := make([]Trial, len(cfgs))
	evs := make([]Event, len(cfgs))
	for i, cfg := range cfgs {
		s.issued++
		trials[i] = Trial{ID: s.issued, Config: cfg, RunIndex: s.opts.RunOffset + s.issued, Decision: per}
		evs[i] = TrialStarted{Trial: trials[i]}
	}
	s.pending = append(s.pending, trials...)
	s.ops = append(s.ops, SessionOp{Ask: len(cfgs)})
	s.mu.Unlock()
	s.emit(evs...)
	return trials, nil
}

// Report feeds the measured result of a proposed trial back into the
// session and the strategy. Results of a batch may arrive in any order;
// reporting a trial the session does not consider pending is an error.
func (s *Session) Report(tr Trial, res storm.Result) error {
	s.mu.Lock()
	idx := -1
	for i, p := range s.pending {
		if p.ID == tr.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return fmt.Errorf("core: report for unknown or already-reported trial %d", tr.ID)
	}
	p := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	s.strat.Observe(p.Config, res)
	s.records = append(s.records, RunRecord{Step: p.ID, Config: p.Config, Result: res, Decision: p.Decision})
	s.ops = append(s.ops, SessionOp{Tell: p.ID})
	evs := []Event{TrialCompleted{Trial: p, Result: res}}
	if !res.Failed && res.Throughput > s.best {
		s.best = res.Throughput
		s.bestStep = p.ID
		evs = append(evs, NewBest{Trial: p, Result: res})
	}
	if res.Failed || res.Throughput == 0 {
		s.zeros++
		if s.opts.StopAfterZeros > 0 && s.zeros >= s.opts.StopAfterZeros {
			s.stopped = true
		}
	} else {
		s.zeros = 0
	}
	s.mu.Unlock()
	s.emit(evs...)
	return nil
}

// Pending returns the trials proposed but not yet reported, in issue
// order.
func (s *Session) Pending() []Trial {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Trial(nil), s.pending...)
}

// Done reports whether the session will propose no further trials.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped || s.exhausted || s.issued >= s.opts.MaxSteps
}

// Result summarizes the session so far as a TuneResult.
func (s *Session) Result() TuneResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TuneResult{
		Strategy: s.strat.Name(),
		Records:  append([]RunRecord(nil), s.records...),
		BestStep: s.bestStep,
	}
}

// finish emits PassCompleted and returns the session summary.
func (s *Session) finish(err error) (TuneResult, error) {
	res := s.Result()
	best, found := res.Best()
	s.emit(PassCompleted{Steps: len(res.Records), Best: best, Found: found})
	return res, err
}

// Run drives the session sequentially: one trial at a time until the
// budget is spent, the strategy exhausts, the stopping rule fires, or
// ctx is cancelled (the partial result is returned with ctx's error).
func (s *Session) Run(ctx context.Context) (TuneResult, error) {
	if s.ev == nil {
		return s.Result(), ErrNoEvaluator
	}
	carry := s.Pending() // trials issued before a snapshot/resume
	for {
		if err := ctx.Err(); err != nil {
			return s.finish(err)
		}
		var tr Trial
		if len(carry) > 0 {
			tr, carry = carry[0], carry[1:]
		} else {
			trials, err := s.Propose(ctx, 1)
			if err != nil {
				return s.finish(err)
			}
			if len(trials) == 0 {
				return s.finish(nil)
			}
			tr = trials[0]
		}
		res := s.ev.Run(tr.Config, tr.RunIndex)
		if err := s.Report(tr, res); err != nil {
			return s.finish(err)
		}
	}
}

// RunBatch drives the session in barrier batches: per round up to q
// trials are proposed together (constant-liar suggestions for BO
// strategies) and evaluated concurrently, and the round only ends when
// every trial of the batch has completed. q ≤ 1 degrades to Run.
func (s *Session) RunBatch(ctx context.Context, q int) (TuneResult, error) {
	if q <= 1 {
		return s.Run(ctx)
	}
	if s.ev == nil {
		return s.Result(), ErrNoEvaluator
	}
	carry := s.Pending()
	for {
		if err := ctx.Err(); err != nil {
			return s.finish(err)
		}
		var trials []Trial
		if len(carry) > 0 {
			// Re-dispatch carried-over pending trials in rounds of at
			// most q, honoring the concurrency this call was sized to.
			n := q
			if n > len(carry) {
				n = len(carry)
			}
			trials, carry = carry[:n], carry[n:]
		} else {
			var err error
			trials, err = s.Propose(ctx, q)
			if err != nil {
				return s.finish(err)
			}
			if len(trials) == 0 {
				return s.finish(nil)
			}
		}
		results := make([]storm.Result, len(trials))
		var wg sync.WaitGroup
		for i, tr := range trials {
			wg.Add(1)
			go func(i int, tr Trial) {
				defer wg.Done()
				results[i] = s.ev.Run(tr.Config, tr.RunIndex)
			}(i, tr)
		}
		wg.Wait()
		for i, tr := range trials {
			if err := s.Report(tr, results[i]); err != nil {
				return s.finish(err)
			}
		}
	}
}

// RunAsync drives the session with free-slot refill: up to q trials run
// concurrently and the moment any one completes its result is reported
// and a replacement proposed, so a slow trial never idles the other
// slots — the advantage over RunBatch grows with the variance of trial
// durations. Results are deterministic given the seed and the order in
// which evaluations complete; at q = 1 the driver is exactly Run.
func (s *Session) RunAsync(ctx context.Context, q int) (TuneResult, error) {
	if s.ev == nil {
		return s.Result(), ErrNoEvaluator
	}
	if q < 1 {
		q = 1
	}
	carry := s.Pending()
	next := func(free int) []Trial {
		var out []Trial
		for free > 0 && len(carry) > 0 {
			out = append(out, carry[0])
			carry = carry[1:]
			free--
		}
		if free > 0 {
			trials, err := s.Propose(ctx, free)
			if err == nil {
				out = append(out, trials...)
			}
		}
		return out
	}
	run := func(_ context.Context, tr Trial) storm.Result {
		return s.ev.Run(tr.Config, tr.RunIndex)
	}
	var reportErr error
	report := func(tr Trial, res storm.Result) bool {
		if err := s.Report(tr, res); err != nil {
			if reportErr == nil {
				reportErr = err
			}
			return false
		}
		return true
	}
	err := scheduler.Loop(ctx, q, next, run, report)
	if err == nil {
		err = reportErr
	}
	return s.finish(err)
}
