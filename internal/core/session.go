package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stormtune/internal/scheduler"
	"stormtune/internal/storm"
)

// Trial is one proposed-but-not-yet-reported configuration evaluation.
// ID is the 1-based issue order within the session and doubles as the
// record step; RunIndex is the evaluator run index the trial must be
// measured with so that repeated measurements and resumed sessions draw
// the same noise.
type Trial struct {
	ID       int
	Config   storm.Config
	RunIndex int
	// Attempt: on a trial handed to Backend.Run, the 1-based evaluation
	// attempt this dispatch is; on a pending/snapshotted trial, the
	// failed attempts consumed so far — a resumed session continues the
	// retry budget where it left off (interrupted-but-not-failed
	// attempts burn nothing).
	Attempt int
	// Timeout is the trial's evaluation deadline (zero = none): drivers
	// cancel the context passed to Backend.Run when it expires, and
	// remote backends forward it so the server abandons the run too.
	Timeout time.Duration
	// Decision is the optimizer decision time attributed to this trial
	// (a batch's decision time amortized over the batch).
	Decision time.Duration
	// SimTime is the simulated timestamp (seconds) the trial is
	// measured at, stamped from SessionOptions.Clock at proposal time.
	// Zero when the session has no clock — stationary evaluators
	// ignore it, and storm.TimedEvaluator backends measure drifting
	// workloads at this instant.
	SimTime float64
	// Fingerprint is the tuned topology's structural hash (hex), stamped
	// from SessionOptions.Fingerprint at proposal time. Remote backends
	// send it as the routing key so a multi-tenant worker evaluates the
	// trial against the right registered topology; empty routes only to
	// single-topology workers. It is not part of the persisted trial
	// state — resumed sessions re-stamp it from their options.
	Fingerprint string
}

// SimClock supplies the simulated timestamp stamped onto proposed
// trials. Implementations must be safe for concurrent use; the watch
// controller advances its clock from observer callbacks, never from
// the wall clock, so sessions stay deterministic.
type SimClock interface {
	Now() float64
}

// SessionOptions configure a tuning session.
type SessionOptions struct {
	// MaxSteps is the evaluation budget — the total number of trials the
	// session will issue (default 60).
	MaxSteps int
	// StopAfterZeros stops the session after this many consecutive
	// zero-performance reports; 0 disables.
	StopAfterZeros int
	// RunOffset shifts evaluator run indices (protocol passes use it to
	// decorrelate noise draws between passes).
	RunOffset int
	// Retry governs evaluation failures (Backend.Run errors): how often
	// a trial is re-attempted and with what backoff before the session
	// gives up and records a pessimistic observation. The zero value
	// never retries.
	Retry RetryPolicy
	// TrialTimeout bounds each evaluation attempt's wall-clock; trials
	// carry it as their deadline. Zero means unbounded.
	TrialTimeout time.Duration
	// Observer receives the session's typed events; nil disables.
	Observer Observer
	// Clock stamps proposed trials with a simulated timestamp
	// (Trial.SimTime); nil stamps zero. Continuous-tuning sessions over
	// drifting workloads set it so the same configuration measured at
	// different times sees different load.
	Clock SimClock
	// Fingerprint is the tuned topology's structural hash (hex); every
	// proposed trial carries it (Trial.Fingerprint) so routing backends
	// can match it against multi-tenant workers. Empty disables routing.
	Fingerprint string
}

// ErrNoBackend is returned by the drivers of a session constructed
// without a backend (pure ask/tell use).
var ErrNoBackend = errors.New("core: session has no backend; drive it via Propose/Report")

// Session is an interruptible ask/tell tuning run: Propose hands out
// trials, Report feeds measurements back, and the Run/RunBatch/RunAsync
// drivers automate the loop against a Backend — retrying lost
// evaluations per the RetryPolicy and recording pessimistic
// observations when a trial permanently fails. All methods are safe for
// concurrent use; the built-in drivers report results from a single
// goroutine so their record order is deterministic for a fixed seed
// (RunAsync: fixed seed and completion order).
type Session struct {
	mu    sync.Mutex
	strat Strategy
	bk    Backend
	opts  SessionOptions

	// obsMu serializes observer callbacks: concurrent drivers evaluate
	// several trials at once and their retry events may interleave, but
	// each callback runs alone.
	obsMu sync.Mutex

	issued    int
	records   []RunRecord
	pending   []Trial
	ops       []SessionOp
	zeros     int
	best      float64
	bestStep  int
	stopped   bool
	exhausted bool
}

// NewSession starts a session for a strategy. bk may be nil when the
// caller drives evaluations itself through Propose/Report — e.g.
// against a real external cluster.
func NewSession(strat Strategy, bk Backend, opts SessionOptions) *Session {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 60
	}
	return &Session{strat: strat, bk: bk, opts: opts}
}

// Strategy returns the session's strategy.
func (s *Session) Strategy() Strategy { return s.strat }

// UpdateStrategy runs fn with the strategy under the session lock —
// the safe way for an outside coordinator (fleet incumbent sharing) to
// read or adjust a strategy that a concurrent driver is using. fn must
// not call other session methods.
func (s *Session) UpdateStrategy(fn func(Strategy)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.strat)
}

// BestSoFar returns the best successful throughput reported so far and
// the step that achieved it; ok is false before the first success.
func (s *Session) BestSoFar() (y float64, step int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.best, s.bestStep, s.bestStep > 0
}

// emit dispatches events outside the state lock. Callbacks are
// serialized (obsMu) and a multi-event batch is delivered atomically.
func (s *Session) emit(evs ...Event) {
	if s.opts.Observer == nil {
		return
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	for _, e := range evs {
		//lint:emitnolock obsMu is the dedicated dispatch-serialization lock; it is never
		// taken while the state lock (mu) is held, so a callback re-entering the session
		// cannot deadlock — this is the one place the emit contract is implemented.
		s.opts.Observer.OnEvent(e)
	}
}

// Emit forwards an event to the session's observer; the drivers layered
// on top (and the public Tuner) use it for their own notifications.
func (s *Session) Emit(e Event) { s.emit(e) }

// AppendObserver chains obs after the session's current observer:
// every event is delivered to the existing observer first, then to
// obs. Order matters — the fleet log appends itself after a member's
// Recorder so that, by the time the log's callback runs, the recorder
// already holds the event and a Snapshot taken from the callback
// includes it. Call it before driving the session; it is not safe
// concurrently with emits.
func (s *Session) AppendObserver(obs Observer) {
	if obs == nil {
		return
	}
	prev := s.opts.Observer
	if prev == nil {
		s.opts.Observer = obs
		return
	}
	s.opts.Observer = observerChain{prev, obs}
}

// observerChain delivers each event to both observers, first first.
type observerChain [2]Observer

// OnEvent implements Observer.
func (c observerChain) OnEvent(e Event) {
	c[0].OnEvent(e)
	c[1].OnEvent(e)
}

// Propose asks the strategy for up to n new trials. It returns fewer —
// possibly none — when the remaining budget is smaller, the strategy is
// exhausted, or the zero-performance stopping rule has fired; an empty
// result with a nil error means the session has nothing left to
// propose. The only error is ctx's.
func (s *Session) Propose(ctx context.Context, n int) ([]Trial, error) {
	return s.propose(ctx, n, false)
}

// ProposeFill asks for enough new trials to top the in-flight set up to
// fill. The free-slot computation happens under the session lock, so
// concurrent callers cannot jointly over-issue past fill.
func (s *Session) ProposeFill(ctx context.Context, fill int) ([]Trial, error) {
	return s.propose(ctx, fill, true)
}

func (s *Session) propose(ctx context.Context, n int, fillPending bool) ([]Trial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.stopped || s.exhausted {
		s.mu.Unlock()
		return nil, nil
	}
	if fillPending {
		n -= len(s.pending)
	}
	if rem := s.opts.MaxSteps - s.issued; n > rem {
		n = rem
	}
	if n <= 0 {
		s.mu.Unlock()
		return nil, nil
	}
	cfgs, dec, ok := nextBatch(s.strat, n)
	if !ok || len(cfgs) == 0 {
		s.exhausted = true
		s.mu.Unlock()
		return nil, nil
	}
	per := dec / time.Duration(len(cfgs))
	// One clock read per batch: trials proposed together measure at the
	// same simulated instant, keeping batch proposals reproducible.
	var simTime float64
	if s.opts.Clock != nil {
		simTime = s.opts.Clock.Now()
	}
	trials := make([]Trial, len(cfgs))
	evs := make([]Event, len(cfgs))
	for i, cfg := range cfgs {
		s.issued++
		trials[i] = Trial{
			ID: s.issued, Config: cfg, RunIndex: s.opts.RunOffset + s.issued,
			Timeout: s.opts.TrialTimeout, Decision: per, SimTime: simTime,
			Fingerprint: s.opts.Fingerprint,
		}
		evs[i] = TrialStarted{Trial: trials[i]}
	}
	s.pending = append(s.pending, trials...)
	s.ops = append(s.ops, SessionOp{Ask: len(cfgs)})
	s.mu.Unlock()
	s.emit(evs...)
	return trials, nil
}

// Report feeds the measured result of a proposed trial back into the
// session and the strategy. Results of a batch may arrive in any order;
// reporting a trial the session does not consider pending is an error.
func (s *Session) Report(tr Trial, res storm.Result) error {
	s.mu.Lock()
	idx := -1
	for i, p := range s.pending {
		if p.ID == tr.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return fmt.Errorf("core: report for unknown or already-reported trial %d", tr.ID)
	}
	p := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	s.strat.Observe(p.Config, res)
	s.records = append(s.records, RunRecord{Step: p.ID, Config: p.Config, Result: res, Decision: p.Decision})
	s.ops = append(s.ops, SessionOp{Tell: p.ID})
	evs := []Event{TrialCompleted{Trial: p, Result: res}}
	if !res.Failed && res.Throughput > s.best {
		s.best = res.Throughput
		s.bestStep = p.ID
		evs = append(evs, NewBest{Trial: p, Result: res})
	}
	// The consecutive-zeros stopping rule reacts to *measured* zero
	// performance. A pessimistic FailureEvaluation record is a stand-in
	// for a lost measurement, not a measurement — it must not let an
	// infrastructure outage permanently stop the session (the stopped
	// flag survives snapshots), so it leaves the streak untouched.
	if res.Failure != storm.FailureEvaluation {
		if res.Failed || res.Throughput == 0 {
			s.zeros++
			if s.opts.StopAfterZeros > 0 && s.zeros >= s.opts.StopAfterZeros {
				s.stopped = true
			}
		} else {
			s.zeros = 0
		}
	}
	s.mu.Unlock()
	s.emit(evs...)
	return nil
}

// noteFailedAttempt records on the pending trial how many evaluation
// attempts have *failed*, so a snapshot taken while the trial is
// retrying carries exactly the retry budget consumed. An attempt that
// was merely interrupted by cancellation is not a failure and burns
// nothing — pausing and resuming a session repeatedly must not drain
// the budget.
func (s *Session) noteFailedAttempt(id, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.pending {
		if s.pending[i].ID == id {
			s.pending[i].Attempt = failed
			return
		}
	}
}

// evaluate runs one trial against the backend under the session's
// retry policy (the shared retryRun loop), emitting the failure/retry
// events. ok is false when the parent context was cancelled (or its
// deadline hit) before a result or a permanent failure was reached:
// the trial then stays pending — a snapshot carries it, consumed
// attempts included, and a resumed session re-dispatches it.
//
// A permanent failure (attempt budget spent) returns ok=true with a
// pessimistic storm.FailedResult, which the caller reports like any
// measurement: the optimizer observes zero and steers away.
func (s *Session) evaluate(ctx context.Context, tr Trial) (storm.Result, bool) {
	res, err, ok := retryRun(ctx, s.bk, tr, s.opts.Retry,
		func(ft Trial, attempt int, ferr error, permanent bool) {
			s.noteFailedAttempt(ft.ID, attempt)
			if permanent {
				s.emit(TrialFailed{Trial: ft, Attempt: attempt, Err: ferr, Permanent: true})
				return
			}
			s.emit(
				TrialFailed{Trial: ft, Attempt: attempt, Err: ferr},
				TrialRetried{Trial: ft, Attempt: attempt + 1, Backoff: s.opts.Retry.delay(attempt + 1), Err: ferr},
			)
		})
	if !ok {
		return storm.Result{}, false
	}
	if err != nil {
		return storm.FailedResult(storm.FailureEvaluation, err.Error()), true
	}
	return res, true
}

// Pending returns the trials proposed but not yet reported, in issue
// order.
func (s *Session) Pending() []Trial {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Trial(nil), s.pending...)
}

// Done reports whether the session will propose no further trials.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped || s.exhausted || s.issued >= s.opts.MaxSteps
}

// Result summarizes the session so far as a TuneResult.
func (s *Session) Result() TuneResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TuneResult{
		Strategy: s.strat.Name(),
		Records:  append([]RunRecord(nil), s.records...),
		BestStep: s.bestStep,
	}
}

// finish emits PassCompleted and returns the session summary.
func (s *Session) finish(err error) (TuneResult, error) {
	res := s.Result()
	best, found := res.Best()
	s.emit(PassCompleted{Steps: len(res.Records), Best: best, Found: found})
	return res, err
}

// Run drives the session sequentially: one trial at a time until the
// budget is spent, the strategy exhausts, the stopping rule fires, or
// ctx is cancelled (the partial result is returned with ctx's error;
// an in-flight trial stays pending for a snapshot to carry).
func (s *Session) Run(ctx context.Context) (TuneResult, error) {
	if s.bk == nil {
		return s.Result(), ErrNoBackend
	}
	carry := s.Pending() // trials issued before a snapshot/resume
	for {
		if err := ctx.Err(); err != nil {
			return s.finish(err)
		}
		var tr Trial
		if len(carry) > 0 {
			tr, carry = carry[0], carry[1:]
			// Re-dispatching a carried-over trial is a hand-out too; the
			// event moves it out of "pending" on observers primed from
			// the snapshot.
			s.emit(TrialStarted{Trial: tr})
		} else {
			trials, err := s.Propose(ctx, 1)
			if err != nil {
				return s.finish(err)
			}
			if len(trials) == 0 {
				return s.finish(nil)
			}
			tr = trials[0]
		}
		res, ok := s.evaluate(ctx, tr)
		if !ok {
			return s.finish(ctx.Err())
		}
		if err := s.Report(tr, res); err != nil {
			return s.finish(err)
		}
	}
}

// RunBatch drives the session in barrier batches: per round up to q
// trials are proposed together (constant-liar suggestions for BO
// strategies) and evaluated concurrently, and the round only ends when
// every trial of the batch has completed. q ≤ 1 degrades to Run.
func (s *Session) RunBatch(ctx context.Context, q int) (TuneResult, error) {
	if q <= 1 {
		return s.Run(ctx)
	}
	if s.bk == nil {
		return s.Result(), ErrNoBackend
	}
	carry := s.Pending()
	for {
		if err := ctx.Err(); err != nil {
			return s.finish(err)
		}
		var trials []Trial
		if len(carry) > 0 {
			// Re-dispatch carried-over pending trials in rounds of at
			// most q, honoring the concurrency this call was sized to.
			n := q
			if n > len(carry) {
				n = len(carry)
			}
			trials, carry = carry[:n], carry[n:]
			evs := make([]Event, len(trials))
			for i, tr := range trials {
				evs[i] = TrialStarted{Trial: tr}
			}
			s.emit(evs...)
		} else {
			var err error
			trials, err = s.Propose(ctx, q)
			if err != nil {
				return s.finish(err)
			}
			if len(trials) == 0 {
				return s.finish(nil)
			}
		}
		results := make([]storm.Result, len(trials))
		completed := make([]bool, len(trials))
		var wg sync.WaitGroup
		for i, tr := range trials {
			wg.Add(1)
			go func(i int, tr Trial) {
				defer wg.Done()
				results[i], completed[i] = s.evaluate(ctx, tr)
			}(i, tr)
		}
		wg.Wait()
		// Report completions in trial order for deterministic records;
		// cancelled evaluations stay pending.
		cancelled := false
		for i, tr := range trials {
			if !completed[i] {
				cancelled = true
				continue
			}
			if err := s.Report(tr, results[i]); err != nil {
				return s.finish(err)
			}
		}
		if cancelled {
			return s.finish(ctx.Err())
		}
	}
}

// dispatchSource is the per-trial plumbing shared by the RunAsync
// driver and the fleet scheduler: carried-over pending trials are
// handed out first (re-emitting TrialStarted so observers primed from
// a snapshot move them out of "pending"), fresh trials are proposed on
// demand, evaluation goes through the session's retry loop, and
// reporting captures the first error and stops issuing on
// cancellation. The next/nextOne and report methods are called from a
// single dispatch-loop goroutine; only run executes concurrently.
type dispatchSource struct {
	s     *Session
	carry []Trial
	err   error
}

func (s *Session) newDispatch() *dispatchSource {
	return &dispatchSource{s: s, carry: s.Pending()}
}

// dispatchOutcome is one evaluation's result; ok is false when the
// evaluation was interrupted by cancellation (the trial stays pending).
type dispatchOutcome struct {
	res storm.Result
	ok  bool
}

// nextOne hands out the session's next trial — next(1), unwrapped for
// the fleet scheduler's one-grant-at-a-time shape; ok is false when
// nothing further can be issued (budget spent, strategy exhausted,
// stopping rule fired, or the context is done).
func (d *dispatchSource) nextOne(ctx context.Context) (Trial, bool) {
	out := d.next(ctx, 1)
	if len(out) == 0 {
		return Trial{}, false
	}
	return out[0], true
}

// next hands out up to free trials — scheduler.Loop's source shape.
// ctx is the dispatch loop's context, forwarded per call rather than
// stored so proposal work always observes the driver's cancellation.
func (d *dispatchSource) next(ctx context.Context, free int) []Trial {
	var out []Trial
	for free > 0 && len(d.carry) > 0 {
		d.s.emit(TrialStarted{Trial: d.carry[0]})
		out = append(out, d.carry[0])
		d.carry = d.carry[1:]
		free--
	}
	if free > 0 {
		trials, err := d.s.Propose(ctx, free)
		if err == nil {
			out = append(out, trials...)
		}
	}
	return out
}

// run evaluates one trial under the session's retry policy.
func (d *dispatchSource) run(ctx context.Context, tr Trial) dispatchOutcome {
	res, ok := d.s.evaluate(ctx, tr)
	return dispatchOutcome{res: res, ok: ok}
}

// report feeds a completed evaluation back; returning false stops the
// dispatch loop from issuing further trials to this session. A
// cancelled evaluation leaves its trial pending for a snapshot to
// carry; the loop surfaces ctx.Err().
func (d *dispatchSource) report(tr Trial, o dispatchOutcome) bool {
	if !o.ok {
		return false
	}
	if err := d.s.Report(tr, o.res); err != nil {
		if d.err == nil {
			d.err = err
		}
		return false
	}
	return true
}

// firstErr returns the first report error, if any; call it after the
// dispatch loop has returned.
func (d *dispatchSource) firstErr() error { return d.err }

// RunAsync drives the session with free-slot refill: up to q trials run
// concurrently and the moment any one completes its result is reported
// and a replacement proposed, so a slow trial never idles the other
// slots — the advantage over RunBatch grows with the variance of trial
// durations. Results are deterministic given the seed and the order in
// which evaluations complete; at q = 1 the driver is exactly Run.
func (s *Session) RunAsync(ctx context.Context, q int) (TuneResult, error) {
	if s.bk == nil {
		return s.Result(), ErrNoBackend
	}
	if q < 1 {
		q = 1
	}
	d := s.newDispatch()
	err := scheduler.Loop(ctx, q, d.next, d.run, d.report)
	if err == nil {
		err = d.firstErr()
	}
	return s.finish(err)
}
