package stats

import "math"

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) via the continued-fraction expansion (Numerical Recipes
// betacf), which converges for all 0 ≤ x ≤ 1 with the symmetry trick.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Use symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	lbetaSym := math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta) / b
	return 1 - lbetaSym*betacf(b, a, 1-x)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for Student's t with nu degrees of
// freedom.
func StudentTCDF(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * regIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestResult reports a Welch two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs a two-sided Welch's t-test of the null hypothesis
// that the two samples have equal means. This is the test behind the
// paper's "statistically insignificant (p=0.05)" statements in §V-D.
func WelchTTest(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return TTestResult{T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}
}

// SignificantAt reports whether the test rejects the null at level
// alpha (e.g. 0.05).
func (r TTestResult) SignificantAt(alpha float64) bool {
	return !math.IsNaN(r.P) && r.P < alpha
}
