package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 5, 0, "max")
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 4, 0, "q1")
	approx(t, Quantile(xs, 0.5), 2.5, 1e-12, "median")
	approx(t, Quantile(xs, 0.25), 1.75, 1e-12, "q25")
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	approx(t, s.Mean, 2, 1e-12, "mean")
}

func TestNormalPDFCDF(t *testing.T) {
	approx(t, NormalPDF(0), 1/math.Sqrt(2*math.Pi), 1e-12, "pdf(0)")
	approx(t, NormalCDF(0), 0.5, 1e-12, "cdf(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-6, "cdf(1.96)")
	approx(t, NormalCDF(-1.959963985), 0.025, 1e-6, "cdf(-1.96)")
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-10, "roundtrip")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile at bounds should be infinite")
	}
}

func TestQuickNormalQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := 0.001 + 0.998*math.Abs(math.Mod(a, 1))
		pb := 0.001 + 0.998*math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDF(t *testing.T) {
	// Known values: t=0 → 0.5; nu=1 (Cauchy): CDF(1) = 0.75.
	approx(t, StudentTCDF(0, 5), 0.5, 1e-12, "t0")
	approx(t, StudentTCDF(1, 1), 0.75, 1e-8, "cauchy1")
	approx(t, StudentTCDF(-1, 1), 0.25, 1e-8, "cauchy-1")
	// Large nu approaches the normal.
	approx(t, StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-4, "largenu")
	// Classic table value: nu=10, t=2.228 → 0.975.
	approx(t, StudentTCDF(2.228, 10), 0.975, 1e-4, "tableval")
}

func TestWelchTTestEqualSamples(t *testing.T) {
	a := []float64{5, 6, 7, 8, 9}
	r := WelchTTest(a, a)
	if r.SignificantAt(0.05) {
		t.Fatalf("identical samples must not be significant: %+v", r)
	}
	approx(t, r.T, 0, 1e-12, "t")
}

func TestWelchTTestClearlyDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 20 + rng.NormFloat64()
	}
	r := WelchTTest(a, b)
	if !r.SignificantAt(0.05) {
		t.Fatalf("means 10 vs 20 should be significant: %+v", r)
	}
	if r.T >= 0 {
		t.Fatalf("expected negative t for mean(a) < mean(b), got %v", r.T)
	}
}

func TestWelchTTestOverlapping(t *testing.T) {
	// Same distribution — should usually not be significant.
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 10 + rng.NormFloat64()
	}
	r := WelchTTest(a, b)
	if r.P < 0.01 {
		t.Fatalf("same-distribution samples significant at 1%%: %+v", r)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	r := WelchTTest([]float64{1}, []float64{2, 3})
	if !math.IsNaN(r.P) {
		t.Fatalf("expected NaN p for undersized sample, got %+v", r)
	}
	// Zero variance, equal means.
	r = WelchTTest([]float64{5, 5, 5}, []float64{5, 5})
	approx(t, r.P, 1, 0, "p equal consts")
	// Zero variance, different means.
	r = WelchTTest([]float64{5, 5, 5}, []float64{6, 6})
	approx(t, r.P, 0, 0, "p diff consts")
}

func TestLoessRecoversLine(t *testing.T) {
	// LOESS of degree 1 must reproduce a straight line exactly.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) + 2
	}
	got := Loess(xs, ys, 0.75, []float64{0, 10.5, 25, 49})
	want := []float64{2, 33.5, 77, 149}
	for i := range got {
		approx(t, got[i], want[i], 1e-8, "loess line")
	}
}

func TestLoessSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1) * 10
		ys[i] = math.Sin(xs[i]) + 0.2*rng.NormFloat64()
	}
	ev := []float64{2, 5, 8}
	got := Loess(xs, ys, 0.3, ev)
	for i, x := range ev {
		if math.Abs(got[i]-math.Sin(x)) > 0.25 {
			t.Fatalf("loess(%v) = %v, want about %v", x, got[i], math.Sin(x))
		}
	}
}

func TestLoessEmptyAndTies(t *testing.T) {
	out := Loess(nil, nil, 0.75, []float64{1, 2})
	if !math.IsNaN(out[0]) || !math.IsNaN(out[1]) {
		t.Fatalf("empty input should yield NaN")
	}
	// All-identical x: degenerate fit should return the mean.
	xs := []float64{1, 1, 1, 1}
	ys := []float64{2, 4, 6, 8}
	got := Loess(xs, ys, 0.75, []float64{1})
	approx(t, got[0], 5, 1e-9, "ties")
}

func TestLoessCurveSortedOutput(t *testing.T) {
	xs := []float64{3, 1, 2, 1}
	ys := []float64{9, 1, 4, 1.2}
	ex, ey := LoessCurve(xs, ys, 0.9)
	if len(ex) != 3 || len(ey) != 3 {
		t.Fatalf("want 3 unique xs, got %d", len(ex))
	}
	for i := 1; i < len(ex); i++ {
		if ex[i-1] >= ex[i] {
			t.Fatalf("eval xs not strictly sorted: %v", ex)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("bounds wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.37, 0.5, 0.9} {
		approx(t, regIncBeta(1, 1, x), x, 1e-10, "I(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, regIncBeta(2.5, 4, 0.3), 1-regIncBeta(4, 2.5, 0.7), 1e-10, "symmetry")
}
