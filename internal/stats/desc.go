// Package stats provides the statistics the paper's evaluation relies on:
// descriptive summaries (min/avg/max error bars), Normal and Student-t
// distributions, Welch's two-sided t-test (the p=0.05 significance calls
// in §V-D), and LOESS regression smoothing (Figures 6 and 8b).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator); NaN
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type-7, the R default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the min/avg/max triple the paper's error bars report.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	StdDev   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: Min(xs), Max: Max(xs), Mean: Mean(xs)}
	if len(xs) >= 2 {
		s.StdDev = StdDev(xs)
	}
	return s
}
