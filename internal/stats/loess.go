package stats

import (
	"math"
	"sort"
)

// Loess computes locally weighted linear regression (LOESS, degree 1)
// with tricube weights at each of the requested evaluation points.
// span is the fraction of points in each local neighbourhood — the
// paper uses span 0.75 for Figure 6 and Figure 8b.
//
// xs need not be sorted; ties are allowed. The returned slice holds the
// smoothed value at each eval point.
func Loess(xs, ys []float64, span float64, evalAt []float64) []float64 {
	if len(xs) != len(ys) {
		panic("stats: Loess input length mismatch")
	}
	n := len(xs)
	out := make([]float64, len(evalAt))
	if n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	if span <= 0 {
		span = 0.75
	}
	k := int(math.Ceil(span * float64(n)))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}

	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })

	dist := make([]float64, n)
	w := make([]float64, n)
	for ei, x0 := range evalAt {
		for i, p := range pts {
			dist[i] = math.Abs(p.x - x0)
		}
		// k-th smallest distance defines the bandwidth.
		ds := append([]float64(nil), dist...)
		sort.Float64s(ds)
		h := ds[k-1]
		if h == 0 {
			h = 1e-12
		}
		// Tricube weights.
		var sw, swx, swy, swxx, swxy float64
		for i, p := range pts {
			u := dist[i] / h
			if u >= 1 {
				w[i] = 0
				continue
			}
			t := 1 - u*u*u
			w[i] = t * t * t
			sw += w[i]
			swx += w[i] * p.x
			swy += w[i] * p.y
			swxx += w[i] * p.x * p.x
			swxy += w[i] * p.x * p.y
		}
		if sw == 0 {
			out[ei] = math.NaN()
			continue
		}
		// Weighted least squares line through the neighbourhood.
		den := sw*swxx - swx*swx
		if math.Abs(den) < 1e-12*math.Max(1, math.Abs(sw*swxx)) {
			out[ei] = swy / sw
			continue
		}
		beta := (sw*swxy - swx*swy) / den
		alpha := (swy - beta*swx) / sw
		out[ei] = alpha + beta*x0
	}
	return out
}

// LoessCurve smooths (xs, ys) and evaluates at the sorted unique xs,
// returning parallel slices ready for plotting as a trend line.
func LoessCurve(xs, ys []float64, span float64) (ex, ey []float64) {
	uniq := map[float64]struct{}{}
	for _, x := range xs {
		uniq[x] = struct{}{}
	}
	ex = make([]float64, 0, len(uniq))
	for x := range uniq {
		ex = append(ex, x)
	}
	sort.Float64s(ex)
	ey = Loess(xs, ys, span, ex)
	return ex, ey
}
