package experiments

import (
	"fmt"

	"stormtune/internal/ggen"
	"stormtune/internal/topo"
)

// Table2 regenerates Table II: the statistics of the three synthetic
// layer-by-layer topologies next to the published targets.
func Table2() *Report {
	r := &Report{
		ID:      "table2",
		Title:   "Generated synthetic topologies vs published Table II",
		Columns: []string{"name", "V", "E", "L", "P", "Src", "Snk", "AOD", "paper E", "paper Src", "paper Snk", "paper AOD"},
	}
	for _, name := range topo.Sizes() {
		p := ggen.TableIIParams[name]
		target := ggen.TableIITargets[name]
		d := ggen.GenerateMatching(name, 500)
		s := d.ComputeStats()
		r.AddRow(name,
			fmt.Sprintf("%d", s.V), fmt.Sprintf("%d", s.E), fmt.Sprintf("%d", s.L),
			fmt.Sprintf("%.2f", p.P),
			fmt.Sprintf("%d", s.Src), fmt.Sprintf("%d", s.Snk),
			fmt.Sprintf("%.2f", s.AvgOutDeg),
			fmt.Sprintf("%d", target.E), fmt.Sprintf("%d", target.Src),
			fmt.Sprintf("%d", target.Snk), fmt.Sprintf("%.2f", target.AvgOutDeg),
		)
	}
	r.AddNote("graphs are regenerated with the published (V, L, P); seeds are searched so edge and source/sink counts match the paper's instances")
	return r
}

// Table3 renders the literature survey of operator counts.
func Table3() *Report {
	r := &Report{
		ID:      "table3",
		Title:   "Number of operators of topologies in literature",
		Columns: []string{"year", "description", "# of ops"},
	}
	for _, row := range topo.TableIII() {
		r.AddRow(fmt.Sprintf("%d", row.Year), row.Description, fmt.Sprintf("%d", row.Operators))
	}
	return r
}
