package experiments

import (
	"fmt"
	"time"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// BatchScaling measures the concurrent-trials extension on the
// synthetic DES workload: the same evaluation budget is spent
// sequentially (q=1, the paper's procedure) and in constant-liar
// batches of 2 and 4 concurrently evaluated trial deployments. The
// report shows, per batch size, the wall-clock time of the pass, the
// best throughput found, and the regret relative to the best result
// across all batch sizes — batching must cut wall-clock without giving
// up more than a few percent of final throughput.
func BatchScaling(sc Scale) *Report {
	spec := cluster.Small()
	t := topo.BuildSynthetic("small", topo.Condition{}, sc.Seed)
	template := storm.DefaultSyntheticConfig(t, 1)
	ev := storm.NewBatchDES(t, spec, storm.SinkTuples)

	r := &Report{
		ID:      "batch",
		Title:   "concurrent trials: sequential vs constant-liar batches on the small DES workload",
		Columns: []string{"q", "wall-clock", "rounds", "best-throughput", "regret", "sec/step"},
	}

	type row struct {
		q      int
		wall   time.Duration
		rounds int
		best   float64
		decSec float64
	}
	var rows []row
	bestOverall := 0.0
	for _, q := range []int{1, 2, 4} {
		strat := core.NewBO(t, spec, template, core.BOOptions{
			Set:  core.Hints,
			Seed: sc.Seed + 17,
			Opt: bo.Options{
				Candidates:       sc.BOCandidates,
				HyperSamples:     sc.BOHyperSamples,
				LocalSearchIters: sc.BOLocalIters,
				MaxGPPoints:      60,
			},
		})
		start := time.Now()
		tr := core.TuneBatch(ev, strat, sc.Steps, q, 0, 0)
		wall := time.Since(start)
		best, ok := tr.Best()
		b := 0.0
		if ok {
			b = best.Result.Throughput
		}
		if b > bestOverall {
			bestOverall = b
		}
		rounds := (len(tr.Records) + q - 1) / q
		rows = append(rows, row{q: q, wall: wall, rounds: rounds, best: b, decSec: tr.MeanDecisionSeconds()})
	}
	for _, w := range rows {
		regret := 0.0
		if bestOverall > 0 {
			regret = 100 * (bestOverall - w.best) / bestOverall
		}
		r.AddRow(
			fmt.Sprintf("%d", w.q),
			fmt.Sprintf("%.3fs", w.wall.Seconds()),
			fmt.Sprintf("%d", w.rounds),
			fmt.Sprintf("%.0f", w.best),
			fmt.Sprintf("%.1f%%", regret),
			fmt.Sprintf("%.4f", w.decSec),
		)
	}
	r.AddNote("same %d-step budget per row; q>1 dispatches constant-liar batches evaluated concurrently", sc.Steps)
	r.AddNote("this cluster could host up to %d concurrent trials of the default configuration",
		spec.MaxConcurrentTrials(template.TotalTasks()))
	return r
}
