package experiments

import (
	"fmt"
	"testing"
)

func TestDebugSundog(t *testing.T) {
	sc := shapeScale()
	sc.Steps = 60
	sc.Steps180 = 180
	sc.Passes = 2
	sc.IncludeBO180 = true
	d := RunSundog(sc)
	for _, l := range d.Order {
		o := d.Outcomes[l]
		fmt.Printf("%-14s %.0f  cfg bs=%d bp=%d wt=%d rt=%d ack=%d h0=%d\n", l, o.Summary.Mean,
			o.BestConfig.BatchSize, o.BestConfig.BatchParallelism, o.BestConfig.WorkerThreads,
			o.BestConfig.ReceiverThreads, o.BestConfig.Ackers, o.BestConfig.Hints[0])
	}
}
