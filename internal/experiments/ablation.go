package experiments

import (
	"fmt"

	"stormtune/internal/bo"
	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Ablation studies the optimizer design choices DESIGN.md calls out,
// on the medium topology with full time imbalance (the condition where
// the surrogate quality matters most): acquisition function (EI — the
// paper's choice — vs PI vs UCB), hyperparameter marginalization vs a
// MAP point estimate, and baseline candidate seeding on vs off.
func Ablation(sc Scale) *Report {
	spec := cluster.Paper()
	t := topo.BuildSynthetic("medium", topo.Condition{TimeImbalance: 1}, sc.Seed+3)
	template := storm.DefaultSyntheticConfig(t, 1)
	ev := storm.NewFluidSim(t, spec, storm.SinkTuples, sc.Seed+42)

	r := &Report{
		ID:      "ablation",
		Title:   "BO design ablation on medium/100% TiIm: best throughput after the step budget",
		Columns: []string{"variant", "throughput", "steps-to-best", "sec/step"},
	}

	run := func(label string, opt bo.Options) {
		opt.Candidates = sc.BOCandidates
		opt.LocalSearchIters = sc.BOLocalIters
		opt.MaxGPPoints = 60
		factory := func(pass int) core.Strategy {
			o := core.BOOptions{Set: core.Hints, Seed: sc.Seed + 500 + int64(pass)*7919, Opt: opt}
			return core.NewBO(t, spec, template, o)
		}
		out := core.RunProtocol(core.AsBackend(ev), factory, sc.protocol(sc.Steps, 0))
		sec := 0.0
		for _, s := range out.MeanDecisionSec {
			sec += s
		}
		sec /= float64(len(out.MeanDecisionSec))
		r.AddRow(label,
			fmt.Sprintf("%.0f [%.0f..%.0f]", out.Summary.Mean, out.Summary.Min, out.Summary.Max),
			fmt.Sprintf("%v", out.StepsToBest),
			fmt.Sprintf("%.4f", sec))
	}

	hs := sc.BOHyperSamples
	if hs < 2 {
		hs = 2
	}
	run("ei+marginalized (paper)", bo.Options{Acq: bo.EI{}, HyperSamples: hs})
	run("pi", bo.Options{Acq: bo.PI{}, HyperSamples: hs})
	run("ucb(k=2)", bo.Options{Acq: bo.UCB{Kappa: 2}, HyperSamples: hs})
	run("ei+map-hypers", bo.Options{Acq: bo.EI{}, HyperSamples: 1})

	// Seeding off: replace the diagonal seeds with an empty set.
	noSeeds := bo.Options{Acq: bo.EI{}, HyperSamples: hs,
		Candidates: sc.BOCandidates, LocalSearchIters: sc.BOLocalIters, MaxGPPoints: 60,
		SeedCandidates: [][]float64{make([]float64, t.N()+1)}}
	factory := func(pass int) core.Strategy {
		return core.NewBO(t, spec, template, core.BOOptions{
			Set: core.Hints, Seed: sc.Seed + 900 + int64(pass)*7919, Opt: noSeeds})
	}
	out := core.RunProtocol(core.AsBackend(ev), factory, sc.protocol(sc.Steps, 0))
	r.AddRow("ei, no baseline seeds",
		fmt.Sprintf("%.0f [%.0f..%.0f]", out.Summary.Mean, out.Summary.Min, out.Summary.Max),
		fmt.Sprintf("%v", out.StepsToBest), "-")

	r.AddNote("EI with slice-sampled hyperparameters is the Spearmint configuration the paper uses; the ablation shows what each ingredient buys on a high-dimensional hint space")
	return r
}
