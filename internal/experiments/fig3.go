package experiments

import (
	"fmt"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// Fig3 reproduces the network-utilization figure: the average NIC load
// per worker (MB/s) while running each of the four topologies under a
// representative tuned configuration. The paper's observation — the
// gigabit network (128 MB/s) is never close to saturated — must hold.
func Fig3(sc Scale) *Report {
	spec := cluster.Paper()
	r := &Report{
		ID:      "fig3",
		Title:   "Average network load per worker (MB/s)",
		Columns: []string{"topology", "MB/s per worker", "NIC utilization"},
	}
	addRow := func(name string, res storm.Result) {
		mbs := res.NetworkBytesPerWorker / 1e6
		r.AddRow(name, fmt.Sprintf("%.2f", mbs),
			fmt.Sprintf("%.1f%%", 100*res.NetworkBytesPerWorker/spec.NICBytesPerSec))
	}
	// Synthetic topologies under the homogeneous condition, tuned with
	// a short informed ascent (the configurations the measurement runs
	// of §V-A actually executed).
	for _, size := range []string{"large", "medium", "small"} {
		t := topo.BuildSynthetic(size, topo.Condition{}, sc.Seed+3)
		ev := storm.NewFluidSim(t, spec, storm.SinkTuples, sc.Seed+42)
		tr := core.Tune(ev, core.NewIPLA(t, storm.DefaultSyntheticConfig(t, 1)), sc.Steps, 3, 0)
		best, ok := tr.Best()
		if !ok {
			r.AddRow(size, "-", "-")
			continue
		}
		addRow(size, best.Result)
	}
	// Sundog under its manually tuned deployment configuration.
	sd := topo.Sundog()
	ev := storm.NewFluidSim(sd, spec, storm.SourceTuples, sc.Seed+42)
	addRow("sundog", ev.Run(storm.DefaultConfig(sd, 11), 0))
	r.AddNote("paper shape: all loads are single-digit MB/s per worker, far below the 128 MB/s gigabit ceiling; sundog is the most network-hungry")
	return r
}
