package experiments

import (
	"bytes"
	"testing"
)

// driftScale fixes the family's seed and budget: the acceptance bounds
// below are asserted against this exact deterministic run.
func driftScale() Scale {
	sc := tinyScale()
	sc.Steps = 12
	sc.BOCandidates = 120
	sc.BOHyperSamples = 2
	sc.BOLocalIters = 4
	return sc
}

func TestDriftFamilyShapes(t *testing.T) {
	skipSlow(t)
	d := GetDrift(driftScale())
	if len(d.Outcomes) != len(d.Scenarios)*len(d.Policies) {
		t.Fatalf("outcomes = %d, want %d", len(d.Outcomes), len(d.Scenarios)*len(d.Policies))
	}
	for key, o := range d.Outcomes {
		if o.Recovery < 0 {
			t.Fatalf("%s: watch errored", key)
		}
		if o.Policy == "never" && o.Episodes != 0 {
			t.Fatalf("%s: never policy retuned %d times", key, o.Episodes)
		}
	}
	r := Drift(d)
	if len(r.Rows) != len(d.Scenarios)*len(d.Policies) {
		t.Fatalf("report rows = %d", len(r.Rows))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
	// Cache hit returns the same pointer.
	if GetDrift(driftScale()) != d {
		t.Fatal("drift cache miss for identical scale")
	}
}

// The PR's acceptance criterion: under the flash-crowd scenario the
// conservative watch recovers at least half of the degradation a
// no-retune run suffers, and no retune trial regresses past the
// trust-region bound — expressed here as the deepest retune transient
// staying above half of what the degraded incumbent still delivered
// (a full-cube threshold restart has no such floor). Deterministic:
// fixed seed, noiseless simulator, simulated clock.
func TestDriftConservativeRecovery(t *testing.T) {
	skipSlow(t)
	d := GetDrift(driftScale())

	cons := d.Outcomes["flash-x2/conservative"]
	never := d.Outcomes["flash-x2/never"]
	if cons.Episodes < 1 {
		t.Fatal("conservative policy never retuned under the flash crowd")
	}
	if never.Loss <= 0 {
		t.Fatalf("never policy lost nothing under the flash crowd: %+v", never)
	}
	if cons.Recovery < 0.5 {
		t.Fatalf("conservative recovery = %.2f, want >= 0.5 (loss %.0f vs never %.0f)",
			cons.Recovery, cons.Loss, never.Loss)
	}
	if cons.WorstTransient < 0.5 {
		t.Fatalf("conservative retune dipped to %.2f of the degraded incumbent; trust region should bound the transient above 0.5",
			cons.WorstTransient)
	}
	if cons.FinalDelivered <= never.FinalDelivered {
		t.Fatalf("conservative final delivery %.1f does not beat never's %.1f",
			cons.FinalDelivered, never.FinalDelivered)
	}
}

// The ramp scenario is gentler; the conservative policy must still
// strictly beat doing nothing.
func TestDriftRampConservativeBeatsNever(t *testing.T) {
	skipSlow(t)
	d := GetDrift(driftScale())
	cons := d.Outcomes["ramp-x1.5/conservative"]
	never := d.Outcomes["ramp-x1.5/never"]
	if never.Loss > 0 && cons.Loss >= never.Loss {
		t.Fatalf("conservative loss %.0f >= never loss %.0f under the ramp", cons.Loss, never.Loss)
	}
}
