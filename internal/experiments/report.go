// Package experiments regenerates every table and figure of the
// paper's evaluation (Table II, Figures 3-8) against the simulated
// cluster, printing paper-style rows so shapes can be compared
// directly. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment artifact: a titled table plus notes.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as an aligned ASCII table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV writes the report as comma-separated values (quotes are not
// needed for the cell vocabulary we produce).
func (r *Report) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(r.Columns, ","))
	for _, row := range r.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
