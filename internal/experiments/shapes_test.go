package experiments

import (
	"testing"

	"stormtune/internal/topo"
)

// shapeScale is big enough for the paper's qualitative orderings to
// emerge, small enough for CI.
func shapeScale() Scale {
	return Scale{
		Steps: 25, Steps180: 30, Passes: 1, BestReruns: 6,
		Sizes:        []string{"small", "medium"},
		Seed:         1,
		BOCandidates: 150, BOHyperSamples: 2, BOLocalIters: 4,
	}
}

// TestShapeIplaDominatesHomogeneous pins the paper's top-left Figure 4
// finding: on homogeneous medium topologies the informed linear
// strategy dominates, and Bayesian optimization cannot beat it.
func TestShapeIplaDominatesHomogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	g := GetGrid(shapeScale())
	cond := topo.Condition{}
	ipla, _ := g.Get(cond, "medium", "ipla")
	pla, _ := g.Get(cond, "medium", "pla")
	bo, _ := g.Get(cond, "medium", "bo")
	if !(ipla.Summary.Mean > pla.Summary.Mean*1.3) {
		t.Fatalf("ipla (%v) should clearly beat pla (%v) on homogeneous medium",
			ipla.Summary.Mean, pla.Summary.Mean)
	}
	if !(ipla.Summary.Mean > bo.Summary.Mean) {
		t.Fatalf("bo (%v) should not beat ipla (%v) on homogeneous medium",
			bo.Summary.Mean, ipla.Summary.Mean)
	}
}

// TestShapeSmallTopologiesTieUnderContention pins the right-column
// small-topology finding: with 25% contentious operators all strategies
// arrive at equally good configurations.
func TestShapeSmallTopologiesTieUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	g := GetGrid(shapeScale())
	cond := topo.Condition{ContentiousFraction: 0.25}
	var lo, hi float64
	for i, s := range g.Strategies() {
		o, ok := g.Get(cond, "small", s)
		if !ok {
			t.Fatalf("missing %s", s)
		}
		m := o.Summary.Mean
		if i == 0 {
			lo, hi = m, m
			continue
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi > lo*1.25 {
		t.Fatalf("strategies should tie on small under contention: spread %v..%v", lo, hi)
	}
}

// TestShapeInformedConvergesFaster pins the Figure 5 finding: the
// linear informed strategy reaches its best configuration in far fewer
// steps than the Bayesian one on homogeneous medium topologies.
func TestShapeInformedConvergesFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	g := GetGrid(shapeScale())
	cond := topo.Condition{}
	ipla, _ := g.Get(cond, "medium", "ipla")
	bo, _ := g.Get(cond, "medium", "bo")
	if !(ipla.StepsToBest[0] < bo.StepsToBest[0]) {
		t.Fatalf("ipla (step %d) should converge before bo (step %d)",
			ipla.StepsToBest[0], bo.StepsToBest[0])
	}
}

// TestShapeDecisionTimeGrowsWithSize pins the Figure 7 finding: the
// Bayesian optimizer's per-step decision time grows with the number of
// parameters while the linear strategies stay at ~0.
func TestShapeDecisionTimeGrowsWithSize(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	g := GetGrid(shapeScale())
	cond := topo.Condition{}
	boSmall, _ := g.Get(cond, "small", "bo")
	boMedium, _ := g.Get(cond, "medium", "bo")
	pla, _ := g.Get(cond, "medium", "pla")
	if !(boMedium.MeanDecisionSec[0] > boSmall.MeanDecisionSec[0]) {
		t.Fatalf("bo decision time should grow with size: small %v vs medium %v",
			boSmall.MeanDecisionSec[0], boMedium.MeanDecisionSec[0])
	}
	if pla.MeanDecisionSec[0] > boSmall.MeanDecisionSec[0] {
		t.Fatalf("pla decision time (%v) should be negligible", pla.MeanDecisionSec[0])
	}
}

// TestShapeSundogBatchTuning pins the §V-D headline: searching batch
// size and batch parallelism beats parallelism-only tuning by a wide
// factor.
func TestShapeSundogBatchTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	sc := shapeScale()
	sc.Steps = 40
	d := GetSundog(sc)
	plaH := d.Outcomes["pla.h"].Summary.Mean
	boH := d.Outcomes["bo.h"].Summary.Mean
	cc := d.Outcomes["bo.bs-bp-cc"].Summary.Mean
	hbb := d.Outcomes["bo.h-bs-bp"].Summary.Mean
	best := cc
	if hbb > best {
		best = hbb
	}
	if !(best > plaH*1.5) {
		t.Fatalf("batch-parameter search (%v) should clearly beat pla hints-only (%v)", best, plaH)
	}
	// Hint-only strategies are comparable (paper: insignificant).
	if boH > plaH*1.6 || plaH > boH*1.6 {
		t.Fatalf("hint-only strategies should be comparable: pla %v vs bo %v", plaH, boH)
	}
}
