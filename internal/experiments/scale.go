package experiments

import (
	"os"

	"stormtune/internal/bo"
	"stormtune/internal/core"
)

// Scale trades fidelity against wall-clock time. FullScale reproduces
// the paper's protocol; QuickScale is a reduced version for benches and
// CI that preserves the qualitative shapes.
type Scale struct {
	// Steps is the per-pass evaluation budget (paper: 60).
	Steps int
	// Steps180 is the extended budget for the bo180 strategy.
	Steps180 int
	// Passes per strategy (paper: 2, keep the better).
	Passes int
	// BestReruns of the winning configuration (paper: 30).
	BestReruns int
	// IncludeBO180 adds the 180-step strategy to the grid.
	IncludeBO180 bool
	// Sizes selects the synthetic topologies to run.
	Sizes []string
	// Seed decorrelates the whole experiment.
	Seed int64
	// BOCandidates / BOHyperSamples / BOLocalIters tune the optimizer's
	// decision-time/quality tradeoff.
	BOCandidates   int
	BOHyperSamples int
	BOLocalIters   int
}

// FullScale is the paper's protocol. Setting STORMTUNE_BO180=0 drops
// the 180-step strategy (the grid's dominant cost) while keeping
// everything else at paper scale.
func FullScale() Scale {
	sc := Scale{
		Steps: 60, Steps180: 180, Passes: 2, BestReruns: 30,
		IncludeBO180: true,
		Sizes:        []string{"small", "medium", "large"},
		Seed:         1,
		BOCandidates: 300, BOHyperSamples: 4, BOLocalIters: 8,
	}
	if os.Getenv("STORMTUNE_BO180") == "0" {
		sc.IncludeBO180 = false
	}
	// STORMTUNE_FAST_GRID=1 keeps the full experimental protocol
	// (steps, passes, re-runs, sizes) but dials the optimizer's
	// candidate budget down to bound wall-clock time.
	if os.Getenv("STORMTUNE_FAST_GRID") == "1" {
		sc.BOCandidates, sc.BOHyperSamples, sc.BOLocalIters = 150, 2, 4
	}
	return sc
}

// QuickScale keeps benches fast while preserving shapes.
func QuickScale() Scale {
	return Scale{
		Steps: 25, Steps180: 50, Passes: 1, BestReruns: 8,
		IncludeBO180: false,
		Sizes:        []string{"small", "medium"},
		Seed:         1,
		BOCandidates: 150, BOHyperSamples: 2, BOLocalIters: 4,
	}
}

// ScaleFromEnv returns FullScale when STORMTUNE_FULL=1 is set,
// QuickScale otherwise. The bench harness uses it so that
// `go test -bench .` stays fast by default.
func ScaleFromEnv() Scale {
	if os.Getenv("STORMTUNE_FULL") == "1" {
		return FullScale()
	}
	return QuickScale()
}

// boOptions converts the scale into strategy options.
func (s Scale) boOptions() core.BOOptions {
	return core.BOOptions{Opt: bo.Options{
		Candidates:       s.BOCandidates,
		HyperSamples:     s.BOHyperSamples,
		LocalSearchIters: s.BOLocalIters,
		MaxGPPoints:      60,
	}}
}

// protocol converts the scale into the §V-A protocol.
func (s Scale) protocol(steps, stopAfterZeros int) core.Protocol {
	return core.Protocol{
		Steps:          steps,
		Passes:         s.Passes,
		BestReruns:     s.BestReruns,
		StopAfterZeros: stopAfterZeros,
		Seed:           s.Seed,
	}
}
