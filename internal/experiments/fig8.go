package experiments

import (
	"fmt"

	"stormtune/internal/cluster"
	"stormtune/internal/core"
	"stormtune/internal/stats"
	"stormtune/internal/storm"
	"stormtune/internal/topo"
)

// SundogData holds the §V-D experiment series on the real-world
// topology; Figures 8a and 8b are views of it.
type SundogData struct {
	Scale Scale
	// Outcomes by label: "pla.h", "bo.h", "bo180.h", "bo.h-bs-bp",
	// "bo180.h-bs-bp", "bo.bs-bp-cc".
	Outcomes map[string]core.Outcome
	Order    []string
	// PLABestHint is the uniform hint pla settled on; the bs-bp-cc
	// experiment fixes all hints to it (the paper uses 11).
	PLABestHint int
}

// RunSundog executes the §V-D series: tune the Sundog topology's
// parallelism hints alone, hints plus batching, and batching plus
// concurrency parameters with hints fixed to pla's best.
func RunSundog(sc Scale) *SundogData {
	spec := cluster.Paper()
	sd := topo.Sundog()
	// The manually tuned deployment configuration of §V-D: batch size
	// 50 000, batch parallelism 5, thread pool 8, default ackers.
	template := storm.DefaultConfig(sd, 11)
	ev := storm.NewFluidSim(sd, spec, storm.SourceTuples, sc.Seed+7)

	data := &SundogData{Scale: sc, Outcomes: map[string]core.Outcome{}}
	add := func(label string, out core.Outcome) {
		data.Outcomes[label] = out
		data.Order = append(data.Order, label)
	}

	bk := core.AsBackend(ev)

	// pla over hints.
	plaFactory := func(int) core.Strategy { return core.NewPLA(sd, template) }
	plaOut := core.RunProtocol(bk, plaFactory, sc.protocol(sc.Steps, 3))
	add("pla.h", plaOut)
	data.PLABestHint = 11
	if len(plaOut.BestConfig.Hints) > 0 {
		data.PLABestHint = plaOut.BestConfig.Hints[0]
	}

	boFactory := func(set core.ParamSet, tpl storm.Config, seedOff int64) core.StrategyFactory {
		return func(pass int) core.Strategy {
			o := sc.boOptions()
			o.Set = set
			o.Seed = sc.Seed + seedOff + int64(pass)*7919
			return core.NewBO(sd, spec, tpl, o)
		}
	}

	add("bo.h", core.RunProtocol(bk, boFactory(core.Hints, template, 100), sc.protocol(sc.Steps, 0)))
	add("bo.h-bs-bp", core.RunProtocol(bk, boFactory(core.HintsBatch, template, 200), sc.protocol(sc.Steps, 0)))

	fixed := storm.DefaultConfig(sd, data.PLABestHint)
	add("bo.bs-bp-cc", core.RunProtocol(bk, boFactory(core.BatchCC, fixed, 300), sc.protocol(sc.Steps, 0)))

	if sc.IncludeBO180 {
		add("bo180.h", core.RunProtocol(bk, boFactory(core.Hints, template, 400), sc.protocol(sc.Steps180, 0)))
		add("bo180.h-bs-bp", core.RunProtocol(bk, boFactory(core.HintsBatch, template, 500), sc.protocol(sc.Steps180, 0)))
	}
	return data
}

// Fig8a renders the Sundog throughput comparison, including the paper's
// headline factor (best bs/bp search vs pla hints-only) and the t-test
// verdicts of §V-D.
func Fig8a(d *SundogData) *Report {
	r := &Report{
		ID:      "fig8a",
		Title:   "Sundog throughput (tuples/s ingested), avg [min..max] of re-runs",
		Columns: []string{"experiment", "throughput", "vs pla.h"},
	}
	base := d.Outcomes["pla.h"].Summary.Mean
	for _, label := range d.Order {
		o := d.Outcomes[label]
		rel := "-"
		if base > 0 && o.Summary.N > 0 {
			rel = fmt.Sprintf("%.2fx", o.Summary.Mean/base)
		}
		r.AddRow(label, fmt.Sprintf("%.0f [%.0f..%.0f]", o.Summary.Mean, o.Summary.Min, o.Summary.Max), rel)
	}
	// The paper's two statistical claims.
	if a, okA := d.Outcomes["pla.h"]; okA {
		if b, okB := d.Outcomes["bo.h"]; okB {
			tt := welchOnReruns(a, b)
			r.AddNote("pla.h vs bo.h: p=%.3f (paper: hint-only strategies statistically indistinguishable)", tt.P)
		}
	}
	if a, okA := d.Outcomes["bo.h-bs-bp"]; okA {
		if b, okB := d.Outcomes["bo.bs-bp-cc"]; okB {
			tt := welchOnReruns(a, b)
			r.AddNote("bo.h-bs-bp vs bo.bs-bp-cc: p=%.3f (paper: not significantly different)", tt.P)
		}
	}
	r.AddNote("paper shape: hint-only tuning is flat; adding batch size and batch parallelism yields ≈2.8x over pla hints-only")
	return r
}

// welchOnReruns recomputes the re-run samples for a Welch test; the
// Outcome keeps only the summary, so the samples are regenerated from
// the summary-producing evaluator would be ideal — instead we
// approximate with the stored min/mean/max when raw samples are absent.
func welchOnReruns(a, b core.Outcome) stats.TTestResult {
	return stats.WelchTTest(a.RerunSamples, b.RerunSamples)
}

// Fig8b renders the convergence traces of Figure 8b: best-so-far
// throughput per step for the four headline setups.
func Fig8b(d *SundogData) *Report {
	labels := []string{"pla.h", "bo.h", "bo.h-bs-bp", "bo.bs-bp-cc"}
	steps := []int{1, 5, 10, 20, 30, 45, 60, 90, 120, 180}
	cols := []string{"experiment"}
	for _, s := range steps {
		cols = append(cols, fmt.Sprintf("s%d", s))
	}
	r := &Report{
		ID:      "fig8b",
		Title:   "Sundog convergence: best-so-far throughput vs optimization step",
		Columns: cols,
	}
	for _, label := range labels {
		o, ok := d.Outcomes[label]
		if !ok || o.BestPass < 0 || o.BestPass >= len(o.Passes) {
			continue
		}
		trace := o.Passes[o.BestPass].BestSoFar()
		row := []string{label}
		for _, s := range steps {
			if s > len(trace) {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", trace[s-1]))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper shape: pla.h and bo.h stay flat; bo.h-bs-bp climbs late; bo.bs-bp-cc reaches good configurations fastest")
	return r
}
